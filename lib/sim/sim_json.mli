(** A minimal JSON tree with a stable printer and a strict parser, so bench
    records can be emitted (and round-trip-validated in tests) without any
    external dependency.

    Stability contract: {!to_string} prints object fields in the order they
    appear in the [Obj] list and numbers through a fixed format (integers
    without a fractional part, everything else via ["%.6g"]), so two records
    built from the same data are byte-identical. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialise. [indent] pretty-prints with two-space indentation (still
    deterministic); the default is compact. *)

val parse : string -> (t, string) result
(** Strict parser for the subset this module prints (all of JSON except
    non-ASCII [\u] escapes, which decode to ['?']). Rejects trailing
    garbage. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the value bound to [k], if any. [None] on
    non-objects. *)

val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
