(** Translation lookaside buffer model.

    The R3000 TLB has 64 entries; misses are refilled in software by a fast
    kernel handler. We model a direct-mapped TLB (deterministic, close
    enough for the cache-coloring example) with hit/miss accounting, plus a
    small dedicated superpage array (2 MB entries, one per aligned run of
    [super_pages] base pages) probed before the 4 KB slots — the way
    R4000-class MIPS parts pair variable page sizes with the base TLB. The
    superpage probe is guarded by a live-entry counter so a machine that
    never fills a superpage behaves and counts identically to the
    pre-superpage TLB. *)

type t

val create : ?entries:int -> ?super_entries:int -> ?super_pages:int -> unit -> t
(** Defaults: 64 base entries, 16 superpage entries, 512 base pages per
    superpage. *)

val lookup : t -> space:int -> vpn:int -> int option
(** Returns the cached frame for the page, updating statistics. A live
    superpage entry covering [vpn] resolves before the 4 KB slot. *)

val lookup_sized : t -> space:int -> vpn:int -> (int * bool) option
(** Like {!lookup}; the boolean is [true] when a superpage entry resolved
    the translation. *)

val fill : t -> space:int -> vpn:int -> frame:int -> unit

val fill_super : t -> space:int -> svpn:int -> frame:int -> unit
(** Fill a superpage entry: [svpn] = vpn / super_pages, [frame] the first
    frame of the aligned run. *)

val invalidate : t -> space:int -> vpn:int -> unit
val invalidate_super : t -> space:int -> svpn:int -> unit
val invalidate_space : t -> space:int -> unit
val flush : t -> unit

val hits : t -> int
val misses : t -> int

val super_hits : t -> int
(** Lookups resolved by a superpage entry (also counted in {!hits}). *)

val hit_rate : t -> float
(** In [0,1]; 0 when no lookups have happened. *)
