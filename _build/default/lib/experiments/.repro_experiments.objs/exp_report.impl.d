lib/experiments/exp_report.ml: Buffer List Printf String
