(** Compressed-cache segment manager.

    §2.1 lists "page compression" among the sophisticated schemes a
    process-level manager can implement without kernel support. This one
    is a 1992-flavoured zswap: on eviction, instead of paying a ~15 ms
    disk write, the page is compressed (~0.5 ms of CPU) into a bounded
    in-memory pool; a later fault decompresses (~0.3 ms) instead of
    reading the disk. When the compressed pool overflows its budget, the
    oldest entries spill to the real backing store.

    The ablation bench compares reclaim-to-disk, reclaim-to-compression
    and discard-and-regenerate on the same workload. *)

type config = {
  compress_us : float;  (** CPU to compress one 4 KB page. *)
  decompress_us : float;
  compression_ratio : float;  (** Compressed size as a fraction of a page. *)
  budget_pages : float;  (** Pool budget in page-equivalents. *)
}

val default_config : config

type t

val create :
  Epcm_kernel.t ->
  ?disk:Hw_disk.t ->
  ?config:config ->
  source:Mgr_generic.source ->
  pool_capacity:int ->
  unit ->
  t

val manager_id : t -> Epcm_manager.id
val create_segment : t -> name:string -> pages:int -> Epcm_segment.id

val evict : t -> seg:Epcm_segment.id -> page:int -> unit
(** Compress the page into the pool and reclaim its frame. *)

(** {2 Backend interface}

    The raw compressed store, without the frame movement of {!evict} /
    the fault handler. {!Mgr_tiered} uses these as its coldest tier:
    demotion {!stash}es the page contents, promotion {!fetch}es them
    back. Charges are identical to the {!evict}/fault paths
    ([mgr/compress], [mgr/decompress], disk IO on spill/fill). *)

val stash : t -> seg:Epcm_segment.id -> page:int -> Hw_page_data.t -> unit
(** Compress [data] into the store under ([seg], [page]), spilling the
    oldest entries to disk if the budget overflows. *)

val fetch : t -> seg:Epcm_segment.id -> page:int -> Hw_page_data.t option
(** Decompress-and-remove the entry for ([seg], [page]); falls back to
    the disk spill area; [None] if neither level holds the page. *)

val has : t -> seg:Epcm_segment.id -> page:int -> bool
(** Whether {!fetch} would return [Some] (store or spill area). *)

val resident : t -> seg:Epcm_segment.id -> int
val compressed_entries : t -> int
val pool_page_equivalents : t -> float

(** {2 Statistics} *)

val compressions : t -> int
val decompressions : t -> int
val spills : t -> int  (** Compressed entries pushed out to disk. *)

val disk_fills : t -> int  (** Faults that had to go to the disk after all. *)
