lib/dbms/db_btree.mli: Format
