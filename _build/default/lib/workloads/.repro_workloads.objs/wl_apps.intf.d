lib/workloads/wl_apps.mli: Wl_trace
