(* Tests for the System Page Cache Manager and the dram memory market.

   Beyond the unit tests, two model-based suites pin the scaling rework
   (ROADMAP item 1):

   - A differential market model: a pure reference implementation of the
     dram accounting (income, holding charge, savings tax, I/O charge,
     free-when-idle billable clock, forced returns) is run against
     [Spcm_market] on random operation sequences, with one market instance
     settled eagerly after every operation and one settled only at the
     end — pinning that lazy settlement equals the full-scan reference up
     to float rounding of the exponential tax branch.
   - A property test of the admission priority structure ([Spcm_admit])
     against a sorted-list model, including deterministic FIFO ordering on
     full key ties and re-insertion at a preserved position. *)

module K = Epcm_kernel
module Seg = Epcm_segment
module M = Spcm_market
module Engine = Sim_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

let sec s = s *. 1_000_000.0

(* ------------------------------------------------------------------ *)
(* Market                                                             *)
(* ------------------------------------------------------------------ *)

let market ?config () = M.create ?config ~page_size:4096 ()

let test_market_income_accrues () =
  let m = market () in
  let a = M.open_account m ~name:"a" ~income:10.0 ~now_us:0.0 in
  M.set_demand m true ~now_us:0.0;
  M.settle m ~now_us:(sec 5.0);
  check_float "5s of income" 50.0 (M.account m a).M.balance

let test_market_holding_charge () =
  (* 256 pages = 1 MB at rate D=1: one dram per second, against income
     10/s. *)
  let m = market () in
  let a = M.open_account m ~name:"a" ~income:10.0 ~now_us:0.0 in
  M.set_demand m true ~now_us:0.0;
  M.note_holding_change m a ~delta_pages:256 ~now_us:0.0;
  M.settle m ~now_us:(sec 10.0);
  let acc = M.account m a in
  check_float "income - M*D*T" (100.0 -. 10.0) acc.M.balance;
  check_float "charged total" 10.0 acc.M.total_charged

let test_market_free_when_idle () =
  let m = market () in
  let a = M.open_account m ~name:"a" ~income:0.0 ~now_us:0.0 in
  M.note_holding_change m a ~delta_pages:256 ~now_us:0.0;
  M.settle m ~now_us:(sec 10.0);
  check_float "no charge while idle" 0.0 (M.account m a).M.balance

let test_market_billable_clock () =
  (* Demand on for [2, 5] and [7, 8]: 4 billable seconds out of 10. *)
  let m = market () in
  let a = M.open_account m ~name:"a" ~income:10.0 ~now_us:0.0 in
  M.set_demand m true ~now_us:(sec 2.0);
  M.set_demand m false ~now_us:(sec 5.0);
  M.set_demand m true ~now_us:(sec 7.0);
  M.set_demand m false ~now_us:(sec 8.0);
  check_float "billable seconds" 4.0 (M.billable_s m ~now_us:(sec 10.0));
  M.settle m ~now_us:(sec 10.0);
  check_float "income only over billable time" 40.0 (M.account m a).M.balance

let test_market_savings_tax () =
  let cfg = { M.default_config with savings_tax_rate = 0.1; savings_tax_threshold = 10.0 } in
  let m = market ~config:cfg () in
  let a = M.open_account m ~name:"hoarder" ~income:100.0 ~now_us:0.0 in
  M.set_demand m true ~now_us:0.0;
  M.settle m ~now_us:(sec 1.0);
  (* Earned 100; excess over 10 gets taxed at 10%/s for the interval. *)
  let acc = M.account m a in
  check_bool "taxed" true (acc.M.total_taxed > 0.0);
  check_bool "balance below gross income" true (acc.M.balance < 100.0)

let test_market_io_charge () =
  let m = market () in
  let a = M.open_account m ~name:"scanner" ~income:0.0 ~now_us:0.0 in
  M.note_io m a ~ops:100 ~now_us:0.0;
  check_float "paid for I/O" (-.100.0 *. M.default_config.M.io_charge) (M.account m a).M.balance;
  check_int "ops recorded" 100 (M.account m a).M.io_ops

let test_market_can_afford_and_bankrupt () =
  let m = market () in
  let a = M.open_account m ~name:"a" ~income:1.0 ~now_us:0.0 in
  (* 2560 pages = 10MB at D=1 costs 10/s; income 1/s: not affordable. *)
  check_bool "cannot afford" false (M.can_afford m a ~pages:2560 ~seconds:10.0);
  check_bool "can afford small" true (M.can_afford m a ~pages:128 ~seconds:1.0);
  check_bool "not bankrupt" false (M.bankrupt m a);
  M.note_io m a ~ops:1000 ~now_us:0.0;
  check_bool "bankrupt after splurge" true (M.bankrupt m a)

let test_market_holdings_never_negative () =
  let m = market () in
  let a = M.open_account m ~name:"a" ~now_us:0.0 in
  Alcotest.check_raises "negative holdings rejected"
    (Invalid_argument "Spcm_market.note_holding_change: negative holdings") (fun () ->
      M.note_holding_change m a ~delta_pages:(-1) ~now_us:0.0)

(* ------------------------------------------------------------------ *)
(* Market input validation (a NaN or negative rate would silently mint
   or destroy drams; time running backwards would mint income)         *)
(* ------------------------------------------------------------------ *)

let test_market_rejects_bad_config () =
  let reject what cfg =
    match M.create ~config:cfg ~page_size:4096 () with
    | _ -> Alcotest.failf "%s accepted" what
    | exception Invalid_argument _ -> ()
  in
  reject "NaN charge_rate" { M.default_config with charge_rate = Float.nan };
  reject "negative charge_rate" { M.default_config with charge_rate = -1.0 };
  reject "infinite income" { M.default_config with default_income = Float.infinity };
  reject "negative tax rate" { M.default_config with savings_tax_rate = -0.5 };
  reject "NaN tax threshold" { M.default_config with savings_tax_threshold = Float.nan };
  reject "negative io charge" { M.default_config with io_charge = -0.01 };
  (match M.create ~page_size:0 () with
  | _ -> Alcotest.fail "page_size 0 accepted"
  | exception Invalid_argument _ -> ());
  (* The default config itself must pass its own validation. *)
  ignore (M.create ~config:M.default_config ~page_size:4096 ())

let test_market_rejects_bad_account_ops () =
  let m = market () in
  (match M.open_account m ~name:"bad" ~income:(-5.0) ~now_us:0.0 with
  | _ -> Alcotest.fail "negative income accepted"
  | exception Invalid_argument _ -> ());
  (match M.open_account m ~name:"bad" ~income:Float.nan ~now_us:0.0 with
  | _ -> Alcotest.fail "NaN income accepted"
  | exception Invalid_argument _ -> ());
  let a = M.open_account m ~name:"a" ~now_us:(sec 1.0) in
  (match M.note_io m a ~ops:(-1) ~now_us:(sec 1.0) with
  | () -> Alcotest.fail "negative io ops accepted (a refund would mint drams)"
  | exception Invalid_argument _ -> ());
  match M.settle_lazy m a ~now_us:(sec 0.5) with
  | () -> Alcotest.fail "time running backwards accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Differential market model                                           *)
(* ------------------------------------------------------------------ *)

(* Pure reference implementation, written independently of the library:
   explicit per-account state, the same billable clock, and the same
   closed-form flow of d(b)/dB = g - rate * max (b - threshold, 0). *)
module Model = struct
  type acct = {
    mutable income : float;
    mutable balance : float;
    mutable holding : int;
    mutable last_billable : float;
    mutable t_income : float;
    mutable t_charged : float;
    mutable t_taxed : float;
    mutable io : int;
  }

  type t = {
    cfg : M.config;
    mutable accts : acct list; (* newest first *)
    mutable demand : bool;
    mutable demand_since : float;
    mutable billable : float;
  }

  let create cfg = { cfg; accts = []; demand = false; demand_since = 0.0; billable = 0.0 }

  let billable_at t now_us =
    if not t.cfg.M.free_when_idle then now_us /. 1e6
    else t.billable +. (if t.demand then (now_us -. t.demand_since) /. 1e6 else 0.0)

  let set_demand t d now_us =
    if d <> t.demand then begin
      if t.demand then t.billable <- t.billable +. ((now_us -. t.demand_since) /. 1e6);
      t.demand <- d;
      t.demand_since <- now_us
    end

  let nth t i = List.nth (List.rev t.accts) i

  let open_acct t income now_us =
    t.accts <-
      {
        income;
        balance = 0.0;
        holding = 0;
        last_billable = billable_at t now_us;
        t_income = 0.0;
        t_charged = 0.0;
        t_taxed = 0.0;
        io = 0;
      }
      :: t.accts

  (* The same two-branch exact flow, independently restated. *)
  let rec flow ~g ~rate ~threshold b dt =
    if dt <= 0.0 then b
    else if rate = 0.0 then b +. (g *. dt)
    else if b > threshold || (b = threshold && g > 0.0) then begin
      let x0 = b -. threshold and xeq = g /. rate in
      let x at = xeq +. ((x0 -. xeq) *. exp (-.rate *. at)) in
      if xeq >= 0.0 then threshold +. x dt
      else
        let t0 = log ((x0 -. xeq) /. -.xeq) /. rate in
        if t0 >= dt then threshold +. x dt
        else flow ~g ~rate ~threshold threshold (dt -. t0)
    end
    else if g <= 0.0 then b +. (g *. dt)
    else
      let t_cross = (threshold -. b) /. g in
      if t_cross >= dt then b +. (g *. dt)
      else flow ~g ~rate ~threshold threshold (dt -. t_cross)

  let settle t a now_us =
    let b1 = billable_at t now_us in
    let db = Float.max 0.0 (b1 -. a.last_billable) in
    a.last_billable <- b1;
    if db > 0.0 then begin
      let mbytes = float_of_int (a.holding * 4096) /. (1024.0 *. 1024.0) in
      let cost = mbytes *. t.cfg.M.charge_rate in
      let earned = a.income *. db in
      let charge = cost *. db in
      let settled =
        flow ~g:(a.income -. cost) ~rate:t.cfg.M.savings_tax_rate
          ~threshold:t.cfg.M.savings_tax_threshold a.balance db
      in
      let tax = a.balance +. earned -. charge -. settled in
      a.balance <- settled;
      a.t_income <- a.t_income +. earned;
      a.t_charged <- a.t_charged +. charge;
      a.t_taxed <- a.t_taxed +. tax
    end

  let hold t i delta now_us =
    let a = nth t i in
    settle t a now_us;
    a.holding <- a.holding + delta

  let io t i ops now_us =
    let a = nth t i in
    settle t a now_us;
    a.io <- a.io + ops;
    a.balance <- a.balance -. (float_of_int ops *. t.cfg.M.io_charge)
end

type mkt_op =
  | Advance of float (* microseconds *)
  | Demand of bool
  | Open of float (* income *)
  | Hold of int * int (* account index, signed delta (clamped) *)
  | Io of int * int
  | Touch of int (* settle_lazy one account *)
  | SettleAll
  | ReturnAll of int (* forced return: holdings back to zero *)

let mkt_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun dt -> Advance (float_of_int (dt + 1) *. 997.0)) (int_bound 500));
        (2, map (fun b -> Demand b) bool);
        (2, map (fun i -> Open (float_of_int i *. 3.0)) (int_bound 40));
        (4, map2 (fun a d -> Hold (a, d - 16)) (int_bound 7) (int_bound 280));
        (2, map2 (fun a n -> Io (a, n)) (int_bound 7) (int_bound 25));
        (2, map (fun a -> Touch a) (int_bound 7));
        (1, return SettleAll);
        (1, map (fun a -> ReturnAll a) (int_bound 7));
      ])

let mkt_op_print = function
  | Advance dt -> Printf.sprintf "Advance %.0f" dt
  | Demand b -> Printf.sprintf "Demand %b" b
  | Open i -> Printf.sprintf "Open %.1f" i
  | Hold (a, d) -> Printf.sprintf "Hold (%d, %d)" a d
  | Io (a, n) -> Printf.sprintf "Io (%d, %d)" a n
  | Touch a -> Printf.sprintf "Touch %d" a
  | SettleAll -> "SettleAll"
  | ReturnAll a -> Printf.sprintf "ReturnAll %d" a

(* Relative comparison: the eager and lazy instances chunk the
   exponential tax branch differently, so equality holds to rounding, not
   bit-for-bit. *)
let close what a b =
  let tol = 1e-9 *. (1.0 +. Float.abs a +. Float.abs b) in
  if Float.abs (a -. b) > tol then
    QCheck.Test.fail_reportf "%s differs: %.17g vs %.17g" what a b

let prop_market_differential =
  let cfg =
    {
      M.charge_rate = 2.0;
      default_income = 12.0;
      savings_tax_rate = 0.05;
      savings_tax_threshold = 20.0;
      io_charge = 0.02;
      free_when_idle = true;
    }
  in
  QCheck.Test.make ~name:"market matches pure model; lazy settlement == full scan" ~count:120
    QCheck.(
      pair bool
        (make ~print:(fun l -> String.concat "; " (List.map mkt_op_print l))
           (Gen.list_size (Gen.int_range 1 60) mkt_op_gen)))
    (fun (free_idle, ops) ->
      let cfg = { cfg with M.free_when_idle = free_idle } in
      (* Three parties: eager settles every account after every op, lazy
         settles only when the library itself needs to, the model is the
         pure reference (touched on the lazy schedule). *)
      let eager = M.create ~config:cfg ~page_size:4096 () in
      let lazy_ = M.create ~config:cfg ~page_size:4096 () in
      let model = Model.create cfg in
      let ids_e = ref [] and ids_l = ref [] in
      let now = ref 0.0 in
      let n_accts () = List.length !ids_e in
      let pick i = i mod n_accts () in
      let id_of ids i = List.nth (List.rev !ids) (pick i) in
      let holding m ids i = (M.account m (id_of ids i)).M.holding_pages in
      List.iter
        (fun op ->
          (match op with
          | Advance dt -> now := !now +. dt
          | Demand d ->
              M.set_demand eager d ~now_us:!now;
              M.set_demand lazy_ d ~now_us:!now;
              Model.set_demand model d !now
          | Open income ->
              ids_e := M.open_account eager ~income ~name:"m" ~now_us:!now :: !ids_e;
              ids_l := M.open_account lazy_ ~income ~name:"m" ~now_us:!now :: !ids_l;
              Model.open_acct model income !now
          | Hold (i, d) ->
              if n_accts () > 0 then begin
                (* Clamp so holdings stay non-negative; holdings are exact
                   ints, so all three parties clamp identically. *)
                let d = max d (-holding eager ids_e i) in
                M.note_holding_change eager (id_of ids_e i) ~delta_pages:d ~now_us:!now;
                M.note_holding_change lazy_ (id_of ids_l i) ~delta_pages:d ~now_us:!now;
                Model.hold model (pick i) d !now
              end
          | Io (i, n) ->
              if n_accts () > 0 then begin
                M.note_io eager (id_of ids_e i) ~ops:n ~now_us:!now;
                M.note_io lazy_ (id_of ids_l i) ~ops:n ~now_us:!now;
                Model.io model (pick i) n !now
              end
          | Touch i ->
              if n_accts () > 0 then begin
                M.settle_lazy eager (id_of ids_e i) ~now_us:!now;
                M.settle_lazy lazy_ (id_of ids_l i) ~now_us:!now;
                Model.settle model (Model.nth model (pick i)) !now
              end
          | SettleAll ->
              M.settle eager ~now_us:!now;
              M.settle lazy_ ~now_us:!now;
              List.iter (fun a -> Model.settle model a !now) model.Model.accts
          | ReturnAll i ->
              if n_accts () > 0 then begin
                let d = -holding eager ids_e i in
                M.note_holding_change eager (id_of ids_e i) ~delta_pages:d ~now_us:!now;
                M.note_holding_change lazy_ (id_of ids_l i) ~delta_pages:d ~now_us:!now;
                Model.hold model (pick i) d !now
              end);
          (* The eager instance runs the O(accounts) reference scan after
             EVERY op; the lazy one does not. *)
          M.settle eager ~now_us:!now)
        ops;
      (* Bring everyone current and compare account by account. *)
      now := !now +. 1_000_000.0;
      M.settle eager ~now_us:!now;
      M.settle lazy_ ~now_us:!now;
      List.iter (fun a -> Model.settle model a !now) model.Model.accts;
      List.iteri
        (fun i (ide, idl) ->
          let e = M.account eager ide and l = M.account lazy_ idl in
          let m = Model.nth model i in
          close (Printf.sprintf "acct %d balance (lazy vs eager)" i) l.M.balance e.M.balance;
          close (Printf.sprintf "acct %d balance (model)" i) m.Model.balance e.M.balance;
          close (Printf.sprintf "acct %d taxed" i) l.M.total_taxed e.M.total_taxed;
          close (Printf.sprintf "acct %d taxed (model)" i) m.Model.t_taxed e.M.total_taxed;
          close (Printf.sprintf "acct %d charged" i) l.M.total_charged e.M.total_charged;
          close (Printf.sprintf "acct %d income" i) l.M.total_income e.M.total_income;
          if l.M.holding_pages <> e.M.holding_pages || l.M.holding_pages <> m.Model.holding
          then QCheck.Test.fail_reportf "acct %d holdings diverged" i;
          if l.M.io_ops <> e.M.io_ops then QCheck.Test.fail_reportf "acct %d io diverged" i)
        (List.combine (List.rev !ids_e) (List.rev !ids_l));
      (* Neither instance minted or destroyed drams. *)
      if M.conservation_error eager > 1e-9 then
        QCheck.Test.fail_reportf "eager conservation residual %.3e" (M.conservation_error eager);
      if M.conservation_error lazy_ > 1e-9 then
        QCheck.Test.fail_reportf "lazy conservation residual %.3e" (M.conservation_error lazy_);
      true)

(* ------------------------------------------------------------------ *)
(* Admission heap vs sorted-list model                                 *)
(* ------------------------------------------------------------------ *)

(* Observable behaviour of Spcm_admit — including peek mid-stream and
   FIFO order on full (priority, balance) ties — is exactly a list kept
   sorted by (priority desc, balance desc, seq asc). Priorities and
   balances are drawn from tiny ranges to force ties constantly. *)
let prop_admit_model =
  QCheck.Test.make ~name:"admission heap matches sorted-list model under push/pop" ~count:300
    QCheck.(list (option (pair (int_bound 2) (int_bound 2))))
    (fun ops ->
      let h = Spcm_admit.create () in
      let model = ref [] in
      let next_payload = ref 0 in
      let key (p, b, s) = (-.p, -.b, s) in
      let insert e =
        let rec go = function
          | [] -> [ e ]
          | ((p', b', s', _) as hd) :: tl ->
              let (p, b, s, _) = e in
              if key (p, b, s) < key (p', b', s') then e :: hd :: tl else hd :: go tl
        in
        model := go !model
      in
      List.for_all
        (fun op ->
          (match op with
          | Some (p, b) ->
              let p = float_of_int p and bf = float_of_int b in
              incr next_payload;
              let seq = Spcm_admit.push h ~priority:p ~balance:bf !next_payload in
              insert (p, bf, seq, !next_payload)
          | None -> (
              match (Spcm_admit.pop h, !model) with
              | None, [] -> ()
              | Some got, expect :: rest when got = expect -> model := rest
              | _ -> QCheck.Test.fail_report "pop disagrees with model"));
          Spcm_admit.size h = List.length !model
          && Spcm_admit.peek h = (match !model with [] -> None | e :: _ -> Some e))
        ops)

let test_admit_fifo_ties_and_reinsert () =
  let h = Spcm_admit.create () in
  (* Three waiters with identical keys pop in arrival order. *)
  let s1 = Spcm_admit.push h ~priority:1.0 ~balance:5.0 "a" in
  let _s2 = Spcm_admit.push h ~priority:1.0 ~balance:5.0 "b" in
  let _s3 = Spcm_admit.push h ~priority:1.0 ~balance:5.0 "c" in
  (match Spcm_admit.pop h with
  | Some (_, _, s, "a") -> check_int "first in first out" s1 s
  | _ -> Alcotest.fail "expected a first");
  (* Re-inserting "a" at its original seq puts it back at the head, ahead
     of "b" — a partially-served constrained waiter keeps its turn. *)
  Spcm_admit.push_seq h ~priority:1.0 ~balance:5.0 ~seq:s1 "a";
  (match Spcm_admit.pop h with
  | Some (_, _, _, "a") -> ()
  | _ -> Alcotest.fail "re-inserted waiter lost its position");
  (* Higher priority beats higher balance; balance breaks priority ties. *)
  Spcm_admit.clear h;
  ignore (Spcm_admit.push h ~priority:0.0 ~balance:100.0 "rich");
  ignore (Spcm_admit.push h ~priority:5.0 ~balance:0.0 "urgent");
  ignore (Spcm_admit.push h ~priority:0.0 ~balance:200.0 "richer");
  let order = List.init 3 (fun _ -> match Spcm_admit.pop h with Some (_, _, _, v) -> v | None -> "?") in
  Alcotest.(check (list string)) "priority then balance" [ "urgent"; "richer"; "rich" ] order

(* ------------------------------------------------------------------ *)
(* SPCM allocation                                                    *)
(* ------------------------------------------------------------------ *)

let spcm_setup ?(frames = 64) () =
  let machine = Hw_machine.create ~memory_bytes:(frames * 4096) () in
  let kernel = K.create machine in
  let spcm = Spcm.create kernel () in
  (machine, kernel, spcm)

let test_spcm_grant () =
  let _, kernel, spcm = spcm_setup () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"app" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:16 () in
  (match Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:8 () with
  | Spcm.Granted 8 -> ()
  | _ -> Alcotest.fail "expected full grant");
  check_int "resident" 8 (Seg.resident_pages (K.segment kernel seg));
  check_int "holding tracked" 8 (Spcm.client_stats spcm c).Spcm.cs_holding;
  check_int "market holdings" 8 (Spcm.account_of spcm c).M.holding_pages

let test_spcm_partial_grant () =
  let _, kernel, spcm = spcm_setup ~frames:16 () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"big" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:64 () in
  match Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:64 () with
  | Spcm.Granted n ->
      check_bool "partial" true (n < 64 && n > 0);
      check_int "granted all there was" 16 n
  | _ -> Alcotest.fail "expected partial grant"

let test_spcm_refused_when_broke () =
  let _, kernel, spcm = spcm_setup () in
  (* Income too low to pay for 32 pages over the 10s horizon. *)
  let c = Spcm.register_client ~income:0.0001 spcm ~name:"poor" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:64 () in
  match Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:32 () with
  | Spcm.Refused -> ()
  | _ -> Alcotest.fail "expected refusal"

let test_spcm_return_pages () =
  let _, kernel, spcm = spcm_setup () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"app" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:16 () in
  ignore (Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:8 ());
  let free_before = Spcm.free_frames spcm in
  Spcm.return_pages spcm ~client:c ~seg ~page:0 ~count:8;
  check_int "frames back" (free_before + 8) (Spcm.free_frames spcm);
  check_int "holding zero" 0 (Spcm.client_stats spcm c).Spcm.cs_holding

let test_spcm_color_constraint () =
  let machine, kernel, spcm = spcm_setup () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"colored" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:8 () in
  (match
     Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:3 ~constraint_:(Spcm.Color 5) ()
   with
  | Spcm.Granted 3 -> ()
  | _ -> Alcotest.fail "expected colored grant");
  let attrs = K.get_page_attributes kernel ~seg ~page:0 ~count:3 in
  Array.iter
    (fun a ->
      let f = Option.get a.K.pa_frame in
      check_int "right color" 5 (Hw_phys_mem.frame machine.Hw_machine.mem f).Hw_phys_mem.color)
    attrs

let test_spcm_phys_range_constraint () =
  let _, kernel, spcm = spcm_setup () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"placed" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:8 () in
  let lo = 16 * 4096 and hi = 24 * 4096 in
  (match
     Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:4
       ~constraint_:(Spcm.Phys_range { lo_addr = lo; hi_addr = hi })
       ()
   with
  | Spcm.Granted 4 -> ()
  | _ -> Alcotest.fail "expected range grant");
  let attrs = K.get_page_attributes kernel ~seg ~page:0 ~count:4 in
  Array.iter
    (fun a ->
      let addr = Option.get a.K.pa_phys_addr in
      check_bool "in range" true (addr >= lo && addr < hi))
    attrs

let test_spcm_constrained_exhaustion_gives_partial () =
  (* Only 2 frames of color 7 exist in a 32-frame machine with 16 colors. *)
  let _, kernel, spcm = spcm_setup ~frames:32 () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"colored" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:8 () in
  match
    Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:5 ~constraint_:(Spcm.Color 7) ()
  with
  | Spcm.Granted 2 -> ()
  | Spcm.Granted n -> Alcotest.failf "expected 2, got %d" n
  | _ -> Alcotest.fail "expected partial colored grant"

let test_spcm_reclaims_from_other_clients () =
  let _, kernel, spcm = spcm_setup ~frames:32 () in
  (* Client A holds everything through a manager that returns on
     pressure. *)
  let seg_a = K.create_segment kernel ~name:"a-data" ~pages:32 () in
  let returned = ref 0 in
  let mid =
    K.register_manager kernel ~name:"a-mgr" ~mode:`In_process
      ~on_fault:(fun _ -> ())
      ~on_pressure:(fun ~pages ->
        let give = min pages (Seg.resident_pages (K.segment kernel seg_a)) in
        K.release_frames kernel ~seg:seg_a ~page:0 ~count:32 |> ignore;
        returned := give;
        give)
      ()
  in
  let a = Spcm.register_client ~income:1000.0 ~manager:mid spcm ~name:"hog" () in
  ignore (Spcm.request spcm ~client:a ~dst:seg_a ~dst_page:0 ~count:32 ());
  check_int "hog took everything" 0 (Spcm.free_frames spcm);
  (* Client B's request forces reclamation. *)
  let b = Spcm.register_client ~income:1000.0 spcm ~name:"newcomer" () in
  let seg_b = K.create_segment kernel ~name:"b-data" ~pages:8 () in
  (match Spcm.request spcm ~client:b ~dst:seg_b ~dst_page:0 ~count:8 () with
  | Spcm.Granted n -> check_bool "granted after reclaim" true (n > 0)
  | _ -> Alcotest.fail "expected grant after reclaim");
  check_bool "pressure callback ran" true (!returned > 0)

let test_spcm_source_adapter () =
  let _, kernel, spcm = spcm_setup () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"app" () in
  let source = Spcm.source_for spcm c in
  let seg = K.create_segment kernel ~name:"data" ~pages:8 () in
  check_int "adapter grants" 4 (source ~dst:seg ~dst_page:0 ~count:4)

let test_spcm_note_returned () =
  let _, kernel, spcm = spcm_setup () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"batch" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:16 () in
  ignore (Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:8 ());
  (* The client's manager releases directly to the initial segment (as
     swap_out does), then reconciles the account. *)
  K.release_frames kernel ~seg ~page:0 ~count:8;
  Spcm.note_returned spcm ~client:c ~count:8;
  check_int "holdings reconciled" 0 (Spcm.client_stats spcm c).Spcm.cs_holding;
  check_int "market agrees" 0 (Spcm.account_of spcm c).M.holding_pages

let test_spcm_frame_conservation () =
  let _, kernel, spcm = spcm_setup ~frames:32 () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"app" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:16 () in
  ignore (Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:10 ());
  Spcm.return_pages spcm ~client:c ~seg ~page:0 ~count:5;
  let total = K.frame_owner_total kernel in
  check_int "every frame owned exactly once" 32 total

(* ------------------------------------------------------------------ *)
(* Blocking admission (acquire / pump / sweep)                         *)
(* ------------------------------------------------------------------ *)

let test_acquire_immediate_when_free () =
  let machine, kernel, spcm = spcm_setup () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"app" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:16 () in
  let got = ref (-1) in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      got := Spcm.acquire spcm ~client:c ~dst:seg ~dst_page:0 ~count:8 ());
  Engine.run machine.Hw_machine.engine;
  check_int "granted without queueing" 8 !got;
  check_int "nothing pending" 0 (Spcm.pending_acquires spcm)

let test_acquire_served_in_priority_order () =
  (* A holder takes all 16 frames; three waiters arrive in the order
     low, high, mid and must be served high, mid, low as the holder
     returns 6 frames at a time. *)
  let machine, kernel, spcm = spcm_setup ~frames:16 () in
  let holder = Spcm.register_client ~income:1000.0 spcm ~name:"holder" () in
  let hseg = K.create_segment kernel ~name:"hoard" ~pages:16 () in
  let mk name prio =
    ( Spcm.register_client ~income:1000.0 ~priority:prio spcm ~name (),
      K.create_segment kernel ~name:(name ^ "-seg") ~pages:6 () )
  in
  let lo, lo_seg = mk "lo" 0.0 in
  let hi, hi_seg = mk "hi" 10.0 in
  let mid, mid_seg = mk "mid" 5.0 in
  let order = ref [] in
  let waiter name client seg start =
    Engine.spawn machine.Hw_machine.engine ~name (fun () ->
        Engine.delay start;
        let got = Spcm.acquire spcm ~client ~dst:seg ~dst_page:0 ~count:6 () in
        check_int (name ^ " fully served") 6 got;
        order := name :: !order;
        (* Hand the grant back so the pump can serve the next waiter. *)
        Spcm.return_pages spcm ~client ~seg ~page:0 ~count:6)
  in
  Engine.spawn machine.Hw_machine.engine ~name:"holder" (fun () ->
      ignore (Spcm.request spcm ~client:holder ~dst:hseg ~dst_page:0 ~count:16 ());
      (* Arrival order: lo at 1ms, hi at 2ms, mid at 3ms; one return at
         10ms lets the queue drain head-first. *)
      Engine.delay 10_000.0;
      Spcm.return_pages spcm ~client:holder ~seg:hseg ~page:0 ~count:6);
  waiter "lo" lo lo_seg 1_000.0;
  waiter "hi" hi hi_seg 2_000.0;
  waiter "mid" mid mid_seg 3_000.0;
  Engine.run machine.Hw_machine.engine;
  Alcotest.(check (list string))
    "priority order, not arrival order" [ "hi"; "mid"; "lo" ] (List.rev !order);
  check_int "queue drained" 0 (Spcm.pending_acquires spcm);
  check_bool "defer events counted" true (Spcm.defer_events spcm >= 3)

let test_acquire_refuse_pending_unblocks () =
  let machine, kernel, spcm = spcm_setup ~frames:8 () in
  let holder = Spcm.register_client ~income:1000.0 spcm ~name:"holder" () in
  let hseg = K.create_segment kernel ~name:"hoard" ~pages:8 () in
  let w = Spcm.register_client ~income:1000.0 spcm ~name:"waiter" () in
  let wseg = K.create_segment kernel ~name:"w-seg" ~pages:4 () in
  let got = ref (-1) in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      ignore (Spcm.request spcm ~client:holder ~dst:hseg ~dst_page:0 ~count:8 ());
      Engine.delay 1_000.0;
      check_int "one waiter parked" 1 (Spcm.pending_acquires spcm);
      check_int "one refused" 1 (Spcm.refuse_pending spcm));
  Engine.spawn machine.Hw_machine.engine (fun () ->
      Engine.delay 500.0;
      got := Spcm.acquire spcm ~client:w ~dst:wseg ~dst_page:0 ~count:4 ());
  Engine.run machine.Hw_machine.engine;
  check_int "woken with zero grant" 0 !got;
  check_int "queue empty" 0 (Spcm.pending_acquires spcm)

let test_sweep_reclaims_for_waiter () =
  (* The holder exposes a manager but never returns voluntarily; only the
     sweeper's reclaim can serve the parked waiter. *)
  let machine, kernel, spcm = spcm_setup ~frames:16 () in
  let hseg = K.create_segment kernel ~name:"hoard" ~pages:16 () in
  let mid =
    K.register_manager kernel ~name:"holder-mgr" ~mode:`In_process
      ~on_fault:(fun _ -> ())
      ~on_pressure:(fun ~pages ->
        let give = min pages (Seg.resident_pages (K.segment kernel hseg)) in
        ignore (K.release_frames kernel ~seg:hseg ~page:0 ~count:16);
        give)
      ()
  in
  let holder = Spcm.register_client ~income:1000.0 ~manager:mid spcm ~name:"holder" () in
  let w = Spcm.register_client ~income:1000.0 spcm ~name:"waiter" () in
  let wseg = K.create_segment kernel ~name:"w-seg" ~pages:4 () in
  let got = ref (-1) in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      ignore (Spcm.request spcm ~client:holder ~dst:hseg ~dst_page:0 ~count:16 ());
      Engine.delay 2_000.0;
      check_int "waiter parked" 1 (Spcm.pending_acquires spcm);
      ignore (Spcm.sweep spcm));
  Engine.spawn machine.Hw_machine.engine (fun () ->
      Engine.delay 1_000.0;
      got := Spcm.acquire spcm ~client:w ~dst:wseg ~dst_page:0 ~count:4 ());
  Engine.run machine.Hw_machine.engine;
  check_int "served by sweep reclaim" 4 !got;
  check_int "frames conserved" 16 (K.frame_owner_total kernel)

let () =
  Alcotest.run "spcm"
    [
      ( "market",
        [
          Alcotest.test_case "income accrues" `Quick test_market_income_accrues;
          Alcotest.test_case "holding charge M*D*T" `Quick test_market_holding_charge;
          Alcotest.test_case "free when idle" `Quick test_market_free_when_idle;
          Alcotest.test_case "billable clock pauses" `Quick test_market_billable_clock;
          Alcotest.test_case "savings tax" `Quick test_market_savings_tax;
          Alcotest.test_case "io charge" `Quick test_market_io_charge;
          Alcotest.test_case "afford/bankrupt" `Quick test_market_can_afford_and_bankrupt;
          Alcotest.test_case "holdings nonnegative" `Quick test_market_holdings_never_negative;
          Alcotest.test_case "rejects bad config" `Quick test_market_rejects_bad_config;
          Alcotest.test_case "rejects bad account ops" `Quick test_market_rejects_bad_account_ops;
        ] );
      ( "market-model",
        List.map QCheck_alcotest.to_alcotest [ prop_market_differential ] );
      ( "admission",
        List.map QCheck_alcotest.to_alcotest [ prop_admit_model ]
        @ [
            Alcotest.test_case "FIFO ties and re-insert" `Quick
              test_admit_fifo_ties_and_reinsert;
          ] );
      ( "allocation",
        [
          Alcotest.test_case "grant" `Quick test_spcm_grant;
          Alcotest.test_case "partial grant" `Quick test_spcm_partial_grant;
          Alcotest.test_case "refused when broke" `Quick test_spcm_refused_when_broke;
          Alcotest.test_case "return pages" `Quick test_spcm_return_pages;
          Alcotest.test_case "color constraint" `Quick test_spcm_color_constraint;
          Alcotest.test_case "phys range constraint" `Quick test_spcm_phys_range_constraint;
          Alcotest.test_case "constrained exhaustion partial" `Quick
            test_spcm_constrained_exhaustion_gives_partial;
          Alcotest.test_case "reclaims from clients" `Quick test_spcm_reclaims_from_other_clients;
          Alcotest.test_case "source adapter" `Quick test_spcm_source_adapter;
          Alcotest.test_case "note returned" `Quick test_spcm_note_returned;
          Alcotest.test_case "frame conservation" `Quick test_spcm_frame_conservation;
        ] );
      ( "acquire",
        [
          Alcotest.test_case "immediate when free" `Quick test_acquire_immediate_when_free;
          Alcotest.test_case "served in priority order" `Quick
            test_acquire_served_in_priority_order;
          Alcotest.test_case "refuse_pending unblocks" `Quick test_acquire_refuse_pending_unblocks;
          Alcotest.test_case "sweep reclaims for waiter" `Quick test_sweep_reclaims_for_waiter;
        ] );
    ]
