lib/dbms/db_wal.ml: Epcm_segment Hashtbl Hw_disk
