type slot = { space : int; vpn : int; frame : int }

type t = {
  slots : slot option array;
  mutable hits : int;
  mutable misses : int;
}

let create ?(entries = 64) () =
  if entries <= 0 then invalid_arg "Hw_tlb.create: entries must be positive";
  { slots = Array.make entries None; hits = 0; misses = 0 }

let index t ~space ~vpn = abs ((vpn * 31) lxor space) mod Array.length t.slots

let lookup t ~space ~vpn =
  match t.slots.(index t ~space ~vpn) with
  | Some s when s.space = space && s.vpn = vpn ->
      t.hits <- t.hits + 1;
      Some s.frame
  | Some _ | None ->
      t.misses <- t.misses + 1;
      None

let fill t ~space ~vpn ~frame = t.slots.(index t ~space ~vpn) <- Some { space; vpn; frame }

let invalidate t ~space ~vpn =
  match t.slots.(index t ~space ~vpn) with
  | Some s when s.space = space && s.vpn = vpn -> t.slots.(index t ~space ~vpn) <- None
  | Some _ | None -> ()

let invalidate_space t ~space =
  Array.iteri
    (fun i o -> match o with Some s when s.space = space -> t.slots.(i) <- None | _ -> ())
    t.slots

let flush t = Array.fill t.slots 0 (Array.length t.slots) None

let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
