lib/experiments/exp_table1.mli: Exp_report
