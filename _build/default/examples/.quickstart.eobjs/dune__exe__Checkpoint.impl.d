examples/checkpoint.ml: Epcm_kernel Epcm_manager Epcm_segment Hw_cost Hw_machine Hw_page_data List Mgr_checkpoint Printf Sim_engine Sim_rng
