lib/dbms/db_config.mli:
