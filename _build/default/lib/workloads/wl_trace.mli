(** Virtual-memory activity traces for the Tables 2–3 applications.

    The paper runs diff, uncompress and latex with their input files
    pre-cached in memory, so the measured difference between V++ and
    Ultrix is pure VM-system activity: page allocations on first touch,
    file appends, cached-file read/write calls, plus open/close requests
    forwarded to the manager. A trace captures exactly that activity; the
    ALU work between VM events is a calibrated per-app compute time. *)

type op =
  | Compute of float  (** Microseconds of pure computation. *)
  | Open_input of { file : int; kb : int }
      (** Open an existing file (already cached when the trace runs). *)
  | Open_output of { file : int }  (** Create a new file. *)
  | Read_seq of { file : int; kb : int }  (** Sequential read from start. *)
  | Append of { file : int; kb : int }  (** Sequential append. *)
  | Touch_heap of { pages : int }  (** First touch of fresh heap pages. *)
  | Rescan_heap of { passes : int }
      (** Re-reference every heap page touched so far (the computation's
          data accesses). Warm touches: no faults, no manager calls — they
          exercise the TLB and mapping hash only. *)
  | Close of { file : int }
  | Admin of { requests : int }
      (** Other requests the kernel forwards to the manager (fstat, unlink,
          truncate) — the paper counts these among "Manager Calls". *)

type t = {
  name : string;
  ops : op list;
  heap_pages : int;  (** Total heap the trace touches (segment size). *)
  vpp_library_delta_us : float;
      (** Run-time-library time difference of the V++ build relative to the
          Ultrix build, {e outside} the VM system. The paper attributes the
          residual elapsed-time differences (notably latex's) to "the
          run-time library implementations in V++ and Ultrix"; this
          calibrated constant carries that attribution. The VM costs
          themselves are emergent. *)
}

val total_heap_touches : t -> int
val total_read_kb : t -> int
val total_append_kb : t -> int
val input_files : t -> (int * int) list
(** (file id, size kb) of every [Open_input]. *)

val output_files : t -> int list
val opens : t -> int
val closes : t -> int
val pp : Format.formatter -> t -> unit
