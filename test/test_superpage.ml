(* Superpage (2 MB mapping) tests: promotion on batched migrates and on
   incremental assembly, every demotion trigger (protection change,
   partial eviction, partial migrate, opt-out, teardown), the manager
   opt-ins (Mgr_generic aligned-run fills, Mgr_tiered fast-tier grants
   with demotion auto-split), and qcheck churn pinning the incremental
   frame-conservation audits against their scan references — flat and
   tiered — at 4 KB granularity throughout.

   Machines here use ~super_pages:8 so a "2 MB" region is 8 pages and the
   interesting alignment/splitting cases fit in tens of frames. *)

module Phys = Hw_phys_mem
module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags
module G = Mgr_generic
module T = Mgr_tiered
module Machine = Hw_machine
module Engine = Sim_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let page_size = 4096
let run = 8 (* base pages per superpage in every machine below *)

let flat_kernel ~frames =
  let machine =
    Machine.create ~memory_bytes:(frames * page_size) ~page_size ~super_pages:run ()
  in
  (machine, K.create machine)

let tiered_kernel ~fast ~slow =
  let machine =
    Machine.create ~page_size ~super_pages:run
      ~tiers:
        [
          Phys.dram_tier ~bytes:(fast * page_size);
          Phys.slow_dram_tier ~bytes:(slow * page_size);
        ]
      ()
  in
  (machine, K.create machine)

let audits_agree kernel =
  K.frame_owner_audit kernel = K.frame_owner_audit_scan kernel
  && K.frame_owner_audit_tiered kernel = K.frame_owner_audit_tiered_scan kernel

let conserved machine kernel =
  audits_agree kernel && K.frame_owner_total kernel = Machine.n_frames machine

(* Summing tier column [k] of the per-tier audit over all segments must
   give tier [k]'s frame count. *)
let tier_columns_conserved kernel machine =
  let mem = machine.Machine.mem in
  let totals = Array.make (Phys.n_tiers mem) 0 in
  List.iter
    (fun (_, by_tier) -> Array.iteri (fun k n -> totals.(k) <- totals.(k) + n) by_tier)
    (K.frame_owner_audit_tiered kernel);
  Array.for_all Fun.id
    (Array.init (Phys.n_tiers mem) (fun k ->
         let _, count = Phys.tier_bounds mem k in
         totals.(k) = count))

let ro = Flags.of_list [ Flags.read_only ]

(* ------------------------------------------------------------------ *)
(* Promotion                                                           *)
(* ------------------------------------------------------------------ *)

(* One grant_superpage_run = one contiguous MigratePages that promotes as
   part of the call; a second grant resumes from the returned cursor. *)
let test_promote_via_grant () =
  let machine, kernel = flat_kernel ~frames:32 in
  let seg = K.create_segment kernel ~name:"sp" ~pages:16 () in
  K.set_superpages kernel ~seg ~enabled:true;
  (match K.grant_superpage_run kernel ~dst:seg ~dst_page:0 ~start:0 with
  | Some base -> check_int "first run at frame 0" 0 base
  | None -> Alcotest.fail "no run found in a boot-fresh machine");
  let s = K.segment kernel seg in
  check_int "one region promoted" 1 (List.length (Seg.superpage_regions s));
  check_bool "region 0 backed by frame 0" true (Seg.superpage_regions s = [ (0, 0) ]);
  check_int "promotion counted" 1 (K.stats kernel).K.sp_promotions;
  check_int "run resident" run (Seg.resident_pages s);
  (match K.grant_superpage_run kernel ~dst:seg ~dst_page:run ~start:run with
  | Some base -> check_int "second run follows the cursor" run base
  | None -> Alcotest.fail "second run not found");
  check_bool "two regions" true (Seg.superpage_regions (K.segment kernel seg) = [ (0, 0); (1, run) ]);
  check_bool "conserved" true (conserved machine kernel)

(* Assembling an aligned identity run one single-page MigratePages at a
   time promotes on the call that completes the run — the batched install
   pass checks every region a migrate touches. *)
let test_promote_incremental_assembly () =
  let machine, kernel = flat_kernel ~frames:32 in
  let init = K.initial_segment kernel in
  let seg = K.create_segment kernel ~name:"sp" ~pages:16 () in
  K.set_superpages kernel ~seg ~enabled:true;
  for p = 0 to run - 1 do
    check_int
      (Printf.sprintf "no promotion before page %d arrives" p)
      0
      (K.stats kernel).K.sp_promotions;
    (* Boot slot p holds frame p, so this builds frames 0..7 at pages
       0..7: an aligned identity run. *)
    K.migrate_pages kernel ~src:init ~dst:seg ~src_page:p ~dst_page:p ~count:1 ()
  done;
  check_int "promoted when the run completed" 1 (K.stats kernel).K.sp_promotions;
  check_bool "region recorded" true
    (Seg.superpage_regions (K.segment kernel seg) = [ (0, 0) ]);
  check_bool "conserved" true (conserved machine kernel)

(* A misaligned or non-contiguous run must not promote. *)
let test_no_promotion_without_alignment () =
  let machine, kernel = flat_kernel ~frames:32 in
  let init = K.initial_segment kernel in
  let seg = K.create_segment kernel ~name:"sp" ~pages:16 () in
  K.set_superpages kernel ~seg ~enabled:true;
  (* Frames 4..11 are contiguous but 4 mod 8 <> 0: never promotable. *)
  K.migrate_pages kernel ~src:init ~dst:seg ~src_page:4 ~dst_page:0 ~count:run ();
  check_int "misaligned run not promoted" 0 (K.stats kernel).K.sp_promotions;
  check_bool "no region" true (Seg.superpage_regions (K.segment kernel seg) = []);
  check_bool "conserved" true (conserved machine kernel)

(* ------------------------------------------------------------------ *)
(* Demotion triggers                                                   *)
(* ------------------------------------------------------------------ *)

let promoted_segment kernel =
  let seg = K.create_segment kernel ~name:"sp" ~pages:16 () in
  K.set_superpages kernel ~seg ~enabled:true;
  (match K.grant_superpage_run kernel ~dst:seg ~dst_page:0 ~start:0 with
  | Some _ -> ()
  | None -> Alcotest.fail "no run found");
  seg

let test_demote_on_protection_change () =
  let machine, kernel = flat_kernel ~frames:32 in
  let seg = promoted_segment kernel in
  K.modify_page_flags kernel ~seg ~page:3 ~count:1 ~set_flags:ro ();
  check_int "split on protection change" 1 (K.stats kernel).K.sp_demotions;
  check_bool "region gone" true (Seg.superpage_regions (K.segment kernel seg) = []);
  check_int "pages still resident at 4 KB" run (Seg.resident_pages (K.segment kernel seg));
  check_bool "conserved" true (conserved machine kernel)

let test_demote_on_partial_eviction () =
  let machine, kernel = flat_kernel ~frames:32 in
  let seg = promoted_segment kernel in
  K.release_frames kernel ~seg ~page:2 ~count:2;
  check_int "split on partial eviction" 1 (K.stats kernel).K.sp_demotions;
  check_bool "region gone" true (Seg.superpage_regions (K.segment kernel seg) = []);
  check_int "only the released pages left" (run - 2)
    (Seg.resident_pages (K.segment kernel seg));
  check_bool "conserved" true (conserved machine kernel)

let test_demote_on_partial_migrate () =
  let machine, kernel = flat_kernel ~frames:32 in
  let seg = promoted_segment kernel in
  let other = K.create_segment kernel ~name:"other" ~pages:4 () in
  K.migrate_pages kernel ~src:seg ~dst:other ~src_page:5 ~dst_page:0 ~count:1 ();
  check_int "split on partial migrate" 1 (K.stats kernel).K.sp_demotions;
  check_bool "region gone" true (Seg.superpage_regions (K.segment kernel seg) = []);
  check_int "source lost one page" (run - 1) (Seg.resident_pages (K.segment kernel seg));
  check_int "destination gained it" 1 (Seg.resident_pages (K.segment kernel other));
  check_bool "conserved" true (conserved machine kernel)

let test_opt_out_demotes_all () =
  let machine, kernel = flat_kernel ~frames:32 in
  let seg = promoted_segment kernel in
  ignore (K.grant_superpage_run kernel ~dst:seg ~dst_page:run ~start:run);
  check_int "two regions promoted" 2 (K.stats kernel).K.sp_promotions;
  K.set_superpages kernel ~seg ~enabled:false;
  check_int "opt-out split both" 2 (K.stats kernel).K.sp_demotions;
  check_bool "no regions" true (Seg.superpage_regions (K.segment kernel seg) = []);
  check_int "all pages still resident" (2 * run) (Seg.resident_pages (K.segment kernel seg));
  check_bool "conserved" true (conserved machine kernel)

let test_destroy_promoted_segment () =
  let machine, kernel = flat_kernel ~frames:32 in
  let seg = promoted_segment kernel in
  K.destroy_segment kernel seg;
  check_bool "every frame back with the initial segment" true (conserved machine kernel);
  check_int "initial segment holds all frames" (Machine.n_frames machine)
    (Seg.resident_pages (K.segment kernel (K.initial_segment kernel)))

(* ------------------------------------------------------------------ *)
(* Manager opt-in: Mgr_generic streaming                               *)
(* ------------------------------------------------------------------ *)

(* A 2-region streaming segment under Mgr_generic with an sp_source: one
   missing fault per region on the cold pass, none on the warm rescan,
   and a partial eviction splits back to per-page 4 KB faults. *)
let test_generic_superpage_stream () =
  let machine, kernel = flat_kernel ~frames:64 in
  let backing = Mgr_backing.memory () in
  let sp_cursor = ref 0 in
  let sp_source ~dst ~dst_page =
    match K.grant_superpage_run kernel ~dst ~dst_page ~start:!sp_cursor with
    | Some base ->
        sp_cursor := base + run;
        run
    | None -> 0
  in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  let pager =
    G.create kernel ~name:"stream" ~mode:`In_process ~backing ~source ~sp_source
      ~pool_capacity:32 ~refill_batch:8 ()
  in
  let seg = G.create_segment pager ~name:"heap" ~pages:(2 * run) ~kind:G.Anon ~superpages:true () in
  Engine.spawn machine.Machine.engine (fun () ->
      for page = 0 to (2 * run) - 1 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Write
      done;
      for page = 0 to (2 * run) - 1 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Read
      done);
  Engine.run machine.Machine.engine;
  let stats = K.stats kernel in
  check_int "one missing fault per region" 2 stats.K.faults_missing;
  check_int "both regions promoted" 2 stats.K.sp_promotions;
  check_int "no splits yet" 0 stats.K.sp_demotions;
  check_bool "conserved after the stream" true (conserved machine kernel);
  (* Evict part of region 0: the split is charged once, and re-touching
     the hole faults page by page through the ordinary 4 KB path. *)
  Engine.spawn machine.Machine.engine (fun () ->
      K.release_frames kernel ~seg ~page:0 ~count:2;
      for page = 0 to 2 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Write
      done);
  Engine.run machine.Machine.engine;
  check_int "partial eviction split the region" 1 (K.stats kernel).K.sp_demotions;
  check_int "refaults are per page" 4 (K.stats kernel).K.faults_missing;
  check_bool "conserved after the split" true (conserved machine kernel)

(* ------------------------------------------------------------------ *)
(* Manager opt-in: Mgr_tiered fast-tier grants                         *)
(* ------------------------------------------------------------------ *)

(* A superpage-opted segment bigger than the fast tier under Mgr_tiered:
   region fills grant whole fast-tier runs, tier pressure then demotes
   cold pages — auto-splitting promoted runs — and the per-tier audits
   stay exact throughout. *)
let test_tiered_superpage_fill_and_split () =
  let machine, kernel = tiered_kernel ~fast:16 ~slow:32 in
  let mgr =
    T.create kernel ~fast_pool_capacity:4 ~slow_pool_capacity:4 ~refill_batch:4 ~reclaim_batch:2
      ()
  in
  let seg = T.create_segment mgr ~name:"hot" ~pages:24 ~superpages:true () in
  Engine.spawn machine.Machine.engine (fun () ->
      for page = 0 to 23 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Write
      done;
      for page = 0 to 23 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Read
      done);
  Engine.run machine.Machine.engine;
  let stats = K.stats kernel in
  check_bool "at least one region fill" true ((T.stats mgr).T.sp_fills >= 1);
  check_bool "promotions happened" true (stats.K.sp_promotions >= 1);
  check_bool "tier pressure split a promoted run" true (stats.K.sp_demotions >= 1);
  check_bool "audits = scans" true (audits_agree kernel);
  check_bool "tier columns conserved" true (tier_columns_conserved kernel machine);
  check_int "no frame lost" (Machine.n_frames machine) (K.frame_owner_total kernel)

(* ------------------------------------------------------------------ *)
(* qcheck churn: conservation through promote/split storms             *)
(* ------------------------------------------------------------------ *)

type churn_op =
  | C_grant of int  (** region index: grant a run at that region if empty *)
  | C_release of int * int  (** page, count *)
  | C_protect of int
  | C_unprotect of int
  | C_migrate_out of int  (** move one resident page to the side segment *)
  | C_toggle  (** opt the segment out and back in (splits everything) *)

let churn_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun r -> C_grant r) (int_bound 1));
        (3, map (fun (p, c) -> C_release (p, c)) (pair (int_bound 15) (int_range 1 4)));
        (2, map (fun p -> C_protect p) (int_bound 15));
        (2, map (fun p -> C_unprotect p) (int_bound 15));
        (2, map (fun p -> C_migrate_out p) (int_bound 15));
        (1, return C_toggle);
      ])

(* Flat churn: every op keeps the incremental audit equal to the scan and
   the frame total exact — promotion and splitting never disturb 4 KB
   residency bookkeeping. *)
let prop_flat_churn_conserves =
  QCheck.Test.make ~name:"superpage churn conserves frames (flat)" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) churn_op_gen))
    (fun ops ->
      let machine, kernel = flat_kernel ~frames:32 in
      let seg = K.create_segment kernel ~name:"churn" ~pages:16 () in
      let side = K.create_segment kernel ~name:"side" ~pages:16 () in
      K.set_superpages kernel ~seg ~enabled:true;
      let enabled = ref true in
      let s () = K.segment kernel seg in
      let region_empty r =
        let ok = ref true in
        for p = r * run to ((r + 1) * run) - 1 do
          if (Seg.page (s ()) p).Seg.frame <> None then ok := false
        done;
        !ok
      in
      let apply = function
        | C_grant r ->
            if region_empty r then
              ignore (K.grant_superpage_run kernel ~dst:seg ~dst_page:(r * run) ~start:0)
        | C_release (page, count) ->
            let count = min count (16 - page) in
            K.release_frames kernel ~seg ~page ~count
        | C_protect page -> K.modify_page_flags kernel ~seg ~page ~count:1 ~set_flags:ro ()
        | C_unprotect page -> K.modify_page_flags kernel ~seg ~page ~count:1 ~clear_flags:ro ()
        | C_migrate_out page ->
            if
              (Seg.page (s ()) page).Seg.frame <> None
              && (Seg.page (K.segment kernel side) page).Seg.frame = None
            then
              K.migrate_pages kernel ~src:seg ~dst:side ~src_page:page ~dst_page:page ~count:1 ()
        | C_toggle ->
            enabled := not !enabled;
            K.set_superpages kernel ~seg ~enabled:!enabled
      in
      List.for_all (fun op -> apply op; conserved machine kernel) ops)

(* Tiered churn: random touch storms on a superpage-opted segment under
   Mgr_tiered (region grants, clock demotion splitting runs across the
   tier boundary, compressed-store refetches) keep both per-tier audits
   equal to their scans and every tier column exact. *)
let prop_tiered_churn_conserves =
  QCheck.Test.make ~name:"superpage churn conserves frames (tiered)" ~count:25
    (QCheck.make QCheck.Gen.(list_size (int_range 20 120) (int_bound 23)))
    (fun pages ->
      let machine, kernel = tiered_kernel ~fast:16 ~slow:32 in
      let mgr =
        T.create kernel ~fast_pool_capacity:4 ~slow_pool_capacity:4 ~refill_batch:4
          ~reclaim_batch:2 ()
      in
      let seg = T.create_segment mgr ~name:"churn" ~pages:24 ~superpages:true () in
      let ok = ref true in
      Engine.spawn machine.Machine.engine (fun () ->
          List.iteri
            (fun i page ->
              let access = if i mod 3 = 0 then Mgr.Write else Mgr.Read in
              K.touch kernel ~space:seg ~page ~access;
              if not (audits_agree kernel) then ok := false)
            pages);
      Engine.run machine.Machine.engine;
      !ok && audits_agree kernel
      && tier_columns_conserved kernel machine
      && K.frame_owner_total kernel = Machine.n_frames machine)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_flat_churn_conserves; prop_tiered_churn_conserves ]

let () =
  Alcotest.run "superpage"
    [
      ( "promotion",
        [
          Alcotest.test_case "grant promotes an aligned run" `Quick test_promote_via_grant;
          Alcotest.test_case "incremental assembly promotes on completion" `Quick
            test_promote_incremental_assembly;
          Alcotest.test_case "misaligned runs never promote" `Quick
            test_no_promotion_without_alignment;
        ] );
      ( "demotion",
        [
          Alcotest.test_case "protection change splits" `Quick test_demote_on_protection_change;
          Alcotest.test_case "partial eviction splits" `Quick test_demote_on_partial_eviction;
          Alcotest.test_case "partial migrate splits" `Quick test_demote_on_partial_migrate;
          Alcotest.test_case "opt-out splits everything" `Quick test_opt_out_demotes_all;
          Alcotest.test_case "teardown returns every frame" `Quick test_destroy_promoted_segment;
        ] );
      ( "managers",
        [
          Alcotest.test_case "generic streaming: one fault per region" `Quick
            test_generic_superpage_stream;
          Alcotest.test_case "tiered: region fills and pressure splits" `Quick
            test_tiered_superpage_fill_and_split;
        ] );
      ("properties", qcheck_cases);
    ]
