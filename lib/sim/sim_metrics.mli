(** Deterministic observability for the simulator.

    Two surfaces, both pure data:

    - {b Cost attribution}: every [Hw_machine.charge] can carry a label;
      labels nest under the spans opened with {!with_span}, giving
      hierarchical paths like ["fault/missing/kernel/migrate"]. Summing a
      path prefix decomposes an emergent total (e.g. a Table 1 row) into
      its charged constituents.
    - {b Latency histograms}: {!observe} feeds log-bucketed histograms
      keyed by operation kind (["disk.read"], ["kernel.fault"], ...),
      answering p50/p95/p99/max without storing samples.

    A metrics sink is {e disabled} by default: every entry point is then a
    no-op, so instrumented code paths behave byte-identically to the
    uninstrumented build. All state is plain hash tables filled in by the
    (deterministic) simulation, so recorded data is seed-for-seed
    reproducible.

    Caveat: the span stack is per-sink (i.e. per machine), not per
    process. When simulation processes interleave inside another process's
    span, their charges are attributed under it. The engine is
    deterministic, so the attribution is too — but treat cross-process
    paths as "charged while serving", not strict call-tree ancestry. *)

module Hist : sig
  (** Log-bucketed histogram: four buckets per octave (~19% relative
      error), sparse storage, exact count/total/min/max. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit

  val merge : t -> t -> t
  (** Pure: neither argument is mutated. Bucket-wise sum — associative and
      commutative up to float rounding of [total]. *)

  val count : t -> int
  val total : t -> float

  val min_value : t -> float
  (** 0 when empty. *)

  val max_value : t -> float
  (** 0 when empty. *)

  val quantile : t -> float -> float
  (** [quantile t p] for [p] in percent (50.0 = median): nearest-rank over
      the buckets, answering the bucket's upper bound clamped into the
      observed [min, max]. Monotone in [p]; 0 when empty. *)

  val p50 : t -> float
  val p95 : t -> float
  val p99 : t -> float

  val buckets : t -> (int * int) list
  (** Sparse (bucket index, count) pairs, ascending; values [<= 0] are
      counted in {!count} but kept out of the bucket list. *)

  val bucket_upper_bound : int -> float
  (** Upper bound of a bucket index, in the recorded unit. *)
end

type t

val create : ?enabled:bool -> unit -> t
(** Default [enabled:false]. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val reset : t -> unit
(** Drop all recorded data (and any dangling span state); the enabled flag
    is preserved. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk with a span pushed; charges recorded inside get the span's
    name as a path prefix. Exception-safe; when disabled just runs the
    thunk. *)

val current_path : t -> string
(** The open span path, outermost first ("" at top level). *)

val record_charge : t -> ?label:string -> float -> unit
(** Attribute a charge of so-many units to [current span path ^ "/" ^
    label] (label defaults to ["unattributed"]). No-op when disabled. *)

val observe : t -> kind:string -> float -> unit
(** Feed one latency sample into the histogram for [kind], creating it on
    first use. No-op when disabled. *)

val charges : t -> (string * int * float) list
(** All attribution paths, sorted: (path, number of charges, total units). *)

val charged_total : ?prefix:string -> t -> float
(** Sum of charges whose path starts with [prefix] (all of them by
    default). *)

val kinds : t -> string list
(** Histogram kinds recorded so far, sorted. *)

val hist : t -> kind:string -> Hist.t option

val hist_to_json : Hist.t -> Sim_json.t
val to_json : t -> Sim_json.t
(** Stable encoding of the full sink (charge table plus latency summaries);
    equal sinks produce byte-identical strings via {!Sim_json.to_string}. *)
