(* Quickstart: the external page-cache management API in five minutes.

   Build a machine, boot the kernel, install an in-process segment
   manager, take a fault, watch MigratePages move a frame, and read the
   page attributes back — the whole Figure 2 protocol on one page of
   code.

   Run with: dune exec examples/quickstart.exe *)

module K = Epcm_kernel
module Seg = Epcm_segment

let () =
  (* A DECstation-like machine with 4 MB of physical memory and tracing
     on, so we can print the fault protocol afterwards. *)
  let machine = Hw_machine.create ~memory_bytes:(4 * 1024 * 1024) ~trace:true () in
  let kernel = K.create machine in
  Printf.printf "Booted: %d frames of %d bytes\n" (Hw_machine.n_frames machine)
    (Hw_machine.page_size machine);

  (* At boot, every page frame lives in the well-known initial segment in
     physical-address order. The system page cache manager would normally
     parcel it out; here we write a two-line "source" that grants frames
     straight from it. *)
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let granted = ref 0 in
    let init_seg = K.segment kernel init in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in

  (* A segment manager built from the generic one (paper §2.2): in-process
     fault delivery, a free-page segment, default policies. *)
  let backing = Mgr_backing.memory () in
  let mgr = Mgr_generic.create kernel ~name:"demo" ~mode:`In_process ~backing ~source () in

  (* An anonymous segment (think: heap) managed by it. *)
  let heap = Mgr_generic.create_segment mgr ~name:"heap" ~pages:16 ~kind:Mgr_generic.Anon () in
  Printf.printf "Created heap segment %d (16 pages), manager %d\n" heap
    (Mgr_generic.manager_id mgr);

  (* Prime the manager's free-page pool outside the traced region, then
     take the fault. No zero-fill happens — that's the V++ fault-time win
     over Ultrix. *)
  Mgr_generic.ensure_pool mgr ~count:8;
  Sim_trace.clear machine.Hw_machine.trace;
  K.touch kernel ~space:heap ~page:3 ~access:Epcm_manager.Write;
  Printf.printf "Touched page 3: %d fault(s), %d MigratePages call(s)\n"
    (K.stats kernel).K.faults_missing (K.stats kernel).K.migrate_calls;

  (* GetPageAttributes: flags plus the physical address — the information
     coloring/placement policies build on. *)
  let attrs = K.get_page_attributes kernel ~seg:heap ~page:3 ~count:1 in
  (match attrs.(0).K.pa_phys_addr with
  | Some addr -> Printf.printf "Page 3 is frame %d at physical 0x%x, flags=%s\n"
                   (Option.get attrs.(0).K.pa_frame) addr
                   (Epcm_flags.to_string attrs.(0).K.pa_flags)
  | None -> assert false);

  (* Write data through the UIO block interface and read it back. *)
  K.uio_write kernel ~seg:heap ~page:3 (Hw_page_data.of_string "hello, page cache");
  let data = K.uio_read kernel ~seg:heap ~page:3 in
  Printf.printf "UIO round trip: %s\n" (Hw_page_data.describe data);

  (* The manager can manipulate even the dirty flag — something mprotect
     cannot do (paper §2.1). *)
  K.modify_page_flags kernel ~seg:heap ~page:3 ~count:1 ~clear_flags:Epcm_flags.dirty ();
  let attrs = K.get_page_attributes kernel ~seg:heap ~page:3 ~count:1 in
  Printf.printf "After ModifyPageFlags: flags=%s\n"
    (Epcm_flags.to_string attrs.(0).K.pa_flags);

  (* And the Figure 2 protocol we just executed: *)
  print_endline "\nFault protocol trace (Figure 2):";
  print_string (Sim_trace.dump machine.Hw_machine.trace)
