lib/hw/hw_machine.mli: Hw_cost Hw_disk Hw_page_table Hw_phys_mem Hw_tlb Sim_engine Sim_trace
