(* Deterministic observability: hierarchical cost-attribution spans over
   Hw_machine.charge, and log-bucketed latency histograms keyed by
   operation kind. Disabled by default; when disabled every entry point is
   a cheap no-op so instrumented code behaves byte-identically. *)

module Hist = struct
  (* Log-bucketed: four buckets per octave (~19% relative resolution),
     which spans sub-microsecond TLB refills to multi-second disk convoys
     in a few hundred sparse buckets. Values <= 0 land in a dedicated
     bucket reported as the observed minimum. *)

  let buckets_per_octave = 4.0

  type t = {
    table : (int, int) Hashtbl.t;
    mutable zero_count : int;
    mutable count : int;
    mutable total : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    {
      table = Hashtbl.create 32;
      zero_count = 0;
      count = 0;
      total = 0.0;
      min_v = infinity;
      max_v = neg_infinity;
    }

  let bucket_of v = int_of_float (Float.floor (Float.log2 v *. buckets_per_octave))
  let bucket_upper_bound i = Float.exp2 (float_of_int (i + 1) /. buckets_per_octave)

  let add t v =
    t.count <- t.count + 1;
    t.total <- t.total +. v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    if v <= 0.0 then t.zero_count <- t.zero_count + 1
    else begin
      let i = bucket_of v in
      Hashtbl.replace t.table i ((try Hashtbl.find t.table i with Not_found -> 0) + 1)
    end

  let count t = t.count
  let total t = t.total
  let min_value t = if t.count = 0 then 0.0 else t.min_v
  let max_value t = if t.count = 0 then 0.0 else t.max_v

  let buckets t =
    Hashtbl.fold (fun i c acc -> (i, c) :: acc) t.table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let merge a b =
    let t = create () in
    t.zero_count <- a.zero_count + b.zero_count;
    t.count <- a.count + b.count;
    t.total <- a.total +. b.total;
    t.min_v <- Float.min a.min_v b.min_v;
    t.max_v <- Float.max a.max_v b.max_v;
    let fold src =
      Hashtbl.iter
        (fun i c ->
          Hashtbl.replace t.table i ((try Hashtbl.find t.table i with Not_found -> 0) + c))
        src.table
    in
    fold a;
    fold b;
    t

  (* Nearest-rank over the sorted buckets; a bucket answers with its upper
     bound clamped into the observed [min, max], so quantiles never invent
     values outside the recorded range and remain monotone in [p]. *)
  let quantile t p =
    if t.count = 0 then 0.0
    else begin
      let rank =
        let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
        Stdlib.max 1 (Stdlib.min t.count r)
      in
      if rank <= t.zero_count then t.min_v
      else begin
        let remaining = ref (rank - t.zero_count) in
        let answer = ref t.max_v in
        (try
           List.iter
             (fun (i, c) ->
               remaining := !remaining - c;
               if !remaining <= 0 then begin
                 answer := Float.min (Float.max (bucket_upper_bound i) t.min_v) t.max_v;
                 raise Exit
               end)
             (buckets t)
         with Exit -> ());
        !answer
      end
    end

  let p50 t = quantile t 50.0
  let p95 t = quantile t 95.0
  let p99 t = quantile t 99.0
end

type entry = { mutable n : int; mutable us : float }

type t = {
  mutable on : bool;
  mutable stack : string list;  (* innermost span first *)
  charges : (string, entry) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
}

let create ?(enabled = false) () =
  { on = enabled; stack = []; charges = Hashtbl.create 64; hists = Hashtbl.create 16 }

let enabled t = t.on
let set_enabled t on = t.on <- on

let reset t =
  t.stack <- [];
  Hashtbl.reset t.charges;
  Hashtbl.reset t.hists

let with_span t name f =
  if not t.on then f ()
  else begin
    t.stack <- name :: t.stack;
    Fun.protect ~finally:(fun () -> t.stack <- List.tl t.stack) f
  end

let current_path t = String.concat "/" (List.rev t.stack)

let record_charge t ?label us =
  if t.on then begin
    let leaf = Option.value label ~default:"unattributed" in
    let path = String.concat "/" (List.rev (leaf :: t.stack)) in
    let e =
      match Hashtbl.find_opt t.charges path with
      | Some e -> e
      | None ->
          let e = { n = 0; us = 0.0 } in
          Hashtbl.replace t.charges path e;
          e
    in
    e.n <- e.n + 1;
    e.us <- e.us +. us
  end

let observe t ~kind us =
  if t.on then begin
    let h =
      match Hashtbl.find_opt t.hists kind with
      | Some h -> h
      | None ->
          let h = Hist.create () in
          Hashtbl.replace t.hists kind h;
          h
    in
    Hist.add h us
  end

let charges t =
  Hashtbl.fold (fun path e acc -> (path, e.n, e.us) :: acc) t.charges []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let charged_total ?(prefix = "") t =
  Hashtbl.fold
    (fun path e acc ->
      if prefix = "" || (String.length path >= String.length prefix
                         && String.sub path 0 (String.length prefix) = prefix)
      then acc +. e.us
      else acc)
    t.charges 0.0

let kinds t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.hists [] |> List.sort compare

let hist t ~kind = Hashtbl.find_opt t.hists kind

let hist_to_json h =
  Sim_json.Obj
    [
      ("count", Sim_json.Num (float_of_int (Hist.count h)));
      ("total_us", Sim_json.Num (Hist.total h));
      ("min_us", Sim_json.Num (Hist.min_value h));
      ("p50_us", Sim_json.Num (Hist.p50 h));
      ("p95_us", Sim_json.Num (Hist.p95 h));
      ("p99_us", Sim_json.Num (Hist.p99 h));
      ("max_us", Sim_json.Num (Hist.max_value h));
      ( "buckets",
        Sim_json.List
          (List.map
             (fun (i, c) ->
               Sim_json.Obj
                 [
                   ("upper_us", Sim_json.Num (Hist.bucket_upper_bound i));
                   ("count", Sim_json.Num (float_of_int c));
                 ])
             (Hist.buckets h)) );
    ]

let to_json t =
  Sim_json.Obj
    [
      ( "charges",
        Sim_json.List
          (List.map
             (fun (path, n, us) ->
               Sim_json.Obj
                 [
                   ("path", Sim_json.Str path);
                   ("count", Sim_json.Num (float_of_int n));
                   ("us", Sim_json.Num us);
                 ])
             (charges t)) );
      ( "latency",
        Sim_json.List
          (List.map
             (fun kind ->
               match hist t ~kind with
               | None -> Sim_json.Null
               | Some h ->
                   (match hist_to_json h with
                   | Sim_json.Obj fields -> Sim_json.Obj (("kind", Sim_json.Str kind) :: fields)
                   | other -> other))
             (kinds t)) );
    ]
