module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags
module Machine = Hw_machine
module Phys = Hw_phys_mem
module Pt = Hw_page_table
module Tlb = Hw_tlb

type error =
  | No_such_segment of int
  | Dead_segment of int
  | Page_out_of_range of { seg : int; page : int; length : int }
  | Frame_present of { seg : int; page : int }
  | No_frame of { seg : int; page : int }
  | No_manager of int
  | No_such_manager of int
  | Binding_overlap of { seg : int; at : int; len : int }
  | Binding_out_of_range of { seg : int; at : int; len : int }
  | Page_size_mismatch of { src : int; dst : int }
  | Fault_recursion of { manager : int; depth : int }
  | Unresolved_fault of { seg : int; page : int }
  | Initial_segment_operation
  | Tier_mismatch of { seg : int; page : int; frame : int; want : int; got : int }

exception Error of error

let error_to_string = function
  | No_such_segment s -> Printf.sprintf "no such segment %d" s
  | Dead_segment s -> Printf.sprintf "segment %d has been destroyed" s
  | Page_out_of_range { seg; page; length } ->
      Printf.sprintf "page %d out of range of segment %d (length %d)" page seg length
  | Frame_present { seg; page } ->
      Printf.sprintf "segment %d page %d already holds a frame" seg page
  | No_frame { seg; page } -> Printf.sprintf "segment %d page %d holds no frame" seg page
  | No_manager s -> Printf.sprintf "segment %d has no manager" s
  | No_such_manager m -> Printf.sprintf "no such manager %d" m
  | Binding_overlap { seg; at; len } ->
      Printf.sprintf "binding [%d,%d) overlaps an existing binding in segment %d" at (at + len)
        seg
  | Binding_out_of_range { seg; at; len } ->
      Printf.sprintf "binding [%d,%d) exceeds a segment range (space or target %d)" at (at + len)
        seg
  | Page_size_mismatch { src; dst } ->
      Printf.sprintf "page size mismatch between segments %d and %d" src dst
  | Fault_recursion { manager; depth } ->
      Printf.sprintf "fault recursion limit hit in manager %d at depth %d" manager depth
  | Unresolved_fault { seg; page } ->
      Printf.sprintf "manager returned without resolving fault at segment %d page %d" seg page
  | Initial_segment_operation -> "operation not permitted on the initial segment"
  | Tier_mismatch { seg; page; frame; want; got } ->
      Printf.sprintf "segment %d page %d holds frame %d of tier %d, not the requested tier %d"
        seg page frame got want

let fail e = raise (Error e)

type page_attributes = {
  pa_flags : Flags.t;
  pa_frame : int option;
  pa_phys_addr : int option;
}

type stats = {
  mutable faults_missing : int;
  mutable faults_protection : int;
  mutable faults_cow : int;
  mutable manager_calls : int;
  mutable migrate_calls : int;
  mutable migrated_pages : int;
  mutable modify_flag_calls : int;
  mutable get_attribute_calls : int;
  mutable uio_reads : int;
  mutable uio_writes : int;
  mutable page_copies : int;
  mutable page_zeros : int;
  mutable touches : int;
  mutable sp_promotions : int;
  mutable sp_demotions : int;
}

(* Translation-cache keys pointing at one resolved slot. *)
type keyset =
  | Single of int * int  (* space, vpn *)
  | Many of (int * int, unit) Hashtbl.t

type t = {
  machine : Machine.t;
  segments : (int, Seg.t) Hashtbl.t;
  managers : (int, Mgr.t) Hashtbl.t;
  mutable next_seg : int;
  mutable next_mgr : int;
  init_seg : int;
  stats : stats;
  per_manager_calls : (int, int ref) Hashtbl.t;
  (* Reverse index: resolved slot -> translation-cache keys that point at
     it, so migrating or reprotecting a slot can invalidate precisely. The
     overwhelmingly common case is a slot cached under exactly one key
     (its own space), so that case is an immediate pair; a slot shared by
     several spaces upgrades to a small hash set, keeping recording O(1)
     rather than a linear membership scan. *)
  cached_keys : (int * int, keyset) Hashtbl.t;
  mutable fault_depth : int;
  max_fault_depth : int;
  (* Superpage guards: [sp_segs] counts segments opted into superpage
     mappings, [sp_live] counts promoted regions machine-wide. Both zero
     on machines that never opt in, so every superpage pass below is a
     single integer compare on the 4 KB hot paths — the same discipline
     as the [Phys.n_tiers mem > 1] tier guards. *)
  mutable sp_segs : int;
  mutable sp_live : int;
}

let fresh_stats () =
  {
    faults_missing = 0;
    faults_protection = 0;
    faults_cow = 0;
    manager_calls = 0;
    migrate_calls = 0;
    migrated_pages = 0;
    modify_flag_calls = 0;
    get_attribute_calls = 0;
    uio_reads = 0;
    uio_writes = 0;
    page_copies = 0;
    page_zeros = 0;
    touches = 0;
    sp_promotions = 0;
    sp_demotions = 0;
  }

let charge ?label t us = Machine.charge ?label t.machine us
let cost t = t.machine.Machine.cost

(* Physically-indexed cache passes. Guarded on the machine's cache count
   — one integer compare on machines built without [?cache], the same
   discipline as the tier and superpage guards — so a cache-less machine
   is bit-identical to the pre-cache model. Each reference goes to the
   cache of the frame's tier (a node-local L2). *)

(* One data reference: the line at the frame's base address. *)
let cache_touch t frame_idx =
  let caches = t.machine.Machine.caches in
  if Array.length caches > 0 then begin
    let mem = t.machine.Machine.mem in
    let cache = caches.(Phys.tier_of_frame mem frame_idx) in
    if not (Hw_cache.access cache ~phys_addr:(Phys.frame mem frame_idx).Phys.addr) then
      charge ~label:"kernel/cache_miss" t (cost t).Hw_cost.cache_miss_penalty
  end

(* A whole-page data transfer (UIO copy): sweep every line. *)
let cache_sweep t frame_idx =
  let caches = t.machine.Machine.caches in
  if Array.length caches > 0 then begin
    let mem = t.machine.Machine.mem in
    let cache = caches.(Phys.tier_of_frame mem frame_idx) in
    let before = Hw_cache.misses cache in
    Hw_cache.touch_page cache ~phys_addr:(Phys.frame mem frame_idx).Phys.addr
      ~page_bytes:(Phys.page_size mem);
    let missed = Hw_cache.misses cache - before in
    if missed > 0 then
      charge ~label:"kernel/cache_miss" t
        (float_of_int missed *. (cost t).Hw_cost.cache_miss_penalty)
  end

(* Every segment's per-tier resident counters follow the machine's real
   tier layout. *)
let make_segment machine ~sid ~name ~page_size ~pages =
  let mem = machine.Machine.mem in
  Seg.make ~n_tiers:(Phys.n_tiers mem) ~tier_of:(Phys.tier_of_frame mem) ~sid ~name ~page_size
    ~pages ()

let create machine =
  let n = Machine.n_frames machine in
  let init =
    make_segment machine ~sid:0 ~name:"initial-frame-segment"
      ~page_size:(Machine.page_size machine) ~pages:n
  in
  for i = 0 to n - 1 do
    Seg.set_frame init i (Some i);
    Phys.set_owner machine.Machine.mem i 0
  done;
  let segments = Hashtbl.create 64 in
  Hashtbl.replace segments 0 init;
  {
    machine;
    segments;
    managers = Hashtbl.create 16;
    next_seg = 1;
    next_mgr = 1;
    init_seg = 0;
    stats = fresh_stats ();
    per_manager_calls = Hashtbl.create 16;
    cached_keys = Hashtbl.create 1024;
    fault_depth = 0;
    max_fault_depth = 16;
    sp_segs = 0;
    sp_live = 0;
  }

let machine t = t.machine
let stats t = t.stats
let initial_segment t = t.init_seg

let manager_calls_of t mid =
  match Hashtbl.find_opt t.per_manager_calls mid with Some r -> !r | None -> 0

let count_manager_call t mid =
  match Hashtbl.find_opt t.per_manager_calls mid with
  | Some r -> incr r
  | None -> Hashtbl.replace t.per_manager_calls mid (ref 1)

let segment t sid =
  match Hashtbl.find_opt t.segments sid with
  | None -> fail (No_such_segment sid)
  | Some s ->
      if not s.Seg.alive then fail (Dead_segment sid);
      s

let segment_exists t sid =
  match Hashtbl.find_opt t.segments sid with Some s -> s.Seg.alive | None -> false

let check_range seg page count =
  if count < 0 || page < 0 || page + count > Seg.length seg then
    fail (Page_out_of_range { seg = seg.Seg.sid; page; length = Seg.length seg })

(* ------------------------------------------------------------------ *)
(* Managers                                                           *)
(* ------------------------------------------------------------------ *)

let register_manager t ~name ~mode ~on_fault ?(on_close = fun _ -> ())
    ?(on_pressure = fun ~pages:_ -> 0) () =
  let mid = t.next_mgr in
  t.next_mgr <- t.next_mgr + 1;
  Hashtbl.replace t.managers mid
    { Mgr.mid; mname = name; mmode = mode; on_fault; on_close; on_pressure };
  mid

let manager t mid =
  match Hashtbl.find_opt t.managers mid with
  | Some m -> m
  | None -> fail (No_such_manager mid)

let set_segment_manager t sid mid =
  let seg = segment t sid in
  ignore (manager t mid);
  charge ~label:"kernel/set_manager" t (cost t).Hw_cost.set_manager;
  seg.Seg.manager <- Some mid

(* ------------------------------------------------------------------ *)
(* Segment lifecycle                                                  *)
(* ------------------------------------------------------------------ *)

let create_segment t ?page_size ?manager:mgr ~name ~pages () =
  let page_size = Option.value page_size ~default:(Machine.page_size t.machine) in
  (match mgr with Some m -> ignore (manager t m) | None -> ());
  let sid = t.next_seg in
  t.next_seg <- t.next_seg + 1;
  let seg = make_segment t.machine ~sid ~name ~page_size ~pages in
  seg.Seg.manager <- mgr;
  Hashtbl.replace t.segments sid seg;
  charge ~label:"kernel/segment_ctl" t (cost t).Hw_cost.syscall_base;
  sid

let grow_segment t sid ~pages =
  if pages < 0 then invalid_arg "Epcm_kernel.grow_segment: negative growth";
  let seg = segment t sid in
  let old = seg.Seg.pages in
  seg.Seg.pages <-
    Array.init
      (Array.length old + pages)
      (fun i ->
        if i < Array.length old then old.(i) else { Seg.frame = None; flags = Flags.empty });
  charge ~label:"kernel/segment_ctl" t (cost t).Hw_cost.syscall_base

(* ------------------------------------------------------------------ *)
(* Translation-cache bookkeeping                                      *)
(* ------------------------------------------------------------------ *)

let record_cached_key t ~slot:(sseg, spage) ~key:(kspace, kvpn) =
  match Hashtbl.find_opt t.cached_keys (sseg, spage) with
  | None -> Hashtbl.replace t.cached_keys (sseg, spage) (Single (kspace, kvpn))
  | Some (Single (s, v)) ->
      if s <> kspace || v <> kvpn then begin
        let keys = Hashtbl.create 4 in
        Hashtbl.replace keys (s, v) ();
        Hashtbl.replace keys (kspace, kvpn) ();
        Hashtbl.replace t.cached_keys (sseg, spage) (Many keys)
      end
  | Some (Many keys) -> if not (Hashtbl.mem keys (kspace, kvpn)) then Hashtbl.replace keys (kspace, kvpn) ()

(* ------------------------------------------------------------------ *)
(* Superpage promotion / demotion                                     *)
(* ------------------------------------------------------------------ *)

let super_pages t = Machine.super_pages t.machine

(* Split one promoted region back to 4 KB granularity: drop the region
   record and its 2 MB translations. The covered pages stay resident —
   residency bookkeeping never left 4 KB granularity — and rebuild their
   base mappings lazily through segment walks on the next touch. *)
let demote_superpage t seg sindex =
  if Hashtbl.mem seg.Seg.sp_regions sindex then begin
    Hashtbl.remove seg.Seg.sp_regions sindex;
    t.sp_live <- t.sp_live - 1;
    t.stats.sp_demotions <- t.stats.sp_demotions + 1;
    Pt.remove_super t.machine.Machine.page_table ~space:seg.Seg.sid ~svpn:sindex;
    Tlb.invalidate_super t.machine.Machine.tlb ~space:seg.Seg.sid ~svpn:sindex;
    charge ~label:"kernel/superpage_demote" t (cost t).Hw_cost.superpage_demote;
    Machine.trace_emit t.machine ~tag:"superpage.demote" (fun () ->
        Printf.sprintf "seg %d region %d" seg.Seg.sid sindex)
  end

(* Fold an aligned, fully resident, protection-uniform run of 4 KB pages
   into one 2 MB mapping. The quick endpoint checks reject non-candidates
   in O(1); only runs that look promotable pay the full verify scan. *)
let try_promote_region t seg sindex =
  let sp = super_pages t in
  let p0 = sindex * sp in
  if p0 < 0 || p0 + sp > Seg.length seg || Hashtbl.mem seg.Seg.sp_regions sindex then false
  else begin
    let first = Seg.page seg p0 and last = Seg.page seg (p0 + sp - 1) in
    match (first.Seg.frame, last.Seg.frame) with
    | Some base, Some lf
      when base mod sp = 0 && lf = base + sp - 1
           && not (Flags.mem first.Seg.flags Flags.no_access) ->
        let ro0 = Flags.mem first.Seg.flags Flags.read_only in
        let ok = ref true and i = ref 0 in
        while !ok && !i < sp do
          let s = Seg.page seg (p0 + !i) in
          (match s.Seg.frame with
          | Some f
            when f = base + !i
                 && (not (Flags.mem s.Seg.flags Flags.no_access))
                 && Flags.mem s.Seg.flags Flags.read_only = ro0 -> ()
          | Some _ | None -> ok := false);
          incr i
        done;
        (* A contiguous run can still straddle a tier boundary; one 2 MB
           mapping must stay tier-pure so the per-tier audits and access
           surcharges remain exact. Tiers are contiguous intervals, so
           checking the endpoints pins the whole run. *)
        let mem = t.machine.Machine.mem in
        if !ok && Phys.n_tiers mem > 1
           && Phys.tier_of_frame mem base <> Phys.tier_of_frame mem (base + sp - 1)
        then ok := false;
        if !ok then begin
          Hashtbl.replace seg.Seg.sp_regions sindex base;
          t.sp_live <- t.sp_live + 1;
          t.stats.sp_promotions <- t.stats.sp_promotions + 1;
          let prot = { Pt.readable = true; writable = not ro0 } in
          Pt.insert_super t.machine.Machine.page_table ~space:seg.Seg.sid ~svpn:sindex
            ~frame:base ~prot;
          Tlb.fill_super t.machine.Machine.tlb ~space:seg.Seg.sid ~svpn:sindex ~frame:base;
          let c = cost t in
          charge ~label:"kernel/superpage_promote" t
            (c.Hw_cost.superpage_promote +. c.Hw_cost.pte_update_super);
          Machine.trace_emit t.machine ~tag:"superpage.promote" (fun () ->
              Printf.sprintf "seg %d region %d frames [%d..%d]" seg.Seg.sid sindex base
                (base + sp - 1))
        end;
        !ok
    | _ -> false
  end

let invalidate_slot t ~seg ~page =
  (* Any translation change inside a promoted region splits it first —
     protection change, partial eviction, partial migrate, teardown all
     funnel through here. Guarded by the machine-wide live-region count
     so flat 4 KB machines pay one integer compare. *)
  if t.sp_live > 0 then begin
    match Hashtbl.find_opt t.segments seg with
    | Some s when s.Seg.sp_enabled && Hashtbl.length s.Seg.sp_regions > 0 ->
        demote_superpage t s (page / super_pages t)
    | _ -> ()
  end;
  (match Hashtbl.find_opt t.cached_keys (seg, page) with
  | None -> ()
  | Some (Single (space, vpn)) ->
      Tlb.invalidate t.machine.Machine.tlb ~space ~vpn;
      Pt.remove t.machine.Machine.page_table ~space ~vpn;
      Hashtbl.remove t.cached_keys (seg, page)
  | Some (Many keys) ->
      Hashtbl.iter
        (fun (space, vpn) () ->
          Tlb.invalidate t.machine.Machine.tlb ~space ~vpn;
          Pt.remove t.machine.Machine.page_table ~space ~vpn)
        keys;
      Hashtbl.remove t.cached_keys (seg, page));
  (* The slot may also be cached under its own (seg, page) key. *)
  Tlb.invalidate t.machine.Machine.tlb ~space:seg ~vpn:page;
  Pt.remove t.machine.Machine.page_table ~space:seg ~vpn:page

(* ------------------------------------------------------------------ *)
(* Bindings and resolution                                            *)
(* ------------------------------------------------------------------ *)

let bind_region t ~space ~at ~len ~target ~target_page ~cow =
  if space = t.init_seg || target = t.init_seg then fail Initial_segment_operation;
  let sp = segment t space and tg = segment t target in
  if len <= 0 || at < 0 || at + len > Seg.length sp then
    fail (Binding_out_of_range { seg = space; at; len });
  if target_page < 0 || target_page + len > Seg.length tg then
    fail (Binding_out_of_range { seg = target; at = target_page; len });
  if sp.Seg.seg_page_size <> tg.Seg.seg_page_size then
    fail (Page_size_mismatch { src = space; dst = target });
  if Seg.bindings_overlap sp ~at ~len then fail (Binding_overlap { seg = space; at; len });
  Seg.add_binding sp { Seg.at; len; target; target_page; cow };
  charge ~label:"kernel/bind_region" t (cost t).Hw_cost.bind_region

(* Follow bindings to the slot that holds (or should hold) the frame for a
   reference to [page] of [space]. Returns the owning segment, the page
   index within it, and whether the path traversed a copy-on-write binding
   (meaning writes need a private copy in the original space). *)
let rec resolve_chain t ~space ~page ~depth =
  if depth > 8 then fail (Binding_out_of_range { seg = space; at = page; len = 0 });
  let seg = segment t space in
  check_range seg page 0;
  if page >= Seg.length seg then fail (Page_out_of_range { seg = space; page; length = Seg.length seg });
  let slot = Seg.page seg page in
  if slot.Seg.frame <> None then (space, page, false)
  else
    match Seg.binding_covering seg page with
    | None -> (space, page, false)
    | Some b ->
        let tpage = b.Seg.target_page + (page - b.Seg.at) in
        let oseg, opage, deeper_cow = resolve_chain t ~space:b.Seg.target ~page:tpage ~depth:(depth + 1) in
        (oseg, opage, b.Seg.cow || deeper_cow)

let resolve_slot t ~space ~page =
  match resolve_chain t ~space ~page ~depth:0 with
  | seg, pg, _ -> Some (seg, pg)
  | exception Error _ -> None

(* ------------------------------------------------------------------ *)
(* MigratePages and friends                                           *)
(* ------------------------------------------------------------------ *)

let migrate_one t ~src_seg ~dst_seg ~src_page ~dst_page =
  let s_slot = Seg.page src_seg src_page and d_slot = Seg.page dst_seg dst_page in
  let frame_idx =
    match s_slot.Seg.frame with
    | Some f -> f
    | None -> fail (No_frame { seg = src_seg.Seg.sid; page = src_page })
  in
  if d_slot.Seg.frame <> None then fail (Frame_present { seg = dst_seg.Seg.sid; page = dst_page });
  Seg.set_frame dst_seg dst_page (Some frame_idx);
  d_slot.Seg.flags <- s_slot.Seg.flags;
  Seg.set_frame src_seg src_page None;
  s_slot.Seg.flags <- Flags.empty;
  Phys.set_owner t.machine.Machine.mem frame_idx dst_seg.Seg.sid;
  invalidate_slot t ~seg:src_seg.Seg.sid ~page:src_page;
  invalidate_slot t ~seg:dst_seg.Seg.sid ~page:dst_page;
  d_slot

let migrate_pages t ~src ~dst ~src_page ~dst_page ~count ?tier:want_tier
    ?(set_flags = Flags.empty) ?(clear_flags = Flags.empty) () =
  let src_seg = segment t src and dst_seg = segment t dst in
  if src_seg.Seg.seg_page_size <> dst_seg.Seg.seg_page_size then
    fail (Page_size_mismatch { src; dst });
  check_range src_seg src_page count;
  check_range dst_seg dst_page count;
  let mem = t.machine.Machine.mem in
  (match want_tier with
  | Some k when k < 0 || k >= Phys.n_tiers mem ->
      invalid_arg (Printf.sprintf "Epcm_kernel.migrate_pages: tier %d out of range" k)
  | _ -> ());
  (* Tier pass: validate the requested placement tier and total the
     per-page tier surcharges. A single-tier machine skips it entirely —
     every frame is tier 0 with zero surcharge — keeping the flat-machine
     hot path untouched. *)
  if Phys.n_tiers mem > 1 then begin
    let extra = ref 0.0 in
    for i = 0 to count - 1 do
      match (Seg.page src_seg (src_page + i)).Seg.frame with
      | None -> ()  (* migrate_one reports No_frame below *)
      | Some f ->
          let got = Phys.tier_of_frame mem f in
          (match want_tier with
          | Some want when got <> want ->
              fail (Tier_mismatch { seg = src; page = src_page + i; frame = f; want; got })
          | _ -> ());
          extra := !extra +. Phys.tier_migrate_us mem got
    done;
    charge ~label:"kernel/tier_migrate" t !extra
  end;
  let c = cost t in
  charge ~label:"kernel/migrate" t
    (c.Hw_cost.syscall_base +. c.Hw_cost.migrate_base
    +. (float_of_int count *. c.Hw_cost.migrate_per_page));
  for i = 0 to count - 1 do
    let d_slot = migrate_one t ~src_seg ~dst_seg ~src_page:(src_page + i) ~dst_page:(dst_page + i) in
    d_slot.Seg.flags <- Flags.diff (Flags.union d_slot.Seg.flags set_flags) clear_flags
  done;
  (* Batched superpage install: when the destination opted in, any region
     this call (fully or partially) filled that now holds a complete
     aligned run collapses into one 2 MB mapping. Segments that never opt
     in skip the pass on one boolean. *)
  if count > 0 && dst_seg.Seg.sp_enabled then begin
    let sp = super_pages t in
    for sindex = dst_page / sp to (dst_page + count - 1) / sp do
      ignore (try_promote_region t dst_seg sindex)
    done
  end;
  t.stats.migrate_calls <- t.stats.migrate_calls + 1;
  t.stats.migrated_pages <- t.stats.migrated_pages + count;
  Machine.trace_emit t.machine ~tag:"step4.migrate" (fun () ->
      Printf.sprintf "%d page(s) seg %d[%d..] -> seg %d[%d..]" count src src_page dst dst_page)

let modify_page_flags t ~seg ~page ~count ?(set_flags = Flags.empty)
    ?(clear_flags = Flags.empty) () =
  let s = segment t seg in
  check_range s page count;
  let c = cost t in
  charge ~label:"kernel/modify_flags" t
    (c.Hw_cost.syscall_base +. c.Hw_cost.modify_flags_base
    +. (float_of_int count *. c.Hw_cost.modify_flags_per_page));
  let protection = Flags.union Flags.no_access Flags.read_only in
  for i = 0 to count - 1 do
    let slot = Seg.page s (page + i) in
    let before = slot.Seg.flags in
    slot.Seg.flags <- Flags.diff (Flags.union before set_flags) clear_flags;
    if Flags.intersects (Flags.union set_flags clear_flags) protection then begin
      invalidate_slot t ~seg ~page:(page + i);
      charge ~label:"kernel/tlb_flush" t c.Hw_cost.tlb_flush_page
    end
  done;
  t.stats.modify_flag_calls <- t.stats.modify_flag_calls + 1

let get_page_attributes t ~seg ~page ~count =
  let s = segment t seg in
  check_range s page count;
  let c = cost t in
  charge ~label:"kernel/get_attributes" t
    (c.Hw_cost.syscall_base +. c.Hw_cost.get_attributes_base
    +. (float_of_int count *. c.Hw_cost.get_attributes_per_page));
  t.stats.get_attribute_calls <- t.stats.get_attribute_calls + 1;
  Array.init count (fun i ->
      let slot = Seg.page s (page + i) in
      {
        pa_flags = slot.Seg.flags;
        pa_frame = slot.Seg.frame;
        pa_phys_addr =
          Option.map (fun f -> (Phys.frame t.machine.Machine.mem f).Phys.addr) slot.Seg.frame;
      })

(* Return a frame to the initial segment: slot = first free initial slot at
   or cyclically after the frame's own index (identity at boot, best-effort
   afterwards). *)
let return_frame_to_initial t frame_idx =
  let init = segment t t.init_seg in
  let n = Seg.length init in
  let rec find i tried =
    if tried >= n then fail (Frame_present { seg = t.init_seg; page = frame_idx })
    else if (Seg.page init i).Seg.frame = None then i
    else find ((i + 1) mod n) (tried + 1)
  in
  let slot_idx = find (frame_idx mod n) 0 in
  let slot = Seg.page init slot_idx in
  Seg.set_frame init slot_idx (Some frame_idx);
  slot.Seg.flags <- Flags.empty;
  Phys.set_owner t.machine.Machine.mem frame_idx t.init_seg

let release_frames t ~seg ~page ~count =
  if seg = t.init_seg then fail Initial_segment_operation;
  let s = segment t seg in
  check_range s page count;
  let c = cost t in
  charge ~label:"kernel/release_frames" t
    (c.Hw_cost.syscall_base +. c.Hw_cost.migrate_base
    +. (float_of_int count *. c.Hw_cost.migrate_per_page));
  let moved = ref 0 in
  for i = 0 to count - 1 do
    let slot = Seg.page s (page + i) in
    match slot.Seg.frame with
    | None -> ()
    | Some f ->
        Seg.set_frame s (page + i) None;
        slot.Seg.flags <- Flags.empty;
        invalidate_slot t ~seg ~page:(page + i);
        return_frame_to_initial t f;
        incr moved
  done;
  t.stats.migrate_calls <- t.stats.migrate_calls + 1;
  t.stats.migrated_pages <- t.stats.migrated_pages + !moved

let zero_pages t ~seg ~page ~count =
  let s = segment t seg in
  check_range s page count;
  let c = cost t in
  charge ~label:"kernel/zero_pages" t
    (c.Hw_cost.syscall_base +. (float_of_int count *. c.Hw_cost.zero_page));
  for i = 0 to count - 1 do
    let slot = Seg.page s (page + i) in
    match slot.Seg.frame with
    | None -> fail (No_frame { seg; page = page + i })
    | Some f ->
        Phys.zero_frame t.machine.Machine.mem f;
        t.stats.page_zeros <- t.stats.page_zeros + 1
  done

let destroy_segment t sid =
  if sid = t.init_seg then fail Initial_segment_operation;
  let s = segment t sid in
  (match s.Seg.manager with
  | Some mid ->
      let m = manager t mid in
      t.stats.manager_calls <- t.stats.manager_calls + 1;
      count_manager_call t mid;
      m.Mgr.on_close sid
  | None -> ());
  (* Frames the manager did not reclaim go back to the initial segment so
     no frame is ever lost. *)
  Array.iteri
    (fun i slot ->
      match slot.Seg.frame with
      | None -> ()
      | Some f ->
          Seg.set_frame s i None;
          slot.Seg.flags <- Flags.empty;
          invalidate_slot t ~seg:sid ~page:i;
          return_frame_to_initial t f)
    s.Seg.pages;
  (* Promoted regions all covered resident pages, so the eviction loop
     demoted them via invalidate_slot; clear defensively anyway and
     retire the opt-in. *)
  if Hashtbl.length s.Seg.sp_regions > 0 then begin
    let regions = Hashtbl.fold (fun k _ acc -> k :: acc) s.Seg.sp_regions [] in
    List.iter (fun sindex -> demote_superpage t s sindex) regions
  end;
  if s.Seg.sp_enabled then begin
    s.Seg.sp_enabled <- false;
    t.sp_segs <- t.sp_segs - 1
  end;
  s.Seg.alive <- false;
  Tlb.invalidate_space t.machine.Machine.tlb ~space:sid;
  Pt.remove_space t.machine.Machine.page_table ~space:sid;
  charge ~label:"kernel/segment_ctl" t (cost t).Hw_cost.syscall_base

(* ------------------------------------------------------------------ *)
(* Superpage control operations                                       *)
(* ------------------------------------------------------------------ *)

let set_superpages t ~seg ~enabled =
  if seg = t.init_seg then fail Initial_segment_operation;
  let s = segment t seg in
  if s.Seg.sp_enabled <> enabled then begin
    if not enabled then begin
      let regions = Hashtbl.fold (fun k _ acc -> k :: acc) s.Seg.sp_regions [] in
      List.iter (fun sindex -> demote_superpage t s sindex) regions
    end;
    s.Seg.sp_enabled <- enabled;
    t.sp_segs <- t.sp_segs + (if enabled then 1 else -1)
  end;
  charge ~label:"kernel/segment_ctl" t (cost t).Hw_cost.syscall_base

(* An "identity run" of the initial segment: [run] aligned consecutive
   frames still sitting in their boot slots (slot i holds frame i), so one
   contiguous MigratePages moves the whole physical run. The owner tags
   prefilter candidates without touching segment state; the slot check
   confirms identity (true for every free frame at boot, best-effort after
   churn since return_frame_to_initial prefers the identity slot). *)
let find_superpage_run ?tier t ~start =
  let mem = t.machine.Machine.mem in
  let run = super_pages t in
  let init = segment t t.init_seg in
  let rec search s =
    match Phys.find_aligned_run ?tier mem ~start:s ~run ~owned_by:t.init_seg with
    | None -> None
    | Some base ->
        let ok = ref true and i = ref 0 in
        while !ok && !i < run do
          if (Seg.page init (base + !i)).Seg.frame <> Some (base + !i) then ok := false;
          incr i
        done;
        if !ok then Some base else search (base + run)
  in
  search (max 0 start)

let grant_superpage_run ?tier t ~dst ~dst_page ~start =
  let run = super_pages t in
  if dst_page mod run <> 0 then
    invalid_arg "Epcm_kernel.grant_superpage_run: dst_page must be superpage-aligned";
  match find_superpage_run ?tier t ~start with
  | None -> None
  | Some base ->
      migrate_pages t ~src:t.init_seg ~dst ~src_page:base ~dst_page ~count:run ?tier ();
      Some base

(* ------------------------------------------------------------------ *)
(* Fault delivery (Figure 2)                                          *)
(* ------------------------------------------------------------------ *)

let count_fault t (kind : Mgr.fault_kind) =
  match kind with
  | Mgr.Missing -> t.stats.faults_missing <- t.stats.faults_missing + 1
  | Mgr.Protection -> t.stats.faults_protection <- t.stats.faults_protection + 1
  | Mgr.Cow_write -> t.stats.faults_cow <- t.stats.faults_cow + 1

let deliver_fault t (fault : Mgr.fault) =
  let seg = segment t fault.Mgr.f_seg in
  let mid = match seg.Seg.manager with Some m -> m | None -> fail (No_manager fault.Mgr.f_seg) in
  let m = manager t mid in
  if t.fault_depth >= t.max_fault_depth then
    fail (Fault_recursion { manager = mid; depth = t.fault_depth });
  t.fault_depth <- t.fault_depth + 1;
  let span =
    match fault.Mgr.f_kind with
    | Mgr.Missing -> "fault/missing"
    | Mgr.Protection -> "fault/protection"
    | Mgr.Cow_write -> "fault/cow"
  in
  Fun.protect
    ~finally:(fun () -> t.fault_depth <- t.fault_depth - 1)
    (fun () ->
      Machine.with_span t.machine span @@ fun () ->
      count_fault t fault.Mgr.f_kind;
      t.stats.manager_calls <- t.stats.manager_calls + 1;
      count_manager_call t mid;
      let c = cost t in
      charge ~label:"kernel/trap" t (c.Hw_cost.trap_entry +. c.Hw_cost.fault_decode);
      Machine.trace_emit t.machine ~tag:"step1.fault_to_manager" (fun () ->
          Printf.sprintf "%s -> manager %S" (Format.asprintf "%a" Mgr.pp_fault fault) m.Mgr.mname);
      (match m.Mgr.mmode with
      | `In_process ->
          charge ~label:"kernel/upcall" t c.Hw_cost.upcall_deliver;
          m.Mgr.on_fault fault;
          charge ~label:"kernel/resume" t c.Hw_cost.resume_direct
      | `Separate_process ->
          charge ~label:"kernel/ipc_call" t
            (c.Hw_cost.ipc_send +. c.Hw_cost.context_switch +. c.Hw_cost.manager_server_dispatch);
          m.Mgr.on_fault fault;
          charge ~label:"kernel/ipc_return" t
            (c.Hw_cost.ipc_reply +. c.Hw_cost.context_switch +. c.Hw_cost.resume_via_kernel
           +. c.Hw_cost.trap_exit));
      Machine.trace_emit t.machine ~tag:"step5.resume" (fun () ->
          Printf.sprintf "seg %d page %d" fault.Mgr.f_seg fault.Mgr.f_page))

(* Ensure a frame with suitable protection is present at the slot that
   backs ([space], [page]); fault to managers as many times as needed
   (missing, then protection, then cow can each fire once). *)
let rec ensure_resident t ~space ~page ~(access : Mgr.access) ~attempts =
  if attempts > 6 then fail (Unresolved_fault { seg = space; page });
  let oseg_id, opage, via_cow = resolve_chain t ~space ~page ~depth:0 in
  let oseg = segment t oseg_id in
  let slot = Seg.page oseg opage in
  match slot.Seg.frame with
  | None ->
      (* Missing: fault to the manager of the owning segment. *)
      deliver_fault t
        { Mgr.f_seg = oseg_id; f_page = opage; f_access = access; f_kind = Mgr.Missing;
          f_space = space };
      let slot' = Seg.page (segment t oseg_id) opage in
      if slot'.Seg.frame = None then fail (Unresolved_fault { seg = oseg_id; page = opage });
      ensure_resident t ~space ~page ~access ~attempts:(attempts + 1)
  | Some frame_idx ->
      let flags = slot.Seg.flags in
      if Flags.mem flags Flags.no_access then begin
        deliver_fault t
          { Mgr.f_seg = oseg_id; f_page = opage; f_access = access; f_kind = Mgr.Protection;
            f_space = space };
        let slot' = Seg.page (segment t oseg_id) opage in
        if Flags.mem slot'.Seg.flags Flags.no_access then
          fail (Unresolved_fault { seg = oseg_id; page = opage });
        ensure_resident t ~space ~page ~access ~attempts:(attempts + 1)
      end
      else if access = Mgr.Write && via_cow && oseg_id <> space then begin
        (* Copy-on-write: the space's manager allocates a private page at
           ([space], [page]); the kernel then copies the source data. *)
        deliver_fault t
          { Mgr.f_seg = space; f_page = page; f_access = access; f_kind = Mgr.Cow_write;
            f_space = space };
        let sp_slot = Seg.page (segment t space) page in
        (match sp_slot.Seg.frame with
        | None -> fail (Unresolved_fault { seg = space; page })
        | Some private_frame ->
            Phys.copy_frame t.machine.Machine.mem ~src:frame_idx ~dst:private_frame;
            t.stats.page_copies <- t.stats.page_copies + 1;
            charge ~label:"kernel/copy_page" t (cost t).Hw_cost.copy_page;
            sp_slot.Seg.flags <- Flags.union sp_slot.Seg.flags Flags.dirty);
        ensure_resident t ~space ~page ~access ~attempts:(attempts + 1)
      end
      else if access = Mgr.Write && Flags.mem flags Flags.read_only then begin
        deliver_fault t
          { Mgr.f_seg = oseg_id; f_page = opage; f_access = access; f_kind = Mgr.Protection;
            f_space = space };
        let slot' = Seg.page (segment t oseg_id) opage in
        if Flags.mem slot'.Seg.flags Flags.read_only then
          fail (Unresolved_fault { seg = oseg_id; page = opage });
        ensure_resident t ~space ~page ~access ~attempts:(attempts + 1)
      end
      else begin
        (* Mark referenced / dirty as the hardware would. *)
        slot.Seg.flags <- Flags.union slot.Seg.flags Flags.referenced;
        if access = Mgr.Write then slot.Seg.flags <- Flags.union slot.Seg.flags Flags.dirty;
        (frame_idx, oseg_id, opage, flags, via_cow)
      end

and resolved_prot ~flags ~via_cow =
  {
    Pt.readable = not (Flags.mem flags Flags.no_access);
    writable =
      (not (Flags.mem flags Flags.no_access))
      && (not (Flags.mem flags Flags.read_only))
      && not via_cow;
  }

let touch t ~space ~page ~access =
  t.stats.touches <- t.stats.touches + 1;
  let c = cost t in
  let tlb = t.machine.Machine.tlb and pt = t.machine.Machine.page_table in
  let prot_ok (p : Pt.prot) =
    match access with Mgr.Read -> p.Pt.readable | Mgr.Write -> p.Pt.writable
  in
  match Pt.lookup_sized pt ~space ~vpn:page with
  | Some (frame, prot, size) when prot_ok prot ->
      (* Model TLB behaviour on the side: hit is free, miss costs a software
         refill from the mapping hash — at the granularity the mapping hash
         resolved (a superpage hit refills one 2 MB entry covering the whole
         run). Flat machines only ever see Base here. *)
      (match Tlb.lookup_sized tlb ~space ~vpn:page with
      | Some _ -> ()
      | None -> (
          match size with
          | Pt.Base ->
              charge ~label:"kernel/tlb_refill" t c.Hw_cost.tlb_refill;
              Tlb.fill tlb ~space ~vpn:page ~frame
          | Pt.Super ->
              let sp = super_pages t in
              let svpn = page / sp in
              charge ~label:"kernel/tlb_refill_super" t c.Hw_cost.tlb_refill_super;
              Tlb.fill_super tlb ~space ~svpn ~frame:(frame - (page - (svpn * sp)))));
      (* Far-memory latency premium: every reference to a slow-tier frame
         pays it, not just the faulting one. Single-tier machines skip the
         pass (and tier 0 charges zero anyway), keeping the warm path
         byte-identical and allocation-free on flat machines. *)
      let mem = t.machine.Machine.mem in
      if Phys.n_tiers mem > 1 then
        charge ~label:"kernel/tier_access" t
          (Phys.tier_access_us mem (Phys.tier_of_frame mem frame));
      (* The reference itself goes through the physically-indexed cache
         (when one is attached) regardless of how translation resolved. *)
      cache_touch t frame
  | Some _ | None ->
      (* Mapping-hash miss (or insufficient protection): walk segments. *)
      let t0 = Machine.now t.machine in
      charge ~label:"kernel/segment_walk" t c.Hw_cost.segment_walk;
      let frame, oseg_id, opage, flags, via_cow = ensure_resident t ~space ~page ~access ~attempts:0 in
      (* Tier surcharge for resolving onto far memory. Single-tier
         machines skip the lookup; tier 0 there charges zero anyway. *)
      let mem = t.machine.Machine.mem in
      if Phys.n_tiers mem > 1 then
        charge ~label:"kernel/tier_access" t
          (Phys.tier_access_us mem (Phys.tier_of_frame mem frame));
      (* The faulting reference completes against the cache too. *)
      cache_touch t frame;
      let prot = resolved_prot ~flags ~via_cow in
      (* Superpage install: a direct reference into an opted-in segment
         lands on its 2 MB mapping when the covering region is (or just
         became) promoted — e.g. the manager granted an aligned run during
         the Missing fault above. Guarded so machines with no opted-in
         segment take the 4 KB branch unconditionally. *)
      let installed_super =
        t.sp_segs > 0 && space = oseg_id && not via_cow
        &&
        let oseg = segment t oseg_id in
        oseg.Seg.sp_enabled
        &&
        let sindex = opage / super_pages t in
        match Hashtbl.find_opt oseg.Seg.sp_regions sindex with
        | Some base ->
            (* Promoted already; the 2 MB entry was displaced from (or
               never reached) the translation caches — reinstall it. *)
            Pt.insert_super pt ~space ~svpn:sindex ~frame:base ~prot;
            Tlb.fill_super tlb ~space ~svpn:sindex ~frame:base;
            charge ~label:"kernel/pte_update_super" t c.Hw_cost.pte_update_super;
            true
        | None -> try_promote_region t oseg sindex
      in
      if not installed_super then begin
        Pt.insert pt ~space ~vpn:page ~frame ~prot;
        Tlb.fill tlb ~space ~vpn:page ~frame;
        record_cached_key t ~slot:(oseg_id, opage) ~key:(space, page);
        charge ~label:"kernel/pte_update" t c.Hw_cost.pte_update
      end;
      Machine.observe t.machine ~kind:"kernel.fault" (Machine.now t.machine -. t0)

(* ------------------------------------------------------------------ *)
(* UIO block interface                                                *)
(* ------------------------------------------------------------------ *)

let uio_page_data t seg page =
  let s = segment t seg in
  let slot = Seg.page s page in
  match slot.Seg.frame with
  | Some f -> (Phys.frame t.machine.Machine.mem f, slot)
  | None -> fail (No_frame { seg; page })

let uio_ensure t ~seg ~page ~(access : Mgr.access) =
  let s = segment t seg in
  check_range s page 1;
  let slot = Seg.page s page in
  if slot.Seg.frame = None then
    deliver_fault t
      { Mgr.f_seg = seg; f_page = page; f_access = access; f_kind = Mgr.Missing; f_space = seg };
  let slot = Seg.page (segment t seg) page in
  if slot.Seg.frame = None then fail (Unresolved_fault { seg; page })

let uio_read t ~seg ~page =
  let c = cost t in
  charge ~label:"kernel/uio_read" t (c.Hw_cost.syscall_base +. c.Hw_cost.uio_read_overhead);
  uio_ensure t ~seg ~page ~access:Mgr.Read;
  charge ~label:"kernel/copy_page" t c.Hw_cost.copy_page;
  t.stats.uio_reads <- t.stats.uio_reads + 1;
  t.stats.page_copies <- t.stats.page_copies + 1;
  let frame, slot = uio_page_data t seg page in
  (* The copy reads every line of the page through the cache. *)
  cache_sweep t frame.Phys.index;
  slot.Seg.flags <- Flags.union slot.Seg.flags Flags.referenced;
  frame.Phys.data

let uio_write t ~seg ~page data =
  let c = cost t in
  charge ~label:"kernel/uio_write" t (c.Hw_cost.syscall_base +. c.Hw_cost.uio_write_overhead);
  uio_ensure t ~seg ~page ~access:Mgr.Write;
  charge ~label:"kernel/copy_page" t c.Hw_cost.copy_page;
  t.stats.uio_writes <- t.stats.uio_writes + 1;
  t.stats.page_copies <- t.stats.page_copies + 1;
  let frame, slot = uio_page_data t seg page in
  (* The copy writes every line of the page through the cache. *)
  cache_sweep t frame.Phys.index;
  frame.Phys.data <- data;
  slot.Seg.flags <- Flags.union slot.Seg.flags (Flags.union Flags.dirty Flags.referenced)

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)
(* ------------------------------------------------------------------ *)

let audit_with resident t =
  Hashtbl.fold
    (fun sid seg acc -> if seg.Seg.alive then (sid, resident seg) :: acc else acc)
    t.segments []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let frame_owner_audit t = audit_with Seg.resident_pages t
let frame_owner_audit_scan t = audit_with Seg.resident_pages_scan t
let frame_owner_audit_tiered t = audit_with Seg.resident_pages_by_tier t
let frame_owner_audit_tiered_scan t = audit_with Seg.resident_pages_by_tier_scan t

let frame_owner_total t =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (frame_owner_audit t)

(* Free-frame selection, optionally scoped by tier: initial-segment slots
   currently holding frames (of the tier), ascending, up to [limit]. Same
   scan the SPCM's [free_slots] does, with the tier filter the tiered
   managers use to refill their per-tier pools. *)
let initial_slots ?tier t ~limit =
  let init = segment t t.init_seg in
  let mem = t.machine.Machine.mem in
  let matches f = match tier with None -> true | Some k -> Phys.tier_of_frame mem f = k in
  let n = Seg.length init in
  let acc = ref [] and found = ref 0 and i = ref 0 in
  while !found < limit && !i < n do
    (match (Seg.page init !i).Seg.frame with
    | Some f when matches f ->
        acc := !i :: !acc;
        incr found
    | Some _ | None -> ());
    incr i
  done;
  List.rev !acc

let free_frames_in_tier t ~tier =
  let init = segment t t.init_seg in
  let counts = Seg.resident_pages_by_tier init in
  if tier < 0 || tier >= Array.length counts then
    invalid_arg (Printf.sprintf "Epcm_kernel.free_frames_in_tier: tier %d out of range" tier);
  counts.(tier)

let render_address_space t sid =
  let seg = segment t sid in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "Virtual Address Space Segment %d (%S), %d pages\n" sid seg.Seg.sname
       (Seg.length seg));
  let bindings = Seg.bindings_list seg in
  List.iter
    (fun b ->
      let tgt = segment t b.Seg.target in
      Buffer.add_string buf
        (Printf.sprintf "  pages [%5d..%5d) --%s--> segment %d (%S) pages [%d..%d)\n" b.Seg.at
           (b.Seg.at + b.Seg.len)
           (if b.Seg.cow then "cow" else "bind")
           b.Seg.target tgt.Seg.sname b.Seg.target_page
           (b.Seg.target_page + b.Seg.len)))
    bindings;
  Buffer.add_string buf
    (Printf.sprintf "  private resident pages: %d\n" (Seg.resident_pages seg));
  Buffer.contents buf
