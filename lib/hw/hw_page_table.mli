(** The V++ global mapping hash table.

    The paper: "V++ augments the segment and bound region data structures
    with a global 64K entry direct mapped hash table with a 32 entry
    overflow area." This table is a {e cache} of virtual-to-physical
    translations; a miss falls back to walking the kernel's segment
    structures (which the kernel charges for separately). Keys are
    (address-space id, virtual page number).

    Entries carry a mapping {!size}: the classic 4 KB [Base] entries live
    in the direct-mapped slots + overflow area, while 2 MB [Super] entries
    (one per aligned run of [super_pages] base pages) live in a dedicated
    direct-mapped superpage area keyed by (space, vpn / super_pages) and
    are probed {e before} the 4 KB slot. The probe is guarded by a live
    superpage counter, so a machine that never installs a superpage takes
    identical branches and accumulates identical statistics to the
    pre-superpage table. *)

type prot = { readable : bool; writable : bool }

type size = Base | Super

type entry = { space : int; vpn : int; frame : int; prot : prot; size : size }
(** For [Super] entries [vpn] is the superpage number (vpn / super_pages)
    and [frame] the first frame of the aligned physical run. *)

type t

val create :
  ?slots:int -> ?overflow:int -> ?super_slots:int -> ?super_pages:int -> unit -> t
(** Defaults: 65536 direct-mapped slots, 32 overflow entries, 1024
    superpage slots, 512 base pages per superpage (2 MB of 4 KB pages). *)

val insert : t -> space:int -> vpn:int -> frame:int -> prot:prot -> unit
(** Insert a 4 KB entry. A colliding resident entry is pushed to the
    overflow area; when the overflow area is full its oldest entry is
    discarded (it can be rebuilt from segment structures on demand). *)

val insert_super : t -> space:int -> svpn:int -> frame:int -> prot:prot -> unit
(** Install a 2 MB entry mapping superpage [svpn] (= vpn / super_pages) to
    the aligned run starting at [frame]. A colliding superpage entry is
    displaced (rebuilt from the kernel's promoted-region table on
    demand). *)

val remove_super : t -> space:int -> svpn:int -> unit

val lookup : t -> space:int -> vpn:int -> (int * prot) option
(** Updates hit/miss statistics. Resolves through a live superpage entry
    covering [vpn] before probing the 4 KB slot. *)

val lookup_sized : t -> space:int -> vpn:int -> (int * prot * size) option
(** Like {!lookup} but also reports which mapping size resolved the
    translation (the kernel charges the matching TLB refill cost). *)

val remove : t -> space:int -> vpn:int -> unit
(** Remove the 4 KB entry for the page (superpage entries are removed
    only via {!remove_super} / {!remove_space}). *)

val remove_space : t -> space:int -> unit
(** Drop all translations of one address space (space teardown) — both
    sizes. *)

val capacity : t -> int
(** Direct-mapped slot count ([slots] at {!create}). {!Hw_machine.create}
    sizes this to the physical frame count above the 64K default so warm
    scans of a large machine stay hash hits. *)

val super_pages : t -> int
(** Base pages per superpage ([super_pages] at {!create}). *)

val hits : t -> int
val misses : t -> int
val collisions : t -> int
(** Number of insertions that displaced a resident entry. *)

val super_hits : t -> int
(** Lookups resolved by a superpage entry (also counted in {!hits}). *)

val super_collisions : t -> int
(** Superpage insertions that displaced a different superpage entry. *)

val super_resident : t -> int
(** Currently cached superpage translations. *)

val resident : t -> int
(** Currently cached 4 KB translations (slots + overflow). *)
