module K = Epcm_kernel
module G = Mgr_generic

type t = {
  gen : G.t;
  files : (int, Epcm_segment.id) Hashtbl.t;  (* file id -> cached segment *)
  counters : Sim_stats.Counters.t option;
  mutable closes : int;
  mutable admin_calls : int;
  mutable flush_failures : int;
}

(* The paper: "the V++ default manager allocates pages in 4K units, except
   for appends to a file in which case it allocates pages in 16K units". *)
let append_batch_pages = 4

let hooks ~backing =
  let default = G.default_hooks ~backing in
  {
    default with
    G.batch_of =
      (fun ~seg:_ ~page ~kind ~high_water ->
        match kind with
        | G.File _ when page >= high_water -> append_batch_pages
        | G.File _ | G.Anon -> 1);
  }

let create kernel ?backing ?source ?(pool_capacity = 4096) ?counters () =
  let backing = match backing with Some b -> b | None -> Mgr_backing.memory () in
  let gen =
    G.create kernel ~name:"ucds.default-manager" ~mode:`Separate_process ~backing
      ?source ~hooks:(hooks ~backing) ~pool_capacity ?counters ()
  in
  { gen; files = Hashtbl.create 32; counters; closes = 0; admin_calls = 0; flush_failures = 0 }

let generic t = t.gen
let manager_id t = G.manager_id t.gen

let preload_file t seg ~file_id ~size_pages =
  let pool = G.pool t.gen in
  for page = 0 to size_pages - 1 do
    G.ensure_pool t.gen ~count:1;
    Mgr_free_pages.set_next_data pool
      (Mgr_backing.read_block (G.backing t.gen) ~file:file_id ~block:page);
    let moved =
      Mgr_free_pages.take_to pool ~dst:seg ~dst_page:page ~count:1
        ~clear_flags:Epcm_flags.dirty ()
    in
    assert (moved = 1)
  done

let open_file t ~file_id ~size_pages ?(preload = false) ?(empty = false) () =
  match Hashtbl.find_opt t.files file_id with
  | Some seg -> seg
  | None ->
      (* A newly created file has no valid data on backing store: its
         high-water mark is 0, so writes past it are appends (allocated in
         16KB batches, never filled from backing). *)
      let high_water = if empty then 0 else size_pages in
      let seg =
        G.create_segment t.gen
          ~name:(Printf.sprintf "file-%d" file_id)
          ~pages:size_pages ~kind:(G.File { file_id }) ~high_water ()
      in
      Hashtbl.replace t.files file_id seg;
      if preload then preload_file t seg ~file_id ~size_pages;
      seg

let file_segment t ~file_id = Hashtbl.find_opt t.files file_id

(* One forwarded request to the manager server: IPC round trip. *)
let charge_rpc t =
  let machine = K.machine (G.kernel t.gen) in
  let c = machine.Hw_machine.cost in
  Hw_machine.charge ~label:"mgr/rpc" machine
    (c.Hw_cost.ipc_send +. c.Hw_cost.context_switch +. c.Hw_cost.manager_server_dispatch
   +. c.Hw_cost.ipc_reply +. c.Hw_cost.context_switch)

let admin_call ?(requests = 1) t =
  for _ = 1 to requests do
    t.admin_calls <- t.admin_calls + 1;
    charge_rpc t
  done

let close_file t seg =
  ignore seg;
  t.closes <- t.closes + 1;
  charge_rpc t

(* UCDS keeps files cached across close and writes dirty data back lazily;
   [flush_file] forces the writeback. *)
let flush_file t seg =
  let kern = G.kernel t.gen in
  let s = K.segment kern seg in
  let backing = G.backing t.gen in
  let file_id =
    Hashtbl.fold (fun fid fseg acc -> if fseg = seg then Some fid else acc) t.files None
  in
  match file_id with
  | None -> ()
  | Some fid ->
      Array.iteri
        (fun page slot ->
          match slot.Epcm_segment.frame with
          | Some frame when Epcm_flags.mem slot.Epcm_segment.flags Epcm_flags.dirty -> (
              let data =
                (Hw_phys_mem.frame (K.machine kern).Hw_machine.mem frame).Hw_phys_mem.data
              in
              (* The dirty bit only clears once the block is durably out;
                 a failed write leaves it set so the next flush retries. *)
              try
                Mgr_backing.write_block backing ~file:fid ~block:page data;
                K.modify_page_flags kern ~seg ~page ~count:1 ~clear_flags:Epcm_flags.dirty ()
              with Mgr_backing.Backing_failed _ ->
                t.flush_failures <- t.flush_failures + 1;
                Option.iter
                  (fun c -> Sim_stats.Counters.incr c "ucds.flush_page_failed")
                  t.counters)
          | Some _ | None -> ())
        s.Epcm_segment.pages

let evict_file t seg =
  let fid =
    Hashtbl.fold (fun fid fseg acc -> if fseg = seg then Some fid else acc) t.files None
  in
  (match fid with Some f -> Hashtbl.remove t.files f | None -> ());
  G.close_segment t.gen seg

let create_heap t ~name ~pages = G.create_segment t.gen ~name ~pages ~kind:G.Anon ()

let sample_working_sets t =
  List.iter (fun seg -> G.protect_for_sampling t.gen ~seg) (G.managed t.gen)

let closes t = t.closes

let admin_calls t = t.admin_calls

let flush_failures t = t.flush_failures

let total_manager_calls t =
  K.manager_calls_of (G.kernel t.gen) (G.manager_id t.gen) + t.closes + t.admin_calls
