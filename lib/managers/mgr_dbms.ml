module K = Epcm_kernel
module G = Mgr_generic
module Seg = Epcm_segment

type index_id = int

type index_info = {
  ix_id : index_id;
  ix_seg : Seg.id;
  ix_pages : int;
  mutable ix_resident : bool;
  mutable ix_last_used : float;
}

type t = {
  gen : G.t;
  indices : (index_id, index_info) Hashtbl.t;
  mutable next_index : int;
  mutable next_file : int;
  mutable page_in_events : int;
  mutable regenerations : int;
}

let create kernel ?disk ?(name = "dbms-manager") ~source ~pool_capacity () =
  let disk = Option.value disk ~default:(K.machine kernel).Hw_machine.disk in
  let backing = Mgr_backing.disk disk ~page_bytes:(Hw_machine.page_size (K.machine kernel)) in
  let gen = G.create kernel ~name ~mode:`In_process ~backing ~source ~pool_capacity () in
  {
    gen;
    indices = Hashtbl.create 32;
    next_index = 1;
    next_file = 0;
    page_in_events = 0;
    regenerations = 0;
  }

let generic t = t.gen
let manager_id t = G.manager_id t.gen

(* Populate a whole segment from pooled frames with locally generated data
   (no backing-store traffic). Used for relation preload and index
   builds. *)
let populate t seg ~pages ~file_tag =
  let pool = G.pool t.gen in
  for page = 0 to pages - 1 do
    G.ensure_pool t.gen ~count:1;
    Mgr_free_pages.set_next_data pool (Hw_page_data.block ~file:file_tag ~block:page ~version:1);
    let moved =
      Mgr_free_pages.take_to pool ~dst:seg ~dst_page:page ~count:1 ~clear_flags:Epcm_flags.dirty
        ()
    in
    assert (moved = 1)
  done

(* Relations get sequential backing-file ids per instance. (The historic
   [1000 + pages] scheme gave two same-sized relations the same file —
   harmless while relations are pinned and never refilled, but a trap for
   any manager instance whose relations ever page.) *)
let create_relation t ~name ~pages =
  let file_id = 1000 + t.next_file in
  t.next_file <- t.next_file + 1;
  let seg =
    G.create_segment t.gen ~name ~pages ~kind:(G.File { file_id }) ~high_water:pages ()
  in
  populate t seg ~pages ~file_tag:seg;
  G.pin t.gen ~seg ~page:0 ~count:pages;
  seg

let index_info t id =
  match Hashtbl.find_opt t.indices id with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Mgr_dbms: no index %d" id)

let create_index t ~name ~pages ?(resident = true) () =
  let id = t.next_index in
  t.next_index <- t.next_index + 1;
  let seg =
    G.create_segment t.gen ~name ~pages ~kind:(G.File { file_id = 2000 + id }) ~high_water:pages ()
  in
  let info = { ix_id = id; ix_seg = seg; ix_pages = pages; ix_resident = false; ix_last_used = 0.0 } in
  Hashtbl.replace t.indices id info;
  if resident then begin
    populate t seg ~pages ~file_tag:(2000 + id);
    info.ix_resident <- true
  end;
  id

let index_segment t id = (index_info t id).ix_seg
let index_resident t id = (index_info t id).ix_resident

let resident_index_pages t =
  Hashtbl.fold (fun _ i acc -> if i.ix_resident then acc + i.ix_pages else acc) t.indices 0

let note_index_use t id ~now = (index_info t id).ix_last_used <- now

let touch_index t id ~pages =
  let info = index_info t id in
  List.iter
    (fun page -> K.touch (G.kernel t.gen) ~space:info.ix_seg ~page ~access:Epcm_manager.Read)
    pages

let load_index_from_disk t id =
  let info = index_info t id in
  t.page_in_events <- t.page_in_events + 1;
  for page = 0 to info.ix_pages - 1 do
    K.touch (G.kernel t.gen) ~space:info.ix_seg ~page ~access:Epcm_manager.Read
  done;
  info.ix_resident <- true

let regenerate_index t id =
  let info = index_info t id in
  t.regenerations <- t.regenerations + 1;
  populate t info.ix_seg ~pages:info.ix_pages ~file_tag:(2000 + id);
  info.ix_resident <- true

let evict_index t id =
  let info = index_info t id in
  if info.ix_resident then begin
    let pool = G.pool t.gen in
    (* Keep the pool from overflowing across load/evict cycles: surplus
       frames go back to the system (the initial segment). *)
    if Mgr_free_pages.room pool < info.ix_pages then
      ignore
        (Mgr_free_pages.release_to_initial pool
           ~count:(info.ix_pages - Mgr_free_pages.room pool));
    let seg = K.segment (G.kernel t.gen) info.ix_seg in
    for page = 0 to info.ix_pages - 1 do
      if (Seg.page seg page).Seg.frame <> None then
        Mgr_free_pages.put_from pool ~src:info.ix_seg ~src_page:page
    done;
    info.ix_resident <- false
  end

let evict_lru_index t ~except =
  let candidate =
    Hashtbl.fold
      (fun id info best ->
        if (not info.ix_resident) || Some id = except then best
        else
          match best with
          | Some b when (index_info t b).ix_last_used <= info.ix_last_used -> best
          | _ -> Some id)
      t.indices None
  in
  (match candidate with Some id -> evict_index t id | None -> ());
  candidate

let page_in_events t = t.page_in_events
let regenerations t = t.regenerations
