(** Scalable synthetic workload for the perf record (`vpp_repro perf`).

    A deterministic paging + migration workload whose working set scales
    linearly with the simulated machine size, so kernel-operation
    throughput (events/sec, faults/sec, migrates/sec of {e real} time) is
    comparable across sizes and across PRs. Four phases:

    - cold demand-paging of half of memory (missing faults, pool refills),
    - two warm scans (translation fast path),
    - batch [MigratePages] ping-pong over a quarter of the heap,
    - a churn phase with more pages than its frame budget, forcing clock
      reclaim, eviction and writeback.

    No randomness, no wall-clock: rerunning a config reproduces identical
    counts and simulated time; only the host's elapsed time (measured by
    {!Exp_scale}) varies. *)

type config = {
  c_name : string;
  c_memory_bytes : int;
  c_page_size : int;
}

type result = {
  r_name : string;
  r_memory_bytes : int;
  r_frames : int;
  r_touches : int;  (** Memory references issued. *)
  r_faults : int;  (** Missing + protection + cow faults delivered. *)
  r_migrate_calls : int;
  r_migrated_pages : int;
  r_events : int;  (** Simulation-engine events executed. *)
  r_sim_us : float;  (** Final simulated clock. *)
  r_conserved : bool;
      (** Frame conservation held, the incremental owner audit matched the
          scan-based one, and no process deadlocked. *)
}

val config : name:string -> memory_bytes:int -> config
(** 4 KB pages. *)

val size_8mb : config
(** The 1992 scale: 8 MB, 2K frames. *)

val size_512mb : config
val size_4gb : config

val standard_sizes : config list
(** [8 MB; 512 MB; 4 GB] — the three sizes the perf record reports. *)

val run : config -> result

(** {2 Streaming leg (superpage comparison)} *)

type stream_result = {
  s_name : string;
  s_memory_bytes : int;
  s_frames : int;
  s_superpages : bool;  (** Whether the stream segment was opted in. *)
  s_run : int;  (** Base pages per superpage on this machine. *)
  s_stream_pages : int;  (** Pages streamed (a multiple of [s_run]). *)
  s_touches : int;
  s_faults : int;
  s_migrate_calls : int;
  s_migrated_pages : int;
  s_sp_promotions : int;
  s_sp_demotions : int;
  s_events : int;
  s_sim_us : float;
  s_conserved : bool;
}

val run_stream : ?superpages:bool -> config -> stream_result
(** Sequential stream over half of memory (rounded to whole superpage
    regions), a warm rescan, then a partial eviction + re-touch of the
    first region. With [superpages] (default [false]) the stream segment
    is opted into 2 MB mappings and fills arrive as whole aligned run
    grants — one fault and one [MigratePages] per [s_run] pages instead
    of one per page — and the eviction splits a promoted region. Both
    legs stream identical page counts, so the fault-count ratio is the
    superpage win the perf record reports. *)
