(* End-to-end tests: every table and figure regenerates with its shape
   checks passing — the headline claim of the reproduction. *)

let check_bool = Alcotest.(check bool)

let render_failures checks =
  checks
  |> List.filter (fun c -> not c.Exp_report.pass)
  |> List.map (fun c -> c.Exp_report.what ^ " — " ^ c.Exp_report.detail)
  |> String.concat "; "

let assert_all_pass checks =
  if not (Exp_report.all_pass checks) then Alcotest.fail (render_failures checks)

let test_table1 () =
  let r = Exp_table1.run () in
  assert_all_pass r.Exp_table1.checks;
  (* The headline numbers are exact. *)
  List.iter
    (fun (row : Exp_table1.row) ->
      match (row.Exp_table1.vpp_us, row.Exp_table1.paper_vpp) with
      | Some measured, Some paper ->
          check_bool (row.Exp_table1.label ^ " matches paper") true
            (Float.abs (measured -. paper) < 0.5)
      | _ -> ())
    r.Exp_table1.rows

let test_table2 () = assert_all_pass (Exp_table2.run ()).Exp_table2.checks
let test_table3 () = assert_all_pass (Exp_table3.run ()).Exp_table3.checks

let test_table4_quick () =
  let r = Exp_table4.run ~quick:true () in
  assert_all_pass r.Exp_table4.checks

let test_figures () =
  let r = Exp_figures.run () in
  assert_all_pass r.Exp_figures.checks

let test_substrate_stats () =
  let r = Exp_substrate.run () in
  assert_all_pass r.Exp_substrate.checks;
  (* The rescans exercise the translation path: the mapping hash must have
     served warm touches. *)
  List.iter
    (fun (row : Exp_substrate.row) ->
      check_bool (row.Exp_substrate.program ^ ": hash exercised") true
        (row.Exp_substrate.pt_hits > 0))
    r.Exp_substrate.rows

let test_ablations_hold () =
  List.iter
    (fun a ->
      check_bool (a.Exp_ablations.a_name ^ " finding holds") true a.Exp_ablations.holds;
      check_bool (a.Exp_ablations.a_name ^ " has rows") true
        (List.length a.Exp_ablations.rows >= 2))
    (Exp_ablations.run_all ())

let test_renders_nonempty () =
  check_bool "table1 renders" true (String.length (Exp_table1.render (Exp_table1.run ())) > 100);
  check_bool "figures render" true
    (String.length (Exp_figures.render (Exp_figures.run ())) > 100)

let () =
  Alcotest.run "experiments"
    [
      ( "tables",
        [
          Alcotest.test_case "table 1 exact" `Quick test_table1;
          Alcotest.test_case "table 2 shape" `Slow test_table2;
          Alcotest.test_case "table 3 exact" `Slow test_table3;
          Alcotest.test_case "table 4 shape (quick)" `Slow test_table4_quick;
          Alcotest.test_case "figures" `Quick test_figures;
          Alcotest.test_case "substrate stats" `Slow test_substrate_stats;
          Alcotest.test_case "ablations hold" `Slow test_ablations_hold;
          Alcotest.test_case "renders" `Quick test_renders_nonempty;
        ] );
    ]
