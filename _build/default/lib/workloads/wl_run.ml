module K = Epcm_kernel
module Engine = Sim_engine
module T = Wl_trace

type vpp_result = {
  v_elapsed_s : float;
  v_vm_elapsed_s : float;
  v_manager_calls : int;
  v_migrate_calls : int;
  v_manager_overhead_ms : float;
  v_uio_reads : int;
  v_uio_writes : int;
  v_tlb_hit_rate : float;
  v_pt_hits : int;
  v_pt_misses : int;
  v_pt_collisions : int;
  v_pt_resident : int;
}

type ultrix_result = {
  u_elapsed_s : float;
  u_faults : int;
  u_zero_fills : int;
  u_read_calls : int;
  u_write_calls : int;
}

let pages_of_kb kb = (kb + 3) / 4

(* Total KB appended to each output file, to size its segment. *)
let append_kb_per_file trace =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun op ->
      match op with
      | T.Append { file; kb } ->
          Hashtbl.replace tbl file ((try Hashtbl.find tbl file with Not_found -> 0) + kb)
      | _ -> ())
    trace.T.ops;
  tbl

(* The Tables 1-3 machine: DECstation 5000/200 with 128 megabytes. *)
let machine_128mb () = Hw_machine.create ~memory_bytes:(128 * 1024 * 1024) ()

let run_vpp ?seed:_ trace =
  let machine = machine_128mb () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  (* A direct initial-segment source stands in for the SPCM: the workload
     runs alone, so global allocation is not interesting here and keeping
     it out of the measured path mirrors the paper's setup. *)
  let next_slot = ref 0 in
  let source ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next_slot < Epcm_segment.length init_seg do
      (if (Epcm_segment.page init_seg !next_slot).Epcm_segment.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next_slot
           ~dst_page:(dst_page + !granted) ~count:1 ();
         incr granted
       end);
      incr next_slot
    done;
    !granted
  in
  let ucds = Mgr_default.create kernel ~source () in
  let gen = Mgr_default.generic ucds in
  (* Warm phase (unmeasured): cache the input files, build the heap
     segment, prime the free-page pool. *)
  List.iter
    (fun (file, kb) ->
      ignore (Mgr_default.open_file ucds ~file_id:file ~size_pages:(pages_of_kb kb) ~preload:true ()))
    (T.input_files trace);
  let heap = Mgr_default.create_heap ucds ~name:(trace.T.name ^ ".heap") ~pages:trace.T.heap_pages in
  let appends = append_kb_per_file trace in
  let pool_need =
    trace.T.heap_pages
    + Hashtbl.fold (fun _ kb acc -> acc + pages_of_kb kb) appends 0
    + 64
  in
  Mgr_generic.ensure_pool gen ~count:pool_need;
  (* Measured region. *)
  let stats = K.stats kernel in
  let calls0 = Mgr_default.total_manager_calls ucds in
  let migrates0 = stats.K.migrate_calls in
  let reads0 = stats.K.uio_reads and writes0 = stats.K.uio_writes in
  let t0 = ref 0.0 and t1 = ref 0.0 in
  let next_heap = ref 0 in
  let write_pos = Hashtbl.create 8 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      t0 := Engine.time ();
      List.iter
        (fun op ->
          match op with
          | T.Compute us -> Engine.delay us
          | T.Open_input _ -> () (* cache hit in the UCDS directory *)
          | T.Open_output { file } ->
              Mgr_default.admin_call ucds;
              let kb = try Hashtbl.find appends file with Not_found -> 4 in
              ignore (Mgr_default.open_file ucds ~file_id:file ~size_pages:(pages_of_kb kb) ~empty:true ());
              (* New file: nothing valid on backing store yet. *)
              Hashtbl.replace write_pos file 0
          | T.Read_seq { file; kb } ->
              let seg = Option.get (Mgr_default.file_segment ucds ~file_id:file) in
              for page = 0 to pages_of_kb kb - 1 do
                ignore (K.uio_read kernel ~seg ~page)
              done
          | T.Append { file; kb } ->
              let seg = Option.get (Mgr_default.file_segment ucds ~file_id:file) in
              let pos = try Hashtbl.find write_pos file with Not_found -> 0 in
              let pages = pages_of_kb kb in
              for i = 0 to pages - 1 do
                K.uio_write kernel ~seg ~page:(pos + i)
                  (Hw_page_data.block ~file ~block:(pos + i) ~version:1)
              done;
              Hashtbl.replace write_pos file (pos + pages)
          | T.Touch_heap { pages } ->
              for _ = 1 to pages do
                K.touch kernel ~space:heap ~page:!next_heap ~access:Epcm_manager.Write;
                incr next_heap
              done
          | T.Rescan_heap { passes } ->
              for _ = 1 to passes do
                for p = 0 to !next_heap - 1 do
                  K.touch kernel ~space:heap ~page:p ~access:Epcm_manager.Read
                done
              done
          | T.Close { file } -> (
              match Mgr_default.file_segment ucds ~file_id:file with
              | Some seg -> Mgr_default.close_file ucds seg
              | None -> ())
          | T.Admin { requests } -> Mgr_default.admin_call ~requests ucds)
        trace.T.ops;
      t1 := Engine.time ());
  Engine.run machine.Hw_machine.engine;
  let vm_elapsed = (!t1 -. !t0) /. 1_000_000.0 in
  let calls = Mgr_default.total_manager_calls ucds - calls0 in
  let c = machine.Hw_machine.cost in
  {
    v_elapsed_s = vm_elapsed +. (trace.T.vpp_library_delta_us /. 1_000_000.0);
    v_vm_elapsed_s = vm_elapsed;
    v_manager_calls = calls;
    v_migrate_calls = stats.K.migrate_calls - migrates0;
    v_manager_overhead_ms =
      float_of_int calls
      *. (Hw_cost.vpp_minimal_fault_via_manager c -. Hw_cost.ultrix_minimal_fault c)
      /. 1000.0;
    v_uio_reads = stats.K.uio_reads - reads0;
    v_uio_writes = stats.K.uio_writes - writes0;
    v_tlb_hit_rate = Hw_tlb.hit_rate machine.Hw_machine.tlb;
    v_pt_hits = Hw_page_table.hits machine.Hw_machine.page_table;
    v_pt_misses = Hw_page_table.misses machine.Hw_machine.page_table;
    v_pt_collisions = Hw_page_table.collisions machine.Hw_machine.page_table;
    v_pt_resident = Hw_page_table.resident machine.Hw_machine.page_table;
  }

let run_ultrix ?seed:_ trace =
  let machine = machine_128mb () in
  let uvm = Uvm.create machine in
  let pid = Uvm.create_process uvm ~name:trace.T.name in
  (* Warm phase: cache the inputs. *)
  let fds = Hashtbl.create 8 in
  List.iter
    (fun (file, kb) ->
      let fd = Uvm.open_file uvm ~file_id:file ~size_kb:kb in
      Uvm.preload uvm fd;
      Hashtbl.replace fds file fd)
    (T.input_files trace);
  List.iter
    (fun file -> Hashtbl.replace fds file (Uvm.open_file uvm ~file_id:file ~size_kb:0))
    (T.output_files trace);
  let stats = Uvm.stats uvm in
  let faults0 = stats.Uvm.faults and zeros0 = stats.Uvm.zero_fills in
  let reads0 = stats.Uvm.read_calls and writes0 = stats.Uvm.write_calls in
  let t0 = ref 0.0 and t1 = ref 0.0 in
  let next_heap = ref 0 in
  let write_pos = Hashtbl.create 8 in
  let c = machine.Hw_machine.cost in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      t0 := Engine.time ();
      List.iter
        (fun op ->
          match op with
          | T.Compute us -> Engine.delay us
          | T.Open_input _ -> Engine.delay c.Hw_cost.syscall_base
          | T.Open_output _ -> Engine.delay c.Hw_cost.syscall_base
          | T.Read_seq { file; kb } -> Uvm.read uvm (Hashtbl.find fds file) ~offset_kb:0 ~kb
          | T.Append { file; kb } ->
              let pos = try Hashtbl.find write_pos file with Not_found -> 0 in
              Uvm.write uvm (Hashtbl.find fds file) ~offset_kb:pos ~kb;
              Hashtbl.replace write_pos file (pos + kb)
          | T.Touch_heap { pages } ->
              for _ = 1 to pages do
                Uvm.touch uvm pid ~vpn:!next_heap ~access:Uvm.Write;
                incr next_heap
              done
          | T.Rescan_heap { passes } ->
              for _ = 1 to passes do
                for p = 0 to !next_heap - 1 do
                  Uvm.touch uvm pid ~vpn:p ~access:Uvm.Read
                done
              done
          | T.Close _ -> Engine.delay c.Hw_cost.syscall_base
          | T.Admin { requests } ->
              Engine.delay (float_of_int requests *. c.Hw_cost.syscall_base))
        trace.T.ops;
      t1 := Engine.time ());
  Engine.run machine.Hw_machine.engine;
  {
    u_elapsed_s = (!t1 -. !t0) /. 1_000_000.0;
    u_faults = stats.Uvm.faults - faults0;
    u_zero_fills = stats.Uvm.zero_fills - zeros0;
    u_read_calls = stats.Uvm.read_calls - reads0;
    u_write_calls = stats.Uvm.write_calls - writes0;
  }
