type t = int

let empty = 0
let dirty = 1
let referenced = 2
let no_access = 4
let read_only = 8
let pinned = 16
let io_busy = 32

let union a b = a lor b
let diff a b = a land lnot b
let mem flags f = flags land f = f
let intersects a b = a land b <> 0
let of_list = List.fold_left union empty
let equal = Int.equal

let names =
  [
    (dirty, "dirty");
    (referenced, "referenced");
    (no_access, "no_access");
    (read_only, "read_only");
    (pinned, "pinned");
    (io_busy, "io_busy");
  ]

let to_string t =
  if t = empty then "-"
  else
    names
    |> List.filter_map (fun (f, n) -> if mem t f then Some n else None)
    |> String.concat "|"

let pp ppf t = Format.pp_print_string ppf (to_string t)
