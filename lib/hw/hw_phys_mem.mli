(** Physical memory: tier-indexed pools of page frames.

    Frames carry their physical address, cache color, memory tier and
    current contents. A machine is built from one or more {e tiers} (fast
    DRAM, slow CXL/NVM-like DRAM, …), each a contiguous run of frames with
    its own per-access / per-migration {!Hw_cost.tier_costs} surcharges.
    Tiers partition the frame index space in declaration order, so
    [addr = index * page_size] and [color = index mod n_colors] hold
    exactly as they did when memory was one flat array — a single-DRAM-tier
    machine is structurally and cost-wise identical to the pre-tier model.

    Who {e owns} a frame (which segment it is migrated into) is the
    kernel's business, not the hardware's; the kernel records an opaque
    integer owner tag here purely so invariant checks ("every frame is in
    exactly one segment") can audit the whole machine. The tag is only
    writable through {!set_owner} — the kernel's single mutation point,
    mirroring the [Epcm_segment.set_frame] discipline — so the per-segment
    resident counters cannot be bypassed. *)

type tier_spec = {
  t_name : string;
  t_bytes : int;  (** Capacity; rounded down to whole pages, at least one. *)
  t_costs : Hw_cost.tier_costs;
}

val dram_tier : bytes:int -> tier_spec
(** Plain DRAM: zero surcharges. [create] wraps the whole machine in one
    of these. *)

val slow_dram_tier : bytes:int -> tier_spec
(** Far memory with {!Hw_cost.slow_dram_tier_costs} surcharges. *)

(** A tier descriptor as built at {!create_tiered} time: its contiguous
    frame interval plus the flattened cost surcharges. *)
type tier = {
  ti_id : int;
  ti_name : string;
  ti_first : int;  (** First frame index of the tier. *)
  ti_frames : int;  (** Frame count. *)
  ti_access_us : float;
  ti_migrate_us : float;
}

type frame = {
  index : int;  (** Frame number, [0 .. n_frames-1]. *)
  addr : int;  (** Physical byte address of the frame. *)
  color : int;  (** [addr / page_size mod n_colors] — cache color. *)
  tier : int;  (** Tier id, [0 .. n_tiers-1]. *)
  mutable data : Hw_page_data.t;
}

type t

val create : ?n_colors:int -> page_size:int -> total_bytes:int -> unit -> t
(** One ["dram"] tier covering all of memory — the flat pre-tier machine.
    [n_colors] defaults to 16. [total_bytes] is rounded down to a whole
    number of pages; at least one page is required. *)

val create_tiered : ?n_colors:int -> page_size:int -> tiers:tier_spec list -> unit -> t
(** Frames laid out tier by tier in list order (tier 0 first). Each tier
    needs at least one page. *)

val page_size : t -> int
val n_frames : t -> int
val n_colors : t -> int

val frame : t -> int -> frame
(** Raises [Invalid_argument] for an out-of-range index. *)

val n_tiers : t -> int

val tier : t -> int -> tier
(** Raises [Invalid_argument] for an out-of-range tier id. *)

val tier_of_frame : t -> int -> int
val tier_access_us : t -> int -> float
val tier_migrate_us : t -> int -> float

val tier_bounds : t -> int -> int * int
(** [(first, count)]: the tier's contiguous frame-index interval. *)

val owner : t -> int -> int
(** The kernel's owner tag for a frame; -1 = none. *)

val set_owner : t -> int -> int -> unit
(** Kernel-only mutation point for the owner tag. *)

val frames_of_color : ?tier:int -> t -> int -> int list
(** Frame indices with the given color, ascending, optionally restricted
    to one tier. Served from a per-color index precomputed at {!create}
    (tier scoping clamps the regular color pattern to the tier interval):
    O(result), no frame-array scan. *)

val frames_in_range : ?tier:int -> t -> lo_addr:int -> hi_addr:int -> int list
(** Frame indices whose physical address lies in [lo_addr, hi_addr),
    optionally intersected with one tier. Frames are contiguous, so the
    interval maps to index arithmetic: O(result), no frame-array scan. *)

val find_aligned_run : ?tier:int -> t -> start:int -> run:int -> owned_by:int -> int option
(** First frame of the lowest [run]-aligned window at or after [start]
    (within [tier] when given) whose frames all carry owner tag
    [owned_by] — the physical backing of one superpage. On a mismatch
    the search jumps past the offending frame, so a caller that advances
    [start] monotonically pays O(frames) over a whole streaming pass,
    not per call. *)

val zero_frame : t -> int -> unit
val copy_frame : t -> src:int -> dst:int -> unit

val owners_histogram : t -> (int * int) list
(** (owner tag, frame count) pairs, for whole-machine accounting checks. *)
