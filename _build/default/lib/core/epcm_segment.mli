(** Segments and bound regions (paper §2.1, Figure 1).

    A segment is a variable-size range of zero or more pages. Program
    address spaces are themselves segments, composed by {e binding} regions
    of other segments (code, data, stack) into them; a reference to an
    address covered by a bound region is effectively a reference to the
    corresponding page of the bound segment. A binding may be copy-on-write,
    in which case pages are effectively bound to the source until modified.

    This module is the passive data structure; all mutation with hardware
    side effects (mappings, migration) goes through {!Epcm_kernel}. *)

type id = int

type page_state = {
  mutable frame : int option;  (** Physical frame mapped here, if any. *)
  mutable flags : Epcm_flags.t;
}

type binding = {
  at : int;  (** First page of the bound region in the composing segment. *)
  len : int;  (** Pages. *)
  target : id;  (** Bound segment. *)
  target_page : int;  (** First corresponding page in [target]. *)
  cow : bool;
}

type t = {
  sid : id;
  sname : string;
  seg_page_size : int;
  mutable pages : page_state array;
  mutable manager : int option;  (** Manager id, see {!Epcm_manager}. *)
  mutable bindings : binding list;  (** Regions bound into this segment. *)
  mutable alive : bool;
}

val make : sid:id -> name:string -> page_size:int -> pages:int -> t
val length : t -> int
val in_range : t -> int -> bool
val page : t -> int -> page_state
(** Raises [Invalid_argument] when out of range. *)

val binding_covering : t -> int -> binding option
(** The binding whose region covers the given page, if any. *)

val bindings_overlap : t -> at:int -> len:int -> bool
val resident_pages : t -> int
(** Pages with a frame mapped. *)

val frames : t -> int list
(** All frames mapped in this segment, ascending page order. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: id, name, size, residency, manager. *)
