(* Tests for the Tables 2-3 application traces and the dual-kernel
   runner. *)

module T = Wl_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Trace accounting                                                   *)
(* ------------------------------------------------------------------ *)

let test_trace_static_accounting () =
  (* The traces are calibrated against Table 3; their static expectations
     must match the paper's counts exactly. *)
  let expect name calls migrates =
    let trace = List.find (fun t -> t.T.name = name) Wl_apps.all in
    check_int (name ^ " manager calls") calls (Wl_apps.expected_manager_calls trace);
    check_int (name ^ " migrates") migrates (Wl_apps.expected_migrate_calls trace)
  in
  expect "diff" 379 372;
  expect "uncompress" 197 195;
  expect "latex" 250 238

let test_trace_paper_file_sizes () =
  check_int "diff reads 400KB" 400 (T.total_read_kb Wl_apps.diff);
  check_int "diff writes 240KB" 240 (T.total_append_kb Wl_apps.diff);
  check_int "uncompress reads 800KB" 800 (T.total_read_kb Wl_apps.uncompress);
  check_int "uncompress writes 2MB" 2048 (T.total_append_kb Wl_apps.uncompress);
  check_bool "latex output modest" true (T.total_append_kb Wl_apps.latex < 200)

let test_trace_heap_within_segment () =
  List.iter
    (fun t ->
      check_bool
        (t.T.name ^ ": heap touches fit the heap segment")
        true
        (T.total_heap_touches t <= t.T.heap_pages))
    Wl_apps.all

(* ------------------------------------------------------------------ *)
(* V++ runs                                                           *)
(* ------------------------------------------------------------------ *)

let test_vpp_diff_matches_table3 () =
  let r = Wl_run.run_vpp Wl_apps.diff in
  check_int "manager calls" 379 r.Wl_run.v_manager_calls;
  check_int "migrate calls" 372 r.Wl_run.v_migrate_calls;
  (* Overhead formula: calls x (379-175)us = 77 ms. *)
  check_bool "overhead near the paper's 76ms" true
    (Float.abs (r.Wl_run.v_manager_overhead_ms -. 77.3) < 1.0)

let test_vpp_uncompress_matches_table3 () =
  let r = Wl_run.run_vpp Wl_apps.uncompress in
  check_int "manager calls" 197 r.Wl_run.v_manager_calls;
  check_int "migrate calls" 195 r.Wl_run.v_migrate_calls

let test_vpp_latex_matches_table3 () =
  let r = Wl_run.run_vpp Wl_apps.latex in
  check_int "manager calls" 250 r.Wl_run.v_manager_calls;
  check_int "migrate calls" 238 r.Wl_run.v_migrate_calls

let test_vpp_reads_are_4kb_units () =
  let r = Wl_run.run_vpp Wl_apps.diff in
  (* 400KB at 4KB per kernel call. *)
  check_int "100 uio reads" 100 r.Wl_run.v_uio_reads;
  check_int "60 uio writes" 60 r.Wl_run.v_uio_writes

let test_vpp_deterministic () =
  let a = Wl_run.run_vpp Wl_apps.diff in
  let b = Wl_run.run_vpp Wl_apps.diff in
  check_bool "same elapsed" true (a.Wl_run.v_elapsed_s = b.Wl_run.v_elapsed_s);
  check_int "same calls" a.Wl_run.v_manager_calls b.Wl_run.v_manager_calls

(* Table 3 pin: the paper's counts for all three applications, asserted
   together as the single invariant they are. The Tables 2-3 runs use a
   memory backing store and never attach a chaos plan to any device —
   fault injection is strictly per-device opt-in — so these counts are
   structurally immune to the injection subsystem. This test is the
   tripwire should that ever change. *)
let test_table3_counts_pinned () =
  List.iter
    (fun (trace, calls, migrates) ->
      let r = Wl_run.run_vpp trace in
      check_int (trace.T.name ^ ": Table 3 manager calls") calls r.Wl_run.v_manager_calls;
      check_int (trace.T.name ^ ": Table 3 migrate calls") migrates r.Wl_run.v_migrate_calls)
    [ (Wl_apps.diff, 379, 372); (Wl_apps.uncompress, 197, 195); (Wl_apps.latex, 250, 238) ]

(* ------------------------------------------------------------------ *)
(* Ultrix runs                                                        *)
(* ------------------------------------------------------------------ *)

let test_ultrix_diff_faults () =
  let r = Wl_run.run_ultrix Wl_apps.diff in
  (* Heap first-touches fault and zero-fill; file appends do not fault
     (the write path allocates in-kernel). *)
  check_int "faults = heap touches" (Wl_trace.total_heap_touches Wl_apps.diff)
    r.Wl_run.u_faults;
  check_int "all were zero fills" r.Wl_run.u_faults r.Wl_run.u_zero_fills

let test_ultrix_io_calls_half_of_vpp () =
  let u = Wl_run.run_ultrix Wl_apps.diff in
  let v = Wl_run.run_vpp Wl_apps.diff in
  (* The paper: V++ moves 4KB per call, Ultrix 8KB — twice the calls. *)
  check_int "read calls halved" (v.Wl_run.v_uio_reads / 2) u.Wl_run.u_read_calls;
  check_int "write calls halved" (v.Wl_run.v_uio_writes / 2) u.Wl_run.u_write_calls

let test_elapsed_times_sane () =
  List.iter
    (fun trace ->
      let v = Wl_run.run_vpp trace in
      let u = Wl_run.run_ultrix trace in
      check_bool (trace.T.name ^ " vpp positive") true (v.Wl_run.v_elapsed_s > 0.0);
      check_bool (trace.T.name ^ " within 10% of each other") true
        (Float.abs (v.Wl_run.v_elapsed_s -. u.Wl_run.u_elapsed_s) /. u.Wl_run.u_elapsed_s < 0.10))
    Wl_apps.all

(* ------------------------------------------------------------------ *)
(* Wl_scale: the perf record's synthetic workload                     *)
(* ------------------------------------------------------------------ *)

(* The whole record rests on the workload being deterministic: rerunning a
   config must reproduce every field, simulated clock and engine event
   count included, so only the host wall-clock differs between perf runs. *)
let test_scale_deterministic () =
  let a = Wl_scale.run Wl_scale.size_8mb in
  let b = Wl_scale.run Wl_scale.size_8mb in
  check_bool "same config, same result record" true (a = b)

(* Pin the 8 MB deterministic counts: the phases are sized by arithmetic
   on the frame count (half cold-paged, quarter ping-ponged, churn over
   budget), so a drift here means the workload's shape changed and
   cross-PR throughput numbers stop being comparable. The engine event
   count is deliberately not pinned — it tracks charge structure, which
   the Table 1 goldens already own. *)
let test_scale_counts_pinned () =
  let r = Wl_scale.run Wl_scale.size_8mb in
  check_int "frames" 2048 r.Wl_scale.r_frames;
  check_int "touches" 3584 r.Wl_scale.r_touches;
  check_int "faults" 1344 r.Wl_scale.r_faults;
  check_int "migrate calls" 2696 r.Wl_scale.r_migrate_calls;
  check_int "migrated pages" 3200 r.Wl_scale.r_migrated_pages;
  check_bool "conserved (total, audit = scan, no wedged process)" true r.Wl_scale.r_conserved;
  check_bool "events counted" true (r.Wl_scale.r_events > 0);
  check_bool "simulated clock advanced" true (r.Wl_scale.r_sim_us > 0.0)

(* The perf record's own legs are fanned over domains by [~jobs]; the
   in-order join must keep every deterministic field identical to a
   sequential run — only the self-timed wall clocks (and the driver
   leg's timings) may differ. A drift here means a scale or stream leg
   picked up hidden cross-leg state. *)
let test_perf_record_jobs_invariant () =
  let a = Exp_scale.run ~quick:true ~jobs:1 () in
  let b = Exp_scale.run ~quick:true ~jobs:2 () in
  check_bool "scale legs identical across jobs" true
    (List.map (fun s -> s.Exp_scale.s_result) a.Exp_scale.scales
    = List.map (fun s -> s.Exp_scale.s_result) b.Exp_scale.scales);
  check_bool "stream legs identical across jobs" true
    (List.map (fun s -> s.Exp_scale.t_result) a.Exp_scale.stream
    = List.map (fun s -> s.Exp_scale.t_result) b.Exp_scale.stream);
  check_bool "driver output identical in both runs" true
    (a.Exp_scale.driver.Exp_scale.d_identical && b.Exp_scale.driver.Exp_scale.d_identical)

let () =
  Alcotest.run "workloads"
    [
      ( "traces",
        [
          Alcotest.test_case "static accounting" `Quick test_trace_static_accounting;
          Alcotest.test_case "paper file sizes" `Quick test_trace_paper_file_sizes;
          Alcotest.test_case "heap fits segment" `Quick test_trace_heap_within_segment;
        ] );
      ( "vpp",
        [
          Alcotest.test_case "diff Table 3" `Quick test_vpp_diff_matches_table3;
          Alcotest.test_case "uncompress Table 3" `Quick test_vpp_uncompress_matches_table3;
          Alcotest.test_case "latex Table 3" `Quick test_vpp_latex_matches_table3;
          Alcotest.test_case "4KB I/O units" `Quick test_vpp_reads_are_4kb_units;
          Alcotest.test_case "deterministic" `Quick test_vpp_deterministic;
          Alcotest.test_case "Table 3 counts pinned" `Quick test_table3_counts_pinned;
        ] );
      ( "scale",
        [
          Alcotest.test_case "deterministic" `Quick test_scale_deterministic;
          Alcotest.test_case "8 MB counts pinned" `Quick test_scale_counts_pinned;
          Alcotest.test_case "perf record identical across --jobs" `Slow
            test_perf_record_jobs_invariant;
        ] );
      ( "ultrix",
        [
          Alcotest.test_case "diff faults" `Quick test_ultrix_diff_faults;
          Alcotest.test_case "8KB halves the calls" `Quick test_ultrix_io_calls_half_of_vpp;
          Alcotest.test_case "elapsed sane" `Quick test_elapsed_times_sane;
        ] );
    ]
