type latency = No_latency | Disk of { device : Hw_disk.t; page_bytes : int }

type retry = { attempts : int; backoff_us : float }

let default_retry = { attempts = 3; backoff_us = 2_000.0 }

exception Backing_failed of { op : Hw_disk.op; file : int; block : int; attempts : int }

type t = {
  latency : latency;
  retry : retry;
  counters : Sim_stats.Counters.t option;
  table : (int * int, Hw_page_data.t) Hashtbl.t;
  mutable reads : int;
  mutable writes : int;
  mutable io_retries : int;
  mutable io_failures : int;
}

let make latency retry counters =
  {
    latency;
    retry;
    counters;
    table = Hashtbl.create 256;
    reads = 0;
    writes = 0;
    io_retries = 0;
    io_failures = 0;
  }

let memory ?(retry = default_retry) ?counters () = make No_latency retry counters

let disk ?(retry = default_retry) ?counters device ~page_bytes =
  make (Disk { device; page_bytes }) retry counters

let disk_block ~file ~block = (file * 1_000_000) + block

let bump t name = Option.iter (fun c -> Sim_stats.Counters.incr c name) t.counters

(* Backoff is simulated time; semantics-only tests run managers outside any
   process, where waiting is meaningless (mirrors Hw_machine.charge). *)
let backoff_wait us =
  if us > 0.0 then try Sim_engine.delay us with Sim_engine.Not_in_process -> ()

let op_name = function `Read -> "read" | `Write -> "write"

(* Observe the end-to-end latency of one block operation (queueing,
   service, backoffs and retries, even when it ultimately fails) into the
   disk's metrics sink, under kind "backing.read"/"backing.write". Only
   measurable inside a simulation process with an enabled sink. *)
let observing t =
  match t.latency with
  | No_latency -> None
  | Disk { device; _ } -> (
      match Hw_disk.metrics device with
      | Some m when Sim_metrics.enabled m -> (
          match Sim_engine.time () with
          | t0 -> Some (m, t0)
          | exception Sim_engine.Not_in_process -> None)
      | _ -> None)

let attempt_io t ~op ~file ~block =
  match t.latency with
  | No_latency -> ()
  | Disk { device; page_bytes } -> (
      let blk = disk_block ~file ~block in
      match op with
      | `Read -> Hw_disk.read_at device ~block:blk ~bytes:page_bytes
      | `Write -> Hw_disk.write_at device ~block:blk ~bytes:page_bytes)

let with_retry t ~op ~file ~block =
  let obs = observing t in
  Fun.protect
    ~finally:(fun () ->
      match obs with
      | None -> ()
      | Some (m, t0) ->
          Sim_metrics.observe m ~kind:("backing." ^ op_name op) (Sim_engine.time () -. t0))
  @@ fun () ->
  let max_attempts = max 1 t.retry.attempts in
  let rec go n backoff =
    try attempt_io t ~op ~file ~block
    with Hw_disk.Io_error _ ->
      if n >= max_attempts then begin
        t.io_failures <- t.io_failures + 1;
        bump t (Printf.sprintf "backing.%s_failed" (op_name op));
        raise (Backing_failed { op; file; block; attempts = n })
      end
      else begin
        t.io_retries <- t.io_retries + 1;
        bump t (Printf.sprintf "backing.%s_retries" (op_name op));
        backoff_wait backoff;
        go (n + 1) (backoff *. 2.0)
      end
  in
  go 1 t.retry.backoff_us

let read_block t ~file ~block =
  t.reads <- t.reads + 1;
  with_retry t ~op:`Read ~file ~block;
  match Hashtbl.find_opt t.table (file, block) with
  | Some d -> d
  | None -> Hw_page_data.block ~file ~block ~version:0

let write_block t ~file ~block data =
  t.writes <- t.writes + 1;
  with_retry t ~op:`Write ~file ~block;
  Hashtbl.replace t.table (file, block) data

let has_block t ~file ~block = Hashtbl.mem t.table (file, block)

let reads t = t.reads
let writes t = t.writes
let io_retries t = t.io_retries
let io_failures t = t.io_failures
