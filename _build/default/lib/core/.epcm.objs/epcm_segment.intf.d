lib/core/epcm_segment.mli: Epcm_flags Format
