type config = {
  charge_rate : float;
  default_income : float;
  savings_tax_rate : float;
  savings_tax_threshold : float;
  io_charge : float;
  free_when_idle : bool;
}

let default_config =
  {
    charge_rate = 1.0;
    default_income = 10.0;
    savings_tax_rate = 0.01;
    savings_tax_threshold = 100.0;
    io_charge = 0.01;
    free_when_idle = true;
  }

type account_id = int

type account = {
  acc_id : account_id;
  acc_name : string;
  mutable income : float;
  mutable balance : float;
  mutable holding_pages : int;
  mutable last_settle_us : float;
  mutable last_billable_s : float;
  mutable total_charged : float;
  mutable total_taxed : float;
  mutable total_income : float;
  mutable io_ops : int;
}

type t = {
  cfg : config;
  page_size : int;
  table : (account_id, account) Hashtbl.t;
  mutable next_id : int;
  mutable demand : bool;
  mutable demand_since_us : float;
      (* Wall time of the last demand-flag flip (valid while demand). *)
  mutable billable_acc_s : float;
      (* Billable seconds accumulated over closed demand intervals. *)
}

let check_rate what v =
  if not (Float.is_finite v) || v < 0.0 then
    invalid_arg (Printf.sprintf "Spcm_market.create: %s must be finite and non-negative" what)

let create ?(config = default_config) ~page_size () =
  if page_size <= 0 then invalid_arg "Spcm_market.create: page_size must be positive";
  check_rate "charge_rate" config.charge_rate;
  check_rate "default_income" config.default_income;
  check_rate "savings_tax_rate" config.savings_tax_rate;
  check_rate "savings_tax_threshold" config.savings_tax_threshold;
  check_rate "io_charge" config.io_charge;
  {
    cfg = config;
    page_size;
    table = Hashtbl.create 16;
    next_id = 1;
    demand = false;
    demand_since_us = 0.0;
    billable_acc_s = 0.0;
  }

let config t = t.cfg

let billable_s t ~now_us =
  if not t.cfg.free_when_idle then now_us /. 1_000_000.0
  else
    t.billable_acc_s
    +. (if t.demand then (now_us -. t.demand_since_us) /. 1_000_000.0 else 0.0)

let set_demand t d ~now_us =
  if d <> t.demand then begin
    if t.demand then begin
      if now_us < t.demand_since_us then
        invalid_arg "Spcm_market.set_demand: time went backwards";
      t.billable_acc_s <- t.billable_acc_s +. ((now_us -. t.demand_since_us) /. 1_000_000.0)
    end;
    t.demand <- d;
    t.demand_since_us <- now_us
  end

let demand t = t.demand

let open_account ?income t ~name ~now_us =
  let income = Option.value income ~default:t.cfg.default_income in
  if not (Float.is_finite income) || income < 0.0 then
    invalid_arg "Spcm_market.open_account: income must be finite and non-negative";
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.table id
    {
      acc_id = id;
      acc_name = name;
      income;
      balance = 0.0;
      holding_pages = 0;
      last_settle_us = now_us;
      last_billable_s = billable_s t ~now_us;
      total_charged = 0.0;
      total_taxed = 0.0;
      total_income = 0.0;
      io_ops = 0;
    };
  id

let account t id =
  match Hashtbl.find_opt t.table id with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Spcm_market.account: no account %d" id)

let accounts t =
  Hashtbl.fold (fun _ a acc -> a :: acc) t.table []
  |> List.sort (fun a b -> compare a.acc_id b.acc_id)

let n_accounts t = Hashtbl.length t.table

let megabytes t pages = float_of_int (pages * t.page_size) /. (1024.0 *. 1024.0)

let holding_cost_per_second t ~pages = megabytes t pages *. t.cfg.charge_rate

(* The exact flow of d(b)/dt = g - rate * max (b - threshold, 0) for [dt]
   seconds with constant net accrual [g]. Within each branch (below /
   above the threshold) the trajectory is monotone toward its equilibrium,
   so a window crosses the threshold at most once: the recursion takes at
   most two steps. *)
let rec flow ~g ~rate ~threshold b dt =
  if dt <= 0.0 then b
  else if rate = 0.0 then b +. (g *. dt)
  else if b > threshold || (b = threshold && g > 0.0) then begin
    (* Above the threshold: x = b - threshold obeys dx/dt = g - rate*x,
       x(dt) = xeq + (x0 - xeq) e^{-rate dt} with xeq = g/rate. *)
    let x0 = b -. threshold and xeq = g /. rate in
    let x at = xeq +. ((x0 -. xeq) *. exp (-.rate *. at)) in
    if xeq >= 0.0 then threshold +. x dt
    else
      (* Net drain: x hits 0 at t0, then the balance continues linearly
         below the threshold. *)
      let t0 = log ((x0 -. xeq) /. -.xeq) /. rate in
      if t0 >= dt then threshold +. x dt
      else flow ~g ~rate ~threshold threshold (dt -. t0)
  end
  else if g <= 0.0 then b +. (g *. dt)
  else
    let t_cross = (threshold -. b) /. g in
    if t_cross >= dt then b +. (g *. dt)
    else flow ~g ~rate ~threshold threshold (dt -. t_cross)

let settle_account t a ~now_us =
  if now_us < a.last_settle_us then
    invalid_arg
      (Printf.sprintf "Spcm_market.settle: time went backwards for account %S" a.acc_name);
  let b1 = billable_s t ~now_us in
  let db = Float.max 0.0 (b1 -. a.last_billable_s) in
  a.last_settle_us <- now_us;
  a.last_billable_s <- b1;
  if db > 0.0 then begin
    let cost = holding_cost_per_second t ~pages:a.holding_pages in
    let earned = a.income *. db in
    let charge = cost *. db in
    let settled =
      flow ~g:(a.income -. cost) ~rate:t.cfg.savings_tax_rate
        ~threshold:t.cfg.savings_tax_threshold a.balance db
    in
    if not (Float.is_finite settled) then
      invalid_arg
        (Printf.sprintf "Spcm_market.settle: balance of account %S is not finite" a.acc_name);
    (* The tax is whatever the flow removed beyond income and charge, so
       the conservation identity holds by construction. *)
    let tax = a.balance +. earned -. charge -. settled in
    a.balance <- settled;
    a.total_income <- a.total_income +. earned;
    a.total_charged <- a.total_charged +. charge;
    a.total_taxed <- a.total_taxed +. tax
  end

let settle t ~now_us = Hashtbl.iter (fun _ a -> settle_account t a ~now_us) t.table

let settle_lazy t id ~now_us = settle_account t (account t id) ~now_us

let note_holding_change t id ~delta_pages ~now_us =
  let a = account t id in
  settle_account t a ~now_us;
  let updated = a.holding_pages + delta_pages in
  if updated < 0 then invalid_arg "Spcm_market.note_holding_change: negative holdings";
  a.holding_pages <- updated

let note_io t id ~ops ~now_us =
  if ops < 0 then invalid_arg "Spcm_market.note_io: ops must be non-negative";
  let a = account t id in
  settle_account t a ~now_us;
  a.io_ops <- a.io_ops + ops;
  a.balance <- a.balance -. (float_of_int ops *. t.cfg.io_charge)

let can_afford t id ~pages ~seconds =
  let a = account t id in
  let cost = holding_cost_per_second t ~pages:(a.holding_pages + pages) *. seconds in
  let accrued = a.income *. seconds in
  a.balance +. accrued >= cost

let bankrupt t id = (account t id).balance < 0.0

let conservation_error t =
  Hashtbl.fold
    (fun _ a worst ->
      let io = float_of_int a.io_ops *. t.cfg.io_charge in
      let expect = a.total_income -. a.total_charged -. a.total_taxed -. io in
      let scale =
        1.0 +. Float.abs a.total_income +. Float.abs a.total_charged +. Float.abs a.total_taxed
        +. Float.abs io
      in
      Float.max worst (Float.abs (a.balance -. expect) /. scale))
    t.table 0.0
