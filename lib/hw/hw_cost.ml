type t = {
  trap_entry : float;
  trap_exit : float;
  fault_decode : float;
  upcall_deliver : float;
  resume_direct : float;
  resume_via_kernel : float;
  signal_deliver : float;
  sigreturn : float;
  context_switch : float;
  syscall_base : float;
  migrate_base : float;
  migrate_per_page : float;
  modify_flags_base : float;
  modify_flags_per_page : float;
  get_attributes_base : float;
  get_attributes_per_page : float;
  set_manager : float;
  bind_region : float;
  mprotect_base : float;
  pte_update : float;
  tlb_flush_page : float;
  tlb_refill : float;
  zero_page : float;
  copy_page : float;
  segment_walk : float;
  ipc_send : float;
  ipc_reply : float;
  manager_server_dispatch : float;
  manager_fault_logic : float;
  uio_read_overhead : float;
  uio_write_overhead : float;
  vnode_lookup : float;
  ultrix_fault_service : float;
  ultrix_write_bookkeeping : float;
  tlb_refill_super : float;
  pte_update_super : float;
  superpage_promote : float;
  superpage_demote : float;
  cache_miss_penalty : float;
  mips : float;
}

let decstation_5000_200 =
  {
    trap_entry = 5.0;
    trap_exit = 7.0;
    fault_decode = 5.0;
    upcall_deliver = 10.0;
    resume_direct = 16.0;
    resume_via_kernel = 30.0;
    signal_deliver = 45.0;
    sigreturn = 46.0;
    context_switch = 85.0;
    syscall_base = 25.0;
    migrate_base = 15.0;
    migrate_per_page = 6.0;
    modify_flags_base = 12.0;
    modify_flags_per_page = 2.0;
    get_attributes_base = 10.0;
    get_attributes_per_page = 1.0;
    set_manager = 14.0;
    bind_region = 22.0;
    mprotect_base = 20.0;
    pte_update = 4.0;
    tlb_flush_page = 2.0;
    tlb_refill = 0.8;
    zero_page = 75.0;
    copy_page = 150.0;
    segment_walk = 9.0;
    ipc_send = 28.0;
    ipc_reply = 28.0;
    manager_server_dispatch = 35.0;
    manager_fault_logic = 12.0;
    uio_read_overhead = 47.0;
    uio_write_overhead = 28.0;
    vnode_lookup = 36.0;
    ultrix_fault_service = 70.0;
    ultrix_write_bookkeeping = 100.0;
    tlb_refill_super = 0.8;
    pte_update_super = 4.0;
    superpage_promote = 30.0;
    superpage_demote = 20.0;
    cache_miss_penalty = 0.5;
    mips = 25.0;
  }

let sgi_4d_380 =
  (* Same structural model; faster processors, similar memory system.
     Only the compute rate matters for Table 4 — fault latency there is
     dominated by the disk, modelled in Hw_disk. *)
  {
    decstation_5000_200 with
    mips = 30.0;
    copy_page = 110.0;
    zero_page = 55.0;
    context_switch = 70.0;
  }

let instructions_us t n = n /. t.mips

type tier_costs = {
  tier_access_us : float;
  tier_migrate_us : float;
}

let dram_tier_costs = { tier_access_us = 0.0; tier_migrate_us = 0.0 }

let slow_dram_tier_costs =
  (* CXL/NVM-like far memory: roughly 3x DRAM load latency on the fault
     path and a per-page surcharge when moving frames that live there.
     Small against a 15 ms disk access, large against a 6 µs migrate. *)
  { tier_access_us = 2.0; tier_migrate_us = 3.0 }

let vpp_minimal_fault_in_process c =
  c.segment_walk +. c.trap_entry +. c.fault_decode +. c.upcall_deliver
  +. c.manager_fault_logic
  +. (c.syscall_base +. c.migrate_base +. c.migrate_per_page)
  +. c.resume_direct +. c.pte_update

let vpp_minimal_fault_via_manager c =
  c.segment_walk +. c.trap_entry +. c.fault_decode +. c.ipc_send +. c.context_switch
  +. c.manager_server_dispatch +. c.manager_fault_logic
  +. (c.syscall_base +. c.migrate_base +. c.migrate_per_page)
  +. c.ipc_reply +. c.context_switch +. c.resume_via_kernel +. c.trap_exit
  +. c.pte_update

let ultrix_minimal_fault c =
  c.segment_walk +. c.trap_entry +. c.fault_decode +. c.ultrix_fault_service +. c.zero_page
  +. c.pte_update +. c.trap_exit

let ultrix_user_reprotect_fault c =
  c.trap_entry +. c.fault_decode +. c.signal_deliver
  +. (c.syscall_base +. c.mprotect_base +. c.pte_update +. c.tlb_flush_page)
  +. c.sigreturn

let vpp_read_4kb c = c.syscall_base +. c.uio_read_overhead +. c.copy_page
let vpp_write_4kb c = c.syscall_base +. c.uio_write_overhead +. c.copy_page
let ultrix_read_4kb c = c.syscall_base +. c.vnode_lookup +. c.copy_page
let ultrix_write_4kb c = c.syscall_base +. c.vnode_lookup +. c.copy_page +. c.ultrix_write_bookkeeping
