(** The sharded transaction engine: the §3.3 substrate scaled out.

    One {e shard} is a self-contained simulated machine — its own
    {!Epcm_kernel}, {!Mgr_dbms} segment manager with a pinned accounts
    relation, {!Db_wal} on its own disk, {!Db_locks} hierarchy and
    deterministic {!Sim_rng} stream — driven by a closed loop of worker
    processes executing DebitCredit transactions. Because shards share
    nothing, a run of [n] shards is [n] independent deterministic
    simulations: the experiment layer fans them over OCaml 5 domains
    ({!Exp_par.map}) and the joined result is byte-identical to a
    sequential run.

    A configurable fraction of transactions is {e cross-shard}: the
    coordinating shard debits a local account and credits an account on
    a remote shard, atomically, via two-phase commit ({!Db_coord}).
    The remote side is modelled inside the coordinating shard's machine
    — its lock table, prepare/outcome WAL and page images are driven by
    the shard that coordinates the transaction, with {!Mgr_dsm} as the
    page transport (per-message interconnect latency, MSI copy
    installs) and {!Db_locks.acquire_timeout} turning remote lock
    conflicts into votes to abort. A single-shard run performs {e no}
    cross-shard work at all: no coordinator messages, no DSM transfers
    (the transport is not even instantiated) — the zero-delta
    discipline, pinned in [test_shard.ml].

    Frame conservation is audited per shard machine; every transaction
    either commits or aborts (accounted exactly). *)

type spec = {
  sp_shards : int;  (** Number of shards. *)
  sp_total_txns : int;  (** Total transactions, split evenly across shards. *)
  sp_workers : int;  (** Closed-loop worker processes per shard. *)
  sp_cpus : int;  (** Simulated processors per shard. *)
  sp_accounts_pages : int;  (** Pinned accounts relation, pages per shard. *)
  sp_remote_pages : int;  (** Remote-account window per peer shard. *)
  sp_hot_remote_pages : int;
      (** Contended prefix of the remote window (branch rows): half of
          all remote picks land here, which is what makes lock timeouts
          and 2PC aborts reachable. *)
  sp_cross_fraction : float;
      (** Fraction of transactions touching a second shard (forced to
          0 when [sp_shards = 1]). *)
  sp_lock_timeout_us : float;  (** Remote lock wait budget before voting abort. *)
  sp_net_latency_us : float;  (** Interconnect latency per 2PC/DSM message. *)
  sp_service_ms : float;  (** Processor time per transaction. *)
  sp_touch_pages : int;  (** Account pages a DebitCredit writes. *)
  sp_seed : int64;
}

val default : spec
(** 8 workers on 6 CPUs per shard, 512 account pages, 10 % cross-shard,
    12 ms lock timeout, 1 ms interconnect latency. *)

type result = {
  r_shard : int;
  r_txns : int;
  r_commits : int;
  r_aborts : int;
  r_local : int;
  r_cross : int;
  r_p50_ms : float;
  r_p99_ms : float;
  r_tps : float;  (** Committed+aborted transactions per simulated second. *)
  r_sim_us : float;
  r_events : int;
  r_msgs : int;  (** 2PC protocol messages (4 per participant). *)
  r_prepares : int;
  r_wal_flushes : int;  (** Local WAL disk writes (group commit). *)
  r_dsm_transfers : int;  (** Remote page copies shipped. *)
  r_lock_timeouts : int;  (** Remote waits that expired into abort votes. *)
  r_frames : int;
  r_conserved : bool;
      (** Frame audit (incremental = scan, flat and tiered), total =
          machine frames, and no leaked processes. *)
}

type world
(** One shard's machine, exposed so tests can build several worlds in
    one process before running any of them (the coexistence pin). *)

val build : spec -> shard:int -> world
val execute : world -> result
(** Run the built shard to completion and collect its result. *)

val run_shard : spec -> shard:int -> result
(** [build] + [execute]. Deterministic per ([spec], [shard]). *)

val shard_txns : spec -> shard:int -> int
(** This shard's slice of [sp_total_txns] (even split, remainder to the
    low shard ids). *)
