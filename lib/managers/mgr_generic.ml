module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags

type seg_kind = Anon | File of { file_id : int }

type hooks = {
  fill :
    seg:Epcm_segment.id -> page:int -> kind:seg_kind -> high_water:int -> Hw_page_data.t option;
  batch_of : seg:Epcm_segment.id -> page:int -> kind:seg_kind -> high_water:int -> int;
  on_eviction : seg:Epcm_segment.id -> page:int -> dirty:bool -> [ `Writeback | `Discard ];
  reprotect_batch : int;
}

let default_hooks ~backing =
  {
    fill =
      (fun ~seg ~page ~kind ~high_water ->
        match kind with
        | Anon ->
            (* Fresh anonymous pages need no data; pages that were evicted
               to the swap area (keyed by negated segment id) must come
               back from it. *)
            if Mgr_backing.has_block backing ~file:(-seg) ~block:page then
              Some (Mgr_backing.read_block backing ~file:(-seg) ~block:page)
            else None
        | File { file_id } ->
            if page < high_water then Some (Mgr_backing.read_block backing ~file:file_id ~block:page)
            else None);
    batch_of = (fun ~seg:_ ~page:_ ~kind:_ ~high_water:_ -> 1);
    on_eviction = (fun ~seg:_ ~page:_ ~dirty -> if dirty then `Writeback else `Discard);
    reprotect_batch = 8;
  }

type source = dst:Epcm_segment.id -> dst_page:int -> count:int -> int

type sp_source = dst:Epcm_segment.id -> dst_page:int -> int

exception Out_of_frames of string

type stats = {
  mutable fills : int;
  mutable cow_fills : int;
  mutable protection_clears : int;
  mutable reclaimed : int;
  mutable writebacks : int;
  mutable discards : int;
  mutable refill_requests : int;
  mutable frames_from_source : int;
  mutable closes : int;
  mutable fill_failures : int;
  mutable writeback_failures : int;
}

type seg_info = { kind : seg_kind; mutable high_water : int; sp : bool }

type clock_entry = { ce_seg : Seg.id; ce_page : int; mutable ce_dead : bool }

type t = {
  kern : K.t;
  name : string;
  mutable mid : Mgr.id;
  pool : Mgr_free_pages.t;
  backing : Mgr_backing.t;
  source : source option;
  sp_source : sp_source option;
  hooks : hooks;
  refill_batch : int;
  reclaim_batch : int;
  segs : (Seg.id, seg_info) Hashtbl.t;
  mutable ring : clock_entry list;  (* newest first; rebuilt lazily *)
  mutable hand : clock_entry list;  (* suffix of the scan order *)
  (* Entries whose page lost its frame are tombstoned (ce_dead) rather
     than filtered out on the spot — an eager List.filter per stale entry
     is O(ring), which goes quadratic under churn. The ring compacts once
     tombstones outnumber live entries, so removal is amortised O(1). *)
  mutable ring_len : int;  (* entries in [ring], live and dead *)
  mutable ring_dead : int;  (* tombstones still in [ring] *)
  counters : Sim_stats.Counters.t option;
  stats : stats;
  (* A manager serves one fault at a time, like the request loop of a real
     manager process: fills that suspend (disk reads) must not interleave
     with another fault's pool manipulation. *)
  serving : Sim_sync.Semaphore.t;
}

let fresh_stats () =
  {
    fills = 0;
    cow_fills = 0;
    protection_clears = 0;
    reclaimed = 0;
    writebacks = 0;
    discards = 0;
    refill_requests = 0;
    frames_from_source = 0;
    closes = 0;
    fill_failures = 0;
    writeback_failures = 0;
  }

let bump t name = Option.iter (fun c -> Sim_stats.Counters.incr c (t.name ^ "." ^ name)) t.counters

let kernel t = t.kern
let manager_id t = t.mid
let pool t = t.pool
let backing t = t.backing
let stats t = t.stats

let info t seg =
  match Hashtbl.find_opt t.segs seg with
  | Some i -> i
  | None -> raise (Out_of_frames (Printf.sprintf "%s: fault on unmanaged segment %d" t.name seg))

let segment_kind t seg = Option.map (fun i -> i.kind) (Hashtbl.find_opt t.segs seg)

let charge_logic t =
  Hw_machine.charge ~label:"mgr/fault_logic" (K.machine t.kern)
    (K.machine t.kern).Hw_machine.cost.Hw_cost.manager_fault_logic

(* Pool operations are multi-step and charge simulated time as they go,
   so any two of them interleave if run from different processes. Fault
   handling already serialises on [serving]; the batch entry points
   (swap_out, swap_in, return_to_system) take the same lock. *)
let with_serving t f =
  Sim_sync.Semaphore.acquire t.serving;
  Fun.protect ~finally:(fun () -> Sim_sync.Semaphore.release t.serving) f

(* ------------------------------------------------------------------ *)
(* Pool refill and reclamation                                        *)
(* ------------------------------------------------------------------ *)

let request_from_source t count =
  match t.source with
  | None -> 0
  | Some source -> (
      match Mgr_free_pages.grant_slot t.pool with
      | None -> 0
      | Some slot ->
          t.stats.refill_requests <- t.stats.refill_requests + 1;
          let want = min count (Mgr_free_pages.room t.pool) in
          let got = source ~dst:(Mgr_free_pages.segment t.pool) ~dst_page:slot ~count:want in
          Mgr_free_pages.note_granted t.pool got;
          t.stats.frames_from_source <- t.stats.frames_from_source + got;
          got)

let slot_state t seg page =
  if not (K.segment_exists t.kern seg) then None
  else
    let s = K.segment t.kern seg in
    if not (Seg.in_range s page) then None
    else
      let slot = Seg.page s page in
      Option.map (fun frame -> (slot, frame)) slot.Seg.frame

let evict_one t entry =
  match slot_state t entry.ce_seg entry.ce_page with
  | None -> `Gone
  | Some (slot, frame) ->
      let flags = slot.Seg.flags in
      if Flags.mem flags Flags.pinned || Flags.mem flags Flags.io_busy then `Skip
      else if Flags.mem flags Flags.referenced then begin
        (* Second chance: clear the reference bit and move on. *)
        K.modify_page_flags t.kern ~seg:entry.ce_seg ~page:entry.ce_page ~count:1
          ~clear_flags:Flags.referenced ();
        `Skip
      end
      else begin
        let dirty = Flags.mem flags Flags.dirty in
        let released =
          (* The hook itself may fail too (a WAL hook that cannot flush its
             log raises Backing_failed to veto the writeback). Either way
             the degradation is the same: the page stays resident and
             dirty, still owned by its segment, and the clock moves on to
             a cleaner victim. A later pass retries it. *)
          try
            match t.hooks.on_eviction ~seg:entry.ce_seg ~page:entry.ce_page ~dirty with
            | `Writeback ->
                let data =
                  (Hw_phys_mem.frame (K.machine t.kern).Hw_machine.mem frame).Hw_phys_mem.data
                in
                (* Anonymous pages write to a swap area modelled by the same
                   backing store under the negated segment id. *)
                let file =
                  match Hashtbl.find_opt t.segs entry.ce_seg with
                  | Some { kind = File { file_id }; _ } -> file_id
                  | Some { kind = Anon; _ } | None -> -entry.ce_seg
                in
                Mgr_backing.write_block t.backing ~file ~block:entry.ce_page data;
                t.stats.writebacks <- t.stats.writebacks + 1;
                true
            | `Discard ->
                t.stats.discards <- t.stats.discards + 1;
                true
          with Mgr_backing.Backing_failed _ ->
            t.stats.writeback_failures <- t.stats.writeback_failures + 1;
            bump t "writeback_skipped";
            false
        in
        if not released then `Skip
        else begin
          Mgr_free_pages.put_from t.pool ~src:entry.ce_seg ~src_page:entry.ce_page;
          t.stats.reclaimed <- t.stats.reclaimed + 1;
          `Evicted
        end
      end

let reclaim t ~count =
  let reclaimed = ref 0 in
  let passes = ref 0 in
  let stop = ref false in
  (* Two full sweeps at most: the first typically clears reference bits,
     the second finds victims. A sweep in progress runs to completion. *)
  while (not !stop) && !reclaimed < count && (!passes < 2 || t.hand <> []) do
    if t.hand = [] then begin
      t.hand <- t.ring;
      incr passes;
      if t.hand = [] then stop := true
    end;
    match t.hand with
    | [] -> stop := true
    | entry :: rest -> (
        t.hand <- rest;
        if Mgr_free_pages.room t.pool = 0 then stop := true
        else if entry.ce_dead then ()
        else
          match evict_one t entry with
          | `Evicted -> incr reclaimed
          | `Skip -> ()
          | `Gone ->
              entry.ce_dead <- true;
              t.ring_dead <- t.ring_dead + 1;
              if t.ring_dead * 2 > t.ring_len then begin
                t.ring <- List.filter (fun e -> not e.ce_dead) t.ring;
                t.ring_len <- List.length t.ring;
                t.ring_dead <- 0
              end)
  done;
  !reclaimed

let ensure_pool t ~count =
  if Mgr_free_pages.available t.pool < count then begin
    let missing = count - Mgr_free_pages.available t.pool in
    let got = request_from_source t (max missing t.refill_batch) in
    if got < missing then ignore (reclaim t ~count:(max (missing - got) t.reclaim_batch));
    if Mgr_free_pages.available t.pool < count then
      raise
        (Out_of_frames
           (Printf.sprintf "%s: need %d frames, have %d after refill and reclaim" t.name count
              (Mgr_free_pages.available t.pool)))
  end

(* ------------------------------------------------------------------ *)
(* Fault handling                                                     *)
(* ------------------------------------------------------------------ *)

let track t seg page =
  t.ring <- { ce_seg = seg; ce_page = page; ce_dead = false } :: t.ring;
  t.ring_len <- t.ring_len + 1

(* Superpage grant: when the faulting segment opted in and the whole
   covering region is still empty, ask the run source for one aligned
   frame run — a single contiguous MigratePages the kernel promotes to a
   2 MB mapping. Returns false (caller takes the 4 KB path) when no run
   is available, the region straddles the segment end, or part of it is
   already resident. *)
let try_superpage_fill t (fault : Mgr.fault) inf seg =
  match t.sp_source with
  | None -> false
  | Some grant ->
      let run = K.super_pages t.kern in
      let sbase = fault.Mgr.f_page / run * run in
      if sbase + run > Seg.length seg then false
      else begin
        let empty = ref true and i = ref 0 in
        while !empty && !i < run do
          if (Seg.page seg (sbase + !i)).Seg.frame <> None then empty := false;
          incr i
        done;
        !empty
        &&
        let got = grant ~dst:fault.Mgr.f_seg ~dst_page:sbase in
        got > 0
        && begin
             t.stats.refill_requests <- t.stats.refill_requests + 1;
             t.stats.frames_from_source <- t.stats.frames_from_source + got;
             inf.high_water <- max inf.high_water (sbase + got);
             for i = 0 to got - 1 do
               track t fault.Mgr.f_seg (sbase + i)
             done;
             t.stats.fills <- t.stats.fills + 1;
             Hw_machine.trace_emit (K.machine t.kern) ~tag:"step2-3.superpage_fill" (fun () ->
                 Printf.sprintf "seg %d pages %d..%d (aligned run)" fault.Mgr.f_seg sbase
                   (sbase + got - 1));
             true
           end
      end

let handle_missing_base t (fault : Mgr.fault) inf =
  let machine = K.machine t.kern in
  let batch =
    max 1
      (t.hooks.batch_of ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~kind:inf.kind
         ~high_water:inf.high_water)
  in
  (* Clamp the batch to the segment end and to pages that are still empty. *)
  let seg = K.segment t.kern fault.Mgr.f_seg in
  let rec free_run p n =
    if n >= batch || not (Seg.in_range seg p) then n
    else if (Seg.page seg p).Seg.frame <> None then n
    else free_run (p + 1) (n + 1)
  in
  let batch = max 1 (free_run fault.Mgr.f_page 0) in
  ensure_pool t ~count:batch;
  if batch = 1 then begin
    let filled =
      (* No frame has left the pool yet, so a failed fill leaves every
         frame accounted for; the fault stays unresolved and the caller
         sees the backing failure. *)
      try
        t.hooks.fill ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~kind:inf.kind
          ~high_water:inf.high_water
      with Mgr_backing.Backing_failed _ as e ->
        t.stats.fill_failures <- t.stats.fill_failures + 1;
        bump t "fill_failed";
        raise e
    in
    match filled with
    | Some data ->
        Hw_machine.trace_emit machine ~tag:"step2.request_data" (fun () ->
            Printf.sprintf "seg %d page %d" fault.Mgr.f_seg fault.Mgr.f_page);
        Mgr_free_pages.set_next_data t.pool data;
        Hw_machine.trace_emit machine ~tag:"step3.data_reply" (fun () ->
            Printf.sprintf "seg %d page %d" fault.Mgr.f_seg fault.Mgr.f_page);
        (* Copying the arrived data into the allocated frame. *)
        Hw_machine.charge ~label:"mgr/copy_page" machine
          machine.Hw_machine.cost.Hw_cost.copy_page
    | None ->
        Hw_machine.trace_emit machine ~tag:"step2-3.local_fill" (fun () ->
            Printf.sprintf "seg %d page %d" fault.Mgr.f_seg fault.Mgr.f_page)
  end
  else
    Hw_machine.trace_emit machine ~tag:"step2-3.local_fill" (fun () ->
        Printf.sprintf "seg %d pages %d..%d (append batch)" fault.Mgr.f_seg fault.Mgr.f_page
          (fault.Mgr.f_page + batch - 1));
  let moved =
    Mgr_free_pages.take_to t.pool ~dst:fault.Mgr.f_seg ~dst_page:fault.Mgr.f_page ~count:batch
      ~clear_flags:(Flags.of_list [ Flags.dirty; Flags.no_access; Flags.read_only ])
      ()
  in
  assert (moved = batch);
  inf.high_water <- max inf.high_water (fault.Mgr.f_page + batch);
  for i = 0 to batch - 1 do
    track t fault.Mgr.f_seg (fault.Mgr.f_page + i)
  done;
  t.stats.fills <- t.stats.fills + 1

let handle_missing t (fault : Mgr.fault) =
  let inf = info t fault.Mgr.f_seg in
  if inf.sp && try_superpage_fill t fault inf (K.segment t.kern fault.Mgr.f_seg) then ()
  else handle_missing_base t fault inf

let handle_protection t (fault : Mgr.fault) =
  (* Clock sampling: re-enable a run of contiguous protected pages at once
     to amortise the fault cost. *)
  let seg = K.segment t.kern fault.Mgr.f_seg in
  let rec run p n =
    if n >= t.hooks.reprotect_batch || not (Seg.in_range seg p) then n
    else
      let slot = Seg.page seg p in
      if slot.Seg.frame <> None && Flags.mem slot.Seg.flags Flags.no_access then run (p + 1) (n + 1)
      else n
  in
  let n = max 1 (run fault.Mgr.f_page 0) in
  K.modify_page_flags t.kern ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~count:n
    ~clear_flags:Flags.no_access ();
  t.stats.protection_clears <- t.stats.protection_clears + 1

let handle_cow t (fault : Mgr.fault) =
  ensure_pool t ~count:1;
  let moved =
    Mgr_free_pages.take_to t.pool ~dst:fault.Mgr.f_seg ~dst_page:fault.Mgr.f_page ~count:1
      ~clear_flags:(Flags.of_list [ Flags.dirty; Flags.no_access; Flags.read_only ])
      ()
  in
  assert (moved = 1);
  track t fault.Mgr.f_seg fault.Mgr.f_page;
  t.stats.cow_fills <- t.stats.cow_fills + 1

let on_fault t (fault : Mgr.fault) =
  charge_logic t;
  Sim_sync.Semaphore.acquire t.serving;
  Fun.protect
    ~finally:(fun () -> Sim_sync.Semaphore.release t.serving)
    (fun () ->
      (* Another fault on the same page may have been served while we
         waited in the queue. *)
      let s = K.segment t.kern fault.Mgr.f_seg in
      let already_resolved =
        fault.Mgr.f_kind = Mgr.Missing
        && Seg.in_range s fault.Mgr.f_page
        && (Seg.page s fault.Mgr.f_page).Seg.frame <> None
      in
      if not already_resolved then
        match fault.Mgr.f_kind with
        | Mgr.Missing -> handle_missing t fault
        | Mgr.Protection -> handle_protection t fault
        | Mgr.Cow_write -> handle_cow t fault)

let on_close t seg =
  t.stats.closes <- t.stats.closes + 1;
  (match Hashtbl.find_opt t.segs seg with
  | None -> ()
  | Some inf ->
      (* Reclaim every resident frame into the pool, honouring writeback. *)
      let s = K.segment t.kern seg in
      for page = 0 to Seg.length s - 1 do
        let slot = Seg.page s page in
        match slot.Seg.frame with
        | None -> ()
        | Some frame ->
            if Mgr_free_pages.room t.pool > 0 then begin
              (if Flags.mem slot.Seg.flags Flags.dirty then
                 match inf.kind with
                 | File { file_id } -> (
                     let data =
                       (Hw_phys_mem.frame (K.machine t.kern).Hw_machine.mem frame)
                         .Hw_phys_mem.data
                     in
                     (* The segment is going away regardless; an exhausted
                        retry budget here is explicit, counted data loss,
                        not a reason to wedge the close. *)
                     try
                       Mgr_backing.write_block t.backing ~file:file_id ~block:page data;
                       t.stats.writebacks <- t.stats.writebacks + 1
                     with Mgr_backing.Backing_failed _ ->
                       t.stats.writeback_failures <- t.stats.writeback_failures + 1;
                       bump t "close_writeback_lost")
                 | Anon -> t.stats.discards <- t.stats.discards + 1);
              Mgr_free_pages.put_from t.pool ~src:seg ~src_page:page
            end
      done);
  Hashtbl.remove t.segs seg;
  t.ring <- List.filter (fun e -> (not e.ce_dead) && e.ce_seg <> seg) t.ring;
  t.ring_len <- List.length t.ring;
  t.ring_dead <- 0;
  t.hand <- List.filter (fun e -> e.ce_seg <> seg) t.hand

let return_to_system_unlocked t ~pages =
  if Mgr_free_pages.available t.pool < pages then
    ignore (reclaim t ~count:(pages - Mgr_free_pages.available t.pool));
  Mgr_free_pages.release_to_initial t.pool ~count:pages

let return_to_system t ~pages = with_serving t (fun () -> return_to_system_unlocked t ~pages)

(* The 2.2 batch-swap protocol: page everything out (unpinned pages are
   written back per the eviction policy) and hand the frames back to the
   system. The manager's own pinned code/data pages stay; the caller is
   expected to unpin and release those through the default manager before
   suspending, and lock_in_memory re-establishes them on resumption. *)
let swap_out t =
  with_serving t @@ fun () ->
  let released = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let got = reclaim t ~count:64 in
    released := !released + Mgr_free_pages.release_to_initial t.pool ~count:(Mgr_free_pages.available t.pool);
    if got = 0 then continue_ := false
  done;
  !released

(* Resumption: fault every page of the managed segments back in. Lazy
   resumption (waiting for demand faults) also works; this is the eager
   variant for predictable restart latency. *)
let swap_in t =
  List.iter
    (fun seg ->
      let s = K.segment t.kern seg in
      for page = 0 to Seg.length s - 1 do
        if
          (Seg.page s page).Seg.frame = None
          && Mgr_backing.has_block t.backing ~file:(-seg) ~block:page
        then K.touch t.kern ~space:seg ~page ~access:Mgr.Read
      done)
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.segs [])

let create kern ~name ~mode ~backing ?source ?sp_source ?hooks ?(pool_capacity = 1024)
    ?(refill_batch = 32) ?(reclaim_batch = 16) ?counters () =
  let hooks = match hooks with Some h -> h | None -> default_hooks ~backing in
  let pool = Mgr_free_pages.create kern ~name:(name ^ ".free-pages") ~capacity:pool_capacity in
  let t =
    {
      kern;
      name;
      mid = -1;
      pool;
      backing;
      source;
      sp_source;
      hooks;
      refill_batch;
      reclaim_batch;
      segs = Hashtbl.create 16;
      ring = [];
      hand = [];
      ring_len = 0;
      ring_dead = 0;
      counters;
      stats = fresh_stats ();
      serving = Sim_sync.Semaphore.create 1;
    }
  in
  t.mid <-
    K.register_manager kern ~name ~mode
      ~on_fault:(fun f -> on_fault t f)
      ~on_close:(fun s -> on_close t s)
      ~on_pressure:(fun ~pages ->
        (* Never block here: the caller (SPCM) holds its own serving lock
           while a fault handler holding ours may be blocked on an SPCM
           request — waiting would deadlock. A busy manager's pool is in
           flux anyway; declining is the honest answer. *)
        if Sim_sync.Semaphore.try_acquire t.serving then
          Fun.protect
            ~finally:(fun () -> Sim_sync.Semaphore.release t.serving)
            (fun () -> return_to_system_unlocked t ~pages)
        else 0)
      ();
  t

let adopt t seg ~kind ?high_water ?(superpages = false) () =
  let s = K.segment t.kern seg in
  let hw =
    match (high_water, kind) with
    | Some h, _ -> h
    | None, Anon -> 0
    | None, File _ -> Seg.length s
  in
  Hashtbl.replace t.segs seg { kind; high_water = hw; sp = superpages };
  K.set_segment_manager t.kern seg t.mid;
  if superpages then K.set_superpages t.kern ~seg ~enabled:true;
  (* Track already-resident pages so the clock can see them. *)
  Array.iteri (fun i slot -> if slot.Seg.frame <> None then track t seg i) s.Seg.pages

let create_segment t ~name ~pages ~kind ?high_water ?(superpages = false) () =
  let seg = K.create_segment t.kern ~name ~pages () in
  let hw = match (high_water, kind) with Some h, _ -> h | None, _ -> 0 in
  Hashtbl.replace t.segs seg { kind; high_water = hw; sp = superpages };
  K.set_segment_manager t.kern seg t.mid;
  if superpages then K.set_superpages t.kern ~seg ~enabled:true;
  seg

let close_segment t seg = K.destroy_segment t.kern seg

let managed t = Hashtbl.fold (fun k _ acc -> k :: acc) t.segs [] |> List.sort compare

let high_water t seg = (info t seg).high_water

let pin t ~seg ~page ~count =
  K.modify_page_flags t.kern ~seg ~page ~count ~set_flags:Flags.pinned ()

let unpin t ~seg ~page ~count =
  K.modify_page_flags t.kern ~seg ~page ~count ~clear_flags:Flags.pinned ()

let resident t ~seg = Seg.resident_pages (K.segment t.kern seg)

let lock_in_memory t ~seg =
  let s = K.segment t.kern seg in
  let n = Seg.length s in
  let max_rounds = 8 in
  let rec attempt round =
    if round > max_rounds then raise (Out_of_frames (t.name ^ ": cannot lock segment in memory"));
    (* Force everything in. *)
    for page = 0 to n - 1 do
      K.touch t.kern ~space:seg ~page ~access:Mgr.Read
    done;
    pin t ~seg ~page:0 ~count:n;
    (* Re-verify: a fault here means something was reclaimed between the
       touch and the pin; retry (the paper's retry-until-success). *)
    let before = (K.stats t.kern).K.faults_missing in
    for page = 0 to n - 1 do
      K.touch t.kern ~space:seg ~page ~access:Mgr.Read
    done;
    if (K.stats t.kern).K.faults_missing > before then begin
      unpin t ~seg ~page:0 ~count:n;
      attempt (round + 1)
    end
  in
  attempt 1

let protect_for_sampling t ~seg =
  let s = K.segment t.kern seg in
  for page = 0 to Seg.length s - 1 do
    let slot = Seg.page s page in
    if slot.Seg.frame <> None && not (Flags.mem slot.Seg.flags Flags.pinned) then
      K.modify_page_flags t.kern ~seg ~page ~count:1 ~set_flags:Flags.no_access ()
  done
