lib/hw/hw_tlb.ml: Array
