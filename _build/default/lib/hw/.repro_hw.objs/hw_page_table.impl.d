lib/hw/hw_page_table.ml: Array
