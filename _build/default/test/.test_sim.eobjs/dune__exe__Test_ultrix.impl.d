test/test_ultrix.ml: Alcotest Float Hw_machine List QCheck QCheck_alcotest Sim_engine Uvm
