(* Command-line driver: regenerate each table and figure of the paper. *)

open Cmdliner

let run_table1 () = print_string (Exp_table1.render (Exp_table1.run ()))
let run_table2 () = print_string (Exp_table2.render (Exp_table2.run ()))
let run_table3 () = print_string (Exp_table3.render (Exp_table3.run ()))

let run_table4 quick () = print_string (Exp_table4.render (Exp_table4.run ~quick ()))

let run_figures () = print_string (Exp_figures.render (Exp_figures.run ()))

let run_stats () = print_string (Exp_substrate.render (Exp_substrate.run ()))

let run_chaos seed () = print_string (Exp_chaos.render (Exp_chaos.run ?seed ()))

let run_profile json () =
  let r = Exp_profile.run () in
  if json then print_string (Exp_profile.render_json r) else print_string (Exp_profile.render r)

let run_ablations () =
  List.iter
    (fun a ->
      print_string (Exp_ablations.render a);
      print_newline ())
    (Exp_ablations.run_all ())

let run_all quick () =
  run_table1 ();
  print_newline ();
  run_table2 ();
  print_newline ();
  run_table3 ();
  print_newline ();
  run_table4 quick ();
  print_newline ();
  run_figures ()

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shorten the Table 4 simulation (60s instead of 300s).")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the versioned machine-readable record instead of the text rendering.")

let seed_opt =
  Arg.(
    value
    & opt (some int64) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Fault-plan seed (same seed, same storm).")

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let () =
  let cmds =
    [
      cmd "table1" "System primitive times (Table 1)" Term.(const run_table1 $ const ());
      cmd "table2" "Application elapsed times (Table 2)" Term.(const run_table2 $ const ());
      cmd "table3" "VM system activity and costs (Table 3)" Term.(const run_table3 $ const ());
      cmd "table4" "DBMS transaction response times (Table 4)"
        Term.(const run_table4 $ quick_flag $ const ());
      cmd "figures" "Figures 1 and 2 as live kernel-state dumps"
        Term.(const run_figures $ const ());
      cmd "ablate" "Ablations of the design choices (batching, delivery mode, crossover)"
        Term.(const run_ablations $ const ());
      cmd "stats" "Translation-substrate statistics (mapping hash, TLB) for the Table 2 runs"
        Term.(const run_stats $ const ());
      cmd "chaos" "Seeded fault-injection storms on the disk/manager paths (not a paper table)"
        Term.(const run_chaos $ seed_opt $ const ());
      cmd "profile"
        "Cost attribution for the Table 1 paths plus latency histograms (not a paper table)"
        Term.(const run_profile $ json_flag $ const ());
      cmd "all" "Every table and figure" Term.(const run_all $ quick_flag $ const ());
    ]
  in
  let info =
    Cmd.info "vpp_repro" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Application-Controlled Physical Memory using External Page-Cache \
         Management' (Harty & Cheriton, ASPLOS 1992)"
  in
  exit (Cmd.eval (Cmd.group info ~default:Term.(const run_all $ quick_flag $ const ()) cmds))
