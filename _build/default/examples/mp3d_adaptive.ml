(* MP3D-style adaptive memory sizing (paper §1).

   "MP3D, a large scale parallel particle simulation based on the
   Monte-Carlo method, generates a final result based on the averaging of
   a number of simulation runs. The simulation can be run for a shorter
   amount of time if it uses many runs with a large number of particles.
   This application could automatically adjust the number of particles it
   uses for a run, and thus the amount of memory it requires, based on
   availability of physical memory."

   The accuracy target is a fixed number of particle-steps. An oblivious
   run sizes itself for the machine's nominal memory and thrashes when the
   SPCM can only grant less; the adaptive run asks how much memory is
   actually available and sizes its particle population to fit, taking
   more (but fault-free) steps.

   Run with: dune exec examples/mp3d_adaptive.exe *)

module K = Epcm_kernel
module Seg = Epcm_segment
module Engine = Sim_engine
module G = Mgr_generic

let target_particle_steps = 6144 (* accuracy target: pages x steps *)
let available_frames = 64 (* what the SPCM will actually grant *)
let oblivious_pages = 96 (* what the program would like to use *)
let compute_per_page_us = 500.0

let build () =
  (* A machine whose free pool holds only [available_frames] for us (the
     rest is spoken for by other jobs, modelled by a capped source). *)
  let machine = Hw_machine.create ~memory_bytes:(16 * 1024 * 1024) () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let granted_total = ref 0 in
  let source ~dst ~dst_page ~count =
    let allowed = min count (available_frames - !granted_total) in
    let granted = ref 0 in
    let init_seg = K.segment kernel init in
    while !granted < allowed && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    granted_total := !granted_total + !granted;
    !granted
  in
  let backing_disk = machine.Hw_machine.disk in
  let mgr =
    G.create kernel ~name:"mp3d"
      ~mode:`In_process
      ~backing:(Mgr_backing.disk backing_disk ~page_bytes:4096)
      ~source ~pool_capacity:(available_frames + 8) ~reclaim_batch:8 ()
  in
  (machine, kernel, mgr)

(* Run the simulation with a particle population occupying [pages] pages.
   Steps needed = target / pages. Each step sweeps every particle page
   (write: particles move); pages beyond the allocation thrash. *)
let simulate ~pages () =
  let machine, kernel, mgr = build () in
  let seg = G.create_segment mgr ~name:"particles" ~pages ~kind:G.Anon () in
  let steps = (target_particle_steps + pages - 1) / pages in
  let elapsed = ref 0.0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      let t0 = Engine.time () in
      for _ = 1 to steps do
        for p = 0 to pages - 1 do
          K.touch kernel ~space:seg ~page:p ~access:Epcm_manager.Write;
          Engine.delay compute_per_page_us;
          (* Keep residency within the allocation, as the manager must. *)
          if G.resident mgr ~seg > available_frames - 4 then ignore (G.reclaim mgr ~count:8)
        done
      done;
      elapsed := Engine.time () -. t0);
  Engine.run machine.Hw_machine.engine;
  (!elapsed /. 1_000_000.0, steps, Hw_disk.reads machine.Hw_machine.disk
   + Hw_disk.writes machine.Hw_machine.disk)

let () =
  (* The adaptive program asks first (a free-frame query to the SPCM) and
     sizes its run to what it can actually hold. *)
  let adaptive_pages = available_frames - 4 in
  let oblivious_s, oblivious_steps, oblivious_io = simulate ~pages:oblivious_pages () in
  let adaptive_s, adaptive_steps, adaptive_io = simulate ~pages:adaptive_pages () in
  Printf.printf
    "MP3D-style run to a fixed accuracy target (%d particle-page-steps), %d frames available:\n\n"
    target_particle_steps available_frames;
  Printf.printf "  oblivious (%3d pages, %2d steps) : %7.2f s  (%5d disk transfers — thrashing)\n"
    oblivious_pages oblivious_steps oblivious_s oblivious_io;
  Printf.printf "  adaptive  (%3d pages, %2d steps) : %7.2f s  (%5d disk transfers)\n"
    adaptive_pages adaptive_steps adaptive_s adaptive_io;
  Printf.printf "  speedup from asking first       : %.1fx\n\n" (oblivious_s /. adaptive_s);
  Printf.printf
    "The space-time tradeoff is real only when the space is physical: more particles per\n\
     step is faster per particle-step *until* the population exceeds the allocation,\n\
     at which point every extra page costs a disk round trip per step (paper 1, 5).\n"
