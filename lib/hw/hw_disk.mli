(** Disk device model.

    A single arm served FIFO: a transfer costs
    [seek + rotation/2 + bytes * transfer time]. Around 1992, a page fault
    to disk cost "close to a million instruction times" (paper, §1) —
    roughly 20 ms on a 30+ MIPS machine, which the default parameters
    reproduce. Concurrent requests queue on the arm, so a burst of faults
    serialises, which is exactly the convoy behaviour Table 4's paging
    configuration exhibits. *)

type params = {
  seek_us : float;
  half_rotation_us : float;
  us_per_kb : float;
}

val default_params : params
(** ~12 ms seek, ~8.3 ms rotation (3600 rpm), ~0.65 µs/byte
    (≈1.5 MB/s sustained): a typical 1992 SCSI disk. *)

type op = [ `Read | `Write ]

exception Io_error of { op : op; block : int option }
(** Raised by {!read}/{!write} when the attached chaos plan injects a
    failure. The arm has already done its (useless) work: the full service
    time — plus any injected burst — has been charged before the exception
    surfaces, so retries queue behind other traffic exactly as on a real
    disk. *)

type t

val create : Sim_engine.t -> ?params:params -> unit -> t
(** No chaos plan attached; every transfer succeeds. *)

val set_chaos : t -> Sim_chaos.t option -> unit
(** Attach (or detach, with [None]) a fault plan. With [None] — the
    default — the transfer path is byte-identical to a plan-free disk:
    no RNG draws, no extra charges, no recording. *)

val chaos : t -> Sim_chaos.t option

val set_metrics : t -> Sim_metrics.t option -> unit
(** Attach a metrics sink; when the sink is enabled, every transfer made
    inside a simulation process records its end-to-end latency (queueing +
    service + injected bursts, even on injected failure) under kind
    ["disk.read"] / ["disk.write"]. With no sink, or a disabled one, the
    transfer path does no extra work. *)

val metrics : t -> Sim_metrics.t option
(** The attached sink, if any — layers built over the disk (backing
    stores, the WAL) observe their own end-to-end latencies into it. *)

val access_time_us : t -> bytes:int -> float
(** Raw service time for one transfer, without queueing. *)

val read : t -> bytes:int -> unit
(** Blocks the calling process for queueing + service time.

    @raise Io_error if the chaos plan fails this attempt. *)

val write : t -> bytes:int -> unit
(** @raise Io_error if the chaos plan fails this attempt. *)

val read_at : t -> block:int -> bytes:int -> unit
(** Like {!read}, naming the block so the chaos plan's bad-block list can
    match it. Anonymous {!read}s only see probabilistic/outage injection. *)

val write_at : t -> block:int -> bytes:int -> unit

val reads : t -> int
val writes : t -> int
val bytes_read : t -> int
val bytes_written : t -> int

val read_errors : t -> int
(** Injected read failures so far (attempts are counted in {!reads} too). *)

val write_errors : t -> int
val injected_delay_us : t -> float
(** Total extra latency injected by [Delay] verdicts. *)

val busy_fraction : t -> float
