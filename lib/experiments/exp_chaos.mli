(** Chaos scenarios: seeded fault storms on the disk paths.

    Not a paper table — a robustness experiment over the reproduction's
    own machinery. Each scenario attaches a {!Sim_chaos} plan to the
    simulated disk, drives one disk-touching manager through a workload
    that storms the injected faults (transient errors, latency bursts, an
    outage window, torn log writes), then detaches the plan and verifies
    full recovery. Every scenario ends with the frame-conservation audit,
    and the whole run is executed twice from the same seed to prove
    replay equality — the determinism claim the rest of the repository
    leans on, demonstrated under failure.

    Kept out of [vpp_repro all] so the paper-reproduction output stays
    byte-identical to a chaos-free build; run it with [vpp_repro chaos]. *)

type scenario = {
  s_name : string;
  s_decisions : int;  (** Injection decisions the plan made. *)
  s_injected_failures : int;
  s_injected_delays : int;
  s_app_failures : int;
      (** Failures that survived retry and degradation all the way to the
          application (touches that raised, commits not acknowledged,
          checkpoint images that lost durability). *)
  s_retries : int;  (** Device attempts beyond the first, all layers. *)
  s_frames_expected : int;
  s_frames_owned : int;  (** {!Epcm_kernel.frame_owner_total} at the end. *)
  s_recovered : bool;  (** Clean pass after the plan was detached. *)
  s_fingerprint : string;  (** {!Sim_chaos.schedule_fingerprint}. *)
  s_counters : (string * int) list;
}

type result = { scenarios : scenario list; replay_ok : bool; checks : Exp_report.check list }

val default_seed : int64

val run : ?seed:int64 -> unit -> result
(** Runs every scenario twice (replay check). Deterministic per seed. *)

val render : result -> string
