lib/managers/mgr_gc.ml: Epcm_flags Epcm_kernel Epcm_manager Epcm_segment Hashtbl Hw_cost Hw_machine Hw_phys_mem Mgr_backing Mgr_free_pages Mgr_generic Option
