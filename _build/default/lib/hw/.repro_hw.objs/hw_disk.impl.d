lib/hw/hw_disk.ml: Sim_engine Sim_sync
