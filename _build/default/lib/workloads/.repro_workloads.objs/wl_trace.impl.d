lib/workloads/wl_trace.ml: Format List
