lib/sim/sim_engine.ml: Effect Fun Sim_heap Stdlib
