(** Segments and bound regions (paper §2.1, Figure 1).

    A segment is a variable-size range of zero or more pages. Program
    address spaces are themselves segments, composed by {e binding} regions
    of other segments (code, data, stack) into them; a reference to an
    address covered by a bound region is effectively a reference to the
    corresponding page of the bound segment. A binding may be copy-on-write,
    in which case pages are effectively bound to the source until modified.

    This module is the passive data structure; all mutation with hardware
    side effects (mappings, migration) goes through {!Epcm_kernel}.

    Scale notes: bound regions are kept in an array sorted by [at] (regions
    are disjoint), so {!binding_covering} — on every fault-path segment walk
    — is a binary search, and the segment carries an incremental resident
    counter so {!resident_pages} (and the kernel's whole-machine frame
    audit) is O(1) per segment rather than a fold over the page array. *)

type id = int

type page_state = {
  mutable frame : int option;
      (** Physical frame mapped here, if any. Mutate only through
          {!set_frame}, which maintains the resident counter. *)
  mutable flags : Epcm_flags.t;
}

type binding = {
  at : int;  (** First page of the bound region in the composing segment. *)
  len : int;  (** Pages. *)
  target : id;  (** Bound segment. *)
  target_page : int;  (** First corresponding page in [target]. *)
  cow : bool;
}

type t = {
  sid : id;
  sname : string;
  seg_page_size : int;
  mutable pages : page_state array;
  mutable manager : int option;  (** Manager id, see {!Epcm_manager}. *)
  mutable bindings : binding array;
      (** Regions bound into this segment, sorted by [at], disjoint.
          Mutate only through {!add_binding}. *)
  mutable alive : bool;
  mutable resident : int;
      (** Pages with a frame mapped; maintained by {!set_frame}. *)
  tier_of : int -> int;  (** Frame index -> memory tier id. *)
  resident_by_tier : int array;
      (** Resident pages per memory tier; maintained by {!set_frame}. *)
  mutable sp_enabled : bool;
      (** Manager opted this segment into superpage (2 MB) mappings —
          toggle only through [Epcm_kernel.set_superpages]. *)
  sp_regions : (int, int) Hashtbl.t;
      (** Promoted superpage regions: region index (page /
          super_pages) -> first frame of the aligned physical run.
          Mutated only by the kernel's promote/demote paths; residency
          bookkeeping stays at 4 KB granularity in [pages], so the
          frame-conservation audits are unaffected. *)
}

val make :
  ?n_tiers:int ->
  ?tier_of:(int -> int) ->
  sid:id ->
  name:string ->
  page_size:int ->
  pages:int ->
  unit ->
  t
(** [n_tiers] (default 1) sizes the per-tier resident counters; [tier_of]
    (default [fun _ -> 0]) maps a frame index to its tier — the kernel
    passes {!Hw_phys_mem.tier_of_frame} so the counters track the
    machine's real tier layout. *)

val length : t -> int
val in_range : t -> int -> bool
val page : t -> int -> page_state
(** Raises [Invalid_argument] when out of range. *)

val set_frame : t -> int -> int option -> unit
(** Set or clear the frame of a page, keeping the resident counter exact.
    Raises [Invalid_argument] when out of range. *)

val binding_covering : t -> int -> binding option
(** The binding whose region covers the given page, if any. O(log n). *)

val bindings_overlap : t -> at:int -> len:int -> bool
(** Does [at, at+len) intersect any bound region? O(log n). *)

val add_binding : t -> binding -> unit
(** Insert a region, keeping the array sorted by [at]. The caller
    (the kernel) must have rejected overlaps first. *)

val bindings_list : t -> binding list
(** All bound regions, ascending by [at]. *)

val resident_pages : t -> int
(** Pages with a frame mapped — the incremental counter, O(1). *)

val resident_pages_scan : t -> int
(** The same count by scanning the page array — O(pages). Kept as the
    reference the equivalence tests pin {!resident_pages} against. *)

val resident_pages_by_tier : t -> int array
(** Resident pages per memory tier — the incremental counters, O(tiers).
    Sums to {!resident_pages}. *)

val resident_pages_by_tier_scan : t -> int array
(** The per-tier counts by scanning the page array — O(pages), the
    reference {!resident_pages_by_tier} is pinned against. *)

val frames : t -> int list
(** All frames mapped in this segment, ascending page order. *)

val superpage_regions : t -> (int * int) list
(** Promoted superpage regions as (region index, base frame) pairs,
    ascending — a sorted view of [sp_regions] for tests and reports. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: id, name, size, residency, manager. *)
