type tier_spec = {
  t_name : string;
  t_bytes : int;
  t_costs : Hw_cost.tier_costs;
}

let dram_tier ~bytes =
  { t_name = "dram"; t_bytes = bytes; t_costs = Hw_cost.dram_tier_costs }

let slow_dram_tier ~bytes =
  { t_name = "slow-dram"; t_bytes = bytes; t_costs = Hw_cost.slow_dram_tier_costs }

type tier = {
  ti_id : int;
  ti_name : string;
  ti_first : int;
  ti_frames : int;
  ti_access_us : float;
  ti_migrate_us : float;
}

type frame = {
  index : int;
  addr : int;
  color : int;
  tier : int;
  mutable data : Hw_page_data.t;
}

type t = {
  page_size : int;
  n_colors : int;
  frames : frame array;
  (* Frame ownership (which segment a frame is migrated into) lives in a
     side array rather than a mutable frame field, so the only mutation
     path is [set_owner] — the kernel — and the per-segment resident
     counters cannot be bypassed. *)
  owners : int array;
  tiers : tier array;
  (* Frame indices per color, ascending — precomputed once so color
     queries never rescan the frame array. *)
  by_color : int array array;
}

let create_tiered ?(n_colors = 16) ~page_size ~tiers () =
  if page_size <= 0 then invalid_arg "Hw_phys_mem.create: page_size must be positive";
  if n_colors <= 0 then invalid_arg "Hw_phys_mem.create: n_colors must be positive";
  if tiers = [] then invalid_arg "Hw_phys_mem.create_tiered: need at least one tier";
  let descs =
    List.mapi
      (fun id spec ->
        let frames = spec.t_bytes / page_size in
        if frames <= 0 then
          invalid_arg
            (Printf.sprintf "Hw_phys_mem.create_tiered: tier %S needs at least one page"
               spec.t_name);
        {
          ti_id = id;
          ti_name = spec.t_name;
          ti_first = 0 (* fixed up below *);
          ti_frames = frames;
          ti_access_us = spec.t_costs.Hw_cost.tier_access_us;
          ti_migrate_us = spec.t_costs.Hw_cost.tier_migrate_us;
        })
      tiers
  in
  let _, descs =
    List.fold_left
      (fun (first, acc) d -> (first + d.ti_frames, { d with ti_first = first } :: acc))
      (0, []) descs
  in
  let tiers = Array.of_list (List.rev descs) in
  let n = Array.fold_left (fun acc d -> acc + d.ti_frames) 0 tiers in
  if n <= 0 then invalid_arg "Hw_phys_mem.create: need at least one page";
  (* Tiers partition the frame index space contiguously in declaration
     order, so addr and color keep their flat-array identities and a
     single-tier machine is structurally indistinguishable from the
     pre-tier layout. *)
  let tier_of =
    let bounds = Array.map (fun d -> d.ti_first + d.ti_frames) tiers in
    fun i ->
      let rec find k = if i < bounds.(k) then k else find (k + 1) in
      find 0
  in
  let frames =
    Array.init n (fun i ->
        {
          index = i;
          addr = i * page_size;
          color = i mod n_colors;
          tier = tier_of i;
          data = Hw_page_data.Zero;
        })
  in
  let by_color =
    Array.init n_colors (fun c ->
        if c >= n then [||]
        else Array.init (((n - 1 - c) / n_colors) + 1) (fun j -> c + (j * n_colors)))
  in
  { page_size; n_colors; frames; owners = Array.make n (-1); tiers; by_color }

let create ?n_colors ~page_size ~total_bytes () =
  if page_size <= 0 then invalid_arg "Hw_phys_mem.create: page_size must be positive";
  if total_bytes / page_size <= 0 then invalid_arg "Hw_phys_mem.create: need at least one page";
  create_tiered ?n_colors ~page_size ~tiers:[ dram_tier ~bytes:total_bytes ] ()

let page_size t = t.page_size
let n_frames t = Array.length t.frames
let n_colors t = t.n_colors

let frame t i =
  if i < 0 || i >= Array.length t.frames then
    invalid_arg (Printf.sprintf "Hw_phys_mem.frame: index %d out of range" i);
  t.frames.(i)

let n_tiers t = Array.length t.tiers

let tier t k =
  if k < 0 || k >= Array.length t.tiers then
    invalid_arg (Printf.sprintf "Hw_phys_mem.tier: tier %d out of range" k);
  t.tiers.(k)

let tier_of_frame t i = (frame t i).tier
let tier_access_us t k = (tier t k).ti_access_us
let tier_migrate_us t k = (tier t k).ti_migrate_us
let tier_bounds t k =
  let d = tier t k in
  (d.ti_first, d.ti_frames)

let owner t i =
  ignore (frame t i);
  t.owners.(i)

let set_owner t i o =
  ignore (frame t i);
  t.owners.(i) <- o

(* The tier filter clamps the regular color pattern (frame i has color
   i mod n_colors) to the tier's contiguous index interval — still
   O(result), no scan. *)
let frames_of_color ?tier:tk t color =
  if color < 0 || color >= t.n_colors then []
  else
    match tk with
    | None -> Array.fold_right (fun i acc -> i :: acc) t.by_color.(color) []
    | Some k ->
        let first, count = tier_bounds t k in
        let limit = first + count in
        let rem = (color - first) mod t.n_colors in
        let start = first + (if rem < 0 then rem + t.n_colors else rem) in
        let acc = ref [] in
        let i = ref start in
        while !i < limit do
          acc := !i :: !acc;
          i := !i + t.n_colors
        done;
        List.rev !acc

(* Frames are laid out contiguously (addr = index * page_size), so an
   address interval is an index interval: no scan, no intermediate list. *)
let frames_in_range ?tier:tk t ~lo_addr ~hi_addr =
  let n = Array.length t.frames in
  if hi_addr <= 0 || hi_addr <= lo_addr then []
  else begin
    let lo = if lo_addr <= 0 then 0 else (lo_addr + t.page_size - 1) / t.page_size in
    let hi = min (n - 1) ((hi_addr - 1) / t.page_size) in
    let lo, hi =
      match tk with
      | None -> (lo, hi)
      | Some k ->
          let first, count = tier_bounds t k in
          (max lo first, min hi (first + count - 1))
    in
    let acc = ref [] in
    for i = hi downto lo do
      acc := i :: !acc
    done;
    !acc
  end

(* Aligned-run search for superpage backing: walk [run]-aligned windows
   of the tier's contiguous index interval and accept the first whose
   frames all carry [owned_by]'s owner tag. On a mismatch at index j the
   cursor jumps to the next aligned window past j, so a monotonic caller
   scans each frame at most once across a whole streaming pass. *)
let find_aligned_run ?tier:tk t ~start ~run ~owned_by =
  if run <= 0 then invalid_arg "Hw_phys_mem.find_aligned_run: run must be positive";
  let first, count =
    match tk with None -> (0, Array.length t.frames) | Some k -> tier_bounds t k
  in
  let limit = first + count in
  let align i = (i + run - 1) / run * run in
  let result = ref (-1) in
  let s = ref (align (max start first)) in
  while !result < 0 && !s + run <= limit do
    let j = ref (!s + run - 1) in
    (* Scan back to front: the highest mismatch gives the longest jump. *)
    while !j >= !s && t.owners.(!j) = owned_by do
      decr j
    done;
    if !j < !s then result := !s else s := align (!j + 1)
  done;
  if !result < 0 then None else Some !result

let zero_frame t i = (frame t i).data <- Hw_page_data.Zero

let copy_frame t ~src ~dst =
  let s = frame t src and d = frame t dst in
  d.data <- s.data

let owners_histogram t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun o ->
      let c = try Hashtbl.find tbl o with Not_found -> 0 in
      Hashtbl.replace tbl o (c + 1))
    t.owners;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
