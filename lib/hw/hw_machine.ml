module Engine = Sim_engine
module Trace = Sim_trace

type preset = Decstation_5000_200 | Sgi_4d_380

type cache_spec = { c_size_bytes : int; c_line_bytes : int }

let l2_cache ?(line_bytes = 64) ~size_bytes () =
  { c_size_bytes = size_bytes; c_line_bytes = line_bytes }

type t = {
  engine : Engine.t;
  mem : Hw_phys_mem.t;
  page_table : Hw_page_table.t;
  tlb : Hw_tlb.t;
  disk : Hw_disk.t;
  cost : Hw_cost.t;
  trace : Trace.t;
  metrics : Sim_metrics.t;
  super_pages : int;
  caches : Hw_cache.t array;
}

let create ?(preset = Decstation_5000_200) ?(memory_bytes = 16 * 1024 * 1024)
    ?(page_size = 4096) ?(n_colors = 16) ?tiers ?(super_pages = 512) ?(trace = false)
    ?disk_params ?cache () =
  if super_pages <= 0 then invalid_arg "Hw_machine.create: super_pages must be positive";
  let engine = Engine.create () in
  let cost =
    match preset with
    | Decstation_5000_200 -> Hw_cost.decstation_5000_200
    | Sgi_4d_380 -> Hw_cost.sgi_4d_380
  in
  let metrics = Sim_metrics.create () in
  let disk = Hw_disk.create engine ?params:disk_params () in
  Hw_disk.set_metrics disk (Some metrics);
  let mem =
    match tiers with
    | None -> Hw_phys_mem.create ~n_colors ~page_size ~total_bytes:memory_bytes ()
    | Some tiers -> Hw_phys_mem.create_tiered ~n_colors ~page_size ~tiers ()
  in
  (* The mapping hash is sized to physical memory, like the inverted /
     hashed page tables it models (one entry per frame, 64K minimum so
     every paper-scale machine keeps the historical geometry). *)
  let pt_slots = max 65536 (Hw_phys_mem.n_frames mem) in
  let super_slots = max 1024 (Hw_phys_mem.n_frames mem / super_pages) in
  (* One physically-indexed cache per memory tier (a node-local L2), all
     of the same geometry. No [?cache] leaves the array empty, and every
     cache pass in the kernel is guarded on its length — the machine then
     behaves bit-identically to the pre-cache model. *)
  let caches =
    match cache with
    | None -> [||]
    | Some { c_size_bytes; c_line_bytes } ->
        Array.init (Hw_phys_mem.n_tiers mem) (fun _ ->
            Hw_cache.create ~line_bytes:c_line_bytes ~size_bytes:c_size_bytes ())
  in
  {
    engine;
    mem;
    page_table = Hw_page_table.create ~slots:pt_slots ~super_slots ~super_pages ();
    tlb = Hw_tlb.create ~super_pages ();
    disk;
    cost;
    trace = Trace.create ~enabled:trace ();
    metrics;
    super_pages;
    caches;
  }

let page_size t = Hw_phys_mem.page_size t.mem
let n_frames t = Hw_phys_mem.n_frames t.mem
let super_pages t = t.super_pages
let n_caches t = Array.length t.caches

let cache_colors t =
  if Array.length t.caches = 0 then None
  else Some (Hw_cache.n_colors t.caches.(0) ~page_bytes:(page_size t))

let cache_stats t =
  Array.fold_left
    (fun (a, h, m) c -> (a + Hw_cache.accesses c, h + Hw_cache.hits c, m + Hw_cache.misses c))
    (0, 0, 0) t.caches
let charge ?label t us =
  (* Outside a simulation process (plain unit tests) state transitions
     still happen; time simply does not advance. *)
  if us > 0.0 then begin
    (try Engine.delay us with Engine.Not_in_process -> ());
    if Sim_metrics.enabled t.metrics then Sim_metrics.record_charge t.metrics ?label us
  end
let with_span t name f = Sim_metrics.with_span t.metrics name f
let observe t ~kind us = Sim_metrics.observe t.metrics ~kind us
let metrics t = t.metrics
let set_profiling t on = Sim_metrics.set_enabled t.metrics on
let now t = Engine.now t.engine
let trace_emit t ~tag detail =
  if Trace.enabled t.trace then Trace.emit t.trace ~time:(Engine.now t.engine) ~tag (detail ())
