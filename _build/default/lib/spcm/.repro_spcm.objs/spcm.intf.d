lib/spcm/spcm.mli: Epcm_kernel Epcm_manager Epcm_segment Mgr_generic Spcm_market
