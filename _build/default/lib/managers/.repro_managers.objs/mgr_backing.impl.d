lib/managers/mgr_backing.ml: Hashtbl Hw_disk Hw_page_data
