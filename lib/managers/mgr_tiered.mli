(** Tiered-memory segment manager: hot/cold placement across the
    machine's frame tiers.

    The tier-indexed physical memory ({!Hw_phys_mem.create_tiered}) gives
    a manager frames with different access and migration costs. This
    manager runs a three-level hierarchy over them, entirely with the
    paper's external page-cache operations:

    - {b fast tier} — pages fault in here ([MigratePages] with a tier
      constraint from a tier-pure free-page pool).
    - {b slow tier} — when the fast tier runs dry, a second-chance clock
      (the same tombstoned-ring discipline as {!Mgr_generic}) demotes
      cold pages onto slow-tier frames, contents intact, and protects
      them with [no_access]. The next touch raises a protection fault and
      the page is promoted back to a fast frame — that fault {e is} the
      hotness signal, exactly the paper's §2.3 page-protection sampling.
    - {b compressed store} — a second clock demotes cold slow-tier pages
      into {!Mgr_compressed}'s store ({!Mgr_compressed.stash}); a later
      missing fault fetches them back ({!Mgr_compressed.fetch}, falling
      through to its disk spill area) into a fast frame.

    Frames come straight from the kernel's initial segment
    ({!Epcm_kernel.initial_slots} with a tier filter), so tier capacity
    itself is the residency bound: the demotion cascade starts when a
    tier's free frames run out.

    Both pools are {e tier-pure} — every [take_to] passes [~tier], so the
    kernel's [Tier_mismatch] check audits purity on each allocation. *)

type stats = {
  mutable fills : int;  (** Fresh pages faulted into the fast tier. *)
  mutable refetches : int;
      (** Missing faults served from the compressed store or its spill
          area rather than a fresh fill. *)
  mutable promotions : int;  (** Slow [->] fast, via protection fault. *)
  mutable demotions_slow : int;  (** Fast [->] slow clock evictions. *)
  mutable demotions_compressed : int;  (** Slow [->] compressed store. *)
  mutable protection_clears : int;
      (** Protection faults resolved in place (no promotion). *)
  mutable cow_fills : int;
  mutable sp_fills : int;
      (** Missing faults served by one whole superpage-run grant from the
          fast tier (each also counts [super_pages] towards [fills]). *)
}

type t

exception Out_of_frames of string
(** Raised when a fault cannot secure a fast frame even after refill and
    a full demotion sweep. *)

val create :
  Epcm_kernel.t ->
  ?name:string ->
  ?fast_tier:int ->
  ?slow_tier:int ->
  ?compressed_config:Mgr_compressed.config ->
  ?fast_pool_capacity:int ->
  ?slow_pool_capacity:int ->
  ?refill_batch:int ->
  ?reclaim_batch:int ->
  unit ->
  t
(** Registers the manager and builds its private {!Mgr_compressed}
    backend (whose own fault handler is never exercised — only
    [stash]/[fetch] are used). [fast_tier] defaults to tier 0 and
    [slow_tier] to tier 1; they must be distinct and in range for the
    machine. *)

val create_segment :
  t -> name:string -> pages:int -> ?superpages:bool -> unit -> Epcm_segment.id
(** [superpages] (default [false]) opts the segment into 2 MB mappings
    ({!Epcm_kernel.set_superpages}): a missing fault on a fully-empty
    aligned region is then served by one contiguous fast-tier run grant
    ({!Epcm_kernel.grant_superpage_run}) — promoted as part of the
    migrate — with per-page fills as the fallback. Clock demotion of any
    page of a promoted run splits it back to 4 KB automatically (the
    kernel demotes on the slot invalidation). *)

val adopt : t -> ?superpages:bool -> Epcm_segment.id -> unit
(** Take over an existing segment; already-resident pages are entered
    into the clock of whichever tier their frame belongs to.
    [superpages] as in {!create_segment}. *)

val kernel : t -> Epcm_kernel.t
val manager_id : t -> Epcm_manager.id
val managed : t -> Epcm_segment.id list
val stats : t -> stats

val compressed : t -> Mgr_compressed.t
(** The coldest-tier backend (for its compression/spill statistics). *)

val fast_tier : t -> int
val slow_tier : t -> int

val resident_by_tier : t -> seg:Epcm_segment.id -> int array
(** Per-tier resident page counts of a segment (the kernel's incremental
    counters — see {!Epcm_segment.resident_pages_by_tier}). *)

val fast_available : t -> int
val slow_available : t -> int

val return_to_system : t -> pages:int -> int
(** Release up to [pages] pooled frames (slow first) back to the initial
    segment; returns how many. The registered pressure callback does the
    same but declines (returns 0) when the manager is mid-fault, per the
    no-blocking rule. *)
