lib/managers/mgr_generic.mli: Epcm_kernel Epcm_manager Epcm_segment Hw_page_data Mgr_backing Mgr_free_pages
