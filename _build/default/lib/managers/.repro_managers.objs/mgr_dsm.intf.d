lib/managers/mgr_dsm.mli: Epcm_kernel Epcm_segment Hw_page_data Mgr_generic
