examples/gc_discard.mli:
