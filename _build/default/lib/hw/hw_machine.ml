module Engine = Sim_engine
module Trace = Sim_trace

type preset = Decstation_5000_200 | Sgi_4d_380

type t = {
  engine : Engine.t;
  mem : Hw_phys_mem.t;
  page_table : Hw_page_table.t;
  tlb : Hw_tlb.t;
  disk : Hw_disk.t;
  cost : Hw_cost.t;
  trace : Trace.t;
}

let create ?(preset = Decstation_5000_200) ?(memory_bytes = 16 * 1024 * 1024)
    ?(page_size = 4096) ?(n_colors = 16) ?(trace = false) ?disk_params () =
  let engine = Engine.create () in
  let cost =
    match preset with
    | Decstation_5000_200 -> Hw_cost.decstation_5000_200
    | Sgi_4d_380 -> Hw_cost.sgi_4d_380
  in
  {
    engine;
    mem = Hw_phys_mem.create ~n_colors ~page_size ~total_bytes:memory_bytes ();
    page_table = Hw_page_table.create ();
    tlb = Hw_tlb.create ();
    disk = Hw_disk.create engine ?params:disk_params ();
    cost;
    trace = Trace.create ~enabled:trace ();
  }

let page_size t = Hw_phys_mem.page_size t.mem
let n_frames t = Hw_phys_mem.n_frames t.mem
let charge (_ : t) us =
  (* Outside a simulation process (plain unit tests) state transitions
     still happen; time simply does not advance. *)
  if us > 0.0 then try Engine.delay us with Engine.Not_in_process -> ()
let now t = Engine.now t.engine
let trace_emit t ~tag detail = Trace.emit t.trace ~time:(Engine.now t.engine) ~tag detail
