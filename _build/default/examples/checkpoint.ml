(* Concurrent checkpointing on external page-cache primitives (§3.1).

   A long-running computation wants periodic consistent snapshots of its
   200-page state without stopping. Stop-and-copy costs a full copy of
   everything every time; the copy-on-write checkpoint manager
   write-protects the state in one sweep and copies only the pages the
   mutator actually touches before the next snapshot.

   Run with: dune exec examples/checkpoint.exe *)

module K = Epcm_kernel
module Seg = Epcm_segment
module Engine = Sim_engine

let state_pages = 200
let epochs = 10
let writes_per_epoch = 30 (* hot working set: ~15% of state mutates per epoch *)

let build () =
  let machine = Hw_machine.create ~memory_bytes:(8 * 1024 * 1024) () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let granted = ref 0 in
    let init_seg = K.segment kernel init in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  (machine, kernel, source)

(* One mutator run: [checkpointed] decides whether each epoch opens a
   copy-on-write snapshot. Returns (elapsed us, manager, segment,
   generations). *)
let mutator_run ~checkpointed () =
  let machine, kernel, source = build () in
  let mgr = Mgr_checkpoint.create kernel ~source ~pool_capacity:512 () in
  let seg = Mgr_checkpoint.create_segment mgr ~name:"sim-state" ~pages:state_pages in
  let rng = Sim_rng.create 1L in
  let elapsed = ref 0.0 in
  let generations = ref [] in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for p = 0 to state_pages - 1 do
        K.touch kernel ~space:seg ~page:p ~access:Epcm_manager.Write;
        K.uio_write kernel ~seg ~page:p (Hw_page_data.block ~file:1 ~block:p ~version:0)
      done;
      let t0 = Engine.time () in
      for epoch = 1 to epochs do
        if checkpointed then begin
          let gen = Mgr_checkpoint.begin_checkpoint mgr ~seg in
          generations := (epoch, gen) :: !generations
        end;
        (* The mutator keeps computing while the checkpoint is "live". *)
        for _ = 1 to writes_per_epoch do
          let p = Sim_rng.int rng state_pages in
          K.touch kernel ~space:seg ~page:p ~access:Epcm_manager.Write;
          K.uio_write kernel ~seg ~page:p (Hw_page_data.block ~file:1 ~block:p ~version:epoch)
        done;
        if checkpointed then Mgr_checkpoint.end_checkpoint mgr ~seg
      done;
      elapsed := Engine.time () -. t0);
  Engine.run machine.Hw_machine.engine;
  (!elapsed, machine, kernel, mgr, seg, List.rev !generations)

let () =
  let base_us, machine, _, _, _, _ = mutator_run ~checkpointed:false () in
  let cow_us, _, _, mgr, seg, generations = mutator_run ~checkpointed:true () in
  let overhead_us = cow_us -. base_us in
  (* What stop-and-copy would add: a full state copy per epoch. *)
  let copy_us = machine.Hw_machine.cost.Hw_cost.copy_page in
  let stop_and_copy_us = float_of_int (epochs * state_pages) *. copy_us in

  Printf.printf "Checkpointing %d pages across %d epochs (%d writes/epoch):\n\n" state_pages
    epochs writes_per_epoch;
  Printf.printf "  mutator alone                    : %8.1f ms\n" (base_us /. 1000.0);
  Printf.printf "  stop-and-copy overhead           : %8.1f ms (%d page copies)\n"
    (stop_and_copy_us /. 1000.0) (epochs * state_pages);
  Printf.printf "  copy-on-write overhead           : %8.1f ms (%d page copies, %d faults)\n"
    (overhead_us /. 1000.0)
    (Mgr_checkpoint.pages_preserved mgr)
    (Mgr_checkpoint.checkpoint_faults mgr);
  Printf.printf "  checkpoint cost reduced          : %.1fx (copies avoided: %.0f%%)\n\n"
    (stop_and_copy_us /. overhead_us)
    (100.0
    *. (1.0
       -. float_of_int (Mgr_checkpoint.pages_preserved mgr)
          /. float_of_int (epochs * state_pages)));

  (* Verify a historical snapshot is consistent: every page of epoch 3's
     generation must read as the state before epoch 3's writes. *)
  let gen3 = List.assoc 3 generations in
  let consistent = ref true in
  for p = 0 to state_pages - 1 do
    match Mgr_checkpoint.read_checkpoint mgr ~seg ~generation:gen3 ~page:p with
    | Hw_page_data.Block { version; _ } -> if version > 2 then consistent := false
    | _ -> consistent := false
  done;
  Printf.printf "Snapshot of epoch 3 consistent (no page newer than epoch 2): %b\n" !consistent
