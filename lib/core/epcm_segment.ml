type id = int

type page_state = {
  mutable frame : int option;
  mutable flags : Epcm_flags.t;
}

type binding = {
  at : int;
  len : int;
  target : id;
  target_page : int;
  cow : bool;
}

type t = {
  sid : id;
  sname : string;
  seg_page_size : int;
  mutable pages : page_state array;
  mutable manager : int option;
  mutable bindings : binding array;
  mutable alive : bool;
  mutable resident : int;
  tier_of : int -> int;
  resident_by_tier : int array;
  mutable sp_enabled : bool;
  sp_regions : (int, int) Hashtbl.t;
}

let fresh_page () = { frame = None; flags = Epcm_flags.empty }

let make ?(n_tiers = 1) ?(tier_of = fun _ -> 0) ~sid ~name ~page_size ~pages () =
  if pages < 0 then invalid_arg "Epcm_segment.make: negative size";
  if page_size <= 0 then invalid_arg "Epcm_segment.make: page_size must be positive";
  if n_tiers <= 0 then invalid_arg "Epcm_segment.make: n_tiers must be positive";
  {
    sid;
    sname = name;
    seg_page_size = page_size;
    pages = Array.init pages (fun _ -> fresh_page ());
    manager = None;
    bindings = [||];
    alive = true;
    resident = 0;
    tier_of;
    resident_by_tier = Array.make n_tiers 0;
    sp_enabled = false;
    sp_regions = Hashtbl.create 8;
  }

let superpage_regions t =
  Hashtbl.fold (fun sindex base acc -> (sindex, base) :: acc) t.sp_regions []
  |> List.sort compare

let length t = Array.length t.pages
let in_range t p = p >= 0 && p < Array.length t.pages

let page t p =
  if not (in_range t p) then
    invalid_arg (Printf.sprintf "Epcm_segment.page: page %d out of range of segment %d" p t.sid);
  t.pages.(p)

let tier_count t f =
  let k = t.tier_of f in
  if k < 0 || k >= Array.length t.resident_by_tier then
    invalid_arg (Printf.sprintf "Epcm_segment.set_frame: frame %d maps to unknown tier %d" f k);
  k

let set_frame t p frame =
  let slot = page t p in
  (match (slot.frame, frame) with
  | None, Some f ->
      t.resident <- t.resident + 1;
      let k = tier_count t f in
      t.resident_by_tier.(k) <- t.resident_by_tier.(k) + 1
  | Some f, None ->
      t.resident <- t.resident - 1;
      let k = tier_count t f in
      t.resident_by_tier.(k) <- t.resident_by_tier.(k) - 1
  | Some f0, Some f1 ->
      let k0 = tier_count t f0 and k1 = tier_count t f1 in
      if k0 <> k1 then begin
        t.resident_by_tier.(k0) <- t.resident_by_tier.(k0) - 1;
        t.resident_by_tier.(k1) <- t.resident_by_tier.(k1) + 1
      end
  | None, None -> ());
  slot.frame <- frame

(* [bindings] is kept sorted by [at]; regions are disjoint (enforced by the
   kernel via [bindings_overlap]), so the binding covering a page — if any
   — is the one with the greatest [at <= p]. *)

(* Index of the last binding with [at <= p], or -1. *)
let rightmost_at_or_below t p =
  let lo = ref 0 and hi = ref (Array.length t.bindings - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if t.bindings.(mid).at <= p then begin
      found := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !found

let binding_covering t p =
  let i = rightmost_at_or_below t p in
  if i < 0 then None
  else
    let b = t.bindings.(i) in
    if p < b.at + b.len then Some b else None

let bindings_overlap t ~at ~len =
  (* With sorted disjoint regions, only the neighbours of the insertion
     point can overlap [at, at+len). *)
  let i = rightmost_at_or_below t at in
  let overlaps b = at < b.at + b.len && b.at < at + len in
  (i >= 0 && overlaps t.bindings.(i))
  || (i + 1 < Array.length t.bindings && overlaps t.bindings.(i + 1))

let add_binding t b =
  let n = Array.length t.bindings in
  let pos = rightmost_at_or_below t b.at + 1 in
  let bigger = Array.make (n + 1) b in
  Array.blit t.bindings 0 bigger 0 pos;
  Array.blit t.bindings pos bigger (pos + 1) (n - pos);
  t.bindings <- bigger

let bindings_list t = Array.to_list t.bindings

let resident_pages t = t.resident

let resident_pages_scan t =
  Array.fold_left (fun acc p -> if p.frame = None then acc else acc + 1) 0 t.pages

let resident_pages_by_tier t = Array.copy t.resident_by_tier

let resident_pages_by_tier_scan t =
  let counts = Array.make (Array.length t.resident_by_tier) 0 in
  Array.iter
    (fun p ->
      match p.frame with
      | None -> ()
      | Some f ->
          let k = tier_count t f in
          counts.(k) <- counts.(k) + 1)
    t.pages;
  counts

let frames t =
  let acc = ref [] in
  for i = Array.length t.pages - 1 downto 0 do
    match t.pages.(i).frame with Some f -> acc := f :: !acc | None -> ()
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "seg %d %S: %d pages, %d resident, manager=%s, %d bindings" t.sid t.sname
    (length t) (resident_pages t)
    (match t.manager with None -> "none" | Some m -> string_of_int m)
    (Array.length t.bindings)
