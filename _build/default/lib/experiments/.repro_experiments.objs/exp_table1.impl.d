lib/experiments/exp_table1.ml: Epcm_flags Epcm_kernel Epcm_manager Epcm_segment Exp_report Float Hw_cost Hw_machine Hw_page_data List Mgr_backing Mgr_generic Printf Sim_engine Uvm
