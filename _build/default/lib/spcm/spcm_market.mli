(** The memory market (paper §2.4).

    The SPCM charges a process [M * D * T] {e drams} for holding M
    megabytes over T seconds at charging rate D, pays each process an
    income of I drams per second, taxes savings so demand cannot
    indefinitely bank ahead of a fixed supply, and charges for I/O so
    scan-structured programs cannot dodge the memory charge by thrashing.
    Processes that exhaust their dram supply are treated as faulty and
    forced to return memory.

    Time is supplied by the caller in {e microseconds} (the simulation
    clock); rates in the config are per second. *)

type config = {
  charge_rate : float;  (** D: drams per megabyte-second of holding. *)
  default_income : float;  (** I: drams per second per account. *)
  savings_tax_rate : float;
      (** Fraction of the balance above the threshold confiscated per
          second. *)
  savings_tax_threshold : float;
  io_charge : float;  (** Drams per I/O operation. *)
  free_when_idle : bool;
      (** Holdings are free while there are no outstanding requests
          ("continue to use memory at no charge when there are no
          outstanding memory requests"). *)
}

val default_config : config

type account_id = int

type account = {
  acc_id : account_id;
  acc_name : string;
  mutable income : float;  (** drams per second *)
  mutable balance : float;
  mutable holding_pages : int;
  mutable last_settle_us : float;
  mutable total_charged : float;
  mutable total_taxed : float;
  mutable total_income : float;
  mutable io_ops : int;
}

type t

val create : ?config:config -> page_size:int -> unit -> t
val config : t -> config

val open_account : ?income:float -> t -> name:string -> now_us:float -> account_id
val account : t -> account_id -> account
val accounts : t -> account list

val settle : t -> now_us:float -> unit
(** Accrue income, charge for holdings (unless idle and [free_when_idle]),
    and apply the savings tax, for every account, up to [now_us]. *)

val set_demand : t -> bool -> unit
(** Whether any memory requests are outstanding (drives the free-when-idle
    rule). *)

val note_holding_change : t -> account_id -> delta_pages:int -> now_us:float -> unit
(** Settle the account, then adjust its holdings. *)

val note_io : t -> account_id -> ops:int -> unit

val can_afford : t -> account_id -> pages:int -> seconds:float -> bool
(** Would the account's balance cover holding [pages] more pages for
    [seconds], at current income? (Balance + income accrual vs charge.) *)

val bankrupt : t -> account_id -> bool
(** Balance below zero — the SPCM may force memory return. *)

val holding_cost_per_second : t -> pages:int -> float
