type result = { rows : Db_engine.result list; checks : Exp_report.check list }

let find rows label =
  List.find (fun (r : Db_engine.result) -> r.Db_engine.label = label) rows

let run ?(quick = false) () =
  let adjust cfg =
    if quick then { cfg with Db_config.duration_s = 150.0; warmup_s = 15.0 } else cfg
  in
  let rows = List.map (fun cfg -> Db_engine.run (adjust cfg)) Db_config.all_paper_configs in
  let no_index = find rows "No index" in
  let in_memory = find rows "Index in memory" in
  let paging = find rows "Index with paging" in
  let regen = find rows "Index regeneration" in
  let avg (r : Db_engine.result) = r.Db_engine.avg_ms in
  let worst (r : Db_engine.result) = r.Db_engine.worst_ms in
  let checks =
    [
      Exp_report.check ~what:"ordering: in-memory < regeneration << paging < no-index (avg)"
        ~pass:
          (avg in_memory < avg regen && avg regen *. 4.0 < avg paging
          && avg paging < avg no_index)
        ~detail:
          (Printf.sprintf "%.0f < %.0f << %.0f < %.0f" (avg in_memory) (avg regen) (avg paging)
             (avg no_index));
      Exp_report.check ~what:"regeneration within ~1.5x of index-in-memory (paper: 27% worse)"
        ~pass:(avg regen < avg in_memory *. 1.6)
        ~detail:(Printf.sprintf "%.0f vs %.0f ms" (avg regen) (avg in_memory));
      Exp_report.check
        ~what:"paging an order of magnitude worse than regeneration (paper: 575 vs 55)"
        ~pass:(avg paging > avg regen *. 5.0)
        ~detail:(Printf.sprintf "%.0f vs %.0f ms" (avg paging) (avg regen));
      Exp_report.check ~what:"index (in memory) is an order of magnitude better than no index"
        ~pass:(avg no_index > avg in_memory *. 8.0)
        ~detail:(Printf.sprintf "%.0f vs %.0f ms" (avg no_index) (avg in_memory));
      Exp_report.check ~what:"worst cases: paging and no-index in the seconds"
        ~pass:(worst paging > 1500.0 && worst no_index > 1500.0)
        ~detail:(Printf.sprintf "%.0f and %.0f ms" (worst paging) (worst no_index));
      Exp_report.check ~what:"frames conserved in every configuration"
        ~pass:(List.for_all (fun (r : Db_engine.result) -> r.Db_engine.frames_conserved) rows)
        ~detail:"";
    ]
  in
  { rows; checks }

let render r =
  Db_engine.render r.rows ^ "\nShape checks:\n" ^ Exp_report.render_checks r.checks
