examples/dsm_sharing.mli:
