lib/hw/hw_cache.mli:
