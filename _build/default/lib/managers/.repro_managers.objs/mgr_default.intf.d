lib/managers/mgr_default.mli: Epcm_kernel Epcm_manager Epcm_segment Mgr_backing Mgr_generic
