module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags

type generation = int

type seg_state = {
  mutable open_gen : generation option;
  (* (generation, page) -> image at snapshot time. An entry exists for
     every page resident at begin_checkpoint; pages the mutator dirties
     get their saved copy, the rest are materialised lazily at read time
     from current contents once the generation closes untouched — so we
     store Snapshot_ref until a write happens. *)
  images : (generation * int, Hw_page_data.t) Hashtbl.t;
  (* pages still protected under the open generation *)
  protected_pages : (int, unit) Hashtbl.t;
}

type t = {
  kern : K.t;
  mutable mid : Mgr.id;
  pool : Mgr_free_pages.t;
  source : Mgr_generic.source;
  backing : Mgr_backing.t option;
  counters : Sim_stats.Counters.t option;
  segs : (Seg.id, seg_state) Hashtbl.t;
  mutable next_gen : generation;
  mutable preserved : int;
  mutable ckpt_faults : int;
  mutable durable_writes : int;
  mutable durable_failures : int;
}

let bump t name =
  Option.iter (fun c -> Sim_stats.Counters.incr c ("checkpoint." ^ name)) t.counters

let manager_id t = t.mid

let state t seg =
  match Hashtbl.find_opt t.segs seg with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Mgr_checkpoint: unmanaged segment %d" seg)

let frame_data t seg page =
  let s = K.segment t.kern seg in
  match (Seg.page s page).Seg.frame with
  | Some f -> Some (Hw_phys_mem.frame (K.machine t.kern).Hw_machine.mem f).Hw_phys_mem.data
  | None -> None

let ensure_pool t n =
  if Mgr_free_pages.available t.pool < n then begin
    match Mgr_free_pages.grant_slot t.pool with
    | None -> ()
    | Some slot ->
        let got =
          t.source ~dst:(Mgr_free_pages.segment t.pool) ~dst_page:slot
            ~count:(max n (min 32 (Mgr_free_pages.room t.pool)))
        in
        Mgr_free_pages.note_granted t.pool got
  end;
  if Mgr_free_pages.available t.pool < n then
    raise (Mgr_generic.Out_of_frames "Mgr_checkpoint: no frames")

let on_fault t (fault : Mgr.fault) =
  let machine = K.machine t.kern in
  Hw_machine.charge ~label:"mgr/fault_logic" machine machine.Hw_machine.cost.Hw_cost.manager_fault_logic;
  match fault.Mgr.f_kind with
  | Mgr.Missing ->
      ensure_pool t 1;
      let moved =
        Mgr_free_pages.take_to t.pool ~dst:fault.Mgr.f_seg ~dst_page:fault.Mgr.f_page ~count:1
          ~clear_flags:Flags.dirty ()
      in
      assert (moved = 1)
  | Mgr.Protection -> (
      let st = state t fault.Mgr.f_seg in
      match st.open_gen with
      | Some gen when Hashtbl.mem st.protected_pages fault.Mgr.f_page ->
          (* First write under the open checkpoint: preserve the old
             image, then let the mutator through. *)
          t.ckpt_faults <- t.ckpt_faults + 1;
          (match frame_data t fault.Mgr.f_seg fault.Mgr.f_page with
          | Some data ->
              Hashtbl.replace st.images (gen, fault.Mgr.f_page) data;
              t.preserved <- t.preserved + 1;
              (* The preserving copy costs one page copy. *)
              Hw_machine.charge ~label:"mgr/copy_page" machine
                machine.Hw_machine.cost.Hw_cost.copy_page
          | None -> ());
          Hashtbl.remove st.protected_pages fault.Mgr.f_page;
          K.modify_page_flags t.kern ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~count:1
            ~clear_flags:Flags.read_only ()
      | Some _ | None ->
          K.modify_page_flags t.kern ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~count:1
            ~clear_flags:(Flags.of_list [ Flags.read_only; Flags.no_access ])
            ())
  | Mgr.Cow_write ->
      ensure_pool t 1;
      let moved =
        Mgr_free_pages.take_to t.pool ~dst:fault.Mgr.f_seg ~dst_page:fault.Mgr.f_page ~count:1
          ~clear_flags:Flags.dirty ()
      in
      assert (moved = 1)

let create kern ?backing ?counters ~source ~pool_capacity () =
  let t =
    {
      kern;
      mid = -1;
      pool = Mgr_free_pages.create kern ~name:"checkpoint.free-pages" ~capacity:pool_capacity;
      source;
      backing;
      counters;
      segs = Hashtbl.create 8;
      next_gen = 1;
      preserved = 0;
      ckpt_faults = 0;
      durable_writes = 0;
      durable_failures = 0;
    }
  in
  t.mid <-
    K.register_manager kern ~name:"checkpoint-manager" ~mode:`In_process
      ~on_fault:(fun f -> on_fault t f)
      ();
  t

let create_segment t ~name ~pages =
  let seg = K.create_segment t.kern ~name ~pages () in
  Hashtbl.replace t.segs seg
    { open_gen = None; images = Hashtbl.create 64; protected_pages = Hashtbl.create 64 };
  K.set_segment_manager t.kern seg t.mid;
  seg

let begin_checkpoint t ~seg =
  let st = state t seg in
  (match st.open_gen with
  | Some g -> invalid_arg (Printf.sprintf "Mgr_checkpoint: generation %d still open" g)
  | None -> ());
  let gen = t.next_gen in
  t.next_gen <- t.next_gen + 1;
  st.open_gen <- Some gen;
  let s = K.segment t.kern seg in
  (* Protect contiguous resident runs with one ModifyPageFlags each: the
     snapshot sweep is a handful of kernel calls, not one per page. *)
  let page = ref 0 in
  let len = Seg.length s in
  while !page < len do
    if (Seg.page s !page).Seg.frame = None then incr page
    else begin
      let start = !page in
      while !page < len && (Seg.page s !page).Seg.frame <> None do
        Hashtbl.replace st.protected_pages !page ();
        incr page
      done;
      K.modify_page_flags t.kern ~seg ~page:start ~count:(!page - start)
        ~set_flags:Flags.read_only ()
    end
  done;
  gen

let durable_file ~seg ~generation = (seg * 4096) + generation

(* Closing a generation pushes its images to the backing store, page order,
   one write per image. A write that exhausts its retry budget costs the
   image its durability, nothing more: it stays readable in memory and the
   loss is counted, so the checkpoint still closes. *)
let persist_generation t ~seg ~gen =
  match t.backing with
  | None -> ()
  | Some backing ->
      let st = state t seg in
      let pages =
        Hashtbl.fold (fun (g, p) _ acc -> if g = gen then p :: acc else acc) st.images []
        |> List.sort compare
      in
      List.iter
        (fun page ->
          let data = Hashtbl.find st.images (gen, page) in
          try
            Mgr_backing.write_block backing ~file:(durable_file ~seg ~generation:gen)
              ~block:page data;
            t.durable_writes <- t.durable_writes + 1
          with Mgr_backing.Backing_failed _ ->
            t.durable_failures <- t.durable_failures + 1;
            bump t "durable_write_lost")
        pages

let end_checkpoint t ~seg =
  let st = state t seg in
  match st.open_gen with
  | None -> ()
  | Some gen ->
      (* Pages never written keep their snapshot image implicitly; freeze
         their current contents into the store so later generations cannot
         disturb the record, then unprotect contiguous runs in batches. *)
      let pages =
        Hashtbl.fold (fun page () acc -> page :: acc) st.protected_pages []
        |> List.sort compare
      in
      List.iter
        (fun page ->
          match frame_data t seg page with
          | Some data -> Hashtbl.replace st.images (gen, page) data
          | None -> ())
        pages;
      let rec unprotect_runs = function
        | [] -> ()
        | start :: _ as l ->
            let rec run prev = function
              | next :: rest when next = prev + 1 -> run next rest
              | rest -> (prev, rest)
            in
            let last, rest = run start (List.tl l) in
            K.modify_page_flags t.kern ~seg ~page:start ~count:(last - start + 1)
              ~clear_flags:Flags.read_only ();
            unprotect_runs rest
      in
      unprotect_runs pages;
      Hashtbl.reset st.protected_pages;
      st.open_gen <- None;
      persist_generation t ~seg ~gen

let read_checkpoint t ~seg ~generation ~page =
  let st = state t seg in
  match Hashtbl.find_opt st.images (generation, page) with
  | Some data -> data
  | None -> (
      (* Open generation, page not yet written: the snapshot image is the
         current contents. *)
      match st.open_gen with
      | Some g when g = generation && Hashtbl.mem st.protected_pages page -> (
          match frame_data t seg page with Some d -> d | None -> raise Not_found)
      | Some _ | None -> raise Not_found)

let pages_preserved t = t.preserved
let checkpoint_faults t = t.ckpt_faults
let durable_writes t = t.durable_writes
let durable_failures t = t.durable_failures
