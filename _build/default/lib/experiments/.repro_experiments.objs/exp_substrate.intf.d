lib/experiments/exp_substrate.mli: Exp_report
