type vote = Prepared | Vote_abort
type outcome = Committed | Aborted

type participant = {
  p_name : string;
  p_prepare : unit -> vote;
  p_commit : unit -> unit;
  p_abort : unit -> unit;
}

type t = {
  wal : Db_wal.t;
  net : messages:int -> unit;
  commit_records : (int, Db_wal.lsn) Hashtbl.t;
  mutable started : int;
  mutable committed : int;
  mutable aborted : int;
  mutable prepares : int;
  mutable messages : int;
}

let create ~wal ?(net = fun ~messages:_ -> ()) () =
  {
    wal;
    net;
    commit_records = Hashtbl.create 256;
    started = 0;
    committed = 0;
    aborted = 0;
    prepares = 0;
    messages = 0;
  }

let decide votes =
  if votes <> [] && List.for_all (fun v -> v = Prepared) votes then Committed else Aborted

let msg t n =
  t.messages <- t.messages + n;
  t.net ~messages:n

let run t ~txn participants =
  t.started <- t.started + 1;
  (* Phase 1: a prepare request out and a vote back per participant. *)
  let votes =
    List.map
      (fun p ->
        t.prepares <- t.prepares + 1;
        msg t 1;
        let v = p.p_prepare () in
        msg t 1;
        v)
      participants
  in
  let outcome =
    match decide votes with
    | Aborted -> Aborted
    | Committed -> (
        (* The commit point: the coordinator's commit record reaches
           disk. If the forced flush fails the record is not on the
           durable prefix, so the decision is presumed-abort — drop the
           bookkeeping entry and abort everywhere. *)
        let lsn = Db_wal.append t.wal in
        Hashtbl.replace t.commit_records txn lsn;
        try
          Db_wal.commit t.wal ~lsn;
          Committed
        with Db_wal.Flush_failed _ ->
          Hashtbl.remove t.commit_records txn;
          Aborted)
  in
  (* Phase 2: decision out, acknowledgement back. *)
  List.iter
    (fun p ->
      msg t 2;
      match outcome with Committed -> p.p_commit () | Aborted -> p.p_abort ())
    participants;
  (match outcome with
  | Committed -> t.committed <- t.committed + 1
  | Aborted -> t.aborted <- t.aborted + 1);
  outcome

let recover t ~txn =
  match Hashtbl.find_opt t.commit_records txn with
  | Some lsn when lsn <= Db_wal.flushed t.wal -> Committed
  | Some _ | None -> Aborted

let started t = t.started
let committed t = t.committed
let aborted t = t.aborted
let prepares t = t.prepares
let messages t = t.messages
