examples/memory_market.mli:
