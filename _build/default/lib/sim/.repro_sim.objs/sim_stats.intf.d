lib/sim/sim_stats.mli:
