type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int }

let create () = { arr = [||]; len = 0 }
let is_empty t = t.len = 0
let size t = t.len

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.arr.(i) in
  t.arr.(i) <- t.arr.(j);
  t.arr.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.arr.(i) t.arr.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t.arr.(l) t.arr.(!smallest) then smallest := l;
  if r < t.len && less t.arr.(r) t.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time ~seq payload =
  let e = { time; seq; payload } in
  if t.len = Array.length t.arr then begin
    let cap = if t.len = 0 then 16 else 2 * t.len in
    let bigger = Array.make cap e in
    Array.blit t.arr 0 bigger 0 t.len;
    t.arr <- bigger
  end;
  t.arr.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.arr.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.arr.(0) <- t.arr.(t.len);
      sift_down t 0
    end;
    Some (top.time, top.seq, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.arr.(0).time

let clear t =
  t.arr <- [||];
  t.len <- 0
