(** Physically-indexed direct-mapped cache model.

    Used standalone by the page-coloring example and, since the cache
    wiring, attachable to a whole machine ({!Hw_machine.create} [?cache]):
    with physical indexing, which cache set a datum lands in depends on
    the {e physical} page the kernel happened to allocate, so two hot
    virtual pages can silently collide. Page coloring (paper §1, citing
    Bray et al.) gives the application control over this by letting it
    pick frame colors. *)

type t

val create : ?line_bytes:int -> size_bytes:int -> unit -> t
(** Direct-mapped; default 64-byte lines. *)

val sets : t -> int
val line_bytes : t -> int

val access : t -> phys_addr:int -> bool
(** One read at a physical address: hit or miss is recorded and the
    resident line updated; returns [true] on a hit. *)

val touch_page : t -> phys_addr:int -> page_bytes:int -> unit
(** Access every line of a page once (a sequential sweep). *)

val accesses : t -> int
(** Total accesses recorded. [accesses = hits + misses] always — the
    conservation identity the chaos suite audits. *)

val hits : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset_stats : t -> unit
(** Clears the counters only; resident lines stay, so a pre-warmed cache
    keeps hitting. *)

val color_of : t -> phys_addr:int -> page_bytes:int -> int
(** Which page color this address falls in: the cache-set group a page
    occupies. [sets * line_bytes / page_bytes] distinct colors. *)

val n_colors : t -> page_bytes:int -> int
(** How many distinct page colors this cache induces:
    [sets * line_bytes / page_bytes] (at least 1 — a page larger than the
    cache leaves a single color). This is the [n_colors] a machine's
    physical memory should be built with for coloring to be faithful to
    the cache geometry. *)
