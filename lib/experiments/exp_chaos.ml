module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module G = Mgr_generic
module Engine = Sim_engine
module Counters = Sim_stats.Counters

type scenario = {
  s_name : string;
  s_decisions : int;
  s_injected_failures : int;
  s_injected_delays : int;
  s_app_failures : int;
  s_retries : int;
  s_frames_expected : int;
  s_frames_owned : int;
  s_recovered : bool;
  s_fingerprint : string;
  s_counters : (string * int) list;
}

type result = { scenarios : scenario list; replay_ok : bool; checks : Exp_report.check list }

let default_seed = 0x5EEDL

(* ------------------------------------------------------------------ *)
(* Shared scaffolding                                                 *)
(* ------------------------------------------------------------------ *)

let kernel_with_source ~frames () =
  let machine = Hw_machine.create ~memory_bytes:(frames * 4096) () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  (machine, kernel, source)

let retries_of counters =
  List.fold_left
    (fun acc (name, v) ->
      if String.length name >= 7 && String.sub name (String.length name - 7) 7 = "retries" then
        acc + v
      else acc)
    0 (Counters.to_list counters)

let finish ~name ~chaos ~counters ~app_failures ~frames_expected ~frames_owned ~recovered =
  {
    s_name = name;
    s_decisions = Sim_chaos.decisions chaos;
    s_injected_failures = Sim_chaos.injected_failures chaos;
    s_injected_delays = Sim_chaos.injected_delays chaos;
    s_app_failures = app_failures;
    s_retries = retries_of counters;
    s_frames_expected = frames_expected;
    s_frames_owned = frames_owned;
    s_recovered = recovered;
    s_fingerprint = Sim_chaos.schedule_fingerprint chaos;
    s_counters = Counters.to_list counters;
  }

(* ------------------------------------------------------------------ *)
(* Scenario 1: generic manager under a read/write/outage storm        *)
(* ------------------------------------------------------------------ *)

let generic_storm ~seed =
  let frames = 96 in
  let pages = 128 in
  let machine, kernel, source = kernel_with_source ~frames () in
  let counters = Counters.create () in
  let chaos =
    Sim_chaos.create ~seed
      {
        Sim_chaos.default_spec with
        read_error_p = 0.05;
        write_error_p = 0.08;
        delay_p = 0.05;
        delay_min_us = 100.0;
        delay_max_us = 2_000.0;
        outages = [ (2.0e6, 2.4e6) ];
      }
  in
  Hw_disk.set_chaos machine.Hw_machine.disk (Some chaos);
  let backing =
    Mgr_backing.disk
      ~retry:{ Mgr_backing.attempts = 4; backoff_us = 500.0 }
      ~counters machine.Hw_machine.disk ~page_bytes:4096
  in
  let g =
    G.create kernel ~name:"storm" ~mode:`In_process ~backing ~source ~pool_capacity:64
      ~refill_batch:16 ~reclaim_batch:8 ~counters ()
  in
  let seg =
    G.create_segment g ~name:"data" ~pages ~kind:(G.File { file_id = 7 }) ~high_water:pages ()
  in
  let app_failures = ref 0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      (* More pages than frames: every round both fills absent pages (disk
         reads) and forces eviction of dirty ones (disk writes). *)
      for round = 0 to 3 do
        for page = 0 to pages - 1 do
          let access = if (page + round) mod 2 = 0 then Mgr.Write else Mgr.Read in
          try K.touch kernel ~space:seg ~page ~access
          with Mgr_backing.Backing_failed _ -> incr app_failures
        done
      done);
  Engine.run machine.Hw_machine.engine;
  (* Storm over: detach the plan and verify full recovery. *)
  Hw_disk.set_chaos machine.Hw_machine.disk None;
  let recovered = ref true in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for page = 0 to pages - 1 do
        try K.touch kernel ~space:seg ~page ~access:Mgr.Read with _ -> recovered := false
      done);
  Engine.run machine.Hw_machine.engine;
  let recovered = !recovered && Engine.live_processes machine.Hw_machine.engine = 0 in
  finish ~name:"generic-storm" ~chaos ~counters ~app_failures:!app_failures
    ~frames_expected:(Hw_machine.n_frames machine)
    ~frames_owned:(K.frame_owner_total kernel) ~recovered

(* ------------------------------------------------------------------ *)
(* Scenario 2: prefetch pipeline degrading to demand paging           *)
(* ------------------------------------------------------------------ *)

let prefetch_degrade ~seed =
  let frames = 96 in
  let machine, kernel, source = kernel_with_source ~frames () in
  let counters = Counters.create () in
  let chaos =
    Sim_chaos.create ~seed
      { Sim_chaos.default_spec with read_error_p = 0.15; delay_p = 0.1; delay_min_us = 200.0;
        delay_max_us = 1_000.0 }
  in
  Hw_disk.set_chaos machine.Hw_machine.disk (Some chaos);
  let p =
    Mgr_prefetch.create kernel
      ~retry:{ Mgr_backing.attempts = 2; backoff_us = 200.0 }
      ~counters ~source ~pool_capacity:64 ()
  in
  let seg = Mgr_prefetch.create_file_segment p ~name:"scan" ~file_id:3 ~pages:64 in
  let app_failures = ref 0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      (* Out-of-core scan: read-ahead a batch, compute, consume it. A
         prefetch killed by an injected error leaves its page absent; the
         consuming touch degrades to a demand fill (or fails and is
         retried on the next sweep). *)
      for sweep = 0 to 1 do
        ignore sweep;
        for batch = 0 to 7 do
          let base = batch * 8 in
          Mgr_prefetch.prefetch p ~seg ~page:base ~count:8;
          Engine.delay 5_000.0;
          for page = base to base + 7 do
            try K.touch kernel ~space:seg ~page ~access:Mgr.Read
            with Mgr_backing.Backing_failed _ -> incr app_failures
          done;
          Mgr_prefetch.discard p ~seg ~page:base ~count:8
        done
      done);
  Engine.run machine.Hw_machine.engine;
  Hw_disk.set_chaos machine.Hw_machine.disk None;
  let recovered = ref true in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for page = 0 to 63 do
        try K.touch kernel ~space:seg ~page ~access:Mgr.Read with _ -> recovered := false
      done);
  Engine.run machine.Hw_machine.engine;
  let recovered = !recovered && Engine.live_processes machine.Hw_machine.engine = 0 in
  finish ~name:"prefetch-degrade" ~chaos ~counters ~app_failures:!app_failures
    ~frames_expected:(Hw_machine.n_frames machine)
    ~frames_owned:(K.frame_owner_total kernel) ~recovered

(* ------------------------------------------------------------------ *)
(* Scenario 3: WAL group commit under torn writes                     *)
(* ------------------------------------------------------------------ *)

let wal_torn_writes ~seed =
  let engine = Engine.create () in
  let disk = Hw_disk.create engine () in
  let counters = Counters.create () in
  let chaos =
    Sim_chaos.create ~seed { Sim_chaos.default_spec with write_error_p = 0.2 }
  in
  Hw_disk.set_chaos disk (Some chaos);
  let wal =
    Db_wal.create disk ~retry:{ Mgr_backing.attempts = 2; backoff_us = 200.0 } ~counters ()
  in
  let failed_commits = ref 0 in
  let acked = ref [] in
  Engine.spawn engine (fun () ->
      for i = 1 to 80 do
        let lsn = Db_wal.append wal in
        if i mod 4 = 0 then
          try
            Db_wal.commit wal ~lsn;
            acked := lsn :: !acked
          with Db_wal.Flush_failed _ -> incr failed_commits
      done);
  Engine.run engine;
  (* A torn write never acknowledges lost records: every acked commit must
     sit inside the durable prefix. *)
  let durable = Db_wal.flushed wal in
  let acked_durable = List.for_all (fun lsn -> lsn <= durable) !acked in
  Hw_disk.set_chaos disk None;
  let replayed = ref true in
  Engine.spawn engine (fun () ->
      (* Recovery: with the device healthy again, force the whole log. *)
      try Db_wal.flush_to wal ~lsn:(Db_wal.appended wal)
      with Db_wal.Flush_failed _ -> replayed := false);
  Engine.run engine;
  let recovered = acked_durable && !replayed && Db_wal.flushed wal = Db_wal.appended wal in
  finish ~name:"wal-torn-writes" ~chaos ~counters ~app_failures:!failed_commits
    ~frames_expected:0 ~frames_owned:0 ~recovered

(* ------------------------------------------------------------------ *)
(* Scenario 4: checkpoint durability under write errors               *)
(* ------------------------------------------------------------------ *)

let checkpoint_durable ~seed =
  let frames = 64 in
  let machine, kernel, source = kernel_with_source ~frames () in
  let counters = Counters.create () in
  let chaos =
    Sim_chaos.create ~seed { Sim_chaos.default_spec with write_error_p = 0.15 }
  in
  Hw_disk.set_chaos machine.Hw_machine.disk (Some chaos);
  let backing =
    Mgr_backing.disk
      ~retry:{ Mgr_backing.attempts = 2; backoff_us = 200.0 }
      ~counters machine.Hw_machine.disk ~page_bytes:4096
  in
  let ck = Mgr_checkpoint.create kernel ~backing ~counters ~source ~pool_capacity:48 () in
  let seg = Mgr_checkpoint.create_segment ck ~name:"heap" ~pages:24 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for page = 0 to 23 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Write
      done;
      for round = 1 to 3 do
        let _gen = Mgr_checkpoint.begin_checkpoint ck ~seg in
        for page = 0 to 23 do
          if page mod round = 0 then K.touch kernel ~space:seg ~page ~access:Mgr.Write
        done;
        Mgr_checkpoint.end_checkpoint ck ~seg
      done);
  Engine.run machine.Hw_machine.engine;
  let storm_failures = Mgr_checkpoint.durable_failures ck in
  Hw_disk.set_chaos machine.Hw_machine.disk None;
  Engine.spawn machine.Hw_machine.engine (fun () ->
      let _gen = Mgr_checkpoint.begin_checkpoint ck ~seg in
      for page = 0 to 23 do
        if page mod 2 = 0 then K.touch kernel ~space:seg ~page ~access:Mgr.Write
      done;
      Mgr_checkpoint.end_checkpoint ck ~seg);
  Engine.run machine.Hw_machine.engine;
  (* A healthy device loses nothing: the post-storm generation persists
     without a single durability failure. *)
  let recovered =
    Mgr_checkpoint.durable_failures ck = storm_failures
    && Engine.live_processes machine.Hw_machine.engine = 0
  in
  finish ~name:"checkpoint-durable" ~chaos ~counters
    ~app_failures:(Mgr_checkpoint.durable_failures ck)
    ~frames_expected:(Hw_machine.n_frames machine)
    ~frames_owned:(K.frame_owner_total kernel) ~recovered

(* ------------------------------------------------------------------ *)
(* Harness                                                            *)
(* ------------------------------------------------------------------ *)

let run_once ~seed =
  [
    generic_storm ~seed;
    prefetch_degrade ~seed:(Int64.add seed 1L);
    wal_torn_writes ~seed:(Int64.add seed 2L);
    checkpoint_durable ~seed:(Int64.add seed 3L);
  ]

let run ?(seed = default_seed) () =
  let scenarios = run_once ~seed in
  (* Replay equality: the same seed must reproduce the identical fault
     schedule, counters and final state, scenario for scenario. *)
  let again = run_once ~seed in
  let replay_ok = scenarios = again in
  let checks =
    Exp_report.check ~what:"same seed replays the identical schedules and final state"
      ~pass:replay_ok
      ~detail:(Printf.sprintf "%d scenarios compared" (List.length scenarios))
    :: List.concat_map
         (fun s ->
           [
             Exp_report.check
               ~what:(Printf.sprintf "%s: every frame owned by exactly one live segment" s.s_name)
               ~pass:(s.s_frames_owned = s.s_frames_expected)
               ~detail:(Printf.sprintf "%d/%d frames" s.s_frames_owned s.s_frames_expected);
             Exp_report.check
               ~what:(Printf.sprintf "%s: the storm actually injected faults" s.s_name)
               ~pass:(s.s_injected_failures > 0)
               ~detail:(Printf.sprintf "%d failures in %d decisions" s.s_injected_failures
                          s.s_decisions);
             Exp_report.check
               ~what:(Printf.sprintf "%s: full recovery once the plan is detached" s.s_name)
               ~pass:s.s_recovered ~detail:"clean pass after set_chaos None";
           ])
         scenarios
  in
  { scenarios; replay_ok; checks }

let render r =
  let table =
    Exp_report.fmt_table
      ~header:
        [ "Scenario"; "decisions"; "inj fail"; "inj delay"; "app fail"; "retries"; "frames" ]
      ~rows:
        (List.map
           (fun s ->
             [
               s.s_name;
               string_of_int s.s_decisions;
               string_of_int s.s_injected_failures;
               string_of_int s.s_injected_delays;
               string_of_int s.s_app_failures;
               string_of_int s.s_retries;
               Printf.sprintf "%d/%d" s.s_frames_owned s.s_frames_expected;
             ])
           r.scenarios)
  in
  let counters =
    String.concat ""
      (List.map
         (fun s ->
           Printf.sprintf "%s:\n%s" s.s_name
             (String.concat ""
                (List.map (fun (n, v) -> Printf.sprintf "  %-40s %8d\n" n v) s.s_counters)))
         r.scenarios)
  in
  "Chaos: deterministic fault injection on the disk paths\n" ^ table
  ^ "\nRetry/degradation counters:\n" ^ counters ^ "\nShape checks:\n"
  ^ Exp_report.render_checks r.checks
