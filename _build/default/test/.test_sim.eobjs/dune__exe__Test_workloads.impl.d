test/test_workloads.ml: Alcotest Float List Wl_apps Wl_run Wl_trace
