exception Not_in_process

type t = {
  mutable clock : float;
  heap : (unit -> unit) Sim_heap.t;
  mutable seq : int;
  mutable live : int;
  mutable executed : int;
}

type _ Effect.t +=
  | E_delay : (t * float) -> unit Effect.t
  | E_time : t -> float Effect.t
  | E_suspend : (t * (('a -> unit) -> unit)) -> 'a Effect.t
  | E_fork : (t * string * (unit -> unit)) -> unit Effect.t

(* The engine a process belongs to is threaded through the effects
   themselves; [current] lets the zero-argument public API find it. It is a
   plain ref, not domain-local: simulations are single-domain. *)
let current : t option ref = ref None

let create () = { clock = 0.0; heap = Sim_heap.create (); seq = 0; live = 0; executed = 0 }

let now t = t.clock

let schedule t ~at thunk =
  let at = if at < t.clock then t.clock else at in
  t.seq <- t.seq + 1;
  Sim_heap.push t.heap ~time:at ~seq:t.seq thunk

let rec start_process t _name body =
  let open Effect.Deep in
  t.live <- t.live + 1;
  match_with body ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun e ->
          t.live <- t.live - 1;
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_delay (eng, d) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule eng ~at:(eng.clock +. Stdlib.max 0.0 d) (fun () -> continue k ()))
          | E_time eng -> Some (fun (k : (a, unit) continuation) -> continue k eng.clock)
          | E_suspend (eng, register) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  register (fun v ->
                      if !resumed then invalid_arg "Sim_engine: resume called twice";
                      resumed := true;
                      schedule eng ~at:eng.clock (fun () -> continue k v)))
          | E_fork (eng, name, f) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule eng ~at:eng.clock (fun () -> start_process eng name f);
                  continue k ())
          | _ -> None);
    }

let spawn t ?(name = "proc") body = schedule t ~at:t.clock (fun () -> start_process t name body)

let run ?until t =
  let saved = !current in
  current := Some t;
  Fun.protect
    ~finally:(fun () -> current := saved)
    (fun () ->
      let continue_loop = ref true in
      while !continue_loop do
        match Sim_heap.pop t.heap with
        | None -> continue_loop := false
        | Some (time, _, thunk) -> (
            match until with
            | Some limit when time > limit ->
                (* Push back and stop at the horizon. *)
                t.seq <- t.seq + 1;
                Sim_heap.push t.heap ~time ~seq:t.seq thunk;
                t.clock <- limit;
                continue_loop := false
            | _ ->
                t.clock <- time;
                t.executed <- t.executed + 1;
                thunk ())
      done)

let live_processes t = t.live
let events_executed t = t.executed

let engine_of_process () =
  match !current with None -> raise Not_in_process | Some t -> t

let delay d = Effect.perform (E_delay (engine_of_process (), d))
let time () = Effect.perform (E_time (engine_of_process ()))
let suspend register = Effect.perform (E_suspend (engine_of_process (), register))
let fork ?(name = "proc") f = Effect.perform (E_fork (engine_of_process (), name, f))
