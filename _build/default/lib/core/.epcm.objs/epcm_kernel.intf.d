lib/core/epcm_kernel.mli: Epcm_flags Epcm_manager Epcm_segment Hw_machine Hw_page_data
