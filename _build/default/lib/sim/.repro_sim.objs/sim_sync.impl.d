lib/sim/sim_sync.ml: Fun List Queue Sim_engine Sim_stats
