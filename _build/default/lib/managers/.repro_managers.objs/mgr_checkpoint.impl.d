lib/managers/mgr_checkpoint.ml: Epcm_flags Epcm_kernel Epcm_manager Epcm_segment Hashtbl Hw_cost Hw_machine Hw_page_data Hw_phys_mem List Mgr_free_pages Mgr_generic Printf
