examples/dsm_sharing.ml: Epcm_kernel Epcm_segment Hw_machine Hw_page_data Mgr_dsm Printf Sim_engine
