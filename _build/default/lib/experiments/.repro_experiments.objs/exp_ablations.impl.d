lib/experiments/exp_ablations.ml: Buffer Db_config Db_engine Epcm_kernel Epcm_manager Epcm_segment Exp_report Hw_machine Hw_page_data List Mgr_backing Mgr_compressed Mgr_generic Printf Sim_engine
