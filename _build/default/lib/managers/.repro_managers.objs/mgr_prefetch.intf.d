lib/managers/mgr_prefetch.mli: Epcm_kernel Epcm_manager Epcm_segment Hw_disk Mgr_generic
