lib/dbms/db_btree.ml: Array Format List String
