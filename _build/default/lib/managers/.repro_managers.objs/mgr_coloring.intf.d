lib/managers/mgr_coloring.mli: Epcm_kernel Epcm_manager Epcm_segment
