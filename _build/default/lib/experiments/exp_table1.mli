(** Table 1 — System Primitive Times (µs), V++ vs ULTRIX 4.1 on a
    DECstation 5000/200.

    Every number is {e measured} by driving the corresponding code path in
    the simulators and reading the simulated clock; nothing returns a
    constant. The paper's §3.1 text also measures the Ultrix user-level
    reprotection fault (152 µs) to argue that a full V++ fault (107 µs) is
    cheaper than merely bouncing a protection fault through a Unix signal
    handler — included as an extra row. *)

type row = {
  label : string;
  vpp_us : float option;  (** Measured; [None] where the paper has none. *)
  ultrix_us : float option;
  paper_vpp : float option;
  paper_ultrix : float option;
}

type result = { rows : row list; checks : Exp_report.check list }

val run : unit -> result
val render : result -> string
