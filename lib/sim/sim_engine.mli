(** Discrete-event simulation engine with lightweight processes.

    Processes are ordinary OCaml functions executed under an effect handler;
    they advance simulated time with {!delay}, read the clock with {!time},
    and block on conditions with {!suspend}. Simulated time is a [float] of
    {e microseconds} throughout this repository.

    Events scheduled for the same instant fire in scheduling order, so a
    simulation is a deterministic function of its inputs and RNG seeds.

    A simulation runs entirely on one domain, but the "current engine"
    needed by the zero-argument process API is domain-local, so independent
    engines can run concurrently on separate domains (the [--jobs]
    experiment driver) without interfering. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in microseconds. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Low-level: run a thunk at an absolute time (clamped to [now t]). *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** Start a new process at the current time. The body may use {!delay},
    {!time}, {!suspend} and {!fork}. *)

val run : ?until:float -> t -> unit
(** Execute events in time order until the event queue is empty or the
    clock would pass [until]. May be called repeatedly. *)

val live_processes : t -> int
(** Number of spawned processes that have not yet returned. Non-zero after
    {!run} drains the queue indicates blocked (deadlocked) processes. *)

val events_executed : t -> int

(** {2 Operations usable only inside a process body} *)

val delay : float -> unit
(** Advance this process's clock by the given number of microseconds. *)

val time : unit -> float
(** Current simulated time. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the calling process. [register] receives a
    [resume] function; stash it wherever the wake-up condition lives. When
    another process calls [resume v], this process continues at that
    process's current time with [v] as the result. [resume] must be called
    at most once. *)

val fork : ?name:string -> (unit -> unit) -> unit
(** Spawn a sibling process from inside a process. *)

exception Not_in_process
(** Raised when {!delay}, {!time}, {!suspend} or {!fork} is used outside a
    process body. *)
