lib/core/epcm_segment.ml: Array Epcm_flags Format List Printf
