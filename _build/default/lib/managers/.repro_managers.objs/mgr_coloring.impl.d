lib/managers/mgr_coloring.ml: Array Epcm_flags Epcm_kernel Epcm_manager Epcm_segment Fun Hw_cost Hw_machine Hw_phys_mem List Mgr_generic
