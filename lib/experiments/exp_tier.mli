(** The tiered-placement record (`vpp_repro tier`, schema [vpp-tier/1]).

    Two deterministic workloads — a Wl_scale-style hot/cold working set
    and a B-tree index-scan-then-point-lookup trace — each run as three
    legs on matched machines:

    - [flat]: one DRAM tier, naive demand pager (the no-tiering baseline);
    - [static]: fast + slow tiers, the {e same} naive pager — placement
      by fault order, so hot pages end up stuck on slow frames. The delta
      against [flat] is the pure tier surcharge;
    - [managed]: the same tiered machine under {!Mgr_tiered} — demand
      faults land fast, clock demotion moves cold pages down through the
      slow tier into the compressed store, protection-fault sampling
      promotes hot pages back up.

    The embedded checks (and {!validate_json}) gate on: per-tier frame
    conservation in every leg (incremental audit == full scan), the flat
    and static legs running the identical trace, a measurable tier
    surcharge (static > flat), and managed placement beating static on
    simulated time. Everything is simulated and seeded — reruns are
    bit-identical. *)

type leg = {
  g_mode : string;
  g_frames : int;
  g_touches : int;
  g_faults : int;
  g_migrate_calls : int;
  g_migrated_pages : int;
  g_events : int;
  g_sim_us : float;
  g_resident_by_tier : int list;  (** Workload segment, per machine tier. *)
  g_promotions : int;
  g_demotions_slow : int;
  g_demotions_compressed : int;
  g_refetches : int;
  g_conserved : bool;
}

type run_row = {
  w_name : string;
  w_fast_frames : int;
  w_slow_frames : int;
  w_pages : int;
  w_flat : leg;
  w_static : leg;
  w_managed : leg;
}

type result = { mode : string; runs : run_row list; checks : Exp_report.check list }

val schema_version : string
(** ["vpp-tier/1"]. *)

val run : ?quick:bool -> ?jobs:int -> unit -> result
(** [quick] drops the B-tree workload (the compressed-store leg), for the
    [@tier-smoke] alias. [jobs] (default 1) fans the independent
    workload legs out over that many domains via {!Exp_par}; the
    in-order join keeps the record byte-identical to a sequential
    run. *)

val render : result -> string
val to_json : result -> Sim_json.t
val render_json : result -> string

val validate_json : Sim_json.t -> (unit, string) Stdlib.result
(** Schema + semantic gate for a [vpp-tier/1] record; see above. *)
