module Machine = Hw_machine
module Pt = Hw_page_table
module Tlb = Hw_tlb

type access = Read | Write

type page_id =
  | Anon of { pid : int; vpn : int }
  | File_page of { file : int; page : int }  (* page = 4KB block index *)

type page_state = {
  id : page_id;
  mutable referenced : bool;
  mutable dirty : bool;
  mutable protected_ : bool;
}

type stats = {
  mutable faults : int;
  mutable zero_fills : int;
  mutable page_ins : int;
  mutable page_outs : int;
  mutable read_calls : int;
  mutable write_calls : int;
  mutable user_faults : int;
  mutable touches : int;
}

type t = {
  machine : Machine.t;
  resident_limit : int;
  (* resident pages keyed by identity *)
  core : (page_id, page_state) Hashtbl.t;
  (* pages that have existed and were evicted to swap / backing store *)
  swapped : (page_id, unit) Hashtbl.t;
  mutable clock : page_id list;  (* scan order; rebuilt lazily *)
  mutable hand : page_id list;
  mutable next_pid : int;
  files : (int, int) Hashtbl.t;  (* fd/file id -> size_kb *)
  stats : stats;
}

type pid = int
type fd = int

let create ?resident_limit machine =
  let limit = Option.value resident_limit ~default:(Machine.n_frames machine) in
  {
    machine;
    resident_limit = limit;
    core = Hashtbl.create 1024;
    swapped = Hashtbl.create 256;
    clock = [];
    hand = [];
    next_pid = 1;
    files = Hashtbl.create 16;
    stats =
      {
        faults = 0;
        zero_fills = 0;
        page_ins = 0;
        page_outs = 0;
        read_calls = 0;
        write_calls = 0;
        user_faults = 0;
        touches = 0;
      };
  }

let machine t = t.machine
let stats t = t.stats
let resident_pages t = Hashtbl.length t.core
let cost t = t.machine.Machine.cost
let charge ?label t us = Machine.charge ?label t.machine us

let create_process t ~name:_ =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  pid

(* ------------------------------------------------------------------ *)
(* Global clock replacement                                           *)
(* ------------------------------------------------------------------ *)

let page_bytes t = Machine.page_size t.machine

let evict_one t =
  let rec scan steps =
    if steps > 2 * (Hashtbl.length t.core + 1) then ()
    else begin
      if t.hand = [] then t.hand <- t.clock;
      match t.hand with
      | [] -> ()
      | id :: rest -> (
          t.hand <- rest;
          match Hashtbl.find_opt t.core id with
          | None ->
              t.clock <- List.filter (fun x -> x <> id) t.clock;
              scan (steps + 1)
          | Some st ->
              if st.referenced then begin
                st.referenced <- false;
                scan (steps + 1)
              end
              else begin
                (* Victim: write back if dirty, then free. *)
                if st.dirty then begin
                  Hw_disk.write t.machine.Machine.disk ~bytes:(page_bytes t);
                  t.stats.page_outs <- t.stats.page_outs + 1
                end;
                Hashtbl.remove t.core id;
                Hashtbl.replace t.swapped id ();
                (match id with
                | Anon { pid; vpn } ->
                    Pt.remove t.machine.Machine.page_table ~space:pid ~vpn;
                    Tlb.invalidate t.machine.Machine.tlb ~space:pid ~vpn
                | File_page _ -> ());
                t.clock <- List.filter (fun x -> x <> id) t.clock
              end)
    end
  in
  scan 0

let make_room t =
  while Hashtbl.length t.core >= t.resident_limit do
    evict_one t
  done

let install t id ~dirty =
  make_room t;
  let st = { id; referenced = true; dirty; protected_ = false } in
  Hashtbl.replace t.core id st;
  t.clock <- id :: t.clock;
  st

(* ------------------------------------------------------------------ *)
(* Anonymous memory                                                   *)
(* ------------------------------------------------------------------ *)

let fault_in_anon t pid vpn ~(access : access) =
  Machine.with_span t.machine "fault" @@ fun () ->
  let c = cost t in
  t.stats.faults <- t.stats.faults + 1;
  charge ~label:"ultrix/fault_service" t
    (c.Hw_cost.trap_entry +. c.Hw_cost.fault_decode +. c.Hw_cost.ultrix_fault_service);
  let id = Anon { pid; vpn } in
  let from_swap = Hashtbl.mem t.swapped id in
  if from_swap then begin
    (* Page back in from swap. *)
    Hashtbl.remove t.swapped id;
    Hw_disk.read t.machine.Machine.disk ~bytes:(page_bytes t);
    t.stats.page_ins <- t.stats.page_ins + 1
  end
  else begin
    (* Fresh allocation: security zeroing, the cost V++ avoids. *)
    charge ~label:"ultrix/zero_fill" t c.Hw_cost.zero_page;
    t.stats.zero_fills <- t.stats.zero_fills + 1
  end;
  let st = install t id ~dirty:(access = Write) in
  ignore st;
  charge ~label:"ultrix/pte_update" t (c.Hw_cost.pte_update +. c.Hw_cost.trap_exit)

let touch t pid ~vpn ~access =
  t.stats.touches <- t.stats.touches + 1;
  let c = cost t in
  let id = Anon { pid; vpn } in
  match Pt.lookup t.machine.Machine.page_table ~space:pid ~vpn with
  | Some _ when Hashtbl.mem t.core id ->
      let st = Hashtbl.find t.core id in
      st.referenced <- true;
      if access = Write then st.dirty <- true;
      (match Tlb.lookup t.machine.Machine.tlb ~space:pid ~vpn with
      | Some _ -> ()
      | None ->
          charge ~label:"ultrix/tlb_refill" t c.Hw_cost.tlb_refill;
          Tlb.fill t.machine.Machine.tlb ~space:pid ~vpn ~frame:0)
  | Some _ | None ->
      charge ~label:"ultrix/segment_walk" t c.Hw_cost.segment_walk;
      (match Hashtbl.find_opt t.core id with
      | Some st ->
          st.referenced <- true;
          if access = Write then st.dirty <- true
      | None -> fault_in_anon t pid vpn ~access);
      Pt.insert t.machine.Machine.page_table ~space:pid ~vpn ~frame:0
        ~prot:{ Pt.readable = true; writable = true };
      Tlb.fill t.machine.Machine.tlb ~space:pid ~vpn ~frame:0

let exit_process t pid =
  let mine = function Anon { pid = p; _ } -> p = pid | File_page _ -> false in
  Hashtbl.iter (fun id _ -> if mine id then Hashtbl.remove t.swapped id) t.swapped;
  let ids = Hashtbl.fold (fun id _ acc -> if mine id then id :: acc else acc) t.core [] in
  List.iter (Hashtbl.remove t.core) ids;
  t.clock <- List.filter (fun id -> not (mine id)) t.clock;
  t.hand <- List.filter (fun id -> not (mine id)) t.hand;
  Pt.remove_space t.machine.Machine.page_table ~space:pid;
  Tlb.invalidate_space t.machine.Machine.tlb ~space:pid

(* ------------------------------------------------------------------ *)
(* Files: buffer cache with 8KB transfer units                        *)
(* ------------------------------------------------------------------ *)

let transfer_unit_kb = 8

let open_file t ~file_id ~size_kb =
  Hashtbl.replace t.files file_id size_kb;
  file_id

let page_of_kb kb = kb * 1024 / 4096

let cache_file_page t file page ~for_write =
  let id = File_page { file; page } in
  match Hashtbl.find_opt t.core id with
  | Some st ->
      st.referenced <- true;
      if for_write then st.dirty <- true
  | None ->
      if not for_write then begin
        (* Cache miss on read: disk. *)
        Hw_disk.read t.machine.Machine.disk ~bytes:(page_bytes t);
        t.stats.page_ins <- t.stats.page_ins + 1
      end;
      ignore (install t id ~dirty:for_write)

let preload t fd =
  let size_kb = Hashtbl.find t.files fd in
  let pages = (size_kb * 1024 / 4096) + 1 in
  for p = 0 to pages - 1 do
    let id = File_page { file = fd; page = p } in
    if not (Hashtbl.mem t.core id) then ignore (install t id ~dirty:false)
  done

(* One read(2): at most 8KB, i.e. two 4KB page copies. *)
let read_call t fd ~offset_kb ~kb =
  let c = cost t in
  t.stats.read_calls <- t.stats.read_calls + 1;
  charge ~label:"ultrix/read_syscall" t (c.Hw_cost.syscall_base +. c.Hw_cost.vnode_lookup);
  let first = page_of_kb offset_kb in
  let pages = max 1 ((kb + 3) / 4) in
  for p = first to first + pages - 1 do
    cache_file_page t fd p ~for_write:false;
    charge ~label:"ultrix/copy_page" t c.Hw_cost.copy_page
  done

let write_call t fd ~offset_kb ~kb =
  let c = cost t in
  t.stats.write_calls <- t.stats.write_calls + 1;
  charge ~label:"ultrix/write_syscall" t
    (c.Hw_cost.syscall_base +. c.Hw_cost.vnode_lookup +. c.Hw_cost.ultrix_write_bookkeeping);
  let first = page_of_kb offset_kb in
  let pages = max 1 ((kb + 3) / 4) in
  for p = first to first + pages - 1 do
    cache_file_page t fd p ~for_write:true;
    charge ~label:"ultrix/copy_page" t c.Hw_cost.copy_page
  done

let split_chunks ~offset_kb ~kb =
  let rec go off remaining acc =
    if remaining <= 0 then List.rev acc
    else
      let n = min transfer_unit_kb remaining in
      go (off + n) (remaining - n) ((off, n) :: acc)
  in
  go offset_kb kb []

let read t fd ~offset_kb ~kb =
  List.iter (fun (off, n) -> read_call t fd ~offset_kb:off ~kb:n) (split_chunks ~offset_kb ~kb)

let write t fd ~offset_kb ~kb =
  List.iter (fun (off, n) -> write_call t fd ~offset_kb:off ~kb:n) (split_chunks ~offset_kb ~kb)

(* ------------------------------------------------------------------ *)
(* User-level fault handling                                          *)
(* ------------------------------------------------------------------ *)

let protect t pid ~vpn =
  let id = Anon { pid; vpn } in
  match Hashtbl.find_opt t.core id with
  | Some st -> st.protected_ <- true
  | None -> invalid_arg "Uvm.protect: page not resident"

let touch_protected t pid ~vpn =
  let id = Anon { pid; vpn } in
  match Hashtbl.find_opt t.core id with
  | Some st when st.protected_ ->
      let c = cost t in
      t.stats.user_faults <- t.stats.user_faults + 1;
      (* SIGSEGV to the handler, which calls mprotect and returns. The
         three charges sum to the single combined cost charged before the
         observability layer split them for attribution. *)
      Machine.with_span t.machine "fault" (fun () ->
          charge ~label:"ultrix/signal_deliver" t
            (c.Hw_cost.trap_entry +. c.Hw_cost.fault_decode +. c.Hw_cost.signal_deliver);
          charge ~label:"ultrix/mprotect" t
            (c.Hw_cost.syscall_base +. c.Hw_cost.mprotect_base +. c.Hw_cost.pte_update
           +. c.Hw_cost.tlb_flush_page);
          charge ~label:"ultrix/sigreturn" t c.Hw_cost.sigreturn);
      st.protected_ <- false;
      st.referenced <- true
  | Some _ | None -> invalid_arg "Uvm.touch_protected: page not resident and protected"
