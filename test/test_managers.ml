(* Tests for the segment managers: backing stores, free-page segments, the
   generic manager and its specialisations (default/UCDS, DBMS, prefetch,
   coloring). *)

module K = Epcm_kernel
module Seg = Epcm_segment
module Flags = Epcm_flags
module Mgr = Epcm_manager
module G = Mgr_generic
module Engine = Sim_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine_of ?(frames = 256) () = Hw_machine.create ~memory_bytes:(frames * 4096) ()

let kernel_with_source ?frames () =
  let machine = machine_of ?frames () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  (machine, kernel, source)

(* ------------------------------------------------------------------ *)
(* Backing store                                                      *)
(* ------------------------------------------------------------------ *)

let test_backing_memory_roundtrip () =
  let b = Mgr_backing.memory () in
  Mgr_backing.write_block b ~file:1 ~block:5 (Hw_page_data.of_string "v1");
  let d = Mgr_backing.read_block b ~file:1 ~block:5 in
  check_bool "read back" true (Hw_page_data.equal d (Hw_page_data.of_string "v1"));
  check_int "reads" 1 (Mgr_backing.reads b);
  check_int "writes" 1 (Mgr_backing.writes b)

let test_backing_unwritten_block () =
  let b = Mgr_backing.memory () in
  let d = Mgr_backing.read_block b ~file:3 ~block:7 in
  check_bool "symbolic default" true
    (Hw_page_data.equal d (Hw_page_data.block ~file:3 ~block:7 ~version:0))

let test_backing_disk_latency () =
  let e = Engine.create () in
  let disk = Hw_disk.create e () in
  let b = Mgr_backing.disk disk ~page_bytes:4096 in
  let elapsed = ref 0.0 in
  Engine.spawn e (fun () ->
      let t0 = Engine.time () in
      ignore (Mgr_backing.read_block b ~file:1 ~block:0);
      elapsed := Engine.time () -. t0);
  Engine.run e;
  check_bool "disk time charged" true (!elapsed > 10_000.0)

(* ------------------------------------------------------------------ *)
(* Free-page segment                                                  *)
(* ------------------------------------------------------------------ *)

let test_free_pages_grant_take () =
  let _, kernel, source = kernel_with_source () in
  let pool = Mgr_free_pages.create kernel ~name:"pool" ~capacity:8 in
  check_int "empty" 0 (Mgr_free_pages.available pool);
  let slot = Option.get (Mgr_free_pages.grant_slot pool) in
  let got = source ~dst:(Mgr_free_pages.segment pool) ~dst_page:slot ~count:5 in
  Mgr_free_pages.note_granted pool got;
  check_int "granted" 5 (Mgr_free_pages.available pool);
  let dst = K.create_segment kernel ~name:"dst" ~pages:8 () in
  let moved = Mgr_free_pages.take_to pool ~dst ~dst_page:2 ~count:3 () in
  check_int "moved" 3 moved;
  check_int "left" 2 (Mgr_free_pages.available pool);
  check_int "resident in dst" 3 (Seg.resident_pages (K.segment kernel dst))

let test_free_pages_take_more_than_available () =
  let _, kernel, source = kernel_with_source () in
  let pool = Mgr_free_pages.create kernel ~name:"pool" ~capacity:8 in
  let slot = Option.get (Mgr_free_pages.grant_slot pool) in
  Mgr_free_pages.note_granted pool
    (source ~dst:(Mgr_free_pages.segment pool) ~dst_page:slot ~count:2);
  let dst = K.create_segment kernel ~name:"dst" ~pages:8 () in
  check_int "clamped to available" 2 (Mgr_free_pages.take_to pool ~dst ~dst_page:0 ~count:5 ());
  check_int "now empty" 0 (Mgr_free_pages.take_to pool ~dst ~dst_page:5 ~count:1 ())

let test_free_pages_put_and_data () =
  let _, kernel, source = kernel_with_source () in
  let pool = Mgr_free_pages.create kernel ~name:"pool" ~capacity:8 in
  let slot = Option.get (Mgr_free_pages.grant_slot pool) in
  Mgr_free_pages.note_granted pool
    (source ~dst:(Mgr_free_pages.segment pool) ~dst_page:slot ~count:1);
  Mgr_free_pages.set_next_data pool (Hw_page_data.of_string "fill-me");
  let dst = K.create_segment kernel ~name:"dst" ~pages:2 () in
  ignore (Mgr_free_pages.take_to pool ~dst ~dst_page:0 ~count:1 ());
  let d = K.uio_read kernel ~seg:dst ~page:0 in
  check_bool "data set before migration" true
    (Hw_page_data.equal d (Hw_page_data.of_string "fill-me"));
  Mgr_free_pages.put_from pool ~src:dst ~src_page:0;
  check_int "reclaimed" 1 (Mgr_free_pages.available pool)

let test_free_pages_release_to_initial () =
  let _, kernel, source = kernel_with_source ~frames:32 () in
  let pool = Mgr_free_pages.create kernel ~name:"pool" ~capacity:8 in
  let slot = Option.get (Mgr_free_pages.grant_slot pool) in
  Mgr_free_pages.note_granted pool
    (source ~dst:(Mgr_free_pages.segment pool) ~dst_page:slot ~count:4);
  let released = Mgr_free_pages.release_to_initial pool ~count:10 in
  check_int "released what it had" 4 released;
  check_int "initial whole again" 32
    (Seg.resident_pages (K.segment kernel (K.initial_segment kernel)))

(* ------------------------------------------------------------------ *)
(* Generic manager                                                    *)
(* ------------------------------------------------------------------ *)

let generic ?hooks ?(frames = 256) ?(pool = 64) () =
  let machine, kernel, source = kernel_with_source ~frames () in
  let backing = Mgr_backing.memory () in
  let g =
    G.create kernel ~name:"test-mgr" ~mode:`In_process ~backing ~source ?hooks
      ~pool_capacity:pool ()
  in
  (machine, kernel, backing, g)

let test_generic_anon_fill_no_zero () =
  let _, kernel, _, g = generic () in
  let seg = G.create_segment g ~name:"heap" ~pages:8 ~kind:G.Anon () in
  K.touch kernel ~space:seg ~page:0 ~access:Mgr.Write;
  check_int "one fill" 1 (G.stats g).G.fills;
  check_int "no zero-fills" 0 (K.stats kernel).K.page_zeros

let test_generic_file_fill_from_backing () =
  let _, kernel, backing, g = generic () in
  Mgr_backing.write_block backing ~file:9 ~block:2 (Hw_page_data.of_string "block2");
  let seg =
    G.create_segment g ~name:"file" ~pages:8 ~kind:(G.File { file_id = 9 }) ~high_water:8 ()
  in
  K.touch kernel ~space:seg ~page:2 ~access:Mgr.Read;
  let d = K.uio_read kernel ~seg ~page:2 in
  check_bool "filled from backing" true (Hw_page_data.equal d (Hw_page_data.of_string "block2"))

let test_generic_reclaim_second_chance () =
  let _, kernel, _, g = generic () in
  let seg = G.create_segment g ~name:"heap" ~pages:8 ~kind:G.Anon () in
  for p = 0 to 7 do
    K.touch kernel ~space:seg ~page:p ~access:Mgr.Write
  done;
  let got = G.reclaim g ~count:3 in
  check_int "reclaimed despite reference bits" 3 got;
  check_int "resident dropped" 5 (G.resident g ~seg)

let test_generic_reclaim_skips_pinned () =
  let _, kernel, _, g = generic () in
  let seg = G.create_segment g ~name:"heap" ~pages:4 ~kind:G.Anon () in
  for p = 0 to 3 do
    K.touch kernel ~space:seg ~page:p ~access:Mgr.Write
  done;
  G.pin g ~seg ~page:0 ~count:2;
  let got = G.reclaim g ~count:4 in
  check_int "only unpinned evicted" 2 got;
  check_int "pinned stay" 2 (G.resident g ~seg)

let test_generic_eviction_writeback_dirty_only () =
  let _, kernel, backing, g = generic () in
  let seg =
    G.create_segment g ~name:"file" ~pages:4 ~kind:(G.File { file_id = 5 }) ~high_water:4 ()
  in
  K.touch kernel ~space:seg ~page:0 ~access:Mgr.Read;
  K.uio_write kernel ~seg ~page:1 (Hw_page_data.of_string "dirty-data");
  let writes_before = Mgr_backing.writes backing in
  ignore (G.reclaim g ~count:2);
  check_int "one writeback (the dirty page)" (writes_before + 1) (Mgr_backing.writes backing);
  check_bool "dirty data reached backing" true
    (Hw_page_data.equal
       (Mgr_backing.read_block backing ~file:5 ~block:1)
       (Hw_page_data.of_string "dirty-data"));
  check_int "discard counted for the clean page" 1 (G.stats g).G.discards

let test_generic_protection_batching () =
  let _, kernel, _, g = generic () in
  let seg = G.create_segment g ~name:"heap" ~pages:16 ~kind:G.Anon () in
  for p = 0 to 15 do
    K.touch kernel ~space:seg ~page:p ~access:Mgr.Write
  done;
  G.protect_for_sampling g ~seg;
  let faults_before = (K.stats kernel).K.faults_protection in
  K.touch kernel ~space:seg ~page:0 ~access:Mgr.Read;
  check_int "one protection fault" (faults_before + 1) (K.stats kernel).K.faults_protection;
  K.touch kernel ~space:seg ~page:7 ~access:Mgr.Read;
  check_int "batched re-enable" (faults_before + 1) (K.stats kernel).K.faults_protection;
  K.touch kernel ~space:seg ~page:8 ~access:Mgr.Read;
  check_int "next batch faults" (faults_before + 2) (K.stats kernel).K.faults_protection

let test_generic_pool_refill_from_source () =
  let _, kernel, _, g = generic ~pool:16 () in
  let seg = G.create_segment g ~name:"heap" ~pages:8 ~kind:G.Anon () in
  check_int "pool empty initially" 0 (Mgr_free_pages.available (G.pool g));
  K.touch kernel ~space:seg ~page:0 ~access:Mgr.Write;
  check_bool "pool refilled in a batch" true (Mgr_free_pages.available (G.pool g) > 0);
  check_int "one source request" 1 (G.stats g).G.refill_requests

let test_generic_out_of_frames () =
  let machine = machine_of ~frames:64 () in
  let kernel = K.create machine in
  let backing = Mgr_backing.memory () in
  let g = G.create kernel ~name:"starved" ~mode:`In_process ~backing ~pool_capacity:8 () in
  let seg = G.create_segment g ~name:"heap" ~pages:4 ~kind:G.Anon () in
  match K.touch kernel ~space:seg ~page:0 ~access:Mgr.Write with
  | () -> Alcotest.fail "expected Out_of_frames"
  | exception G.Out_of_frames _ -> ()

let test_generic_close_reclaims () =
  let _, kernel, _, g = generic () in
  let seg = G.create_segment g ~name:"temp" ~pages:4 ~kind:G.Anon () in
  for p = 0 to 3 do
    K.touch kernel ~space:seg ~page:p ~access:Mgr.Write
  done;
  let pool_before = Mgr_free_pages.available (G.pool g) in
  G.close_segment g seg;
  check_bool "segment gone" false (K.segment_exists kernel seg);
  check_int "frames back in the pool" (pool_before + 4) (Mgr_free_pages.available (G.pool g));
  check_int "close counted" 1 (G.stats g).G.closes

let test_generic_return_to_system () =
  let _, kernel, _, g = generic ~frames:64 () in
  let seg = G.create_segment g ~name:"heap" ~pages:8 ~kind:G.Anon () in
  for p = 0 to 7 do
    K.touch kernel ~space:seg ~page:p ~access:Mgr.Write
  done;
  let free_before = Seg.resident_pages (K.segment kernel (K.initial_segment kernel)) in
  let returned = G.return_to_system g ~pages:4 in
  check_bool "returned some" true (returned > 0);
  check_int "frames visible in initial segment" (free_before + returned)
    (Seg.resident_pages (K.segment kernel (K.initial_segment kernel)))

let test_generic_lock_in_memory () =
  let _, _, _, g = generic () in
  let seg = G.create_segment g ~name:"mgr-code" ~pages:4 ~kind:G.Anon () in
  G.lock_in_memory g ~seg;
  check_int "all resident" 4 (G.resident g ~seg);
  check_int "nothing evictable" 0 (G.reclaim g ~count:4)

let test_generic_cow_fill () =
  let _, kernel, _, g = generic () in
  let template = G.create_segment g ~name:"template" ~pages:2 ~kind:G.Anon () in
  let space = G.create_segment g ~name:"space" ~pages:2 ~kind:G.Anon () in
  K.touch kernel ~space:template ~page:0 ~access:Mgr.Write;
  K.uio_write kernel ~seg:template ~page:0 (Hw_page_data.of_string "shared");
  K.bind_region kernel ~space ~at:0 ~len:2 ~target:template ~target_page:0 ~cow:true;
  K.touch kernel ~space ~page:0 ~access:Mgr.Write;
  check_int "cow fill counted" 1 (G.stats g).G.cow_fills;
  check_bool "private copy has data" true
    (Hw_page_data.equal (K.uio_read kernel ~seg:space ~page:0) (Hw_page_data.of_string "shared"))

let test_generic_anon_swap_roundtrip () =
  (* Evicted dirty anonymous pages must come back from swap with their
     data, not as fresh pages. *)
  let _, kernel, _, g = generic () in
  let seg = G.create_segment g ~name:"heap" ~pages:4 ~kind:G.Anon () in
  K.touch kernel ~space:seg ~page:2 ~access:Mgr.Write;
  K.uio_write kernel ~seg ~page:2 (Hw_page_data.of_string "precious");
  let reclaimed = G.reclaim g ~count:4 in
  check_bool "evicted" true (reclaimed >= 1);
  check_int "page gone" 0 (G.resident g ~seg);
  (* Fault it back: the swap-aware fill restores the data. *)
  let d = K.uio_read kernel ~seg ~page:2 in
  check_bool "data survived the swap round trip" true
    (Hw_page_data.equal d (Hw_page_data.of_string "precious"))

let test_generic_swap_out_protocol () =
  let _, kernel, _, g = generic ~frames:128 () in
  let seg = G.create_segment g ~name:"data" ~pages:8 ~kind:G.Anon () in
  for p = 0 to 7 do
    K.touch kernel ~space:seg ~page:p ~access:Mgr.Write
  done;
  K.uio_write kernel ~seg ~page:3 (Hw_page_data.of_string "survives-suspension");
  let free_before = Seg.resident_pages (K.segment kernel (K.initial_segment kernel)) in
  let released = G.swap_out g in
  check_bool "released everything it held" true (released >= 8);
  check_int "nothing resident" 0 (G.resident g ~seg);
  check_bool "system got the frames" true
    (Seg.resident_pages (K.segment kernel (K.initial_segment kernel)) > free_before);
  (* Resume: eager swap-in restores the dirtied pages. *)
  G.swap_in g;
  check_bool "swapped data resident again" true (G.resident g ~seg >= 1);
  check_bool "data intact" true
    (Hw_page_data.equal (K.uio_read kernel ~seg ~page:3)
       (Hw_page_data.of_string "survives-suspension"))

(* ------------------------------------------------------------------ *)
(* Checkpoint manager                                                 *)
(* ------------------------------------------------------------------ *)

let checkpoint_setup () =
  let machine, kernel, source = kernel_with_source ~frames:512 () in
  let mgr = Mgr_checkpoint.create kernel ~source ~pool_capacity:128 () in
  let seg = Mgr_checkpoint.create_segment mgr ~name:"state" ~pages:16 in
  (machine, kernel, mgr, seg)

let write_page kernel seg page text =
  K.touch kernel ~space:seg ~page ~access:Mgr.Write;
  K.uio_write kernel ~seg ~page (Hw_page_data.of_string text)

let test_checkpoint_preserves_old_images () =
  let _, kernel, mgr, seg = checkpoint_setup () in
  for p = 0 to 7 do
    write_page kernel seg p (Printf.sprintf "v1-page%d" p)
  done;
  let gen = Mgr_checkpoint.begin_checkpoint mgr ~seg in
  (* Mutate half the pages after the snapshot. *)
  for p = 0 to 3 do
    write_page kernel seg p (Printf.sprintf "v2-page%d" p)
  done;
  check_int "only written pages copied" 4 (Mgr_checkpoint.pages_preserved mgr);
  (* The checkpoint view is the v1 state everywhere. *)
  for p = 0 to 7 do
    let d = Mgr_checkpoint.read_checkpoint mgr ~seg ~generation:gen ~page:p in
    check_bool
      (Printf.sprintf "page %d reads v1" p)
      true
      (Hw_page_data.equal d (Hw_page_data.of_string (Printf.sprintf "v1-page%d" p)))
  done;
  (* The live view is v2 where written. *)
  check_bool "live view moved on" true
    (Hw_page_data.equal (K.uio_read kernel ~seg ~page:0) (Hw_page_data.of_string "v2-page0"))

let test_checkpoint_end_freezes () =
  let _, kernel, mgr, seg = checkpoint_setup () in
  write_page kernel seg 0 "original";
  let gen = Mgr_checkpoint.begin_checkpoint mgr ~seg in
  Mgr_checkpoint.end_checkpoint mgr ~seg;
  (* Writes after end must not disturb the closed generation. *)
  write_page kernel seg 0 "later";
  let d = Mgr_checkpoint.read_checkpoint mgr ~seg ~generation:gen ~page:0 in
  check_bool "closed generation frozen" true (Hw_page_data.equal d (Hw_page_data.of_string "original"))

let test_checkpoint_generations_independent () =
  let _, kernel, mgr, seg = checkpoint_setup () in
  write_page kernel seg 0 "gen1-state";
  let g1 = Mgr_checkpoint.begin_checkpoint mgr ~seg in
  write_page kernel seg 0 "gen2-state";
  Mgr_checkpoint.end_checkpoint mgr ~seg;
  let g2 = Mgr_checkpoint.begin_checkpoint mgr ~seg in
  write_page kernel seg 0 "gen3-state";
  Mgr_checkpoint.end_checkpoint mgr ~seg;
  check_bool "gen1 view" true
    (Hw_page_data.equal
       (Mgr_checkpoint.read_checkpoint mgr ~seg ~generation:g1 ~page:0)
       (Hw_page_data.of_string "gen1-state"));
  check_bool "gen2 view" true
    (Hw_page_data.equal
       (Mgr_checkpoint.read_checkpoint mgr ~seg ~generation:g2 ~page:0)
       (Hw_page_data.of_string "gen2-state"))

let test_checkpoint_one_at_a_time () =
  let _, kernel, mgr, seg = checkpoint_setup () in
  write_page kernel seg 0 "x";
  ignore (Mgr_checkpoint.begin_checkpoint mgr ~seg);
  (match Mgr_checkpoint.begin_checkpoint mgr ~seg with
  | _ -> Alcotest.fail "expected rejection of nested checkpoint"
  | exception Invalid_argument _ -> ());
  Mgr_checkpoint.end_checkpoint mgr ~seg

let test_checkpoint_reads_do_not_fault () =
  let _, kernel, mgr, seg = checkpoint_setup () in
  write_page kernel seg 0 "read-me";
  ignore (Mgr_checkpoint.begin_checkpoint mgr ~seg);
  let faults0 = Mgr_checkpoint.checkpoint_faults mgr in
  (* Read-only protection: mutator reads proceed without faults. *)
  K.touch kernel ~space:seg ~page:0 ~access:Mgr.Read;
  check_int "no checkpoint fault on read" faults0 (Mgr_checkpoint.checkpoint_faults mgr);
  Mgr_checkpoint.end_checkpoint mgr ~seg

(* ------------------------------------------------------------------ *)
(* Compressed-cache manager                                           *)
(* ------------------------------------------------------------------ *)

let compressed_setup ?config () =
  let machine, kernel, source = kernel_with_source ~frames:512 () in
  let mgr = Mgr_compressed.create kernel ?config ~source ~pool_capacity:128 () in
  let seg = Mgr_compressed.create_segment mgr ~name:"data" ~pages:32 in
  (machine, kernel, mgr, seg)

let test_compressed_roundtrip_beats_disk () =
  let machine, kernel, mgr, seg = compressed_setup () in
  let refault_time = ref 0.0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      K.touch kernel ~space:seg ~page:0 ~access:Mgr.Write;
      K.uio_write kernel ~seg ~page:0 (Hw_page_data.of_string "squeeze");
      Mgr_compressed.evict mgr ~seg ~page:0;
      let t0 = Engine.time () in
      K.touch kernel ~space:seg ~page:0 ~access:Mgr.Read;
      refault_time := Engine.time () -. t0);
  Engine.run machine.Hw_machine.engine;
  check_int "compressed once" 1 (Mgr_compressed.compressions mgr);
  check_int "decompressed once" 1 (Mgr_compressed.decompressions mgr);
  check_int "no disk fill" 0 (Mgr_compressed.disk_fills mgr);
  check_bool "refault under 1ms (disk would be ~15ms)" true (!refault_time < 1000.0);
  check_bool "data intact" true
    (Hw_page_data.equal (K.uio_read kernel ~seg ~page:0) (Hw_page_data.of_string "squeeze"))

let test_compressed_budget_spills_to_disk () =
  let cfg = { Mgr_compressed.default_config with budget_pages = 2.0; compression_ratio = 1.0 } in
  let machine, kernel, mgr, seg = compressed_setup ~config:cfg () in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for p = 0 to 5 do
        K.touch kernel ~space:seg ~page:p ~access:Mgr.Write;
        K.uio_write kernel ~seg ~page:p (Hw_page_data.of_string (string_of_int p));
        Mgr_compressed.evict mgr ~seg ~page:p
      done;
      (* Budget 2 page-equivalents at ratio 1.0: at most 2 stay compressed. *)
      check_bool "within budget" true (Mgr_compressed.pool_page_equivalents mgr <= 2.0);
      check_bool "older entries spilled" true (Mgr_compressed.spills mgr >= 4);
      (* A spilled page still comes back correctly — from disk. *)
      K.touch kernel ~space:seg ~page:0 ~access:Mgr.Read);
  Engine.run machine.Hw_machine.engine;
  check_bool "spilled page refilled from disk" true (Mgr_compressed.disk_fills mgr >= 1);
  check_bool "data correct after spill" true
    (Hw_page_data.equal (K.uio_read kernel ~seg ~page:0) (Hw_page_data.of_string "0"))

(* ------------------------------------------------------------------ *)
(* Default (UCDS) manager                                             *)
(* ------------------------------------------------------------------ *)

let ucds_setup ?(frames = 2048) () =
  let machine, kernel, source = kernel_with_source ~frames () in
  let ucds = Mgr_default.create kernel ~source () in
  (machine, kernel, ucds)

let test_ucds_append_batching () =
  let _, kernel, ucds = ucds_setup () in
  let seg = Mgr_default.open_file ucds ~file_id:1 ~size_pages:16 ~empty:true () in
  Mgr_generic.ensure_pool (Mgr_default.generic ucds) ~count:20;
  let migrates0 = (K.stats kernel).K.migrate_calls in
  for p = 0 to 7 do
    K.uio_write kernel ~seg ~page:p (Hw_page_data.block ~file:1 ~block:p ~version:1)
  done;
  check_int "two append batches" 2 ((K.stats kernel).K.migrate_calls - migrates0)

let test_ucds_preload_then_reads_are_free () =
  let _, kernel, ucds = ucds_setup () in
  let seg = Mgr_default.open_file ucds ~file_id:2 ~size_pages:8 ~preload:true () in
  let calls0 = K.manager_calls_of kernel (Mgr_default.manager_id ucds) in
  for p = 0 to 7 do
    ignore (K.uio_read kernel ~seg ~page:p)
  done;
  check_int "no faults on cached file" calls0
    (K.manager_calls_of kernel (Mgr_default.manager_id ucds))

let test_ucds_open_is_cache_hit () =
  let _, _, ucds = ucds_setup () in
  let a = Mgr_default.open_file ucds ~file_id:3 ~size_pages:4 () in
  let b = Mgr_default.open_file ucds ~file_id:3 ~size_pages:4 () in
  check_int "same segment" a b

let test_ucds_close_keeps_cached_and_counts () =
  let _, kernel, ucds = ucds_setup () in
  let seg = Mgr_default.open_file ucds ~file_id:4 ~size_pages:4 ~preload:true () in
  let resident_before = Seg.resident_pages (K.segment kernel seg) in
  Mgr_default.close_file ucds seg;
  check_int "still cached" resident_before (Seg.resident_pages (K.segment kernel seg));
  check_int "close counted" 1 (Mgr_default.closes ucds);
  check_int "total includes closes" 1 (Mgr_default.total_manager_calls ucds)

let test_ucds_flush_writes_dirty () =
  let _, kernel, ucds = ucds_setup () in
  let seg = Mgr_default.open_file ucds ~file_id:5 ~size_pages:4 ~empty:true () in
  Mgr_generic.ensure_pool (Mgr_default.generic ucds) ~count:8;
  K.uio_write kernel ~seg ~page:0 (Hw_page_data.of_string "flushed");
  Mgr_default.flush_file ucds seg;
  let backing = Mgr_generic.backing (Mgr_default.generic ucds) in
  check_bool "on backing store" true
    (Hw_page_data.equal
       (Mgr_backing.read_block backing ~file:5 ~block:0)
       (Hw_page_data.of_string "flushed"))

let test_ucds_heap_minimal_fault () =
  let _, kernel, ucds = ucds_setup () in
  let heap = Mgr_default.create_heap ucds ~name:"heap" ~pages:8 in
  Mgr_generic.ensure_pool (Mgr_default.generic ucds) ~count:8;
  K.touch kernel ~space:heap ~page:0 ~access:Mgr.Write;
  check_int "fault delivered" 1 (K.manager_calls_of kernel (Mgr_default.manager_id ucds));
  check_int "no zeroing" 0 (K.stats kernel).K.page_zeros

(* ------------------------------------------------------------------ *)
(* DBMS manager                                                       *)
(* ------------------------------------------------------------------ *)

let dbms_setup () =
  let machine, kernel, source = kernel_with_source ~frames:2048 () in
  let mgr = Mgr_dbms.create kernel ~source ~pool_capacity:512 () in
  (machine, kernel, mgr)

let test_dbms_relation_pinned_resident () =
  let _, kernel, mgr = dbms_setup () in
  let rel = Mgr_dbms.create_relation mgr ~name:"rel" ~pages:32 in
  check_int "fully resident" 32 (Seg.resident_pages (K.segment kernel rel));
  let attrs = K.get_page_attributes kernel ~seg:rel ~page:0 ~count:1 in
  check_bool "pinned" true (Flags.mem attrs.(0).K.pa_flags Flags.pinned)

let test_dbms_index_lifecycle () =
  let _, _, mgr = dbms_setup () in
  let idx = Mgr_dbms.create_index mgr ~name:"ix" ~pages:16 () in
  check_bool "resident after build" true (Mgr_dbms.index_resident mgr idx);
  check_int "16 index pages" 16 (Mgr_dbms.resident_index_pages mgr);
  Mgr_dbms.evict_index mgr idx;
  check_bool "evicted" false (Mgr_dbms.index_resident mgr idx);
  check_int "no resident index pages" 0 (Mgr_dbms.resident_index_pages mgr);
  Mgr_dbms.regenerate_index mgr idx;
  check_bool "regenerated" true (Mgr_dbms.index_resident mgr idx);
  check_int "one regeneration" 1 (Mgr_dbms.regenerations mgr)

let test_dbms_load_from_disk_faults () =
  let machine, kernel, mgr = dbms_setup () in
  let idx = Mgr_dbms.create_index mgr ~name:"ix" ~pages:8 () in
  Mgr_dbms.evict_index mgr idx;
  let faults0 = (K.stats kernel).K.faults_missing in
  let elapsed = ref 0.0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      let t0 = Engine.time () in
      Mgr_dbms.load_index_from_disk mgr idx;
      elapsed := Engine.time () -. t0);
  Engine.run machine.Hw_machine.engine;
  check_int "8 faults" (faults0 + 8) (K.stats kernel).K.faults_missing;
  check_bool "disk time dominates" true (!elapsed > 8.0 *. 10_000.0);
  check_bool "resident again" true (Mgr_dbms.index_resident mgr idx)

let test_dbms_lru_eviction () =
  let _, _, mgr = dbms_setup () in
  let a = Mgr_dbms.create_index mgr ~name:"a" ~pages:4 () in
  let b = Mgr_dbms.create_index mgr ~name:"b" ~pages:4 () in
  let c = Mgr_dbms.create_index mgr ~name:"c" ~pages:4 () in
  Mgr_dbms.note_index_use mgr a ~now:100.0;
  Mgr_dbms.note_index_use mgr b ~now:10.0;
  Mgr_dbms.note_index_use mgr c ~now:50.0;
  let victim = Mgr_dbms.evict_lru_index mgr ~except:None in
  check_bool "coldest index chosen" true (victim = Some b)

(* ------------------------------------------------------------------ *)
(* Prefetch manager                                                   *)
(* ------------------------------------------------------------------ *)

let prefetch_setup () =
  let machine, kernel, source = kernel_with_source ~frames:512 () in
  let mgr = Mgr_prefetch.create kernel ~source ~pool_capacity:128 () in
  let seg = Mgr_prefetch.create_file_segment mgr ~name:"data" ~file_id:1 ~pages:64 in
  (machine, kernel, mgr, seg)

let test_prefetch_absorbs_fault () =
  let machine, kernel, mgr, seg = prefetch_setup () in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      Mgr_prefetch.prefetch mgr ~seg ~page:0 ~count:4;
      K.touch kernel ~space:seg ~page:0 ~access:Mgr.Read);
  Engine.run machine.Hw_machine.engine;
  check_int "prefetches started" 4 (Mgr_prefetch.prefetches_started mgr);
  check_int "fault absorbed" 1 (Mgr_prefetch.absorbed_faults mgr);
  check_int "no inline fill" 0 (Mgr_prefetch.demand_fills mgr);
  check_int "resident" 4 (Mgr_prefetch.resident mgr ~seg)

let test_prefetch_demand_fill_without_prefetch () =
  let machine, kernel, mgr, seg = prefetch_setup () in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      K.touch kernel ~space:seg ~page:7 ~access:Mgr.Read);
  Engine.run machine.Hw_machine.engine;
  check_int "inline fill" 1 (Mgr_prefetch.demand_fills mgr)

let test_prefetch_discard_no_writeback () =
  let machine, kernel, mgr, seg = prefetch_setup () in
  let disk_writes_before = Hw_disk.writes machine.Hw_machine.disk in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      K.touch kernel ~space:seg ~page:0 ~access:Mgr.Write;
      Mgr_prefetch.discard mgr ~seg ~page:0 ~count:1);
  Engine.run machine.Hw_machine.engine;
  check_int "discarded" 1 (Mgr_prefetch.discards mgr);
  check_int "resident zero" 0 (Mgr_prefetch.resident mgr ~seg);
  check_int "no writeback" disk_writes_before (Hw_disk.writes machine.Hw_machine.disk)

let test_prefetch_idempotent () =
  let machine, _, mgr, seg = prefetch_setup () in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      Mgr_prefetch.prefetch mgr ~seg ~page:0 ~count:2;
      Mgr_prefetch.prefetch mgr ~seg ~page:0 ~count:2);
  Engine.run machine.Hw_machine.engine;
  check_int "no duplicate prefetches" 2 (Mgr_prefetch.prefetches_started mgr)

(* ------------------------------------------------------------------ *)
(* GC manager                                                         *)
(* ------------------------------------------------------------------ *)

let gc_setup () =
  let machine, kernel, source = kernel_with_source ~frames:512 () in
  let mgr = Mgr_gc.create kernel ~source ~pool_capacity:128 () in
  let heap = Mgr_gc.create_heap mgr ~name:"heap" ~pages:32 in
  (machine, kernel, mgr, heap)

let test_gc_discard_skips_writeback () =
  let machine, kernel, mgr, heap = gc_setup () in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for p = 0 to 7 do
        K.touch kernel ~space:heap ~page:p ~access:Mgr.Write;
        K.uio_write kernel ~seg:heap ~page:p (Hw_page_data.of_string "dead soon")
      done;
      Mgr_gc.declare_garbage mgr ~seg:heap ~page:0 ~count:8;
      let n = Mgr_gc.reclaim_garbage mgr ~seg:heap in
      check_int "all garbage reclaimed" 8 n);
  Engine.run machine.Hw_machine.engine;
  check_int "no disk writes despite dirty pages" 0 (Hw_disk.writes machine.Hw_machine.disk);
  check_int "writebacks avoided counted" 8 (Mgr_gc.writebacks_avoided mgr)

let test_gc_conventional_eviction_writes () =
  let machine, kernel, mgr, heap = gc_setup () in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for p = 0 to 3 do
        K.touch kernel ~space:heap ~page:p ~access:Mgr.Write;
        K.uio_write kernel ~seg:heap ~page:p (Hw_page_data.of_string "live data")
      done;
      ignore (Mgr_gc.evict_conventional mgr ~seg:heap ~page:0 ~count:4);
      (* Conventionally evicted pages must come back with their data. *)
      let d = K.uio_read kernel ~seg:heap ~page:0 in
      check_bool "swap round trip" true (Hw_page_data.equal d (Hw_page_data.of_string "live data")));
  Engine.run machine.Hw_machine.engine;
  check_int "dirty pages written to swap" 4 (Hw_disk.writes machine.Hw_machine.disk)

let test_gc_garbage_refault_is_fresh () =
  let machine, kernel, mgr, heap = gc_setup () in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      K.touch kernel ~space:heap ~page:0 ~access:Mgr.Write;
      K.uio_write kernel ~seg:heap ~page:0 (Hw_page_data.of_string "garbage");
      Mgr_gc.declare_garbage mgr ~seg:heap ~page:0 ~count:1;
      ignore (Mgr_gc.reclaim_garbage mgr ~seg:heap);
      (* Reallocating the page gives a fresh frame, not the old data, and
         costs no disk read. *)
      K.touch kernel ~space:heap ~page:0 ~access:Mgr.Write);
  Engine.run machine.Hw_machine.engine;
  check_int "no disk reads" 0 (Hw_disk.reads machine.Hw_machine.disk)

let test_gc_adaptive_frequency () =
  let _, _, mgr, _ = gc_setup () in
  check_bool "small budget collects" true (Mgr_gc.should_collect mgr ~live_pages:20 ~budget_pages:24);
  check_bool "big budget does not" false (Mgr_gc.should_collect mgr ~live_pages:20 ~budget_pages:96)

(* ------------------------------------------------------------------ *)
(* Coloring manager                                                   *)
(* ------------------------------------------------------------------ *)

let coloring_setup () =
  let machine, kernel, _ = kernel_with_source ~frames:256 () in
  let init = K.initial_segment kernel in
  let mem = machine.Hw_machine.mem in
  let source ~color ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    let slot = ref 0 in
    while !granted < count && !slot < Seg.length init_seg do
      (match (Seg.page init_seg !slot).Seg.frame with
      | Some f
        when (match color with
             | None -> true
             | Some c -> (Hw_phys_mem.frame mem f).Hw_phys_mem.color = c) ->
          K.migrate_pages kernel ~src:init ~dst ~src_page:!slot ~dst_page:(dst_page + !granted)
            ~count:1 ();
          incr granted
      | Some _ | None -> ());
      incr slot
    done;
    !granted
  in
  let mgr = Mgr_coloring.create kernel ~n_colors:16 ~source ~pool_capacity:64 () in
  (machine, kernel, mgr)

let test_coloring_matches_page_color () =
  let _, kernel, mgr = coloring_setup () in
  let seg = Mgr_coloring.create_segment mgr ~name:"ws" ~pages:32 in
  for p = 0 to 31 do
    K.touch kernel ~space:seg ~page:p ~access:Mgr.Write
  done;
  let good, total = Mgr_coloring.audit mgr ~seg in
  check_int "all resident" 32 total;
  check_int "all correctly colored" 32 good;
  check_int "no color misses" 0 (Mgr_coloring.color_misses mgr)

let test_coloring_falls_back_when_color_exhausted () =
  let machine, kernel, _ = kernel_with_source ~frames:32 () in
  let init = K.initial_segment kernel in
  let mem = machine.Hw_machine.mem in
  let source ~color ~dst ~dst_page ~count =
    match color with
    | Some 3 -> 0
    | _ ->
        let init_seg = K.segment kernel init in
        let granted = ref 0 in
        let slot = ref 0 in
        while !granted < count && !slot < Seg.length init_seg do
          (match (Seg.page init_seg !slot).Seg.frame with
          | Some f when (Hw_phys_mem.frame mem f).Hw_phys_mem.color <> 3 ->
              K.migrate_pages kernel ~src:init ~dst ~src_page:!slot
                ~dst_page:(dst_page + !granted) ~count:1 ();
              incr granted
          | Some _ | None -> ());
          incr slot
        done;
        !granted
  in
  let mgr = Mgr_coloring.create kernel ~n_colors:16 ~source ~pool_capacity:32 () in
  let seg = Mgr_coloring.create_segment mgr ~name:"ws" ~pages:4 in
  K.touch kernel ~space:seg ~page:3 ~access:Mgr.Write;
  check_int "page resident anyway" 1 (Seg.resident_pages (K.segment kernel seg));
  check_int "color miss recorded" 1 (Mgr_coloring.color_misses mgr)

(* ------------------------------------------------------------------ *)
(* Concurrency and failure injection                                   *)
(* ------------------------------------------------------------------ *)

let test_concurrent_faulting_clients () =
  (* Eight processes demand-fault a disk-backed file concurrently: the
     fills suspend on the disk mid-handler, so without serialisation the
     pool operations would interleave and corrupt the free segment. *)
  let machine, kernel, source = kernel_with_source ~frames:512 () in
  let backing = Mgr_backing.disk machine.Hw_machine.disk ~page_bytes:4096 in
  let g =
    G.create kernel ~name:"shared" ~mode:`In_process ~backing ~source ~pool_capacity:128 ()
  in
  let seg =
    G.create_segment g ~name:"file" ~pages:64 ~kind:(G.File { file_id = 3 }) ~high_water:64 ()
  in
  let completed = ref 0 in
  for client = 0 to 7 do
    Engine.spawn machine.Hw_machine.engine (fun () ->
        for i = 0 to 7 do
          K.touch kernel ~space:seg ~page:((client * 8) + i) ~access:Mgr.Read
        done;
        incr completed)
  done;
  Engine.run machine.Hw_machine.engine;
  check_int "all clients finished" 8 !completed;
  check_int "no stuck processes" 0 (Engine.live_processes machine.Hw_machine.engine);
  check_int "all pages resident" 64 (G.resident g ~seg);
  let total =
    K.frame_owner_total kernel
  in
  check_int "frames conserved under concurrency" 512 total

let test_concurrent_same_page_faults () =
  (* Two processes racing on the same missing page: one fills, the other
     finds it resolved; no Frame_present crash, one disk read. *)
  let machine, kernel, source = kernel_with_source ~frames:128 () in
  let backing = Mgr_backing.disk machine.Hw_machine.disk ~page_bytes:4096 in
  let g = G.create kernel ~name:"race" ~mode:`In_process ~backing ~source () in
  let seg =
    G.create_segment g ~name:"file" ~pages:4 ~kind:(G.File { file_id = 1 }) ~high_water:4 ()
  in
  let done_count = ref 0 in
  for _ = 1 to 2 do
    Engine.spawn machine.Hw_machine.engine (fun () ->
        K.touch kernel ~space:seg ~page:0 ~access:Mgr.Read;
        incr done_count)
  done;
  Engine.run machine.Hw_machine.engine;
  check_int "both returned" 2 !done_count;
  check_int "exactly one disk read" 1 (Hw_disk.reads machine.Hw_machine.disk)

let test_failing_handler_leaves_kernel_consistent () =
  (* A manager whose handler raises must not wedge the kernel: the fault
     depth unwinds and later faults (with a fixed manager) succeed. *)
  let _, kernel, source = kernel_with_source ~frames:64 () in
  let blow_up = ref true in
  let backing = Mgr_backing.memory () in
  let pool = Mgr_free_pages.create kernel ~name:"fixit" ~capacity:16 in
  ignore backing;
  let mid =
    K.register_manager kernel ~name:"flaky" ~mode:`In_process
      ~on_fault:(fun f ->
        if !blow_up then failwith "manager crashed"
        else begin
          if Mgr_free_pages.available pool = 0 then begin
            let slot = Option.get (Mgr_free_pages.grant_slot pool) in
            Mgr_free_pages.note_granted pool
              (source ~dst:(Mgr_free_pages.segment pool) ~dst_page:slot ~count:4)
          end;
          ignore
            (Mgr_free_pages.take_to pool ~dst:f.Mgr.f_seg ~dst_page:f.Mgr.f_page ~count:1 ())
        end)
      ()
  in
  let seg = K.create_segment kernel ~name:"s" ~pages:4 () in
  K.set_segment_manager kernel seg mid;
  (match K.touch kernel ~space:seg ~page:0 ~access:Mgr.Read with
  | () -> Alcotest.fail "expected the handler's exception"
  | exception Failure _ -> ());
  (* Recovery: the same fault now succeeds. *)
  blow_up := false;
  K.touch kernel ~space:seg ~page:0 ~access:Mgr.Read;
  check_int "resolved after recovery" 1 (Seg.resident_pages (K.segment kernel seg))

let test_pool_exhaustion_recovers () =
  (* Out_of_frames must not leave the manager wedged: granting frames
     afterwards lets the same fault succeed. *)
  let machine = machine_of ~frames:64 () in
  let kernel = K.create machine in
  let grants_enabled = ref false in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    if not !grants_enabled then 0
    else begin
      let init_seg = K.segment kernel init in
      let granted = ref 0 in
      while !granted < count && !next < Seg.length init_seg do
        (if (Seg.page init_seg !next).Seg.frame <> None then begin
           K.migrate_pages kernel ~src:init ~dst ~src_page:!next
             ~dst_page:(dst_page + !granted) ~count:1 ();
           incr granted
         end);
        incr next
      done;
      !granted
    end
  in
  let backing = Mgr_backing.memory () in
  let g = G.create kernel ~name:"starved" ~mode:`In_process ~backing ~source () in
  let seg = G.create_segment g ~name:"heap" ~pages:4 ~kind:G.Anon () in
  (match K.touch kernel ~space:seg ~page:0 ~access:Mgr.Write with
  | () -> Alcotest.fail "expected Out_of_frames"
  | exception G.Out_of_frames _ -> ());
  grants_enabled := true;
  K.touch kernel ~space:seg ~page:0 ~access:Mgr.Write;
  check_int "fault served after memory arrived" 1 (G.resident g ~seg)

(* ------------------------------------------------------------------ *)
(* DSM consistency manager                                            *)
(* ------------------------------------------------------------------ *)

let dsm_setup ?(nodes = 3) ?(pages = 8) () =
  let machine, kernel, source = kernel_with_source ~frames:256 () in
  let dsm = Mgr_dsm.create kernel ~source ~nodes ~pages () in
  (machine, kernel, dsm)

let str s = Hw_page_data.of_string s

let test_dsm_write_then_remote_read () =
  let _, _, dsm = dsm_setup () in
  Mgr_dsm.write dsm ~node:0 ~page:3 (str "from-node-0");
  check_bool "writer exclusive" true (Mgr_dsm.state dsm ~node:0 ~page:3 = Mgr_dsm.Exclusive);
  let seen = Mgr_dsm.read dsm ~node:1 ~page:3 in
  check_bool "remote read sees the write" true (Hw_page_data.equal seen (str "from-node-0"));
  (* The writer was downgraded, both now share. *)
  check_bool "writer downgraded" true (Mgr_dsm.state dsm ~node:0 ~page:3 = Mgr_dsm.Shared);
  check_bool "reader shared" true (Mgr_dsm.state dsm ~node:1 ~page:3 = Mgr_dsm.Shared);
  check_int "one downgrade" 1 (Mgr_dsm.downgrades dsm)

let test_dsm_write_invalidates_sharers () =
  let _, _, dsm = dsm_setup () in
  Mgr_dsm.write dsm ~node:0 ~page:0 (str "v1");
  ignore (Mgr_dsm.read dsm ~node:1 ~page:0);
  ignore (Mgr_dsm.read dsm ~node:2 ~page:0);
  check_int "three holders" 3 (List.length (Mgr_dsm.holders dsm ~page:0));
  Mgr_dsm.write dsm ~node:2 ~page:0 (str "v2");
  Alcotest.(check (list int)) "only the writer holds it" [ 2 ] (Mgr_dsm.holders dsm ~page:0);
  check_bool "others invalidated" true (Mgr_dsm.invalidations dsm >= 2);
  (* And the new value propagates. *)
  let seen = Mgr_dsm.read dsm ~node:0 ~page:0 in
  check_bool "coherent after invalidation" true (Hw_page_data.equal seen (str "v2"))

let test_dsm_local_reuse_free () =
  let _, _, dsm = dsm_setup () in
  Mgr_dsm.write dsm ~node:0 ~page:1 (str "mine");
  let transfers = Mgr_dsm.transfers dsm in
  for _ = 1 to 5 do
    ignore (Mgr_dsm.read dsm ~node:0 ~page:1);
    Mgr_dsm.write dsm ~node:0 ~page:1 (str "mine again")
  done;
  check_int "no protocol traffic for local reuse" transfers (Mgr_dsm.transfers dsm)

let test_dsm_upgrade_in_place () =
  let _, _, dsm = dsm_setup () in
  ignore (Mgr_dsm.read dsm ~node:0 ~page:2);
  let transfers = Mgr_dsm.transfers dsm in
  check_bool "shared after read" true (Mgr_dsm.state dsm ~node:0 ~page:2 = Mgr_dsm.Shared);
  Mgr_dsm.write dsm ~node:0 ~page:2 (str "upgraded");
  check_bool "exclusive after write" true (Mgr_dsm.state dsm ~node:0 ~page:2 = Mgr_dsm.Exclusive);
  check_int "upgrade shipped no copy" transfers (Mgr_dsm.transfers dsm)

let test_dsm_remote_fetch_costs_network () =
  let machine, _, dsm = dsm_setup () in
  let elapsed = ref 0.0 in
  Sim_engine.spawn machine.Hw_machine.engine (fun () ->
      Mgr_dsm.write dsm ~node:0 ~page:0 (str "x");
      let t0 = Sim_engine.time () in
      ignore (Mgr_dsm.read dsm ~node:1 ~page:0);
      elapsed := Sim_engine.time () -. t0);
  Sim_engine.run machine.Hw_machine.engine;
  (* Downgrade message + request + data: at least 3 network latencies. *)
  check_bool "network charged" true (!elapsed >= 3000.0)

let test_dsm_ping_pong_counts () =
  let _, _, dsm = dsm_setup ~nodes:2 () in
  for i = 1 to 10 do
    Mgr_dsm.write dsm ~node:(i mod 2) ~page:0 (str (string_of_int i))
  done;
  (* Every ownership change after the first invalidates the other side. *)
  check_bool "ping-pong invalidations" true (Mgr_dsm.invalidations dsm >= 8);
  let final = Mgr_dsm.read dsm ~node:0 ~page:0 in
  check_bool "last write wins" true (Hw_page_data.equal final (str "10"))

let test_dsm_frame_conservation () =
  let _, kernel, dsm = dsm_setup () in
  Mgr_dsm.write dsm ~node:0 ~page:0 (str "a");
  ignore (Mgr_dsm.read dsm ~node:1 ~page:0);
  Mgr_dsm.write dsm ~node:2 ~page:0 (str "b");
  let total = K.frame_owner_total kernel in
  check_int "every frame owned once" 256 total

let () =
  Alcotest.run "managers"
    [
      ( "backing",
        [
          Alcotest.test_case "memory roundtrip" `Quick test_backing_memory_roundtrip;
          Alcotest.test_case "unwritten block" `Quick test_backing_unwritten_block;
          Alcotest.test_case "disk latency" `Quick test_backing_disk_latency;
        ] );
      ( "free-pages",
        [
          Alcotest.test_case "grant and take" `Quick test_free_pages_grant_take;
          Alcotest.test_case "take clamps" `Quick test_free_pages_take_more_than_available;
          Alcotest.test_case "put and data" `Quick test_free_pages_put_and_data;
          Alcotest.test_case "release to initial" `Quick test_free_pages_release_to_initial;
        ] );
      ( "generic",
        [
          Alcotest.test_case "anon fill, no zero" `Quick test_generic_anon_fill_no_zero;
          Alcotest.test_case "file fill from backing" `Quick test_generic_file_fill_from_backing;
          Alcotest.test_case "second-chance reclaim" `Quick test_generic_reclaim_second_chance;
          Alcotest.test_case "reclaim skips pinned" `Quick test_generic_reclaim_skips_pinned;
          Alcotest.test_case "writeback dirty only" `Quick
            test_generic_eviction_writeback_dirty_only;
          Alcotest.test_case "protection batching" `Quick test_generic_protection_batching;
          Alcotest.test_case "pool refill" `Quick test_generic_pool_refill_from_source;
          Alcotest.test_case "out of frames" `Quick test_generic_out_of_frames;
          Alcotest.test_case "close reclaims" `Quick test_generic_close_reclaims;
          Alcotest.test_case "return to system" `Quick test_generic_return_to_system;
          Alcotest.test_case "lock in memory (2.2 protocol)" `Quick test_generic_lock_in_memory;
          Alcotest.test_case "cow fill" `Quick test_generic_cow_fill;
          Alcotest.test_case "anon swap roundtrip" `Quick test_generic_anon_swap_roundtrip;
          Alcotest.test_case "swap-out protocol (2.2)" `Quick test_generic_swap_out_protocol;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "preserves old images" `Quick test_checkpoint_preserves_old_images;
          Alcotest.test_case "end freezes generation" `Quick test_checkpoint_end_freezes;
          Alcotest.test_case "generations independent" `Quick
            test_checkpoint_generations_independent;
          Alcotest.test_case "one at a time" `Quick test_checkpoint_one_at_a_time;
          Alcotest.test_case "reads do not fault" `Quick test_checkpoint_reads_do_not_fault;
        ] );
      ( "compressed",
        [
          Alcotest.test_case "roundtrip beats disk" `Quick test_compressed_roundtrip_beats_disk;
          Alcotest.test_case "budget spills to disk" `Quick test_compressed_budget_spills_to_disk;
        ] );
      ( "default-ucds",
        [
          Alcotest.test_case "16KB append batching" `Quick test_ucds_append_batching;
          Alcotest.test_case "preload makes reads free" `Quick
            test_ucds_preload_then_reads_are_free;
          Alcotest.test_case "open is cache hit" `Quick test_ucds_open_is_cache_hit;
          Alcotest.test_case "close keeps cached" `Quick test_ucds_close_keeps_cached_and_counts;
          Alcotest.test_case "flush writes dirty" `Quick test_ucds_flush_writes_dirty;
          Alcotest.test_case "heap minimal fault" `Quick test_ucds_heap_minimal_fault;
        ] );
      ( "dbms",
        [
          Alcotest.test_case "relation pinned" `Quick test_dbms_relation_pinned_resident;
          Alcotest.test_case "index lifecycle" `Quick test_dbms_index_lifecycle;
          Alcotest.test_case "load from disk" `Quick test_dbms_load_from_disk_faults;
          Alcotest.test_case "lru eviction" `Quick test_dbms_lru_eviction;
        ] );
      ( "prefetch",
        [
          Alcotest.test_case "absorbs in-flight fault" `Quick test_prefetch_absorbs_fault;
          Alcotest.test_case "demand fill" `Quick test_prefetch_demand_fill_without_prefetch;
          Alcotest.test_case "discard no writeback" `Quick test_prefetch_discard_no_writeback;
          Alcotest.test_case "idempotent" `Quick test_prefetch_idempotent;
        ] );
      ( "gc",
        [
          Alcotest.test_case "discard skips writeback" `Quick test_gc_discard_skips_writeback;
          Alcotest.test_case "conventional eviction writes" `Quick
            test_gc_conventional_eviction_writes;
          Alcotest.test_case "garbage refault fresh" `Quick test_gc_garbage_refault_is_fresh;
          Alcotest.test_case "adaptive frequency" `Quick test_gc_adaptive_frequency;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_faulting_clients;
          Alcotest.test_case "same-page race" `Quick test_concurrent_same_page_faults;
          Alcotest.test_case "failing handler recovers" `Quick
            test_failing_handler_leaves_kernel_consistent;
          Alcotest.test_case "pool exhaustion recovers" `Quick test_pool_exhaustion_recovers;
        ] );
      ( "dsm",
        [
          Alcotest.test_case "write then remote read" `Quick test_dsm_write_then_remote_read;
          Alcotest.test_case "write invalidates sharers" `Quick test_dsm_write_invalidates_sharers;
          Alcotest.test_case "local reuse free" `Quick test_dsm_local_reuse_free;
          Alcotest.test_case "upgrade in place" `Quick test_dsm_upgrade_in_place;
          Alcotest.test_case "remote fetch costs network" `Quick
            test_dsm_remote_fetch_costs_network;
          Alcotest.test_case "ping-pong counts" `Quick test_dsm_ping_pong_counts;
          Alcotest.test_case "frame conservation" `Quick test_dsm_frame_conservation;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "matches page color" `Quick test_coloring_matches_page_color;
          Alcotest.test_case "fallback on exhaustion" `Quick
            test_coloring_falls_back_when_color_exhausted;
        ] );
    ]
