module Engine = Sim_engine
module Resource = Sim_sync.Resource

type params = {
  seek_us : float;
  half_rotation_us : float;
  us_per_kb : float;
}

let default_params = { seek_us = 12_000.0; half_rotation_us = 4_150.0; us_per_kb = 666.0 }

type op = [ `Read | `Write ]

exception Io_error of { op : op; block : int option }

type t = {
  params : params;
  arm : Resource.t;
  mutable chaos : Sim_chaos.t option;
  mutable metrics : Sim_metrics.t option;
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable read_errors : int;
  mutable write_errors : int;
  mutable injected_delay_us : float;
}

let create engine ?(params = default_params) () =
  {
    params;
    arm = Resource.create engine ~capacity:1;
    chaos = None;
    metrics = None;
    reads = 0;
    writes = 0;
    bytes_read = 0;
    bytes_written = 0;
    read_errors = 0;
    write_errors = 0;
    injected_delay_us = 0.0;
  }

let set_chaos t plan = t.chaos <- plan
let chaos t = t.chaos
let set_metrics t m = t.metrics <- m
let metrics t = t.metrics

let access_time_us t ~bytes =
  t.params.seek_us +. t.params.half_rotation_us
  +. (float_of_int bytes /. 1024.0 *. t.params.us_per_kb)

(* The error, if any, surfaces after the arm has done the work: a failed
   transfer costs full service time (plus any injected burst), exactly the
   retry-storm convoy a real disk produces. *)
(* Latency observation covers queueing on the arm plus service plus any
   injected burst, including transfers that end in an injected error (they
   cost real time too). Only measurable inside a simulation process. *)
let observing t =
  match t.metrics with
  | Some m when Sim_metrics.enabled m -> (
      match Engine.time () with
      | t0 -> Some (m, t0)
      | exception Engine.Not_in_process -> None)
  | _ -> None

let transfer t ~(op : op) ~block ~bytes =
  let obs = observing t in
  Fun.protect
    ~finally:(fun () ->
      match obs with
      | None -> ()
      | Some (m, t0) ->
          let kind = match op with `Read -> "disk.read" | `Write -> "disk.write" in
          Sim_metrics.observe m ~kind (Engine.time () -. t0))
  @@ fun () ->
  Resource.use t.arm (fun () ->
      Engine.delay (access_time_us t ~bytes);
      match t.chaos with
      | None -> ()
      | Some plan -> (
          let site =
            match op with `Read -> Sim_chaos.Disk_read | `Write -> Sim_chaos.Disk_write
          in
          match Sim_chaos.decide plan site ~now:(Engine.time ()) ~block with
          | Sim_chaos.Verdict.Pass -> ()
          | Sim_chaos.Verdict.Delay us ->
              t.injected_delay_us <- t.injected_delay_us +. us;
              Engine.delay us
          | Sim_chaos.Verdict.Transient_failure | Sim_chaos.Verdict.Permanent_failure ->
              (match op with
              | `Read -> t.read_errors <- t.read_errors + 1
              | `Write -> t.write_errors <- t.write_errors + 1);
              raise (Io_error { op; block })))

let read_op t ~block ~bytes =
  t.reads <- t.reads + 1;
  t.bytes_read <- t.bytes_read + bytes;
  transfer t ~op:`Read ~block ~bytes

let write_op t ~block ~bytes =
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + bytes;
  transfer t ~op:`Write ~block ~bytes

let read t ~bytes = read_op t ~block:None ~bytes
let write t ~bytes = write_op t ~block:None ~bytes
let read_at t ~block ~bytes = read_op t ~block:(Some block) ~bytes
let write_at t ~block ~bytes = write_op t ~block:(Some block) ~bytes

let reads t = t.reads
let writes t = t.writes
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let read_errors t = t.read_errors
let write_errors t = t.write_errors
let injected_delay_us t = t.injected_delay_us
let busy_fraction t = Resource.utilisation t.arm
