lib/managers/mgr_prefetch.ml: Epcm_flags Epcm_kernel Epcm_manager Epcm_segment Fun Hashtbl Hw_cost Hw_machine Mgr_backing Mgr_free_pages Mgr_generic Option Printf Sim_engine Sim_sync
