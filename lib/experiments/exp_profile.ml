module K = Epcm_kernel
module Engine = Sim_engine
module Seg = Epcm_segment
module Metrics = Sim_metrics
module J = Sim_json

let schema_version = "vpp-profile/1"

type row = {
  p_label : string;
  p_pinned_us : float;
  p_measured_us : float;
  p_spans : (string * int * float) list;
}

type result = {
  rows : row list;
  latency : (string * Metrics.Hist.t) list;
  checks : Exp_report.check list;
}

let span_sum row = List.fold_left (fun acc (_, _, us) -> acc +. us) 0.0 row.p_spans

(* ------------------------------------------------------------------ *)
(* Table 1 paths, re-run with profiling on                             *)
(* ------------------------------------------------------------------ *)

let timed machine f =
  let result = ref 0.0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      let t0 = Engine.time () in
      f ();
      result := Engine.time () -. t0);
  Engine.run machine.Hw_machine.engine;
  !result

(* Same harnesses as Exp_table1: a V++ kernel with a warm in-/out-of-process
   manager pool, and a plain Ultrix UVM. Setup runs unprofiled; profiling is
   switched on (and the sink reset) only around the measured operation, so
   the recorded spans decompose exactly the pinned identity. *)
let vpp_setup ~mode () =
  let machine = Hw_machine.create ~memory_bytes:(4 * 1024 * 1024) () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  let backing = Mgr_backing.memory () in
  let gen = Mgr_generic.create kernel ~name:"profile-mgr" ~mode ~backing ~source () in
  let seg =
    Mgr_generic.create_segment gen ~name:"profile-heap" ~pages:64 ~kind:Mgr_generic.Anon ()
  in
  Mgr_generic.ensure_pool gen ~count:16;
  (machine, kernel, seg)

let ultrix_setup () =
  let machine = Hw_machine.create ~memory_bytes:(4 * 1024 * 1024) () in
  let uvm = Uvm.create machine in
  let pid = Uvm.create_process uvm ~name:"profile" in
  (machine, uvm, pid)

let profile ~label ~pinned ~machine op =
  let m = Hw_machine.metrics machine in
  Hw_machine.set_profiling machine true;
  Metrics.reset m;
  let measured = timed machine op in
  { p_label = label; p_pinned_us = pinned; p_measured_us = measured; p_spans = Metrics.charges m }

let table1_rows () =
  let c = Hw_cost.decstation_5000_200 in
  let vpp_fault ~mode ~label ~pinned =
    let machine, kernel, seg = vpp_setup ~mode () in
    profile ~label ~pinned ~machine (fun () ->
        K.touch kernel ~space:seg ~page:0 ~access:Epcm_manager.Write)
  in
  let vpp_uio access ~label ~pinned =
    let machine, kernel, seg = vpp_setup ~mode:`In_process () in
    K.touch kernel ~space:seg ~page:0 ~access:Epcm_manager.Write;
    profile ~label ~pinned ~machine (fun () ->
        match access with
        | `Read -> ignore (K.uio_read kernel ~seg ~page:0)
        | `Write -> K.uio_write kernel ~seg ~page:0 (Hw_page_data.of_string "profile"))
  in
  let ultrix_fault ~label ~pinned =
    let machine, uvm, pid = ultrix_setup () in
    profile ~label ~pinned ~machine (fun () -> Uvm.touch uvm pid ~vpn:0 ~access:Uvm.Write)
  in
  let ultrix_reprotect ~label ~pinned =
    let machine, uvm, pid = ultrix_setup () in
    Uvm.touch uvm pid ~vpn:0 ~access:Uvm.Write;
    Uvm.protect uvm pid ~vpn:0;
    profile ~label ~pinned ~machine (fun () -> Uvm.touch_protected uvm pid ~vpn:0)
  in
  let ultrix_io access ~label ~pinned =
    let machine, uvm, _ = ultrix_setup () in
    let fd = Uvm.open_file uvm ~file_id:1 ~size_kb:64 in
    Uvm.preload uvm fd;
    profile ~label ~pinned ~machine (fun () ->
        match access with
        | `Read -> Uvm.read uvm fd ~offset_kb:0 ~kb:4
        | `Write -> Uvm.write uvm fd ~offset_kb:0 ~kb:4)
  in
  [
    vpp_fault ~mode:`In_process ~label:"vpp_minimal_fault_in_process"
      ~pinned:(Hw_cost.vpp_minimal_fault_in_process c);
    vpp_fault ~mode:`Separate_process ~label:"vpp_minimal_fault_via_manager"
      ~pinned:(Hw_cost.vpp_minimal_fault_via_manager c);
    ultrix_fault ~label:"ultrix_minimal_fault" ~pinned:(Hw_cost.ultrix_minimal_fault c);
    ultrix_reprotect ~label:"ultrix_user_reprotect_fault"
      ~pinned:(Hw_cost.ultrix_user_reprotect_fault c);
    vpp_uio `Read ~label:"vpp_read_4kb" ~pinned:(Hw_cost.vpp_read_4kb c);
    vpp_uio `Write ~label:"vpp_write_4kb" ~pinned:(Hw_cost.vpp_write_4kb c);
    ultrix_io `Read ~label:"ultrix_read_4kb" ~pinned:(Hw_cost.ultrix_read_4kb c);
    ultrix_io `Write ~label:"ultrix_write_4kb" ~pinned:(Hw_cost.ultrix_write_4kb c);
  ]

(* ------------------------------------------------------------------ *)
(* Latency histograms from a deterministic demand-paging workload      *)
(* ------------------------------------------------------------------ *)

(* Cold file-backed faults (disk reads through the backing store),
   protection faults, UIO traffic and WAL group commits: enough to
   populate every operation kind the instrumentation knows about, with no
   randomness anywhere. *)
let latency_workload () =
  let machine = Hw_machine.create ~memory_bytes:(1024 * 1024) () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  let backing =
    Mgr_backing.disk machine.Hw_machine.disk ~page_bytes:(Hw_machine.page_size machine)
  in
  let gen = Mgr_generic.create kernel ~name:"profile-paging" ~mode:`In_process ~backing ~source () in
  let seg =
    Mgr_generic.create_segment gen ~name:"profile-file" ~pages:24
      ~kind:(Mgr_generic.File { file_id = 7 }) ~high_water:24 ()
  in
  let wal = Db_wal.create machine.Hw_machine.disk () in
  Hw_machine.set_profiling machine true;
  Engine.spawn machine.Hw_machine.engine (fun () ->
      (* Cold faults: each fills from the backing disk. *)
      for page = 0 to 23 do
        K.touch kernel ~space:seg ~page ~access:Epcm_manager.Read
      done;
      (* Protection faults: reprotect a window, then re-touch it. *)
      K.modify_page_flags kernel ~seg ~page:0 ~count:8 ~set_flags:Epcm_flags.no_access ();
      for page = 0 to 7 do
        K.touch kernel ~space:seg ~page ~access:Epcm_manager.Read
      done;
      (* UIO traffic over resident pages. *)
      for page = 0 to 7 do
        ignore (K.uio_read kernel ~seg ~page)
      done;
      K.uio_write kernel ~seg ~page:0 (Hw_page_data.of_string "profile");
      (* WAL group commits of growing batch sizes. *)
      for batch = 1 to 6 do
        for _ = 1 to batch do
          ignore (Db_wal.append wal)
        done;
        Db_wal.commit wal ~lsn:(Db_wal.appended wal)
      done);
  Engine.run machine.Hw_machine.engine;
  let m = Hw_machine.metrics machine in
  List.filter_map
    (fun kind -> Option.map (fun h -> (kind, h)) (Metrics.hist m ~kind))
    (Metrics.kinds m)

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let run () =
  let rows = table1_rows () in
  let latency = latency_workload () in
  let row_checks =
    List.concat_map
      (fun row ->
        let sum = span_sum row in
        [
          Exp_report.check
            ~what:(Printf.sprintf "%s spans sum to the pinned identity" row.p_label)
            ~pass:(Float.abs (sum -. row.p_pinned_us) < 1e-6)
            ~detail:(Printf.sprintf "sum %.1f us, pinned %.1f us" sum row.p_pinned_us);
          Exp_report.check
            ~what:(Printf.sprintf "%s measured time equals the pinned identity" row.p_label)
            ~pass:(Float.abs (row.p_measured_us -. row.p_pinned_us) < 1e-6)
            ~detail:
              (Printf.sprintf "measured %.1f us, pinned %.1f us" row.p_measured_us
                 row.p_pinned_us);
        ])
      rows
  in
  let latency_checks =
    [
      Exp_report.check ~what:"paging workload populates fault and disk histograms"
        ~pass:
          (List.for_all
             (fun kind -> List.mem_assoc kind latency)
             [ "kernel.fault"; "disk.read"; "disk.write"; "backing.read"; "wal.flush" ])
        ~detail:(String.concat ", " (List.map fst latency));
      Exp_report.check ~what:"histogram quantiles are ordered p50 <= p95 <= p99 <= max"
        ~pass:
          (List.for_all
             (fun (_, h) ->
               Metrics.Hist.p50 h <= Metrics.Hist.p95 h
               && Metrics.Hist.p95 h <= Metrics.Hist.p99 h
               && Metrics.Hist.p99 h <= Metrics.Hist.max_value h)
             latency)
        ~detail:(Printf.sprintf "%d kinds" (List.length latency));
    ]
  in
  { rows; latency; checks = row_checks @ latency_checks }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Profile: Table 1 cost attribution (microseconds)\n";
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "\n%s: pinned %.1f, measured %.1f, span sum %.1f\n" row.p_label
           row.p_pinned_us row.p_measured_us (span_sum row));
      List.iter
        (fun (path, n, us) ->
          Buffer.add_string buf (Printf.sprintf "  %-44s %3dx %8.1f us\n" path n us))
        row.p_spans)
    r.rows;
  Buffer.add_string buf "\nLatency histograms (deterministic paging workload):\n";
  Buffer.add_string buf
    (Exp_report.fmt_table
       ~header:[ "kind"; "count"; "p50 (us)"; "p95 (us)"; "p99 (us)"; "max (us)" ]
       ~rows:
         (List.map
            (fun (kind, h) ->
              [
                kind;
                string_of_int (Metrics.Hist.count h);
                Exp_report.us (Metrics.Hist.p50 h);
                Exp_report.us (Metrics.Hist.p95 h);
                Exp_report.us (Metrics.Hist.p99 h);
                Exp_report.us (Metrics.Hist.max_value h);
              ])
            r.latency));
  Buffer.add_string buf "\nShape checks:\n";
  Buffer.add_string buf (Exp_report.render_checks r.checks);
  Buffer.contents buf

let to_json r =
  J.Obj
    [
      ("schema", J.Str schema_version);
      ( "table1_decomposition",
        J.List
          (List.map
             (fun row ->
               J.Obj
                 [
                   ("row", J.Str row.p_label);
                   ("pinned_us", J.Num row.p_pinned_us);
                   ("measured_us", J.Num row.p_measured_us);
                   ("span_sum_us", J.Num (span_sum row));
                   ( "spans",
                     J.List
                       (List.map
                          (fun (path, n, us) ->
                            J.Obj
                              [
                                ("path", J.Str path);
                                ("count", J.Num (float_of_int n));
                                ("us", J.Num us);
                              ])
                          row.p_spans) );
                 ])
             r.rows) );
      ( "latency",
        J.List
          (List.map
             (fun (kind, h) ->
               match Metrics.hist_to_json h with
               | J.Obj fields -> J.Obj (("kind", J.Str kind) :: fields)
               | other -> other)
             r.latency) );
      ( "checks",
        J.List
          (List.map
             (fun (c : Exp_report.check) ->
               J.Obj
                 [
                   ("what", J.Str c.Exp_report.what);
                   ("pass", J.Bool c.Exp_report.pass);
                   ("detail", J.Str c.Exp_report.detail);
                 ])
             r.checks) );
    ]

let render_json r = J.to_string ~indent:true (to_json r) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

let validate_json json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let require what = function Some v -> Ok v | None -> Error ("missing or ill-typed " ^ what) in
  let* schema = require "schema" (Option.bind (J.member "schema" json) J.to_str) in
  let* () =
    if schema = schema_version then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" schema schema_version)
  in
  let* rows =
    require "table1_decomposition" (Option.bind (J.member "table1_decomposition" json) J.to_list)
  in
  let* () = if List.length rows = 8 then Ok () else Error "expected 8 table-1 rows" in
  let* () =
    List.fold_left
      (fun acc row ->
        let* () = acc in
        let* label = require "row label" (Option.bind (J.member "row" row) J.to_str) in
        let* pinned = require "pinned_us" (Option.bind (J.member "pinned_us" row) J.to_float) in
        let* spans = require "spans" (Option.bind (J.member "spans" row) J.to_list) in
        let* sum =
          List.fold_left
            (fun acc span ->
              let* acc = acc in
              let* us = require "span us" (Option.bind (J.member "us" span) J.to_float) in
              let* _ = require "span path" (Option.bind (J.member "path" span) J.to_str) in
              Ok (acc +. us))
            (Ok 0.0) spans
        in
        if Float.abs (sum -. pinned) < 1e-6 then Ok ()
        else Error (Printf.sprintf "%s: spans sum to %.3f, pinned %.3f" label sum pinned))
      (Ok ()) rows
  in
  let* hists = require "latency" (Option.bind (J.member "latency" json) J.to_list) in
  let* () =
    List.fold_left
      (fun acc h ->
        let* () = acc in
        let* kind = require "latency kind" (Option.bind (J.member "kind" h) J.to_str) in
        let field name = require (kind ^ " " ^ name) (Option.bind (J.member name h) J.to_float) in
        let* _count = field "count" in
        let* p50 = field "p50_us" in
        let* p95 = field "p95_us" in
        let* p99 = field "p99_us" in
        let* mx = field "max_us" in
        if p50 <= p95 && p95 <= p99 && p99 <= mx then Ok ()
        else Error (kind ^ ": quantiles out of order"))
      (Ok ()) hists
  in
  let* checks = require "checks" (Option.bind (J.member "checks" json) J.to_list) in
  List.fold_left
    (fun acc c ->
      let* () = acc in
      match Option.bind (J.member "pass" c) (function J.Bool b -> Some b | _ -> None) with
      | Some true -> Ok ()
      | Some false ->
          Error
            (Printf.sprintf "failed check: %s"
               (Option.value ~default:"?" (Option.bind (J.member "what" c) J.to_str)))
      | None -> Error "check without a pass field")
    (Ok ()) checks
