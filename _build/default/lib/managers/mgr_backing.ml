type latency = No_latency | Disk of { device : Hw_disk.t; page_bytes : int }

type t = {
  latency : latency;
  table : (int * int, Hw_page_data.t) Hashtbl.t;
  mutable reads : int;
  mutable writes : int;
}

let memory () = { latency = No_latency; table = Hashtbl.create 256; reads = 0; writes = 0 }

let disk device ~page_bytes =
  { latency = Disk { device; page_bytes }; table = Hashtbl.create 256; reads = 0; writes = 0 }

let read_block t ~file ~block =
  t.reads <- t.reads + 1;
  (match t.latency with
  | No_latency -> ()
  | Disk { device; page_bytes } -> Hw_disk.read device ~bytes:page_bytes);
  match Hashtbl.find_opt t.table (file, block) with
  | Some d -> d
  | None -> Hw_page_data.block ~file ~block ~version:0

let write_block t ~file ~block data =
  t.writes <- t.writes + 1;
  (match t.latency with
  | No_latency -> ()
  | Disk { device; page_bytes } -> Hw_disk.write device ~bytes:page_bytes);
  Hashtbl.replace t.table (file, block) data

let has_block t ~file ~block = Hashtbl.mem t.table (file, block)

let reads t = t.reads
let writes t = t.writes
