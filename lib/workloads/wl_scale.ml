module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module G = Mgr_generic
module Engine = Sim_engine

type config = {
  c_name : string;
  c_memory_bytes : int;
  c_page_size : int;
}

type result = {
  r_name : string;
  r_memory_bytes : int;
  r_frames : int;
  r_touches : int;
  r_faults : int;
  r_migrate_calls : int;
  r_migrated_pages : int;
  r_events : int;
  r_sim_us : float;
  r_conserved : bool;
}

let config ~name ~memory_bytes = { c_name = name; c_memory_bytes = memory_bytes; c_page_size = 4096 }

let size_8mb = config ~name:"8mb" ~memory_bytes:(8 * 1024 * 1024)
let size_512mb = config ~name:"512mb" ~memory_bytes:(512 * 1024 * 1024)
let size_4gb = config ~name:"4gb" ~memory_bytes:(4 * 1024 * 1024 * 1024)
let standard_sizes = [ size_8mb; size_512mb; size_4gb ]

(* The experiment-harness SPCM stand-in: grant frames straight out of the
   initial segment, scanning it monotonically (O(frames) across the whole
   run, not per call). [budget] caps total grants so the churn phase runs
   under genuine memory pressure at every machine size. *)
let capped_source kernel ~budget =
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let granted_total = ref 0 in
  fun ~dst ~dst_page ~count ->
    let init_seg = K.segment kernel init in
    let count = min count (max 0 (budget - !granted_total)) in
    let granted = ref 0 in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    granted_total := !granted_total + !granted;
    !granted

type stream_result = {
  s_name : string;
  s_memory_bytes : int;
  s_frames : int;
  s_superpages : bool;
  s_run : int;
  s_stream_pages : int;
  s_touches : int;
  s_faults : int;
  s_migrate_calls : int;
  s_migrated_pages : int;
  s_sp_promotions : int;
  s_sp_demotions : int;
  s_events : int;
  s_sim_us : float;
  s_conserved : bool;
}

let run_stream ?(superpages = false) cfg =
  let machine = Hw_machine.create ~memory_bytes:cfg.c_memory_bytes ~page_size:cfg.c_page_size () in
  let kernel = K.create machine in
  let frames = Hw_machine.n_frames machine in
  let run = K.super_pages kernel in
  (* Half of memory, rounded to whole superpage regions so both legs
     stream the same page count. *)
  let stream_pages = max run (frames / 2 / run * run) in
  let slack = run in
  let backing = Mgr_backing.memory () in
  let sp_source =
    (* One whole aligned run per request, scanned monotonically — the
       SPCM stand-in for superpage-backed streaming. *)
    let cursor = ref 0 in
    fun ~dst ~dst_page ->
      match K.grant_superpage_run kernel ~dst ~dst_page ~start:!cursor with
      | Some base ->
          cursor := base + run;
          run
      | None -> 0
  in
  let pager =
    G.create kernel ~name:"stream-pager" ~mode:`In_process ~backing
      ~source:(capped_source kernel ~budget:(stream_pages + slack))
      ?sp_source:(if superpages then Some sp_source else None)
      ~pool_capacity:(stream_pages + slack) ~refill_batch:256 ()
  in
  let seg =
    G.create_segment pager ~name:"stream-heap" ~pages:stream_pages ~kind:G.Anon ~superpages ()
  in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      (* Phase 1: cold sequential stream. With superpages on, the first
         touch of each aligned region pulls one whole run in a single
         MigratePages and the region promotes — the remaining 511 touches
         never fault. *)
      for page = 0 to stream_pages - 1 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Write
      done;
      (* Phase 2: warm rescan — the translation fast path; promoted
         regions serve whole runs from one mapping entry. *)
      for page = 0 to stream_pages - 1 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Read
      done;
      (* Phase 3: evict part of the first region — on the superpage leg
         this splits the 2 MB mapping back to 4 KB — then re-touch it,
         refaulting through the ordinary pool path. *)
      let quarter = max 1 (run / 4) in
      K.release_frames kernel ~seg ~page:0 ~count:quarter;
      for page = 0 to quarter - 1 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Write
      done);
  Engine.run machine.Hw_machine.engine;
  let stats = K.stats kernel in
  let faults = stats.K.faults_missing + stats.K.faults_protection + stats.K.faults_cow in
  {
    s_name = cfg.c_name;
    s_memory_bytes = cfg.c_memory_bytes;
    s_frames = frames;
    s_superpages = superpages;
    s_run = run;
    s_stream_pages = stream_pages;
    s_touches = stats.K.touches;
    s_faults = faults;
    s_migrate_calls = stats.K.migrate_calls;
    s_migrated_pages = stats.K.migrated_pages;
    s_sp_promotions = stats.K.sp_promotions;
    s_sp_demotions = stats.K.sp_demotions;
    s_events = Engine.events_executed machine.Hw_machine.engine;
    s_sim_us = Hw_machine.now machine;
    s_conserved =
      K.frame_owner_total kernel = frames
      && K.frame_owner_audit kernel = K.frame_owner_audit_scan kernel
      && Engine.live_processes machine.Hw_machine.engine = 0;
  }

let run cfg =
  let machine = Hw_machine.create ~memory_bytes:cfg.c_memory_bytes ~page_size:cfg.c_page_size () in
  let kernel = K.create machine in
  let frames = Hw_machine.n_frames machine in
  (* Working set: half of memory demand-paged, an eighth churned under
     pressure, migrate ping-pong over a quarter. All sizes scale linearly
     with the machine so ops/sec is comparable across sizes. *)
  let seg_pages = max 16 (frames / 2) in
  let churn_pages = max 16 (frames / 8) in
  let churn_budget = max 12 (churn_pages * 3 / 4) in
  let migrate_batch = 64 in
  let backing = Mgr_backing.memory () in
  (* Phase A/B manager: ample frames — pure demand-paging cost. *)
  let pager =
    G.create kernel ~name:"scale-pager" ~mode:`In_process ~backing
      ~source:(capped_source kernel ~budget:(seg_pages + (migrate_batch * 2)))
      ~pool_capacity:(seg_pages + (migrate_batch * 2))
      ~refill_batch:256 ()
  in
  let seg = G.create_segment pager ~name:"scale-heap" ~pages:seg_pages ~kind:G.Anon () in
  (* Migrate target: unmanaged staging segment, same page size. *)
  let stage = K.create_segment kernel ~name:"scale-stage" ~pages:migrate_batch () in
  (* Churn manager: capped source, small pool — touching more pages than
     the budget forces clock reclaim and writeback at every size. *)
  let churn_backing = Mgr_backing.memory () in
  let churner =
    G.create kernel ~name:"scale-churner" ~mode:`In_process ~backing:churn_backing
      ~source:(capped_source kernel ~budget:churn_budget)
      ~pool_capacity:churn_budget ~refill_batch:64 ~reclaim_batch:32 ()
  in
  let churn =
    G.create_segment churner ~name:"scale-churn" ~pages:churn_pages
      ~kind:(G.File { file_id = 11 }) ~high_water:churn_pages ()
  in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      (* Phase A: cold write-touch every page — missing faults, pool
         refills, frame migrations out of the initial segment. *)
      for page = 0 to seg_pages - 1 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Write
      done;
      (* Phase B: two warm scans — the translation fast path. *)
      for _ = 1 to 2 do
        for page = 0 to seg_pages - 1 do
          K.touch kernel ~space:seg ~page ~access:Mgr.Read
        done
      done;
      (* Phase C: batch migrate ping-pong over the first quarter of the
         heap — the MigratePages throughput axis. *)
      let windows = max 1 (seg_pages / 4 / migrate_batch) in
      for w = 0 to windows - 1 do
        let base = w * migrate_batch in
        K.migrate_pages kernel ~src:seg ~dst:stage ~src_page:base ~dst_page:0
          ~count:migrate_batch ();
        K.migrate_pages kernel ~src:stage ~dst:seg ~src_page:0 ~dst_page:base
          ~count:migrate_batch ()
      done;
      (* Phase D: churn under pressure — more pages than the frame budget,
         two rounds of mixed reads and writes, forcing eviction and
         writeback through the manager's clock. *)
      for round = 0 to 1 do
        for page = 0 to churn_pages - 1 do
          let access = if (page + round) mod 2 = 0 then Mgr.Write else Mgr.Read in
          K.touch kernel ~space:churn ~page ~access
        done
      done);
  Engine.run machine.Hw_machine.engine;
  let stats = K.stats kernel in
  let faults =
    stats.K.faults_missing + stats.K.faults_protection + stats.K.faults_cow
  in
  {
    r_name = cfg.c_name;
    r_memory_bytes = cfg.c_memory_bytes;
    r_frames = frames;
    r_touches = stats.K.touches;
    r_faults = faults;
    r_migrate_calls = stats.K.migrate_calls;
    r_migrated_pages = stats.K.migrated_pages;
    r_events = Engine.events_executed machine.Hw_machine.engine;
    r_sim_us = Hw_machine.now machine;
    r_conserved =
      K.frame_owner_total kernel = frames
      && K.frame_owner_audit kernel = K.frame_owner_audit_scan kernel
      && Engine.live_processes machine.Hw_machine.engine = 0;
  }
