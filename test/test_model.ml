(* Model-based differential testing of the epcm kernel.

   [Model] below is a pure reference implementation — association lists
   and functional updates, no hashtables, no Hw state, no mutation — of
   the kernel's segment / binding / migrate / flag semantics:

   - segment lifecycle: create, grow, destroy (frames return to the
     initial segment, first free slot at or cyclically after the frame's
     own index), the initial segment holding every frame at boot;
   - MigratePages with set/clear flag masks, including the partial
     application the kernel exhibits when a mid-range page errors
     (earlier pages stay migrated);
   - ModifyPageFlags ([diff (union before set) clear]);
   - ReleaseFrames (resident pages only, non-resident skipped);
   - zero_pages error behaviour (No_frame on the first absent page);
   - bind_region validation (initial-segment check, range checks on both
     sides, overlap) and binding resolution (resolve_slot chain, depth
     limit, private page shadowing a binding).

   Deliberately out of scope — covered by test_kernel / test_managers:
   managers and fault delivery, copy-on-write materialisation, the UIO
   interface, translation caches, and all cost accounting. The model has
   no notion of time; the kernel side runs outside a simulation process
   so charges no-op, making the two directly comparable.

   The differential property drives both the model and a real
   [Epcm_kernel] through the same random operation sequences (>= 500
   sequences per run) and compares the full observable state after every
   single step: result or error of the operation (constructor and
   payload), per-segment liveness, length, per-page frame and flags,
   resolve_slot on every page of every live segment, and frame
   conservation on both sides. *)

module K = Epcm_kernel
module Seg = Epcm_segment
module Flags = Epcm_flags
module Machine = Hw_machine

let n_frames = 32
let bogus_sid = 999

(* ------------------------------------------------------------------ *)
(* The pure model                                                      *)
(* ------------------------------------------------------------------ *)

module Model = struct
  type mpage = { pframe : int option; pflags : Flags.t }

  type mbind = { b_at : int; b_len : int; b_target : int; b_target_page : int }

  type mseg = {
    s_alive : bool;
    s_len : int;
    s_pages : (int * mpage) list;  (* page index -> state *)
    s_binds : mbind list;  (* newest first, like the kernel *)
  }

  type t = {
    segs : (int * mseg) list;  (* segment id -> segment, dead ones kept *)
    next_id : int;
    nframes : int;
  }

  let empty_page = { pframe = None; pflags = Flags.empty }

  let init n =
    let pages = List.init n (fun i -> (i, { pframe = Some i; pflags = Flags.empty })) in
    {
      segs = [ (0, { s_alive = true; s_len = n; s_pages = pages; s_binds = [] }) ];
      next_id = 1;
      nframes = n;
    }

  let seg_ids m = List.sort compare (List.map fst m.segs)
  let seg_exn m sid = List.assoc sid m.segs
  let page_exn s i = List.assoc i s.s_pages

  let set_page s i p = { s with s_pages = (i, p) :: List.remove_assoc i s.s_pages }

  let update_seg m sid f =
    { m with segs = (sid, f (seg_exn m sid)) :: List.remove_assoc sid m.segs }

  (* Mirrors [Epcm_kernel.segment]. *)
  let lookup m sid =
    match List.assoc_opt sid m.segs with
    | None -> Error (K.No_such_segment sid)
    | Some s when not s.s_alive -> Error (K.Dead_segment sid)
    | Some s -> Ok s

  (* Mirrors [Epcm_kernel.check_range]. *)
  let check_range sid s page count =
    if count < 0 || page < 0 || page + count > s.s_len then
      Error (K.Page_out_of_range { seg = sid; page; length = s.s_len })
    else Ok ()

  (* Mirrors [return_frame_to_initial]: first free initial slot at or
     cyclically after the frame's own index. *)
  let return_frame m f =
    let init_seg = seg_exn m 0 in
    let n = init_seg.s_len in
    let rec find i tried =
      if tried >= n then failwith "model: initial segment full"
      else if (page_exn init_seg i).pframe = None then i
      else find ((i + 1) mod n) (tried + 1)
    in
    let idx = find (f mod n) 0 in
    update_seg m 0 (fun s -> set_page s idx { pframe = Some f; pflags = Flags.empty })

  let create m pages =
    let sid = m.next_id in
    let pages_l = List.init pages (fun i -> (i, empty_page)) in
    let seg = { s_alive = true; s_len = pages; s_pages = pages_l; s_binds = [] } in
    ({ m with segs = (sid, seg) :: m.segs; next_id = sid + 1 }, Ok ())

  let destroy m sid =
    if sid = 0 then (m, Error K.Initial_segment_operation)
    else
      match lookup m sid with
      | Error e -> (m, Error e)
      | Ok s ->
          (* Frames go back to initial in ascending page order. *)
          let m =
            List.fold_left
              (fun m i ->
                let s = seg_exn m sid in
                match (page_exn s i).pframe with
                | None -> m
                | Some f ->
                    let m = update_seg m sid (fun s -> set_page s i empty_page) in
                    return_frame m f)
              m
              (List.init s.s_len (fun i -> i))
          in
          (update_seg m sid (fun s -> { s with s_alive = false }), Ok ())

  let grow m sid pages =
    match lookup m sid with
    | Error e -> (m, Error e)
    | Ok s ->
        let fresh = List.init pages (fun i -> (s.s_len + i, empty_page)) in
        ( update_seg m sid (fun s -> { s with s_len = s.s_len + pages; s_pages = s.s_pages @ fresh }),
          Ok () )

  let migrate m ~src ~dst ~src_page ~dst_page ~count ~set ~clear =
    match lookup m src with
    | Error e -> (m, Error e)
    | Ok ssrc -> (
        match lookup m dst with
        | Error e -> (m, Error e)
        | Ok sdst -> (
            (* All model segments share the machine page size, so the kernel's
               Page_size_mismatch check cannot fire here. *)
            match check_range src ssrc src_page count with
            | Error e -> (m, Error e)
            | Ok () -> (
                match check_range dst sdst dst_page count with
                | Error e -> (m, Error e)
                | Ok () ->
                    (* Per-page, with the kernel's partial application: a
                       mid-range error leaves the earlier pages migrated. *)
                    let rec loop m i =
                      if i >= count then (m, Ok ())
                      else
                        let sp = page_exn (seg_exn m src) (src_page + i) in
                        match sp.pframe with
                        | None -> (m, Error (K.No_frame { seg = src; page = src_page + i }))
                        | Some f ->
                            let dp = page_exn (seg_exn m dst) (dst_page + i) in
                            if dp.pframe <> None then
                              (m, Error (K.Frame_present { seg = dst; page = dst_page + i }))
                            else
                              let moved = Flags.diff (Flags.union sp.pflags set) clear in
                              let m =
                                update_seg m dst (fun s ->
                                    set_page s (dst_page + i) { pframe = Some f; pflags = moved })
                              in
                              let m =
                                update_seg m src (fun s -> set_page s (src_page + i) empty_page)
                              in
                              loop m (i + 1)
                    in
                    loop m 0)))

  let modify m ~seg ~page ~count ~set ~clear =
    match lookup m seg with
    | Error e -> (m, Error e)
    | Ok s -> (
        match check_range seg s page count with
        | Error e -> (m, Error e)
        | Ok () ->
            let m =
              List.fold_left
                (fun m i ->
                  update_seg m seg (fun s ->
                      let p = page_exn s i in
                      set_page s i
                        { p with pflags = Flags.diff (Flags.union p.pflags set) clear }))
                m
                (List.init count (fun i -> page + i))
            in
            (m, Ok ()))

  let bind m ~space ~at ~len ~target ~target_page =
    if space = 0 || target = 0 then (m, Error K.Initial_segment_operation)
    else
      match lookup m space with
      | Error e -> (m, Error e)
      | Ok sp -> (
          match lookup m target with
          | Error e -> (m, Error e)
          | Ok tg ->
              if len <= 0 || at < 0 || at + len > sp.s_len then
                (m, Error (K.Binding_out_of_range { seg = space; at; len }))
              else if target_page < 0 || target_page + len > tg.s_len then
                (m, Error (K.Binding_out_of_range { seg = target; at = target_page; len }))
              else if
                List.exists
                  (fun b -> at < b.b_at + b.b_len && b.b_at < at + len)
                  sp.s_binds
              then (m, Error (K.Binding_overlap { seg = space; at; len }))
              else
                ( update_seg m space (fun s ->
                      {
                        s with
                        s_binds =
                          { b_at = at; b_len = len; b_target = target; b_target_page = target_page }
                          :: s.s_binds;
                      }),
                  Ok () ))

  let release m ~seg ~page ~count =
    if seg = 0 then (m, Error K.Initial_segment_operation)
    else
      match lookup m seg with
      | Error e -> (m, Error e)
      | Ok s -> (
          match check_range seg s page count with
          | Error e -> (m, Error e)
          | Ok () ->
              let m =
                List.fold_left
                  (fun m i ->
                    let s = seg_exn m seg in
                    match (page_exn s i).pframe with
                    | None -> m
                    | Some f ->
                        let m = update_seg m seg (fun s -> set_page s i empty_page) in
                        return_frame m f)
                  m
                  (List.init count (fun i -> page + i))
              in
              (m, Ok ()))

  let zero m ~seg ~page ~count =
    match lookup m seg with
    | Error e -> (m, Error e)
    | Ok s -> (
        match check_range seg s page count with
        | Error e -> (m, Error e)
        | Ok () ->
            (* Zeroing touches frame contents only — nothing this model
               observes — so only the error behaviour matters: fail on the
               first absent page in the range. *)
            let rec scan i =
              if i >= count then Ok ()
              else
                match (page_exn s (page + i)).pframe with
                | None -> Error (K.No_frame { seg; page = page + i })
                | Some _ -> scan (i + 1)
            in
            (m, scan 0))

  (* Mirrors [resolve_chain] / [resolve_slot]: follow bindings from a slot
     with no private frame; any error along the chain yields None. *)
  let rec resolve ?(depth = 0) m sid page =
    if depth > 8 then None
    else
      match lookup m sid with
      | Error _ -> None
      | Ok s -> (
          if page < 0 || page >= s.s_len then None
          else if (page_exn s page).pframe <> None then Some (sid, page)
          else
            match
              List.find_opt (fun b -> page >= b.b_at && page < b.b_at + b.b_len) s.s_binds
            with
            | None -> Some (sid, page)
            | Some b -> resolve ~depth:(depth + 1) m b.b_target (b.b_target_page + (page - b.b_at)))

  (* Internal sanity: every physical frame owned by exactly one live
     segment. *)
  let frames_conserved m =
    let frames =
      List.concat_map
        (fun (_, s) ->
          if not s.s_alive then []
          else List.filter_map (fun (_, p) -> p.pframe) s.s_pages)
        m.segs
    in
    List.sort compare frames = List.init m.nframes (fun i -> i)
end

(* ------------------------------------------------------------------ *)
(* Operations and generators                                           *)
(* ------------------------------------------------------------------ *)

(* Segment references are picks: an index resolved against the model's
   known segment ids (dead ones included, exercising Dead_segment) at
   application time, with one sentinel value mapping to a never-created id
   (exercising No_such_segment). Both sides see the same concrete id. *)
type op =
  | OCreate of int
  | ODestroy of int
  | OGrow of int * int
  | OMigrate of int * int * int * int * int * int * int
      (** src pick, dst pick, src_page, dst_page, count, set idx, clear idx *)
  | OModify of int * int * int * int * int  (** pick, page, count, set idx, clear idx *)
  | OBind of int * int * int * int * int * bool
      (** space pick, at, len, target pick, target_page, cow *)
  | ORelease of int * int * int
  | OZero of int * int * int

let flag_combos =
  [|
    Flags.empty;
    Flags.dirty;
    Flags.referenced;
    Flags.no_access;
    Flags.read_only;
    Flags.pinned;
    Flags.of_list [ Flags.dirty; Flags.referenced ];
    Flags.of_list [ Flags.no_access; Flags.read_only ];
  |]

let flags_of i = flag_combos.(i mod Array.length flag_combos)

let resolve_pick m p =
  if p >= 6 then bogus_sid
  else
    let sids = Model.seg_ids m in
    List.nth sids (p mod List.length sids)

let op_to_string = function
  | OCreate n -> Printf.sprintf "create(pages=%d)" n
  | ODestroy p -> Printf.sprintf "destroy(pick=%d)" p
  | OGrow (p, n) -> Printf.sprintf "grow(pick=%d, pages=%d)" p n
  | OMigrate (s, d, sp, dp, c, fs, fc) ->
      Printf.sprintf "migrate(src=%d, dst=%d, src_page=%d, dst_page=%d, count=%d, set=%d, clear=%d)"
        s d sp dp c fs fc
  | OModify (p, pg, c, fs, fc) ->
      Printf.sprintf "modify(pick=%d, page=%d, count=%d, set=%d, clear=%d)" p pg c fs fc
  | OBind (s, at, len, t, tp, cow) ->
      Printf.sprintf "bind(space=%d, at=%d, len=%d, target=%d, target_page=%d, cow=%b)" s at len t
        tp cow
  | ORelease (p, pg, c) -> Printf.sprintf "release(pick=%d, page=%d, count=%d)" p pg c
  | OZero (p, pg, c) -> Printf.sprintf "zero(pick=%d, page=%d, count=%d)" p pg c

let ops_to_string ops = String.concat "; " (List.map op_to_string ops)

let op_gen =
  let open QCheck.Gen in
  let pick = int_range 0 6 in
  let wide_page = int_range (-1) 33 in
  let small_page = int_range (-1) 7 in
  let cnt = int_range (-1) 5 in
  let flagi = int_range 0 7 in
  frequency
    [
      (2, map (fun n -> OCreate n) (int_range 1 6));
      (1, map (fun p -> ODestroy p) pick);
      (1, map2 (fun p n -> OGrow (p, n)) pick (int_range 0 4));
      ( 6,
        pick >>= fun s ->
        pick >>= fun d ->
        wide_page >>= fun sp ->
        wide_page >>= fun dp ->
        cnt >>= fun c ->
        flagi >>= fun fs ->
        flagi >>= fun fc -> return (OMigrate (s, d, sp, dp, c, fs, fc)) );
      ( 3,
        pick >>= fun p ->
        wide_page >>= fun pg ->
        cnt >>= fun c ->
        flagi >>= fun fs ->
        flagi >>= fun fc -> return (OModify (p, pg, c, fs, fc)) );
      ( 2,
        pick >>= fun s ->
        small_page >>= fun at ->
        int_range (-1) 4 >>= fun len ->
        pick >>= fun t ->
        small_page >>= fun tp ->
        bool >>= fun cow -> return (OBind (s, at, len, t, tp, cow)) );
      ( 2,
        pick >>= fun p ->
        wide_page >>= fun pg -> cnt >>= fun c -> return (ORelease (p, pg, c)) );
      ( 1,
        pick >>= fun p ->
        wide_page >>= fun pg -> cnt >>= fun c -> return (OZero (p, pg, c)) );
    ]

(* ------------------------------------------------------------------ *)
(* Applying one op to both sides                                       *)
(* ------------------------------------------------------------------ *)

let apply_model m op =
  match op with
  | OCreate n -> Model.create m n
  | ODestroy p -> Model.destroy m (resolve_pick m p)
  | OGrow (p, n) -> Model.grow m (resolve_pick m p) n
  | OMigrate (s, d, sp, dp, c, fs, fc) ->
      Model.migrate m ~src:(resolve_pick m s) ~dst:(resolve_pick m d) ~src_page:sp ~dst_page:dp
        ~count:c ~set:(flags_of fs) ~clear:(flags_of fc)
  | OModify (p, pg, c, fs, fc) ->
      Model.modify m ~seg:(resolve_pick m p) ~page:pg ~count:c ~set:(flags_of fs)
        ~clear:(flags_of fc)
  | OBind (s, at, len, t, tp, _cow) ->
      Model.bind m ~space:(resolve_pick m s) ~at ~len ~target:(resolve_pick m t) ~target_page:tp
  | ORelease (p, pg, c) -> Model.release m ~seg:(resolve_pick m p) ~page:pg ~count:c
  | OZero (p, pg, c) -> Model.zero m ~seg:(resolve_pick m p) ~page:pg ~count:c

(* [m] is the model state BEFORE the op — picks must resolve identically
   on both sides. *)
let apply_kernel k m op =
  try
    (match op with
    | OCreate n -> ignore (K.create_segment k ~name:"diff" ~pages:n ())
    | ODestroy p -> K.destroy_segment k (resolve_pick m p)
    | OGrow (p, n) -> K.grow_segment k (resolve_pick m p) ~pages:n
    | OMigrate (s, d, sp, dp, c, fs, fc) ->
        K.migrate_pages k ~src:(resolve_pick m s) ~dst:(resolve_pick m d) ~src_page:sp
          ~dst_page:dp ~count:c ~set_flags:(flags_of fs) ~clear_flags:(flags_of fc) ()
    | OModify (p, pg, c, fs, fc) ->
        K.modify_page_flags k ~seg:(resolve_pick m p) ~page:pg ~count:c ~set_flags:(flags_of fs)
          ~clear_flags:(flags_of fc) ()
    | OBind (s, at, len, t, tp, cow) ->
        K.bind_region k ~space:(resolve_pick m s) ~at ~len ~target:(resolve_pick m t)
          ~target_page:tp ~cow
    | ORelease (p, pg, c) -> K.release_frames k ~seg:(resolve_pick m p) ~page:pg ~count:c
    | OZero (p, pg, c) -> K.zero_pages k ~seg:(resolve_pick m p) ~page:pg ~count:c);
    Ok ()
  with K.Error e -> Error e

let result_to_string = function
  | Ok () -> "Ok"
  | Error e -> "Error (" ^ K.error_to_string e ^ ")"

(* ------------------------------------------------------------------ *)
(* Observable-state comparison                                         *)
(* ------------------------------------------------------------------ *)

let flags_to_string f =
  let bit name b acc = if Flags.mem f b then name :: acc else acc in
  match
    bit "dirty" Flags.dirty
      (bit "ref" Flags.referenced
         (bit "noacc" Flags.no_access
            (bit "ro" Flags.read_only (bit "pin" Flags.pinned []))))
  with
  | [] -> "-"
  | l -> String.concat "+" l

(* Returns a description of the first divergence, or None when the kernel
   and the model agree on every observable. *)
let states_diverge k (m : Model.t) =
  let problem = ref None in
  let note fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  List.iter
    (fun sid ->
      let ms = Model.seg_exn m sid in
      if K.segment_exists k sid <> ms.Model.s_alive then
        note "segment %d: kernel exists=%b, model alive=%b" sid (K.segment_exists k sid)
          ms.Model.s_alive
      else if ms.Model.s_alive then begin
        let seg = K.segment k sid in
        if Seg.length seg <> ms.Model.s_len then
          note "segment %d: kernel length %d, model length %d" sid (Seg.length seg)
            ms.Model.s_len
        else
          for i = 0 to ms.Model.s_len - 1 do
            let kp = Seg.page seg i and mp = Model.page_exn ms i in
            if kp.Seg.frame <> mp.Model.pframe then
              note "segment %d page %d: kernel frame %s, model frame %s" sid i
                (match kp.Seg.frame with Some f -> string_of_int f | None -> "none")
                (match mp.Model.pframe with Some f -> string_of_int f | None -> "none")
            else if not (Flags.equal kp.Seg.flags mp.Model.pflags) then
              note "segment %d page %d: kernel flags %s, model flags %s" sid i
                (flags_to_string kp.Seg.flags)
                (flags_to_string mp.Model.pflags);
            let kr = K.resolve_slot k ~space:sid ~page:i and mr = Model.resolve m sid i in
            if kr <> mr then
              let show = function
                | Some (s, p) -> Printf.sprintf "(%d,%d)" s p
                | None -> "none"
              in
              note "segment %d page %d: kernel resolves to %s, model to %s" sid i (show kr)
                (show mr)
          done
      end)
    (Model.seg_ids m);
  if K.frame_owner_total k <> n_frames then
    note "kernel frame conservation broken: %d owned of %d" (K.frame_owner_total k) n_frames;
  if not (Model.frames_conserved m) then note "model frame conservation broken";
  !problem

(* ------------------------------------------------------------------ *)
(* The differential property                                           *)
(* ------------------------------------------------------------------ *)

let run_sequence ops =
  let k = K.create (Machine.create ~memory_bytes:(n_frames * 4096) ()) in
  let m = ref (Model.init n_frames) in
  List.iteri
    (fun step op ->
      let kres = apply_kernel k !m op in
      let m', mres = apply_model !m op in
      m := m';
      if kres <> mres then
        QCheck.Test.fail_reportf "step %d (%s): kernel %s, model %s\nsequence: %s" step
          (op_to_string op) (result_to_string kres) (result_to_string mres) (ops_to_string ops);
      match states_diverge k !m with
      | Some why ->
          QCheck.Test.fail_reportf "step %d (%s): %s\nsequence: %s" step (op_to_string op) why
            (ops_to_string ops)
      | None -> ())
    ops;
  true

let arb_ops =
  QCheck.make
    ~print:(fun ops -> ops_to_string ops)
    ~shrink:QCheck.Shrink.list
    QCheck.Gen.(list_size (int_range 1 40) op_gen)

let prop_differential =
  QCheck.Test.make ~name:"kernel agrees with the pure model (500 sequences)" ~count:500 arb_ops
    run_sequence

(* A long-sequence variant: fewer runs, deeper state (more dead segments,
   more recycled frames, longer binding chains). *)
let prop_differential_deep =
  QCheck.Test.make ~name:"kernel agrees with the pure model (deep sequences)" ~count:60
    (QCheck.make
       ~print:(fun ops -> ops_to_string ops)
       ~shrink:QCheck.Shrink.list
       QCheck.Gen.(list_size (int_range 60 150) op_gen))
    run_sequence

(* ------------------------------------------------------------------ *)
(* Deterministic spot checks of the model itself                       *)
(* ------------------------------------------------------------------ *)

let test_model_boot () =
  let m = Model.init n_frames in
  Alcotest.(check bool) "boot conserves frames" true (Model.frames_conserved m);
  let init_seg = Model.seg_exn m 0 in
  Alcotest.(check int) "initial length" n_frames init_seg.Model.s_len;
  Alcotest.(check bool)
    "identity placement" true
    ((Model.page_exn init_seg 7).Model.pframe = Some 7)

let test_model_scripted () =
  (* One handwritten scenario through both sides: create, migrate with
     flags, bind, resolve through the chain, destroy, frame return. *)
  let ops =
    [
      OCreate 4;
      (* picks are now [0;1] — pick 1 -> seg 1 *)
      OMigrate (0, 1, 0, 0, 2, 1, 0);
      (* init[0..1] -> seg1[0..1], set dirty *)
      OCreate 4;
      (* seg 2 *)
      OBind (2, 1, 2, 1, 0, false);
      (* bind seg1[0..1] into seg2[1..2] *)
      ODestroy 1;
      (* destroy seg1: frames home, binding dangles *)
    ]
  in
  Alcotest.(check bool) "scripted scenario agrees" true (run_sequence ops)

let () =
  Alcotest.run "model"
    [
      ("model sanity", [
        Alcotest.test_case "boot state" `Quick test_model_boot;
        Alcotest.test_case "scripted scenario" `Quick test_model_scripted;
      ]);
      ( "differential",
        List.map QCheck_alcotest.to_alcotest [ prop_differential; prop_differential_deep ] );
    ]
