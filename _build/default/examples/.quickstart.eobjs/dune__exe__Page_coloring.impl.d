examples/page_coloring.ml: Array Epcm_kernel Epcm_manager Epcm_segment Hw_cache Hw_machine Hw_phys_mem Mgr_coloring Printf Spcm
