exception Not_in_process

type t = {
  mutable clock : float;
  heap : (unit -> unit) Sim_heap.t;
  mutable seq : int;
  mutable live : int;
  mutable executed : int;
  mutable horizon : float option;  (* [run ~until] limit, while running *)
}

type _ Effect.t +=
  | E_delay : (t * float) -> unit Effect.t
  | E_suspend : (t * (('a -> unit) -> unit)) -> 'a Effect.t
  | E_fork : (t * string * (unit -> unit)) -> unit Effect.t

(* The engine a process belongs to is threaded through the effects
   themselves; [current] lets the zero-argument public API find it. It is
   domain-local state: each simulation runs entirely on one domain, and
   independent simulations may run on different domains concurrently (the
   --jobs experiment driver), so the "engine being run here" must not be
   shared across domains. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let create () =
  { clock = 0.0; heap = Sim_heap.create (); seq = 0; live = 0; executed = 0; horizon = None }

let now t = t.clock

let schedule t ~at thunk =
  let at = if at < t.clock then t.clock else at in
  t.seq <- t.seq + 1;
  Sim_heap.push t.heap ~time:at ~seq:t.seq thunk

let rec start_process t _name body =
  let open Effect.Deep in
  t.live <- t.live + 1;
  match_with body ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun e ->
          t.live <- t.live - 1;
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_delay (eng, d) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule eng ~at:(eng.clock +. Stdlib.max 0.0 d) (fun () -> continue k ()))
          | E_suspend (eng, register) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  register (fun v ->
                      if !resumed then invalid_arg "Sim_engine: resume called twice";
                      resumed := true;
                      schedule eng ~at:eng.clock (fun () -> continue k v)))
          | E_fork (eng, name, f) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule eng ~at:eng.clock (fun () -> start_process eng name f);
                  continue k ())
          | _ -> None);
    }

let spawn t ?(name = "proc") body = schedule t ~at:t.clock (fun () -> start_process t name body)

let run ?until t =
  let saved = Domain.DLS.get current in
  let saved_horizon = t.horizon in
  Domain.DLS.set current (Some t);
  t.horizon <- until;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set current saved;
      t.horizon <- saved_horizon)
    (fun () ->
      let continue_loop = ref true in
      while !continue_loop do
        match Sim_heap.pop t.heap with
        | None -> continue_loop := false
        | Some (time, _, thunk) -> (
            match until with
            | Some limit when time > limit ->
                (* Push back and stop at the horizon. *)
                t.seq <- t.seq + 1;
                Sim_heap.push t.heap ~time ~seq:t.seq thunk;
                t.clock <- limit;
                continue_loop := false
            | _ ->
                t.clock <- time;
                t.executed <- t.executed + 1;
                thunk ())
      done)

let live_processes t = t.live
let events_executed t = t.executed

let engine_of_process () =
  match Domain.DLS.get current with None -> raise Not_in_process | Some t -> t

(* Fast path: a delay is semantically "resume me at [target], after any
   event already due at or before it". When no such event is pending (and
   the run horizon is not crossed), nothing can interleave — no other
   process can become runnable in the meantime, because only the running
   process schedules — so the clock advances inline, skipping the
   continuation capture and two heap operations. The logical event still
   happened, so [executed] counts it: event counts and all interleavings
   are identical to the unconditionally-scheduled implementation. *)
let delay d =
  let t = engine_of_process () in
  let target = t.clock +. Stdlib.max 0.0 d in
  let within_horizon = match t.horizon with None -> true | Some limit -> target <= limit in
  let none_earlier =
    match Sim_heap.peek_time t.heap with None -> true | Some due -> due > target
  in
  if within_horizon && none_earlier then begin
    t.clock <- target;
    t.executed <- t.executed + 1
  end
  else Effect.perform (E_delay (t, d))

let time () = (engine_of_process ()).clock
let suspend register = Effect.perform (E_suspend (engine_of_process (), register))
let fork ?(name = "proc") f = Effect.perform (E_fork (engine_of_process (), name, f))
