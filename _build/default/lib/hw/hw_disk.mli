(** Disk device model.

    A single arm served FIFO: a transfer costs
    [seek + rotation/2 + bytes * transfer time]. Around 1992, a page fault
    to disk cost "close to a million instruction times" (paper, §1) —
    roughly 20 ms on a 30+ MIPS machine, which the default parameters
    reproduce. Concurrent requests queue on the arm, so a burst of faults
    serialises, which is exactly the convoy behaviour Table 4's paging
    configuration exhibits. *)

type params = {
  seek_us : float;
  half_rotation_us : float;
  us_per_kb : float;
}

val default_params : params
(** ~12 ms seek, ~8.3 ms rotation (3600 rpm), ~0.65 µs/byte
    (≈1.5 MB/s sustained): a typical 1992 SCSI disk. *)

type t

val create : Sim_engine.t -> ?params:params -> unit -> t

val access_time_us : t -> bytes:int -> float
(** Raw service time for one transfer, without queueing. *)

val read : t -> bytes:int -> unit
(** Blocks the calling process for queueing + service time. *)

val write : t -> bytes:int -> unit

val reads : t -> int
val writes : t -> int
val bytes_read : t -> int
val bytes_written : t -> int
val busy_fraction : t -> float
