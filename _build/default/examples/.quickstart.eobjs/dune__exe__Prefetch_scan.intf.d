examples/prefetch_scan.mli:
