lib/core/epcm_flags.ml: Format Int List String
