(** Rendering helpers shared by the experiment runners: aligned text
    tables, paper-vs-measured comparisons and shape checks. *)

val fmt_table : header:string list -> rows:string list list -> string
(** Monospace table with a rule under the header; columns sized to
    content. *)

val us : float -> string
(** Microseconds, one decimal. *)

val ms : float -> string
val seconds : float -> string

val ratio : measured:float -> paper:float -> string
(** "x1.03"-style ratio of measured to paper. *)

type check = { what : string; pass : bool; detail : string }

val check : what:string -> pass:bool -> detail:string -> check
val render_checks : check list -> string
val all_pass : check list -> bool
