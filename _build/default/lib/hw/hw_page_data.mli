(** Contents of one physical page frame.

    Unit tests want to check that migrate / copy-on-write / UIO transfers
    move the right bytes, but simulating a 120 MB database with real byte
    arrays would be wasteful. Pages therefore carry either real bytes (small
    tests), a symbolic file-block tag (large simulations), or zero. A
    deterministic [byte] observation function is defined over all three so
    data-integrity assertions work uniformly. *)

type t =
  | Zero  (** Freshly zero-filled page. *)
  | Bytes of bytes  (** Literal contents (tests, small files). *)
  | Block of { file : int; block : int; version : int }
      (** Symbolic contents: version [version] of block [block] of file
          [file]. Bumping [version] models overwriting the block. *)

val zero : t
val of_string : string -> t
val block : file:int -> block:int -> version:int -> t

val equal : t -> t -> bool

val byte : t -> int -> char
(** [byte t i] is a deterministic observation of byte [i]: ['\000'] for
    [Zero], the literal byte for [Bytes] (['\000'] past the end), and a hash
    of (file, block, version, i) for [Block]. *)

val describe : t -> string
val pp : Format.formatter -> t -> unit
