let fmt_table ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width i =
    List.fold_left
      (fun acc row -> match List.nth_opt row i with Some s -> max acc (String.length s) | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    List.mapi
      (fun i w ->
        let cell = match List.nth_opt row i with Some s -> s | None -> "" in
        cell ^ String.make (w - String.length cell) ' ')
      widths
    |> String.concat "  "
  in
  let rule = String.concat "--" (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (render_row r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let us v = Printf.sprintf "%.1f" v
let ms v = Printf.sprintf "%.1f" v
let seconds v = Printf.sprintf "%.2f" v

let ratio ~measured ~paper =
  if paper = 0.0 then "n/a" else Printf.sprintf "x%.2f" (measured /. paper)

type check = { what : string; pass : bool; detail : string }

let check ~what ~pass ~detail = { what; pass; detail }

let render_checks checks =
  let buf = Buffer.create 256 in
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  [%s] %s%s\n"
           (if c.pass then "PASS" else "FAIL")
           c.what
           (if c.detail = "" then "" else " — " ^ c.detail)))
    checks;
  Buffer.contents buf

let all_pass checks = List.for_all (fun c -> c.pass) checks
