examples/db_cache.mli:
