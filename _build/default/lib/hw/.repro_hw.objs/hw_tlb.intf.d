lib/hw/hw_tlb.mli:
