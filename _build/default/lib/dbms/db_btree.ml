type t = {
  fanout : int;
  levels : int array;  (** Pages per level, root level first. *)
  level_start : int array;  (** First page index of each level. *)
}

(* Choose the number of leaves so the whole tree (leaves + index levels
   above them) fits the page budget. *)
let layout ~fanout ~pages =
  if pages < 1 then invalid_arg "Db_btree.create: need at least one page";
  let tree_size leaves =
    let rec go width acc = if width <= 1 then acc + 1 else go ((width + fanout - 1) / fanout) (acc + width) in
    if leaves <= 1 then 1 else go leaves 0
  in
  (* Largest leaf count whose tree fits. *)
  let leaves = ref 1 in
  while tree_size (!leaves + 1) <= pages do
    incr leaves
  done;
  let rec widths width acc =
    if width <= 1 then 1 :: acc else widths ((width + fanout - 1) / fanout) (width :: acc)
  in
  let levels = Array.of_list (if !leaves <= 1 then [ 1 ] else widths !leaves []) in
  levels

let create ?(fanout = 128) ~pages () =
  if fanout < 2 then invalid_arg "Db_btree.create: fanout must be at least 2";
  let levels = layout ~fanout ~pages in
  let level_start = Array.make (Array.length levels) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i n ->
      level_start.(i) <- !acc;
      acc := !acc + n)
    levels;
  { fanout; levels; level_start }

let fanout t = t.fanout
let pages t = Array.fold_left ( + ) 0 t.levels
let depth t = Array.length t.levels
let keys t = t.levels.(Array.length t.levels - 1) * t.fanout
let root_page t = t.level_start.(0)

let leaf_of_key t ~key =
  let leaves = t.levels.(Array.length t.levels - 1) in
  let key = ((key mod keys t) + keys t) mod keys t in
  t.level_start.(Array.length t.levels - 1) + (key / t.fanout mod leaves)

let lookup_path t ~key =
  let key = ((key mod keys t) + keys t) mod keys t in
  let n_levels = Array.length t.levels in
  let leaves = t.levels.(n_levels - 1) in
  let leaf_index = key / t.fanout mod leaves in
  (* At level i (root = 0), the page covering the leaf is the leaf index
     scaled down by the fan-out of the levels below. *)
  List.init n_levels (fun i ->
      let below = n_levels - 1 - i in
      let scale = int_of_float (float_of_int t.fanout ** float_of_int below) in
      let idx = min (leaf_index / scale) (t.levels.(i) - 1) in
      t.level_start.(i) + idx)

let pp ppf t =
  Format.fprintf ppf "btree(fanout=%d, depth=%d, pages=%d, keys=%d; levels=[%s])" t.fanout
    (depth t) (pages t) (keys t)
    (String.concat ";" (Array.to_list (Array.map string_of_int t.levels)))
