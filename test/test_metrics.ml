(* Observability layer tests: histogram algebra (unit + QCheck property),
   span-attribution semantics of the metrics sink, JSON round-trips, the
   disabled-by-default no-op contract, seed-for-seed determinism of a
   profiled chaos storm, and the schema of the profile bench record. *)

module M = Sim_metrics
module H = Sim_metrics.Hist
module J = Sim_json
module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module G = Mgr_generic
module Machine = Hw_machine
module Engine = Sim_engine
module Chaos = Sim_chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Hist: unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let hist_of values =
  let h = H.create () in
  List.iter (H.add h) values;
  h

let test_hist_empty () =
  let h = H.create () in
  check_int "count" 0 (H.count h);
  check_float "total" 0.0 (H.total h);
  check_float "min" 0.0 (H.min_value h);
  check_float "max" 0.0 (H.max_value h);
  check_float "p50" 0.0 (H.p50 h);
  check_float "p99" 0.0 (H.p99 h);
  check_bool "no buckets" true (H.buckets h = [])

let test_hist_exact_aggregates () =
  let h = hist_of [ 10.0; 100.0; 1000.0 ] in
  check_int "count" 3 (H.count h);
  check_float "total is exact" 1110.0 (H.total h);
  check_float "min is exact" 10.0 (H.min_value h);
  check_float "max is exact" 1000.0 (H.max_value h)

let test_hist_nonpositive_values () =
  let h = hist_of [ 0.0; -5.0; 42.0 ] in
  check_int "non-positive values are counted" 3 (H.count h);
  check_int "but kept out of the buckets" 1
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (H.buckets h))

let test_hist_bucket_bounds () =
  (* Every recorded value is <= the upper bound of its bucket, and the
     bound is within one quarter-octave (~19%) of the value. *)
  List.iter
    (fun v ->
      let h = hist_of [ v ] in
      match H.buckets h with
      | [ (i, 1) ] ->
          let ub = H.bucket_upper_bound i in
          check_bool
            (Printf.sprintf "%g <= bound %g" v ub)
            true
            (v <= ub +. 1e-9 && ub <= v *. Float.exp2 0.25 +. 1e-9)
      | _ -> Alcotest.fail "one value, one bucket")
    [ 1.0; 3.5; 107.0; 18_814.0; 0.013; 1e6 ]

let test_hist_quantiles_single_value () =
  (* All mass in one place: every quantile answers that place exactly
     (the bucket bound is clamped into [min, max]). *)
  let h = hist_of [ 107.0; 107.0; 107.0 ] in
  check_float "p50" 107.0 (H.p50 h);
  check_float "p95" 107.0 (H.p95 h);
  check_float "p99" 107.0 (H.p99 h);
  check_float "max" 107.0 (H.max_value h)

let test_hist_quantiles_spread () =
  let h = hist_of (List.init 100 (fun i -> float_of_int (i + 1))) in
  let p50 = H.p50 h and p95 = H.p95 h and p99 = H.p99 h in
  (* Nearest-rank over ~19%-wide buckets: the answers are approximate but
     must bracket the true quantiles within one bucket's relative error. *)
  check_bool "p50 near 50" true (p50 >= 40.0 && p50 <= 65.0);
  check_bool "p95 near 95" true (p95 >= 80.0 && p95 <= 113.0);
  check_bool "p99 near 99" true (p99 >= 85.0 && p99 <= 113.0);
  check_bool "ordered" true (p50 <= p95 && p95 <= p99 && p99 <= H.max_value h)

let test_hist_merge_empty_identity () =
  let h = hist_of [ 3.0; 9.0; 81.0 ] in
  let m = H.merge h (H.create ()) in
  check_int "count" (H.count h) (H.count m);
  check_float "total" (H.total h) (H.total m);
  check_float "min" (H.min_value h) (H.min_value m);
  check_float "max" (H.max_value h) (H.max_value m);
  check_bool "buckets" true (H.buckets h = H.buckets m)

let test_hist_merge_pure () =
  let a = hist_of [ 1.0; 2.0 ] and b = hist_of [ 4.0 ] in
  let (_ : H.t) = H.merge a b in
  check_int "left argument not mutated" 2 (H.count a);
  check_int "right argument not mutated" 1 (H.count b)

(* ------------------------------------------------------------------ *)
(* Hist: QCheck properties                                             *)
(* ------------------------------------------------------------------ *)

(* Samples spanning ~9 orders of magnitude, including non-positive
   values (which exercise the zero-count path). *)
let arb_samples =
  QCheck.make ~print:QCheck.Print.(list float) ~shrink:QCheck.Shrink.list
    QCheck.Gen.(
      list_size (int_range 0 60)
        (oneof
           [
             float_range (-2.0) 0.0;
             float_range 0.001 1.0;
             float_range 1.0 1000.0;
             float_range 1000.0 2e7;
           ]))

let hists_agree a b =
  H.count a = H.count b
  && H.buckets a = H.buckets b
  && H.min_value a = H.min_value b
  && H.max_value a = H.max_value b
  && Float.abs (H.total a -. H.total b) <= 1e-6 *. (1.0 +. Float.abs (H.total a))

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative" ~count:200
    (QCheck.pair arb_samples arb_samples)
    (fun (xs, ys) ->
      let a = hist_of xs and b = hist_of ys in
      hists_agree (H.merge a b) (H.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:200
    (QCheck.triple arb_samples arb_samples arb_samples)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      hists_agree (H.merge (H.merge a b) c) (H.merge a (H.merge b c)))

let prop_merge_conserves_counts =
  QCheck.Test.make ~name:"merge conserves count and total" ~count:200
    (QCheck.pair arb_samples arb_samples)
    (fun (xs, ys) ->
      let a = hist_of xs and b = hist_of ys in
      let m = H.merge a b in
      H.count m = H.count a + H.count b
      && Float.abs (H.total m -. (H.total a +. H.total b))
         <= 1e-6 *. (1.0 +. Float.abs (H.total m)))

let prop_merge_equals_union =
  QCheck.Test.make ~name:"merge equals histogram of the concatenation" ~count:200
    (QCheck.pair arb_samples arb_samples)
    (fun (xs, ys) -> hists_agree (H.merge (hist_of xs) (hist_of ys)) (hist_of (xs @ ys)))

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in p and bounded by [min,max]" ~count:200
    arb_samples
    (fun xs ->
      let h = hist_of xs in
      let ps = [ 1.0; 10.0; 25.0; 50.0; 75.0; 90.0; 95.0; 99.0; 100.0 ] in
      let qs = List.map (H.quantile h) ps in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      sorted qs
      && (H.count h = 0
         || List.for_all (fun q -> q >= H.min_value h && q <= H.max_value h) qs))

let prop_count_conservation =
  QCheck.Test.make ~name:"bucket counts + zero-count = count" ~count:200 arb_samples
    (fun xs ->
      let h = hist_of xs in
      let in_buckets = List.fold_left (fun acc (_, n) -> acc + n) 0 (H.buckets h) in
      let nonpos = List.length (List.filter (fun v -> v <= 0.0) xs) in
      in_buckets + nonpos = H.count h && H.count h = List.length xs)

(* ------------------------------------------------------------------ *)
(* Sink: spans, attribution, the disabled no-op contract               *)
(* ------------------------------------------------------------------ *)

let test_sink_disabled_by_default () =
  let m = M.create () in
  check_bool "disabled" false (M.enabled m);
  M.record_charge m ~label:"x" 10.0;
  M.observe m ~kind:"k" 5.0;
  M.with_span m "s" (fun () -> M.record_charge m ~label:"y" 1.0);
  check_bool "no charges recorded" true (M.charges m = []);
  check_bool "no kinds recorded" true (M.kinds m = []);
  check_float "charged_total 0" 0.0 (M.charged_total m)

let test_sink_span_paths () =
  let m = M.create ~enabled:true () in
  check_string "top-level path" "" (M.current_path m);
  M.with_span m "fault" (fun () ->
      check_string "one span" "fault" (M.current_path m);
      M.record_charge m ~label:"kernel/trap" 10.0;
      M.with_span m "inner" (fun () ->
          check_string "nested" "fault/inner" (M.current_path m);
          M.record_charge m ~label:"kernel/migrate" 46.0);
      M.record_charge m ~label:"kernel/trap" 10.0);
  M.record_charge m 4.0;
  check_bool "stack popped" true (M.current_path m = "");
  let cs = M.charges m in
  check_bool "paths and sums" true
    (cs
    = [
        ("fault/inner/kernel/migrate", 1, 46.0);
        ("fault/kernel/trap", 2, 20.0);
        ("unattributed", 1, 4.0);
      ]);
  check_float "charged_total" 70.0 (M.charged_total m);
  check_float "prefix filter" 66.0 (M.charged_total ~prefix:"fault" m);
  check_float "prefix filter (deep)" 46.0 (M.charged_total ~prefix:"fault/inner" m)

let test_sink_span_exception_safe () =
  let m = M.create ~enabled:true () in
  (try M.with_span m "boom" (fun () -> failwith "no") with Failure _ -> ());
  check_string "span popped on exception" "" (M.current_path m)

let test_sink_reset () =
  let m = M.create ~enabled:true () in
  M.record_charge m ~label:"a" 1.0;
  M.observe m ~kind:"k" 2.0;
  M.reset m;
  check_bool "still enabled" true (M.enabled m);
  check_bool "charges dropped" true (M.charges m = []);
  check_bool "kinds dropped" true (M.kinds m = []);
  M.record_charge m ~label:"b" 3.0;
  check_float "usable after reset" 3.0 (M.charged_total m)

let test_sink_observe_kinds () =
  let m = M.create ~enabled:true () in
  M.observe m ~kind:"disk.read" 100.0;
  M.observe m ~kind:"disk.read" 200.0;
  M.observe m ~kind:"wal.flush" 50.0;
  check_bool "kinds sorted" true (M.kinds m = [ "disk.read"; "wal.flush" ]);
  (match M.hist m ~kind:"disk.read" with
  | Some h ->
      check_int "two samples" 2 (H.count h);
      check_float "total" 300.0 (H.total h)
  | None -> Alcotest.fail "disk.read histogram missing");
  check_bool "unknown kind" true (M.hist m ~kind:"nope" = None)

(* ------------------------------------------------------------------ *)
(* Charges survive outside a simulation process; time does not          *)
(* ------------------------------------------------------------------ *)

let test_machine_charge_attributes_without_engine () =
  (* Hw_machine.charge no-ops the delay outside a process but still
     attributes the cost — Exp_profile depends on this split. *)
  let machine = Machine.create ~memory_bytes:(16 * 4096) () in
  Machine.set_profiling machine true;
  Machine.charge ~label:"kernel/test" machine 12.0;
  check_float "charge attributed" 12.0 (M.charged_total (Machine.metrics machine));
  Machine.set_profiling machine false;
  Machine.charge ~label:"kernel/test" machine 12.0;
  check_float "disabled again: nothing added" 12.0
    (M.charged_total (Machine.metrics machine))

(* ------------------------------------------------------------------ *)
(* JSON: printer stability, parser, round-trips                        *)
(* ------------------------------------------------------------------ *)

let sample_json =
  J.Obj
    [
      ("schema", J.Str "vpp-profile/1");
      ("n", J.Num 379.0);
      ("frac", J.Num 0.375);
      ("flag", J.Bool true);
      ("nothing", J.Null);
      ("xs", J.List [ J.Num 1.0; J.Str "two\n\"quoted\""; J.Obj [] ]);
    ]

let test_json_round_trip () =
  let s = J.to_string sample_json in
  (match J.parse s with
  | Ok v -> check_bool "compact round-trip" true (v = sample_json)
  | Error e -> Alcotest.fail ("parse failed: " ^ e));
  match J.parse (J.to_string ~indent:true sample_json) with
  | Ok v -> check_bool "indented round-trip" true (v = sample_json)
  | Error e -> Alcotest.fail ("indented parse failed: " ^ e)

let test_json_stable_output () =
  check_string "same tree, same bytes" (J.to_string sample_json) (J.to_string sample_json);
  check_string "integers print without a fraction" "{\"n\":379}"
    (J.to_string (J.Obj [ ("n", J.Num 379.0) ]))

let test_json_parse_rejects_garbage () =
  let bad = [ "{\"a\":1} trailing"; "{"; "[1,]"; ""; "{\"a\" 1}"; "nul" ] in
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    bad

let test_json_accessors () =
  check_bool "member" true (J.member "n" sample_json = Some (J.Num 379.0));
  check_bool "member miss" true (J.member "zzz" sample_json = None);
  check_bool "to_float" true (J.member "n" sample_json |> Option.get |> J.to_float = Some 379.0);
  check_bool "to_str" true
    (J.member "schema" sample_json |> Option.get |> J.to_str = Some "vpp-profile/1");
  check_bool "to_list" true
    (match J.member "xs" sample_json |> Option.get |> J.to_list with
    | Some l -> List.length l = 3
    | None -> false)

let test_sink_json_shape () =
  let m = M.create ~enabled:true () in
  M.with_span m "fault" (fun () -> M.record_charge m ~label:"kernel/trap" 10.0);
  M.observe m ~kind:"kernel.fault" 107.0;
  let j = M.to_json m in
  let s = J.to_string j in
  (* %.6g is lossy for floats like bucket bounds, so the contract is a
     print -> parse -> print fixpoint, not tree equality. *)
  (match J.parse s with
  | Ok v -> check_string "print/parse/print fixpoint" s (J.to_string v)
  | Error e -> Alcotest.fail ("sink JSON unparseable: " ^ e));
  check_bool "has charges" true (J.member "charges" j <> None);
  check_bool "has latency" true (J.member "latency" j <> None)

(* ------------------------------------------------------------------ *)
(* Determinism: a profiled chaos storm records identical metrics        *)
(* ------------------------------------------------------------------ *)

let profiled_storm ~seed =
  let frames = 48 in
  let machine = Machine.create ~memory_bytes:(frames * 4096) () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  let chaos =
    Chaos.create ~seed
      { Chaos.default_spec with read_error_p = 0.1; write_error_p = 0.1; delay_p = 0.05 }
  in
  Hw_disk.set_chaos machine.Machine.disk (Some chaos);
  let backing = Mgr_backing.disk machine.Machine.disk ~page_bytes:4096 in
  let g =
    G.create kernel ~name:"profiled-storm" ~mode:`In_process ~backing ~source ~pool_capacity:24
      ~refill_batch:8 ~reclaim_batch:4 ()
  in
  let seg =
    G.create_segment g ~name:"data" ~pages:32 ~kind:(G.File { file_id = 9 }) ~high_water:32 ()
  in
  Machine.set_profiling machine true;
  Engine.spawn machine.Machine.engine (fun () ->
      for page = 0 to 31 do
        let access = if page mod 3 = 0 then Mgr.Write else Mgr.Read in
        try K.touch kernel ~space:seg ~page ~access
        with Mgr_backing.Backing_failed _ -> ()
      done);
  Engine.run machine.Machine.engine;
  Hw_disk.set_chaos machine.Machine.disk None;
  J.to_string ~indent:true (M.to_json (Machine.metrics machine))

let test_storm_metrics_deterministic () =
  let a = profiled_storm ~seed:101L in
  let b = profiled_storm ~seed:101L in
  let c = profiled_storm ~seed:102L in
  check_string "same seed, byte-identical metrics record" a b;
  check_bool "different seed, different record" true (a <> c)

(* ------------------------------------------------------------------ *)
(* The profile bench record: schema validation                          *)
(* ------------------------------------------------------------------ *)

let test_profile_record_schema () =
  let r = Exp_profile.run () in
  let j = Exp_profile.to_json r in
  (match Exp_profile.validate_json j with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("schema validation failed: " ^ e));
  (* The rendered record (what bench/main.exe writes to
     BENCH_observability.json) parses back and still validates. *)
  match J.parse (Exp_profile.render_json r) with
  | Error e -> Alcotest.fail ("rendered record unparseable: " ^ e)
  | Ok v -> (
      check_string "render/parse/render fixpoint"
        (J.to_string ~indent:true j ^ "\n")
        (J.to_string ~indent:true v ^ "\n");
      match Exp_profile.validate_json v with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("re-parsed record fails validation: " ^ e))

let test_profile_record_stable () =
  let a = Exp_profile.render_json (Exp_profile.run ()) in
  let b = Exp_profile.render_json (Exp_profile.run ()) in
  check_string "two runs, byte-identical records" a b;
  check_bool "version string embedded" true
    (match J.parse a with
    | Ok j -> J.member "schema" j |> Option.map J.to_str = Some (Some Exp_profile.schema_version)
    | Error _ -> false)

let test_profile_validator_rejects_drift () =
  let r = Exp_profile.run () in
  match Exp_profile.to_json r with
  | J.Obj fields ->
      let tampered =
        J.Obj
          (List.map
             (fun (k, v) -> if k = "schema" then (k, J.Str "vpp-profile/999") else (k, v))
             fields)
      in
      check_bool "wrong version rejected" true (Exp_profile.validate_json tampered <> Ok ());
      check_bool "missing rows rejected" true
        (Exp_profile.validate_json (J.Obj (List.remove_assoc "table1_decomposition" fields |> List.map (fun (k, v) -> (k, v)))) <> Ok ())
  | _ -> Alcotest.fail "profile record is not an object"

let () =
  Alcotest.run "metrics"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "exact aggregates" `Quick test_hist_exact_aggregates;
          Alcotest.test_case "non-positive values" `Quick test_hist_nonpositive_values;
          Alcotest.test_case "bucket bounds" `Quick test_hist_bucket_bounds;
          Alcotest.test_case "quantiles: point mass" `Quick test_hist_quantiles_single_value;
          Alcotest.test_case "quantiles: uniform spread" `Quick test_hist_quantiles_spread;
          Alcotest.test_case "merge: empty identity" `Quick test_hist_merge_empty_identity;
          Alcotest.test_case "merge: pure" `Quick test_hist_merge_pure;
        ] );
      ( "histogram properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_merge_commutative;
            prop_merge_associative;
            prop_merge_conserves_counts;
            prop_merge_equals_union;
            prop_quantile_monotone;
            prop_count_conservation;
          ] );
      ( "sink",
        [
          Alcotest.test_case "disabled by default is a no-op" `Quick test_sink_disabled_by_default;
          Alcotest.test_case "span paths and attribution" `Quick test_sink_span_paths;
          Alcotest.test_case "span pops on exception" `Quick test_sink_span_exception_safe;
          Alcotest.test_case "reset" `Quick test_sink_reset;
          Alcotest.test_case "latency kinds" `Quick test_sink_observe_kinds;
          Alcotest.test_case "charge attributes outside a process" `Quick
            test_machine_charge_attributes_without_engine;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "stable output" `Quick test_json_stable_output;
          Alcotest.test_case "rejects malformed input" `Quick test_json_parse_rejects_garbage;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "sink encoding" `Quick test_sink_json_shape;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "profiled storm replays byte-for-byte" `Quick
            test_storm_metrics_deterministic;
        ] );
      ( "profile record",
        [
          Alcotest.test_case "schema validates" `Quick test_profile_record_schema;
          Alcotest.test_case "record is stable across runs" `Quick test_profile_record_stable;
          Alcotest.test_case "validator rejects drift" `Quick test_profile_validator_rejects_drift;
        ] );
    ]
