examples/mp3d_adaptive.mli:
