(** Hierarchical lock manager (granular locking à la Gray): database →
    relation → page, with intention modes.

    Compatibility:
    {v
            IS   IX   S    X
       IS   ok   ok   ok   -
       IX   ok   ok   -    -
       S    ok   -    ok   -
       X    -    -    -    -
    v}

    Waiters are served FIFO. Callers avoid deadlock by acquiring resources
    in a fixed global order (database, then relations by id, then pages by
    (relation, page)) — which the transaction code in {!Db_engine} does.

    Blocking acquisition must run inside a simulation process. *)

type mode = IS | IX | S | X

type resource =
  | Database
  | Relation of int
  | Page of int * int  (** (relation, page) *)

type txn = int

type t

val create : unit -> t

val acquire : t -> txn:txn -> resource -> mode -> unit
(** Blocks until granted. Re-acquiring a mode already held (or implied:
    X ⊇ S ⊇ IS, X ⊇ IX ⊇ IS) is a no-op. Upgrades are not supported and
    raise [Invalid_argument]. *)

val try_acquire : t -> txn:txn -> resource -> mode -> bool

val acquire_timeout : t -> txn:txn -> resource -> mode -> timeout_us:float -> bool
(** Like {!acquire}, but gives up after [timeout_us] of simulated time in
    the wait queue and returns [false] (the two-phase-commit
    abort-on-lock-timeout path). Returns [true] as soon as the lock is
    granted. A timed-out waiter is cancelled in place — it never holds
    the lock and FIFO order among the remaining waiters is preserved.
    Must run inside a simulation process. *)

val release_all : t -> txn:txn -> unit
(** Release everything the transaction holds, waking eligible waiters. *)

val held : t -> txn:txn -> (resource * mode) list
val waiting : t -> int
(** Transactions currently blocked. *)

val total_blocked : t -> int
(** Cumulative count of acquisitions that had to wait. *)

val timeouts : t -> int
(** Cumulative count of {!acquire_timeout} waits that expired. *)

val compatible : mode -> mode -> bool
val covers : held:mode -> wanted:mode -> bool
val pp_mode : Format.formatter -> mode -> unit
val pp_resource : Format.formatter -> resource -> unit
