module Semaphore = struct
  type t = { mutable count : int; waiters : (unit -> unit) Queue.t }

  let create n =
    if n < 0 then invalid_arg "Sim_sync.Semaphore.create: negative count";
    { count = n; waiters = Queue.create () }

  let available t = t.count
  let waiting t = Queue.length t.waiters

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else Sim_engine.suspend (fun resume -> Queue.add (fun () -> resume ()) t.waiters)

  let try_acquire t =
    if t.count > 0 then begin
      t.count <- t.count - 1;
      true
    end
    else false

  let release t =
    match Queue.take_opt t.waiters with
    | Some resume -> resume ()
    | None -> t.count <- t.count + 1
end

module Resource = struct
  type t = {
    engine : Sim_engine.t;
    capacity : int;
    sem : Semaphore.t;
    mutable busy : int;
    busy_tw : Sim_stats.Time_weighted.t;
  }

  let create engine ~capacity =
    if capacity <= 0 then invalid_arg "Sim_sync.Resource.create: capacity must be positive";
    {
      engine;
      capacity;
      sem = Semaphore.create capacity;
      busy = 0;
      busy_tw = Sim_stats.Time_weighted.create ~now:(Sim_engine.now engine) ~init:0.0;
    }

  let capacity t = t.capacity
  let in_use t = t.busy
  let waiting t = Semaphore.waiting t.sem

  let set_busy t n =
    t.busy <- n;
    Sim_stats.Time_weighted.set t.busy_tw ~now:(Sim_engine.now t.engine) (float_of_int n)

  let use t f =
    Semaphore.acquire t.sem;
    set_busy t (t.busy + 1);
    Fun.protect
      ~finally:(fun () ->
        set_busy t (t.busy - 1);
        Semaphore.release t.sem)
      f

  let utilisation t =
    let avg = Sim_stats.Time_weighted.average t.busy_tw ~now:(Sim_engine.now t.engine) in
    avg /. float_of_int t.capacity
end

module Mailbox = struct
  type 'a t = { items : 'a Queue.t; readers : ('a -> unit) Queue.t }

  let create () = { items = Queue.create (); readers = Queue.create () }

  let send t v =
    match Queue.take_opt t.readers with
    | Some resume -> resume v
    | None -> Queue.add v t.items

  let recv t =
    match Queue.take_opt t.items with
    | Some v -> v
    | None -> Sim_engine.suspend (fun resume -> Queue.add resume t.readers)

  let try_recv t = Queue.take_opt t.items
  let length t = Queue.length t.items
end

module Gate = struct
  type t = { mutable opened : bool; waiters : (unit -> unit) Queue.t }

  let create () = { opened = false; waiters = Queue.create () }

  let wait t =
    if not t.opened then
      Sim_engine.suspend (fun resume -> Queue.add (fun () -> resume ()) t.waiters)

  let open_ t =
    if not t.opened then begin
      t.opened <- true;
      Queue.iter (fun resume -> resume ()) t.waiters;
      Queue.clear t.waiters
    end

  let is_open t = t.opened
end

module Condition = struct
  type t = { waiters : (unit -> unit) Queue.t }

  let create () = { waiters = Queue.create () }

  let await t = Sim_engine.suspend (fun resume -> Queue.add (fun () -> resume ()) t.waiters)

  let signal_all t =
    (* Drain into a list first: a woken process may immediately await again,
       and it must not consume this same signal. *)
    let woken = List.of_seq (Queue.to_seq t.waiters) in
    Queue.clear t.waiters;
    List.iter (fun resume -> resume ()) woken

  let waiting t = Queue.length t.waiters
end
