examples/memory_market.ml: Epcm_kernel Epcm_manager Hw_machine List Mgr_backing Mgr_free_pages Mgr_generic Option Printf Sim_engine Spcm Spcm_market
