lib/managers/mgr_backing.mli: Hw_disk Hw_page_data
