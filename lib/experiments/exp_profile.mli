(** Observability profile: re-runs each Table 1 path with the metrics sink
    enabled and decomposes the pinned row totals into their span-attributed
    charges, then drives a deterministic demand-paging + WAL workload to
    populate latency histograms per operation kind. Emits a versioned,
    schema-stable JSON record ([BENCH_observability.json] /
    [vpp_repro profile --json]). *)

val schema_version : string
(** ["vpp-profile/1"]. Bump when the record layout changes. *)

type row = {
  p_label : string;  (** The identity's name in [Hw_cost] ([vpp_read_4kb], ...). *)
  p_pinned_us : float;  (** The documented Table 1 value. *)
  p_measured_us : float;  (** Simulated wall time of the operation. *)
  p_spans : (string * int * float) list;
      (** Span-attributed decomposition: (path, charge count, total us),
          sorted by path. Sums to [p_pinned_us]. *)
}

type result = {
  rows : row list;  (** The eight Table 1 identities, in table order. *)
  latency : (string * Sim_metrics.Hist.t) list;  (** Histograms by kind. *)
  checks : Exp_report.check list;
}

val run : unit -> result

val render : result -> string
(** Human-readable profile: per-row decompositions plus a quantile table. *)

val to_json : result -> Sim_json.t
val render_json : result -> string
(** [to_json] printed stably (two-space indent, trailing newline). *)

val validate_json : Sim_json.t -> (unit, string) Stdlib.result
(** Structural schema check used by the bench-smoke test: version string,
    eight rows whose spans sum to their pinned totals, ordered quantiles,
    and all embedded shape checks passing. *)
