(** The baseline: a conventional, transparent kernel virtual-memory system
    modelled on ULTRIX 4.1 — the comparator in every table of the paper.

    Differences from the V++ kernel that the paper calls out and that this
    model reproduces:
    - page allocation zero-fills for security (≈75 µs of every minimal
      fault);
    - all fault handling, replacement (global clock) and writeback live in
      the kernel — applications get no information or control;
    - file I/O moves 8 KB per [read]/[write] call (two 4 KB pages), so
      half as many system calls as V++ for the same bytes;
    - a user-level "fault handler" is only expressible as a SIGSEGV
      handler plus [mprotect] — the 152 µs path measured in §3.1. *)

type t

type access = Read | Write

type stats = {
  mutable faults : int;
  mutable zero_fills : int;
  mutable page_ins : int;
  mutable page_outs : int;
  mutable read_calls : int;
  mutable write_calls : int;
  mutable user_faults : int;
  mutable touches : int;
}

val create : ?resident_limit:int -> Hw_machine.t -> t
(** [resident_limit] caps resident pages below the physical frame count
    (models memory pressure without building a huge machine); defaults to
    the full frame count. *)

val machine : t -> Hw_machine.t
val stats : t -> stats
val resident_pages : t -> int

(** {2 Processes and anonymous memory} *)

type pid

val create_process : t -> name:string -> pid

val touch : t -> pid -> vpn:int -> access:access -> unit
(** One memory reference. First touch zero-fills a fresh page (the kernel
    allocates transparently); a paged-out page comes back from swap with a
    disk read; replacement runs the global clock. *)

val exit_process : t -> pid -> unit
(** Free all the process's pages. *)

(** {2 Files (buffer cache)} *)

type fd

val open_file : t -> file_id:int -> size_kb:int -> fd
val preload : t -> fd -> unit
(** Pull the whole file into the cache (used to set up the Tables 2–3
    "files cached" condition outside the measured region). *)

val read : t -> fd -> offset_kb:int -> kb:int -> unit
(** Sequential read; each system call moves at most 8 KB. *)

val write : t -> fd -> offset_kb:int -> kb:int -> unit
(** Write/append; 8 KB per call, allocating cache pages as needed. *)

(** {2 User-level fault handling (Appel–Li style)} *)

val protect : t -> pid -> vpn:int -> unit
(** [mprotect PROT_NONE] one page. *)

val touch_protected : t -> pid -> vpn:int -> unit
(** Reference a protected page with a user handler installed that just
    unprotects it: SIGSEGV delivery + mprotect + sigreturn — the paper's
    152 µs measurement. *)
