type lsn = int

type t = {
  disk : Hw_disk.t;
  record_bytes : int;
  mutable next_lsn : lsn;
  mutable flushed : lsn;
  mutable flushes : int;
  mutable violations : int;
  page_lsns : (Epcm_segment.id * int, lsn) Hashtbl.t;
}

let create disk ?(record_bytes = 256) () =
  {
    disk;
    record_bytes;
    next_lsn = 0;
    flushed = 0;
    flushes = 0;
    violations = 0;
    page_lsns = Hashtbl.create 256;
  }

let append t =
  t.next_lsn <- t.next_lsn + 1;
  t.next_lsn

let note_page_write t ~seg ~page ~lsn = Hashtbl.replace t.page_lsns (seg, page) lsn
let page_lsn t ~seg ~page = Hashtbl.find_opt t.page_lsns (seg, page)

let flush_to t ~lsn =
  if lsn > t.flushed then begin
    let pending = min lsn t.next_lsn - t.flushed in
    (* Group commit: every pending record rides one transfer. *)
    Hw_disk.write t.disk ~bytes:(max t.record_bytes (pending * t.record_bytes));
    t.flushed <- min lsn t.next_lsn;
    t.flushes <- t.flushes + 1
  end

let commit t ~lsn = flush_to t ~lsn

let flushed t = t.flushed
let appended t = t.next_lsn
let flushes t = t.flushes
let wal_violations t = t.violations

let note_data_writeback t ~seg ~page =
  match page_lsn t ~seg ~page with
  | Some lsn when lsn > t.flushed -> t.violations <- t.violations + 1
  | Some _ | None -> ()

let eviction_hook t ~inner ~seg ~page ~dirty =
  match inner ~seg ~page ~dirty with
  | `Discard -> `Discard
  | `Writeback ->
      (match page_lsn t ~seg ~page with
      | Some lsn when lsn > t.flushed ->
          (* The WAL rule: log first, data after. *)
          flush_to t ~lsn
      | Some _ | None -> ());
      note_data_writeback t ~seg ~page;
      `Writeback
