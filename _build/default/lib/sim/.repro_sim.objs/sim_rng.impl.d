lib/sim/sim_rng.ml: Array Int64
