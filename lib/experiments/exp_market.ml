module J = Sim_json
module W = Wl_market

let schema_version = "vpp-market/1"

type leg = {
  l_result : W.result;
  l_wall_s : float;
}

type result = {
  mode : string;
  jobs : int;
  legs : leg list;
  checks : Exp_report.check list;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let slo_ordered s =
  s.W.sc_samples = 0
  || (s.W.sc_p50_us <= s.W.sc_p99_us && s.W.sc_p99_us <= s.W.sc_p999_us)

let checks_for r =
  let name what = Printf.sprintf "%s: %s" r.W.r_name what in
  [
    Exp_report.check ~what:(name "frame + process conservation held") ~pass:r.W.r_conserved
      ~detail:(Printf.sprintf "%d frames, %d accounts" r.W.r_frames r.W.r_accounts);
    Exp_report.check
      ~what:(name "every tenant completed or was refused")
      ~pass:(r.W.r_completed + r.W.r_refused = r.W.r_tenants)
      ~detail:
        (Printf.sprintf "%d completed + %d refused of %d" r.W.r_completed r.W.r_refused
           r.W.r_tenants);
    Exp_report.check
      ~what:(name "admission control was exercised (deferrals occurred)")
      ~pass:(r.W.r_defer_events > 0)
      ~detail:(Printf.sprintf "%d defer events" r.W.r_defer_events);
    Exp_report.check
      ~what:(name "poor tenants were refused by the market")
      ~pass:(r.W.r_refused > 0)
      ~detail:(Printf.sprintf "%d refused" r.W.r_refused);
    Exp_report.check
      ~what:(name "dram conservation: no minting or destruction")
      ~pass:(r.W.r_conservation_residual < 1e-9)
      ~detail:(Printf.sprintf "worst residual %.3e" r.W.r_conservation_residual);
    Exp_report.check
      ~what:(name "all solvent classes stayed solvent")
      ~pass:(r.W.r_min_balance >= 0.0)
      ~detail:(Printf.sprintf "min balance %.3f drams" r.W.r_min_balance);
    Exp_report.check
      ~what:(name "SLO quantiles ordered p50 <= p99 <= p999")
      ~pass:(List.for_all slo_ordered r.W.r_slos)
      ~detail:
        (String.concat ", "
           (List.map
              (fun s ->
                Printf.sprintf "%s %.0f/%.0f/%.0f" s.W.sc_class s.W.sc_p50_us s.W.sc_p99_us
                  s.W.sc_p999_us)
              r.W.r_slos));
    Exp_report.check
      ~what:(name "billable time never exceeds wall time")
      ~pass:(r.W.r_billable_s <= (r.W.r_sim_us /. 1_000_000.0) +. 1e-9)
      ~detail:
        (Printf.sprintf "%.3fs billable of %.3fs simulated" r.W.r_billable_s
           (r.W.r_sim_us /. 1_000_000.0));
  ]

let run ?(quick = false) ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> Exp_par.default_jobs () in
  let configs = if quick then [ W.small ] else [ W.small; W.production ] in
  let legs =
    Exp_par.map ~jobs
      (List.map
         (fun cfg () ->
           let r, wall = timed (fun () -> W.run cfg) in
           { l_result = r; l_wall_s = wall })
         configs)
  in
  let checks = List.concat_map (fun l -> checks_for l.l_result) legs in
  { mode = (if quick then "quick" else "full"); jobs; legs; checks }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "Market: multi-tenant admission control at scale (%s record, %s mode)\n"
       schema_version r.mode);
  Buffer.add_string buf
    (Exp_report.fmt_table
       ~header:
         [
           "run"; "tenants"; "frames"; "completed"; "refused"; "defers"; "granted"; "saver cyc";
           "faults"; "sim (s)"; "wall (s)";
         ]
       ~rows:
         (List.map
            (fun l ->
              let w = l.l_result in
              [
                w.W.r_name;
                string_of_int w.W.r_tenants;
                string_of_int w.W.r_frames;
                string_of_int w.W.r_completed;
                string_of_int w.W.r_refused;
                string_of_int w.W.r_defer_events;
                string_of_int w.W.r_granted_frames;
                string_of_int w.W.r_saver_cycles;
                string_of_int w.W.r_faults;
                Printf.sprintf "%.3f" (w.W.r_sim_us /. 1_000_000.0);
                Printf.sprintf "%.2f" l.l_wall_s;
              ])
            r.legs));
  List.iter
    (fun l ->
      let w = l.l_result in
      Buffer.add_string buf
        (Printf.sprintf "\n%s: per-class SLO (acquire-to-resident, target %.0f us)\n" w.W.r_name
           w.W.r_slo_us);
      Buffer.add_string buf
        (Exp_report.fmt_table
           ~header:
             [ "class"; "tenants"; "done"; "refused"; "p50 (us)"; "p99 (us)"; "p999 (us)";
               "max (us)"; "violations" ]
           ~rows:
             (List.map
                (fun s ->
                  [
                    s.W.sc_class;
                    string_of_int s.W.sc_tenants;
                    string_of_int s.W.sc_completed;
                    string_of_int s.W.sc_refused;
                    Printf.sprintf "%.0f" s.W.sc_p50_us;
                    Printf.sprintf "%.0f" s.W.sc_p99_us;
                    Printf.sprintf "%.0f" s.W.sc_p999_us;
                    Printf.sprintf "%.0f" s.W.sc_max_us;
                    string_of_int s.W.sc_violations;
                  ])
                w.W.r_slos)))
    r.legs;
  Buffer.add_string buf "\nShape checks:\n";
  Buffer.add_string buf (Exp_report.render_checks r.checks);
  Buffer.contents buf

let slo_json s =
  J.Obj
    [
      ("class", J.Str s.W.sc_class);
      ("tenants", J.Num (float_of_int s.W.sc_tenants));
      ("completed", J.Num (float_of_int s.W.sc_completed));
      ("refused", J.Num (float_of_int s.W.sc_refused));
      ("samples", J.Num (float_of_int s.W.sc_samples));
      ("p50_us", J.Num s.W.sc_p50_us);
      ("p99_us", J.Num s.W.sc_p99_us);
      ("p999_us", J.Num s.W.sc_p999_us);
      ("max_us", J.Num s.W.sc_max_us);
      ("violations", J.Num (float_of_int s.W.sc_violations));
    ]

let to_json r =
  J.Obj
    [
      ("schema", J.Str schema_version);
      ("mode", J.Str r.mode);
      ("jobs", J.Num (float_of_int r.jobs));
      ( "legs",
        J.List
          (List.map
             (fun l ->
               let w = l.l_result in
               J.Obj
                 [
                   ("name", J.Str w.W.r_name);
                   ("frames", J.Num (float_of_int w.W.r_frames));
                   ("tenants", J.Num (float_of_int w.W.r_tenants));
                   ("savers", J.Num (float_of_int w.W.r_savers));
                   ("completed", J.Num (float_of_int w.W.r_completed));
                   ("refused", J.Num (float_of_int w.W.r_refused));
                   ("defer_events", J.Num (float_of_int w.W.r_defer_events));
                   ("granted_frames", J.Num (float_of_int w.W.r_granted_frames));
                   ("saver_cycles", J.Num (float_of_int w.W.r_saver_cycles));
                   ("saver_starved", J.Num (float_of_int w.W.r_saver_starved));
                   ("faults", J.Num (float_of_int w.W.r_faults));
                   ("events", J.Num (float_of_int w.W.r_events));
                   ("sim_us", J.Num w.W.r_sim_us);
                   ("slo_us", J.Num w.W.r_slo_us);
                   ("accounts", J.Num (float_of_int w.W.r_accounts));
                   ("min_balance", J.Num w.W.r_min_balance);
                   ("billable_s", J.Num w.W.r_billable_s);
                   ("conservation_residual", J.Num w.W.r_conservation_residual);
                   ("io_failures", J.Num (float_of_int w.W.r_io_failures));
                   ("conserved", J.Bool w.W.r_conserved);
                   ("wall_s", J.Num l.l_wall_s);
                   ("slos", J.List (List.map slo_json w.W.r_slos));
                 ])
             r.legs) );
      ( "checks",
        J.List
          (List.map
             (fun (c : Exp_report.check) ->
               J.Obj
                 [
                   ("what", J.Str c.Exp_report.what);
                   ("pass", J.Bool c.Exp_report.pass);
                   ("detail", J.Str c.Exp_report.detail);
                 ])
             r.checks) );
    ]

let render_json r = J.to_string ~indent:true (to_json r) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

let validate_json json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let require what = function Some v -> Ok v | None -> Error ("missing or ill-typed " ^ what) in
  let* schema = require "schema" (Option.bind (J.member "schema" json) J.to_str) in
  let* () =
    if schema = schema_version then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" schema schema_version)
  in
  let* _mode = require "mode" (Option.bind (J.member "mode" json) J.to_str) in
  let* legs = require "legs" (Option.bind (J.member "legs" json) J.to_list) in
  let* () = if legs <> [] then Ok () else Error "expected at least one leg" in
  let* () =
    List.fold_left
      (fun acc leg ->
        let* () = acc in
        let* name = require "leg name" (Option.bind (J.member "name" leg) J.to_str) in
        let* conserved = require "conserved" (Option.bind (J.member "conserved" leg) J.to_bool) in
        let* tenants = require "tenants" (Option.bind (J.member "tenants" leg) J.to_float) in
        let* completed = require "completed" (Option.bind (J.member "completed" leg) J.to_float) in
        let* refused = require "refused" (Option.bind (J.member "refused" leg) J.to_float) in
        let* defers =
          require "defer_events" (Option.bind (J.member "defer_events" leg) J.to_float)
        in
        let* residual =
          require "conservation_residual"
            (Option.bind (J.member "conservation_residual" leg) J.to_float)
        in
        let* wall = require "wall_s" (Option.bind (J.member "wall_s" leg) J.to_float) in
        let* slos = require "slos" (Option.bind (J.member "slos" leg) J.to_list) in
        let* () =
          List.fold_left
            (fun acc s ->
              let* () = acc in
              let* cls = require "slo class" (Option.bind (J.member "class" s) J.to_str) in
              let* samples = require "samples" (Option.bind (J.member "samples" s) J.to_float) in
              let* p50 = require "p50_us" (Option.bind (J.member "p50_us" s) J.to_float) in
              let* p99 = require "p99_us" (Option.bind (J.member "p99_us" s) J.to_float) in
              let* p999 = require "p999_us" (Option.bind (J.member "p999_us" s) J.to_float) in
              if samples > 0.0 && not (p50 <= p99 && p99 <= p999) then
                Error (Printf.sprintf "%s/%s: SLO quantiles out of order" name cls)
              else Ok ())
            (Ok ()) slos
        in
        if not conserved then Error (name ^ ": conservation failed")
        else if completed +. refused <> tenants then Error (name ^ ": tenants unaccounted for")
        else if defers <= 0.0 then Error (name ^ ": admission queue never exercised")
        else if residual >= 1e-9 then Error (name ^ ": dram conservation residual too large")
        else if wall < 0.0 then Error (name ^ ": negative wall time")
        else Ok ())
      (Ok ()) legs
  in
  let* checks = require "checks" (Option.bind (J.member "checks" json) J.to_list) in
  List.fold_left
    (fun acc c ->
      let* () = acc in
      let* what = require "check what" (Option.bind (J.member "what" c) J.to_str) in
      let* pass = require "check pass" (Option.bind (J.member "pass" c) J.to_bool) in
      if pass then Ok () else Error ("failed check: " ^ what))
    (Ok ()) checks
