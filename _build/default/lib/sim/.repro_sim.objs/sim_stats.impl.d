lib/sim/sim_stats.ml: Array Buffer Printf Stdlib String
