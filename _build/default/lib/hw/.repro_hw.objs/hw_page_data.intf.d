lib/hw/hw_page_data.mli: Format
