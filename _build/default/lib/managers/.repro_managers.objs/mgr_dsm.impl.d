lib/managers/mgr_dsm.ml: Array Epcm_flags Epcm_kernel Epcm_manager Epcm_segment Fun Hashtbl Hw_cost Hw_machine Hw_page_data Hw_phys_mem List Mgr_free_pages Mgr_generic Printf
