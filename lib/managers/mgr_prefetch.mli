(** Prefetching segment manager for out-of-core scans.

    The paper's motivating example (§1): a large-scale particle simulation
    scans 200 MB per simulated time step — ample time to overlap disk
    read-ahead and writeback with computation {e if} the operating system
    supports application-directed read-ahead, and to discard dead
    intermediate pages instead of writing them back, conserving I/O
    bandwidth.

    This manager serves demand faults from disk, accepts explicit
    [prefetch] requests that fill pages asynchronously (a forked process
    per request), and lets the application [discard] pages it knows are
    dead — even dirty ones — with no writeback. A demand fault on a page
    whose prefetch is in flight simply waits for it. *)

type t

val create :
  Epcm_kernel.t ->
  ?disk:Hw_disk.t ->
  ?retry:Mgr_backing.retry ->
  ?counters:Sim_stats.Counters.t ->
  source:Mgr_generic.source ->
  pool_capacity:int ->
  unit ->
  t
(** [retry] bounds the backing store's attempts per transfer; [counters]
    receives degradation events ("prefetch.prefetch_fill_failed",
    "prefetch.degraded_to_demand"). A forked prefetch that exhausts its
    retry budget dies silently — the page stays absent and a fault on it
    degrades to an inline demand fill rather than wedging on the gate. *)

val manager_id : t -> Epcm_manager.id

val create_file_segment : t -> name:string -> file_id:int -> pages:int -> Epcm_segment.id
(** Data lives on disk; nothing resident initially. *)

val prefetch : t -> seg:Epcm_segment.id -> page:int -> count:int -> unit
(** Start asynchronous fills for any of the pages that are absent and not
    already in flight. Returns immediately. *)

val discard : t -> seg:Epcm_segment.id -> page:int -> count:int -> unit
(** Drop resident pages without writeback (application knows they are
    dead). *)

val resident : t -> seg:Epcm_segment.id -> int

(** {2 Statistics} *)

val prefetches_started : t -> int
val demand_fills : t -> int  (** Faults that had to read the disk inline. *)

val absorbed_faults : t -> int
(** Faults that found a prefetch in flight and only waited for it. *)

val discards : t -> int

val prefetch_failures : t -> int
(** Forked prefetches that died on a backing failure (page left absent). *)

val degraded_to_demand : t -> int
(** Faults that waited on a failed prefetch and then filled inline. *)
