type event = { time : float; tag : string; detail : string }

type t = {
  mutable on : bool;
  capacity : int;
  q : event Queue.t;
  mutable dropped : int;
}

let create ?(enabled = true) ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Sim_trace.create: capacity must be positive";
  { on = enabled; capacity; q = Queue.create (); dropped = 0 }

let enabled t = t.on
let set_enabled t b = t.on <- b

let emit t ~time ~tag detail =
  if t.on then begin
    if Queue.length t.q >= t.capacity then begin
      ignore (Queue.pop t.q);
      t.dropped <- t.dropped + 1
    end;
    Queue.add { time; tag; detail } t.q
  end

let events t = List.of_seq (Queue.to_seq t.q)
let tags t = List.map (fun e -> e.tag) (events t)

let clear t =
  Queue.clear t.q;
  t.dropped <- 0

let dropped t = t.dropped

let pp_event ppf e = Format.fprintf ppf "[%12.2f us] %-24s %s" e.time e.tag e.detail

let dump t =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t);
  Format.pp_print_flush ppf ();
  Buffer.contents buf
