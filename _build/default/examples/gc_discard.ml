(* Garbage pages need no writeback (paper §1 and §4, citing Subramanian).

   An ML-style mutator churns a heap: each cycle it allocates fresh pages,
   dirties them, and a collection then proves most of them dead. Under
   memory pressure those dead pages must be reclaimed. A GC-oblivious
   pager dutifully writes every dirty page to swap first (~15 ms each); a
   manager that the collector can talk to discards them for free — and
   because the frames stay within one protection domain, V++ also skips
   the re-zeroing a conventional kernel would impose on reuse.

   The same manager implements the paper's other GC claim: collection
   frequency adapts to how much physical memory the program actually has.

   Run with: dune exec examples/gc_discard.exe *)

module K = Epcm_kernel
module Seg = Epcm_segment
module Engine = Sim_engine

let heap_pages = 128
let cycles = 12
let alloc_per_cycle = 48 (* pages allocated then mostly dying each cycle *)
let survivors = 8 (* pages per cycle that stay live *)

let build () =
  let machine = Hw_machine.create ~memory_bytes:(16 * 1024 * 1024) () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let granted = ref 0 in
    let init_seg = K.segment kernel init in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  let mgr = Mgr_gc.create kernel ~source ~pool_capacity:256 () in
  let heap = Mgr_gc.create_heap mgr ~name:"ml-heap" ~pages:heap_pages in
  (machine, kernel, mgr, heap)

(* One churn run; [gc_aware] picks discard vs conventional eviction for
   the dead pages. Returns (elapsed s, disk writes). *)
let churn ~gc_aware () =
  let machine, kernel, mgr, heap = build () in
  let elapsed = ref 0.0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      let t0 = Engine.time () in
      for cycle = 0 to cycles - 1 do
        let base = cycle mod 2 * alloc_per_cycle in
        (* Allocate and dirty a fresh region (bump allocation). *)
        for p = base to base + alloc_per_cycle - 1 do
          K.touch kernel ~space:heap ~page:p ~access:Epcm_manager.Write;
          K.uio_write kernel ~seg:heap ~page:p
            (Hw_page_data.block ~file:1 ~block:p ~version:cycle)
        done;
        (* Collection: all but [survivors] of the region are garbage. *)
        let dead_from = base + survivors in
        let dead_count = alloc_per_cycle - survivors in
        if gc_aware then begin
          Mgr_gc.declare_garbage mgr ~seg:heap ~page:dead_from ~count:dead_count;
          ignore (Mgr_gc.reclaim_garbage mgr ~seg:heap)
        end
        else ignore (Mgr_gc.evict_conventional mgr ~seg:heap ~page:dead_from ~count:dead_count)
      done;
      elapsed := Engine.time () -. t0);
  Engine.run machine.Hw_machine.engine;
  (!elapsed /. 1_000_000.0, Hw_disk.writes machine.Hw_machine.disk, mgr)

let () =
  let conv_s, conv_writes, _ = churn ~gc_aware:false () in
  let gc_s, gc_writes, mgr = churn ~gc_aware:true () in
  Printf.printf
    "Churning %d cycles x %d pages (%d survivors/cycle) under memory pressure:\n\n" cycles
    alloc_per_cycle survivors;
  Printf.printf "  GC-oblivious pager    : %6.2f s, %4d swap writes\n" conv_s conv_writes;
  Printf.printf "  discardable garbage   : %6.2f s, %4d swap writes (%d dirty writebacks avoided)\n"
    gc_s gc_writes
    (Mgr_gc.writebacks_avoided mgr);
  Printf.printf "  speedup               : %.1fx, I/O eliminated entirely\n\n" (conv_s /. gc_s);

  (* The adaptation policy: collection frequency follows the allocation. *)
  let demo budget =
    let live = ref survivors in
    let collections = ref 0 in
    for _ = 1 to 20 do
      live := !live + 4;
      if Mgr_gc.should_collect mgr ~live_pages:!live ~budget_pages:budget then begin
        incr collections;
        live := survivors
      end
    done;
    !collections
  in
  Printf.printf "Collections per 20 allocation bursts, by physical budget (1): budget 24 -> %d, budget 48 -> %d, budget 96 -> %d\n"
    (demo 24) (demo 48) (demo 96);
  Printf.printf "(1) more memory, fewer collections — the adaptation only possible because the\n";
  Printf.printf "    SPCM tells the run-time how much physical memory it actually has.\n"
