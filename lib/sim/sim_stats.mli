(** Statistics accumulators used by the experiment runners. *)

(** Streaming summary: count, mean (Welford), variance, min, max. Constant
    memory; suitable for long simulations. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Sample variance; 0 when fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)

  val total : t -> float
  val merge : t -> t -> t
  (** Combine two summaries as if all observations were added to one. *)
end

(** Full-sample series: keeps every observation, supports exact percentiles.
    Used for response-time distributions where the paper reports worst case. *)
module Series : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [0,100]; nearest-rank on the sorted
      sample. Raises [Invalid_argument] when empty. *)

  val to_array : t -> float array
  (** Copy of the observations in insertion order. *)

  val summary : t -> Summary.t
end

(** Fixed-bin histogram over [lo, hi); out-of-range values land in the
    underflow/overflow counters. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit
  val counts : t -> int array
  val underflow : t -> int
  val overflow : t -> int
  val total : t -> int
  val bin_bounds : t -> int -> float * float
  (** Bounds of bin [i]. *)

  val render : t -> width:int -> string
  (** ASCII rendering, one line per non-empty bin. *)
end

(** Named event counters with a deterministic rendering order. Managers
    record retry/degradation events ("backing.read_retries",
    "prefetch.degraded_to_demand", …) into a shared set so a chaos
    scenario can report every manager's failure handling in one place. *)
module Counters : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int
  (** 0 for a name never incremented. *)

  val to_list : t -> (string * int) list
  (** Sorted by name, so two runs of the same seed render identically. *)

  val total : t -> int
  val clear : t -> unit
  val render : t -> string
  (** One "  name  count" line per counter, name-sorted. *)
end

(** Time-weighted average of a piecewise-constant quantity (e.g. busy
    servers, allocated frames): the integral of the value over time divided
    by elapsed time. *)
module Time_weighted : sig
  type t

  val create : now:float -> init:float -> t
  val set : t -> now:float -> float -> unit
  val value : t -> float
  val average : t -> now:float -> float
end
