module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags

type page_state = Invalid | Shared | Exclusive

type t = {
  kern : K.t;
  mutable mid : Mgr.id;
  pool : Mgr_free_pages.t;
  source : Mgr_generic.source;
  n_nodes : int;
  n_pages : int;
  net_latency_us : float;
  mutable node_segs : Seg.id array;
  seg_to_node : (Seg.id, int) Hashtbl.t;
  (* page -> per-node state *)
  states : page_state array array;  (* states.(node).(page) *)
  home : (int, Hw_page_data.t) Hashtbl.t;  (* authoritative data when nobody is Exclusive *)
  mutable transfers : int;
  mutable invalidations : int;
  mutable downgrades : int;
  mutable messages : int;
}

let nodes t = t.n_nodes
let node_segment t ~node = t.node_segs.(node)
let state t ~node ~page = t.states.(node).(page)

let holders t ~page =
  List.filter
    (fun n -> t.states.(n).(page) <> Invalid)
    (List.init t.n_nodes Fun.id)

let charge_net t messages =
  t.messages <- t.messages + messages;
  Hw_machine.charge ~label:"dsm/net" (K.machine t.kern)
    (float_of_int messages *. t.net_latency_us)

(* Non-coherence traffic (e.g. two-phase-commit control messages riding
   the same interconnect) charges the identical per-message latency. *)
let charge_messages t ~messages = charge_net t messages

let charge_copy t =
  Hw_machine.charge ~label:"dsm/copy_page" (K.machine t.kern)
    (K.machine t.kern).Hw_machine.cost.Hw_cost.copy_page

let ensure_pool t n =
  if Mgr_free_pages.available t.pool < n then begin
    match Mgr_free_pages.grant_slot t.pool with
    | None -> ()
    | Some slot ->
        let got =
          t.source ~dst:(Mgr_free_pages.segment t.pool) ~dst_page:slot
            ~count:(max n (min 32 (Mgr_free_pages.room t.pool)))
        in
        Mgr_free_pages.note_granted t.pool got
  end;
  if Mgr_free_pages.available t.pool < n then
    raise (Mgr_generic.Out_of_frames "Mgr_dsm: no frames")

let frame_data t seg page =
  let s = K.segment t.kern seg in
  match (Seg.page s page).Seg.frame with
  | Some f -> (Hw_phys_mem.frame (K.machine t.kern).Hw_machine.mem f).Hw_phys_mem.data
  | None -> Hw_page_data.Zero

(* Current authoritative contents of a page. *)
let latest_data t ~page =
  let exclusive_holder =
    List.find_opt (fun n -> t.states.(n).(page) = Exclusive) (List.init t.n_nodes Fun.id)
  in
  match exclusive_holder with
  | Some n -> frame_data t t.node_segs.(n) page
  | None -> (
      match
        List.find_opt (fun n -> t.states.(n).(page) = Shared) (List.init t.n_nodes Fun.id)
      with
      | Some n -> frame_data t t.node_segs.(n) page
      | None -> ( match Hashtbl.find_opt t.home page with Some d -> d | None -> Hw_page_data.Zero))

(* Take a node's copy away (writing an Exclusive copy home first). *)
let revoke t ~node ~page =
  match t.states.(node).(page) with
  | Invalid -> ()
  | Shared | Exclusive ->
      if t.states.(node).(page) = Exclusive then
        Hashtbl.replace t.home page (frame_data t t.node_segs.(node) page);
      if Mgr_free_pages.room t.pool = 0 then
        ignore (Mgr_free_pages.release_to_initial t.pool ~count:16);
      Mgr_free_pages.put_from t.pool ~src:t.node_segs.(node) ~src_page:page;
      t.states.(node).(page) <- Invalid;
      t.invalidations <- t.invalidations + 1;
      charge_net t 1 (* the invalidation message *)

(* Exclusive holder keeps its copy but drops to Shared (read-only). *)
let downgrade t ~node ~page =
  if t.states.(node).(page) = Exclusive then begin
    Hashtbl.replace t.home page (frame_data t t.node_segs.(node) page);
    K.modify_page_flags t.kern ~seg:t.node_segs.(node) ~page ~count:1
      ~set_flags:Flags.read_only ~clear_flags:Flags.dirty ();
    t.states.(node).(page) <- Shared;
    t.downgrades <- t.downgrades + 1;
    charge_net t 1
  end

(* Install a copy at a node with the given rights. *)
let install t ~node ~page ~exclusive =
  let data = latest_data t ~page in
  ensure_pool t 1;
  (* Request + data reply across the interconnect, then the local copy. *)
  charge_net t 2;
  t.transfers <- t.transfers + 1;
  Mgr_free_pages.set_next_data t.pool data;
  charge_copy t;
  let flags_clear = Flags.of_list [ Flags.dirty; Flags.no_access ] in
  let set_flags = if exclusive then Flags.empty else Flags.read_only in
  let moved =
    Mgr_free_pages.take_to t.pool ~dst:t.node_segs.(node) ~dst_page:page ~count:1
      ~set_flags
      ~clear_flags:(if exclusive then Flags.union flags_clear Flags.read_only else flags_clear)
      ()
  in
  assert (moved = 1);
  t.states.(node).(page) <- (if exclusive then Exclusive else Shared)

let acquire_shared t ~node ~page =
  if t.states.(node).(page) = Invalid then begin
    (* Any Exclusive holder drops to Shared, publishing its data. *)
    List.iter (fun n -> if n <> node then downgrade t ~node:n ~page) (List.init t.n_nodes Fun.id);
    install t ~node ~page ~exclusive:false
  end

let acquire_exclusive t ~node ~page =
  match t.states.(node).(page) with
  | Exclusive -> ()
  | Shared ->
      (* Upgrade: invalidate the other copies, raise our rights. *)
      List.iter (fun n -> if n <> node then revoke t ~node:n ~page) (List.init t.n_nodes Fun.id);
      K.modify_page_flags t.kern ~seg:t.node_segs.(node) ~page ~count:1
        ~clear_flags:Flags.read_only ();
      t.states.(node).(page) <- Exclusive
  | Invalid ->
      List.iter (fun n -> if n <> node then revoke t ~node:n ~page) (List.init t.n_nodes Fun.id);
      install t ~node ~page ~exclusive:true

let on_fault t (fault : Mgr.fault) =
  let machine = K.machine t.kern in
  Hw_machine.charge ~label:"mgr/fault_logic" machine machine.Hw_machine.cost.Hw_cost.manager_fault_logic;
  match Hashtbl.find_opt t.seg_to_node fault.Mgr.f_seg with
  | None -> ()
  | Some node -> (
      match (fault.Mgr.f_kind, fault.Mgr.f_access) with
      | Mgr.Missing, Mgr.Read -> acquire_shared t ~node ~page:fault.Mgr.f_page
      | Mgr.Missing, Mgr.Write -> acquire_exclusive t ~node ~page:fault.Mgr.f_page
      | Mgr.Protection, Mgr.Write -> acquire_exclusive t ~node ~page:fault.Mgr.f_page
      | Mgr.Protection, Mgr.Read ->
          K.modify_page_flags t.kern ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~count:1
            ~clear_flags:Flags.no_access ()
      | Mgr.Cow_write, _ -> acquire_exclusive t ~node ~page:fault.Mgr.f_page)

let create kern ?(name = "dsm-manager") ~source ~nodes ~pages ?(net_latency_us = 1000.0) () =
  if nodes < 1 then invalid_arg "Mgr_dsm.create: need at least one node";
  (* Keep the historical pool/segment names for the default instance. *)
  let seg_prefix = if name = "dsm-manager" then "dsm" else name in
  let t =
    {
      kern;
      mid = -1;
      pool =
        Mgr_free_pages.create kern ~name:(seg_prefix ^ ".free-pages")
          ~capacity:(max 64 (nodes * pages));
      source;
      n_nodes = nodes;
      n_pages = pages;
      net_latency_us;
      node_segs = [||];
      seg_to_node = Hashtbl.create 8;
      states = Array.init nodes (fun _ -> Array.make pages Invalid);
      home = Hashtbl.create 64;
      transfers = 0;
      invalidations = 0;
      downgrades = 0;
      messages = 0;
    }
  in
  t.mid <-
    K.register_manager kern ~name ~mode:`In_process
      ~on_fault:(fun f -> on_fault t f)
      ();
  t.node_segs <-
    Array.init nodes (fun n ->
        let seg = K.create_segment kern ~name:(Printf.sprintf "%s-node-%d" seg_prefix n) ~pages () in
        K.set_segment_manager kern seg t.mid;
        Hashtbl.replace t.seg_to_node seg n;
        seg);
  t

let read t ~node ~page =
  K.touch t.kern ~space:t.node_segs.(node) ~page ~access:Mgr.Read;
  K.uio_read t.kern ~seg:t.node_segs.(node) ~page

let write t ~node ~page data =
  K.touch t.kern ~space:t.node_segs.(node) ~page ~access:Mgr.Write;
  K.uio_write t.kern ~seg:t.node_segs.(node) ~page data

let transfers t = t.transfers
let invalidations t = t.invalidations
let downgrades t = t.downgrades
let messages t = t.messages
