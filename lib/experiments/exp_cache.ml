(* Page-coloring payoff record: the same trace under three frame-placement
   policies on a machine carrying a physically-indexed L2
   (`vpp_repro cache`, the vpp-cache/1 record).

   The machine attaches one Hw_cache per memory tier (64 KB, 64-byte
   lines: 16 page colors at 4 KB pages); every kernel touch feeds the
   referenced frame's base line through the cache of its tier and each
   miss charges Hw_cost.cache_miss_penalty. The trace interleaves the
   first touches of a 16-page hot set with 48 cold pages, then hammers
   the hot set for [rounds] passes. Placement decides everything:

   - [sequential] — a naive pager takes frames in address order, so the
                    interleaved fault-in strides the hot set 4 frames
                    apart: 4 hot pages per color, every hammer access a
                    conflict miss.
   - [random]     — frames drawn uniformly from the free pool (seeded
                    Sim_rng); birthday collisions leave most hot pages
                    sharing a color with another.
   - [colored]    — Mgr_coloring against the live cache geometry: hot
                    page p gets color p, the hot set tiles the cache,
                    and after warm-up the hammer runs miss-free.
   - [colored (tiered)] — the same colored leg on a fast+slow tiered
                    machine with the manager scoped to tier 0
                    (frames_of_color ~tier): placement quality must be
                    identical to the flat leg, frame for frame.

   Apart from the seeded random leg (replayed in-record to pin
   determinism) everything is simulated time: no wall-clock, so reruns
   are bit-identical including the JSON record. *)

module J = Sim_json
module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags
module Phys = Hw_phys_mem
module Engine = Sim_engine

let schema_version = "vpp-cache/1"
let page_size = 4096
let cache_bytes = 64 * 1024
let line_bytes = 64
let hot_pages = 16
let cold_pages = 48
let total_pages = hot_pages + cold_pages
let flat_frames = 256
let fast_frames = 64
let slow_frames = 192
let random_seed = 47L

type leg = {
  l_mode : string;
  l_frames : int;
  l_touches : int;
  l_faults : int;
  l_migrate_calls : int;
  l_migrated_pages : int;
  l_accesses : int;
  l_hits : int;
  l_misses : int;
  l_miss_rate : float;
  l_color_misses : int;
  l_audit_good : int;
  l_audit_total : int;
  l_events : int;
  l_sim_us : float;
  l_conserved : bool;
}

type result = {
  mode : string;
  rounds : int;
  n_colors : int;
  legs : leg list;
  replay_identical : bool;
  checks : Exp_report.check list;
}

(* ------------------------------------------------------------------ *)
(* The trace                                                           *)
(* ------------------------------------------------------------------ *)

(* Interleaved fault-in (hot page p between its three cold companions),
   then [rounds] read passes over the hot set. Under fault-order
   placement the interleave strides the hot set across frames 0, 4, 8,
   ...; under coloring the hot set gets one frame of each color. *)
let trace ~rounds kernel seg =
  for p = 0 to hot_pages - 1 do
    K.touch kernel ~space:seg ~page:p ~access:Mgr.Write;
    for c = 0 to 2 do
      K.touch kernel ~space:seg ~page:(hot_pages + (3 * p) + c) ~access:Mgr.Write
    done
  done;
  for _ = 1 to rounds do
    for p = 0 to hot_pages - 1 do
      K.touch kernel ~space:seg ~page:p ~access:Mgr.Read
    done
  done

(* ------------------------------------------------------------------ *)
(* Placement policies                                                  *)
(* ------------------------------------------------------------------ *)

let serve_protection kernel (fault : Mgr.fault) =
  K.modify_page_flags kernel ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~count:1
    ~clear_flags:(Flags.of_list [ Flags.no_access; Flags.read_only ])
    ()

(* Address-order placement, as in Exp_tier's naive pager. *)
let sequential_pager kernel =
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let on_fault (fault : Mgr.fault) =
    let machine = K.machine kernel in
    Hw_machine.charge ~label:"mgr/fault_logic" machine
      machine.Hw_machine.cost.Hw_cost.manager_fault_logic;
    match fault.Mgr.f_kind with
    | Mgr.Missing | Mgr.Cow_write ->
        let init_seg = K.segment kernel init in
        let len = Seg.length init_seg in
        while !next < len && (Seg.page init_seg !next).Seg.frame = None do
          incr next
        done;
        if !next >= len then failwith "Exp_cache: sequential pager out of frames";
        K.migrate_pages kernel ~src:init ~dst:fault.Mgr.f_seg ~src_page:!next
          ~dst_page:fault.Mgr.f_page ~count:1 ();
        incr next
    | Mgr.Protection -> serve_protection kernel fault
  in
  K.register_manager kernel ~name:"sequential-pager" ~mode:`In_process ~on_fault ()

(* Uniform draw from the remaining free initial slots (frames never come
   back in this workload, so a swap-removal array stays exact). *)
let random_pager kernel ~seed =
  let rng = Sim_rng.create seed in
  let init = K.initial_segment kernel in
  let n = Seg.length (K.segment kernel init) in
  let free = Array.init n Fun.id in
  let left = ref n in
  let on_fault (fault : Mgr.fault) =
    let machine = K.machine kernel in
    Hw_machine.charge ~label:"mgr/fault_logic" machine
      machine.Hw_machine.cost.Hw_cost.manager_fault_logic;
    match fault.Mgr.f_kind with
    | Mgr.Missing | Mgr.Cow_write ->
        if !left = 0 then failwith "Exp_cache: random pager out of frames";
        let j = Sim_rng.int rng !left in
        let slot = free.(j) in
        free.(j) <- free.(!left - 1);
        decr left;
        K.migrate_pages kernel ~src:init ~dst:fault.Mgr.f_seg ~src_page:slot
          ~dst_page:fault.Mgr.f_page ~count:1 ();
    | Mgr.Protection -> serve_protection kernel fault
  in
  K.register_manager kernel ~name:"random-pager" ~mode:`In_process ~on_fault ()

(* Color-constrained SPCM stand-in: grant the lowest free initial-segment
   frame of the wanted color (scoped to [tier] when given), served from
   the per-color frame index. Frames never return to the initial segment
   here, so slot = frame index (identity holds from boot). *)
let colored_source ?tier kernel ~color ~dst ~dst_page ~count =
  let init = K.initial_segment kernel in
  let mem = (K.machine kernel).Hw_machine.mem in
  let grant frame =
    K.migrate_pages kernel ~src:init ~dst ~src_page:frame ~dst_page ~count:1 ();
    1
  in
  if count <> 1 then invalid_arg "Exp_cache.colored_source: count must be 1";
  match color with
  | Some c -> (
      match
        List.find_opt (fun f -> Phys.owner mem f = init) (Phys.frames_of_color ?tier mem c)
      with
      | Some f -> grant f
      | None -> 0)
  | None -> (
      match K.initial_slots ?tier kernel ~limit:1 with
      | slot :: _ -> grant slot
      | [] -> 0)

(* ------------------------------------------------------------------ *)
(* Leg runners                                                         *)
(* ------------------------------------------------------------------ *)

let conserved kernel machine =
  K.frame_owner_total kernel = Hw_machine.n_frames machine
  && K.frame_owner_audit kernel = K.frame_owner_audit_scan kernel
  && K.frame_owner_audit_tiered kernel = K.frame_owner_audit_tiered_scan kernel
  && Engine.live_processes machine.Hw_machine.engine = 0

let finish ~mode ~machine ~kernel ~coloring =
  let stats = K.stats kernel in
  let accesses, hits, misses = Hw_machine.cache_stats machine in
  let color_misses, (audit_good, audit_total) =
    match coloring with
    | None -> (0, (0, 0))
    | Some (mgr, seg) -> (Mgr_coloring.color_misses mgr, Mgr_coloring.audit mgr ~seg)
  in
  {
    l_mode = mode;
    l_frames = Hw_machine.n_frames machine;
    l_touches = stats.K.touches;
    l_faults = stats.K.faults_missing + stats.K.faults_protection + stats.K.faults_cow;
    l_migrate_calls = stats.K.migrate_calls;
    l_migrated_pages = stats.K.migrated_pages;
    l_accesses = accesses;
    l_hits = hits;
    l_misses = misses;
    l_miss_rate = (if accesses = 0 then 0.0 else float_of_int misses /. float_of_int accesses);
    l_color_misses = color_misses;
    l_audit_good = audit_good;
    l_audit_total = audit_total;
    l_events = Engine.events_executed machine.Hw_machine.engine;
    l_sim_us = Hw_machine.now machine;
    l_conserved = conserved kernel machine;
  }

let cache_spec = Hw_machine.l2_cache ~line_bytes ~size_bytes:cache_bytes ()

let make_machine ~tiered =
  if tiered then
    Hw_machine.create ~page_size ~cache:cache_spec
      ~tiers:
        [
          Phys.dram_tier ~bytes:(fast_frames * page_size);
          Phys.slow_dram_tier ~bytes:(slow_frames * page_size);
        ]
      ()
  else
    Hw_machine.create ~page_size ~cache:cache_spec ~memory_bytes:(flat_frames * page_size) ()

let run_leg ~mode ~rounds ~make_manager ~tiered () =
  let machine = make_machine ~tiered in
  let kernel = K.create machine in
  let mid, coloring = make_manager kernel in
  let seg =
    match coloring with
    | Some (mgr, _) ->
        let seg = Mgr_coloring.create_segment mgr ~name:"cache-heap" ~pages:total_pages in
        seg
    | None ->
        let seg = K.create_segment kernel ~name:"cache-heap" ~pages:total_pages () in
        K.set_segment_manager kernel seg mid;
        seg
  in
  let coloring = Option.map (fun (mgr, ()) -> (mgr, seg)) coloring in
  Engine.spawn machine.Hw_machine.engine (fun () -> trace ~rounds kernel seg);
  Engine.run machine.Hw_machine.engine;
  finish ~mode ~machine ~kernel ~coloring

let run_sequential ~rounds () =
  run_leg ~mode:"sequential" ~rounds ~tiered:false
    ~make_manager:(fun kernel -> (sequential_pager kernel, None))
    ()

let run_random ~rounds ~mode () =
  run_leg ~mode ~rounds ~tiered:false
    ~make_manager:(fun kernel -> (random_pager kernel ~seed:random_seed, None))
    ()

let run_colored ~rounds ~tiered () =
  let mode = if tiered then "colored (tiered)" else "colored" in
  run_leg ~mode ~rounds ~tiered
    ~make_manager:(fun kernel ->
      let tier = if tiered then Some 0 else None in
      let source ~color ~dst ~dst_page ~count =
        colored_source ?tier kernel ~color ~dst ~dst_page ~count
      in
      let mgr = Mgr_coloring.create kernel ?tier ~source ~pool_capacity:hot_pages () in
      (Mgr_coloring.manager_id mgr, Some (mgr, ())))
    ()

(* ------------------------------------------------------------------ *)
(* The record                                                          *)
(* ------------------------------------------------------------------ *)

let pct x = 100.0 *. x

let checks_of ~legs ~replay_identical ~n_colors =
  let find mode = List.find (fun l -> l.l_mode = mode) legs in
  let sequential = find "sequential"
  and random = find "random"
  and colored = find "colored"
  and tiered = find "colored (tiered)" in
  [
    Exp_report.check ~what:"frame conservation held in every leg"
      ~pass:(List.for_all (fun l -> l.l_conserved) legs)
      ~detail:(Printf.sprintf "%d legs" (List.length legs));
    Exp_report.check ~what:"cache stats conserved in every leg (accesses = hits + misses)"
      ~pass:(List.for_all (fun l -> l.l_accesses = l.l_hits + l.l_misses) legs)
      ~detail:(Printf.sprintf "%d accesses" colored.l_accesses);
    Exp_report.check ~what:"all legs issued the identical reference stream"
      ~pass:
        (List.for_all
           (fun l -> l.l_touches = colored.l_touches && l.l_accesses = colored.l_accesses)
           legs
        && List.for_all (fun l -> l.l_faults = colored.l_faults) legs)
      ~detail:(Printf.sprintf "%d touches, %d faults" colored.l_touches colored.l_faults);
    Exp_report.check ~what:"colored placement beats random on miss rate"
      ~pass:(colored.l_miss_rate < random.l_miss_rate)
      ~detail:
        (Printf.sprintf "%.2f%% vs %.2f%%" (pct colored.l_miss_rate) (pct random.l_miss_rate));
    Exp_report.check ~what:"colored placement beats sequential on miss rate"
      ~pass:(colored.l_miss_rate < sequential.l_miss_rate)
      ~detail:
        (Printf.sprintf "%.2f%% vs %.2f%%" (pct colored.l_miss_rate)
           (pct sequential.l_miss_rate));
    Exp_report.check ~what:"miss penalties dominate: colored saves simulated time vs sequential"
      ~pass:(colored.l_sim_us < sequential.l_sim_us)
      ~detail:
        (Printf.sprintf "%.0f vs %.0f us (saves %.0f)" colored.l_sim_us sequential.l_sim_us
           (sequential.l_sim_us -. colored.l_sim_us));
    Exp_report.check ~what:"colored leg is perfectly colored (no color misses, audit clean)"
      ~pass:
        (colored.l_color_misses = 0
        && colored.l_audit_good = colored.l_audit_total
        && colored.l_audit_total = total_pages)
      ~detail:
        (Printf.sprintf "%d/%d pages, %d misses" colored.l_audit_good colored.l_audit_total
           colored.l_color_misses);
    Exp_report.check
      ~what:"tier-scoped coloring reproduces flat placement quality (frames_of_color ~tier)"
      ~pass:
        (tiered.l_hits = colored.l_hits && tiered.l_misses = colored.l_misses
        && tiered.l_color_misses = 0 && tiered.l_conserved)
      ~detail:
        (Printf.sprintf "%d hits / %d misses on both" tiered.l_hits tiered.l_misses);
    Exp_report.check ~what:"random leg deterministic per seed (replay identical)"
      ~pass:replay_identical
      ~detail:(Printf.sprintf "seed %Ld" random_seed);
    Exp_report.check ~what:"cache geometry induces a usable color space"
      ~pass:(n_colors = hot_pages)
      ~detail:(Printf.sprintf "%d colors at %d B pages" n_colors page_size);
  ]

let run ?(quick = false) ?(jobs = 1) () =
  let rounds = if quick then 800 else 2500 in
  let results =
    Exp_par.map ~jobs
      [
        run_sequential ~rounds;
        run_random ~rounds ~mode:"random";
        run_random ~rounds ~mode:"random";  (* determinism replay *)
        run_colored ~rounds ~tiered:false;
        run_colored ~rounds ~tiered:true;
      ]
  in
  let sequential = List.nth results 0
  and random = List.nth results 1
  and random_replay = List.nth results 2
  and colored = List.nth results 3
  and tiered = List.nth results 4 in
  let replay_identical = random = random_replay in
  let legs = [ sequential; random; colored; tiered ] in
  let n_colors =
    Hw_cache.n_colors (Hw_cache.create ~line_bytes ~size_bytes:cache_bytes ()) ~page_bytes:page_size
  in
  {
    mode = (if quick then "quick" else "full");
    rounds;
    n_colors;
    legs;
    replay_identical;
    checks = checks_of ~legs ~replay_identical ~n_colors;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "Cache: frame placement vs a physically-indexed L2 (%s record, %s mode)\n"
       schema_version r.mode);
  Buffer.add_string buf
    (Printf.sprintf
       "%d KB cache, %d B lines (%d colors at %d B pages); %d hot + %d cold pages, %d rounds\n"
       (cache_bytes / 1024) line_bytes r.n_colors page_size hot_pages cold_pages r.rounds);
  Buffer.add_string buf
    (Exp_report.fmt_table
       ~header:
         [
           "placement"; "faults"; "migrated"; "accesses"; "hits"; "misses"; "miss %";
           "color miss"; "sim (us)";
         ]
       ~rows:
         (List.map
            (fun l ->
              [
                l.l_mode;
                string_of_int l.l_faults;
                string_of_int l.l_migrated_pages;
                string_of_int l.l_accesses;
                string_of_int l.l_hits;
                string_of_int l.l_misses;
                Printf.sprintf "%.2f" (pct l.l_miss_rate);
                string_of_int l.l_color_misses;
                Printf.sprintf "%.0f" l.l_sim_us;
              ])
            r.legs));
  Buffer.add_string buf "\nShape checks:\n";
  Buffer.add_string buf (Exp_report.render_checks r.checks);
  Buffer.contents buf

let leg_json l =
  J.Obj
    [
      ("mode", J.Str l.l_mode);
      ("frames", J.Num (float_of_int l.l_frames));
      ("touches", J.Num (float_of_int l.l_touches));
      ("faults", J.Num (float_of_int l.l_faults));
      ("migrate_calls", J.Num (float_of_int l.l_migrate_calls));
      ("migrated_pages", J.Num (float_of_int l.l_migrated_pages));
      ("accesses", J.Num (float_of_int l.l_accesses));
      ("hits", J.Num (float_of_int l.l_hits));
      ("misses", J.Num (float_of_int l.l_misses));
      ("miss_rate", J.Num l.l_miss_rate);
      ("color_misses", J.Num (float_of_int l.l_color_misses));
      ("audit_good", J.Num (float_of_int l.l_audit_good));
      ("audit_total", J.Num (float_of_int l.l_audit_total));
      ("events", J.Num (float_of_int l.l_events));
      ("sim_us", J.Num l.l_sim_us);
      ("conserved", J.Bool l.l_conserved);
    ]

let to_json r =
  J.Obj
    [
      ("schema", J.Str schema_version);
      ("mode", J.Str r.mode);
      ( "geometry",
        J.Obj
          [
            ("cache_bytes", J.Num (float_of_int cache_bytes));
            ("line_bytes", J.Num (float_of_int line_bytes));
            ("page_size", J.Num (float_of_int page_size));
            ("n_colors", J.Num (float_of_int r.n_colors));
          ] );
      ("rounds", J.Num (float_of_int r.rounds));
      ("legs", J.List (List.map leg_json r.legs));
      ("replay_identical", J.Bool r.replay_identical);
      ( "checks",
        J.List
          (List.map
             (fun (c : Exp_report.check) ->
               J.Obj
                 [
                   ("what", J.Str c.Exp_report.what);
                   ("pass", J.Bool c.Exp_report.pass);
                   ("detail", J.Str c.Exp_report.detail);
                 ])
             r.checks) );
    ]

let render_json r = J.to_string ~indent:true (to_json r) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

let validate_json json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let require what = function Some v -> Ok v | None -> Error ("missing or ill-typed " ^ what) in
  let* schema = require "schema" (Option.bind (J.member "schema" json) J.to_str) in
  let* () =
    if schema = schema_version then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" schema schema_version)
  in
  let* _mode = require "mode" (Option.bind (J.member "mode" json) J.to_str) in
  let* geometry = require "geometry" (J.member "geometry" json) in
  let* n_colors =
    require "geometry n_colors" (Option.bind (J.member "n_colors" geometry) J.to_float)
  in
  let* () =
    if n_colors >= 2.0 then Ok () else Error "cache geometry induces fewer than two colors"
  in
  let* legs = require "legs" (Option.bind (J.member "legs" json) J.to_list) in
  let* () = if List.length legs >= 3 then Ok () else Error "expected at least three legs" in
  let leg_field what leg get = require ("leg " ^ what) (Option.bind (J.member what leg) get) in
  let* parsed =
    List.fold_left
      (fun acc leg ->
        let* acc = acc in
        let* mode = leg_field "mode" leg J.to_str in
        let* conserved = leg_field "conserved" leg J.to_bool in
        let* accesses = leg_field "accesses" leg J.to_float in
        let* hits = leg_field "hits" leg J.to_float in
        let* misses = leg_field "misses" leg J.to_float in
        let* miss_rate = leg_field "miss_rate" leg J.to_float in
        if not conserved then Error (mode ^ ": frame conservation failed")
        else if accesses <> hits +. misses then
          Error (mode ^ ": cache stats not conserved (accesses <> hits + misses)")
        else if miss_rate < 0.0 || miss_rate > 1.0 then Error (mode ^ ": miss rate out of range")
        else if accesses <= 0.0 then Error (mode ^ ": no cache accesses recorded")
        else Ok ((mode, miss_rate) :: acc))
      (Ok []) legs
  in
  let find want = List.assoc_opt want parsed in
  let* colored = require "colored leg" (find "colored") in
  let* random = require "random leg" (find "random") in
  let* sequential = require "sequential leg" (find "sequential") in
  let* () =
    if colored < random then Ok ()
    else
      Error
        (Printf.sprintf "colored placement did not beat random (%.4f vs %.4f miss rate)" colored
           random)
  in
  let* () =
    if colored < sequential then Ok ()
    else Error "colored placement did not beat sequential"
  in
  let* replay =
    require "replay_identical" (Option.bind (J.member "replay_identical" json) J.to_bool)
  in
  let* () = if replay then Ok () else Error "random leg was not deterministic per seed" in
  let* checks = require "checks" (Option.bind (J.member "checks" json) J.to_list) in
  List.fold_left
    (fun acc c ->
      let* () = acc in
      let* what = require "check what" (Option.bind (J.member "what" c) J.to_str) in
      let* pass = require "check pass" (Option.bind (J.member "pass" c) J.to_bool) in
      if pass then Ok () else Error ("failed check: " ^ what))
    (Ok ()) checks
