(** Incremental copy-on-write checkpointing.

    §3.1 argues that cheap user-level fault handling enables the
    Appel–Li-style algorithms — concurrent garbage collection and
    {e concurrent checkpointing}. This manager implements the latter on
    the external page-cache primitives:

    - [begin_checkpoint] write-protects every resident page of the
      managed segment (one [ModifyPageFlags] sweep) and opens a
      checkpoint generation;
    - the mutator keeps running; its first write to any page takes a
      107 µs-class protection fault, at which point the manager saves the
      {e old} contents into the checkpoint store and unprotects the page —
      copies happen only for pages actually modified;
    - [read_checkpoint] reconstructs the page image as of the snapshot
      instant at any time (saved copy if the mutator dirtied it, current
      contents otherwise);
    - [end_checkpoint] drops protections that never faulted.

    Under a conventional kernel the only tool is full stop-and-copy; the
    measured win is in the checkpoint example and ablation bench. *)

type t

type generation = int

val create :
  Epcm_kernel.t ->
  ?backing:Mgr_backing.t ->
  ?counters:Sim_stats.Counters.t ->
  source:Mgr_generic.source ->
  pool_capacity:int ->
  unit ->
  t
(** [backing], when given, makes checkpoints durable: [end_checkpoint]
    writes every image of the closing generation to it (file
    [seg * 4096 + generation], block = page). A write that exhausts its
    retry budget costs that image its durability only — it stays readable
    in memory, the loss is counted in {!durable_failures} and reported as
    "checkpoint.durable_write_lost" on [counters], and the checkpoint
    still closes. Without [backing] the store is memory-only, as before. *)

val manager_id : t -> Epcm_manager.id

val create_segment : t -> name:string -> pages:int -> Epcm_segment.id

val begin_checkpoint : t -> seg:Epcm_segment.id -> generation
(** Raises [Invalid_argument] if a checkpoint is already open on this
    segment (one at a time per segment). *)

val end_checkpoint : t -> seg:Epcm_segment.id -> unit

val read_checkpoint :
  t -> seg:Epcm_segment.id -> generation:generation -> page:int -> Hw_page_data.t
(** The page's contents as of [begin_checkpoint] of that generation.
    Raises [Not_found] for generations never taken or pages that were
    not resident at snapshot time. *)

val pages_preserved : t -> int
(** Old images copied because the mutator wrote during a checkpoint. *)

val checkpoint_faults : t -> int

val durable_writes : t -> int
(** Generation images successfully persisted to the backing store. *)

val durable_failures : t -> int
(** Images whose persistence write exhausted its retry budget (still
    readable in memory; durability lost and counted). *)
