lib/hw/hw_disk.mli: Sim_engine
