(** The memory market (paper §2.4).

    The SPCM charges a process [M * D * T] {e drams} for holding M
    megabytes over T seconds at charging rate D, pays each process an
    income of I drams per second, taxes savings so demand cannot
    indefinitely bank ahead of a fixed supply, and charges for I/O so
    scan-structured programs cannot dodge the memory charge by thrashing.
    Processes that exhaust their dram supply are treated as faulty and
    forced to return memory.

    {b Scaling model (ROADMAP item 1).} Settlement is {e lazy}: each
    account carries its own settlement horizon and is brought current in
    O(1) when (and only when) it is touched — a holding change, an I/O
    charge, an admission decision, or an explicit {!settle_lazy}. The
    full-scan {!settle} is kept as the O(accounts) reference; the
    differential market model in [test_spcm.ml] pins lazy == full-scan on
    random operation sequences. Laziness is sound because accounts are
    economically independent and accrual is {e schedule-invariant}: the
    balance trajectory is the exact closed-form flow of

    {v d(balance)/dB = income - holding_cost - tax_rate * max (balance - threshold, 0) v}

    over {e billable} time B, so settling in one step or many gives the
    same result (up to floating-point rounding of the exponential tax
    branch, which chunks differently).

    {b Billable time.} When [free_when_idle] is set, the market clock only
    ticks while memory requests are outstanding (the paper's "continue to
    use memory at no charge when there are no outstanding memory
    requests"): income, holding charges and the savings tax all pause
    while the system is idle. The demand flag feeds a cumulative
    billable-seconds accumulator ({!set_demand} is O(1), never a scan).
    With [free_when_idle] false, billable time is wall time.

    Time is supplied by the caller in {e microseconds} (the simulation
    clock); rates in the config are per second. *)

type config = {
  charge_rate : float;  (** D: drams per megabyte-second of holding. *)
  default_income : float;  (** I: drams per second per account. *)
  savings_tax_rate : float;
      (** Decay rate (per second) pulling the balance excess over the
          threshold back toward it. *)
  savings_tax_threshold : float;
  io_charge : float;  (** Drams per I/O operation. *)
  free_when_idle : bool;
      (** The market clock only ticks while requests are outstanding. *)
}

val default_config : config

type account_id = int

type account = {
  acc_id : account_id;
  acc_name : string;
  mutable income : float;  (** drams per second *)
  mutable balance : float;
  mutable holding_pages : int;
  mutable last_settle_us : float;
  mutable last_billable_s : float;
      (** Billable-clock reading at the last settlement. *)
  mutable total_charged : float;
  mutable total_taxed : float;
  mutable total_income : float;
  mutable io_ops : int;
}

type t

val create : ?config:config -> page_size:int -> unit -> t
(** Raises [Invalid_argument] unless [page_size] is positive and every
    config rate/threshold is finite and non-negative — a NaN or negative
    rate would let a mis-tuned market silently mint or destroy drams. *)

val config : t -> config

val open_account : ?income:float -> t -> name:string -> now_us:float -> account_id
(** Raises [Invalid_argument] if [income] is not finite and non-negative. *)

val account : t -> account_id -> account
val accounts : t -> account list
val n_accounts : t -> int

val settle : t -> now_us:float -> unit
(** Full-scan reference settlement: bring {e every} account current to
    [now_us]. O(accounts) — report/audit time only; the hot paths use
    {!settle_lazy}. *)

val settle_lazy : t -> account_id -> now_us:float -> unit
(** Bring one account current to [now_us] in O(1): accrue income, charge
    for holdings, and apply the savings tax over the account's own billable
    window. Raises [Invalid_argument] if [now_us] precedes the account's
    last settlement (time running backwards would mint income) or if the
    settled balance is not finite (underflow/overflow guard). *)

val set_demand : t -> bool -> now_us:float -> unit
(** Whether any memory requests are outstanding. Drives the billable
    clock; O(1) regardless of account count. *)

val demand : t -> bool

val billable_s : t -> now_us:float -> float
(** The billable-clock reading at [now_us] (seconds). *)

val note_holding_change : t -> account_id -> delta_pages:int -> now_us:float -> unit
(** Settle the account lazily, then adjust its holdings. *)

val note_io : t -> account_id -> ops:int -> now_us:float -> unit
(** Settle the account lazily, then charge [ops] I/O operations. Raises
    [Invalid_argument] if [ops] is negative (a refund would mint drams). *)

val can_afford : t -> account_id -> pages:int -> seconds:float -> bool
(** Would the account's balance cover holding [pages] more pages for
    [seconds], at current income? (Balance + income accrual vs charge.)
    Reads the stored balance; settle first for an up-to-date answer. *)

val bankrupt : t -> account_id -> bool
(** Balance below zero — the SPCM may force memory return. *)

val holding_cost_per_second : t -> pages:int -> float

val conservation_error : t -> float
(** The no-minting audit: for every account,
    [balance = total_income - total_charged - total_taxed - io_ops * io_charge]
    must hold. Returns the worst relative residual over all accounts
    (absolute residual scaled by [1 + ] the sum of the terms' magnitudes);
    anything above ~1e-9 means drams were created or destroyed outside the
    documented flows. *)
