(** Machine cost model: microsecond charges for the primitive steps that
    kernel and manager code paths execute.

    The simulated kernels do not return benchmark numbers directly; they
    execute the same step sequences as the real code paths and charge each
    step from this table, so the Table 1 rows are {e emergent sums}.

    Calibration (DECstation 5000/200, 25 MHz R3000, 4 KB pages) is anchored
    on the paper's own measurements:

    - V++ minimal fault, handled by the faulting process = 107 µs
      = segment_walk + trap_entry + fault_decode + upcall_deliver
        + manager_fault_logic + (syscall_base + migrate_base
        + migrate_per_page) + resume_direct + pte_update
      = 9 + 5 + 5 + 10 + 12 + (25 + 15 + 6) + 16 + 4.
    - Ultrix minimal fault = 175 µs
      = segment_walk + trap_entry + fault_decode + ultrix_fault_service
        + zero_page + pte_update + trap_exit
      = 9 + 5 + 5 + 70 + 75 + 4 + 7 — the paper attributes ~75 µs of the
      V++/Ultrix difference to Ultrix's security page zeroing.
    - V++ minimal fault via the (separate-process) default manager = 379 µs
      = the in-process path with resume_direct replaced by IPC both ways:
        segment_walk + trap_entry + fault_decode + ipc_send
        + context_switch + manager_server_dispatch + manager_fault_logic
        + migrate syscall + ipc_reply + context_switch + resume_via_kernel
        + trap_exit + pte_update
      = 9 + 5 + 5 + 28 + 85 + 35 + 12 + 46 + 28 + 85 + 30 + 7 + 4.
    - Ultrix user-level reprotection fault (signal + mprotect) = 152 µs
      = trap_entry + fault_decode + signal_deliver + (syscall_base
        + mprotect_base + pte_update + tlb_flush_page) + sigreturn
      = 5 + 5 + 45 + (25 + 20 + 4 + 2) + 46.
    - Cached file 4 KB: V++ read 222 = syscall_base + uio_read_overhead
      + copy_page; V++ write 203 = syscall_base + uio_write_overhead
      + copy_page; Ultrix read 211 = syscall_base + vnode_lookup
      + copy_page; Ultrix write 311 adds ultrix_write_bookkeeping (buffer
      cache block handling with its 8 KB transfer unit).

    The SGI 4D/380 preset (Table 4) only needs MIPS rate, fault service
    time and disk parameters; the paper simulated that machine too. *)

type t = {
  (* traps and mode switches *)
  trap_entry : float;
  trap_exit : float;
  fault_decode : float;  (** Kernel identifies faulting segment + page. *)
  upcall_deliver : float;  (** Kernel transfers control to a user handler. *)
  resume_direct : float;  (** R3000-style resume without kernel re-entry. *)
  resume_via_kernel : float;  (** MC680x0-style resume through the kernel. *)
  signal_deliver : float;  (** Unix signal delivery to a user handler. *)
  sigreturn : float;
  context_switch : float;
  (* kernel calls *)
  syscall_base : float;  (** Entry+exit of any kernel operation. *)
  migrate_base : float;
  migrate_per_page : float;
  modify_flags_base : float;
  modify_flags_per_page : float;
  get_attributes_base : float;
  get_attributes_per_page : float;
  set_manager : float;
  bind_region : float;
  mprotect_base : float;
  (* memory-system micro-ops *)
  pte_update : float;  (** Per page-table/hash entry touched. *)
  tlb_flush_page : float;
  tlb_refill : float;  (** Software TLB miss refill. *)
  zero_page : float;  (** Zero-fill one 4 KB page. *)
  copy_page : float;  (** Copy one 4 KB page memory-to-memory. *)
  segment_walk : float;  (** Mapping-hash miss: walk segment structures. *)
  (* IPC between faulting process / kernel / manager *)
  ipc_send : float;
  ipc_reply : float;
  manager_server_dispatch : float;  (** Message demux in a manager server. *)
  manager_fault_logic : float;  (** Manager-internal bookkeeping per fault. *)
  (* file paths *)
  uio_read_overhead : float;
  uio_write_overhead : float;
  vnode_lookup : float;
  ultrix_fault_service : float;  (** Ultrix kernel fault service, sans zero. *)
  ultrix_write_bookkeeping : float;
  (* superpage (2 MB) translation micro-ops — charged {e only} on
     superpage paths (promotion, demotion/split, super TLB refills), so
     a machine that never installs a superpage charges none of these and
     the Table 1 identities above are untouched. *)
  tlb_refill_super : float;  (** Software refill of one 2 MB TLB entry. *)
  pte_update_super : float;  (** Install/update one 2 MB mapping entry. *)
  superpage_promote : float;
      (** Fold an aligned run of resident 4 KB mappings into one
          superpage (scan + merge bookkeeping), on top of
          [pte_update_super] for the install. *)
  superpage_demote : float;
      (** Split one superpage back to 4 KB granularity (the demoted
          pages rebuild their 4 KB entries lazily via segment walks). *)
  (* physically-indexed cache (attached via [Hw_machine.create ?cache]) *)
  cache_miss_penalty : float;
      (** Extra charged per cache-line miss when a machine carries a
          cache model (label ["kernel/cache_miss"]). Machines built
          without [?cache] never consult the model and charge none of
          this, so the Table 1 identities above are untouched. *)
  (* compute *)
  mips : float;  (** Instructions per microsecond of one CPU. *)
}

val decstation_5000_200 : t
(** The Table 1–3 machine: 25 MHz R3000, 4 KB pages. *)

val sgi_4d_380 : t
(** The Table 4 machine: eight 30-MIPS processors (the paper uses six). *)

val instructions_us : t -> float -> float
(** [instructions_us t n] is the time to execute [n] instructions on one
    processor. *)

(** {2 Memory-tier surcharges}

    Per-tier extras layered {e on top of} the flat charges above when a
    machine is built with several memory tiers ({!Hw_phys_mem.tier_spec}).
    A plain DRAM tier charges zero for both, and zero-valued charges are
    dropped by {!Hw_machine.charge} before they reach the engine — so a
    single-DRAM-tier machine is cost-identical to an untier-aware one and
    every pinned table stays byte-identical. *)

type tier_costs = {
  tier_access_us : float;
      (** Extra charged once per fault-path resolution that lands on a
          frame of this tier (label ["kernel/tier_access"]). *)
  tier_migrate_us : float;
      (** Extra charged per page of this tier moved by [MigratePages]
          (label ["kernel/tier_migrate"]). *)
}

val dram_tier_costs : tier_costs
(** All-zero: near DRAM, the 1992 baseline. *)

val slow_dram_tier_costs : tier_costs
(** CXL/NVM-like far memory: 2 µs access, 3 µs/page migrate extras. *)

(** Derived path costs — the sums documented above, recomputed from the
    fields so tests can assert the calibration identities. *)

val vpp_minimal_fault_in_process : t -> float
val vpp_minimal_fault_via_manager : t -> float
val ultrix_minimal_fault : t -> float
val ultrix_user_reprotect_fault : t -> float
val vpp_read_4kb : t -> float
val vpp_write_4kb : t -> float
val ultrix_read_4kb : t -> float
val ultrix_write_4kb : t -> float
