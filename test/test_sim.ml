(* Unit and property tests for the discrete-event simulation substrate. *)

module Rng = Sim_rng
module Stats = Sim_stats
module Heap = Sim_heap
module Engine = Sim_engine
module Sync = Sim_sync
module Trace = Sim_trace

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* RNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  check_bool "streams diverge" true (!same < 4)

let test_rng_float_range () =
  let r = Rng.create 7L in
  for _ = 1 to 10_000 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_int_range () =
  let r = Rng.create 9L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "int out of range: %d" v
  done

let test_rng_int_invalid () =
  let r = Rng.create 1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Sim_rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_exponential_mean () =
  let r = Rng.create 11L in
  let s = Stats.Summary.create () in
  for _ = 1 to 50_000 do
    Stats.Summary.add s (Rng.exponential r ~mean:25.0)
  done;
  let m = Stats.Summary.mean s in
  check_bool "mean near 25" true (m > 24.0 && m < 26.0)

let test_rng_bernoulli () =
  let r = Rng.create 13L in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.05 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  check_bool "p near 0.05" true (p > 0.04 && p < 0.06)

let test_rng_split_independent () =
  let parent = Rng.create 5L in
  let child = Rng.split parent in
  let c1 = Rng.int64 child in
  let p1 = Rng.int64 parent in
  check_bool "child differs from parent draw" true (c1 <> p1)

let test_rng_shuffle_permutation () =
  let r = Rng.create 21L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_summary_basic () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Stats.Summary.count s);
  check_float "mean" 2.5 (Stats.Summary.mean s);
  check_float "min" 1.0 (Stats.Summary.min s);
  check_float "max" 4.0 (Stats.Summary.max s);
  check_float "total" 10.0 (Stats.Summary.total s);
  Alcotest.(check (float 1e-6)) "variance" (5.0 /. 3.0) (Stats.Summary.variance s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  check_float "mean of empty" 0.0 (Stats.Summary.mean s);
  check_float "variance of empty" 0.0 (Stats.Summary.variance s)

let test_summary_merge () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  let all = Stats.Summary.create () in
  List.iter
    (fun x ->
      Stats.Summary.add (if x < 5.0 then a else b) x;
      Stats.Summary.add all x)
    [ 1.0; 2.0; 7.0; 9.0; 3.0; 11.0 ];
  let merged = Stats.Summary.merge a b in
  check_int "count" (Stats.Summary.count all) (Stats.Summary.count merged);
  Alcotest.(check (float 1e-6)) "mean" (Stats.Summary.mean all) (Stats.Summary.mean merged);
  Alcotest.(check (float 1e-6)) "variance" (Stats.Summary.variance all)
    (Stats.Summary.variance merged)

let test_series_percentile () =
  let s = Stats.Series.create () in
  for i = 1 to 100 do
    Stats.Series.add s (float_of_int i)
  done;
  check_float "p50" 50.0 (Stats.Series.percentile s 50.0);
  check_float "p100 = max" 100.0 (Stats.Series.percentile s 100.0);
  check_float "p1" 1.0 (Stats.Series.percentile s 1.0);
  check_float "max" 100.0 (Stats.Series.max s)

let test_series_empty_percentile () =
  let s = Stats.Series.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Sim_stats.Series.percentile: empty series")
    (fun () -> ignore (Stats.Series.percentile s 50.0))

let test_series_growth () =
  let s = Stats.Series.create () in
  for i = 1 to 1000 do
    Stats.Series.add s (float_of_int i)
  done;
  check_int "count survives growth" 1000 (Stats.Series.count s);
  check_float "mean" 500.5 (Stats.Series.mean s)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -1.0; 10.0; 25.0 ];
  check_int "underflow" 1 (Stats.Histogram.underflow h);
  check_int "overflow" 2 (Stats.Histogram.overflow h);
  check_int "total" 7 (Stats.Histogram.total h);
  let c = Stats.Histogram.counts h in
  check_int "bin0" 1 c.(0);
  check_int "bin1" 2 c.(1);
  check_int "bin9" 1 c.(9)

let test_time_weighted () =
  let tw = Stats.Time_weighted.create ~now:0.0 ~init:0.0 in
  Stats.Time_weighted.set tw ~now:10.0 4.0;
  Stats.Time_weighted.set tw ~now:20.0 0.0;
  check_float "average" 2.0 (Stats.Time_weighted.average tw ~now:20.0);
  check_float "average later" 1.0 (Stats.Time_weighted.average tw ~now:40.0)

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.push h ~time:3.0 ~seq:1 "c";
  Heap.push h ~time:1.0 ~seq:2 "a";
  Heap.push h ~time:2.0 ~seq:3 "b";
  let pop () =
    match Heap.pop h with Some (_, _, v) -> v | None -> Alcotest.fail "empty"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ]

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 1 to 10 do
    Heap.push h ~time:5.0 ~seq:i i
  done;
  let order =
    List.init 10 (fun _ ->
        match Heap.pop h with Some (_, _, v) -> v | None -> Alcotest.fail "empty")
  in
  Alcotest.(check (list int)) "FIFO at equal times" (List.init 10 (fun i -> i + 1)) order

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  check_bool "is_empty" true (Heap.is_empty h);
  check_bool "pop none" true (Heap.pop h = None);
  check_bool "peek none" true (Heap.peek_time h = None)

(* Interleaved push/pop sequences against a sorted-list model: the heap's
   observable behaviour (including peek and FIFO order at time ties) is
   exactly a list kept sorted by (time, seq). The engine's delay fast path
   leans on [peek_time] being exact mid-stream, not just after a full
   drain, so the model is checked after every operation. *)
let prop_heap_model =
  QCheck.Test.make ~name:"heap matches sorted-list model under push/pop" ~count:200
    QCheck.(list (option (pair (float_bound_exclusive 100.0) small_int)))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      let seq = ref 0 in
      let insert (t, s, v) =
        let rec go = function
          | [] -> [ (t, s, v) ]
          | ((t', s', _) as hd) :: tl ->
              if (t, s) < (t', s') then (t, s, v) :: hd :: tl else hd :: go tl
        in
        model := go !model
      in
      List.for_all
        (fun op ->
          (match op with
          | Some (t, v) ->
              incr seq;
              Heap.push h ~time:t ~seq:!seq v;
              insert (t, !seq, v)
          | None -> (
              match (Heap.pop h, !model) with
              | None, [] -> ()
              | Some got, expect :: rest when got = expect -> model := rest
              | _ -> QCheck.Test.fail_report "pop disagrees with model"));
          Heap.size h = List.length !model
          && Heap.peek_time h = (match !model with [] -> None | (t, _, _) :: _ -> Some t))
        ops)

(* Regression: [clear] must fully reset the heap so a reused engine heap
   starts empty — a stale size or leftover entry would replay old events. *)
let test_heap_clear_reuse () =
  let h = Heap.create () in
  for i = 1 to 16 do
    Heap.push h ~time:(float_of_int i) ~seq:i i
  done;
  ignore (Heap.pop h);
  Heap.clear h;
  check_bool "empty after clear" true (Heap.is_empty h);
  check_int "size zero after clear" 0 (Heap.size h);
  check_bool "peek none after clear" true (Heap.peek_time h = None);
  check_bool "pop none after clear" true (Heap.pop h = None);
  Heap.push h ~time:2.0 ~seq:1 20;
  Heap.push h ~time:1.0 ~seq:2 10;
  check_bool "reused heap orders fresh pushes" true
    (Heap.pop h = Some (1.0, 2, 10) && Heap.pop h = Some (2.0, 1, 20) && Heap.pop h = None)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck.(list (pair (float_bound_exclusive 1000.0) small_int))
    (fun entries ->
      let h = Heap.create () in
      List.iteri (fun i (t, v) -> Heap.push h ~time:t ~seq:i v) entries;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (t, _, _) -> drain (t :: acc)
      in
      let times = drain [] in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      List.length times = List.length entries && nondecreasing times)

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let test_engine_delay_advances_clock () =
  let e = Engine.create () in
  let finished = ref 0.0 in
  Engine.spawn e (fun () ->
      Engine.delay 100.0;
      Engine.delay 50.0;
      finished := Engine.time ());
  Engine.run e;
  check_float "clock" 150.0 !finished;
  check_float "engine now" 150.0 (Engine.now e);
  check_int "no live processes" 0 (Engine.live_processes e)

(* The delay fast path (nothing due earlier: advance the clock inline,
   skipping the heap) must be observationally identical to the scheduled
   path — including [events_executed], which the perf record reports. A
   lone process takes the fast path on every delay; two interleaved
   processes force the heap path; both must count one event per spawn
   plus one per delay. *)
let test_engine_delay_event_count () =
  let solo = Engine.create () in
  Engine.spawn solo (fun () ->
      for _ = 1 to 5 do
        Engine.delay 1.0
      done);
  Engine.run solo;
  check_int "solo process: spawn + 5 delays" 6 (Engine.events_executed solo);
  let duo = Engine.create () in
  for _ = 1 to 2 do
    Engine.spawn duo (fun () ->
        for _ = 1 to 5 do
          Engine.delay 1.0
        done)
  done;
  Engine.run duo;
  check_int "interleaved processes: 2 spawns + 10 delays" 12 (Engine.events_executed duo)

let test_engine_interleaving () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag = log := tag :: !log in
  Engine.spawn e (fun () ->
      note "a0";
      Engine.delay 10.0;
      note "a10";
      Engine.delay 20.0;
      note "a30");
  Engine.spawn e (fun () ->
      note "b0";
      Engine.delay 15.0;
      note "b15");
  Engine.run e;
  Alcotest.(check (list string))
    "interleaved by time" [ "a0"; "b0"; "a10"; "b15"; "a30" ] (List.rev !log)

let test_engine_until () =
  let e = Engine.create () in
  let reached = ref 0.0 in
  Engine.spawn e (fun () ->
      Engine.delay 100.0;
      reached := 100.0;
      Engine.delay 100.0;
      reached := 200.0);
  Engine.run ~until:150.0 e;
  check_float "stopped at horizon" 100.0 !reached;
  check_float "clock at horizon" 150.0 (Engine.now e);
  Engine.run e;
  check_float "resumes past horizon" 200.0 !reached

let test_engine_fork () =
  let e = Engine.create () in
  let sum = ref 0.0 in
  Engine.spawn e (fun () ->
      Engine.fork (fun () ->
          Engine.delay 5.0;
          sum := !sum +. Engine.time ());
      Engine.delay 1.0;
      sum := !sum +. Engine.time ());
  Engine.run e;
  check_float "fork ran" 6.0 !sum

let test_engine_suspend_resume () =
  let e = Engine.create () in
  let slot = ref None in
  let got = ref (-1) in
  Engine.spawn e (fun () -> got := Engine.suspend (fun resume -> slot := Some resume));
  Engine.spawn e (fun () ->
      Engine.delay 42.0;
      match !slot with Some resume -> resume 99 | None -> Alcotest.fail "no waiter");
  Engine.run e;
  check_int "value passed" 99 !got;
  check_int "no live" 0 (Engine.live_processes e)

let test_engine_deadlock_detectable () =
  let e = Engine.create () in
  Engine.spawn e (fun () -> ignore (Engine.suspend (fun _resume -> ())));
  Engine.run e;
  check_int "blocked process visible" 1 (Engine.live_processes e)

let test_engine_outside_process () =
  Alcotest.check_raises "delay outside" Engine.Not_in_process (fun () -> Engine.delay 1.0)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.spawn e (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "spawn order preserved" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let t = ref nan in
  Engine.spawn e (fun () ->
      Engine.delay 10.0;
      Engine.delay (-5.0);
      t := Engine.time ());
  Engine.run e;
  check_float "no time travel" 10.0 !t

(* ------------------------------------------------------------------ *)
(* Sync                                                               *)
(* ------------------------------------------------------------------ *)

let test_semaphore_mutual_exclusion () =
  let e = Engine.create () in
  let sem = Sync.Semaphore.create 1 in
  let inside = ref 0 and max_inside = ref 0 and done_count = ref 0 in
  for _ = 1 to 5 do
    Engine.spawn e (fun () ->
        Sync.Semaphore.acquire sem;
        incr inside;
        if !inside > !max_inside then max_inside := !inside;
        Engine.delay 10.0;
        decr inside;
        Sync.Semaphore.release sem;
        incr done_count)
  done;
  Engine.run e;
  check_int "all finished" 5 !done_count;
  check_int "never concurrent" 1 !max_inside;
  check_float "serialised time" 50.0 (Engine.now e)

let test_semaphore_try_acquire () =
  let e = Engine.create () in
  let sem = Sync.Semaphore.create 1 in
  let results = ref [] in
  Engine.spawn e (fun () ->
      results := Sync.Semaphore.try_acquire sem :: !results;
      results := Sync.Semaphore.try_acquire sem :: !results;
      Sync.Semaphore.release sem;
      results := Sync.Semaphore.try_acquire sem :: !results);
  Engine.run e;
  Alcotest.(check (list bool)) "try pattern" [ true; false; true ] (List.rev !results)

let test_resource_capacity_and_utilisation () =
  let e = Engine.create () in
  let r = Sync.Resource.create e ~capacity:2 in
  let finish = ref 0.0 in
  for _ = 1 to 4 do
    Engine.spawn e (fun () ->
        Sync.Resource.use r (fun () -> Engine.delay 10.0);
        finish := Engine.time ())
  done;
  Engine.run e;
  check_float "makespan" 20.0 !finish;
  check_float "utilisation" 1.0 (Sync.Resource.utilisation r)

let test_mailbox_fifo () =
  let e = Engine.create () in
  let mb = Sync.Mailbox.create () in
  let got = ref [] in
  Engine.spawn e (fun () ->
      for _ = 1 to 3 do
        got := Sync.Mailbox.recv mb :: !got
      done);
  Engine.spawn e (fun () ->
      Engine.delay 1.0;
      Sync.Mailbox.send mb "x";
      Sync.Mailbox.send mb "y";
      Engine.delay 1.0;
      Sync.Mailbox.send mb "z");
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "x"; "y"; "z" ] (List.rev !got)

let test_mailbox_buffered_before_recv () =
  let e = Engine.create () in
  let mb = Sync.Mailbox.create () in
  let got = ref 0 in
  Engine.spawn e (fun () ->
      Sync.Mailbox.send mb 7;
      check_int "buffered" 1 (Sync.Mailbox.length mb));
  Engine.spawn e (fun () ->
      Engine.delay 5.0;
      got := Sync.Mailbox.recv mb);
  Engine.run e;
  check_int "received buffered value" 7 !got

let test_gate_broadcast () =
  let e = Engine.create () in
  let g = Sync.Gate.create () in
  let released = ref 0 in
  for _ = 1 to 3 do
    Engine.spawn e (fun () ->
        Sync.Gate.wait g;
        incr released)
  done;
  Engine.spawn e (fun () ->
      Engine.delay 10.0;
      Sync.Gate.open_ g);
  Engine.run e;
  check_int "all released" 3 !released;
  check_bool "stays open" true (Sync.Gate.is_open g)

let test_condition_repeated_signal () =
  let e = Engine.create () in
  let c = Sync.Condition.create () in
  let rounds = ref 0 in
  Engine.spawn e (fun () ->
      Sync.Condition.await c;
      incr rounds;
      Sync.Condition.await c;
      incr rounds);
  Engine.spawn e (fun () ->
      Engine.delay 1.0;
      Sync.Condition.signal_all c;
      Engine.delay 1.0;
      Sync.Condition.signal_all c);
  Engine.run e;
  check_int "two rounds" 2 !rounds

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_order_and_tags () =
  let tr = Trace.create () in
  Trace.emit tr ~time:1.0 ~tag:"a" "first";
  Trace.emit tr ~time:2.0 ~tag:"b" "second";
  Alcotest.(check (list string)) "tags" [ "a"; "b" ] (Trace.tags tr)

let test_trace_disabled () =
  let tr = Trace.create ~enabled:false () in
  Trace.emit tr ~time:1.0 ~tag:"a" "ignored";
  check_int "nothing recorded" 0 (List.length (Trace.events tr))

let test_trace_capacity () =
  let tr = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.emit tr ~time:(float_of_int i) ~tag:(string_of_int i) ""
  done;
  Alcotest.(check (list string)) "keeps newest" [ "3"; "4"; "5" ] (Trace.tags tr);
  check_int "dropped" 2 (Trace.dropped tr)

let test_trace_disabled_emit_is_free () =
  (* A disabled trace neither records nor counts drops, however many
     emits hit it; flipping it on starts recording from that point. *)
  let tr = Trace.create ~enabled:false ~capacity:2 () in
  for i = 1 to 100 do
    Trace.emit tr ~time:(float_of_int i) ~tag:"noise" ""
  done;
  check_int "nothing recorded" 0 (List.length (Trace.events tr));
  check_int "nothing dropped" 0 (Trace.dropped tr);
  Trace.set_enabled tr true;
  Trace.emit tr ~time:200.0 ~tag:"signal" "";
  Alcotest.(check (list string)) "records once enabled" [ "signal" ] (Trace.tags tr);
  Trace.clear tr;
  check_int "clear resets dropped" 0 (Trace.dropped tr);
  check_int "clear empties" 0 (List.length (Trace.events tr))

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

let test_counters_basic () =
  let c = Stats.Counters.create () in
  check_int "never-incremented name reads 0" 0 (Stats.Counters.get c "ghost");
  Stats.Counters.incr c "wal.flush_retries";
  Stats.Counters.incr ~by:2 c "backing.read_retries";
  Stats.Counters.incr c "wal.flush_retries";
  check_int "accumulates" 2 (Stats.Counters.get c "wal.flush_retries");
  Alcotest.(check (list (pair string int)))
    "to_list is name-sorted"
    [ ("backing.read_retries", 2); ("wal.flush_retries", 2) ]
    (Stats.Counters.to_list c);
  check_int "total" 4 (Stats.Counters.total c);
  Stats.Counters.clear c;
  check_int "clear" 0 (Stats.Counters.total c)

(* ------------------------------------------------------------------ *)
(* Chaos plans                                                        *)
(* ------------------------------------------------------------------ *)

let stormy_spec =
  {
    Sim_chaos.read_error_p = 0.2;
    write_error_p = 0.15;
    delay_p = 0.1;
    delay_min_us = 50.0;
    delay_max_us = 500.0;
    outages = [ (400.0, 600.0) ];
    bad_blocks = [ 13 ];
  }

let test_chaos_none_is_inert () =
  let plan = Sim_chaos.none () in
  Alcotest.(check bool) "disabled" false (Sim_chaos.enabled plan);
  for i = 0 to 99 do
    let v = Sim_chaos.decide plan Sim_chaos.Disk_read ~now:(float_of_int i) ~block:(Some 13) in
    Alcotest.(check bool) "always Pass" true (Sim_chaos.Verdict.equal v Sim_chaos.Verdict.Pass)
  done;
  check_int "never records" 0 (Sim_chaos.decisions plan);
  check_int "never fails" 0 (Sim_chaos.injected_failures plan)

let test_chaos_outage_and_bad_block () =
  let plan =
    Sim_chaos.create ~seed:5L
      { Sim_chaos.default_spec with outages = [ (100.0, 200.0) ]; bad_blocks = [ 7 ] }
  in
  let v t b = Sim_chaos.decide plan Sim_chaos.Disk_write ~now:t ~block:b in
  Alcotest.(check string) "before the window" "pass"
    (Sim_chaos.Verdict.to_string (v 99.0 None));
  Alcotest.(check string) "inside the window" "fail"
    (Sim_chaos.Verdict.to_string (v 150.0 None));
  Alcotest.(check string) "window end is exclusive" "pass"
    (Sim_chaos.Verdict.to_string (v 200.0 None));
  Alcotest.(check string) "bad block is permanent, any time" "bad-block"
    (Sim_chaos.Verdict.to_string (v 999.0 (Some 7)))

let prop_chaos_same_seed_same_schedule =
  QCheck.Test.make ~name:"chaos: same seed replays the identical schedule" ~count:100
    QCheck.(pair (int_bound 10_000) (int_range 1 60))
    (fun (seed, ops) ->
      let drive () =
        let plan = Sim_chaos.create ~seed:(Int64.of_int seed) stormy_spec in
        for i = 0 to ops - 1 do
          let site = if i mod 3 = 0 then Sim_chaos.Disk_write else Sim_chaos.Disk_read in
          let block = if i mod 5 = 0 then Some i else None in
          ignore (Sim_chaos.decide plan site ~now:(float_of_int (i * 100)) ~block)
        done;
        ( Sim_chaos.schedule_fingerprint plan,
          Sim_chaos.decisions plan,
          Sim_chaos.injected_failures plan,
          Sim_chaos.injected_delays plan,
          Sim_chaos.schedule plan )
      in
      drive () = drive ())

let prop_chaos_sites_draw_independent_streams =
  (* Adding write traffic must not perturb the verdicts the reads see:
     each site draws from its own split stream. *)
  QCheck.Test.make ~name:"chaos: read verdicts independent of write traffic" ~count:100
    QCheck.(pair (int_bound 10_000) (list_of_size Gen.(int_range 0 20) (int_bound 3)))
    (fun (seed, writes_between) ->
      let reads_only =
        let plan = Sim_chaos.create ~seed:(Int64.of_int seed) stormy_spec in
        List.init 10 (fun i ->
            Sim_chaos.decide plan Sim_chaos.Disk_read ~now:(float_of_int i) ~block:None)
      in
      let interleaved =
        let plan = Sim_chaos.create ~seed:(Int64.of_int seed) stormy_spec in
        List.init 10 (fun i ->
            List.iter
              (fun w ->
                if w > 0 then
                  ignore
                    (Sim_chaos.decide plan Sim_chaos.Disk_write ~now:(float_of_int i) ~block:None))
              writes_between;
            Sim_chaos.decide plan Sim_chaos.Disk_read ~now:(float_of_int i) ~block:None)
      in
      List.for_all2 Sim_chaos.Verdict.equal reads_only interleaved)

(* ------------------------------------------------------------------ *)
(* Properties over the engine                                         *)
(* ------------------------------------------------------------------ *)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"identical seeds give identical simulations" ~count:30
    QCheck.(int_bound 1000)
    (fun seed ->
      let run_once () =
        let e = Engine.create () in
        let rng = Rng.create (Int64.of_int seed) in
        let log = Buffer.create 64 in
        for i = 1 to 5 do
          Engine.spawn e (fun () ->
              let d = Rng.uniform rng ~lo:0.0 ~hi:50.0 in
              Engine.delay d;
              Buffer.add_string log (Printf.sprintf "%d@%.3f;" i (Engine.time ())))
        done;
        Engine.run e;
        Buffer.contents log
      in
      String.equal (run_once ()) (run_once ()))

let prop_resource_never_exceeds_capacity =
  QCheck.Test.make ~name:"resource occupancy bounded by capacity" ~count:50
    QCheck.(pair (int_range 1 4) (int_range 1 20))
    (fun (cap, jobs) ->
      let e = Engine.create () in
      let r = Sync.Resource.create e ~capacity:cap in
      let ok = ref true in
      for _ = 1 to jobs do
        Engine.spawn e (fun () ->
            Sync.Resource.use r (fun () ->
                if Sync.Resource.in_use r > cap then ok := false;
                Engine.delay 3.0))
      done;
      Engine.run e;
      !ok && Sync.Resource.in_use r = 0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_heap_sorts;
      prop_heap_model;
      prop_engine_deterministic;
      prop_resource_never_exceeds_capacity;
      prop_chaos_same_seed_same_schedule;
      prop_chaos_sites_draw_independent_streams;
    ]

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int invalid bound" `Quick test_rng_int_invalid;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary basic" `Quick test_summary_basic;
          Alcotest.test_case "summary empty" `Quick test_summary_empty;
          Alcotest.test_case "summary merge" `Quick test_summary_merge;
          Alcotest.test_case "series percentile" `Quick test_series_percentile;
          Alcotest.test_case "series empty percentile" `Quick test_series_empty_percentile;
          Alcotest.test_case "series growth" `Quick test_series_growth;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "time weighted" `Quick test_time_weighted;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "clear then reuse" `Quick test_heap_clear_reuse;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delay advances clock" `Quick test_engine_delay_advances_clock;
          Alcotest.test_case "delay event accounting" `Quick test_engine_delay_event_count;
          Alcotest.test_case "interleaving" `Quick test_engine_interleaving;
          Alcotest.test_case "until horizon" `Quick test_engine_until;
          Alcotest.test_case "fork" `Quick test_engine_fork;
          Alcotest.test_case "suspend/resume" `Quick test_engine_suspend_resume;
          Alcotest.test_case "deadlock detectable" `Quick test_engine_deadlock_detectable;
          Alcotest.test_case "outside process" `Quick test_engine_outside_process;
          Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "negative delay clamped" `Quick test_engine_negative_delay_clamped;
        ] );
      ( "sync",
        [
          Alcotest.test_case "semaphore mutex" `Quick test_semaphore_mutual_exclusion;
          Alcotest.test_case "semaphore try" `Quick test_semaphore_try_acquire;
          Alcotest.test_case "resource capacity" `Quick test_resource_capacity_and_utilisation;
          Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "mailbox buffered" `Quick test_mailbox_buffered_before_recv;
          Alcotest.test_case "gate broadcast" `Quick test_gate_broadcast;
          Alcotest.test_case "condition repeated" `Quick test_condition_repeated_signal;
        ] );
      ( "trace",
        [
          Alcotest.test_case "order and tags" `Quick test_trace_order_and_tags;
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
          Alcotest.test_case "capacity" `Quick test_trace_capacity;
          Alcotest.test_case "disabled emit is free" `Quick test_trace_disabled_emit_is_free;
        ] );
      ("counters", [ Alcotest.test_case "basic accounting" `Quick test_counters_basic ]);
      ( "chaos",
        [
          Alcotest.test_case "none is inert" `Quick test_chaos_none_is_inert;
          Alcotest.test_case "outages and bad blocks" `Quick test_chaos_outage_and_bad_block;
        ] );
      ("properties", qcheck_cases);
    ]
