module K = Epcm_kernel
module Engine = Sim_engine
module Seg = Epcm_segment

type row = {
  label : string;
  vpp_us : float option;
  ultrix_us : float option;
  paper_vpp : float option;
  paper_ultrix : float option;
}

type result = { rows : row list; checks : Exp_report.check list }

let timed machine f =
  let result = ref 0.0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      let t0 = Engine.time () in
      f ();
      result := Engine.time () -. t0);
  Engine.run machine.Hw_machine.engine;
  !result

(* A V++ setup with a warm manager pool so the measured fault is minimal. *)
let vpp_setup ~mode () =
  let machine = Hw_machine.create ~memory_bytes:(4 * 1024 * 1024) () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  let backing = Mgr_backing.memory () in
  let gen = Mgr_generic.create kernel ~name:"bench-mgr" ~mode ~backing ~source () in
  let seg = Mgr_generic.create_segment gen ~name:"bench-heap" ~pages:64 ~kind:Mgr_generic.Anon () in
  Mgr_generic.ensure_pool gen ~count:16;
  (machine, kernel, gen, seg)

let measure_vpp_fault ~mode () =
  let machine, kernel, _, seg = vpp_setup ~mode () in
  timed machine (fun () -> K.touch kernel ~space:seg ~page:0 ~access:Epcm_manager.Write)

let measure_vpp_protection_clear () =
  (* In-process manager fields a protection fault and just reprotects. *)
  let machine, kernel, gen, seg = vpp_setup ~mode:`In_process () in
  K.touch kernel ~space:seg ~page:0 ~access:Epcm_manager.Write;
  ignore gen;
  K.modify_page_flags kernel ~seg ~page:0 ~count:1 ~set_flags:Epcm_flags.no_access ();
  timed machine (fun () -> K.touch kernel ~space:seg ~page:0 ~access:Epcm_manager.Read)

let measure_vpp_uio access =
  let machine, kernel, _, seg = vpp_setup ~mode:`In_process () in
  K.touch kernel ~space:seg ~page:0 ~access:Epcm_manager.Write;
  match access with
  | `Read -> timed machine (fun () -> ignore (K.uio_read kernel ~seg ~page:0))
  | `Write ->
      timed machine (fun () ->
          K.uio_write kernel ~seg ~page:0 (Hw_page_data.of_string "bench"))

let ultrix_setup () =
  let machine = Hw_machine.create ~memory_bytes:(4 * 1024 * 1024) () in
  let uvm = Uvm.create machine in
  let pid = Uvm.create_process uvm ~name:"bench" in
  (machine, uvm, pid)

let measure_ultrix_fault () =
  let machine, uvm, pid = ultrix_setup () in
  timed machine (fun () -> Uvm.touch uvm pid ~vpn:0 ~access:Uvm.Write)

let measure_ultrix_reprotect () =
  let machine, uvm, pid = ultrix_setup () in
  Uvm.touch uvm pid ~vpn:0 ~access:Uvm.Write;
  Uvm.protect uvm pid ~vpn:0;
  timed machine (fun () -> Uvm.touch_protected uvm pid ~vpn:0)

let measure_ultrix_io access =
  let machine, uvm, _ = ultrix_setup () in
  let fd = Uvm.open_file uvm ~file_id:1 ~size_kb:64 in
  Uvm.preload uvm fd;
  match access with
  | `Read -> timed machine (fun () -> Uvm.read uvm fd ~offset_kb:0 ~kb:4)
  | `Write -> timed machine (fun () -> Uvm.write uvm fd ~offset_kb:0 ~kb:4)

let run () =
  let fault_in_process = measure_vpp_fault ~mode:`In_process () in
  let fault_via_manager = measure_vpp_fault ~mode:`Separate_process () in
  let ultrix_fault = measure_ultrix_fault () in
  let vpp_read = measure_vpp_uio `Read in
  let vpp_write = measure_vpp_uio `Write in
  let ultrix_read = measure_ultrix_io `Read in
  let ultrix_write = measure_ultrix_io `Write in
  let vpp_reprotect = measure_vpp_protection_clear () in
  let ultrix_reprotect = measure_ultrix_reprotect () in
  let rows =
    [
      {
        label = "Faulting Process Minimal Fault";
        vpp_us = Some fault_in_process;
        ultrix_us = Some ultrix_fault;
        paper_vpp = Some 107.0;
        paper_ultrix = Some 175.0;
      };
      {
        label = "Default Segment Manager Minimal Fault";
        vpp_us = Some fault_via_manager;
        ultrix_us = Some ultrix_fault;
        paper_vpp = Some 379.0;
        paper_ultrix = Some 175.0;
      };
      {
        label = "Read 4KB (cached file)";
        vpp_us = Some vpp_read;
        ultrix_us = Some ultrix_read;
        paper_vpp = Some 222.0;
        paper_ultrix = Some 211.0;
      };
      {
        label = "Write 4KB (cached file)";
        vpp_us = Some vpp_write;
        ultrix_us = Some ultrix_write;
        paper_vpp = Some 203.0;
        paper_ultrix = Some 311.0;
      };
      {
        label = "User-level reprotect fault (text, 3.1)";
        vpp_us = Some vpp_reprotect;
        ultrix_us = Some ultrix_reprotect;
        paper_vpp = None;
        paper_ultrix = Some 152.0;
      };
    ]
  in
  let cost = Hw_cost.decstation_5000_200 in
  let checks =
    [
      Exp_report.check ~what:"V++ in-process fault beats the Ultrix fault"
        ~pass:(fault_in_process < ultrix_fault)
        ~detail:(Printf.sprintf "%.0f vs %.0f us" fault_in_process ultrix_fault);
      Exp_report.check ~what:"default-manager fault costs more than both"
        ~pass:(fault_via_manager > ultrix_fault && fault_via_manager > fault_in_process)
        ~detail:(Printf.sprintf "%.0f us" fault_via_manager);
      Exp_report.check ~what:"zeroing accounts for most of the Ultrix/V++ gap"
        ~pass:
          (Float.abs (ultrix_fault -. fault_in_process -. cost.Hw_cost.zero_page) < 20.0)
        ~detail:
          (Printf.sprintf "gap %.0f us, zero_page %.0f us"
             (ultrix_fault -. fault_in_process)
             cost.Hw_cost.zero_page);
      Exp_report.check ~what:"V++ write 4KB beats Ultrix (34% in the paper)"
        ~pass:(vpp_write < ultrix_write)
        ~detail:(Printf.sprintf "%.0f vs %.0f us" vpp_write ultrix_write);
      Exp_report.check ~what:"V++ read 4KB slightly dearer than Ultrix (5.2% in the paper)"
        ~pass:(vpp_read > ultrix_read && vpp_read < ultrix_read *. 1.15)
        ~detail:(Printf.sprintf "%.0f vs %.0f us" vpp_read ultrix_read);
      Exp_report.check
        ~what:"a full V++ fault is cheaper than an Ultrix user-level reprotect fault"
        ~pass:(fault_in_process < ultrix_reprotect)
        ~detail:(Printf.sprintf "%.0f vs %.0f us" fault_in_process ultrix_reprotect);
    ]
  in
  { rows; checks }

let render r =
  let cell = function Some v -> Exp_report.us v | None -> "-" in
  let table =
    Exp_report.fmt_table
      ~header:[ "Measurement"; "V++ (us)"; "Ultrix (us)"; "paper V++"; "paper Ultrix" ]
      ~rows:
        (List.map
           (fun row ->
             [ row.label; cell row.vpp_us; cell row.ultrix_us; cell row.paper_vpp;
               cell row.paper_ultrix ])
           r.rows)
  in
  "Table 1: System Primitive Times (microseconds)\n" ^ table ^ "\nShape checks:\n"
  ^ Exp_report.render_checks r.checks
