(* Sharded-DBMS throughput record (`vpp_repro shard`, vpp-shard/1).

   The same total transaction count runs through Db_shard at increasing
   shard counts; each shard is a self-contained deterministic machine,
   so a leg's shards fan over domains with Exp_par.map and the joined
   record is byte-identical to a sequential run. Aggregate throughput
   is total transactions over the slowest shard's simulated seconds —
   the honest parallel number: every shard has finished by then.

   Adding shards divides the per-shard WAL force rate (the bottleneck)
   while 2PC taxes only the cross fraction, so aggregate TPS must rise
   strictly with shard count; the embedded checks pin that, exact
   commit/abort accounting, a bounded abort rate, frame conservation on
   every machine, the single-shard zero-delta (no 2PC messages, no DSM
   transfers — the transport is never instantiated) and seed-replay
   identity of the multi-shard leg. Only the wall_s fields vary between
   runs. *)

module J = Sim_json

let schema_version = "vpp-shard/1"

type leg = {
  g_shards : int;
  g_txns : int;
  g_commits : int;
  g_aborts : int;
  g_abort_rate : float;
  g_local : int;
  g_cross : int;
  g_msgs : int;
  g_prepares : int;
  g_transfers : int;
  g_timeouts : int;
  g_tps : float;
  g_p50_ms : float;
  g_p99_ms : float;
  g_sim_s : float;
  g_conserved : bool;
  g_wall_s : float;
  g_detail : Db_shard.result list;
}

type result = {
  mode : string;
  jobs : int;
  total_txns : int;
  cross_fraction : float;
  legs : leg list;
  replay_identical : bool;
  checks : Exp_report.check list;
}

let abort_rate_bound = 0.05

let sum f detail = List.fold_left (fun acc (r : Db_shard.result) -> acc + f r) 0 detail
let fmax f detail = List.fold_left (fun acc (r : Db_shard.result) -> Float.max acc (f r)) 0.0 detail

let run_leg ~spec ~shards ~jobs =
  let spec = { spec with Db_shard.sp_shards = shards } in
  let t0 = Unix.gettimeofday () in
  let detail =
    Exp_par.map ~jobs (List.init shards (fun shard () -> Db_shard.run_shard spec ~shard))
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let txns = sum (fun r -> r.Db_shard.r_txns) detail in
  let sim_s = fmax (fun r -> r.Db_shard.r_sim_us) detail /. 1_000_000.0 in
  {
    g_shards = shards;
    g_txns = txns;
    g_commits = sum (fun r -> r.Db_shard.r_commits) detail;
    g_aborts = sum (fun r -> r.Db_shard.r_aborts) detail;
    g_abort_rate =
      (if txns = 0 then 0.0
       else float_of_int (sum (fun r -> r.Db_shard.r_aborts) detail) /. float_of_int txns);
    g_local = sum (fun r -> r.Db_shard.r_local) detail;
    g_cross = sum (fun r -> r.Db_shard.r_cross) detail;
    g_msgs = sum (fun r -> r.Db_shard.r_msgs) detail;
    g_prepares = sum (fun r -> r.Db_shard.r_prepares) detail;
    g_transfers = sum (fun r -> r.Db_shard.r_dsm_transfers) detail;
    g_timeouts = sum (fun r -> r.Db_shard.r_lock_timeouts) detail;
    g_tps = (if sim_s > 0.0 then float_of_int txns /. sim_s else 0.0);
    g_p50_ms = fmax (fun r -> r.Db_shard.r_p50_ms) detail;
    g_p99_ms = fmax (fun r -> r.Db_shard.r_p99_ms) detail;
    g_sim_s = sim_s;
    g_conserved = List.for_all (fun (r : Db_shard.result) -> r.Db_shard.r_conserved) detail;
    g_wall_s = wall_s;
    g_detail = detail;
  }

(* The replay check compares everything but the wall clock. *)
let leg_eq a b = { a with g_wall_s = 0.0 } = { b with g_wall_s = 0.0 }

let checks_of ~legs ~replay_identical ~total_txns =
  let single = List.find (fun l -> l.g_shards = 1) legs in
  let multi = List.filter (fun l -> l.g_shards > 1) legs in
  let four = List.hd multi in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a.g_tps < b.g_tps && increasing rest
    | _ -> true
  in
  [
    Exp_report.check ~what:"frame conservation held on every shard machine, every leg"
      ~pass:(List.for_all (fun l -> l.g_conserved) legs)
      ~detail:
        (Printf.sprintf "%d legs, %d machines" (List.length legs)
           (List.fold_left (fun acc l -> acc + l.g_shards) 0 legs));
    Exp_report.check ~what:"every transaction accounted: commits + aborts = total, every leg"
      ~pass:
        (List.for_all
           (fun l ->
             l.g_commits + l.g_aborts = l.g_txns
             && l.g_local + l.g_cross = l.g_txns
             && l.g_txns = total_txns)
           legs)
      ~detail:(Printf.sprintf "%d transactions per leg" total_txns);
    Exp_report.check
      ~what:
        (Printf.sprintf "abort rate bounded (< %.0f%%) in every leg" (100.0 *. abort_rate_bound))
      ~pass:(List.for_all (fun l -> l.g_abort_rate < abort_rate_bound) legs)
      ~detail:
        (Printf.sprintf "worst %.3f%%"
           (100.0 *. List.fold_left (fun acc l -> Float.max acc l.g_abort_rate) 0.0 legs));
    Exp_report.check ~what:"single shard is zero-delta: no 2PC messages, no DSM transfers"
      ~pass:
        (single.g_msgs = 0 && single.g_transfers = 0 && single.g_cross = 0
        && single.g_aborts = 0)
      ~detail:(Printf.sprintf "%d local transactions" single.g_local);
    Exp_report.check ~what:"multi-shard legs run two-phase commits over the interconnect"
      ~pass:(List.for_all (fun l -> l.g_cross > 0 && l.g_msgs > 0 && l.g_prepares > 0) multi)
      ~detail:
        (Printf.sprintf "%d cross-shard txns, %d messages at %d shards" four.g_cross four.g_msgs
           four.g_shards);
    Exp_report.check ~what:"aggregate TPS strictly increasing with shard count"
      ~pass:(increasing legs)
      ~detail:
        (String.concat " -> "
           (List.map (fun l -> Printf.sprintf "%.0f" l.g_tps) legs));
    Exp_report.check
      ~what:
        (Printf.sprintf "%d shards beat one shard on the same %d transactions" four.g_shards
           total_txns)
      ~pass:(four.g_tps > single.g_tps)
      ~detail:
        (Printf.sprintf "%.0f vs %.0f TPS (x%.2f)" four.g_tps single.g_tps
           (four.g_tps /. single.g_tps));
    Exp_report.check ~what:"multi-shard leg deterministic per seed (replay identical)"
      ~pass:replay_identical
      ~detail:(Printf.sprintf "seed %Ld" Db_shard.default.Db_shard.sp_seed);
  ]

let run ?(quick = false) ?(jobs = 1) () =
  let total_txns = if quick then 20_000 else 1_000_000 in
  let spec = { Db_shard.default with Db_shard.sp_total_txns = total_txns } in
  let shard_counts = if quick then [ 1; 4 ] else [ 1; 4; 8 ] in
  let legs = List.map (fun shards -> run_leg ~spec ~shards ~jobs) shard_counts in
  let replay = run_leg ~spec ~shards:4 ~jobs in
  let four = List.find (fun l -> l.g_shards = 4) legs in
  {
    mode = (if quick then "quick" else "full");
    jobs;
    total_txns;
    cross_fraction = spec.Db_shard.sp_cross_fraction;
    legs;
    replay_identical = leg_eq four replay;
    checks = checks_of ~legs ~replay_identical:(leg_eq four replay) ~total_txns;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "Shard: parallel DBMS shards with two-phase commit (%s record, %s mode)\n"
       schema_version r.mode);
  Buffer.add_string buf
    (Printf.sprintf
       "%d transactions per leg, %.0f%% cross-shard, %d worker(s) x %d CPU(s) per shard, \
        jobs=%d\n"
       r.total_txns
       (100.0 *. r.cross_fraction)
       Db_shard.default.Db_shard.sp_workers Db_shard.default.Db_shard.sp_cpus r.jobs);
  Buffer.add_string buf
    (Exp_report.fmt_table
       ~header:
         [
           "shards"; "txns"; "commit"; "abort"; "abort %"; "2pc msgs"; "dsm xfer"; "p50 ms";
           "p99 ms"; "sim (s)"; "agg TPS"; "wall (s)";
         ]
       ~rows:
         (List.map
            (fun l ->
              [
                string_of_int l.g_shards;
                string_of_int l.g_txns;
                string_of_int l.g_commits;
                string_of_int l.g_aborts;
                Printf.sprintf "%.3f" (100.0 *. l.g_abort_rate);
                string_of_int l.g_msgs;
                string_of_int l.g_transfers;
                Printf.sprintf "%.1f" l.g_p50_ms;
                Printf.sprintf "%.1f" l.g_p99_ms;
                Printf.sprintf "%.1f" l.g_sim_s;
                Printf.sprintf "%.0f" l.g_tps;
                Printf.sprintf "%.2f" l.g_wall_s;
              ])
            r.legs));
  (* Per-shard rows of the widest leg: the load-balance picture. *)
  let widest = List.fold_left (fun acc l -> if l.g_shards > acc.g_shards then l else acc)
      (List.hd r.legs) r.legs in
  Buffer.add_string buf
    (Printf.sprintf "\nPer-shard detail at %d shards:\n" widest.g_shards);
  Buffer.add_string buf
    (Exp_report.fmt_table
       ~header:
         [ "shard"; "txns"; "commit"; "abort"; "cross"; "timeouts"; "flushes"; "p99 ms"; "TPS" ]
       ~rows:
         (List.map
            (fun (d : Db_shard.result) ->
              [
                string_of_int d.Db_shard.r_shard;
                string_of_int d.Db_shard.r_txns;
                string_of_int d.Db_shard.r_commits;
                string_of_int d.Db_shard.r_aborts;
                string_of_int d.Db_shard.r_cross;
                string_of_int d.Db_shard.r_lock_timeouts;
                string_of_int d.Db_shard.r_wal_flushes;
                Printf.sprintf "%.1f" d.Db_shard.r_p99_ms;
                Printf.sprintf "%.0f" d.Db_shard.r_tps;
              ])
            widest.g_detail));
  Buffer.add_string buf "\nShape checks:\n";
  Buffer.add_string buf (Exp_report.render_checks r.checks);
  Buffer.contents buf

let shard_json (d : Db_shard.result) =
  J.Obj
    [
      ("shard", J.Num (float_of_int d.Db_shard.r_shard));
      ("txns", J.Num (float_of_int d.Db_shard.r_txns));
      ("commits", J.Num (float_of_int d.Db_shard.r_commits));
      ("aborts", J.Num (float_of_int d.Db_shard.r_aborts));
      ("local", J.Num (float_of_int d.Db_shard.r_local));
      ("cross", J.Num (float_of_int d.Db_shard.r_cross));
      ("p50_ms", J.Num d.Db_shard.r_p50_ms);
      ("p99_ms", J.Num d.Db_shard.r_p99_ms);
      ("tps", J.Num d.Db_shard.r_tps);
      ("sim_us", J.Num d.Db_shard.r_sim_us);
      ("events", J.Num (float_of_int d.Db_shard.r_events));
      ("msgs", J.Num (float_of_int d.Db_shard.r_msgs));
      ("prepares", J.Num (float_of_int d.Db_shard.r_prepares));
      ("wal_flushes", J.Num (float_of_int d.Db_shard.r_wal_flushes));
      ("dsm_transfers", J.Num (float_of_int d.Db_shard.r_dsm_transfers));
      ("lock_timeouts", J.Num (float_of_int d.Db_shard.r_lock_timeouts));
      ("frames", J.Num (float_of_int d.Db_shard.r_frames));
      ("conserved", J.Bool d.Db_shard.r_conserved);
    ]

let leg_json l =
  J.Obj
    [
      ("shards", J.Num (float_of_int l.g_shards));
      ("txns", J.Num (float_of_int l.g_txns));
      ("commits", J.Num (float_of_int l.g_commits));
      ("aborts", J.Num (float_of_int l.g_aborts));
      ("abort_rate", J.Num l.g_abort_rate);
      ("local", J.Num (float_of_int l.g_local));
      ("cross", J.Num (float_of_int l.g_cross));
      ("msgs", J.Num (float_of_int l.g_msgs));
      ("prepares", J.Num (float_of_int l.g_prepares));
      ("dsm_transfers", J.Num (float_of_int l.g_transfers));
      ("lock_timeouts", J.Num (float_of_int l.g_timeouts));
      ("tps", J.Num l.g_tps);
      ("p50_ms", J.Num l.g_p50_ms);
      ("p99_ms", J.Num l.g_p99_ms);
      ("sim_s", J.Num l.g_sim_s);
      ("conserved", J.Bool l.g_conserved);
      ("wall_s", J.Num l.g_wall_s);
      ("per_shard", J.List (List.map shard_json l.g_detail));
    ]

let to_json r =
  J.Obj
    [
      ("schema", J.Str schema_version);
      ("mode", J.Str r.mode);
      ("jobs", J.Num (float_of_int r.jobs));
      ("total_txns", J.Num (float_of_int r.total_txns));
      ("cross_fraction", J.Num r.cross_fraction);
      ("legs", J.List (List.map leg_json r.legs));
      ("replay_identical", J.Bool r.replay_identical);
      ( "checks",
        J.List
          (List.map
             (fun (c : Exp_report.check) ->
               J.Obj
                 [
                   ("what", J.Str c.Exp_report.what);
                   ("pass", J.Bool c.Exp_report.pass);
                   ("detail", J.Str c.Exp_report.detail);
                 ])
             r.checks) );
    ]

let render_json r = J.to_string ~indent:true (to_json r) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

let validate_json json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let require what = function Some v -> Ok v | None -> Error ("missing or ill-typed " ^ what) in
  let* schema = require "schema" (Option.bind (J.member "schema" json) J.to_str) in
  let* () =
    if schema = schema_version then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" schema schema_version)
  in
  let* _mode = require "mode" (Option.bind (J.member "mode" json) J.to_str) in
  let* total =
    require "total_txns" (Option.bind (J.member "total_txns" json) J.to_float)
  in
  let* () = if total > 0.0 then Ok () else Error "no transactions in the record" in
  let* legs = require "legs" (Option.bind (J.member "legs" json) J.to_list) in
  let* () = if List.length legs >= 2 then Ok () else Error "expected at least two legs" in
  let leg_field what leg get = require ("leg " ^ what) (Option.bind (J.member what leg) get) in
  let* parsed =
    List.fold_left
      (fun acc leg ->
        let* acc = acc in
        let* shards = leg_field "shards" leg J.to_float in
        let* txns = leg_field "txns" leg J.to_float in
        let* commits = leg_field "commits" leg J.to_float in
        let* aborts = leg_field "aborts" leg J.to_float in
        let* abort_rate = leg_field "abort_rate" leg J.to_float in
        let* msgs = leg_field "msgs" leg J.to_float in
        let* transfers = leg_field "dsm_transfers" leg J.to_float in
        let* tps = leg_field "tps" leg J.to_float in
        let* conserved = leg_field "conserved" leg J.to_bool in
        let name = Printf.sprintf "%.0f-shard leg" shards in
        if not conserved then Error (name ^ ": frame conservation failed")
        else if txns <> total then Error (name ^ ": transaction count drifted from total_txns")
        else if commits +. aborts <> txns then
          Error (name ^ ": commits + aborts <> transactions")
        else if abort_rate < 0.0 || abort_rate >= abort_rate_bound then
          Error (name ^ ": abort rate out of bounds")
        else if tps <= 0.0 then Error (name ^ ": no throughput recorded")
        else Ok ((shards, msgs, transfers, tps) :: acc))
      (Ok []) legs
  in
  let parsed = List.rev parsed in
  let* () =
    match List.find_opt (fun (s, _, _, _) -> s = 1.0) parsed with
    | None -> Error "missing the single-shard baseline leg"
    | Some (_, msgs, transfers, _) ->
        if msgs = 0.0 && transfers = 0.0 then Ok ()
        else Error "single-shard leg did 2PC or DSM work (zero-delta broken)"
  in
  let* () =
    if
      List.for_all
        (fun (s, msgs, _, _) -> s = 1.0 || msgs > 0.0)
        parsed
    then Ok ()
    else Error "a multi-shard leg exchanged no 2PC messages"
  in
  let rec tps_increasing = function
    | (_, _, _, a) :: ((_, _, _, b) :: _ as rest) ->
        if a < b then tps_increasing rest
        else Error "aggregate TPS not strictly increasing with shard count"
    | _ -> Ok ()
  in
  let* () = tps_increasing parsed in
  let* replay =
    require "replay_identical" (Option.bind (J.member "replay_identical" json) J.to_bool)
  in
  let* () = if replay then Ok () else Error "multi-shard leg was not deterministic per seed" in
  let* checks = require "checks" (Option.bind (J.member "checks" json) J.to_list) in
  List.fold_left
    (fun acc c ->
      let* () = acc in
      let* what = require "check what" (Option.bind (J.member "what" c) J.to_str) in
      let* pass = require "check pass" (Option.bind (J.member "pass" c) J.to_bool) in
      if pass then Ok () else Error ("failed check: " ^ what))
    (Ok ()) checks
