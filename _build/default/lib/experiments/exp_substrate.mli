(** Substrate statistics: what the V++ translation hardware — the global
    64 K direct-mapped mapping hash with its 32-entry overflow (§3.2) and
    the R3000-style TLB — actually did during the Table 2 application
    runs. Not a paper table, but the paper describes the structures; this
    makes their behaviour observable. *)

type row = {
  program : string;
  tlb_hit_rate : float;
  pt_hits : int;
  pt_misses : int;
  pt_collisions : int;
  pt_resident : int;
}

type result = { rows : row list; checks : Exp_report.check list }

val run : unit -> result
val render : result -> string
