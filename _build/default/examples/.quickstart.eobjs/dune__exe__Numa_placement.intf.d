examples/numa_placement.mli:
