module K = Epcm_kernel
module Seg = Epcm_segment
module Engine = Sim_engine
module Resource = Sim_sync.Resource
module Rng = Sim_rng

type spec = {
  sp_shards : int;
  sp_total_txns : int;
  sp_workers : int;
  sp_cpus : int;
  sp_accounts_pages : int;
  sp_remote_pages : int;
  sp_hot_remote_pages : int;
  sp_cross_fraction : float;
  sp_lock_timeout_us : float;
  sp_net_latency_us : float;
  sp_service_ms : float;
  sp_touch_pages : int;
  sp_seed : int64;
}

let default =
  {
    sp_shards = 4;
    sp_total_txns = 100_000;
    sp_workers = 8;
    sp_cpus = 6;
    sp_accounts_pages = 512;
    sp_remote_pages = 128;
    sp_hot_remote_pages = 8;
    sp_cross_fraction = 0.10;
    sp_lock_timeout_us = 12_000.0;
    sp_net_latency_us = 1_000.0;
    sp_service_ms = 2.0;
    sp_touch_pages = 4;
    sp_seed = 8_080_808L;
  }

type result = {
  r_shard : int;
  r_txns : int;
  r_commits : int;
  r_aborts : int;
  r_local : int;
  r_cross : int;
  r_p50_ms : float;
  r_p99_ms : float;
  r_tps : float;
  r_sim_us : float;
  r_events : int;
  r_msgs : int;
  r_prepares : int;
  r_wal_flushes : int;
  r_dsm_transfers : int;
  r_lock_timeouts : int;
  r_frames : int;
  r_conserved : bool;
}

(* The 1992 server drive of the Table 4 study; every shard gets one for
   its WAL. *)
let shard_disk =
  { Hw_disk.seek_us = 9_200.0; half_rotation_us = 4_150.0; us_per_kb = 170.0 }

type world = {
  spec : spec;
  shard : int;
  machine : Hw_machine.t;
  kernel : K.t;
  mgr : Mgr_dbms.t;
  seg_accounts : Seg.id;
  locks : Db_locks.t;
  wal : Db_wal.t;
  cpus : Resource.t;
  rng : Rng.t;
  (* Cross-shard state: absent entirely on a single-shard world. *)
  dsm : Mgr_dsm.t option;
  remote_locks : Db_locks.t array;  (* one lock table per peer shard *)
  remote_wals : Db_wal.t array;  (* one prepare/outcome log per peer *)
  coord : Db_coord.t;
  mutable next_txn : int;
  mutable commits : int;
  mutable aborts : int;
  mutable local_txns : int;
  mutable cross_txns : int;
  latencies : Sim_stats.Series.t;
}

let shard_txns spec ~shard =
  let base = spec.sp_total_txns / spec.sp_shards in
  let extra = spec.sp_total_txns mod spec.sp_shards in
  base + (if shard < extra then 1 else 0)

let build spec ~shard =
  if spec.sp_shards < 1 then invalid_arg "Db_shard.build: need at least one shard";
  if shard < 0 || shard >= spec.sp_shards then invalid_arg "Db_shard.build: shard out of range";
  let cross = spec.sp_shards > 1 in
  let pool_capacity = 256 in
  let dsm_pages = if cross then spec.sp_shards * spec.sp_remote_pages else 0 in
  let total_pages = spec.sp_accounts_pages + dsm_pages + pool_capacity + 512 in
  let machine =
    Hw_machine.create ~preset:Hw_machine.Sgi_4d_380 ~memory_bytes:(total_pages * 4096)
      ~disk_params:shard_disk ()
  in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next_slot = ref 0 in
  let source ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next_slot < Seg.length init_seg do
      (if (Seg.page init_seg !next_slot).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next_slot
           ~dst_page:(dst_page + !granted) ~count:1 ();
         incr granted
       end);
      incr next_slot
    done;
    !granted
  in
  let mgr =
    Mgr_dbms.create kernel ~name:(Printf.sprintf "shard-%d-dbms" shard) ~source ~pool_capacity
      ()
  in
  let seg_accounts =
    Mgr_dbms.create_relation mgr ~name:(Printf.sprintf "shard-%d-accounts" shard)
      ~pages:spec.sp_accounts_pages
  in
  let wal = Db_wal.create machine.Hw_machine.disk () in
  let dsm =
    if cross then
      Some
        (Mgr_dsm.create kernel ~name:(Printf.sprintf "shard-%d-dsm" shard) ~source
           ~nodes:spec.sp_shards ~pages:spec.sp_remote_pages
           ~net_latency_us:spec.sp_net_latency_us ())
    else None
  in
  let peers = if cross then spec.sp_shards else 0 in
  let coord =
    Db_coord.create ~wal
      ~net:(fun ~messages ->
        match dsm with Some d -> Mgr_dsm.charge_messages d ~messages | None -> ())
      ()
  in
  {
    spec;
    shard;
    machine;
    kernel;
    mgr;
    seg_accounts;
    locks = Db_locks.create ();
    wal;
    cpus = Resource.create machine.Hw_machine.engine ~capacity:spec.sp_cpus;
    rng = Rng.create (Int64.add spec.sp_seed (Int64.of_int (7919 * (shard + 1))));
    dsm;
    remote_locks = Array.init peers (fun _ -> Db_locks.create ());
    remote_wals = Array.init peers (fun _ -> Db_wal.create machine.Hw_machine.disk ());
    coord;
    next_txn = 0;
    commits = 0;
    aborts = 0;
    local_txns = 0;
    cross_txns = 0;
    latencies = Sim_stats.Series.create ();
  }

let cpu_ms w ms = Resource.use w.cpus (fun () -> Engine.delay (ms *. 1000.0))

let touch w page =
  K.touch w.kernel ~space:w.seg_accounts ~page ~access:Epcm_manager.Write

let touch_run w ~from =
  let last = w.spec.sp_accounts_pages - 1 in
  for i = 0 to w.spec.sp_touch_pages - 1 do
    touch w (min last (from + i))
  done

(* A purely local DebitCredit: hierarchical locks, account-page writes,
   processor time, then group-committed WAL force. *)
let local_txn w rng ~txn =
  Db_locks.acquire w.locks ~txn Db_locks.Database Db_locks.IX;
  let page = Rng.int rng w.spec.sp_accounts_pages in
  Db_locks.acquire w.locks ~txn (Db_locks.Page (0, page)) Db_locks.X;
  touch_run w ~from:page;
  cpu_ms w w.spec.sp_service_ms;
  let lsn = Db_wal.append w.wal in
  Db_wal.note_page_write w.wal ~seg:w.seg_accounts ~page ~lsn;
  let ok = try Db_wal.commit w.wal ~lsn; true with Db_wal.Flush_failed _ -> false in
  Db_locks.release_all w.locks ~txn;
  ok

(* Cross-shard DebitCredit: debit here, credit on [remote], atomically
   via 2PC. The local participant is this shard's real lock table and
   WAL; the remote participant is the peer's modelled lock table and
   prepare log, with the DSM shipping the credited page. *)
let cross_txn w rng ~txn =
  let spec = w.spec in
  let dsm = Option.get w.dsm in
  let remote =
    let r = Rng.int rng (spec.sp_shards - 1) in
    if r >= w.shard then r + 1 else r
  in
  let lpage = Rng.int rng spec.sp_accounts_pages in
  let rpage =
    if Rng.bernoulli rng 0.5 then Rng.int rng spec.sp_hot_remote_pages
    else Rng.int rng spec.sp_remote_pages
  in
  let local =
    {
      Db_coord.p_name = "local";
      p_prepare =
        (fun () ->
          Db_locks.acquire w.locks ~txn Db_locks.Database Db_locks.IX;
          Db_locks.acquire w.locks ~txn (Db_locks.Page (0, lpage)) Db_locks.X;
          touch_run w ~from:lpage;
          cpu_ms w spec.sp_service_ms;
          let lsn = Db_wal.append w.wal in
          Db_wal.note_page_write w.wal ~seg:w.seg_accounts ~page:lpage ~lsn;
          (try
             Db_wal.commit w.wal ~lsn;
             Db_coord.Prepared
           with Db_wal.Flush_failed _ -> Db_coord.Vote_abort));
      p_commit = (fun () -> Db_locks.release_all w.locks ~txn);
      p_abort = (fun () -> Db_locks.release_all w.locks ~txn);
    }
  in
  let rlocks = w.remote_locks.(remote) in
  let rwal = w.remote_wals.(remote) in
  let remote_part =
    {
      Db_coord.p_name = Printf.sprintf "shard-%d" remote;
      p_prepare =
        (fun () ->
          if
            not
              (Db_locks.acquire_timeout rlocks ~txn (Db_locks.Page (remote, rpage)) Db_locks.X
                 ~timeout_us:spec.sp_lock_timeout_us)
          then Db_coord.Vote_abort
          else begin
            (* Ship the credited page over and force the prepare record. *)
            ignore (Mgr_dsm.read dsm ~node:remote ~page:rpage : Hw_page_data.t);
            let lsn = Db_wal.append rwal in
            try
              Db_wal.commit rwal ~lsn;
              Db_coord.Prepared
            with Db_wal.Flush_failed _ -> Db_coord.Vote_abort
          end);
      p_commit =
        (fun () ->
          Mgr_dsm.write dsm ~node:remote ~page:rpage
            (Hw_page_data.block ~file:(4000 + remote) ~block:rpage ~version:txn);
          ignore (Db_wal.append rwal : Db_wal.lsn);
          (* outcome record rides the next group commit *)
          Db_locks.release_all rlocks ~txn);
      p_abort = (fun () -> Db_locks.release_all rlocks ~txn);
    }
  in
  Db_coord.run w.coord ~txn [ local; remote_part ] = Db_coord.Committed

let run_txn w rng =
  w.next_txn <- w.next_txn + 1;
  let txn = (w.shard * 10_000_000) + w.next_txn in
  let arrival = Engine.time () in
  let cross = w.spec.sp_shards > 1 && Rng.bernoulli rng w.spec.sp_cross_fraction in
  let committed = if cross then cross_txn w rng ~txn else local_txn w rng ~txn in
  if cross then w.cross_txns <- w.cross_txns + 1 else w.local_txns <- w.local_txns + 1;
  if committed then w.commits <- w.commits + 1 else w.aborts <- w.aborts + 1;
  Sim_stats.Series.add w.latencies ((Engine.time () -. arrival) /. 1000.0)

let conserved w =
  K.frame_owner_total w.kernel = Hw_machine.n_frames w.machine
  && K.frame_owner_audit w.kernel = K.frame_owner_audit_scan w.kernel
  && K.frame_owner_audit_tiered w.kernel = K.frame_owner_audit_tiered_scan w.kernel
  && Engine.live_processes w.machine.Hw_machine.engine = 0

let execute w =
  let spec = w.spec in
  let engine = w.machine.Hw_machine.engine in
  let share = shard_txns spec ~shard:w.shard in
  for worker = 0 to spec.sp_workers - 1 do
    let quota =
      (share / spec.sp_workers)
      + (if worker < share mod spec.sp_workers then 1 else 0)
    in
    let rng = Rng.split w.rng in
    if quota > 0 then
      Engine.spawn engine ~name:(Printf.sprintf "shard-%d-worker-%d" w.shard worker)
        (fun () ->
          for _ = 1 to quota do
            run_txn w rng
          done)
  done;
  Engine.run engine;
  let sim_us = Hw_machine.now w.machine in
  let txns = w.commits + w.aborts in
  let pct p =
    if Sim_stats.Series.count w.latencies = 0 then 0.0
    else Sim_stats.Series.percentile w.latencies p
  in
  {
    r_shard = w.shard;
    r_txns = txns;
    r_commits = w.commits;
    r_aborts = w.aborts;
    r_local = w.local_txns;
    r_cross = w.cross_txns;
    r_p50_ms = pct 50.0;
    r_p99_ms = pct 99.0;
    r_tps = (if sim_us > 0.0 then float_of_int txns /. (sim_us /. 1_000_000.0) else 0.0);
    r_sim_us = sim_us;
    r_events = Engine.events_executed engine;
    r_msgs = Db_coord.messages w.coord;
    r_prepares = Db_coord.prepares w.coord;
    r_wal_flushes = Db_wal.flushes w.wal;
    r_dsm_transfers = (match w.dsm with Some d -> Mgr_dsm.transfers d | None -> 0);
    r_lock_timeouts =
      Db_locks.timeouts w.locks
      + Array.fold_left (fun acc l -> acc + Db_locks.timeouts l) 0 w.remote_locks;
    r_frames = Hw_machine.n_frames w.machine;
    r_conserved = conserved w;
  }

let run_shard spec ~shard = execute (build spec ~shard)
