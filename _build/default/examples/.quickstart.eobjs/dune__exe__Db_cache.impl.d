examples/db_cache.ml: Epcm_kernel Epcm_segment Fun Hw_disk Hw_machine List Mgr_dbms Printf Sim_engine
