type row = {
  program : string;
  vpp_s : float;
  ultrix_s : float;
  paper_vpp : float;
  paper_ultrix : float;
  vpp_vm_s : float;
}

type result = { rows : row list; checks : Exp_report.check list }

let paper = [ ("diff", 3.99, 4.05); ("uncompress", 6.39, 6.01); ("latex", 14.71, 13.65) ]

let run () =
  let rows =
    List.map
      (fun trace ->
        let v = Wl_run.run_vpp trace in
        let u = Wl_run.run_ultrix trace in
        let paper_vpp, paper_ultrix =
          match List.assoc_opt trace.Wl_trace.name (List.map (fun (n, a, b) -> (n, (a, b))) paper) with
          | Some (a, b) -> (a, b)
          | None -> (0.0, 0.0)
        in
        {
          program = trace.Wl_trace.name;
          vpp_s = v.Wl_run.v_elapsed_s;
          ultrix_s = u.Wl_run.u_elapsed_s;
          paper_vpp;
          paper_ultrix;
          vpp_vm_s = v.Wl_run.v_vm_elapsed_s;
        })
      Wl_apps.all
  in
  let checks =
    List.concat_map
      (fun r ->
        [
          Exp_report.check
            ~what:
              (Printf.sprintf "%s: V++ within 10%% of Ultrix (the paper's own gaps reach 7.8%%)"
                 r.program)
            ~pass:(Float.abs (r.vpp_s -. r.ultrix_s) /. r.ultrix_s < 0.10)
            ~detail:(Printf.sprintf "%.2f vs %.2f s" r.vpp_s r.ultrix_s);
          Exp_report.check
            ~what:(Printf.sprintf "%s: elapsed within 10%% of the paper" r.program)
            ~pass:
              (Float.abs (r.vpp_s -. r.paper_vpp) /. r.paper_vpp < 0.10
              && Float.abs (r.ultrix_s -. r.paper_ultrix) /. r.paper_ultrix < 0.10)
            ~detail:
              (Printf.sprintf "V++ %.2f/%.2f, Ultrix %.2f/%.2f" r.vpp_s r.paper_vpp r.ultrix_s
                 r.paper_ultrix);
        ])
      rows
  in
  { rows; checks }

let render r =
  let table =
    Exp_report.fmt_table
      ~header:[ "Program"; "V++ (s)"; "Ultrix (s)"; "paper V++"; "paper Ultrix" ]
      ~rows:
        (List.map
           (fun row ->
             [
               row.program;
               Exp_report.seconds row.vpp_s;
               Exp_report.seconds row.ultrix_s;
               Exp_report.seconds row.paper_vpp;
               Exp_report.seconds row.paper_ultrix;
             ])
           r.rows)
  in
  "Table 2: Application Elapsed Time in Seconds\n" ^ table ^ "\nShape checks:\n"
  ^ Exp_report.render_checks r.checks
