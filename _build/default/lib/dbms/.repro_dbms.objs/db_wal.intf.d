lib/dbms/db_wal.mli: Epcm_segment Hw_disk
