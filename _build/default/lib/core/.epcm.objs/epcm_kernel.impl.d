lib/core/epcm_kernel.ml: Array Buffer Epcm_flags Epcm_manager Epcm_segment Format Fun Hashtbl Hw_cost Hw_machine Hw_page_table Hw_phys_mem Hw_tlb List Option Printf
