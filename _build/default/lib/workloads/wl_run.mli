(** Run an application trace on each kernel and collect the Table 2/3
    measurements.

    Setup reproduces the paper's §3.2 conditions: input files are cached
    before the measured region starts (no disk or network I/O inside the
    measurement), and the V++ default manager's free-page pool is warm, so
    every measured fault is the minimal kind. *)

type vpp_result = {
  v_elapsed_s : float;  (** Includes the calibrated library delta. *)
  v_vm_elapsed_s : float;  (** Simulated time only (no library delta). *)
  v_manager_calls : int;
  v_migrate_calls : int;
  v_manager_overhead_ms : float;
      (** The paper's Table 3 metric: (V++ default-manager fault − Ultrix
          fault) × manager calls. *)
  v_uio_reads : int;
  v_uio_writes : int;
  (* substrate visibility: the V++ 64K mapping hash and the TLB *)
  v_tlb_hit_rate : float;
  v_pt_hits : int;
  v_pt_misses : int;
  v_pt_collisions : int;
  v_pt_resident : int;
}

type ultrix_result = {
  u_elapsed_s : float;
  u_faults : int;
  u_zero_fills : int;
  u_read_calls : int;
  u_write_calls : int;
}

val run_vpp : ?seed:int64 -> Wl_trace.t -> vpp_result
val run_ultrix : ?seed:int64 -> Wl_trace.t -> ultrix_result
