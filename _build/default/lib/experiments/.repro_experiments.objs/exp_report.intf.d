lib/experiments/exp_report.mli:
