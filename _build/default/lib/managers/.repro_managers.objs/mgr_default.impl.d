lib/managers/mgr_default.ml: Array Epcm_flags Epcm_kernel Epcm_segment Hashtbl Hw_cost Hw_machine Hw_phys_mem List Mgr_backing Mgr_free_pages Mgr_generic Printf
