lib/experiments/exp_table2.mli: Exp_report
