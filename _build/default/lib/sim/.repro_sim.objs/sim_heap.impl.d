lib/sim/sim_heap.ml: Array
