(** Garbage-collector-aware heap manager.

    Two §1/§4 claims in one manager:

    - Subramanian (Mach external pager, 1991) showed "significant
      performance improvements for a number of ML programs by exploiting
      the fact that garbage pages can be discarded without writeback" —
      but needed kernel changes because an external pager cannot see
      physical-memory availability and suffers redundant zero-fills.
      External page-cache management gives both for free: this manager
      discards pages the collector has declared garbage (dirty or not),
      and reuses its own frames without the security zeroing a
      cross-domain kernel would impose.
    - §1: "a run-time memory management library using garbage collection
      can adapt the frequency of collections to available physical
      memory, if this information is available to it" — {!should_collect}
      implements exactly that policy: collect when the live heap
      approaches the frames the SPCM will let us hold.

    The mutator allocates bump-pointer style; a collection compacts the
    live set to the bottom of the heap and declares the rest garbage. *)

type t

val create :
  Epcm_kernel.t -> ?disk:Hw_disk.t -> source:Mgr_generic.source -> pool_capacity:int -> unit -> t

val manager_id : t -> Epcm_manager.id

val create_heap : t -> name:string -> pages:int -> Epcm_segment.id

val declare_garbage : t -> seg:Epcm_segment.id -> page:int -> count:int -> unit
(** The collector knows these pages are dead: they may be reclaimed with
    {e no writeback}, dirty or not. *)

val reclaim_garbage : t -> seg:Epcm_segment.id -> int
(** Drop all declared-garbage resident pages into the pool; returns pages
    reclaimed. No disk traffic, no zero-fill. *)

val evict_conventional : t -> seg:Epcm_segment.id -> page:int -> count:int -> int
(** What a GC-oblivious pager would do to the same pages: write dirty
    ones to swap before reclaiming. Returns pages reclaimed (for the
    comparison bench). *)

val should_collect : t -> live_pages:int -> budget_pages:int -> bool
(** Collection-frequency policy: collect when the live heap exceeds ~75%
    of the frames available to us. *)

val garbage_discards : t -> int
val writebacks_avoided : t -> int
(** Dirty garbage pages dropped without a disk write. *)
