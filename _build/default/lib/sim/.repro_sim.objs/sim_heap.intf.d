lib/sim/sim_heap.mli:
