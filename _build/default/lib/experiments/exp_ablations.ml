module K = Epcm_kernel
module Seg = Epcm_segment
module G = Mgr_generic
module Engine = Sim_engine

type row = { cells : string list }

type ablation = {
  a_name : string;
  a_question : string;
  header : string list;
  rows : row list;
  finding : string;
  holds : bool;
}

let kernel_with_source ~frames () =
  let machine = Hw_machine.create ~memory_bytes:(frames * 4096) () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  (machine, kernel, source)

let timed machine f =
  let result = ref 0.0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      let t0 = Engine.time () in
      f ();
      result := Engine.time () -. t0);
  Engine.run machine.Hw_machine.engine;
  !result

(* ------------------------------------------------------------------ *)
(* 1. Append allocation batch size                                    *)
(* ------------------------------------------------------------------ *)

let append_run ~batch =
  let machine, kernel, source = kernel_with_source ~frames:1024 () in
  let backing = Mgr_backing.memory () in
  let hooks =
    {
      (G.default_hooks ~backing) with
      G.batch_of =
        (fun ~seg:_ ~page ~kind ~high_water ->
          match kind with
          | G.File _ when page >= high_water -> batch
          | G.File _ | G.Anon -> 1);
    }
  in
  let g = G.create kernel ~name:"append" ~mode:`Separate_process ~backing ~source ~hooks () in
  let pages = 512 (* a 2 MB output file, as uncompress writes *) in
  let seg = G.create_segment g ~name:"out" ~pages ~kind:(G.File { file_id = 1 }) ~high_water:0 () in
  G.ensure_pool g ~count:(pages + 16);
  let migrates0 = (K.stats kernel).K.migrate_calls in
  let us =
    timed machine (fun () ->
        for p = 0 to pages - 1 do
          K.uio_write kernel ~seg ~page:p (Hw_page_data.block ~file:1 ~block:p ~version:1)
        done)
  in
  ((K.stats kernel).K.migrate_calls - migrates0, us /. 1000.0)

let append_batch () =
  let batches = [ 1; 2; 4; 8; 16 ] in
  let results = List.map (fun b -> (b, append_run ~batch:b)) batches in
  let time_of b = snd (List.assoc b results) in
  let calls_of b = fst (List.assoc b results) in
  {
    a_name = "append-batch";
    a_question =
      "Why does the UCDS allocate file appends in 16KB (4-page) units instead of one page at \
       a time?";
    header = [ "batch (pages)"; "manager calls"; "elapsed (ms)"; "vs batch=4" ];
    rows =
      List.map
        (fun (b, (calls, ms)) ->
          {
            cells =
              [
                string_of_int b;
                string_of_int calls;
                Printf.sprintf "%.1f" ms;
                Printf.sprintf "x%.2f" (ms /. time_of 4);
              ];
          })
        results;
    finding =
      "Batch 4 (the paper's 16KB) cuts manager calls 4x over per-page allocation and \
       recovers most of the win: going 1->4 saves several times more than going 4->16, \
       because past 4 pages the per-page copy cost dominates the amortised per-fault IPC.";
    holds =
      calls_of 1 = 512 && calls_of 4 = 128
      && time_of 1 -. time_of 4 > 3.0 *. (time_of 4 -. time_of 16);
  }

(* ------------------------------------------------------------------ *)
(* 2. In-process vs separate-process fault delivery                    *)
(* ------------------------------------------------------------------ *)

let delivery_run ~mode =
  let machine, kernel, source = kernel_with_source ~frames:2048 () in
  let backing = Mgr_backing.memory () in
  let g = G.create kernel ~name:"mode" ~mode ~backing ~source ~pool_capacity:1500 () in
  let pages = 1024 in
  let seg = G.create_segment g ~name:"heap" ~pages ~kind:G.Anon () in
  G.ensure_pool g ~count:(pages + 8);
  let us =
    timed machine (fun () ->
        for p = 0 to pages - 1 do
          K.touch kernel ~space:seg ~page:p ~access:Epcm_manager.Write
        done)
  in
  us /. 1000.0

let delivery_mode () =
  let in_proc = delivery_run ~mode:`In_process in
  let server = delivery_run ~mode:`Separate_process in
  {
    a_name = "delivery-mode";
    a_question =
      "What does running the segment manager as a separate server cost a fault-heavy \
       application (4MB of first-touch faults)?";
    header = [ "delivery"; "elapsed (ms)"; "per fault (us)" ];
    rows =
      [
        { cells = [ "in-process (107us path)"; Printf.sprintf "%.1f" in_proc;
                    Printf.sprintf "%.0f" (in_proc *. 1000.0 /. 1024.0) ] };
        { cells = [ "separate server (379us path)"; Printf.sprintf "%.1f" server;
                    Printf.sprintf "%.0f" (server *. 1000.0 /. 1024.0) ] };
      ];
    finding =
      "The server path costs ~3.5x per fault (two context switches + IPC), which is why the \
       DBMS manager runs in-process while oblivious programs use the default server.";
    holds = server > in_proc *. 3.0 && server < in_proc *. 4.0;
  }

(* ------------------------------------------------------------------ *)
(* 3. Clock-sampling reprotect batch                                  *)
(* ------------------------------------------------------------------ *)

let reprotect_run ~batch =
  let machine, kernel, source = kernel_with_source ~frames:512 () in
  let backing = Mgr_backing.memory () in
  let hooks = { (G.default_hooks ~backing) with G.reprotect_batch = batch } in
  let g = G.create kernel ~name:"sampling" ~mode:`Separate_process ~backing ~source ~hooks () in
  let pages = 256 in
  let seg = G.create_segment g ~name:"ws" ~pages ~kind:G.Anon () in
  G.ensure_pool g ~count:(pages + 8);
  for p = 0 to pages - 1 do
    K.touch kernel ~space:seg ~page:p ~access:Epcm_manager.Write
  done;
  G.protect_for_sampling g ~seg;
  let faults0 = (K.stats kernel).K.faults_protection in
  let us =
    timed machine (fun () ->
        for p = 0 to pages - 1 do
          K.touch kernel ~space:seg ~page:p ~access:Epcm_manager.Read
        done)
  in
  ((K.stats kernel).K.faults_protection - faults0, us /. 1000.0)

let reprotect_batch () =
  let batches = [ 1; 4; 8; 16; 32 ] in
  let results = List.map (fun b -> (b, reprotect_run ~batch:b)) batches in
  let faults_of b = fst (List.assoc b results) in
  let time_of b = snd (List.assoc b results) in
  {
    a_name = "reprotect-batch";
    a_question =
      "The default manager re-enables protection on several contiguous pages per sampling \
       fault 'to reduce the overhead of handling these faults' — how much does that save \
       when re-touching a 256-page working set?";
    header = [ "batch (pages)"; "sampling faults"; "elapsed (ms)" ];
    rows =
      List.map
        (fun (b, (faults, ms)) ->
          { cells = [ string_of_int b; string_of_int faults; Printf.sprintf "%.2f" ms ] })
        results;
    finding =
      "Faults fall as 256/batch; batch 8 (the default) removes 87% of the sampling cost \
       while still sampling at sub-working-set granularity.";
    holds = faults_of 1 = 256 && faults_of 8 = 32 && time_of 8 < time_of 1 /. 3.0;
  }

(* ------------------------------------------------------------------ *)
(* 4. Regeneration/paging crossover                                   *)
(* ------------------------------------------------------------------ *)

let regeneration_crossover () =
  let quick cfg = { cfg with Db_config.duration_s = 90.0; warmup_s = 10.0 } in
  let paging = Db_engine.run (quick Db_config.index_with_paging) in
  let regen_points = [ 200.0; 350.0; 1000.0; 2000.0; 4000.0; 6000.0 ] in
  let results =
    List.map
      (fun regen_ms ->
        let cfg = { (quick Db_config.index_regeneration) with Db_config.regen_ms } in
        (regen_ms, Db_engine.run cfg))
      regen_points
  in
  let avg_of ms = (List.assoc ms results).Db_engine.avg_ms in
  {
    a_name = "regeneration-crossover";
    a_question =
      "Discard-and-regenerate beats paging only while regenerating is cheaper than the \
       ~3.6s page-in. Where is the crossover?";
    header = [ "regen compute (ms)"; "avg response (ms)"; "vs paging" ];
    rows =
      { cells = [ "paging (baseline)"; Printf.sprintf "%.0f" paging.Db_engine.avg_ms; "x1.00" ] }
      :: List.map
           (fun (ms, r) ->
             {
               cells =
                 [
                   Printf.sprintf "%.0f" ms;
                   Printf.sprintf "%.0f" r.Db_engine.avg_ms;
                   Printf.sprintf "x%.2f" (r.Db_engine.avg_ms /. paging.Db_engine.avg_ms);
                 ];
             })
           results;
    finding =
      "Regeneration wins by an order of magnitude at the paper's ~350ms rebuild cost and \
       loses its advantage as the rebuild approaches the page-in time — the space-time \
       tradeoff only the application can evaluate, which is the paper's thesis.";
    holds =
      avg_of 350.0 *. 4.0 < paging.Db_engine.avg_ms
      && avg_of 6000.0 > avg_of 350.0 *. 3.0;
  }

(* ------------------------------------------------------------------ *)
(* 5. Eviction destination                                            *)
(* ------------------------------------------------------------------ *)

(* An over-committed cyclic working set: [total] pages cycled [rounds]
   times through an allocation of [allowed] frames. Returns elapsed ms
   under each eviction destination. *)
let eviction_cycle_disk () =
  let machine, kernel, source = kernel_with_source ~frames:512 () in
  let disk_backing =
    Mgr_backing.disk machine.Hw_machine.disk ~page_bytes:4096
  in
  let g =
    G.create kernel ~name:"disk-evict" ~mode:`In_process ~backing:disk_backing ~source
      ~pool_capacity:64 ()
  in
  let total = 48 and allowed = 32 and rounds = 4 in
  let seg = G.create_segment g ~name:"ws" ~pages:total ~kind:G.Anon () in
  let us =
    timed machine (fun () ->
        for _ = 1 to rounds do
          for p = 0 to total - 1 do
            K.touch kernel ~space:seg ~page:p ~access:Epcm_manager.Write;
            if G.resident g ~seg > allowed then ignore (G.reclaim g ~count:8)
          done
        done)
  in
  us /. 1000.0

let eviction_cycle_compressed () =
  let machine, kernel, source = kernel_with_source ~frames:512 () in
  let mgr = Mgr_compressed.create kernel ~source ~pool_capacity:64 () in
  let total = 48 and allowed = 32 and rounds = 4 in
  let seg = Mgr_compressed.create_segment mgr ~name:"ws" ~pages:total in
  let next_evict = ref 0 in
  let us =
    timed machine (fun () ->
        for _ = 1 to rounds do
          for p = 0 to total - 1 do
            K.touch kernel ~space:seg ~page:p ~access:Epcm_manager.Write;
            while Mgr_compressed.resident mgr ~seg > allowed do
              Mgr_compressed.evict mgr ~seg ~page:!next_evict;
              next_evict := (!next_evict + 1) mod total
            done
          done
        done)
  in
  us /. 1000.0

let eviction_destination () =
  let disk_ms = eviction_cycle_disk () in
  let compressed_ms = eviction_cycle_compressed () in
  {
    a_name = "eviction-destination";
    a_question =
      "A 48-page working set cycles through a 32-frame allocation: where should evicted \
       pages go?";
    header = [ "destination"; "elapsed (ms)" ];
    rows =
      [
        { cells = [ "disk (conventional swap)"; Printf.sprintf "%.1f" disk_ms ] };
        { cells = [ "compressed pool (2.1's 'page compression')"; Printf.sprintf "%.1f" compressed_ms ] };
      ];
    finding =
      "Compressing evicted pages turns ~15ms disk round trips into sub-millisecond \
       CPU work — an order of magnitude for working sets with reuse, exactly the kind of \
       manager the paper says processes can now build without kernel changes.";
    holds = disk_ms > compressed_ms *. 5.0;
  }

let run_all () =
  [
    append_batch ();
    delivery_mode ();
    reprotect_batch ();
    regeneration_crossover ();
    eviction_destination ();
  ]

let render a =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "Ablation: %s\n" a.a_name);
  Buffer.add_string buf (Printf.sprintf "Q: %s\n\n" a.a_question);
  Buffer.add_string buf (Exp_report.fmt_table ~header:a.header ~rows:(List.map (fun r -> r.cells) a.rows));
  Buffer.add_string buf (Printf.sprintf "\nFinding [%s]: %s\n" (if a.holds then "HOLDS" else "DID NOT HOLD") a.finding);
  Buffer.contents buf
