module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min_v : float;
    mutable max_v : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity; total = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min_v
  let max t = t.max_v
  let total t = t.total

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let n = a.count + b.count in
      let fa = float_of_int a.count and fb = float_of_int b.count in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. fb /. float_of_int n) in
      let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
      {
        count = n;
        mean;
        m2;
        min_v = Stdlib.min a.min_v b.min_v;
        max_v = Stdlib.max a.max_v b.max_v;
        total = a.total +. b.total;
      }
    end
end

module Series = struct
  type t = {
    mutable data : float array;
    mutable len : int;
    summary : Summary.t;
  }

  let create () = { data = Array.make 64 0.0; len = 0; summary = Summary.create () }

  let add t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0.0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    Summary.add t.summary x

  let count t = t.len
  let mean t = Summary.mean t.summary
  let min t = Summary.min t.summary
  let max t = Summary.max t.summary

  let percentile t p =
    if t.len = 0 then invalid_arg "Sim_stats.Series.percentile: empty series";
    let sorted = Array.sub t.data 0 t.len in
    Array.sort compare sorted;
    let rank =
      int_of_float (ceil (p /. 100.0 *. float_of_int t.len)) - 1
    in
    let rank = Stdlib.max 0 (Stdlib.min (t.len - 1) rank) in
    sorted.(rank)

  let to_array t = Array.sub t.data 0 t.len
  let summary t = t.summary
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    bins : int array;
    mutable underflow : int;
    mutable overflow : int;
  }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Sim_stats.Histogram.create: bins must be positive";
    if hi <= lo then invalid_arg "Sim_stats.Histogram.create: hi must exceed lo";
    { lo; hi; bins = Array.make bins 0; underflow = 0; overflow = 0 }

  let add t x =
    if x < t.lo then t.underflow <- t.underflow + 1
    else if x >= t.hi then t.overflow <- t.overflow + 1
    else begin
      let n = Array.length t.bins in
      let i = int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int n) in
      let i = Stdlib.min (n - 1) i in
      t.bins.(i) <- t.bins.(i) + 1
    end

  let counts t = Array.copy t.bins
  let underflow t = t.underflow
  let overflow t = t.overflow
  let total t = Array.fold_left ( + ) (t.underflow + t.overflow) t.bins

  let bin_bounds t i =
    let n = Array.length t.bins in
    if i < 0 || i >= n then invalid_arg "Sim_stats.Histogram.bin_bounds";
    let w = (t.hi -. t.lo) /. float_of_int n in
    (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

  let render t ~width =
    let buf = Buffer.create 256 in
    let max_count = Array.fold_left Stdlib.max 1 t.bins in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          let lo, hi = bin_bounds t i in
          let bar = String.make (c * width / max_count) '#' in
          Buffer.add_string buf (Printf.sprintf "[%10.1f,%10.1f) %6d %s\n" lo hi c bar)
        end)
      t.bins;
    if t.underflow > 0 then
      Buffer.add_string buf (Printf.sprintf "underflow %d\n" t.underflow);
    if t.overflow > 0 then Buffer.add_string buf (Printf.sprintf "overflow %d\n" t.overflow);
    Buffer.contents buf
end

module Counters = struct
  type t = (string, int) Hashtbl.t

  let create () = Hashtbl.create 16

  let incr ?(by = 1) t name =
    Hashtbl.replace t name ((try Hashtbl.find t name with Not_found -> 0) + by)

  let get t name = try Hashtbl.find t name with Not_found -> 0

  let to_list t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let total t = Hashtbl.fold (fun _ v acc -> acc + v) t 0
  let clear t = Hashtbl.reset t

  let render t =
    let buf = Buffer.create 256 in
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %8d\n" name v))
      (to_list t);
    Buffer.contents buf
end

module Time_weighted = struct
  type t = {
    mutable last_time : float;
    mutable current : float;
    mutable integral : float;
    start : float;
  }

  let create ~now ~init = { last_time = now; current = init; integral = 0.0; start = now }

  let advance t now =
    if now > t.last_time then begin
      t.integral <- t.integral +. (t.current *. (now -. t.last_time));
      t.last_time <- now
    end

  let set t ~now v =
    advance t now;
    t.current <- v

  let value t = t.current

  let average t ~now =
    advance t now;
    let elapsed = t.last_time -. t.start in
    if elapsed <= 0.0 then t.current else t.integral /. elapsed
end
