(** Domain-parallel driver for independent, deterministic experiments.

    The tables, figures, ablations, chaos storms and profile runs are
    self-contained deterministic functions; this module runs a list of
    them on OCaml 5 domains and joins the results in input order, so a
    parallel run's joined output is byte-identical to the sequential
    run's. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : jobs:int -> (unit -> 'a) list -> 'a list
(** Run the thunks on up to [jobs] domains (clamped to [1 ..] and to the
    task count); results are returned in input order regardless of
    completion order. [jobs <= 1] runs sequentially on the calling domain
    with no domain spawned. An exception from any task is re-raised (with
    its backtrace) after all domains join. *)

val concat : jobs:int -> sep:string -> (unit -> string) list -> string
(** [String.concat sep (map ~jobs tasks)]. *)
