(* Domain-parallel experiment driver.

   Every experiment in this repository is a deterministic, self-contained
   function: it builds its own machine, engine and RNGs, and returns a
   rendered string or record. That makes the set of experiments
   embarrassingly parallel — the only shared state was Sim_engine's
   "current engine", which is domain-local. This module fans a fixed list
   of such thunks out over OCaml 5 domains and returns the results in
   input order, so the joined output of a parallel run is byte-identical
   to the sequential one. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ~jobs tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.to_list (Array.map (fun f -> f ()) tasks)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Work-stealing by atomic counter: domains pull the next unclaimed
       task; results land at the task's own index, so completion order
       never affects output order. *)
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r =
          try Ok (tasks.(i) ())
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r;
        worker ()
      end
    in
    let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let concat ~jobs ~sep tasks = String.concat sep (map ~jobs tasks)
