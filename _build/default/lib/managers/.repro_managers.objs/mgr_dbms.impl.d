lib/managers/mgr_dbms.ml: Epcm_flags Epcm_kernel Epcm_manager Epcm_segment Hashtbl Hw_machine Hw_page_data List Mgr_backing Mgr_free_pages Mgr_generic Option Printf
