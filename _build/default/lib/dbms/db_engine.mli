(** The §3.3 database transaction-processing simulation.

    Six 30-MIPS processors, a 120 MB database resident under an
    application-specific segment manager, Poisson arrivals at 40 TPS, 95 %
    DebitCredit transactions and 5 % joins, hierarchical locking. Like the
    paper's own program, this is "a mixture of implementation and
    simulation": locks and memory management are real (the epcm kernel and
    {!Mgr_dbms} do actual migrates and faults); transaction execution is
    simulated as processor time.

    The four configurations differ only in index policy:
    - [No_index]: joins scan the relations;
    - [Index_in_memory]: every index resident;
    - [Index_with_paging]: 1 MB over-commit — one index is always out and
      comes back from disk page by page, under the index latch, while
      every arriving transaction piles up behind it;
    - [Index_regeneration]: the DBMS, told of the 1 MB shortfall, discards
      one index and regenerates it in memory when next needed. *)

type result = {
  label : string;
  avg_ms : float;
  worst_ms : float;
  p95_ms : float;
  txns : int;
  avg_dc_ms : float;
  avg_join_ms : float;
  page_in_events : int;
  regenerations : int;
  cpu_utilisation : float;
  lock_waits : int;  (** Acquisitions that had to block. *)
  frames_conserved : bool;  (** Whole-machine frame audit at the end. *)
}

val run : Db_config.t -> result
val render : result list -> string
(** Table 4-style rendering with the paper's numbers alongside. *)
