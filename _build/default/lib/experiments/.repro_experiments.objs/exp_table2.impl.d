lib/experiments/exp_table2.ml: Exp_report Float List Printf Wl_apps Wl_run Wl_trace
