(** Backing store for segment managers: where page data comes from and goes
    to when it is not in memory.

    The paper's managers talk to a file server (Figure 2 steps 2–3) or to
    local disk. Two latency models are provided: [memory] (instant — used
    to reproduce the Tables 2–3 runs, where files were pre-cached exactly
    so that no I/O latency would mask VM costs) and [disk], which charges
    real simulated disk time and serialises on the disk arm. *)

type t

val memory : unit -> t
val disk : Hw_disk.t -> page_bytes:int -> t

val read_block : t -> file:int -> block:int -> Hw_page_data.t
(** Contents of a file block. Unwritten blocks read as the symbolic
    version-0 block. Blocks the calling process on a [disk] store. *)

val write_block : t -> file:int -> block:int -> Hw_page_data.t -> unit

val has_block : t -> file:int -> block:int -> bool
(** Has this block ever been written? (No latency charged — the manager's
    own directory answers this.) Anonymous-page managers use it to
    distinguish "fresh page" from "paged out to swap". *)

val reads : t -> int
val writes : t -> int
