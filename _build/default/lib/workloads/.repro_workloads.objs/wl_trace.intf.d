lib/workloads/wl_trace.mli: Format
