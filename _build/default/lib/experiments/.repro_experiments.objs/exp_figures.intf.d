lib/experiments/exp_figures.mli: Exp_report
