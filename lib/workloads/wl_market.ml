module K = Epcm_kernel
module Mgr = Epcm_manager
module G = Mgr_generic
module Engine = Sim_engine
module M = Spcm_market
module Hist = Sim_metrics.Hist

type saver_backing = Memory | Disk

type config = {
  c_name : string;
  c_seed : int64;
  c_memory_bytes : int;
  c_page_size : int;
  c_tenants : int;
  c_mean_interarrival_us : float;
  c_pages_lo : int;
  c_pages_hi : int;
  c_hold_us_lo : float;
  c_hold_us_hi : float;
  c_premium_every : int;
  c_poor_every : int;
  c_slo_us : float;
  c_savers : int;
  c_saver_pages : int;
  c_saver_slice_us : float;
  c_saver_idle_us : float;
  c_saver_backing : saver_backing;
  c_sweep_every_us : float;
  c_market : Spcm_market.config;
  c_chaos : Sim_chaos.spec option;
}

type class_slo = {
  sc_class : string;
  sc_tenants : int;
  sc_completed : int;
  sc_refused : int;
  sc_samples : int;
  sc_p50_us : float;
  sc_p99_us : float;
  sc_p999_us : float;
  sc_max_us : float;
  sc_violations : int;
}

type result = {
  r_name : string;
  r_frames : int;
  r_tenants : int;
  r_savers : int;
  r_completed : int;
  r_refused : int;
  r_defer_events : int;
  r_granted_frames : int;
  r_saver_cycles : int;
  r_saver_starved : int;
  r_faults : int;
  r_events : int;
  r_sim_us : float;
  r_slo_us : float;
  r_slos : class_slo list;
  r_accounts : int;
  r_min_balance : float;
  r_billable_s : float;
  r_conservation_residual : float;
  r_io_failures : int;
  r_conserved : bool;
}

(* Rates chosen so every class stays solvent except the poor slice, which
   is refused outright: income dominates holding + I/O charges for normal,
   premium and saver accounts (the exp checks pin min balance >= 0). *)
let market_config =
  {
    M.charge_rate = 4.0;
    default_income = 25.0;
    savings_tax_rate = 0.02;
    savings_tax_threshold = 50.0;
    io_charge = 0.001;
    free_when_idle = true;
  }

let small =
  {
    c_name = "small";
    c_seed = 42L;
    c_memory_bytes = 8 * 1024 * 1024;
    c_page_size = 4096;
    c_tenants = 1000;
    c_mean_interarrival_us = 1_000.0;
    c_pages_lo = 4;
    c_pages_hi = 32;
    c_hold_us_lo = 1_000.0;
    c_hold_us_hi = 10_000.0;
    c_premium_every = 20;
    c_poor_every = 50;
    c_slo_us = 5_000.0;
    c_savers = 3;
    c_saver_pages = 600;
    c_saver_slice_us = 20_000.0;
    c_saver_idle_us = 10_000.0;
    c_saver_backing = Memory;
    c_sweep_every_us = 2_000.0;
    c_market = market_config;
    c_chaos = None;
  }

let production =
  {
    small with
    c_name = "production";
    c_seed = 4242L;
    c_memory_bytes = 20 * 1024 * 1024;
    c_tenants = 5000;
    c_mean_interarrival_us = 1_000.0;
    c_hold_us_lo = 2_000.0;
    c_hold_us_hi = 20_000.0;
    c_savers = 6;
    c_saver_pages = 780;
  }

type tenant_class = Normal | Premium | Poor

let class_name = function Normal -> "interactive" | Premium -> "premium" | Poor -> "poor"

type tenant = {
  t_index : int;
  t_class : tenant_class;
  t_kind : string;  (* per-tenant metrics kind *)
  t_pages : int;
  t_hold_us : float;
  t_income : float;
  t_priority : float;
  mutable t_completed : bool;
  mutable t_refused : bool;
}

let draw_tenants cfg rng =
  Array.init cfg.c_tenants (fun i ->
      (* Draws happen in index order, before any process runs, so the
         population is a pure function of the seed regardless of how
         arrivals interleave. *)
      let pages = cfg.c_pages_lo + Sim_rng.int rng (cfg.c_pages_hi - cfg.c_pages_lo + 1) in
      let hold = Sim_rng.uniform rng ~lo:cfg.c_hold_us_lo ~hi:cfg.c_hold_us_hi in
      let cls =
        if (i + 1) mod cfg.c_poor_every = 0 then Poor
        else if (i + 1) mod cfg.c_premium_every = 0 then Premium
        else Normal
      in
      let income, priority =
        match cls with
        | Normal -> (25.0, 0.0)
        | Premium -> (60.0, 10.0)
        | Poor -> (0.0005, 0.0)
      in
      {
        t_index = i;
        t_class = cls;
        t_kind = Printf.sprintf "mkt/%05d" i;
        t_pages = pages;
        t_hold_us = hold;
        t_income = income;
        t_priority = priority;
        t_completed = false;
        t_refused = false;
      })

let run cfg =
  let machine =
    Hw_machine.create ~memory_bytes:cfg.c_memory_bytes ~page_size:cfg.c_page_size ()
  in
  (match cfg.c_chaos with
  | None -> ()
  | Some spec ->
      Hw_disk.set_chaos machine.Hw_machine.disk (Some (Sim_chaos.create ~seed:cfg.c_seed spec)));
  (* The SLO report needs the metrics sink; this machine is owned by the
     workload, so turning profiling on cannot perturb the pinned tables. *)
  Hw_machine.set_profiling machine true;
  let kernel = K.create machine in
  let spcm = Spcm.create kernel ~market:cfg.c_market () in
  let rng = Sim_rng.create cfg.c_seed in
  let tenant_rng = Sim_rng.split rng in
  let arrival_rng = Sim_rng.split rng in
  let tenants = draw_tenants cfg tenant_rng in
  let finished = ref 0 in
  let completed = ref 0 in
  let refused = ref 0 in
  let granted_frames = ref 0 in
  let saver_cycles = ref 0 in
  let saver_starved = ref 0 in
  let saver_backings = ref [] in
  let all_done () = !finished >= cfg.c_tenants in

  let run_tenant t =
    let name = Printf.sprintf "tenant-%05d" t.t_index in
    let client =
      Spcm.register_client ~income:t.t_income ~priority:t.t_priority spcm ~name ()
    in
    let seg = K.create_segment kernel ~name ~pages:t.t_pages () in
    let t0 = Engine.time () in
    let got = Spcm.acquire spcm ~client ~dst:seg ~dst_page:0 ~count:t.t_pages () in
    if got = 0 then begin
      t.t_refused <- true;
      incr refused
    end
    else begin
      for page = 0 to got - 1 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Write
      done;
      Hw_machine.observe machine ~kind:t.t_kind (Engine.time () -. t0);
      granted_frames := !granted_frames + got;
      Engine.delay t.t_hold_us;
      Spcm.return_pages spcm ~client ~seg ~page:0 ~count:got;
      t.t_completed <- true;
      incr completed
    end;
    incr finished
  in

  let run_saver i =
    let name = Printf.sprintf "saver-%d" i in
    let client = Spcm.register_client ~income:100.0 ~priority:(-1.0) spcm ~name () in
    let backing =
      match cfg.c_saver_backing with
      | Memory -> Mgr_backing.memory ()
      | Disk -> Mgr_backing.disk machine.Hw_machine.disk ~page_bytes:cfg.c_page_size
    in
    saver_backings := backing :: !saver_backings;
    let mgr =
      G.create kernel ~name:(name ^ ".mgr") ~mode:`In_process ~backing
        ~source:(Spcm.source_for spcm client)
        ~pool_capacity:(cfg.c_saver_pages + 32)
        ~refill_batch:64 ~reclaim_batch:32 ()
    in
    Spcm.set_client_manager spcm client (G.manager_id mgr);
    let seg =
      G.create_segment mgr ~name:(name ^ ".heap") ~pages:cfg.c_saver_pages ~kind:G.Anon ()
    in
    let account = (Spcm.account_of spcm client).M.acc_id in
    let rec cycle () =
      if not (all_done ()) then begin
        (* Fault the working set in; under extreme pressure the refill can
           come up completely dry — yield the slice instead of wedging. *)
        (try
           for page = 0 to cfg.c_saver_pages - 1 do
             K.touch kernel ~space:seg ~page ~access:Mgr.Write
           done
         with G.Out_of_frames _ -> incr saver_starved);
        Engine.delay cfg.c_saver_slice_us;
        let writebacks_before = (G.stats mgr).G.writebacks in
        let released = G.swap_out mgr in
        Spcm.note_returned spcm ~client ~count:released;
        (* Swap-out writebacks are the saver's I/O bill (paper: the I/O
           charge keeps scan traffic from dodging the memory charge). *)
        let ios = (G.stats mgr).G.writebacks - writebacks_before in
        if ios > 0 then
          M.note_io (Spcm.market spcm) account ~ops:ios ~now_us:(Hw_machine.now machine);
        incr saver_cycles;
        Engine.delay cfg.c_saver_idle_us;
        cycle ()
      end
    in
    cycle ()
  in

  for i = 0 to cfg.c_savers - 1 do
    Engine.spawn machine.Hw_machine.engine ~name:(Printf.sprintf "saver-%d" i) (fun () ->
        run_saver i)
  done;
  Engine.spawn machine.Hw_machine.engine ~name:"arrivals" (fun () ->
      Array.iter
        (fun t ->
          Engine.delay (Sim_rng.exponential arrival_rng ~mean:cfg.c_mean_interarrival_us);
          Engine.fork ~name:(Printf.sprintf "tenant-%05d" t.t_index) (fun () -> run_tenant t))
        tenants);
  Engine.spawn machine.Hw_machine.engine ~name:"sweeper" (fun () ->
      let rec loop () =
        if not (all_done ()) then begin
          Engine.delay cfg.c_sweep_every_us;
          ignore (Spcm.sweep spcm);
          loop ()
        end
      in
      loop ();
      ignore (Spcm.refuse_pending spcm));
  Engine.run machine.Hw_machine.engine;

  (* End-of-run reference settlement (the O(accounts) full scan) so every
     balance is current before the audit reads them. *)
  Spcm.settle spcm;
  let market = Spcm.market spcm in
  let now = Hw_machine.now machine in
  let accounts = M.accounts market in
  let min_balance =
    List.fold_left (fun acc a -> Float.min acc a.M.balance) infinity accounts
  in
  let metrics = Hw_machine.metrics machine in
  let slo_for cls =
    let members = Array.to_list tenants |> List.filter (fun t -> t.t_class = cls) in
    let hists = List.filter_map (fun t -> Sim_metrics.hist metrics ~kind:t.t_kind) members in
    let merged = match hists with [] -> None | h :: tl -> List.fold_left Hist.merge h tl |> Option.some in
    let q p = match merged with None -> 0.0 | Some h -> Hist.quantile h p in
    {
      sc_class = class_name cls;
      sc_tenants = List.length members;
      sc_completed = List.length (List.filter (fun t -> t.t_completed) members);
      sc_refused = List.length (List.filter (fun t -> t.t_refused) members);
      sc_samples = (match merged with None -> 0 | Some h -> Hist.count h);
      sc_p50_us = q 50.0;
      sc_p99_us = q 99.0;
      sc_p999_us = q 99.9;
      sc_max_us = (match merged with None -> 0.0 | Some h -> Hist.max_value h);
      sc_violations =
        List.fold_left
            (fun acc t ->
              match Sim_metrics.hist metrics ~kind:t.t_kind with
              | Some h when Hist.quantile h 99.0 > cfg.c_slo_us -> acc + 1
              | _ -> acc)
            0 members;
    }
  in
  let holdings_left =
    List.fold_left (fun acc a -> acc + a.M.holding_pages) 0 accounts
  in
  let stats = K.stats kernel in
  let frames = Hw_machine.n_frames machine in
  {
    r_name = cfg.c_name;
    r_frames = frames;
    r_tenants = cfg.c_tenants;
    r_savers = cfg.c_savers;
    r_completed = !completed;
    r_refused = !refused;
    r_defer_events = Spcm.defer_events spcm;
    r_granted_frames = !granted_frames;
    r_saver_cycles = !saver_cycles;
    r_saver_starved = !saver_starved;
    r_faults = stats.K.faults_missing + stats.K.faults_protection + stats.K.faults_cow;
    r_events = Engine.events_executed machine.Hw_machine.engine;
    r_sim_us = now;
    r_slo_us = cfg.c_slo_us;
    r_slos = List.map slo_for [ Normal; Premium; Poor ];
    r_accounts = M.n_accounts market;
    r_min_balance = min_balance;
    r_billable_s = M.billable_s market ~now_us:now;
    r_conservation_residual = M.conservation_error market;
    r_io_failures =
      List.fold_left (fun acc b -> acc + Mgr_backing.io_failures b) 0 !saver_backings;
    r_conserved =
      K.frame_owner_total kernel = frames
      && K.frame_owner_audit kernel = K.frame_owner_audit_scan kernel
      && Engine.live_processes machine.Hw_machine.engine = 0
      && Spcm.pending_acquires spcm = 0
      && holdings_left = 0;
  }
