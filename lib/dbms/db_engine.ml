module K = Epcm_kernel
module Seg = Epcm_segment
module Engine = Sim_engine
module Resource = Sim_sync.Resource
module Rng = Sim_rng
module Cfg = Db_config

type result = {
  label : string;
  avg_ms : float;
  worst_ms : float;
  p95_ms : float;
  txns : int;
  avg_dc_ms : float;
  avg_join_ms : float;
  page_in_events : int;
  regenerations : int;
  cpu_utilisation : float;
  lock_waits : int;
  frames_conserved : bool;
}

(* Relation ids used as lock-resource names. *)
let rel_accounts = 0
let rel_orders = 1
let rel_lineitems = 2
let rel_summary = 3

type world = {
  cfg : Cfg.t;
  machine : Hw_machine.t;
  kernel : K.t;
  mgr : Mgr_dbms.t;
  locks : Db_locks.t;
  cpus : Resource.t;
  rng : Rng.t;
  seg_accounts : Seg.id;
  seg_orders : Seg.id;
  seg_lineitems : Seg.id;
  seg_summary : Seg.id;
  indices : Mgr_dbms.index_id array;
  btree : Db_btree.t;  (* shared layout: all indices are 1 MB B+-trees *)
  mutable evicted : Mgr_dbms.index_id option;
  mutable next_txn : int;
  mutable txn_count : int;
  responses : Sim_stats.Series.t;
  dc_responses : Sim_stats.Series.t;
  join_responses : Sim_stats.Series.t;
}

(* The 14 ms/page disk of the SGI configuration: a fast-for-1992 server
   drive; 256 pages = one 1 MB index page-in of ~3.6 s, which is what makes
   the paging configuration hurt. *)
let table4_disk = { Hw_disk.seek_us = 9_200.0; half_rotation_us = 4_150.0; us_per_kb = 170.0 }

(* Scaled data layout: response times depend on what a transaction touches,
   not on total resident gigabytes, so the 120 MB database is represented
   with full-size indices (the moving part) and proportionally sized
   relations. *)
let accounts_pages = 4096
let orders_pages = 1024
let lineitems_pages = 1024

let build cfg =
  let total_pages =
    accounts_pages + orders_pages + lineitems_pages + cfg.Cfg.summary_pages
    + (cfg.Cfg.n_indices * cfg.Cfg.index_pages) + 4096
  in
  let machine =
    Hw_machine.create ~preset:Hw_machine.Sgi_4d_380 ~memory_bytes:(total_pages * 4096)
      ~disk_params:table4_disk ()
  in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next_slot = ref 0 in
  let source ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next_slot < Seg.length init_seg do
      (if (Seg.page init_seg !next_slot).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next_slot
           ~dst_page:(dst_page + !granted) ~count:1 ();
         incr granted
       end);
      incr next_slot
    done;
    !granted
  in
  let mgr = Mgr_dbms.create kernel ~source ~pool_capacity:1024 () in
  let seg_accounts = Mgr_dbms.create_relation mgr ~name:"accounts" ~pages:accounts_pages in
  let seg_orders = Mgr_dbms.create_relation mgr ~name:"orders" ~pages:orders_pages in
  let seg_lineitems = Mgr_dbms.create_relation mgr ~name:"lineitems" ~pages:lineitems_pages in
  let seg_summary = Mgr_dbms.create_relation mgr ~name:"summary" ~pages:cfg.Cfg.summary_pages in
  let with_indices = cfg.Cfg.indexing <> Cfg.No_index in
  let indices =
    if with_indices then
      Array.init cfg.Cfg.n_indices (fun i ->
          Mgr_dbms.create_index mgr ~name:(Printf.sprintf "index-%d" i)
            ~pages:cfg.Cfg.index_pages ())
    else [||]
  in
  let evicted =
    match cfg.Cfg.indexing with
    | Cfg.Index_with_paging | Cfg.Index_regeneration ->
        (* The allocation is 1 MB short of the virtual memory: one index is
           always out. *)
        let victim = indices.(0) in
        Mgr_dbms.evict_index mgr victim;
        Some victim
    | Cfg.No_index | Cfg.Index_in_memory -> None
  in
  {
    cfg;
    machine;
    kernel;
    mgr;
    locks = Db_locks.create ();
    cpus = Resource.create machine.Hw_machine.engine ~capacity:cfg.Cfg.n_cpus;
    rng = Rng.create cfg.Cfg.seed;
    seg_accounts;
    seg_orders;
    seg_lineitems;
    seg_summary;
    indices;
    btree = Db_btree.create ~pages:cfg.Cfg.index_pages ();
    evicted;
    next_txn = 0;
    txn_count = 0;
    responses = Sim_stats.Series.create ();
    dc_responses = Sim_stats.Series.create ();
    join_responses = Sim_stats.Series.create ();
  }

let cpu_ms w ms = Resource.use w.cpus (fun () -> Engine.delay (ms *. 1000.0))

let touch w seg page access = K.touch w.kernel ~space:seg ~page ~access

let random_hot_index w =
  (* Uniform over the resident ("hot") indices. *)
  let hot =
    Array.to_list w.indices |> List.filter (fun i -> Mgr_dbms.index_resident w.mgr i)
  in
  match hot with
  | [] -> w.indices.(0)
  | _ -> List.nth hot (Rng.int w.rng (List.length hot))

(* One keyed lookup: walk the B+-tree from the root to the leaf covering
   the key, touching each page on the path. *)
let use_index w idx ~key =
  Mgr_dbms.note_index_use w.mgr idx ~now:(Engine.time ());
  let seg = Mgr_dbms.index_segment w.mgr idx in
  List.iter (fun p -> touch w seg p Epcm_manager.Read) (Db_btree.lookup_path w.btree ~key)

(* Bring the cold index back under the index latch (X on the database
   node): nobody can start while the index is inconsistent, which is what
   multiplies one page fault's latency across every blocked process
   (paper §1). *)
let reload_cold_index w ~txn idx =
  Db_locks.acquire w.locks ~txn Db_locks.Database Db_locks.X;
  (* Another transaction may have reloaded it while we waited for the
     latch. *)
  if Mgr_dbms.index_resident w.mgr idx then Db_locks.release_all w.locks ~txn
  else begin
  (match w.cfg.Cfg.indexing with
  | Cfg.Index_with_paging ->
      (* 256 page faults, each filled from disk by the manager. *)
      Mgr_dbms.load_index_from_disk w.mgr idx
  | Cfg.Index_regeneration ->
      (* Rebuild from the (resident) relation: compute, then local fills. *)
      cpu_ms w w.cfg.Cfg.regen_ms;
      Mgr_dbms.regenerate_index w.mgr idx
  | Cfg.No_index | Cfg.Index_in_memory -> ());
  Mgr_dbms.note_index_use w.mgr idx ~now:(Engine.time ());
  (* Stay 1 MB over-committed: something else has to go. *)
  w.evicted <- Mgr_dbms.evict_lru_index w.mgr ~except:(Some idx);
  Db_locks.release_all w.locks ~txn
  end

let run_debit_credit w ~txn =
  let cfg = w.cfg in
  Db_locks.acquire w.locks ~txn Db_locks.Database Db_locks.IX;
  Db_locks.acquire w.locks ~txn (Db_locks.Relation rel_accounts) Db_locks.IX;
  let page = Rng.int w.rng accounts_pages in
  Db_locks.acquire w.locks ~txn (Db_locks.Page (rel_accounts, page)) Db_locks.X;
  (* Locate the account through an index, then touch the data pages. *)
  if Array.length w.indices > 0 then use_index w (random_hot_index w) ~key:page;
  for i = 0 to cfg.Cfg.dc_touch_pages - 1 do
    touch w w.seg_accounts (min (accounts_pages - 1) (page + i)) Epcm_manager.Write
  done;
  cpu_ms w cfg.Cfg.dc_service_ms;
  Db_locks.release_all w.locks ~txn

let run_join w ~txn =
  let cfg = w.cfg in
  Db_locks.acquire w.locks ~txn Db_locks.Database Db_locks.IX;
  Db_locks.acquire w.locks ~txn (Db_locks.Relation rel_orders) Db_locks.S;
  Db_locks.acquire w.locks ~txn (Db_locks.Relation rel_lineitems) Db_locks.S;
  Db_locks.acquire w.locks ~txn (Db_locks.Relation rel_summary) Db_locks.IX;
  (match cfg.Cfg.indexing with
  | Cfg.No_index ->
      (* Scan both relations. *)
      touch w w.seg_orders (Rng.int w.rng orders_pages) Epcm_manager.Read;
      touch w w.seg_lineitems (Rng.int w.rng lineitems_pages) Epcm_manager.Read;
      cpu_ms w cfg.Cfg.join_scan_ms
  | Cfg.Index_in_memory | Cfg.Index_with_paging | Cfg.Index_regeneration ->
      use_index w (random_hot_index w) ~key:(Rng.int w.rng (Db_btree.keys w.btree));
      use_index w (random_hot_index w) ~key:(Rng.int w.rng (Db_btree.keys w.btree));
      cpu_ms w cfg.Cfg.join_index_ms);
  (* Update the summary relation. *)
  let p1 = Rng.int w.rng cfg.Cfg.summary_pages in
  let p2 = Rng.int w.rng cfg.Cfg.summary_pages in
  let lo = min p1 p2 and hi = max p1 p2 in
  Db_locks.acquire w.locks ~txn (Db_locks.Page (rel_summary, lo)) Db_locks.X;
  if hi <> lo then Db_locks.acquire w.locks ~txn (Db_locks.Page (rel_summary, hi)) Db_locks.X;
  touch w w.seg_summary lo Epcm_manager.Write;
  touch w w.seg_summary hi Epcm_manager.Write;
  Db_locks.release_all w.locks ~txn

let run_txn w =
  let cfg = w.cfg in
  w.next_txn <- w.next_txn + 1;
  let txn = w.next_txn in
  let arrival = Engine.time () in
  let is_join = Rng.bernoulli w.rng cfg.Cfg.join_fraction in
  (* Does this transaction need the index that is currently out? The
     calibrated hit rate reproduces the paper's "one megabyte index is
     paged in every 500 transactions". *)
  (match w.evicted with
  | Some idx when Rng.bernoulli w.rng cfg.Cfg.p_evicted_index_needed ->
      reload_cold_index w ~txn idx
  | Some _ | None -> ());
  if is_join then run_join w ~txn else run_debit_credit w ~txn;
  let response_ms = (Engine.time () -. arrival) /. 1000.0 in
  w.txn_count <- w.txn_count + 1;
  if arrival >= cfg.Cfg.warmup_s *. 1_000_000.0 then begin
    Sim_stats.Series.add w.responses response_ms;
    Sim_stats.Series.add (if is_join then w.join_responses else w.dc_responses) response_ms
  end

let run cfg =
  let w = build cfg in
  let engine = w.machine.Hw_machine.engine in
  let duration_us = cfg.Cfg.duration_s *. 1_000_000.0 in
  let arrivals = Rng.split w.rng in
  Engine.spawn engine ~name:"arrivals" (fun () ->
      let rec loop () =
        Engine.delay (Rng.exponential arrivals ~mean:(1_000_000.0 /. cfg.Cfg.tps));
        if Engine.time () < duration_us then begin
          Engine.fork ~name:"txn" (fun () -> run_txn w);
          loop ()
        end
      in
      loop ());
  Engine.run engine;
  let n_frames = Hw_machine.n_frames w.machine in
  let audited = K.frame_owner_total w.kernel in
  let series_avg s = if Sim_stats.Series.count s = 0 then 0.0 else Sim_stats.Series.mean s in
  {
    label = cfg.Cfg.label;
    avg_ms = series_avg w.responses;
    worst_ms = (if Sim_stats.Series.count w.responses = 0 then 0.0 else Sim_stats.Series.max w.responses);
    p95_ms =
      (if Sim_stats.Series.count w.responses = 0 then 0.0
       else Sim_stats.Series.percentile w.responses 95.0);
    txns = Sim_stats.Series.count w.responses;
    avg_dc_ms = series_avg w.dc_responses;
    avg_join_ms = series_avg w.join_responses;
    page_in_events = Mgr_dbms.page_in_events w.mgr;
    regenerations = Mgr_dbms.regenerations w.mgr;
    cpu_utilisation = Resource.utilisation w.cpus;
    lock_waits = Db_locks.total_blocked w.locks;
    frames_conserved = audited = n_frames;
  }

let paper_numbers =
  [
    ("No index", (866.0, 3770.0));
    ("Index in memory", (43.0, 410.0));
    ("Index with paging", (575.0, 3930.0));
    ("Index regeneration", (55.0, 680.0));
  ]

let render results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 4: Effect of Memory Usage on Transaction Response (ms)\n";
  let rows =
    List.map
      (fun r ->
        let paper_avg, paper_worst =
          match List.assoc_opt r.label paper_numbers with Some p -> p | None -> (0.0, 0.0)
        in
        [
          r.label;
          Printf.sprintf "%.0f" r.avg_ms;
          Printf.sprintf "%.0f" r.worst_ms;
          Printf.sprintf "%.0f" paper_avg;
          Printf.sprintf "%.0f" paper_worst;
          string_of_int r.txns;
          Printf.sprintf "%.2f" r.cpu_utilisation;
          string_of_int (r.page_in_events + r.regenerations);
        ])
      results
  in
  Buffer.add_string buf
    (Printf.sprintf "%s"
       (let header =
          [ "Configuration"; "Avg"; "Worst"; "paper Avg"; "paper Worst"; "txns"; "cpu";
            "reloads" ]
        in
        let widths =
          List.mapi
            (fun i h ->
              List.fold_left
                (fun acc row -> max acc (String.length (List.nth row i)))
                (String.length h) rows)
            header
        in
        let render_row row =
          String.concat "  "
            (List.map2 (fun w cell -> cell ^ String.make (w - String.length cell) ' ') widths row)
        in
        render_row header ^ "\n"
        ^ String.concat "--" (List.map (fun w -> String.make w '-') widths)
        ^ "\n"
        ^ String.concat "\n" (List.map render_row rows)
        ^ "\n"));
  Buffer.contents buf
