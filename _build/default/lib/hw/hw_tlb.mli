(** Translation lookaside buffer model.

    The R3000 TLB has 64 entries; misses are refilled in software by a fast
    kernel handler. We model a direct-mapped TLB (deterministic, close
    enough for the cache-coloring example) with hit/miss accounting. *)

type t

val create : ?entries:int -> unit -> t
(** Default 64 entries. *)

val lookup : t -> space:int -> vpn:int -> int option
(** Returns the cached frame for the page, updating statistics. *)

val fill : t -> space:int -> vpn:int -> frame:int -> unit
val invalidate : t -> space:int -> vpn:int -> unit
val invalidate_space : t -> space:int -> unit
val flush : t -> unit

val hits : t -> int
val misses : t -> int
val hit_rate : t -> float
(** In [0,1]; 0 when no lookups have happened. *)
