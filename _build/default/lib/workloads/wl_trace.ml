type op =
  | Compute of float
  | Open_input of { file : int; kb : int }
  | Open_output of { file : int }
  | Read_seq of { file : int; kb : int }
  | Append of { file : int; kb : int }
  | Touch_heap of { pages : int }
  | Rescan_heap of { passes : int }
  | Close of { file : int }
  | Admin of { requests : int }

type t = {
  name : string;
  ops : op list;
  heap_pages : int;
  vpp_library_delta_us : float;
}

let sum f t = List.fold_left (fun acc op -> acc + f op) 0 t.ops

let total_heap_touches t =
  sum (function Touch_heap { pages } -> pages | _ -> 0) t

let total_read_kb t = sum (function Read_seq { kb; _ } -> kb | _ -> 0) t
let total_append_kb t = sum (function Append { kb; _ } -> kb | _ -> 0) t

let input_files t =
  List.filter_map (function Open_input { file; kb } -> Some (file, kb) | _ -> None) t.ops

let output_files t =
  List.filter_map (function Open_output { file } -> Some file | _ -> None) t.ops

let opens t =
  sum (function Open_input _ | Open_output _ -> 1 | _ -> 0) t

let closes t = sum (function Close _ -> 1 | _ -> 0) t

let pp ppf t =
  Format.fprintf ppf "%s: %d ops, %d heap touches, %dKB read, %dKB appended" t.name
    (List.length t.ops) (total_heap_touches t) (total_read_kb t) (total_append_kb t)
