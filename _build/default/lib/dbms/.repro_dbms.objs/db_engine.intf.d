lib/dbms/db_engine.mli: Db_config
