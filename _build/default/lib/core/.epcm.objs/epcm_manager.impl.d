lib/core/epcm_manager.ml: Epcm_segment Format
