lib/hw/hw_page_table.mli:
