(* Benchmark harness.

   Two jobs, one executable:

   1. Regenerate every table and figure of the paper and print the same
      rows the paper reports (paper value alongside the measured one) —
      the reproduction itself.

   2. A Bechamel microbenchmark group with one Test.make per table (and
      one for the figures): how long the simulator takes, in wall-clock
      time, to regenerate each artifact. Useful for tracking simulator
      performance regressions.

   Run with: dune exec bench/main.exe [-- --jobs N]
   --jobs N runs the independent experiments on N OCaml domains (default:
   the recommended domain count; joined in fixed order, so the printed
   report is byte-identical to a sequential run). Set VPP_BENCH_FAST=1 to
   skip the Bechamel pass (used by CI smoke runs). *)

open Bechamel
open Toolkit

(* Minimal flag scan: Bechamel owns no CLI, so the harness takes just
   "--jobs N" (or "--jobs=N"). Without the flag, fan out over the
   detected domain count. *)
let jobs =
  let argv = Sys.argv in
  let jobs = ref None in
  Array.iteri
    (fun i arg ->
      if arg = "--jobs" && i + 1 < Array.length argv then
        jobs := Some (max 1 (int_of_string argv.(i + 1)))
      else if String.length arg > 7 && String.sub arg 0 7 = "--jobs=" then
        jobs := Some (max 1 (int_of_string (String.sub arg 7 (String.length arg - 7)))))
    argv;
  match !jobs with Some j -> j | None -> Exp_par.default_jobs ()

let line () = print_endline (String.make 78 '=')

let reproduce () =
  line ();
  print_endline "Reproduction: Harty & Cheriton, ASPLOS 1992 — all tables and figures";
  line ();
  print_string
    (Exp_par.concat ~jobs ~sep:"\n"
       [
         (fun () -> Exp_table1.render (Exp_table1.run ()));
         (fun () -> Exp_table2.render (Exp_table2.run ()));
         (fun () -> Exp_table3.render (Exp_table3.run ()));
         (fun () -> Exp_table4.render (Exp_table4.run ()));
         (fun () -> Exp_figures.render (Exp_figures.run ()));
       ]);
  print_newline ();
  line ();
  print_endline "Ablations of the design choices";
  line ();
  print_string
    (Exp_par.concat ~jobs ~sep:""
       (List.map
          (fun run () -> Exp_ablations.render (run ()) ^ "\n")
          [
            Exp_ablations.append_batch;
            Exp_ablations.delivery_mode;
            Exp_ablations.reprotect_batch;
            Exp_ablations.regeneration_crossover;
            Exp_ablations.eviction_destination;
          ]));
  print_string (Exp_substrate.render (Exp_substrate.run ()));
  print_newline ();
  line ();
  print_endline "Fault injection: seeded chaos storms on the disk paths";
  line ();
  print_string (Exp_chaos.render (Exp_chaos.run ()));
  print_newline ();
  line ();
  print_endline "Observability: Table 1 cost attribution and latency histograms";
  line ();
  let profile = Exp_profile.run () in
  print_string (Exp_profile.render profile);
  let record = Exp_profile.render_json profile in
  let oc = open_out "BENCH_observability.json" in
  output_string oc record;
  close_out oc;
  print_endline "(machine-readable record written to BENCH_observability.json)";
  line ();
  print_endline "Perf: simulator throughput at scale";
  line ();
  let perf = Exp_scale.run ~jobs () in
  print_string (Exp_scale.render perf);
  let oc = open_out "BENCH_perf.json" in
  output_string oc (Exp_scale.render_json perf);
  close_out oc;
  print_endline "(machine-readable record written to BENCH_perf.json)";
  line ();
  print_endline "Market: multi-tenant admission control at production scale";
  line ();
  let market = Exp_market.run ~jobs () in
  print_string (Exp_market.render market);
  let oc = open_out "BENCH_market.json" in
  output_string oc (Exp_market.render_json market);
  close_out oc;
  print_endline "(machine-readable record written to BENCH_market.json)";
  line ();
  print_endline "Tier: single-tier vs tiered frame placement";
  line ();
  let tier = Exp_tier.run ~jobs () in
  print_string (Exp_tier.render tier);
  let oc = open_out "BENCH_tier.json" in
  output_string oc (Exp_tier.render_json tier);
  close_out oc;
  print_endline "(machine-readable record written to BENCH_tier.json)";
  line ();
  print_endline "Cache: frame placement vs a physically-indexed L2";
  line ();
  let cache = Exp_cache.run ~jobs () in
  print_string (Exp_cache.render cache);
  let oc = open_out "BENCH_cache.json" in
  output_string oc (Exp_cache.render_json cache);
  close_out oc;
  print_endline "(machine-readable record written to BENCH_cache.json)";
  line ();
  print_endline "Shard: parallel DBMS shards with two-phase commit";
  line ();
  let shard = Exp_shard.run ~jobs () in
  print_string (Exp_shard.render shard);
  let oc = open_out "BENCH_shard.json" in
  output_string oc (Exp_shard.render_json shard);
  close_out oc;
  print_endline "(machine-readable record written to BENCH_shard.json)"

(* One Test.make per table/figure. Table 4 runs in its quick (60 s
   simulated) configuration here so a Bechamel sample stays subsecond. *)
let tests =
  Test.make_grouped ~name:"paper"
    [
      Test.make ~name:"table1.primitives" (Staged.stage (fun () -> ignore (Exp_table1.run ())));
      Test.make ~name:"table2.applications" (Staged.stage (fun () -> ignore (Exp_table2.run ())));
      Test.make ~name:"table3.vm-activity" (Staged.stage (fun () -> ignore (Exp_table3.run ())));
      Test.make ~name:"table4.dbms-quick"
        (Staged.stage (fun () -> ignore (Exp_table4.run ~quick:true ())));
      Test.make ~name:"figures.protocol" (Staged.stage (fun () -> ignore (Exp_figures.run ())));
      Test.make ~name:"chaos.storms" (Staged.stage (fun () -> ignore (Exp_chaos.run ())));
      Test.make ~name:"market.small"
        (Staged.stage (fun () -> ignore (Exp_market.run ~quick:true ())));
      Test.make ~name:"tier.placement"
        (Staged.stage (fun () -> ignore (Exp_tier.run ~quick:true ())));
      Test.make ~name:"cache.coloring"
        (Staged.stage (fun () -> ignore (Exp_cache.run ~quick:true ())));
      Test.make ~name:"shard.two-phase"
        (Staged.stage (fun () -> ignore (Exp_shard.run ~quick:true ())));
    ]

let benchmark () =
  line ();
  print_endline "Bechamel: wall-clock cost of regenerating each artifact";
  line ();
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan
        in
        let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
        (name, ns, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  Printf.printf "%-28s %16s %8s\n" "benchmark" "time/run" "r^2";
  print_endline (String.make 54 '-');
  List.iter
    (fun (name, ns, r2) ->
      let time_str =
        if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else Printf.sprintf "%.0f ns" ns
      in
      Printf.printf "%-28s %16s %8.3f\n" name time_str r2)
    rows

let () =
  reproduce ();
  print_newline ();
  if Sys.getenv_opt "VPP_BENCH_FAST" = None then benchmark ()
  else print_endline "(VPP_BENCH_FAST set: skipping the Bechamel pass)"
