(** Figures 1 and 2 are architecture diagrams, not data plots; their
    executable analogue is a machine-checked dump of live kernel state.

    Figure 1: a program address space composed of code/data/stack segments
    through bound regions — rebuilt with real kernel objects and rendered
    from the segment structures.

    Figure 2: the five-step fault-handling protocol — a fault is taken with
    tracing on and the recorded step sequence is checked against the
    paper's 1..5 (and the steps-2-3-collapsed variant for locally
    available data). *)

type result = {
  figure1 : string;  (** Rendered address-space composition. *)
  figure2_remote : string list;  (** Step tags, data fetched from server. *)
  figure2_local : string list;  (** Step tags, data available locally. *)
  checks : Exp_report.check list;
}

val run : unit -> result
val render : result -> string
