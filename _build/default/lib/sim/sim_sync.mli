(** Synchronisation primitives for simulated processes.

    All blocking operations must be called from inside a process body
    (see {!Sim_engine}). *)

(** Counting semaphore with FIFO wake-up. *)
module Semaphore : sig
  type t

  val create : int -> t
  val available : t -> int
  val waiting : t -> int
  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
end

(** A pool of identical servers (CPUs, disk arms) with utilisation
    accounting. [use] brackets a critical section. *)
module Resource : sig
  type t

  val create : Sim_engine.t -> capacity:int -> t
  val capacity : t -> int
  val in_use : t -> int
  val waiting : t -> int
  val use : t -> (unit -> 'a) -> 'a
  (** Acquire a server (waiting FIFO if all busy), run the thunk, release. *)

  val utilisation : t -> float
  (** Time-weighted fraction of servers busy since creation, in [0,1]. *)
end

(** Unbounded FIFO channel of values between processes. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t
  val send : 'a t -> 'a -> unit
  (** Never blocks. *)

  val recv : 'a t -> 'a
  (** Blocks until a value is available. *)

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end

(** One-shot broadcast gate: processes wait until it is opened, after which
    all waits return immediately. *)
module Gate : sig
  type t

  val create : unit -> t
  val wait : t -> unit
  val open_ : t -> unit
  val is_open : t -> bool
end

(** Condition variable: [await c] blocks until some later [signal_all c].
    Unlike {!Gate}, it can be signalled repeatedly. *)
module Condition : sig
  type t

  val create : unit -> t
  val await : t -> unit
  val signal_all : t -> unit
  val waiting : t -> int
end
