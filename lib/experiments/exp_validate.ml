(* One validator per record schema. The dispatcher reads the record's own
   "schema" tag, so callers need not know which command produced a file;
   `vpp_repro validate` is a thin shell around this module, and
   test_experiments drives every schema (and the error paths) through it
   directly. *)

let validators =
  [
    (Exp_scale.schema_version, Exp_scale.validate_json);
    (Exp_scale.schema_version_v1, Exp_scale.validate_json_v1);
    (Exp_market.schema_version, Exp_market.validate_json);
    (Exp_profile.schema_version, Exp_profile.validate_json);
    (Exp_tier.schema_version, Exp_tier.validate_json);
    (Exp_cache.schema_version, Exp_cache.validate_json);
    (Exp_shard.schema_version, Exp_shard.validate_json);
  ]

let known_schemas = List.map fst validators

let known () = String.concat ", " known_schemas

let validate json =
  match Option.bind (Sim_json.member "schema" json) Sim_json.to_str with
  | None -> Error (Printf.sprintf "record has no \"schema\" tag (known schemas: %s)" (known ()))
  | Some tag -> (
      match List.assoc_opt tag validators with
      | None -> Error (Printf.sprintf "unknown schema %S (known schemas: %s)" tag (known ()))
      | Some validate -> (
          match validate json with
          | Ok () -> Ok tag
          | Error e -> Error (Printf.sprintf "invalid %s record: %s" tag e)))

let validate_string contents =
  match Sim_json.parse contents with
  | Error e -> Error (Printf.sprintf "JSON parse error: %s" e)
  | Ok json -> validate json
