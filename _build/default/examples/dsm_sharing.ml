(* Distributed consistency as a process-level manager.

   The paper's conclusion lists "distributed consistency" among the
   services V++ moved out of the kernel into segment managers. This
   example runs the MSI consistency manager over two nodes updating
   shared state two ways:

   - naïvely, with both nodes' counters on the same page: every update
     steals the page back across the interconnect (write ping-pong);
   - partitioned, with each node's counters on its own page: after the
     first fetch, all updates are local.

   The protocol statistics make the cost of false sharing visible — and
   show why the paper wants applications, which know their access
   patterns, making placement decisions.

   Run with: dune exec examples/dsm_sharing.exe *)

module K = Epcm_kernel
module Seg = Epcm_segment
module Engine = Sim_engine

let updates = 200

let build () =
  let machine = Hw_machine.create ~memory_bytes:(4 * 1024 * 1024) () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let granted = ref 0 in
    let init_seg = K.segment kernel init in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  let dsm = Mgr_dsm.create kernel ~source ~nodes:2 ~pages:4 () in
  (machine, dsm)

let run ~shared_page () =
  let machine, dsm = build () in
  let elapsed = ref 0.0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      let t0 = Engine.time () in
      for i = 1 to updates do
        let node = i mod 2 in
        let page = if shared_page then 0 else node in
        Mgr_dsm.write dsm ~node ~page
          (Hw_page_data.block ~file:node ~block:page ~version:i)
      done;
      elapsed := Engine.time () -. t0);
  Engine.run machine.Hw_machine.engine;
  (!elapsed /. 1000.0, Mgr_dsm.transfers dsm, Mgr_dsm.invalidations dsm)

let () =
  let shared_ms, shared_tx, shared_inv = run ~shared_page:true () in
  let part_ms, part_tx, part_inv = run ~shared_page:false () in
  Printf.printf "Two nodes interleaving %d counter updates over the consistency manager:\n\n"
    updates;
  Printf.printf "  same page (false sharing) : %8.1f ms  (%3d transfers, %3d invalidations)\n"
    shared_ms shared_tx shared_inv;
  Printf.printf "  partitioned pages         : %8.1f ms  (%3d transfers, %3d invalidations)\n"
    part_ms part_tx part_inv;
  Printf.printf "  layout control wins        : %.0fx\n\n" (shared_ms /. part_ms);
  print_endline
    "The kernel only forwarded faults and migrated frames; the whole MSI protocol —\n\
     states, invalidations, downgrades, the home copy — lives in a user-level manager\n\
     built on MigratePages / ModifyPageFlags / GetPageAttributes.";
  (* Coherence sanity: a remote node reads what the writer wrote. *)
  let _, dsm = build () in
  Mgr_dsm.write dsm ~node:0 ~page:0 (Hw_page_data.of_string "final");
  let seen = Mgr_dsm.read dsm ~node:1 ~page:0 in
  Printf.printf "\nCoherence check: node 1 reads node 0's last write: %b\n"
    (Hw_page_data.equal seen (Hw_page_data.of_string "final"))
