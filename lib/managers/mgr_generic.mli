(** Generic segment manager (paper §2.2).

    The paper argues an application manager should be "specialised from a
    generic or standard segment manager": the generic part provides the
    free-page segment, fault handling, a second-chance clock over resident
    pages, writeback and interaction with the system page cache manager;
    applications override the page-fill, allocation-batch and eviction
    hooks. {!Mgr_default}, {!Mgr_dbms}, {!Mgr_prefetch} and
    {!Mgr_coloring} are all such specialisations. *)

type seg_kind =
  | Anon  (** Heap/stack-like: new pages have no backing data. *)
  | File of { file_id : int }  (** Cached file: pages back onto blocks. *)

type hooks = {
  fill :
    seg:Epcm_segment.id -> page:int -> kind:seg_kind -> high_water:int -> Hw_page_data.t option;
      (** Data for a missing page, or [None] to hand the frame over as-is
          (the minimal fault: first heap touch, file append). Default: read
          the block from backing for [File] pages below the high-water
          mark, [None] otherwise. *)
  batch_of : seg:Epcm_segment.id -> page:int -> kind:seg_kind -> high_water:int -> int;
      (** Pages to allocate on one missing fault (contiguous, single
          [MigratePages]). Default 1. The default manager returns 4 for
          file appends — the paper's 16 KB append allocation. *)
  on_eviction :
    seg:Epcm_segment.id -> page:int -> dirty:bool -> [ `Writeback | `Discard ];
      (** Default: [`Writeback] when dirty, [`Discard] otherwise. A
          Subramanian-style manager discards known-garbage dirty pages. *)
  reprotect_batch : int;
      (** Contiguous pages to re-enable on one sampling (protection) fault;
          the paper's default manager does this "to reduce the overhead of
          handling these faults". Default 8. *)
}

val default_hooks : backing:Mgr_backing.t -> hooks

type source = dst:Epcm_segment.id -> dst_page:int -> count:int -> int
(** Ask the system page cache manager for frames, migrated into
    [dst_page..] of [dst]; returns how many were granted. *)

type sp_source = dst:Epcm_segment.id -> dst_page:int -> int
(** Ask the system page cache manager for one whole aligned superpage run
    migrated to superpage-aligned [dst_page] of [dst] (typically
    {!Epcm_kernel.grant_superpage_run} behind a cursor). Returns the
    number of frames granted: [Epcm_kernel.super_pages] on success, [0]
    when no aligned run was available — the fault then falls back to the
    ordinary 4 KB path. *)

exception Out_of_frames of string
(** No pool frames, the source granted nothing, and nothing was
    reclaimable. *)

type stats = {
  mutable fills : int;
  mutable cow_fills : int;
  mutable protection_clears : int;
  mutable reclaimed : int;
  mutable writebacks : int;
  mutable discards : int;
  mutable refill_requests : int;
  mutable frames_from_source : int;
  mutable closes : int;
  mutable fill_failures : int;
      (** Missing faults abandoned because backing reads exhausted their
          retry budget ({!Mgr_backing.Backing_failed} re-raised to the
          faulting process; no frame left the pool). *)
  mutable writeback_failures : int;
      (** Evictions skipped (page left resident + dirty) or close-time
          writebacks lost because backing writes exhausted their budget. *)
}

type t

val create :
  Epcm_kernel.t ->
  name:string ->
  mode:Epcm_manager.mode ->
  backing:Mgr_backing.t ->
  ?source:source ->
  ?sp_source:sp_source ->
  ?hooks:hooks ->
  ?pool_capacity:int ->
  ?refill_batch:int ->
  ?reclaim_batch:int ->
  ?counters:Sim_stats.Counters.t ->
  unit ->
  t
(** Registers the manager with the kernel and creates its free-page
    segment. [pool_capacity] defaults to 1024 slots; [refill_batch] (frames
    per SPCM request) to 32; [reclaim_batch] to 16. [counters], when given,
    receives the degradation events ("<name>.writeback_skipped",
    "<name>.fill_failed", "<name>.close_writeback_lost") so a chaos
    scenario can report every manager's failure handling in one place. *)

val kernel : t -> Epcm_kernel.t
val manager_id : t -> Epcm_manager.id
val pool : t -> Mgr_free_pages.t
val backing : t -> Mgr_backing.t
val stats : t -> stats

val segment_kind : t -> Epcm_segment.id -> seg_kind option
(** The kind a managed segment was created/adopted with ([None] for
    segments this manager does not own) — lets callers and tests see the
    backing [file_id] a [File] segment addresses. *)

val adopt :
  t -> Epcm_segment.id -> kind:seg_kind -> ?high_water:int -> ?superpages:bool -> unit -> unit
(** Take over management of an existing segment ([SetSegmentManager]).
    [high_water] is the number of pages with valid backing data (file
    size); defaults to 0 for [Anon] and to the segment length for
    [File]. [superpages] (default [false]) opts the segment into 2 MB
    mappings ({!Epcm_kernel.set_superpages}); a missing fault on an empty
    superpage-aligned region then first asks [sp_source] — when one was
    given to {!create} — for a whole aligned run before falling back to
    4 KB fills. *)

val create_segment :
  t ->
  name:string ->
  pages:int ->
  kind:seg_kind ->
  ?high_water:int ->
  ?superpages:bool ->
  unit ->
  Epcm_segment.id
(** Create a fresh segment already managed by this manager. [superpages]
    as in {!adopt}. *)

val close_segment : t -> Epcm_segment.id -> unit
(** Destroy the segment; resident frames are reclaimed into the pool
    (dirty ones written back per the eviction hook). *)

val managed : t -> Epcm_segment.id list
val high_water : t -> Epcm_segment.id -> int

val ensure_pool : t -> count:int -> unit
(** Make sure at least [count] frames are pooled, refilling from the
    source and then reclaiming. Raises {!Out_of_frames}. *)

val reclaim : t -> count:int -> int
(** Run the clock until [count] frames have been moved into the pool (or
    the clock finds nothing evictable); returns the number reclaimed. *)

val return_to_system : t -> pages:int -> int
(** Give frames back to the kernel's initial segment (reclaiming first if
    the pool is short); returns frames actually returned. Serialised
    against fault handling on the manager's serving lock — pool scans
    charge simulated time step by step and must not interleave. The
    registered SPCM pressure callback uses a non-blocking variant: if the
    manager is mid-fault it declines (returns 0) rather than deadlock
    against a fault handler that is itself blocked on an SPCM request. *)

val swap_out : t -> int
(** The §2.2 suspension protocol: evict every unpinned page of every
    managed segment (dirty data goes to the backing/swap store) and
    return all pooled frames to the system. Returns frames released.
    Serialised like {!return_to_system}. *)

val swap_in : t -> unit
(** Eagerly fault swapped pages back in (demand faulting would also
    restore them lazily, with correct data, via the swap-aware fill). *)

val pin : t -> seg:Epcm_segment.id -> page:int -> count:int -> unit
val unpin : t -> seg:Epcm_segment.id -> page:int -> count:int -> unit

val lock_in_memory : t -> seg:Epcm_segment.id -> unit
(** The §2.2 initialisation protocol for a manager's own code and data:
    touch every page to force it in, pin, then re-verify residency,
    retrying until a pass completes with no fault. *)

val protect_for_sampling : t -> seg:Epcm_segment.id -> unit
(** Set [no_access] on all resident pages so the next touches fault and
    reveal the working set (the default manager's clock sampling). *)

val resident : t -> seg:Epcm_segment.id -> int
