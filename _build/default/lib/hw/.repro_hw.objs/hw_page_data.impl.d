lib/hw/hw_page_data.ml: Bytes Char Format Printf
