(** Page flags.

    [MigratePages] and [ModifyPageFlags] let a manager set and clear these
    per-page flags — including [dirty], which conventional [mprotect]-style
    interfaces cannot touch (paper §2.1). A flag set is a small int bitset,
    so set/clear masks compose with [union]. *)

type t = private int

val empty : t

(* individual flags *)

val dirty : t
(** Contents differ from backing store. Travels with a migrating frame. *)

val referenced : t
(** Touched since last cleared; input to clock algorithms. *)

val no_access : t
(** Any reference faults (used by the default manager to sample use). *)

val read_only : t
(** Writes fault. *)

val pinned : t
(** Manager convention: never select for replacement. The kernel stores it
    but attaches no semantics — policy lives outside the kernel. *)

val io_busy : t
(** Manager convention: transfer in progress. *)

val union : t -> t -> t
val diff : t -> t -> t
val mem : t -> t -> bool
(** [mem flags f] — is every flag of [f] set in [flags]? *)

val intersects : t -> t -> bool
val of_list : t list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
