type site = Disk_read | Disk_write

type spec = {
  read_error_p : float;
  write_error_p : float;
  delay_p : float;
  delay_min_us : float;
  delay_max_us : float;
  outages : (float * float) list;
  bad_blocks : int list;
}

let default_spec =
  {
    read_error_p = 0.0;
    write_error_p = 0.0;
    delay_p = 0.0;
    delay_min_us = 0.0;
    delay_max_us = 0.0;
    outages = [];
    bad_blocks = [];
  }

module Verdict = struct
  type t = Pass | Delay of float | Transient_failure | Permanent_failure

  let equal a b =
    match (a, b) with
    | Pass, Pass | Transient_failure, Transient_failure | Permanent_failure, Permanent_failure ->
        true
    | Delay x, Delay y -> Float.equal x y
    | (Pass | Delay _ | Transient_failure | Permanent_failure), _ -> false

  let to_string = function
    | Pass -> "pass"
    | Delay us -> Printf.sprintf "+%.0fus" us
    | Transient_failure -> "fail"
    | Permanent_failure -> "bad-block"
end

type event = {
  ev_index : int;
  ev_time : float;
  ev_site : site;
  ev_block : int option;
  ev_verdict : Verdict.t;
}

type t = {
  on : bool;
  plan_spec : spec;
  read_rng : Sim_rng.t;
  write_rng : Sim_rng.t;
  mutable log : event list;  (* newest first *)
  mutable n : int;
  mutable failures : int;
  mutable delays : int;
}

let create ~seed plan_spec =
  let root = Sim_rng.create seed in
  (* Independent per-site streams: the order of reads relative to writes
     does not perturb either stream. *)
  let read_rng = Sim_rng.split root in
  let write_rng = Sim_rng.split root in
  { on = true; plan_spec; read_rng; write_rng; log = []; n = 0; failures = 0; delays = 0 }

let none () =
  {
    on = false;
    plan_spec = default_spec;
    read_rng = Sim_rng.create 0L;
    write_rng = Sim_rng.create 0L;
    log = [];
    n = 0;
    failures = 0;
    delays = 0;
  }

let enabled t = t.on
let spec t = t.plan_spec

let in_outage spec now = List.exists (fun (a, b) -> now >= a && now < b) spec.outages

let record t ~now ~site ~block verdict =
  t.log <- { ev_index = t.n; ev_time = now; ev_site = site; ev_block = block;
             ev_verdict = verdict }
            :: t.log;
  t.n <- t.n + 1;
  (match verdict with
  | Verdict.Transient_failure | Verdict.Permanent_failure -> t.failures <- t.failures + 1
  | Verdict.Delay _ -> t.delays <- t.delays + 1
  | Verdict.Pass -> ());
  verdict

let decide t site ~now ~block =
  if not t.on then Verdict.Pass
  else begin
    let rng = match site with Disk_read -> t.read_rng | Disk_write -> t.write_rng in
    (* Three variates per decision, drawn unconditionally, keep the stream
       aligned whatever branch the spec selects. *)
    let u_fail = Sim_rng.float rng in
    let u_delay = Sim_rng.float rng in
    let u_amount = Sim_rng.float rng in
    let s = t.plan_spec in
    let verdict =
      if (match block with Some b -> List.mem b s.bad_blocks | None -> false) then
        Verdict.Permanent_failure
      else if in_outage s now then Verdict.Transient_failure
      else
        let p = match site with Disk_read -> s.read_error_p | Disk_write -> s.write_error_p in
        if u_fail < p then Verdict.Transient_failure
        else if u_delay < s.delay_p then
          Verdict.Delay (s.delay_min_us +. ((s.delay_max_us -. s.delay_min_us) *. u_amount))
        else Verdict.Pass
    in
    record t ~now ~site ~block verdict
  end

let decisions t = t.n
let schedule t = List.rev t.log
let injected_failures t = t.failures
let injected_delays t = t.delays

let site_to_string = function Disk_read -> "read" | Disk_write -> "write"

let schedule_fingerprint t =
  schedule t
  |> List.filter_map (fun e ->
         match e.ev_verdict with
         | Verdict.Pass -> None
         | v ->
             Some
               (Printf.sprintf "%c%d%s:%s"
                  (match e.ev_site with Disk_read -> 'r' | Disk_write -> 'w')
                  e.ev_index
                  (match e.ev_block with None -> "" | Some b -> Printf.sprintf "@%d" b)
                  (Verdict.to_string v)))
  |> String.concat " "

let pp_event ppf e =
  Format.fprintf ppf "[%12.2f us] #%-5d %-5s %-8s %s" e.ev_time e.ev_index
    (site_to_string e.ev_site)
    (match e.ev_block with None -> "-" | Some b -> string_of_int b)
    (Verdict.to_string e.ev_verdict)
