type t = {
  line_bytes : int;
  sets : int;
  tags : int array;  (* -1 = invalid *)
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(line_bytes = 64) ~size_bytes () =
  if line_bytes <= 0 || size_bytes < line_bytes then invalid_arg "Hw_cache.create";
  let sets = size_bytes / line_bytes in
  { line_bytes; sets; tags = Array.make sets (-1); accesses = 0; hits = 0; misses = 0 }

let sets t = t.sets
let line_bytes t = t.line_bytes

let access t ~phys_addr =
  let line = phys_addr / t.line_bytes in
  let set = line mod t.sets in
  t.accesses <- t.accesses + 1;
  if t.tags.(set) = line then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    t.tags.(set) <- line;
    false
  end

let touch_page t ~phys_addr ~page_bytes =
  let lines = page_bytes / t.line_bytes in
  for i = 0 to lines - 1 do
    ignore (access t ~phys_addr:(phys_addr + (i * t.line_bytes)))
  done

let accesses t = t.accesses
let hits t = t.hits
let misses t = t.misses

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total

let reset_stats t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0

let n_colors t ~page_bytes = max 1 (t.sets * t.line_bytes / page_bytes)

let color_of t ~phys_addr ~page_bytes =
  phys_addr / page_bytes mod n_colors t ~page_bytes
