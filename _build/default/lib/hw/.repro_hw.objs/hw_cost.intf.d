lib/hw/hw_cost.mli:
