lib/experiments/exp_ablations.mli:
