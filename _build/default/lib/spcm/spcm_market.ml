type config = {
  charge_rate : float;
  default_income : float;
  savings_tax_rate : float;
  savings_tax_threshold : float;
  io_charge : float;
  free_when_idle : bool;
}

let default_config =
  {
    charge_rate = 1.0;
    default_income = 10.0;
    savings_tax_rate = 0.01;
    savings_tax_threshold = 100.0;
    io_charge = 0.01;
    free_when_idle = true;
  }

type account_id = int

type account = {
  acc_id : account_id;
  acc_name : string;
  mutable income : float;
  mutable balance : float;
  mutable holding_pages : int;
  mutable last_settle_us : float;
  mutable total_charged : float;
  mutable total_taxed : float;
  mutable total_income : float;
  mutable io_ops : int;
}

type t = {
  cfg : config;
  page_size : int;
  table : (account_id, account) Hashtbl.t;
  mutable next_id : int;
  mutable demand : bool;
}

let create ?(config = default_config) ~page_size () =
  if page_size <= 0 then invalid_arg "Spcm_market.create: page_size must be positive";
  { cfg = config; page_size; table = Hashtbl.create 16; next_id = 1; demand = false }

let config t = t.cfg

let open_account ?income t ~name ~now_us =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.table id
    {
      acc_id = id;
      acc_name = name;
      income = Option.value income ~default:t.cfg.default_income;
      balance = 0.0;
      holding_pages = 0;
      last_settle_us = now_us;
      total_charged = 0.0;
      total_taxed = 0.0;
      total_income = 0.0;
      io_ops = 0;
    };
  id

let account t id =
  match Hashtbl.find_opt t.table id with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Spcm_market.account: no account %d" id)

let accounts t =
  Hashtbl.fold (fun _ a acc -> a :: acc) t.table []
  |> List.sort (fun a b -> compare a.acc_id b.acc_id)

let megabytes t pages = float_of_int (pages * t.page_size) /. (1024.0 *. 1024.0)

let holding_cost_per_second t ~pages = megabytes t pages *. t.cfg.charge_rate

let settle_account t a ~now_us =
  let dt = (now_us -. a.last_settle_us) /. 1_000_000.0 in
  if dt > 0.0 then begin
    a.last_settle_us <- now_us;
    let earned = a.income *. dt in
    a.balance <- a.balance +. earned;
    a.total_income <- a.total_income +. earned;
    if t.demand || not t.cfg.free_when_idle then begin
      let charge = holding_cost_per_second t ~pages:a.holding_pages *. dt in
      a.balance <- a.balance -. charge;
      a.total_charged <- a.total_charged +. charge
    end;
    let excess = a.balance -. t.cfg.savings_tax_threshold in
    if excess > 0.0 then begin
      let tax = excess *. t.cfg.savings_tax_rate *. dt in
      let tax = Float.min tax excess in
      a.balance <- a.balance -. tax;
      a.total_taxed <- a.total_taxed +. tax
    end
  end

let settle t ~now_us = Hashtbl.iter (fun _ a -> settle_account t a ~now_us) t.table

let set_demand t d = t.demand <- d

let note_holding_change t id ~delta_pages ~now_us =
  let a = account t id in
  settle_account t a ~now_us;
  let updated = a.holding_pages + delta_pages in
  if updated < 0 then invalid_arg "Spcm_market.note_holding_change: negative holdings";
  a.holding_pages <- updated

let note_io t id ~ops =
  let a = account t id in
  a.io_ops <- a.io_ops + ops;
  a.balance <- a.balance -. (float_of_int ops *. t.cfg.io_charge)

let can_afford t id ~pages ~seconds =
  let a = account t id in
  let cost = holding_cost_per_second t ~pages:(a.holding_pages + pages) *. seconds in
  let accrued = a.income *. seconds in
  a.balance +. accrued >= cost

let bankrupt t id = (account t id).balance < 0.0
