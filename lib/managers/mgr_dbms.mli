(** Application-specific segment manager for the database system of §3.3.

    Built on {!Mgr_generic} with in-process fault delivery (a DBMS wants
    the 107 µs path, not the 379 µs server path). It manages:

    - {e relations}: preloaded, pinned resident — the paper's 120 MB
      database fits memory in all configurations;
    - {e indices}: 1 MB segments that the DBMS may load from disk
      (page-by-page faults — the "index with paging" configuration),
      regenerate in memory from their relation ("index regeneration"), or
      evict wholesale when the SPCM shrinks the allocation. Index pages
      are clean (joins update the summary relation, not the indices), so
      eviction is a discard, exactly the Subramanian-style saving the
      paper cites.

    The manager knows which indices are resident and when each was last
    used — the knowledge "which pages are in memory" that the paper says
    a query optimiser should have. *)

type t

type index_id = int

val create :
  Epcm_kernel.t ->
  ?disk:Hw_disk.t ->
  ?name:string ->
  source:Mgr_generic.source ->
  pool_capacity:int ->
  unit ->
  t
(** [disk] defaults to the machine's disk; index loads read it. [name]
    (default ["dbms-manager"]) names the underlying generic manager —
    give each instance its own when several coexist (one per database
    shard). All per-manager state (indices, relation backing-file ids,
    the free-page pool) is per-instance; two instances on one kernel do
    not interfere. *)

val generic : t -> Mgr_generic.t
val manager_id : t -> Epcm_manager.id

val create_relation : t -> name:string -> pages:int -> Epcm_segment.id
(** Created, fully populated from the free pool, and pinned. *)

val create_index : t -> name:string -> pages:int -> ?resident:bool -> unit -> index_id
(** [resident] (default true) populates the index now. *)

val index_segment : t -> index_id -> Epcm_segment.id
val index_resident : t -> index_id -> bool
val resident_index_pages : t -> int

val touch_index : t -> index_id -> pages:int list -> unit
(** A transaction reads index pages (they must be resident — check with
    {!index_resident} and load/regenerate first; touching a non-resident
    index faults it in page by page from disk, which is exactly the
    paging-configuration behaviour, so callers may also do it on
    purpose). *)

val load_index_from_disk : t -> index_id -> unit
(** Fault in every page of the index through the normal fault path; each
    fill is a disk read. The "index with paging" page-in. *)

val regenerate_index : t -> index_id -> unit
(** Repopulate the index from pooled frames with locally generated data —
    no disk I/O. The caller is responsible for charging the regeneration
    {e compute} time (it is application work, not manager work). *)

val evict_index : t -> index_id -> unit
(** Drop all the index's frames back into the manager pool. Clean pages:
    no writeback. No-op if already out. *)

val evict_lru_index : t -> except:index_id option -> index_id option
(** Evict the least-recently-used resident index (other than [except]). *)

val note_index_use : t -> index_id -> now:float -> unit
val page_in_events : t -> int
val regenerations : t -> int
