module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags

type config = {
  compress_us : float;
  decompress_us : float;
  compression_ratio : float;
  budget_pages : float;
}

let default_config =
  { compress_us = 500.0; decompress_us = 300.0; compression_ratio = 0.4; budget_pages = 64.0 }

type entry = { e_data : Hw_page_data.t; e_seq : int }

type t = {
  kern : K.t;
  mutable mid : Mgr.id;
  pool : Mgr_free_pages.t;
  source : Mgr_generic.source;
  cfg : config;
  backing : Mgr_backing.t;  (* the disk level below the compressed cache *)
  store : (Seg.id * int, entry) Hashtbl.t;
  mutable seq : int;
  mutable compressions : int;
  mutable decompressions : int;
  mutable spills : int;
  mutable disk_fills : int;
}

let manager_id t = t.mid
let charge ?label t us = Hw_machine.charge ?label (K.machine t.kern) us

let pool_page_equivalents t =
  float_of_int (Hashtbl.length t.store) *. t.cfg.compression_ratio

let ensure_pool t n =
  if Mgr_free_pages.available t.pool < n then begin
    match Mgr_free_pages.grant_slot t.pool with
    | None -> ()
    | Some slot ->
        let got =
          t.source ~dst:(Mgr_free_pages.segment t.pool) ~dst_page:slot
            ~count:(max n (min 32 (Mgr_free_pages.room t.pool)))
        in
        Mgr_free_pages.note_granted t.pool got
  end;
  if Mgr_free_pages.available t.pool < n then
    raise (Mgr_generic.Out_of_frames "Mgr_compressed: no frames")

(* Spill the oldest compressed entries to disk until within budget. *)
let enforce_budget t =
  while pool_page_equivalents t > t.cfg.budget_pages do
    let oldest =
      Hashtbl.fold
        (fun key e best ->
          match best with
          | Some (_, be) when be.e_seq <= e.e_seq -> best
          | _ -> Some (key, e))
        t.store None
    in
    match oldest with
    | None -> ()
    | Some (((seg, page) as key), e) ->
        Hashtbl.remove t.store key;
        Mgr_backing.write_block t.backing ~file:(-seg) ~block:page e.e_data;
        t.spills <- t.spills + 1
  done

(* The compressed-store backend interface: stash compresses data in under
   (seg, page); fetch decompresses it back out (falling through to the
   spill area on disk); has reports whether either level holds the page.
   [on_fault] below and {!Mgr_tiered}'s coldest tier both sit on these. *)

let stash t ~seg ~page data =
  t.compressions <- t.compressions + 1;
  t.seq <- t.seq + 1;
  charge ~label:"mgr/compress" t t.cfg.compress_us;
  Hashtbl.replace t.store (seg, page) { e_data = data; e_seq = t.seq };
  enforce_budget t

let fetch t ~seg ~page =
  match Hashtbl.find_opt t.store (seg, page) with
  | Some e ->
      (* Decompression beats the disk by two orders of magnitude. *)
      t.decompressions <- t.decompressions + 1;
      charge ~label:"mgr/decompress" t t.cfg.decompress_us;
      Hashtbl.remove t.store (seg, page);
      Some e.e_data
  | None ->
      if Mgr_backing.has_block t.backing ~file:(-seg) ~block:page then begin
        t.disk_fills <- t.disk_fills + 1;
        Some (Mgr_backing.read_block t.backing ~file:(-seg) ~block:page)
      end
      else None

let has t ~seg ~page =
  Hashtbl.mem t.store (seg, page) || Mgr_backing.has_block t.backing ~file:(-seg) ~block:page

let on_fault t (fault : Mgr.fault) =
  let machine = K.machine t.kern in
  Hw_machine.charge ~label:"mgr/fault_logic" machine machine.Hw_machine.cost.Hw_cost.manager_fault_logic;
  match fault.Mgr.f_kind with
  | Mgr.Missing | Mgr.Cow_write ->
      ensure_pool t 1;
      (match fetch t ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page with
      | Some data -> Mgr_free_pages.set_next_data t.pool data
      | None -> ());
      let moved =
        Mgr_free_pages.take_to t.pool ~dst:fault.Mgr.f_seg ~dst_page:fault.Mgr.f_page ~count:1
          ~clear_flags:Flags.dirty ()
      in
      assert (moved = 1)
  | Mgr.Protection ->
      K.modify_page_flags t.kern ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~count:1
        ~clear_flags:(Flags.of_list [ Flags.no_access; Flags.read_only ])
        ()

let create kern ?disk ?(config = default_config) ~source ~pool_capacity () =
  let disk = Option.value disk ~default:(K.machine kern).Hw_machine.disk in
  let t =
    {
      kern;
      mid = -1;
      pool = Mgr_free_pages.create kern ~name:"compressed.free-pages" ~capacity:pool_capacity;
      source;
      cfg = config;
      backing = Mgr_backing.disk disk ~page_bytes:(Hw_machine.page_size (K.machine kern));
      store = Hashtbl.create 256;
      seq = 0;
      compressions = 0;
      decompressions = 0;
      spills = 0;
      disk_fills = 0;
    }
  in
  t.mid <-
    K.register_manager kern ~name:"compressed-manager" ~mode:`In_process
      ~on_fault:(fun f -> on_fault t f)
      ();
  t

let create_segment t ~name ~pages =
  let seg = K.create_segment t.kern ~name ~pages () in
  K.set_segment_manager t.kern seg t.mid;
  seg

let evict t ~seg ~page =
  let s = K.segment t.kern seg in
  match (Seg.page s page).Seg.frame with
  | None -> ()
  | Some frame ->
      let data = (Hw_phys_mem.frame (K.machine t.kern).Hw_machine.mem frame).Hw_phys_mem.data in
      stash t ~seg ~page data;
      (if Mgr_free_pages.room t.pool = 0 then
         ignore (Mgr_free_pages.release_to_initial t.pool ~count:16));
      Mgr_free_pages.put_from t.pool ~src:seg ~src_page:page

let resident t ~seg = Seg.resident_pages (K.segment t.kern seg)
let compressed_entries t = Hashtbl.length t.store
let compressions t = t.compressions
let decompressions t = t.decompressions
let spills t = t.spills
let disk_fills t = t.disk_fills
