lib/sim/sim_engine.mli:
