(** The default segment manager (paper §2.3): the UIO Cache Directory
    Server extended to manage the V++ virtual memory as a file page cache,
    making conventional programs oblivious to external page-cache
    management.

    It runs as a separate server process ([`Separate_process] fault
    delivery — the 379 µs path of Table 1), maintains a per-file cache
    directory, allocates file-append pages in 16 KB (4-page) units, and
    re-enables clock-sampling protections in batches of contiguous pages.
    Files stay cached after close, as UCDS does. *)

type t

val create :
  Epcm_kernel.t ->
  ?backing:Mgr_backing.t ->
  ?source:Mgr_generic.source ->
  ?pool_capacity:int ->
  ?counters:Sim_stats.Counters.t ->
  unit ->
  t
(** [backing] defaults to the zero-latency memory store (the Tables 2–3
    setup: files pre-cached, no disk in the measurement). [counters] is
    shared with the underlying generic manager and also receives
    "ucds.flush_page_failed" events. *)

val generic : t -> Mgr_generic.t
val manager_id : t -> Epcm_manager.id

val open_file :
  t -> file_id:int -> size_pages:int -> ?preload:bool -> ?empty:bool -> unit -> Epcm_segment.id
(** Add a file to the cache directory. [preload] (default false) loads
    every page now — used to warm the cache before a measured run.
    [empty] (default false) marks a newly created file: no valid backing
    data, so all writes are appends. Opening an already-open file returns
    the existing segment (cache hit, no new manager activity). *)

val close_file : t -> Epcm_segment.id -> unit
(** The kernel forwards file close to the manager; the file {e stays
    cached} (UCDS writes dirty data back lazily — use {!flush_file} to
    force it). Counts as a manager call: the paper's Table 3 counts
    closes among manager invocations. *)

val flush_file : t -> Epcm_segment.id -> unit
(** Write every dirty page of the file back to backing store and clean the
    flags. A page whose write exhausts the backing retry budget keeps its
    dirty flag — the next flush retries it — and is counted in
    {!flush_failures}. *)

val admin_call : ?requests:int -> t -> unit
(** Other kernel-forwarded requests (open of a new file, fstat, unlink):
    each costs an IPC round trip to the manager server and counts as a
    manager call. *)

val evict_file : t -> Epcm_segment.id -> unit
(** Actually drop a file from the cache (frames back to the pool). *)

val create_heap : t -> name:string -> pages:int -> Epcm_segment.id
(** Anonymous segment (program data/stack) managed by this server. First
    touches take the minimal fault — no zero-fill, per the paper. *)

val file_segment : t -> file_id:int -> Epcm_segment.id option

val sample_working_sets : t -> unit
(** Start a clock-sampling interval: protect all resident unpinned pages
    of managed segments so subsequent touches reveal the working set. *)

val total_manager_calls : t -> int
(** Fault deliveries + close notifications + admin requests — the Table 3
    "Manager Calls" column. *)

val closes : t -> int
val admin_calls : t -> int

val flush_failures : t -> int
(** Dirty pages {!flush_file} could not write out (left dirty). *)
