module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags

type t = {
  kern : K.t;
  mutable mid : Mgr.id;
  pool : Mgr_free_pages.t;
  source : Mgr_generic.source;
  backing : Mgr_backing.t;
  garbage : (Seg.id * int, unit) Hashtbl.t;
  mutable discards : int;
  mutable avoided_writebacks : int;
}

let manager_id t = t.mid

let ensure_pool t n =
  if Mgr_free_pages.available t.pool < n then begin
    match Mgr_free_pages.grant_slot t.pool with
    | None -> ()
    | Some slot ->
        let got =
          t.source ~dst:(Mgr_free_pages.segment t.pool) ~dst_page:slot
            ~count:(max n (min 32 (Mgr_free_pages.room t.pool)))
        in
        Mgr_free_pages.note_granted t.pool got
  end;
  if Mgr_free_pages.available t.pool < n then
    raise (Mgr_generic.Out_of_frames "Mgr_gc: no frames")

let on_fault t (fault : Mgr.fault) =
  let machine = K.machine t.kern in
  Hw_machine.charge ~label:"mgr/fault_logic" machine machine.Hw_machine.cost.Hw_cost.manager_fault_logic;
  match fault.Mgr.f_kind with
  | Mgr.Missing | Mgr.Cow_write ->
      let key = (fault.Mgr.f_seg, fault.Mgr.f_page) in
      ensure_pool t 1;
      (* A page that was evicted conventionally comes back from swap;
         garbage pages never do (the collector reallocates them fresh —
         and, within one protection domain, without zero-fill). *)
      if
        (not (Hashtbl.mem t.garbage key))
        && Mgr_backing.has_block t.backing ~file:(-fault.Mgr.f_seg) ~block:fault.Mgr.f_page
      then
        Mgr_free_pages.set_next_data t.pool
          (Mgr_backing.read_block t.backing ~file:(-fault.Mgr.f_seg) ~block:fault.Mgr.f_page);
      Hashtbl.remove t.garbage key;
      let moved =
        Mgr_free_pages.take_to t.pool ~dst:fault.Mgr.f_seg ~dst_page:fault.Mgr.f_page ~count:1
          ~clear_flags:Flags.dirty ()
      in
      assert (moved = 1)
  | Mgr.Protection ->
      K.modify_page_flags t.kern ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~count:1
        ~clear_flags:(Flags.of_list [ Flags.no_access; Flags.read_only ])
        ()

let create kern ?disk ~source ~pool_capacity () =
  let disk = Option.value disk ~default:(K.machine kern).Hw_machine.disk in
  let t =
    {
      kern;
      mid = -1;
      pool = Mgr_free_pages.create kern ~name:"gc.free-pages" ~capacity:pool_capacity;
      source;
      backing = Mgr_backing.disk disk ~page_bytes:(Hw_machine.page_size (K.machine kern));
      garbage = Hashtbl.create 256;
      discards = 0;
      avoided_writebacks = 0;
    }
  in
  t.mid <-
    K.register_manager kern ~name:"gc-manager" ~mode:`In_process
      ~on_fault:(fun f -> on_fault t f)
      ();
  t

let create_heap t ~name ~pages =
  let seg = K.create_segment t.kern ~name ~pages () in
  K.set_segment_manager t.kern seg t.mid;
  seg

let declare_garbage t ~seg ~page ~count =
  for p = page to page + count - 1 do
    Hashtbl.replace t.garbage (seg, p) ()
  done

let room_or_release t =
  if Mgr_free_pages.room t.pool = 0 then
    ignore (Mgr_free_pages.release_to_initial t.pool ~count:16)

let reclaim_garbage t ~seg =
  let s = K.segment t.kern seg in
  let reclaimed = ref 0 in
  for page = 0 to Seg.length s - 1 do
    if Hashtbl.mem t.garbage (seg, page) then begin
      let slot = Seg.page s page in
      match slot.Seg.frame with
      | None -> ()
      | Some _ ->
          let was_dirty = Flags.mem slot.Seg.flags Flags.dirty in
          room_or_release t;
          Mgr_free_pages.put_from t.pool ~src:seg ~src_page:page;
          t.discards <- t.discards + 1;
          if was_dirty then t.avoided_writebacks <- t.avoided_writebacks + 1;
          incr reclaimed
    end
  done;
  !reclaimed

let evict_conventional t ~seg ~page ~count =
  let s = K.segment t.kern seg in
  let reclaimed = ref 0 in
  for p = page to page + count - 1 do
    if Seg.in_range s p then begin
      let slot = Seg.page s p in
      match slot.Seg.frame with
      | None -> ()
      | Some frame ->
          (if Flags.mem slot.Seg.flags Flags.dirty then
             let data =
               (Hw_phys_mem.frame (K.machine t.kern).Hw_machine.mem frame).Hw_phys_mem.data
             in
             Mgr_backing.write_block t.backing ~file:(-seg) ~block:p data);
          room_or_release t;
          Mgr_free_pages.put_from t.pool ~src:seg ~src_page:p;
          incr reclaimed
    end
  done;
  !reclaimed

let should_collect (_ : t) ~live_pages ~budget_pages =
  float_of_int live_pages >= 0.75 *. float_of_int budget_pages

let garbage_discards t = t.discards
let writebacks_avoided t = t.avoided_writebacks
