lib/experiments/exp_substrate.ml: Exp_report List Printf Wl_apps Wl_run Wl_trace
