examples/numa_placement.ml: Array Epcm_kernel Epcm_segment Hw_machine Printf Sim_engine Spcm
