(** The System Page Cache Manager (paper §2.4): a process-level module that
    allocates the global memory pool among segment managers.

    Managers request page frames; the SPCM grants, defers or refuses based
    on availability and the dram market. Requests may be constrained by
    cache color or physical address range (for page coloring and placement
    control); when a constrained request cannot be fully satisfied it is
    treated like an oversized conventional request — the SPCM grants as
    many frames as it can. When the pool runs short, the SPCM claws frames
    back from other clients through their pressure callbacks, and it can
    force memory out of bankrupt accounts.

    {b Admission control at scale (ROADMAP item 1).} Two request
    interfaces coexist:

    - {!request} decides immediately: grant (reclaiming from other clients
      if needed), defer (caller retries), or refuse. Unchanged from the
      original design.
    - {!acquire} queues: a shortage parks the caller on an O(log n)
      admission heap ({!Spcm_admit}) keyed by (client priority, settled
      balance) with deterministic FIFO tie-breaking, and blocks its
      process until returning frames are pumped to it in priority order
      (or it is refused). Grants through the queue are all-or-nothing for
      unconstrained requests, so blocked waiters never sit on partial
      holdings and deadlock the pool.

    Per-request market work is O(1): only the requesting account is
    settled ({!Spcm_market.settle_lazy}); the O(accounts) full scan runs
    only from the explicit {!settle} (reports, audits). *)

type constraint_ =
  | Unconstrained
  | Color of int
  | Phys_range of { lo_addr : int; hi_addr : int }
  | Tier of int  (** Frames from one memory tier ({!Hw_phys_mem.tier}). *)

type decision =
  | Granted of int  (** Frames migrated into the requested destination. *)
  | Deferred  (** Nothing available now; retry after others release. *)
  | Refused  (** The client's dram balance cannot carry the allocation. *)

type client_id = int

type client_stats = {
  cs_requests : int;
  cs_granted_frames : int;
  cs_deferred : int;
  cs_refused : int;
  cs_holding : int;
}

type t

val create : Epcm_kernel.t -> ?market:Spcm_market.config -> ?affordability_horizon:float -> unit -> t
(** [affordability_horizon] (seconds, default 10) is how long a client must
    be able to pay for a grant before it is approved. *)

val kernel : t -> Epcm_kernel.t
val market : t -> Spcm_market.t

val register_client :
  ?income:float ->
  ?priority:float ->
  ?manager:Epcm_manager.id ->
  t ->
  name:string ->
  unit ->
  client_id
(** [manager] is the client's segment manager, used for pressure callbacks
    when the SPCM must reclaim. [priority] (default 0) is the first
    component of the admission key used by {!acquire}. *)

val set_client_manager : t -> client_id -> Epcm_manager.id -> unit
(** Attach a manager after registration — needed when the manager's frame
    source is built from the client id ({!source_for}). *)

val request :
  t ->
  client:client_id ->
  dst:Epcm_segment.id ->
  dst_page:int ->
  count:int ->
  ?constraint_:constraint_ ->
  unit ->
  decision
(** Grant up to [count] frames, migrating them into [dst] at
    [dst_page ..]. Partial grants return [Granted n] with [n < count]. *)

val acquire :
  t ->
  client:client_id ->
  dst:Epcm_segment.id ->
  dst_page:int ->
  count:int ->
  ?constraint_:constraint_ ->
  unit ->
  int
(** Like {!request}, but a shortage defers the caller on the admission
    queue instead of returning [Deferred]: the calling process blocks
    until frames returned by other clients are granted to it in priority
    order, or it is refused ({!refuse_pending}, or a balance that can no
    longer afford the grant when its turn comes). Returns the number of
    frames granted — [count] on success, [0] on refusal (partial only for
    constrained requests drained early). Must be called from inside a
    simulation process. *)

val pending_acquires : t -> int
(** Waiters parked on the admission queue. *)

val defer_events : t -> int
(** Total number of times a request or acquire was deferred. *)

val refuse_pending : t -> int
(** Wake every queued waiter with a refusal (end-of-run drain so no
    process is left blocked). Returns the number refused. *)

val sweep : t -> int
(** Periodic market enforcement: force bankrupt holdings back, and if
    waiters are queued and the pool cannot serve the head, reclaim the
    shortfall from other clients; then pump the queue. Returns frames
    recovered. O(clients) — call it from a low-frequency sweeper, not per
    request. *)

val source_for : t -> client_id -> Mgr_generic.source
(** Adapter: a {!Mgr_generic.source} that issues unconstrained requests on
    behalf of the client (granted-or-zero; defers/refusals read as 0). *)

val free_frames : t -> int
(** Frames currently in the kernel's initial segment. *)

val return_pages : t -> client:client_id -> seg:Epcm_segment.id -> page:int -> count:int -> unit
(** A client gives frames back ([release_frames] + market bookkeeping).
    Freed frames are immediately pumped to queued waiters in priority
    order. *)

val note_returned : t -> client:client_id -> count:int -> unit
(** Market bookkeeping for frames a client's manager released to the
    initial segment directly (e.g. {!Mgr_generic.swap_out} at the end of a
    batch time slice): decrement holdings without moving frames. Pumps the
    admission queue like {!return_pages}. *)

val reclaim_from_clients : t -> need:int -> exempt:client_id option -> int
(** Ask other clients' managers to surrender frames (the managers choose
    which pages — paper §4). Returns frames recovered. *)

val force_bankrupt_returns : t -> int
(** Treat bankrupt accounts as faulty: demand their entire holdings. *)

val settle : t -> unit
(** Run full-scan market settlement at the machine's current time
    (O(accounts); reports and audits only). *)

val client_stats : t -> client_id -> client_stats
val account_of : t -> client_id -> Spcm_market.account
val pending_demand : t -> bool
