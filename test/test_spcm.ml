(* Tests for the System Page Cache Manager and the dram memory market. *)

module K = Epcm_kernel
module Seg = Epcm_segment
module M = Spcm_market

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

let sec s = s *. 1_000_000.0

(* ------------------------------------------------------------------ *)
(* Market                                                             *)
(* ------------------------------------------------------------------ *)

let market ?config () = M.create ?config ~page_size:4096 ()

let test_market_income_accrues () =
  let m = market () in
  let a = M.open_account m ~name:"a" ~income:10.0 ~now_us:0.0 in
  M.settle m ~now_us:(sec 5.0);
  check_float "5s of income" 50.0 (M.account m a).M.balance

let test_market_holding_charge () =
  (* 256 pages = 1 MB at rate D=1: one dram per second, against income
     10/s. *)
  let m = market () in
  let a = M.open_account m ~name:"a" ~income:10.0 ~now_us:0.0 in
  M.set_demand m true;
  M.note_holding_change m a ~delta_pages:256 ~now_us:0.0;
  M.settle m ~now_us:(sec 10.0);
  let acc = M.account m a in
  check_float "income - M*D*T" (100.0 -. 10.0) acc.M.balance;
  check_float "charged total" 10.0 acc.M.total_charged

let test_market_free_when_idle () =
  let m = market () in
  let a = M.open_account m ~name:"a" ~income:0.0 ~now_us:0.0 in
  M.note_holding_change m a ~delta_pages:256 ~now_us:0.0;
  M.set_demand m false;
  M.settle m ~now_us:(sec 10.0);
  check_float "no charge while idle" 0.0 (M.account m a).M.balance

let test_market_savings_tax () =
  let cfg = { M.default_config with savings_tax_rate = 0.1; savings_tax_threshold = 10.0 } in
  let m = market ~config:cfg () in
  let a = M.open_account m ~name:"hoarder" ~income:100.0 ~now_us:0.0 in
  M.settle m ~now_us:(sec 1.0);
  (* Earned 100; excess over 10 gets taxed at 10%/s for the interval. *)
  let acc = M.account m a in
  check_bool "taxed" true (acc.M.total_taxed > 0.0);
  check_bool "balance below gross income" true (acc.M.balance < 100.0)

let test_market_io_charge () =
  let m = market () in
  let a = M.open_account m ~name:"scanner" ~income:0.0 ~now_us:0.0 in
  M.note_io m a ~ops:100;
  check_float "paid for I/O" (-.100.0 *. M.default_config.M.io_charge) (M.account m a).M.balance;
  check_int "ops recorded" 100 (M.account m a).M.io_ops

let test_market_can_afford_and_bankrupt () =
  let m = market () in
  let a = M.open_account m ~name:"a" ~income:1.0 ~now_us:0.0 in
  (* 2560 pages = 10MB at D=1 costs 10/s; income 1/s: not affordable. *)
  check_bool "cannot afford" false (M.can_afford m a ~pages:2560 ~seconds:10.0);
  check_bool "can afford small" true (M.can_afford m a ~pages:128 ~seconds:1.0);
  check_bool "not bankrupt" false (M.bankrupt m a);
  M.note_io m a ~ops:1000;
  check_bool "bankrupt after splurge" true (M.bankrupt m a)

let test_market_holdings_never_negative () =
  let m = market () in
  let a = M.open_account m ~name:"a" ~now_us:0.0 in
  Alcotest.check_raises "negative holdings rejected"
    (Invalid_argument "Spcm_market.note_holding_change: negative holdings") (fun () ->
      M.note_holding_change m a ~delta_pages:(-1) ~now_us:0.0)

(* ------------------------------------------------------------------ *)
(* SPCM allocation                                                    *)
(* ------------------------------------------------------------------ *)

let spcm_setup ?(frames = 64) () =
  let machine = Hw_machine.create ~memory_bytes:(frames * 4096) () in
  let kernel = K.create machine in
  let spcm = Spcm.create kernel () in
  (machine, kernel, spcm)

let test_spcm_grant () =
  let _, kernel, spcm = spcm_setup () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"app" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:16 () in
  (match Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:8 () with
  | Spcm.Granted 8 -> ()
  | _ -> Alcotest.fail "expected full grant");
  check_int "resident" 8 (Seg.resident_pages (K.segment kernel seg));
  check_int "holding tracked" 8 (Spcm.client_stats spcm c).Spcm.cs_holding;
  check_int "market holdings" 8 (Spcm.account_of spcm c).M.holding_pages

let test_spcm_partial_grant () =
  let _, kernel, spcm = spcm_setup ~frames:16 () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"big" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:64 () in
  match Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:64 () with
  | Spcm.Granted n ->
      check_bool "partial" true (n < 64 && n > 0);
      check_int "granted all there was" 16 n
  | _ -> Alcotest.fail "expected partial grant"

let test_spcm_refused_when_broke () =
  let _, kernel, spcm = spcm_setup () in
  (* Income too low to pay for 32 pages over the 10s horizon. *)
  let c = Spcm.register_client ~income:0.0001 spcm ~name:"poor" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:64 () in
  match Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:32 () with
  | Spcm.Refused -> ()
  | _ -> Alcotest.fail "expected refusal"

let test_spcm_return_pages () =
  let _, kernel, spcm = spcm_setup () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"app" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:16 () in
  ignore (Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:8 ());
  let free_before = Spcm.free_frames spcm in
  Spcm.return_pages spcm ~client:c ~seg ~page:0 ~count:8;
  check_int "frames back" (free_before + 8) (Spcm.free_frames spcm);
  check_int "holding zero" 0 (Spcm.client_stats spcm c).Spcm.cs_holding

let test_spcm_color_constraint () =
  let machine, kernel, spcm = spcm_setup () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"colored" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:8 () in
  (match
     Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:3 ~constraint_:(Spcm.Color 5) ()
   with
  | Spcm.Granted 3 -> ()
  | _ -> Alcotest.fail "expected colored grant");
  let attrs = K.get_page_attributes kernel ~seg ~page:0 ~count:3 in
  Array.iter
    (fun a ->
      let f = Option.get a.K.pa_frame in
      check_int "right color" 5 (Hw_phys_mem.frame machine.Hw_machine.mem f).Hw_phys_mem.color)
    attrs

let test_spcm_phys_range_constraint () =
  let _, kernel, spcm = spcm_setup () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"placed" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:8 () in
  let lo = 16 * 4096 and hi = 24 * 4096 in
  (match
     Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:4
       ~constraint_:(Spcm.Phys_range { lo_addr = lo; hi_addr = hi })
       ()
   with
  | Spcm.Granted 4 -> ()
  | _ -> Alcotest.fail "expected range grant");
  let attrs = K.get_page_attributes kernel ~seg ~page:0 ~count:4 in
  Array.iter
    (fun a ->
      let addr = Option.get a.K.pa_phys_addr in
      check_bool "in range" true (addr >= lo && addr < hi))
    attrs

let test_spcm_constrained_exhaustion_gives_partial () =
  (* Only 2 frames of color 7 exist in a 32-frame machine with 16 colors. *)
  let _, kernel, spcm = spcm_setup ~frames:32 () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"colored" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:8 () in
  match
    Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:5 ~constraint_:(Spcm.Color 7) ()
  with
  | Spcm.Granted 2 -> ()
  | Spcm.Granted n -> Alcotest.failf "expected 2, got %d" n
  | _ -> Alcotest.fail "expected partial colored grant"

let test_spcm_reclaims_from_other_clients () =
  let _, kernel, spcm = spcm_setup ~frames:32 () in
  (* Client A holds everything through a manager that returns on
     pressure. *)
  let seg_a = K.create_segment kernel ~name:"a-data" ~pages:32 () in
  let returned = ref 0 in
  let mid =
    K.register_manager kernel ~name:"a-mgr" ~mode:`In_process
      ~on_fault:(fun _ -> ())
      ~on_pressure:(fun ~pages ->
        let give = min pages (Seg.resident_pages (K.segment kernel seg_a)) in
        K.release_frames kernel ~seg:seg_a ~page:0 ~count:32 |> ignore;
        returned := give;
        give)
      ()
  in
  let a = Spcm.register_client ~income:1000.0 ~manager:mid spcm ~name:"hog" () in
  ignore (Spcm.request spcm ~client:a ~dst:seg_a ~dst_page:0 ~count:32 ());
  check_int "hog took everything" 0 (Spcm.free_frames spcm);
  (* Client B's request forces reclamation. *)
  let b = Spcm.register_client ~income:1000.0 spcm ~name:"newcomer" () in
  let seg_b = K.create_segment kernel ~name:"b-data" ~pages:8 () in
  (match Spcm.request spcm ~client:b ~dst:seg_b ~dst_page:0 ~count:8 () with
  | Spcm.Granted n -> check_bool "granted after reclaim" true (n > 0)
  | _ -> Alcotest.fail "expected grant after reclaim");
  check_bool "pressure callback ran" true (!returned > 0)

let test_spcm_source_adapter () =
  let _, kernel, spcm = spcm_setup () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"app" () in
  let source = Spcm.source_for spcm c in
  let seg = K.create_segment kernel ~name:"data" ~pages:8 () in
  check_int "adapter grants" 4 (source ~dst:seg ~dst_page:0 ~count:4)

let test_spcm_note_returned () =
  let _, kernel, spcm = spcm_setup () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"batch" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:16 () in
  ignore (Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:8 ());
  (* The client's manager releases directly to the initial segment (as
     swap_out does), then reconciles the account. *)
  K.release_frames kernel ~seg ~page:0 ~count:8;
  Spcm.note_returned spcm ~client:c ~count:8;
  check_int "holdings reconciled" 0 (Spcm.client_stats spcm c).Spcm.cs_holding;
  check_int "market agrees" 0 (Spcm.account_of spcm c).M.holding_pages

let test_spcm_frame_conservation () =
  let _, kernel, spcm = spcm_setup ~frames:32 () in
  let c = Spcm.register_client ~income:1000.0 spcm ~name:"app" () in
  let seg = K.create_segment kernel ~name:"data" ~pages:16 () in
  ignore (Spcm.request spcm ~client:c ~dst:seg ~dst_page:0 ~count:10 ());
  Spcm.return_pages spcm ~client:c ~seg ~page:0 ~count:5;
  let total = K.frame_owner_total kernel in
  check_int "every frame owned exactly once" 32 total

let () =
  Alcotest.run "spcm"
    [
      ( "market",
        [
          Alcotest.test_case "income accrues" `Quick test_market_income_accrues;
          Alcotest.test_case "holding charge M*D*T" `Quick test_market_holding_charge;
          Alcotest.test_case "free when idle" `Quick test_market_free_when_idle;
          Alcotest.test_case "savings tax" `Quick test_market_savings_tax;
          Alcotest.test_case "io charge" `Quick test_market_io_charge;
          Alcotest.test_case "afford/bankrupt" `Quick test_market_can_afford_and_bankrupt;
          Alcotest.test_case "holdings nonnegative" `Quick test_market_holdings_never_negative;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "grant" `Quick test_spcm_grant;
          Alcotest.test_case "partial grant" `Quick test_spcm_partial_grant;
          Alcotest.test_case "refused when broke" `Quick test_spcm_refused_when_broke;
          Alcotest.test_case "return pages" `Quick test_spcm_return_pages;
          Alcotest.test_case "color constraint" `Quick test_spcm_color_constraint;
          Alcotest.test_case "phys range constraint" `Quick test_spcm_phys_range_constraint;
          Alcotest.test_case "constrained exhaustion partial" `Quick
            test_spcm_constrained_exhaustion_gives_partial;
          Alcotest.test_case "reclaims from clients" `Quick test_spcm_reclaims_from_other_clients;
          Alcotest.test_case "source adapter" `Quick test_spcm_source_adapter;
          Alcotest.test_case "note returned" `Quick test_spcm_note_returned;
          Alcotest.test_case "frame conservation" `Quick test_spcm_frame_conservation;
        ] );
    ]
