module K = Epcm_kernel
module Seg = Epcm_segment

type result = {
  figure1 : string;
  figure2_remote : string list;
  figure2_local : string list;
  checks : Exp_report.check list;
}

let init_source kernel =
  let init = K.initial_segment kernel in
  let next = ref 0 in
  fun ~dst ~dst_page ~count ->
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted

let figure1 () =
  (* Rebuild Figure 1: a virtual address space segment with code, data and
     stack segments bound in (data copy-on-write from a template, as for a
     forked process image). *)
  let machine = Hw_machine.create () in
  let kernel = K.create machine in
  let code = K.create_segment kernel ~name:"Code Segment" ~pages:16 () in
  let data = K.create_segment kernel ~name:"Data Segment" ~pages:32 () in
  let stack = K.create_segment kernel ~name:"Stack Segment" ~pages:8 () in
  let space = K.create_segment kernel ~name:"Virtual Address Space Segment" ~pages:256 () in
  K.bind_region kernel ~space ~at:0 ~len:16 ~target:code ~target_page:0 ~cow:false;
  K.bind_region kernel ~space ~at:64 ~len:32 ~target:data ~target_page:0 ~cow:true;
  K.bind_region kernel ~space ~at:248 ~len:8 ~target:stack ~target_page:0 ~cow:false;
  K.render_address_space kernel space

let figure2 ~local () =
  let machine = Hw_machine.create ~trace:true () in
  let kernel = K.create machine in
  let backing = Mgr_backing.memory () in
  let source = init_source kernel in
  let gen = Mgr_generic.create kernel ~name:"fig2-mgr" ~mode:`In_process ~backing ~source () in
  let seg =
    if local then Mgr_generic.create_segment gen ~name:"heap" ~pages:8 ~kind:Mgr_generic.Anon ()
    else
      Mgr_generic.create_segment gen ~name:"file" ~pages:8
        ~kind:(Mgr_generic.File { file_id = 42 }) ~high_water:8 ()
  in
  Mgr_generic.ensure_pool gen ~count:4;
  Sim_trace.clear machine.Hw_machine.trace;
  K.touch kernel ~space:seg ~page:0 ~access:Epcm_manager.Read;
  Sim_trace.tags machine.Hw_machine.trace

let run () =
  let fig1 = figure1 () in
  let remote = figure2 ~local:false () in
  let local = figure2 ~local:true () in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
    scan 0
  in
  let checks =
    [
      Exp_report.check ~what:"figure 1: code, data and stack regions bound into the space"
        ~pass:
          (contains fig1 "Code Segment" && contains fig1 "Data Segment"
          && contains fig1 "Stack Segment")
        ~detail:"";
      Exp_report.check ~what:"figure 1: the data region is copy-on-write"
        ~pass:(contains fig1 "--cow-->") ~detail:"";
      Exp_report.check ~what:"figure 2: remote fill follows steps 1,2,3,4,5"
        ~pass:
          (remote
          = [
              "step1.fault_to_manager"; "step2.request_data"; "step3.data_reply"; "step4.migrate";
              "step5.resume";
            ])
        ~detail:(String.concat " -> " remote);
      Exp_report.check ~what:"figure 2: local data collapses steps 2-3 into a local fill"
        ~pass:
          (local
          = [ "step1.fault_to_manager"; "step2-3.local_fill"; "step4.migrate"; "step5.resume" ])
        ~detail:(String.concat " -> " local);
    ]
  in
  { figure1 = fig1; figure2_remote = remote; figure2_local = local; checks }

let render r =
  "Figure 1: Kernel Implementation of a Virtual Address Space\n" ^ r.figure1
  ^ "\nFigure 2: Page Fault Handling with External Page-Cache Management\n"
  ^ "  remote fill: " ^ String.concat " -> " r.figure2_remote ^ "\n"
  ^ "  local fill:  " ^ String.concat " -> " r.figure2_local ^ "\n" ^ "\nShape checks:\n"
  ^ Exp_report.render_checks r.checks
