(** Deterministic fault injection for simulated devices.

    A chaos plan compiles a fault {e specification} (per-site error
    probabilities, scheduled outage windows, permanent bad blocks, latency
    bursts) against an explicit {!Sim_rng} seed. Devices consult the plan
    once per operation with {!decide}; every verdict is drawn from a
    per-site RNG stream and recorded in an append-only {e schedule}, so a
    simulation driven by the same seed replays the identical fault
    sequence — determinism is load-bearing for every experiment in this
    repository.

    A disabled plan ({!none}) answers {!Verdict.Pass} without drawing from
    any stream or recording anything, so attaching one to a device is
    observationally free: the Table 1–4 reproductions are byte-identical
    with or without it. *)

(** Which device operation is asking. Sites draw from independent RNG
    streams (split from the plan seed), so adding writes to a workload
    does not perturb the verdicts its reads receive. *)
type site = Disk_read | Disk_write

type spec = {
  read_error_p : float;  (** Probability a read fails transiently. *)
  write_error_p : float;  (** Probability a write fails transiently. *)
  delay_p : float;  (** Probability of a latency burst on any op. *)
  delay_min_us : float;
  delay_max_us : float;  (** Burst magnitude, uniform in [min, max). *)
  outages : (float * float) list;
      (** Absolute simulated-time windows [start, stop) during which every
          operation fails transiently (the device is unreachable; retries
          after the window succeed). *)
  bad_blocks : int list;
      (** Permanently unreadable/unwritable block numbers. Operations that
          do not name a block never match. *)
}

val default_spec : spec
(** All probabilities zero, no outages, no bad blocks. Build a spec with
    [{ default_spec with read_error_p = 0.05 }]. *)

(** The outcome of one injection decision. *)
module Verdict : sig
  type t =
    | Pass  (** Proceed normally. *)
    | Delay of float  (** Proceed after an extra delay (µs). *)
    | Transient_failure  (** Fail this attempt; a retry may succeed. *)
    | Permanent_failure  (** Bad block: every attempt fails. *)

  val equal : t -> t -> bool
  val to_string : t -> string
end

type event = {
  ev_index : int;  (** 0-based position in the schedule. *)
  ev_time : float;  (** Simulated time of the decision. *)
  ev_site : site;
  ev_block : int option;
  ev_verdict : Verdict.t;
}

type t

val create : seed:int64 -> spec -> t
(** Compile a plan. Equal seeds and specs give equal verdict streams. *)

val none : unit -> t
(** The disabled plan: never injects, never draws, never records. *)

val enabled : t -> bool
val spec : t -> spec

val decide : t -> site -> now:float -> block:int option -> Verdict.t
(** One injection decision. Draws a fixed number of variates per call so
    the stream stays aligned across config changes; records the verdict
    in the schedule. *)

val decisions : t -> int
(** Number of decisions made so far. *)

val schedule : t -> event list
(** Every decision made so far, oldest first — compare two runs of the
    same seed for replay equality. *)

val schedule_fingerprint : t -> string
(** Compact rendering of the schedule ("r17:fail w3:+250us ..."), one
    token per non-[Pass] verdict, for cheap equality assertions. *)

val injected_failures : t -> int
(** Transient + permanent failures injected so far. *)

val injected_delays : t -> int

val site_to_string : site -> string
val pp_event : Format.formatter -> event -> unit
