type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (int64 t)

let float t =
  (* Top 53 bits scaled into [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Sim_rng.int: bound must be positive";
  (* Rejection-free for simulation purposes: modulo bias is negligible for
     bounds far below 2^63 and determinism matters more than exactness. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  v mod bound

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = float t < p

let exponential t ~mean =
  let u = float t in
  -.mean *. log1p (-.u)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Sim_rng.choice: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
