type lsn = int

exception Flush_failed of { lsn : lsn; attempts : int }

type t = {
  disk : Hw_disk.t;
  record_bytes : int;
  retry : Mgr_backing.retry;
  counters : Sim_stats.Counters.t option;
  mutable next_lsn : lsn;
  mutable flushed : lsn;
  mutable flushes : int;
  mutable flush_retries : int;
  mutable flush_failures : int;
  mutable violations : int;
  page_lsns : (Epcm_segment.id * int, lsn) Hashtbl.t;
}

let create disk ?(record_bytes = 256) ?(retry = Mgr_backing.default_retry) ?counters () =
  {
    disk;
    record_bytes;
    retry;
    counters;
    next_lsn = 0;
    flushed = 0;
    flushes = 0;
    flush_retries = 0;
    flush_failures = 0;
    violations = 0;
    page_lsns = Hashtbl.create 256;
  }

let bump t name = Option.iter (fun c -> Sim_stats.Counters.incr c ("wal." ^ name)) t.counters

let backoff_wait us =
  if us > 0.0 then try Sim_engine.delay us with Sim_engine.Not_in_process -> ()

let append t =
  t.next_lsn <- t.next_lsn + 1;
  t.next_lsn

let note_page_write t ~seg ~page ~lsn = Hashtbl.replace t.page_lsns (seg, page) lsn
let page_lsn t ~seg ~page = Hashtbl.find_opt t.page_lsns (seg, page)

(* Flush latency (group commit: transfer plus any retry backoffs) lands in
   the disk's metrics sink under kind "wal.flush". *)
let observing t =
  match Hw_disk.metrics t.disk with
  | Some m when Sim_metrics.enabled m -> (
      match Sim_engine.time () with
      | t0 -> Some (m, t0)
      | exception Sim_engine.Not_in_process -> None)
  | _ -> None

let flush_to t ~lsn =
  if lsn > t.flushed then begin
    let obs = observing t in
    Fun.protect
      ~finally:(fun () ->
        match obs with
        | None -> ()
        | Some (m, t0) -> Sim_metrics.observe m ~kind:"wal.flush" (Sim_engine.time () -. t0))
    @@ fun () ->
    let target = min lsn t.next_lsn in
    let pending = target - t.flushed in
    (* Group commit: every pending record rides one transfer. [flushed]
       advances only after the transfer succeeds, so a torn (failed) write
       leaves the durable prefix exactly where it was — recovery replays
       from there and commit never acknowledges lost records. *)
    let bytes = max t.record_bytes (pending * t.record_bytes) in
    let max_attempts = max 1 t.retry.attempts in
    let rec go n backoff =
      try Hw_disk.write t.disk ~bytes
      with Hw_disk.Io_error _ ->
        if n >= max_attempts then begin
          t.flush_failures <- t.flush_failures + 1;
          bump t "flush_failed";
          raise (Flush_failed { lsn = target; attempts = n })
        end
        else begin
          t.flush_retries <- t.flush_retries + 1;
          bump t "flush_retries";
          backoff_wait backoff;
          go (n + 1) (backoff *. 2.0)
        end
    in
    go 1 t.retry.backoff_us;
    t.flushed <- target;
    t.flushes <- t.flushes + 1
  end

let commit t ~lsn = flush_to t ~lsn

let flushed t = t.flushed
let appended t = t.next_lsn
let flushes t = t.flushes
let flush_retries t = t.flush_retries
let flush_failures t = t.flush_failures
let wal_violations t = t.violations

let note_data_writeback t ~seg ~page =
  match page_lsn t ~seg ~page with
  | Some lsn when lsn > t.flushed -> t.violations <- t.violations + 1
  | Some _ | None -> ()

let eviction_hook t ~inner ~seg ~page ~dirty =
  match inner ~seg ~page ~dirty with
  | `Discard -> `Discard
  | `Writeback ->
      (match page_lsn t ~seg ~page with
      | Some lsn when lsn > t.flushed -> (
          (* The WAL rule: log first, data after. If the log cannot be
             forced out, the data page must not reach disk either — veto
             the eviction in the manager's vocabulary so it skips the
             page (stays resident + dirty) instead of losing the rule. *)
          try flush_to t ~lsn
          with Flush_failed { attempts; _ } ->
            bump t "eviction_vetoed";
            raise (Mgr_backing.Backing_failed { op = `Write; file = seg; block = page; attempts }))
      | Some _ | None -> ());
      note_data_writeback t ~seg ~page;
      `Writeback
