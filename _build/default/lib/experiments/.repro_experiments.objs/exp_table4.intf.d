lib/experiments/exp_table4.mli: Db_engine Exp_report
