lib/dbms/db_config.ml:
