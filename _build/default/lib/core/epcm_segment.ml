type id = int

type page_state = {
  mutable frame : int option;
  mutable flags : Epcm_flags.t;
}

type binding = {
  at : int;
  len : int;
  target : id;
  target_page : int;
  cow : bool;
}

type t = {
  sid : id;
  sname : string;
  seg_page_size : int;
  mutable pages : page_state array;
  mutable manager : int option;
  mutable bindings : binding list;
  mutable alive : bool;
}

let fresh_page () = { frame = None; flags = Epcm_flags.empty }

let make ~sid ~name ~page_size ~pages =
  if pages < 0 then invalid_arg "Epcm_segment.make: negative size";
  if page_size <= 0 then invalid_arg "Epcm_segment.make: page_size must be positive";
  {
    sid;
    sname = name;
    seg_page_size = page_size;
    pages = Array.init pages (fun _ -> fresh_page ());
    manager = None;
    bindings = [];
    alive = true;
  }

let length t = Array.length t.pages
let in_range t p = p >= 0 && p < Array.length t.pages

let page t p =
  if not (in_range t p) then
    invalid_arg (Printf.sprintf "Epcm_segment.page: page %d out of range of segment %d" p t.sid);
  t.pages.(p)

let binding_covering t p = List.find_opt (fun b -> p >= b.at && p < b.at + b.len) t.bindings

let bindings_overlap t ~at ~len =
  List.exists (fun b -> at < b.at + b.len && b.at < at + len) t.bindings

let resident_pages t =
  Array.fold_left (fun acc p -> if p.frame = None then acc else acc + 1) 0 t.pages

let frames t =
  Array.to_list t.pages |> List.filter_map (fun p -> p.frame)

let pp ppf t =
  Format.fprintf ppf "seg %d %S: %d pages, %d resident, manager=%s, %d bindings" t.sid t.sname
    (length t) (resident_pages t)
    (match t.manager with None -> "none" | Some m -> string_of_int m)
    (List.length t.bindings)
