lib/experiments/exp_table4.ml: Db_config Db_engine Exp_report List Printf
