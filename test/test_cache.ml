(* Zero-delta pins for the cache wiring: a machine built without [?cache]
   must be bit-identical to the pre-cache model (the 8 MB perf goldens
   and the Table 1 span attribution re-pinned here, from a suite that
   exists only because the cache does), a cache that never misses must
   charge nothing, and the vpp-cache/1 record must replay bit-identically
   — colored and random legs seed-for-seed. *)

module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags
module Machine = Hw_machine
module Engine = Sim_engine
module Cache = Hw_cache

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float_exact = Alcotest.(check (float 0.0))
let check_string = Alcotest.(check string)

let page_size = 4096

(* ------------------------------------------------------------------ *)
(* Cache-off: the pre-cache goldens hold                               *)
(* ------------------------------------------------------------------ *)

(* Wl_scale builds its machines without [?cache]; these are the same
   pins as test_workloads', re-asserted against the cache-wired kernel.
   Every cache pass in Epcm_kernel is guarded on the machine actually
   carrying caches, so none of these counts may move. *)
let test_scale_goldens_cacheless () =
  let r = Wl_scale.run Wl_scale.size_8mb in
  check_int "frames" 2048 r.Wl_scale.r_frames;
  check_int "touches" 3584 r.Wl_scale.r_touches;
  check_int "faults" 1344 r.Wl_scale.r_faults;
  check_int "migrate calls" 2696 r.Wl_scale.r_migrate_calls;
  check_int "migrated pages" 3200 r.Wl_scale.r_migrated_pages;
  check_bool "conserved" true r.Wl_scale.r_conserved

(* The Table 1 span decompositions: measured = pinned on every row and
   each row's span charges sum back to the pinned total. A stray
   kernel/cache_miss charge on a cache-less machine would break both. *)
let test_profile_attribution_cacheless () =
  let r = Exp_profile.run () in
  List.iter
    (fun row ->
      check_float_exact
        (row.Exp_profile.p_label ^ ": measured = pinned")
        row.Exp_profile.p_pinned_us row.Exp_profile.p_measured_us;
      let sum = List.fold_left (fun acc (_, _, us) -> acc +. us) 0.0 row.Exp_profile.p_spans in
      check_float_exact (row.Exp_profile.p_label ^ ": spans sum to pinned")
        row.Exp_profile.p_pinned_us sum;
      check_bool
        (row.Exp_profile.p_label ^ ": no cache_miss span on a cache-less machine")
        false
        (List.exists (fun (path, _, _) -> path = "kernel/cache_miss") row.Exp_profile.p_spans))
    r.Exp_profile.rows;
  check_bool "profile checks all pass" true (Exp_report.all_pass r.Exp_profile.checks)

let test_cacheless_machine_has_no_cache () =
  let machine = Machine.create ~page_size ~memory_bytes:(64 * page_size) () in
  check_int "no caches without ?cache" 0 (Machine.n_caches machine);
  check_bool "no color geometry without ?cache" true (Machine.cache_colors machine = None);
  let accesses, hits, misses = Machine.cache_stats machine in
  check_int "no accesses" 0 accesses;
  check_int "no hits" 0 hits;
  check_int "no misses" 0 misses

(* ------------------------------------------------------------------ *)
(* Cache-on: only misses are charged                                   *)
(* ------------------------------------------------------------------ *)

let naive_pager kernel =
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let on_fault (fault : Mgr.fault) =
    match fault.Mgr.f_kind with
    | Mgr.Missing | Mgr.Cow_write ->
        let init_seg = K.segment kernel init in
        let len = Seg.length init_seg in
        while !next < len && (Seg.page init_seg !next).Seg.frame = None do
          incr next
        done;
        K.migrate_pages kernel ~src:init ~dst:fault.Mgr.f_seg ~src_page:!next
          ~dst_page:fault.Mgr.f_page ~count:1 ();
        incr next
    | Mgr.Protection ->
        K.modify_page_flags kernel ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~count:1
          ~clear_flags:(Flags.of_list [ Flags.no_access; Flags.read_only ])
          ()
  in
  K.register_manager kernel ~name:"pager" ~mode:`In_process ~on_fault ()

let frames = 64
let pages = 48

(* 256 KB at 64-byte lines = 4096 sets: each of the 64 frames' base lines
   maps to a distinct set, so a pre-warmed cache never misses. *)
let big_cache = Machine.l2_cache ~size_bytes:(256 * 1024) ()

let run_trace ~cache ~warm () =
  let machine =
    match cache with
    | false -> Machine.create ~page_size ~memory_bytes:(frames * page_size) ()
    | true -> Machine.create ~page_size ~memory_bytes:(frames * page_size) ~cache:big_cache ()
  in
  let kernel = K.create machine in
  if warm then begin
    (* Direct model access outside the engine: charges are no-ops, so
       warming is free — exactly the Hw_machine.charge discipline. *)
    let c = machine.Machine.caches.(0) in
    for f = 0 to frames - 1 do
      ignore (Cache.access c ~phys_addr:(f * page_size))
    done;
    Cache.reset_stats c
  end;
  let mid = naive_pager kernel in
  let seg = K.create_segment kernel ~name:"ws" ~pages () in
  K.set_segment_manager kernel seg mid;
  Engine.spawn machine.Machine.engine (fun () ->
      for page = 0 to pages - 1 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Write
      done;
      for _ = 1 to 3 do
        for page = 0 to pages - 1 do
          K.touch kernel ~space:seg ~page ~access:Mgr.Read
        done
      done);
  Engine.run machine.Machine.engine;
  (machine, kernel)

(* A cache that never misses charges nothing: the run is bit-identical —
   same counts, same events, same simulated time — to the cache-less
   machine. This is the zero-delta guard measured from the other side. *)
let test_warm_cache_charges_nothing () =
  let m_off, k_off = run_trace ~cache:false ~warm:false () in
  let m_warm, k_warm = run_trace ~cache:true ~warm:true () in
  check_bool "kernel stats identical" true (K.stats k_off = K.stats k_warm);
  check_int "events identical"
    (Engine.events_executed m_off.Machine.engine)
    (Engine.events_executed m_warm.Machine.engine);
  check_float_exact "simulated time identical" (Machine.now m_off) (Machine.now m_warm);
  let accesses, _, misses = Machine.cache_stats m_warm in
  check_int "pre-warmed cache never missed" 0 misses;
  let stats = K.stats k_warm in
  check_int "every touch fed the cache" stats.K.touches accesses

(* And a cold cache charges exactly misses * cache_miss_penalty on top. *)
let test_cold_cache_charges_misses () =
  let m_off, _ = run_trace ~cache:false ~warm:false () in
  let m_cold, k_cold = run_trace ~cache:true ~warm:false () in
  let _, _, misses = Machine.cache_stats m_cold in
  check_bool "the cold cache missed" true (misses > 0);
  check_bool "kernel stats unchanged by the cache" true
    (K.stats k_cold = K.stats (snd (run_trace ~cache:false ~warm:false ())));
  let penalty = m_cold.Machine.cost.Hw_cost.cache_miss_penalty in
  Alcotest.(check (float 1e-6))
    "cold run = cache-less run + misses * penalty"
    (Machine.now m_off +. (float_of_int misses *. penalty))
    (Machine.now m_cold)

(* ------------------------------------------------------------------ *)
(* The record replays bit-identically                                  *)
(* ------------------------------------------------------------------ *)

let test_record_replays () =
  let a = Exp_cache.run ~quick:true () in
  let b = Exp_cache.run ~quick:true () in
  check_string "vpp-cache/1 record replays byte-identically" (Exp_cache.render_json a)
    (Exp_cache.render_json b);
  check_bool "all embedded checks pass" true (Exp_report.all_pass a.Exp_cache.checks);
  check_bool "replay flag (random + colored legs seed-for-seed)" true a.Exp_cache.replay_identical;
  match Exp_validate.validate (Exp_cache.to_json a) with
  | Ok tag -> check_string "validates under the dispatcher" Exp_cache.schema_version tag
  | Error e -> Alcotest.fail ("vpp-cache/1 record failed validation: " ^ e)

let () =
  Alcotest.run "cache"
    [
      ( "zero-delta",
        [
          Alcotest.test_case "8 MB perf goldens hold (cache-less)" `Quick
            test_scale_goldens_cacheless;
          Alcotest.test_case "Table 1 attribution holds (cache-less)" `Quick
            test_profile_attribution_cacheless;
          Alcotest.test_case "no cache state without ?cache" `Quick
            test_cacheless_machine_has_no_cache;
          Alcotest.test_case "warm cache charges nothing" `Quick test_warm_cache_charges_nothing;
          Alcotest.test_case "cold cache charges misses * penalty" `Quick
            test_cold_cache_charges_misses;
        ] );
      ( "record",
        [ Alcotest.test_case "quick record replays bit-identically" `Quick test_record_replays ]
      );
    ]
