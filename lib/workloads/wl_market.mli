(** The multi-tenant memory-market workload (ROADMAP item 1): a
    production-scale stress of the SPCM's admission control and lazy
    market settlement.

    A deterministic open-loop arrival process (seeded {!Sim_rng}, one
    split per role so streams are independent) spawns thousands of
    short-lived {e interactive} tenants against a handful of long-running
    {e batch savers}:

    - Interactive tenants acquire a small working set through the blocking
      {!Spcm.acquire} path (admission-queue on shortage), touch it, hold
      it for a drawn dwell time, and return it. Each tenant's
      acquire-to-resident latency is observed into the machine's
      {!Sim_metrics} sink under a per-tenant kind, from which the
      per-class SLO report (p50/p99/p999 over tenants, violations against
      a target) is extracted. A premium slice runs at higher admission
      priority; a poor slice has starvation income and is refused by the
      market.
    - Savers run the paper's batch cycle (fault the working set through a
      {!Mgr_generic} manager fed by {!Spcm.source_for}, compute, swap out,
      reconcile with {!Spcm.note_returned}) and are the reclaim targets
      when the admission queue backs up.
    - A sweeper periodically runs {!Spcm.sweep} (bankrupt enforcement +
      reclaim-for-head + pump) until every tenant has completed or been
      refused, then drains any stragglers with {!Spcm.refuse_pending} so
      the engine winds down to zero live processes.

    Memory is sized so bursts outrun the free pool: deferrals are part of
    the workload's expected behaviour, not an error. The whole run is
    deterministic from [c_seed]; the optional chaos spec attaches a seeded
    fault plan to the machine disk for storm tests. *)

type saver_backing = Memory | Disk

type config = {
  c_name : string;
  c_seed : int64;
  c_memory_bytes : int;
  c_page_size : int;
  c_tenants : int;  (** Interactive jobs spawned by the arrival process. *)
  c_mean_interarrival_us : float;
  c_pages_lo : int;
  c_pages_hi : int;  (** Working-set draw, inclusive bounds. *)
  c_hold_us_lo : float;
  c_hold_us_hi : float;
  c_premium_every : int;  (** Every Nth tenant runs at high priority. *)
  c_poor_every : int;  (** Every Nth tenant has starvation income. *)
  c_slo_us : float;  (** Per-tenant latency target for the violation count. *)
  c_savers : int;
  c_saver_pages : int;
  c_saver_slice_us : float;
  c_saver_idle_us : float;
  c_saver_backing : saver_backing;
  c_sweep_every_us : float;
  c_market : Spcm_market.config;
  c_chaos : Sim_chaos.spec option;
}

type class_slo = {
  sc_class : string;
  sc_tenants : int;
  sc_completed : int;
  sc_refused : int;
  sc_samples : int;  (** Latency samples (completed tenants) in the class. *)
  sc_p50_us : float;
  sc_p99_us : float;
  sc_p999_us : float;
  sc_max_us : float;
  sc_violations : int;  (** Tenants whose own p99 exceeds [c_slo_us]. *)
}

type result = {
  r_name : string;
  r_frames : int;
  r_tenants : int;
  r_savers : int;
  r_completed : int;
  r_refused : int;
  r_defer_events : int;
  r_granted_frames : int;  (** Frames granted to interactive tenants. *)
  r_saver_cycles : int;
  r_saver_starved : int;  (** Saver cycles abandoned for lack of frames. *)
  r_faults : int;
  r_events : int;
  r_sim_us : float;
  r_slo_us : float;
  r_slos : class_slo list;
  r_accounts : int;
  r_min_balance : float;
  r_billable_s : float;
  r_conservation_residual : float;  (** {!Spcm_market.conservation_error}. *)
  r_io_failures : int;  (** Backing I/O failures (chaos runs). *)
  r_conserved : bool;
      (** Frame audits agree, every frame owned, no live processes, no
          queued waiters, all client holdings returned. *)
}

val small : config
(** 1,000 tenants on an 8 MB machine — CI-speed preset. *)

val production : config
(** 5,000 tenants on a 20 MB machine — the acceptance-scale preset. *)

val run : config -> result
