(* A database's view of its own memory (paper §3.3 in miniature).

   A DBMS keeps relations and indices under an application-specific
   segment manager. When the system page cache manager shrinks its
   allocation by 1 MB, the conventional outcome is silent paging; the
   application-controlled outcome is: notice, pick the least valuable
   index, discard it (no writeback — it is regenerable), and rebuild it
   in memory when next needed.

   This example measures one join under each policy and prints the
   difference — the essence of Table 4's paging-vs-regeneration gap.

   Run with: dune exec examples/db_cache.exe *)

module K = Epcm_kernel
module Seg = Epcm_segment
module Engine = Sim_engine

let index_pages = 256 (* 1 MB *)

let build () =
  let machine =
    Hw_machine.create ~preset:Hw_machine.Sgi_4d_380 ~memory_bytes:(32 * 1024 * 1024) ()
  in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let granted = ref 0 in
    let init_seg = K.segment kernel init in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  let mgr = Mgr_dbms.create kernel ~source ~pool_capacity:1024 () in
  (machine, kernel, mgr)

(* Time one "join" that touches every page of the index. *)
let timed_join machine mgr idx =
  let elapsed = ref 0.0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      let t0 = Engine.time () in
      Mgr_dbms.touch_index mgr idx ~pages:(List.init index_pages Fun.id);
      elapsed := Engine.time () -. t0);
  Engine.run machine.Hw_machine.engine;
  !elapsed /. 1000.0

let () =
  (* Policy A: oblivious — the index was paged out behind the DBMS's
     back; the join faults it back from disk page by page. *)
  let machine_a, _, mgr_a = build () in
  let idx_a = Mgr_dbms.create_index mgr_a ~name:"order-index" ~pages:index_pages () in
  Mgr_dbms.evict_index mgr_a idx_a;
  let paging_ms = timed_join machine_a mgr_a idx_a in

  (* Policy B: application-controlled — the DBMS discarded the index
     when told its allocation shrank, and regenerates it in memory (one
     relation scan's worth of compute) before the join. *)
  let machine_b, _, mgr_b = build () in
  let idx_b = Mgr_dbms.create_index mgr_b ~name:"order-index" ~pages:index_pages () in
  Mgr_dbms.evict_index mgr_b idx_b;
  let regen_ms = ref 0.0 in
  Engine.spawn machine_b.Hw_machine.engine (fun () ->
      let t0 = Engine.time () in
      (* Regeneration compute: scan the (resident) relation once. *)
      Engine.delay (350.0 *. 1000.0);
      Mgr_dbms.regenerate_index mgr_b idx_b;
      Mgr_dbms.touch_index mgr_b idx_b ~pages:(List.init index_pages Fun.id);
      regen_ms := (Engine.time () -. t0) /. 1000.0);
  Engine.run machine_b.Hw_machine.engine;

  Printf.printf "Join needing a 1MB index that is not resident:\n";
  Printf.printf "  oblivious (page-in from disk) : %8.0f ms  (%d disk reads)\n" paging_ms
    (Hw_disk.reads machine_a.Hw_machine.disk);
  Printf.printf "  regenerate in memory          : %8.0f ms  (%d disk reads)\n" !regen_ms
    (Hw_disk.reads machine_b.Hw_machine.disk);
  Printf.printf "  speedup: %.1fx — the Table 4 paging-vs-regeneration gap\n"
    (paging_ms /. !regen_ms);

  (* The point the paper makes about information: the manager *knows*
     which indices are resident, so the query planner can decide before
     paying the fault. *)
  let resident = Mgr_dbms.index_resident mgr_b idx_b in
  Printf.printf "\nPlanner query: index resident? %b (no fault needed to find out)\n" resident
