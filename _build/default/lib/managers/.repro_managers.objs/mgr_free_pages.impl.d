lib/managers/mgr_free_pages.ml: Epcm_flags Epcm_kernel Epcm_segment Hw_machine Hw_phys_mem
