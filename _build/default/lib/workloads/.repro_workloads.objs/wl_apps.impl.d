lib/workloads/wl_apps.ml: List Wl_trace
