(* Chaos regression tests: seeded fault storms against every disk-touching
   layer, asserting the three properties the fault-injection subsystem
   promises — no frame leaks (conservation audit after every storm),
   bounded retries (the budget is a hard ceiling, observable in counters),
   and eventual completion (the workload finishes and recovers once the
   plan is detached) — plus seed-for-seed replay equality. *)

module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module G = Mgr_generic
module Machine = Hw_machine
module Engine = Sim_engine
module Chaos = Sim_chaos
module Counters = Sim_stats.Counters

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Conservation after a storm, checked both ways: the frame total, and the
   incremental O(segments) owner audit against the fold-based page-array
   scan. A storm is the counter's worst case — every abandoned fill or
   writeback is a map/unmap the counter must have tracked exactly. *)
let check_conserved ?(what = "frame conservation") machine kernel =
  check_int what (Machine.n_frames machine) (K.frame_owner_total kernel);
  Alcotest.(check (list (pair int int)))
    (what ^ ": incremental audit = scan audit")
    (K.frame_owner_audit_scan kernel) (K.frame_owner_audit kernel)

(* One disk read of a 4096-byte page costs seek + half rotation + transfer
   = 12 000 + 4 150 + 4 × 666 = 18 814 µs, so an outage window of
   [0, 20 000) fails exactly the first attempt and lets the first retry
   (which completes around t = 39.6 ms) through. *)
let page_read_us = 18_814.0

let kernel_with_source ~frames () =
  let machine = Machine.create ~memory_bytes:(frames * 4096) () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  (machine, kernel, source)

(* ------------------------------------------------------------------ *)
(* Mgr_backing: the retry loop itself                                  *)
(* ------------------------------------------------------------------ *)

(* An outage that swallows only the first attempt: the read succeeds on
   retry, costs exactly one extra device attempt, and is not a failure. *)
let test_backing_retry_transient () =
  let engine = Engine.create () in
  let disk = Hw_disk.create engine () in
  let chaos =
    Chaos.create ~seed:7L { Chaos.default_spec with outages = [ (0.0, page_read_us +. 1.0) ] }
  in
  Hw_disk.set_chaos disk (Some chaos);
  let backing = Mgr_backing.disk disk ~page_bytes:4096 in
  let ok = ref false in
  Engine.spawn engine (fun () ->
      ignore (Mgr_backing.read_block backing ~file:1 ~block:0);
      ok := true);
  Engine.run engine;
  check_bool "read eventually succeeded" true !ok;
  check_int "one logical read" 1 (Mgr_backing.reads backing);
  check_int "one retry" 1 (Mgr_backing.io_retries backing);
  check_int "no failures" 0 (Mgr_backing.io_failures backing);
  check_int "device saw two attempts" 2 (Hw_disk.reads disk)

(* Certain failure: the budget is a hard ceiling — exactly [attempts]
   device attempts, then Backing_failed carrying the logical address. *)
let test_backing_retry_exhaustion () =
  let engine = Engine.create () in
  let disk = Hw_disk.create engine () in
  let chaos = Chaos.create ~seed:7L { Chaos.default_spec with read_error_p = 1.0 } in
  Hw_disk.set_chaos disk (Some chaos);
  let retry = { Mgr_backing.attempts = 4; backoff_us = 100.0 } in
  let backing = Mgr_backing.disk ~retry disk ~page_bytes:4096 in
  let outcome = ref None in
  Engine.spawn engine (fun () ->
      try ignore (Mgr_backing.read_block backing ~file:2 ~block:5)
      with Mgr_backing.Backing_failed { op; file; block; attempts } ->
        outcome := Some (op, file, block, attempts));
  Engine.run engine;
  (match !outcome with
  | Some (`Read, 2, 5, 4) -> ()
  | Some _ -> Alcotest.fail "Backing_failed carried the wrong address"
  | None -> Alcotest.fail "retry budget exhaustion did not raise");
  check_int "attempts - 1 retries" 3 (Mgr_backing.io_retries backing);
  check_int "one abandoned operation" 1 (Mgr_backing.io_failures backing);
  check_int "device attempts = budget" 4 (Hw_disk.reads disk)

(* A permanently bad block fails every attempt; its neighbours are fine. *)
let test_backing_bad_block () =
  let engine = Engine.create () in
  let disk = Hw_disk.create engine () in
  let bad = Mgr_backing.disk_block ~file:3 ~block:9 in
  let chaos = Chaos.create ~seed:7L { Chaos.default_spec with bad_blocks = [ bad ] } in
  Hw_disk.set_chaos disk (Some chaos);
  let backing = Mgr_backing.disk disk ~page_bytes:4096 in
  let bad_failed = ref false and neighbour_ok = ref false in
  Engine.spawn engine (fun () ->
      (try ignore (Mgr_backing.read_block backing ~file:3 ~block:9)
       with Mgr_backing.Backing_failed _ -> bad_failed := true);
      ignore (Mgr_backing.read_block backing ~file:3 ~block:10);
      neighbour_ok := true);
  Engine.run engine;
  check_bool "bad block failed" true !bad_failed;
  check_bool "neighbour block unaffected" true !neighbour_ok

(* ------------------------------------------------------------------ *)
(* Mgr_generic: storm, conservation, completion                        *)
(* ------------------------------------------------------------------ *)

let generic_storm ~seed =
  let frames = 48 in
  let pages = 64 in
  let machine, kernel, source = kernel_with_source ~frames () in
  let counters = Counters.create () in
  let chaos =
    Chaos.create ~seed
      {
        Chaos.default_spec with
        read_error_p = 0.08;
        write_error_p = 0.1;
        delay_p = 0.05;
        delay_min_us = 100.0;
        delay_max_us = 1_000.0;
      }
  in
  Hw_disk.set_chaos machine.Machine.disk (Some chaos);
  let retry = { Mgr_backing.attempts = 3; backoff_us = 300.0 } in
  let backing = Mgr_backing.disk ~retry ~counters machine.Machine.disk ~page_bytes:4096 in
  let g =
    G.create kernel ~name:"storm" ~mode:`In_process ~backing ~source ~pool_capacity:32
      ~refill_batch:8 ~reclaim_batch:4 ~counters ()
  in
  let seg =
    G.create_segment g ~name:"data" ~pages ~kind:(G.File { file_id = 7 }) ~high_water:pages ()
  in
  let app_failures = ref 0 in
  Engine.spawn machine.Machine.engine (fun () ->
      for round = 0 to 2 do
        for page = 0 to pages - 1 do
          let access = if (page + round) mod 2 = 0 then Mgr.Write else Mgr.Read in
          try K.touch kernel ~space:seg ~page ~access
          with Mgr_backing.Backing_failed _ -> incr app_failures
        done
      done);
  Engine.run machine.Machine.engine;
  Hw_disk.set_chaos machine.Machine.disk None;
  (machine, kernel, g, chaos, counters, !app_failures, seg)

let test_generic_storm () =
  let machine, kernel, g, chaos, _counters, _fails, seg = generic_storm ~seed:11L in
  (* No frame leaks, however many fills and writebacks were abandoned. *)
  check_conserved machine kernel;
  check_bool "the storm actually stormed" true (Chaos.injected_failures chaos > 0);
  (* Bounded retries: the device never saw more attempts per logical
     operation than the budget allows. *)
  let logical = Mgr_backing.reads (G.backing g) + Mgr_backing.writes (G.backing g) in
  let budget = 3 in
  check_bool "retries within budget" true
    (Mgr_backing.io_retries (G.backing g) <= logical * (budget - 1));
  (* Eventual completion: with the plan detached every page is reachable
     and no process is left wedged. *)
  let survivors = ref 0 in
  Engine.spawn machine.Machine.engine (fun () ->
      for page = 0 to 63 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Read;
        incr survivors
      done);
  Engine.run machine.Machine.engine;
  check_int "all pages reachable after recovery" 64 !survivors;
  check_int "no wedged processes" 0 (Engine.live_processes machine.Machine.engine);
  check_conserved ~what:"frame conservation after recovery" machine kernel

let test_generic_storm_replay () =
  let observe seed =
    let _, kernel, g, chaos, counters, fails, _ = generic_storm ~seed in
    ( Chaos.schedule_fingerprint chaos,
      Chaos.decisions chaos,
      Counters.to_list counters,
      fails,
      (G.stats g).G.fill_failures,
      (G.stats g).G.writeback_failures,
      K.frame_owner_total kernel )
  in
  let a = observe 11L and b = observe 11L and c = observe 12L in
  check_bool "same seed, same storm (schedule, counters, degradations)" true (a = b);
  let fp (f, _, _, _, _, _, _) = f in
  check_bool "different seed, different storm" true (fp a <> fp c)

(* ------------------------------------------------------------------ *)
(* Mgr_prefetch: forked fills dying, faults degrading to demand        *)
(* ------------------------------------------------------------------ *)

let test_prefetch_degrades () =
  let frames = 48 in
  let machine, kernel, source = kernel_with_source ~frames () in
  let counters = Counters.create () in
  let chaos = Chaos.create ~seed:21L { Chaos.default_spec with read_error_p = 0.45 } in
  Hw_disk.set_chaos machine.Machine.disk (Some chaos);
  let p =
    Mgr_prefetch.create kernel
      ~retry:{ Mgr_backing.attempts = 2; backoff_us = 200.0 }
      ~counters ~source ~pool_capacity:48 ()
  in
  let seg = Mgr_prefetch.create_file_segment p ~name:"scan" ~file_id:3 ~pages:32 in
  let app_failures = ref 0 in
  Engine.spawn machine.Machine.engine (fun () ->
      for batch = 0 to 3 do
        let base = batch * 8 in
        Mgr_prefetch.prefetch p ~seg ~page:base ~count:8;
        Engine.delay 5_000.0;
        for page = base to base + 7 do
          try K.touch kernel ~space:seg ~page ~access:Mgr.Read
          with Mgr_backing.Backing_failed _ -> incr app_failures
        done
      done);
  Engine.run machine.Machine.engine;
  Hw_disk.set_chaos machine.Machine.disk None;
  check_conserved machine kernel;
  check_int "no wedged waiters" 0 (Engine.live_processes machine.Machine.engine);
  (* With a 20% error rate over 32 prefetched pages some forked fill died
     (seed-pinned), and every such page was served by degradation instead
     of wedging its waiter on the gate. *)
  check_bool "some prefetch fills died" true (Mgr_prefetch.prefetch_failures p > 0);
  check_bool "faults degraded to demand fills" true
    (Mgr_prefetch.degraded_to_demand p + Mgr_prefetch.demand_fills p > 0);
  (* Completion: every page of the scan is resident or reachable now. *)
  let ok = ref 0 in
  Engine.spawn machine.Machine.engine (fun () ->
      for page = 0 to 31 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Read;
        incr ok
      done);
  Engine.run machine.Machine.engine;
  check_int "scan completes after the storm" 32 !ok

(* ------------------------------------------------------------------ *)
(* Db_wal: torn writes never acknowledge lost records                  *)
(* ------------------------------------------------------------------ *)

let test_wal_torn_write () =
  let engine = Engine.create () in
  let disk = Hw_disk.create engine () in
  let counters = Counters.create () in
  let chaos = Chaos.create ~seed:33L { Chaos.default_spec with write_error_p = 1.0 } in
  Hw_disk.set_chaos disk (Some chaos);
  let wal =
    Db_wal.create disk ~retry:{ Mgr_backing.attempts = 2; backoff_us = 100.0 } ~counters ()
  in
  let torn = ref false in
  Engine.spawn engine (fun () ->
      let lsn = ref 0 in
      for _ = 1 to 5 do
        lsn := Db_wal.append wal
      done;
      try Db_wal.flush_to wal ~lsn:!lsn
      with Db_wal.Flush_failed { lsn = l; attempts = 2 } when l = !lsn -> torn := true);
  Engine.run engine;
  check_bool "flush failed as Flush_failed{attempts=2}" true !torn;
  (* The durable prefix did not advance — a torn write acknowledges
     nothing. *)
  check_int "flushed LSN unchanged" 0 (Db_wal.flushed wal);
  check_bool "retries counted" true (Db_wal.flush_retries wal > 0);
  check_int "failures counted" 1 (Db_wal.flush_failures wal);
  (* Device healthy again: recovery forces the whole log. *)
  Hw_disk.set_chaos disk None;
  Engine.spawn engine (fun () -> Db_wal.flush_to wal ~lsn:(Db_wal.appended wal));
  Engine.run engine;
  check_int "recovery flushed everything" 5 (Db_wal.flushed wal)

(* ------------------------------------------------------------------ *)
(* Mgr_checkpoint: durability loss is counted, never wedges a close    *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_durable_loss () =
  let frames = 48 in
  let machine, kernel, source = kernel_with_source ~frames () in
  let counters = Counters.create () in
  let chaos = Chaos.create ~seed:44L { Chaos.default_spec with write_error_p = 0.3 } in
  let backing =
    Mgr_backing.disk
      ~retry:{ Mgr_backing.attempts = 2; backoff_us = 100.0 }
      ~counters machine.Machine.disk ~page_bytes:4096
  in
  let c = Mgr_checkpoint.create kernel ~backing ~counters ~source ~pool_capacity:32 () in
  let seg = Mgr_checkpoint.create_segment c ~name:"heap" ~pages:16 in
  let closed = ref 0 in
  Engine.spawn machine.Machine.engine (fun () ->
      for page = 0 to 15 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Write
      done;
      Hw_disk.set_chaos machine.Machine.disk (Some chaos);
      for _ = 0 to 1 do
        ignore (Mgr_checkpoint.begin_checkpoint c ~seg);
        for page = 0 to 15 do
          K.touch kernel ~space:seg ~page ~access:Mgr.Write
        done;
        Mgr_checkpoint.end_checkpoint c ~seg;
        incr closed
      done);
  Engine.run machine.Machine.engine;
  Hw_disk.set_chaos machine.Machine.disk None;
  check_int "both checkpoints closed despite lost images" 2 !closed;
  check_bool "durability losses counted" true (Mgr_checkpoint.durable_failures c > 0);
  check_bool "most images made it" true
    (Mgr_checkpoint.durable_writes c > Mgr_checkpoint.durable_failures c);
  check_conserved machine kernel;
  check_int "no wedged processes" 0 (Engine.live_processes machine.Machine.engine)

(* ------------------------------------------------------------------ *)
(* Mgr_coloring: seeded traffic storm, colors and conservation hold    *)
(* ------------------------------------------------------------------ *)

(* The coloring manager never touches the disk, so its storm is seeded
   traffic, not injected IO faults: a random touch pattern driving pool
   refills under a tight capacity. The invariants are the same — frames
   conserved, every resident page correctly colored, no wedged process. *)
let test_coloring_traffic_storm () =
  let frames = 256 in
  let machine, kernel, _ = kernel_with_source ~frames () in
  let init = K.initial_segment kernel in
  let mem = machine.Machine.mem in
  let source ~color ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    let slot = ref 0 in
    while !granted < count && !slot < Seg.length init_seg do
      (match (Seg.page init_seg !slot).Seg.frame with
      | Some f
        when (match color with
             | None -> true
             | Some c -> (Hw_phys_mem.frame mem f).Hw_phys_mem.color = c) ->
          K.migrate_pages kernel ~src:init ~dst ~src_page:!slot ~dst_page:(dst_page + !granted)
            ~count:1 ();
          incr granted
      | Some _ | None -> ());
      incr slot
    done;
    !granted
  in
  let mgr = Mgr_coloring.create kernel ~n_colors:16 ~source ~pool_capacity:64 () in
  let seg = Mgr_coloring.create_segment mgr ~name:"ws" ~pages:48 in
  let rng = Sim_rng.create 55L in
  Engine.spawn machine.Machine.engine (fun () ->
      for _ = 1 to 300 do
        let page = Sim_rng.int rng 48 in
        let access = if Sim_rng.bool rng then Mgr.Write else Mgr.Read in
        K.touch kernel ~space:seg ~page ~access
      done);
  Engine.run machine.Machine.engine;
  let good, total = Mgr_coloring.audit mgr ~seg in
  check_int "every resident page correctly colored" total good;
  check_bool "the storm faulted pages in" true (total > 0);
  check_int "no color misses with a cooperative SPCM" 0 (Mgr_coloring.color_misses mgr);
  check_int "no wedged processes" 0 (Engine.live_processes machine.Machine.engine);
  check_conserved machine kernel

(* Coloring under a live cache model *and* injected disk faults: a
   Mgr_coloring segment and a Mgr_generic file segment churn on the same
   kernel while the disk storms, with a physically-indexed L2 attached so
   every touch and UIO sweep feeds the cache. The cache is pure
   observation — the invariants after the storm are the usual
   conservation audits (flat and per-tier, incremental = scan) plus the
   cache's own conservation identity (accesses = hits + misses). *)
let coloring_cache_storm ~tiered ~seed =
  let fast = 64 in
  let machine =
    if tiered then
      Machine.create
        ~tiers:
          [
            Hw_phys_mem.dram_tier ~bytes:(fast * 4096);
            Hw_phys_mem.slow_dram_tier ~bytes:(192 * 4096);
          ]
        ~cache:(Machine.l2_cache ~size_bytes:(64 * 1024) ())
        ()
    else
      Machine.create ~memory_bytes:(256 * 4096)
        ~cache:(Machine.l2_cache ~size_bytes:(64 * 1024) ())
        ()
  in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let mem = machine.Machine.mem in
  (* The coloring manager draws from the front of the initial segment
     (exactly tier 0 when tiered); the generic manager from the back, so
     the two never race for the same frames. *)
  let color_limit = if tiered then fast else 256 in
  let generic_base = if tiered then fast else 128 in
  let colored_source ~color ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    let slot = ref 0 in
    while !granted < count && !slot < color_limit do
      (match (Seg.page init_seg !slot).Seg.frame with
      | Some f
        when (match color with
             | None -> true
             | Some c -> (Hw_phys_mem.frame mem f).Hw_phys_mem.color = c) ->
          K.migrate_pages kernel ~src:init ~dst ~src_page:!slot ~dst_page:(dst_page + !granted)
            ~count:1 ();
          incr granted
      | Some _ | None -> ());
      incr slot
    done;
    !granted
  in
  let generic_source ~dst ~dst_page ~count =
    let init_seg = K.segment kernel init in
    let granted = ref 0 in
    let slot = ref generic_base in
    while !granted < count && !slot < Seg.length init_seg do
      (if (Seg.page init_seg !slot).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!slot ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr slot
    done;
    !granted
  in
  let counters = Counters.create () in
  let chaos =
    Chaos.create ~seed
      {
        Chaos.default_spec with
        read_error_p = 0.08;
        write_error_p = 0.1;
        delay_p = 0.05;
        delay_min_us = 100.0;
        delay_max_us = 1_000.0;
      }
  in
  Hw_disk.set_chaos machine.Machine.disk (Some chaos);
  let retry = { Mgr_backing.attempts = 3; backoff_us = 300.0 } in
  let backing = Mgr_backing.disk ~retry ~counters machine.Machine.disk ~page_bytes:4096 in
  let g =
    G.create kernel ~name:"cache-storm" ~mode:`In_process ~backing ~source:generic_source
      ~pool_capacity:32 ~refill_batch:8 ~reclaim_batch:4 ~counters ()
  in
  let file_seg =
    G.create_segment g ~name:"data" ~pages:48 ~kind:(G.File { file_id = 9 }) ~high_water:48 ()
  in
  let mgr =
    Mgr_coloring.create kernel
      ?tier:(if tiered then Some 0 else None)
      ~source:colored_source ~pool_capacity:16 ()
  in
  let colored_seg = Mgr_coloring.create_segment mgr ~name:"ws" ~pages:32 in
  let rng = Sim_rng.create seed in
  let app_failures = ref 0 in
  Engine.spawn machine.Machine.engine (fun () ->
      for _ = 1 to 400 do
        let space, pages =
          if Sim_rng.bool rng then (colored_seg, 32) else (file_seg, 48)
        in
        let page = Sim_rng.int rng pages in
        let access = if Sim_rng.bool rng then Mgr.Write else Mgr.Read in
        try K.touch kernel ~space ~page ~access
        with Mgr_backing.Backing_failed _ -> incr app_failures
      done);
  Engine.run machine.Machine.engine;
  Hw_disk.set_chaos machine.Machine.disk None;
  (machine, kernel, mgr, colored_seg, chaos)

let check_coloring_cache_storm ~tiered () =
  let machine, kernel, mgr, colored_seg, chaos = coloring_cache_storm ~tiered ~seed:31L in
  check_bool "the storm actually stormed" true (Chaos.injected_failures chaos > 0);
  check_conserved machine kernel;
  check_bool "per-tier audit = scan audit" true
    (K.frame_owner_audit_tiered kernel = K.frame_owner_audit_tiered_scan kernel);
  let accesses, hits, misses = Machine.cache_stats machine in
  check_int "cache stats conserved (hits + misses = accesses)" accesses (hits + misses);
  check_bool "the cache saw the storm's traffic" true (accesses > 0);
  check_bool "some accesses actually missed" true (misses > 0);
  let good, total = Mgr_coloring.audit mgr ~seg:colored_seg in
  check_int "every resident page correctly colored" total good;
  check_bool "the colored segment faulted pages in" true (total > 0);
  check_int "no color misses with a cooperative SPCM" 0 (Mgr_coloring.color_misses mgr);
  check_int "no wedged processes" 0 (Engine.live_processes machine.Machine.engine)

let test_coloring_cache_storm_flat () = check_coloring_cache_storm ~tiered:false ()
let test_coloring_cache_storm_tiered () = check_coloring_cache_storm ~tiered:true ()

(* ------------------------------------------------------------------ *)
(* Mgr_compressed: spill writes and disk re-fills under a write storm  *)
(* ------------------------------------------------------------------ *)

let test_compressed_spill_storm () =
  let frames = 96 in
  let machine, kernel, source = kernel_with_source ~frames () in
  let chaos =
    Chaos.create ~seed:66L { Chaos.default_spec with write_error_p = 0.3; read_error_p = 0.15 }
  in
  (* A tiny pool budget forces most evictions to spill to the real disk,
     which is where the storm bites. *)
  let config = { Mgr_compressed.default_config with budget_pages = 2.0 } in
  let mgr =
    Mgr_compressed.create kernel ~disk:machine.Machine.disk ~config ~source ~pool_capacity:48 ()
  in
  let seg = Mgr_compressed.create_segment mgr ~name:"cache" ~pages:32 in
  let app_failures = ref 0 in
  Engine.spawn machine.Machine.engine (fun () ->
      for page = 0 to 31 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Write
      done;
      Hw_disk.set_chaos machine.Machine.disk (Some chaos);
      (* Evict everything: compressions beyond the budget become spill
         writes, some of which the storm kills. *)
      for page = 0 to 31 do
        try Mgr_compressed.evict mgr ~seg ~page
        with Mgr_backing.Backing_failed _ -> incr app_failures
      done;
      (* Fault the working set back: decompressions, disk fills (under
         read errors), or zero-fills for entries the storm lost. *)
      for page = 0 to 31 do
        try K.touch kernel ~space:seg ~page ~access:Mgr.Read
        with Mgr_backing.Backing_failed _ -> incr app_failures
      done);
  Engine.run machine.Machine.engine;
  Hw_disk.set_chaos machine.Machine.disk None;
  check_bool "the storm actually stormed" true (Chaos.injected_failures chaos > 0);
  check_bool "evictions compressed" true (Mgr_compressed.compressions mgr > 0);
  check_bool "budget overflow spilled to disk" true (Mgr_compressed.spills mgr > 0);
  check_conserved machine kernel;
  check_int "no wedged processes" 0 (Engine.live_processes machine.Machine.engine);
  (* Recovery: with the plan detached the whole segment is reachable. *)
  let ok = ref 0 in
  Engine.spawn machine.Machine.engine (fun () ->
      for page = 0 to 31 do
        K.touch kernel ~space:seg ~page ~access:Mgr.Read;
        incr ok
      done);
  Engine.run machine.Machine.engine;
  check_int "all pages reachable after recovery" 32 !ok;
  check_conserved ~what:"frame conservation after recovery" machine kernel

(* ------------------------------------------------------------------ *)
(* Mgr_dsm: seeded coherence storm, protocol invariants + conservation *)
(* ------------------------------------------------------------------ *)

let dsm_storm ~seed =
  let frames = 256 in
  let machine, kernel, source = kernel_with_source ~frames () in
  let nodes = 4 and pages = 12 in
  let dsm = Mgr_dsm.create kernel ~source ~nodes ~pages () in
  let rng = Sim_rng.create seed in
  Engine.spawn machine.Machine.engine (fun () ->
      for _ = 1 to 400 do
        let node = Sim_rng.int rng nodes and page = Sim_rng.int rng pages in
        if Sim_rng.bernoulli rng 0.4 then
          Mgr_dsm.write dsm ~node ~page (Hw_page_data.of_string (Printf.sprintf "n%d" node))
        else ignore (Mgr_dsm.read dsm ~node ~page)
      done);
  Engine.run machine.Machine.engine;
  (machine, kernel, dsm, nodes, pages)

let test_dsm_coherence_storm () =
  let machine, kernel, dsm, nodes, pages = dsm_storm ~seed:77L in
  (* MSI safety after an arbitrary interleaving: never two Exclusive
     holders, and an Exclusive holder excludes Shared copies. *)
  for page = 0 to pages - 1 do
    let states = List.init nodes (fun node -> Mgr_dsm.state dsm ~node ~page) in
    let exclusive = List.length (List.filter (( = ) Mgr_dsm.Exclusive) states) in
    let shared = List.length (List.filter (( = ) Mgr_dsm.Shared) states) in
    check_bool
      (Printf.sprintf "page %d: at most one Exclusive holder" page)
      true (exclusive <= 1);
    check_bool
      (Printf.sprintf "page %d: Exclusive excludes Shared copies" page)
      true
      (exclusive = 0 || shared = 0);
    check_int
      (Printf.sprintf "page %d: holders match the per-node states" page)
      (exclusive + shared)
      (List.length (Mgr_dsm.holders dsm ~page))
  done;
  check_bool "the storm shipped copies" true (Mgr_dsm.transfers dsm > 0);
  check_bool "writes invalidated copies" true (Mgr_dsm.invalidations dsm > 0);
  check_int "no wedged processes" 0 (Engine.live_processes machine.Machine.engine);
  check_conserved machine kernel

let test_dsm_storm_replay () =
  let observe seed =
    let _, kernel, dsm, _, _ = dsm_storm ~seed in
    ( Mgr_dsm.transfers dsm,
      Mgr_dsm.invalidations dsm,
      Mgr_dsm.downgrades dsm,
      K.frame_owner_total kernel )
  in
  check_bool "same seed, same protocol traffic" true (observe 77L = observe 77L);
  let t1, i1, _, _ = observe 77L and t2, i2, _, _ = observe 78L in
  check_bool "different seed, different traffic" true (t1 <> t2 || i1 <> i2)

(* ------------------------------------------------------------------ *)
(* Mgr_gc: garbage discards dodge a write storm entirely               *)
(* ------------------------------------------------------------------ *)

let test_gc_discard_storm () =
  let frames = 96 in
  let machine, kernel, source = kernel_with_source ~frames () in
  (* The internal backing retries 3 times, so a per-attempt error rate of
     0.85 makes each logical write fail with p ~ 0.61 — over 16 dirty
     pages both outcomes (failed and landed) occur for any seed. *)
  let chaos = Chaos.create ~seed:88L { Chaos.default_spec with write_error_p = 0.85 } in
  let mgr = Mgr_gc.create kernel ~disk:machine.Machine.disk ~source ~pool_capacity:48 () in
  let heap = Mgr_gc.create_heap mgr ~name:"heap" ~pages:32 in
  let garbage_reclaimed = ref 0 in
  let conventional_reclaimed = ref 0 in
  let write_failures = ref 0 in
  Engine.spawn machine.Machine.engine (fun () ->
      (* Dirty the whole heap, then storm the disk. *)
      for page = 0 to 31 do
        K.touch kernel ~space:heap ~page ~access:Mgr.Write
      done;
      Hw_disk.set_chaos machine.Machine.disk (Some chaos);
      (* The collector declares the top half garbage: reclaiming it needs
         no writeback, so the storm cannot touch it. *)
      Mgr_gc.declare_garbage mgr ~seg:heap ~page:16 ~count:16;
      garbage_reclaimed := Mgr_gc.reclaim_garbage mgr ~seg:heap;
      (* A conventional pager would write the (dirty) bottom half to swap
         — squarely into the storm. *)
      for page = 0 to 15 do
        try conventional_reclaimed := !conventional_reclaimed + Mgr_gc.evict_conventional mgr ~seg:heap ~page ~count:1
        with Mgr_backing.Backing_failed _ -> incr write_failures
      done);
  Engine.run machine.Machine.engine;
  Hw_disk.set_chaos machine.Machine.disk None;
  check_int "garbage reclaimed without any disk traffic" 16 !garbage_reclaimed;
  check_int "dirty garbage pages avoided writebacks" 16 (Mgr_gc.writebacks_avoided mgr);
  check_bool "the storm failed some conventional writebacks" true (!write_failures > 0);
  check_bool "some conventional evictions still landed" true (!conventional_reclaimed > 0);
  (* A failed writeback must leave the page resident and owned — frames
     conserved either way. *)
  check_conserved machine kernel;
  check_int "no wedged processes" 0 (Engine.live_processes machine.Machine.engine)

(* ------------------------------------------------------------------ *)
(* Mgr_dbms: index paging through a read storm                         *)
(* ------------------------------------------------------------------ *)

let test_dbms_index_paging_storm () =
  let frames = 256 in
  let machine, kernel, source = kernel_with_source ~frames () in
  let chaos = Chaos.create ~seed:99L { Chaos.default_spec with read_error_p = 0.3 } in
  let mgr = Mgr_dbms.create kernel ~disk:machine.Machine.disk ~source ~pool_capacity:96 () in
  let _rel = Mgr_dbms.create_relation mgr ~name:"accounts" ~pages:32 in
  let idx = Mgr_dbms.create_index mgr ~name:"btree" ~pages:16 ~resident:true () in
  let load_failures = ref 0 in
  Engine.spawn machine.Machine.engine (fun () ->
      (* Shrink: the index is evicted wholesale (clean pages, a discard —
         no disk traffic, so the storm cannot interfere). *)
      Mgr_dbms.evict_index mgr idx;
      Hw_disk.set_chaos machine.Machine.disk (Some chaos);
      (* Page it back in through the storm: each fill is a disk read. *)
      (try Mgr_dbms.load_index_from_disk mgr idx
       with Mgr_backing.Backing_failed _ -> incr load_failures);
      Hw_disk.set_chaos machine.Machine.disk None;
      (* Recovery: the retry either already got every page or this second
         pass fills the rest — then a query touches the whole index. *)
      Mgr_dbms.load_index_from_disk mgr idx;
      Mgr_dbms.touch_index mgr idx ~pages:(List.init 16 Fun.id));
  Engine.run machine.Machine.engine;
  check_bool "the storm actually stormed" true (Chaos.injected_failures chaos > 0);
  check_bool "index resident after recovery" true (Mgr_dbms.index_resident mgr idx);
  check_int "all index pages resident" 16 (Mgr_dbms.resident_index_pages mgr);
  check_bool "page-in events counted" true (Mgr_dbms.page_in_events mgr > 0);
  check_conserved machine kernel;
  check_int "no wedged processes" 0 (Engine.live_processes machine.Machine.engine)

(* ------------------------------------------------------------------ *)
(* Memory market: a tenant storm with the disk failing under it        *)
(* ------------------------------------------------------------------ *)

(* A thousand interactive tenants arrive while the savers page their
   working sets through a failing disk: a 200 ms outage window lands in
   the middle of the first swap-out's writeback train (which starts around
   t = 25 ms and runs one page_read_us-scale write at a time), so grants,
   deferrals and refusals all happen while backing I/O is being retried
   and abandoned. The run must stay conserved the same way the clean runs
   are: incremental frame audit == scan audit, every frame owned, the
   admission queue drained, every holding returned, and the market's
   conservation identity intact with no balance driven below zero. *)
let market_storm_config =
  {
    Wl_market.small with
    c_name = "market-storm";
    c_seed = 1337L;
    c_saver_backing = Wl_market.Disk;
    c_chaos =
      Some
        {
          Chaos.default_spec with
          write_error_p = 0.05;
          outages = [ (50_000.0, 250_000.0) ];
        };
  }

let test_market_storm () =
  let r = Wl_market.run market_storm_config in
  check_bool "the storm actually stormed" true (r.Wl_market.r_io_failures > 0);
  check_bool "conserved (audits, queue, holdings, processes)" true r.Wl_market.r_conserved;
  check_bool "no drams minted or destroyed" true (r.Wl_market.r_conservation_residual < 1e-9);
  check_bool "no negative balances" true (r.Wl_market.r_min_balance >= 0.0);
  check_int "every tenant accounted for" r.Wl_market.r_tenants
    (r.Wl_market.r_completed + r.Wl_market.r_refused);
  check_bool "admission control engaged mid-storm" true (r.Wl_market.r_defer_events > 0);
  check_bool "savers kept cycling" true (r.Wl_market.r_saver_cycles > 0)

let test_market_storm_replay () =
  let a = Wl_market.run market_storm_config in
  let b = Wl_market.run market_storm_config in
  check_bool "storm replays seed-for-seed" true (a = b)

(* ------------------------------------------------------------------ *)
(* Sharded engine: a contention storm across shards                    *)
(* ------------------------------------------------------------------ *)

(* Crank the cross-shard fraction to half of all transactions, squeeze
   the contended remote window to a single hot page and cut the lock
   wait budget: remote prepares pile up on the same lock and the
   timeout → Vote_abort → presumed-abort path fires constantly. The
   storm invariants are the usual ones — exact accounting (commits +
   aborts = txns, local + cross = txns), frame conservation on every
   shard machine, no leaked processes (folded into [r_conserved]) —
   plus seed-for-seed replay of the whole result, latencies included. *)
let shard_storm_spec =
  {
    Db_shard.default with
    Db_shard.sp_shards = 3;
    sp_total_txns = 900;
    sp_cross_fraction = 0.5;
    sp_hot_remote_pages = 1;
    sp_remote_pages = 16;
    sp_lock_timeout_us = 2_000.0;
    sp_seed = 424_242L;
  }

let run_shard_storm () =
  List.init shard_storm_spec.Db_shard.sp_shards (fun shard ->
      Db_shard.run_shard shard_storm_spec ~shard)

let test_shard_contention_storm () =
  let results = run_shard_storm () in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 results in
  check_bool "the storm actually stormed (lock timeouts)" true
    (total (fun r -> r.Db_shard.r_lock_timeouts) > 0);
  check_bool "timeouts became 2PC aborts" true (total (fun r -> r.Db_shard.r_aborts) > 0);
  check_bool "most transactions still commit" true
    (total (fun r -> r.Db_shard.r_commits) > total (fun r -> r.Db_shard.r_aborts));
  check_int "commits + aborts = txns"
    (total (fun r -> r.Db_shard.r_txns))
    (total (fun r -> r.Db_shard.r_commits) + total (fun r -> r.Db_shard.r_aborts));
  check_int "local + cross = txns"
    (total (fun r -> r.Db_shard.r_txns))
    (total (fun r -> r.Db_shard.r_local) + total (fun r -> r.Db_shard.r_cross));
  check_int "every transaction ran somewhere" shard_storm_spec.Db_shard.sp_total_txns
    (total (fun r -> r.Db_shard.r_txns));
  List.iter
    (fun r ->
      check_bool
        (Printf.sprintf "shard %d conserved through the storm" r.Db_shard.r_shard)
        true r.Db_shard.r_conserved)
    results

let test_shard_storm_replay () =
  let a = run_shard_storm () in
  let b = run_shard_storm () in
  check_bool "storm replays seed-for-seed" true (a = b);
  let c =
    List.init shard_storm_spec.Db_shard.sp_shards (fun shard ->
        Db_shard.run_shard { shard_storm_spec with Db_shard.sp_seed = 99L } ~shard)
  in
  check_bool "different seed, different storm" true (a <> c)

(* ------------------------------------------------------------------ *)
(* The full experiment: every scenario, run twice, replay-equal        *)
(* ------------------------------------------------------------------ *)

let test_exp_chaos_end_to_end () =
  let r = Exp_chaos.run () in
  check_bool "replay: second run identical to the first" true r.Exp_chaos.replay_ok;
  List.iter
    (fun s ->
      check_int
        (s.Exp_chaos.s_name ^ ": frame conservation")
        s.Exp_chaos.s_frames_expected s.Exp_chaos.s_frames_owned;
      check_bool (s.Exp_chaos.s_name ^ ": storm injected failures") true
        (s.Exp_chaos.s_injected_failures > 0);
      check_bool (s.Exp_chaos.s_name ^ ": recovered after detach") true s.Exp_chaos.s_recovered)
    r.Exp_chaos.scenarios;
  List.iter
    (fun c -> check_bool (c.Exp_report.what ^ " passed") true c.Exp_report.pass)
    r.Exp_chaos.checks

let test_exp_chaos_seed_sensitivity () =
  let a = Exp_chaos.run () in
  let b = Exp_chaos.run ~seed:99L () in
  let fps r = List.map (fun s -> s.Exp_chaos.s_fingerprint) r.Exp_chaos.scenarios in
  check_bool "different seed, different storms" true (fps a <> fps b);
  check_bool "other seeds also conserve frames and recover" true
    (List.for_all
       (fun s ->
         s.Exp_chaos.s_frames_owned = s.Exp_chaos.s_frames_expected && s.Exp_chaos.s_recovered)
       b.Exp_chaos.scenarios)

let () =
  Alcotest.run "chaos"
    [
      ( "backing retries",
        [
          Alcotest.test_case "transient outage is retried" `Quick test_backing_retry_transient;
          Alcotest.test_case "budget exhaustion raises" `Quick test_backing_retry_exhaustion;
          Alcotest.test_case "bad block is permanent" `Quick test_backing_bad_block;
        ] );
      ( "generic manager",
        [
          Alcotest.test_case "storm: conservation + completion" `Quick test_generic_storm;
          Alcotest.test_case "storm replays seed-for-seed" `Quick test_generic_storm_replay;
        ] );
      ( "prefetch manager",
        [ Alcotest.test_case "dead fills degrade to demand" `Quick test_prefetch_degrades ] );
      ("write-ahead log", [ Alcotest.test_case "torn writes" `Quick test_wal_torn_write ]);
      ( "checkpoint manager",
        [ Alcotest.test_case "durability loss is survivable" `Quick test_checkpoint_durable_loss ]
      );
      ( "coloring manager",
        [
          Alcotest.test_case "traffic storm keeps colors + frames" `Quick
            test_coloring_traffic_storm;
          Alcotest.test_case "disk-fault storm under a cache (flat)" `Quick
            test_coloring_cache_storm_flat;
          Alcotest.test_case "disk-fault storm under a cache (tiered)" `Quick
            test_coloring_cache_storm_tiered;
        ] );
      ( "compressed manager",
        [ Alcotest.test_case "spill storm: conservation + recovery" `Quick
            test_compressed_spill_storm ] );
      ( "dsm manager",
        [
          Alcotest.test_case "coherence storm keeps MSI safety" `Quick test_dsm_coherence_storm;
          Alcotest.test_case "storm replays seed-for-seed" `Quick test_dsm_storm_replay;
        ] );
      ( "gc manager",
        [ Alcotest.test_case "garbage discards dodge the write storm" `Quick
            test_gc_discard_storm ] );
      ( "dbms manager",
        [ Alcotest.test_case "index paging through a read storm" `Quick
            test_dbms_index_paging_storm ] );
      ( "memory market",
        [
          Alcotest.test_case "tenant storm under disk faults" `Quick test_market_storm;
          Alcotest.test_case "storm replays seed-for-seed" `Quick test_market_storm_replay;
        ] );
      ( "sharded engine",
        [
          Alcotest.test_case "contention storm across shards" `Quick
            test_shard_contention_storm;
          Alcotest.test_case "storm replays seed-for-seed" `Quick test_shard_storm_replay;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "all scenarios, replayed" `Quick test_exp_chaos_end_to_end;
          Alcotest.test_case "seed sensitivity" `Quick test_exp_chaos_seed_sensitivity;
        ] );
    ]
