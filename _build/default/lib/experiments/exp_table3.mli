(** Table 3 — VM System Activity and Costs: per-application manager calls,
    MigratePages invocations, and the manager overhead in milliseconds
    (computed, as in the paper, as manager calls × the cost difference
    between a V++ default-manager minimal fault and the Ultrix fault). *)

type row = {
  program : string;
  manager_calls : int;
  migrate_calls : int;
  overhead_ms : float;
  overhead_pct : float;  (** Of the program's V++ elapsed time. *)
  paper_calls : int;
  paper_migrates : int;
  paper_overhead_ms : float;
}

type result = { rows : row list; checks : Exp_report.check list }

val run : unit -> result
val render : result -> string
