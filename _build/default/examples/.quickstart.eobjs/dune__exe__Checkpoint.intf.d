examples/checkpoint.mli:
