module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags
module Phys = Hw_phys_mem

type stats = {
  mutable fills : int;
  mutable refetches : int;
  mutable promotions : int;
  mutable demotions_slow : int;
  mutable demotions_compressed : int;
  mutable protection_clears : int;
  mutable cow_fills : int;
  mutable sp_fills : int;
}

let fresh_stats () =
  {
    fills = 0;
    refetches = 0;
    promotions = 0;
    demotions_slow = 0;
    demotions_compressed = 0;
    protection_clears = 0;
    cow_fills = 0;
    sp_fills = 0;
  }

type clock_entry = { ce_seg : Seg.id; ce_page : int; mutable ce_dead : bool }

(* One second-chance clock per tier, with the same tombstone + amortised
   compaction discipline as Mgr_generic's ring: entries whose page lost
   its frame — or whose frame is no longer of this clock's tier, which is
   what a promotion or demotion looks like from the other ring — are
   marked dead and swept out once they outnumber the live entries. *)
type clock = {
  mutable ring : clock_entry list;  (* newest first *)
  mutable hand : clock_entry list;  (* suffix of the scan order *)
  mutable ring_len : int;
  mutable ring_dead : int;
}

let fresh_clock () = { ring = []; hand = []; ring_len = 0; ring_dead = 0 }

let track clock seg page =
  clock.ring <- { ce_seg = seg; ce_page = page; ce_dead = false } :: clock.ring;
  clock.ring_len <- clock.ring_len + 1

let tombstone clock entry =
  entry.ce_dead <- true;
  clock.ring_dead <- clock.ring_dead + 1;
  if clock.ring_dead * 2 > clock.ring_len then begin
    clock.ring <- List.filter (fun e -> not e.ce_dead) clock.ring;
    clock.ring_len <- List.length clock.ring;
    clock.ring_dead <- 0
  end

let purge_segment clock seg =
  clock.ring <- List.filter (fun e -> (not e.ce_dead) && e.ce_seg <> seg) clock.ring;
  clock.ring_len <- List.length clock.ring;
  clock.ring_dead <- 0;
  clock.hand <- List.filter (fun e -> e.ce_seg <> seg) clock.hand

type t = {
  kern : K.t;
  name : string;
  mutable mid : Mgr.id;
  fast_tier : int;
  slow_tier : int;
  fast_pool : Mgr_free_pages.t;  (* tier-pure: fast frames only *)
  slow_pool : Mgr_free_pages.t;  (* tier-pure: slow frames only *)
  compressed : Mgr_compressed.t;  (* the coldest tier, via stash/fetch *)
  fast_clock : clock;
  slow_clock : clock;
  refill_batch : int;
  reclaim_batch : int;
  segs : (Seg.id, bool) Hashtbl.t;  (* value: segment opted into superpages *)
  mutable sp_segs : int;  (* opted-in segments — 0 keeps fault paths byte-identical *)
  mutable sp_cursor : int;  (* next start frame for aligned-run searches *)
  stats : stats;
  (* Same discipline as Mgr_generic: one fault at a time — tier moves are
     multi-step (read data, put_from, set_next_data, take_to) and would
     interleave across processes otherwise. *)
  serving : Sim_sync.Semaphore.t;
}

let kernel t = t.kern
let manager_id t = t.mid
let stats t = t.stats
let compressed t = t.compressed
let fast_tier t = t.fast_tier
let slow_tier t = t.slow_tier

let charge_logic t =
  Hw_machine.charge ~label:"mgr/fault_logic" (K.machine t.kern)
    (K.machine t.kern).Hw_machine.cost.Hw_cost.manager_fault_logic

let with_serving t f =
  Sim_sync.Semaphore.acquire t.serving;
  Fun.protect ~finally:(fun () -> Sim_sync.Semaphore.release t.serving) f

let frame_data t frame =
  (Phys.frame (K.machine t.kern).Hw_machine.mem frame).Phys.data

let slot_state t seg page =
  if not (K.segment_exists t.kern seg) then None
  else
    let s = K.segment t.kern seg in
    if not (Seg.in_range s page) then None
    else
      let slot = Seg.page s page in
      Option.map (fun frame -> (slot, frame)) slot.Seg.frame

(* ------------------------------------------------------------------ *)
(* Frame supply                                                       *)
(* ------------------------------------------------------------------ *)

(* Pull free frames of [tier] straight from the kernel's initial segment.
   Unlike an SPCM source the slots need not be contiguous, so this is one
   single-page MigratePages per frame. *)
let refill t pool ~tier ~want =
  match Mgr_free_pages.grant_slot pool with
  | None -> 0
  | Some slot0 ->
      let want = min want (Mgr_free_pages.room pool) in
      let init = K.initial_segment t.kern in
      let slots = K.initial_slots ~tier t.kern ~limit:want in
      let got = ref 0 in
      List.iter
        (fun src_page ->
          K.migrate_pages t.kern ~src:init ~dst:(Mgr_free_pages.segment pool) ~src_page
            ~dst_page:(slot0 + !got) ~count:1 ~tier ();
          incr got)
        slots;
      Mgr_free_pages.note_granted pool !got;
      !got

let victim t ~tier entry =
  match slot_state t entry.ce_seg entry.ce_page with
  | None -> `Gone
  | Some (slot, frame) ->
      if Phys.tier_of_frame (K.machine t.kern).Hw_machine.mem frame <> tier then `Gone
      else
        let flags = slot.Seg.flags in
        if Flags.mem flags Flags.pinned || Flags.mem flags Flags.io_busy then `Skip
        else if Flags.mem flags Flags.referenced then begin
          (* Second chance. *)
          K.modify_page_flags t.kern ~seg:entry.ce_seg ~page:entry.ce_page ~count:1
            ~clear_flags:Flags.referenced ();
          `Skip
        end
        else `Victim (slot, frame)

(* Clock sweep over one tier's ring; [demote] moves a victim down a level
   and reports success. Two full passes at most, like Mgr_generic. *)
let sweep_clock t clock ~tier ~count ~demote =
  let reclaimed = ref 0 in
  let passes = ref 0 in
  let stop = ref false in
  while (not !stop) && !reclaimed < count && (!passes < 2 || clock.hand <> []) do
    if clock.hand = [] then begin
      clock.hand <- clock.ring;
      incr passes;
      if clock.hand = [] then stop := true
    end;
    match clock.hand with
    | [] -> stop := true
    | entry :: rest -> (
        clock.hand <- rest;
        if entry.ce_dead then ()
        else
          match victim t ~tier entry with
          | `Gone -> tombstone clock entry
          | `Skip -> ()
          | `Victim (slot, frame) ->
              if demote entry slot frame then incr reclaimed else stop := true)
  done;
  !reclaimed

(* Migration masks that carry the page's dirtiness across the frame
   change (the data moved with set_next_data, not with the frame, so the
   pool frame's leftover flags must not leak in). *)
let move_masks ~extra_set flags =
  let dirty = Flags.mem flags Flags.dirty in
  let set_flags = if dirty then Flags.of_list (Flags.dirty :: extra_set) else
    (match extra_set with [] -> Flags.empty | _ -> Flags.of_list extra_set)
  in
  let clear_flags =
    if dirty then Flags.referenced else Flags.of_list [ Flags.referenced; Flags.dirty ]
  in
  (set_flags, clear_flags)

(* Slow -> compressed store: page contents leave physical memory. *)
let demote_to_compressed t entry _slot frame =
  Mgr_compressed.stash t.compressed ~seg:entry.ce_seg ~page:entry.ce_page (frame_data t frame);
  (if Mgr_free_pages.room t.slow_pool = 0 then
     ignore (Mgr_free_pages.release_to_initial t.slow_pool ~count:16));
  Mgr_free_pages.put_from t.slow_pool ~src:entry.ce_seg ~src_page:entry.ce_page;
  t.stats.demotions_compressed <- t.stats.demotions_compressed + 1;
  true

let ensure_slow t n =
  if Mgr_free_pages.available t.slow_pool < n then begin
    let missing = n - Mgr_free_pages.available t.slow_pool in
    ignore (refill t t.slow_pool ~tier:t.slow_tier ~want:(max missing t.refill_batch));
    if Mgr_free_pages.available t.slow_pool < n then
      ignore
        (sweep_clock t t.slow_clock ~tier:t.slow_tier
           ~count:(max (n - Mgr_free_pages.available t.slow_pool) t.reclaim_batch)
           ~demote:(demote_to_compressed t))
  end;
  Mgr_free_pages.available t.slow_pool >= n

(* Fast -> slow: land the page on a slow frame, contents intact, and
   protect it so the next touch raises the promotion fault. *)
let demote_to_slow t entry slot frame =
  ensure_slow t 1
  && begin
       let data = frame_data t frame in
       let set_flags, clear_flags = move_masks ~extra_set:[ Flags.no_access ] slot.Seg.flags in
       (if Mgr_free_pages.room t.fast_pool = 0 then
          ignore (Mgr_free_pages.release_to_initial t.fast_pool ~count:16));
       Mgr_free_pages.put_from t.fast_pool ~src:entry.ce_seg ~src_page:entry.ce_page;
       Mgr_free_pages.set_next_data t.slow_pool data;
       let moved =
         Mgr_free_pages.take_to t.slow_pool ~dst:entry.ce_seg ~dst_page:entry.ce_page ~count:1
           ~tier:t.slow_tier ~set_flags ~clear_flags ()
       in
       assert (moved = 1);
       track t.slow_clock entry.ce_seg entry.ce_page;
       t.stats.demotions_slow <- t.stats.demotions_slow + 1;
       true
     end

let ensure_fast t n =
  if Mgr_free_pages.available t.fast_pool < n then begin
    let missing = n - Mgr_free_pages.available t.fast_pool in
    ignore (refill t t.fast_pool ~tier:t.fast_tier ~want:(max missing t.refill_batch));
    if Mgr_free_pages.available t.fast_pool < n then
      ignore
        (sweep_clock t t.fast_clock ~tier:t.fast_tier
           ~count:(max (n - Mgr_free_pages.available t.fast_pool) t.reclaim_batch)
           ~demote:(demote_to_slow t))
  end;
  Mgr_free_pages.available t.fast_pool >= n

exception Out_of_frames of string

let need_fast t n =
  if not (ensure_fast t n) then
    raise
      (Out_of_frames
         (Printf.sprintf "%s: need %d fast frames, have %d after refill and demotion" t.name n
            (Mgr_free_pages.available t.fast_pool)))

(* ------------------------------------------------------------------ *)
(* Fault handling                                                     *)
(* ------------------------------------------------------------------ *)

(* A missing fault on an opted-in segment whose whole aligned region is
   empty (and not hiding in the compressed store) is served by one
   contiguous run grant from the fast tier; the kernel promotes the
   region as part of the migrate. Falls back to the 4 KB path when no
   aligned identity run is free. *)
let try_superpage_fill t ~seg ~page =
  t.sp_segs > 0
  && Hashtbl.find_opt t.segs seg = Some true
  &&
  let run = K.super_pages t.kern in
  let s = K.segment t.kern seg in
  let sbase = page / run * run in
  sbase + run <= Seg.length s
  && (let ok = ref true in
      let i = ref sbase in
      while !ok && !i < sbase + run do
        if
          (Seg.page s !i).Seg.frame <> None
          || Mgr_compressed.has t.compressed ~seg ~page:!i
        then ok := false;
        incr i
      done;
      !ok)
  &&
  let grant start = K.grant_superpage_run ~tier:t.fast_tier t.kern ~dst:seg ~dst_page:sbase ~start in
  let granted =
    match grant t.sp_cursor with
    | Some base -> Some base
    | None -> if t.sp_cursor > 0 then grant 0 else None
  in
  match granted with
  | None -> false
  | Some base ->
      t.sp_cursor <- base + run;
      for p = sbase to sbase + run - 1 do
        track t.fast_clock seg p
      done;
      t.stats.sp_fills <- t.stats.sp_fills + 1;
      t.stats.fills <- t.stats.fills + run;
      true

let handle_missing t ~seg ~page =
  if try_superpage_fill t ~seg ~page then ()
  else begin
  need_fast t 1;
  (* Fetch only once a frame is secured — fetch removes the store entry,
     and an Out_of_frames after that would lose the page. *)
  (match Mgr_compressed.fetch t.compressed ~seg ~page with
  | Some data ->
      Mgr_free_pages.set_next_data t.fast_pool data;
      t.stats.refetches <- t.stats.refetches + 1
  | None -> t.stats.fills <- t.stats.fills + 1);
  let moved =
    Mgr_free_pages.take_to t.fast_pool ~dst:seg ~dst_page:page ~count:1 ~tier:t.fast_tier
      ~clear_flags:(Flags.of_list [ Flags.dirty; Flags.no_access; Flags.read_only ])
      ()
  in
  assert (moved = 1);
  track t.fast_clock seg page
  end

let promote t ~seg ~page =
  if ensure_fast t 1 then begin
    (* Re-read the slot: securing the fast frame may itself have demoted
       this very page into the compressed store (demote_to_slow ->
       ensure_slow -> demote_to_compressed), or another queued fault may
       have moved it. *)
    match slot_state t seg page with
    | Some (slot, frame)
      when Phys.tier_of_frame (K.machine t.kern).Hw_machine.mem frame = t.slow_tier ->
        let data = frame_data t frame in
        let set_flags, clear_flags = move_masks ~extra_set:[] slot.Seg.flags in
        let clear_flags = Flags.union clear_flags Flags.no_access in
        (if Mgr_free_pages.room t.slow_pool = 0 then
           ignore (Mgr_free_pages.release_to_initial t.slow_pool ~count:16));
        Mgr_free_pages.put_from t.slow_pool ~src:seg ~src_page:page;
        Mgr_free_pages.set_next_data t.fast_pool data;
        let moved =
          Mgr_free_pages.take_to t.fast_pool ~dst:seg ~dst_page:page ~count:1 ~tier:t.fast_tier
            ~set_flags ~clear_flags ()
        in
        assert (moved = 1);
        track t.fast_clock seg page;
        t.stats.promotions <- t.stats.promotions + 1
    | Some _ -> ()  (* already landed on a fast frame *)
    | None -> handle_missing t ~seg ~page
  end
  else begin
    (* No fast frame to be had — unprotect in place; the page stays slow
       and every touch pays the tier access surcharge. *)
    K.modify_page_flags t.kern ~seg ~page ~count:1 ~clear_flags:Flags.no_access ();
    t.stats.protection_clears <- t.stats.protection_clears + 1
  end

let handle_protection t (fault : Mgr.fault) =
  match slot_state t fault.Mgr.f_seg fault.Mgr.f_page with
  | Some (_, frame)
    when Phys.tier_of_frame (K.machine t.kern).Hw_machine.mem frame = t.slow_tier ->
      promote t ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page
  | _ ->
      K.modify_page_flags t.kern ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~count:1
        ~clear_flags:(Flags.of_list [ Flags.no_access; Flags.read_only ])
        ();
      t.stats.protection_clears <- t.stats.protection_clears + 1

let handle_cow t (fault : Mgr.fault) =
  need_fast t 1;
  let moved =
    Mgr_free_pages.take_to t.fast_pool ~dst:fault.Mgr.f_seg ~dst_page:fault.Mgr.f_page ~count:1
      ~tier:t.fast_tier
      ~clear_flags:(Flags.of_list [ Flags.dirty; Flags.no_access; Flags.read_only ])
      ()
  in
  assert (moved = 1);
  track t.fast_clock fault.Mgr.f_seg fault.Mgr.f_page;
  t.stats.cow_fills <- t.stats.cow_fills + 1

let on_fault t (fault : Mgr.fault) =
  charge_logic t;
  with_serving t @@ fun () ->
  match fault.Mgr.f_kind with
  | Mgr.Missing ->
      (* Another fault on the same page may have been served while we
         waited in the queue. *)
      if slot_state t fault.Mgr.f_seg fault.Mgr.f_page = None then
        handle_missing t ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page
  | Mgr.Protection -> handle_protection t fault
  | Mgr.Cow_write -> handle_cow t fault

let on_close t seg =
  (match Hashtbl.find_opt t.segs seg with
  | Some true -> t.sp_segs <- t.sp_segs - 1
  | _ -> ());
  Hashtbl.remove t.segs seg;
  purge_segment t.fast_clock seg;
  purge_segment t.slow_clock seg

let return_to_system_unlocked t ~pages =
  let from_slow = Mgr_free_pages.release_to_initial t.slow_pool ~count:pages in
  let from_fast =
    if from_slow < pages then
      Mgr_free_pages.release_to_initial t.fast_pool ~count:(pages - from_slow)
    else 0
  in
  from_slow + from_fast

let return_to_system t ~pages = with_serving t (fun () -> return_to_system_unlocked t ~pages)

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let create kern ?(name = "tiered-manager") ?(fast_tier = 0) ?(slow_tier = 1) ?compressed_config
    ?(fast_pool_capacity = 128) ?(slow_pool_capacity = 128) ?(refill_batch = 16)
    ?(reclaim_batch = 8) () =
  let mem = (K.machine kern).Hw_machine.mem in
  let nt = Phys.n_tiers mem in
  if fast_tier < 0 || fast_tier >= nt || slow_tier < 0 || slow_tier >= nt then
    invalid_arg "Mgr_tiered.create: tier out of range";
  if fast_tier = slow_tier then invalid_arg "Mgr_tiered.create: fast and slow tiers must differ";
  let compressed =
    (* Backend only: its own fault handler and pool are never exercised —
       segments managed here route faults to this manager, and stash/fetch
       do not touch the frame pool. *)
    Mgr_compressed.create kern ?config:compressed_config
      ~source:(fun ~dst:_ ~dst_page:_ ~count:_ -> 0)
      ~pool_capacity:1 ()
  in
  let t =
    {
      kern;
      name;
      mid = -1;
      fast_tier;
      slow_tier;
      fast_pool =
        Mgr_free_pages.create kern ~name:(name ^ ".fast-pool") ~capacity:fast_pool_capacity;
      slow_pool =
        Mgr_free_pages.create kern ~name:(name ^ ".slow-pool") ~capacity:slow_pool_capacity;
      compressed;
      fast_clock = fresh_clock ();
      slow_clock = fresh_clock ();
      refill_batch;
      reclaim_batch;
      segs = Hashtbl.create 16;
      sp_segs = 0;
      sp_cursor = 0;
      stats = fresh_stats ();
      serving = Sim_sync.Semaphore.create 1;
    }
  in
  t.mid <-
    K.register_manager kern ~name ~mode:`In_process
      ~on_fault:(fun f -> on_fault t f)
      ~on_close:(fun s -> on_close t s)
      ~on_pressure:(fun ~pages ->
        (* Never block (see Mgr_generic): decline when mid-fault. *)
        if Sim_sync.Semaphore.try_acquire t.serving then
          Fun.protect
            ~finally:(fun () -> Sim_sync.Semaphore.release t.serving)
            (fun () -> return_to_system_unlocked t ~pages)
        else 0)
      ();
  t

let register_seg t seg ~superpages =
  Hashtbl.replace t.segs seg superpages;
  if superpages then begin
    t.sp_segs <- t.sp_segs + 1;
    K.set_superpages t.kern ~seg ~enabled:true
  end

let create_segment t ~name ~pages ?(superpages = false) () =
  let seg = K.create_segment t.kern ~name ~pages () in
  K.set_segment_manager t.kern seg t.mid;
  register_seg t seg ~superpages;
  seg

let adopt t ?(superpages = false) seg =
  K.set_segment_manager t.kern seg t.mid;
  register_seg t seg ~superpages;
  let s = K.segment t.kern seg in
  let mem = (K.machine t.kern).Hw_machine.mem in
  Array.iteri
    (fun i slot ->
      match slot.Seg.frame with
      | None -> ()
      | Some f ->
          if Phys.tier_of_frame mem f = t.slow_tier then track t.slow_clock seg i
          else track t.fast_clock seg i)
    s.Seg.pages

let managed t = Hashtbl.fold (fun k _ acc -> k :: acc) t.segs [] |> List.sort compare
let resident_by_tier t ~seg = Seg.resident_pages_by_tier (K.segment t.kern seg)
let fast_available t = Mgr_free_pages.available t.fast_pool
let slow_available t = Mgr_free_pages.available t.slow_pool
