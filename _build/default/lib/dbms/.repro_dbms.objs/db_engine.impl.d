lib/dbms/db_engine.ml: Array Buffer Db_btree Db_config Db_locks Epcm_kernel Epcm_manager Epcm_segment Hw_disk Hw_machine List Mgr_dbms Printf Sim_engine Sim_rng Sim_stats Sim_sync String
