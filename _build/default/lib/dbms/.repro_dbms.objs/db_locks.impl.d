lib/dbms/db_locks.ml: Format Hashtbl List Option Queue Sim_engine
