examples/mp3d_adaptive.ml: Epcm_kernel Epcm_manager Epcm_segment Hw_disk Hw_machine Mgr_backing Mgr_generic Printf Sim_engine
