type t =
  | Zero
  | Bytes of bytes
  | Block of { file : int; block : int; version : int }

let zero = Zero
let of_string s = Bytes (Bytes.of_string s)
let block ~file ~block ~version = Block { file; block; version }

let equal a b =
  match (a, b) with
  | Zero, Zero -> true
  | Bytes x, Bytes y -> Bytes.equal x y
  | Block x, Block y -> x.file = y.file && x.block = y.block && x.version = y.version
  | (Zero | Bytes _ | Block _), _ -> false

let byte t i =
  match t with
  | Zero -> '\000'
  | Bytes b -> if i < Bytes.length b then Bytes.get b i else '\000'
  | Block { file; block; version } ->
      (* Any deterministic mixing works; this is just a stable fingerprint. *)
      let h = (file * 1_000_003) lxor (block * 40_503) lxor (version * 2_654_435_761) lxor i in
      Char.chr (abs h mod 256)

let describe = function
  | Zero -> "zero"
  | Bytes b -> Printf.sprintf "bytes[%d]" (Bytes.length b)
  | Block { file; block; version } -> Printf.sprintf "file%d.block%d.v%d" file block version

let pp ppf t = Format.pp_print_string ppf (describe t)
