(** Table 4 — Effect of Memory Usage on Transaction Response (ms): the
    four index configurations of the simulated database system. *)

type result = { rows : Db_engine.result list; checks : Exp_report.check list }

val run : ?quick:bool -> unit -> result
(** [quick] shortens the simulated duration (150 s instead of 300 s) for
    test runs; the CLI and bench default to the full run. *)

val render : result -> string
