type slot = { space : int; vpn : int; frame : int }

type t = {
  slots : slot option array;
  (* Superpage entries, keyed by (space, svpn) with svpn = vpn /
     super_pages. [super_live] guards every probe so a machine with no
     superpage fills behaves — and counts — exactly like the
     pre-superpage TLB. *)
  super : slot option array;
  super_pages : int;
  mutable super_live : int;
  mutable super_hits : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(entries = 64) ?(super_entries = 16) ?(super_pages = 512) () =
  if entries <= 0 then invalid_arg "Hw_tlb.create: entries must be positive";
  if super_entries <= 0 || super_pages <= 0 then invalid_arg "Hw_tlb.create";
  {
    slots = Array.make entries None;
    super = Array.make super_entries None;
    super_pages;
    super_live = 0;
    super_hits = 0;
    hits = 0;
    misses = 0;
  }

let index t ~space ~vpn = abs ((vpn * 31) lxor space) mod Array.length t.slots
let super_index t ~space ~svpn = abs ((svpn * 131) lxor space) mod Array.length t.super

let lookup_sized t ~space ~vpn =
  let super_hit =
    if t.super_live > 0 then begin
      let svpn = vpn / t.super_pages in
      match t.super.(super_index t ~space ~svpn) with
      | Some s when s.space = space && s.vpn = svpn ->
          t.hits <- t.hits + 1;
          t.super_hits <- t.super_hits + 1;
          Some (s.frame + (vpn - (svpn * t.super_pages)), true)
      | Some _ | None -> None
    end
    else None
  in
  match super_hit with
  | Some _ as r -> r
  | None -> (
      match t.slots.(index t ~space ~vpn) with
      | Some s when s.space = space && s.vpn = vpn ->
          t.hits <- t.hits + 1;
          Some (s.frame, false)
      | Some _ | None ->
          t.misses <- t.misses + 1;
          None)

let lookup t ~space ~vpn =
  match lookup_sized t ~space ~vpn with Some (frame, _) -> Some frame | None -> None

let fill t ~space ~vpn ~frame = t.slots.(index t ~space ~vpn) <- Some { space; vpn; frame }

let fill_super t ~space ~svpn ~frame =
  let i = super_index t ~space ~svpn in
  if t.super.(i) = None then t.super_live <- t.super_live + 1;
  t.super.(i) <- Some { space; vpn = svpn; frame }

let invalidate t ~space ~vpn =
  match t.slots.(index t ~space ~vpn) with
  | Some s when s.space = space && s.vpn = vpn -> t.slots.(index t ~space ~vpn) <- None
  | Some _ | None -> ()

let invalidate_super t ~space ~svpn =
  if t.super_live > 0 then begin
    let i = super_index t ~space ~svpn in
    match t.super.(i) with
    | Some s when s.space = space && s.vpn = svpn ->
        t.super.(i) <- None;
        t.super_live <- t.super_live - 1
    | Some _ | None -> ()
  end

let invalidate_space t ~space =
  Array.iteri
    (fun i o -> match o with Some s when s.space = space -> t.slots.(i) <- None | _ -> ())
    t.slots;
  if t.super_live > 0 then
    Array.iteri
      (fun i o ->
        match o with
        | Some s when s.space = space ->
            t.super.(i) <- None;
            t.super_live <- t.super_live - 1
        | _ -> ())
      t.super

let flush t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  if t.super_live > 0 then begin
    Array.fill t.super 0 (Array.length t.super) None;
    t.super_live <- 0
  end

let hits t = t.hits
let misses t = t.misses
let super_hits t = t.super_hits

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
