(** Distributed-shared-memory consistency as a segment manager.

    The paper's conclusion credits external page-cache management with
    letting V++ move "page reclamation, most copy-on-write support and
    distributed consistency" out of the kernel into process-level
    managers. This module is that consistency manager: an MSI
    (invalidate-based) protocol over per-node copy segments, built
    entirely from the exported primitives — faults deliver coherence
    events, [MigratePages] installs and revokes copies, [ModifyPageFlags]
    expresses the Shared (read-only) and Exclusive (writable) states, and
    remote traffic is charged a network latency per protocol message.

    Each logical node sees the shared region through its own segment.
    Reads fault a Shared copy in (downgrading a remote Exclusive holder);
    writes demand Exclusive, invalidating every other copy. The "home"
    keeps the authoritative data for pages nobody holds. *)

type t

type page_state = Invalid | Shared | Exclusive

val create :
  Epcm_kernel.t ->
  ?name:string ->
  source:Mgr_generic.source ->
  nodes:int ->
  pages:int ->
  ?net_latency_us:float ->
  unit ->
  t
(** [net_latency_us] (default 1000) is charged per protocol message; a
    copy transfer is two messages (request + data) plus a page copy.
    [name] (default ["dsm-manager"]) distinguishes several instances on
    one kernel (the sharded engine runs one per shard machine). *)

val nodes : t -> int
val node_segment : t -> node:int -> Epcm_segment.id

val read : t -> node:int -> page:int -> Hw_page_data.t
(** Coherent read: faults in a Shared copy if needed. *)

val write : t -> node:int -> page:int -> Hw_page_data.t -> unit
(** Coherent write: acquires Exclusive, invalidating other copies. *)

val state : t -> node:int -> page:int -> page_state

val holders : t -> page:int -> int list
(** Nodes currently holding a copy. *)

(** {2 Protocol statistics} *)

val transfers : t -> int  (** Copies shipped between nodes/home. *)

val invalidations : t -> int
val downgrades : t -> int  (** Exclusive → Shared on a remote read. *)

val messages : t -> int
(** All interconnect messages charged, coherence and
    {!charge_messages}. *)

val charge_messages : t -> messages:int -> unit
(** Charge [messages] non-coherence messages (two-phase-commit control
    traffic) at the same per-message latency, counted in {!messages}.
    This is the transport hook the cross-shard coordinator uses. *)
