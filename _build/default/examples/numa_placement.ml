(* Physical placement control on a DASH-like machine (paper §1).

   On a distributed-shared-memory machine, physical memory lives in
   modules attached to processor clusters: a reference to a local frame is
   several times faster than one that crosses the interconnect, even
   though the hardware presents a single consistent address space. The
   paper's point: with external page-cache management an application can
   ask the SPCM for frames in specific physical ranges and place each
   thread's data in its own cluster's module.

   We model two clusters, each owning half the physical address space,
   with two worker threads that sweep private working sets. Placement is
   either oblivious (frames granted in address order: thread 1's data
   lands mostly in cluster 0's module) or placement-controlled
   (Phys_range-constrained requests putting each thread's pages in its
   local module).

   Run with: dune exec examples/numa_placement.exe *)

module K = Epcm_kernel
module Seg = Epcm_segment
module Engine = Sim_engine

let pages_per_thread = 64
let sweeps = 200
let local_access_us = 0.4 (* per page sweep: DASH local read *)
let remote_access_us = 1.6 (* ~4x: crossing the interconnect *)

let build () =
  let machine = Hw_machine.create ~memory_bytes:(4 * 1024 * 1024) () in
  let kernel = K.create machine in
  let spcm = Spcm.create kernel () in
  (machine, kernel, spcm)

let module_bounds machine cluster =
  let half = Hw_machine.n_frames machine / 2 * Hw_machine.page_size machine in
  if cluster = 0 then (0, half) else (half, 2 * half)

(* Sweep the working set, charging local or remote access per page based
   on where its frame physically is. *)
let sweep machine kernel ~seg ~cluster =
  let lo, hi = module_bounds machine cluster in
  let total = ref 0.0 in
  for page = 0 to pages_per_thread - 1 do
    let attrs = K.get_page_attributes kernel ~seg ~page ~count:1 in
    match attrs.(0).K.pa_phys_addr with
    | Some addr ->
        total := !total +. (if addr >= lo && addr < hi then local_access_us else remote_access_us)
    | None -> ()
  done;
  !total

let run ~placed () =
  let machine, kernel, spcm = build () in
  let elapsed = Array.make 2 0.0 in
  let locality = Array.make 2 0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for cluster = 0 to 1 do
        let client =
          Spcm.register_client ~income:1_000_000.0 spcm
            ~name:(Printf.sprintf "thread-%d" cluster)
            ()
        in
        let seg =
          K.create_segment kernel ~name:(Printf.sprintf "ws-%d" cluster) ~pages:pages_per_thread ()
        in
        let constraint_ =
          if placed then begin
            let lo, hi = module_bounds machine cluster in
            Spcm.Phys_range { lo_addr = lo; hi_addr = hi }
          end
          else Spcm.Unconstrained
        in
        (match
           Spcm.request spcm ~client ~dst:seg ~dst_page:0 ~count:pages_per_thread ~constraint_ ()
         with
        | Spcm.Granted n when n = pages_per_thread -> ()
        | _ -> failwith "allocation failed");
        (* Count pages that landed in the local module. *)
        let lo, hi = module_bounds machine cluster in
        let attrs = K.get_page_attributes kernel ~seg ~page:0 ~count:pages_per_thread in
        Array.iter
          (fun a ->
            match a.K.pa_phys_addr with
            | Some addr when addr >= lo && addr < hi ->
                locality.(cluster) <- locality.(cluster) + 1
            | _ -> ())
          attrs;
        for _ = 1 to sweeps do
          elapsed.(cluster) <- elapsed.(cluster) +. sweep machine kernel ~seg ~cluster
        done
      done);
  Engine.run machine.Hw_machine.engine;
  (elapsed, locality)

let () =
  let oblivious, obl_local = run ~placed:false () in
  let placed, plc_local = run ~placed:true () in
  let total a = a.(0) +. a.(1) in
  Printf.printf
    "Two threads sweeping %d-page working sets %d times on a two-module DASH-like machine:\n\n"
    pages_per_thread sweeps;
  Printf.printf "  oblivious allocation : %8.1f ms memory time (locality %d/%d and %d/%d pages)\n"
    (total oblivious /. 1000.0) obl_local.(0) pages_per_thread obl_local.(1) pages_per_thread;
  Printf.printf "  placement control    : %8.1f ms memory time (locality %d/%d and %d/%d pages)\n"
    (total placed /. 1000.0) plc_local.(0) pages_per_thread plc_local.(1) pages_per_thread;
  Printf.printf "  speedup              : %.2fx from Phys_range-constrained allocation\n"
    (total oblivious /. total placed)
