type frame = {
  index : int;
  addr : int;
  color : int;
  mutable data : Hw_page_data.t;
  mutable owner : int;
}

type t = {
  page_size : int;
  n_colors : int;
  frames : frame array;
  (* Frame indices per color, ascending — precomputed once so color
     queries never rescan the frame array. *)
  by_color : int array array;
}

let create ?(n_colors = 16) ~page_size ~total_bytes () =
  if page_size <= 0 then invalid_arg "Hw_phys_mem.create: page_size must be positive";
  if n_colors <= 0 then invalid_arg "Hw_phys_mem.create: n_colors must be positive";
  let n = total_bytes / page_size in
  if n <= 0 then invalid_arg "Hw_phys_mem.create: need at least one page";
  let frames =
    Array.init n (fun i ->
        {
          index = i;
          addr = i * page_size;
          color = i mod n_colors;
          data = Hw_page_data.Zero;
          owner = -1;
        })
  in
  let by_color =
    Array.init n_colors (fun c ->
        if c >= n then [||]
        else Array.init (((n - 1 - c) / n_colors) + 1) (fun j -> c + (j * n_colors)))
  in
  { page_size; n_colors; frames; by_color }

let page_size t = t.page_size
let n_frames t = Array.length t.frames
let n_colors t = t.n_colors

let frame t i =
  if i < 0 || i >= Array.length t.frames then
    invalid_arg (Printf.sprintf "Hw_phys_mem.frame: index %d out of range" i);
  t.frames.(i)

let frames_of_color t color =
  if color < 0 || color >= t.n_colors then []
  else Array.fold_right (fun i acc -> i :: acc) t.by_color.(color) []

(* Frames are laid out contiguously (addr = index * page_size), so an
   address interval is an index interval: no scan, no intermediate list. *)
let frames_in_range t ~lo_addr ~hi_addr =
  let n = Array.length t.frames in
  if hi_addr <= 0 || hi_addr <= lo_addr then []
  else begin
    let lo = if lo_addr <= 0 then 0 else (lo_addr + t.page_size - 1) / t.page_size in
    let hi = min (n - 1) ((hi_addr - 1) / t.page_size) in
    let acc = ref [] in
    for i = hi downto lo do
      acc := i :: !acc
    done;
    !acc
  end

let zero_frame t i = (frame t i).data <- Hw_page_data.Zero

let copy_frame t ~src ~dst =
  let s = frame t src and d = frame t dst in
  d.data <- s.data

let owners_histogram t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun f ->
      let c = try Hashtbl.find tbl f.owner with Not_found -> 0 in
      Hashtbl.replace tbl f.owner (c + 1))
    t.frames;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
