(** The three Table 2–3 applications as VM-activity traces.

    File sizes come straight from the paper (§3.2): diff compares two
    200 KB files producing 240 KB of differences; uncompress expands an
    800 KB file to 2 MB; latex formats a 100 KB document into 23 pages.
    Heap sizes and compute times are calibrated so that the V++ manager
    activity matches Table 3 (379/197/250 manager calls, 372/195/238
    MigratePages) and the Ultrix elapsed times match Table 2; see
    EXPERIMENTS.md for the calibration notes. *)

val diff : Wl_trace.t
val uncompress : Wl_trace.t
val latex : Wl_trace.t
val all : Wl_trace.t list

(** Expected Table 3 targets, for tests. *)

val expected_manager_calls : Wl_trace.t -> int
val expected_migrate_calls : Wl_trace.t -> int
