(** Two-phase-commit coordinator for cross-shard transactions.

    The sharded engine ({!Db_shard}) runs a configurable fraction of its
    DebitCredit transactions against two shards. Atomicity across them is
    the classic presumed-abort 2PC (see the distributed-transaction
    protocol notes cited in the roadmap): the coordinator collects
    prepare votes from every participant, makes the outcome durable in
    its own write-ahead log, then distributes the decision.

    Participants are closures, so the coordinator is transport-agnostic:
    the shard engine wires prepares to real lock acquisition
    ({!Db_locks.acquire_timeout} — a timeout is a [Vote_abort]), WAL
    prepare records and {!Mgr_dsm} page reads, and gives the coordinator
    a [net] callback that charges interconnect latency per protocol
    message.

    The decision function itself is pure and exported separately
    ({!decide}) so the qcheck differential model in [test_shard.ml] can
    pin the effectful protocol against it. *)

type vote = Prepared | Vote_abort
type outcome = Committed | Aborted

type participant = {
  p_name : string;
  p_prepare : unit -> vote;
      (** Phase 1: do the work, write and force a prepare record, vote.
          A participant that votes [Vote_abort] must leave itself ready
          for [p_abort] (it will still be told the outcome). *)
  p_commit : unit -> unit;  (** Phase 2, commit decision. *)
  p_abort : unit -> unit;  (** Phase 2, abort decision. *)
}

type t

val create : wal:Db_wal.t -> ?net:(messages:int -> unit) -> unit -> t
(** [wal] holds the coordinator's commit records; forcing one is the
    commit point. [net] (default: nothing) is called once per protocol
    message batch with the message count. *)

val decide : vote list -> outcome
(** The pure commit rule: [Committed] iff every vote is [Prepared] (and
    there is at least one participant). *)

val run : t -> txn:int -> participant list -> outcome
(** Execute one two-phase commit inside a simulation process:
    prepare-request and vote messages per participant, the coordinator's
    durable commit record on a unanimous [Prepared] (a
    {!Db_wal.Flush_failed} downgrades the outcome to [Aborted] — the
    commit point was never reached), then decision and acknowledgement
    messages while each participant's [p_commit]/[p_abort] runs. Four
    messages per participant. *)

val recover : t -> txn:int -> outcome
(** Presumed abort: [Committed] iff the transaction's commit record is
    on the durable prefix of the coordinator log ([lsn <= flushed]);
    everything else — no record, or a record that never reached disk —
    recovers as [Aborted]. Consistent with what {!run} told the
    participants, whatever the interleaving of disk faults. *)

(** {2 Counters} *)

val started : t -> int
val committed : t -> int
val aborted : t -> int
val prepares : t -> int  (** Prepare requests sent (participants asked). *)

val messages : t -> int
(** Total protocol messages (prepare requests + votes + decisions +
    acks). *)
