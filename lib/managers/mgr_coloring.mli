(** Page-coloring segment manager.

    On a physically-indexed cache, the cache set a virtual page occupies
    is decided by the physical frame the kernel picked. A conventional
    kernel picks arbitrarily; this manager implements the paper's
    application-specific page coloring: virtual page [p] of a managed
    segment gets a frame of color [p mod n_colors], using the SPCM's
    color-constrained allocation ([GetPageAttributes] exposes physical
    addresses, so the manager can verify what it got).

    The placement policy runs against the {e live} cache geometry: on a
    machine carrying a cache model ({!Hw_machine.create} [?cache]), a
    frame's color is the set group its physical address actually maps to
    ({!Hw_cache.color_of} in the cache of the frame's tier) and
    [n_colors] defaults to {!Hw_machine.cache_colors}; without a cache it
    falls back to the static {!Hw_phys_mem} color tag. Before asking the
    source for a specific color, the manager probes availability through
    the per-color frame index ({!Hw_phys_mem.frames_of_color}, scoped by
    [?tier] when the manager is tier-bound), so a color the system has
    run out of degrades to best-effort without a futile round-trip.

    Unlike {!Mgr_free_pages}, the pool here is slot-addressed, not
    compact: frames of different colors coexist and are picked by
    color. *)

type t

type colored_source =
  color:int option -> dst:Epcm_segment.id -> dst_page:int -> count:int -> int
(** Like {!Mgr_generic.source} with an optional color constraint. *)

val create :
  Epcm_kernel.t ->
  ?n_colors:int ->
  ?tier:int ->
  source:colored_source ->
  pool_capacity:int ->
  unit ->
  t
(** [n_colors] defaults to the machine's live cache geometry
    ({!Hw_machine.cache_colors}) when a cache is attached, else to
    {!Hw_phys_mem.n_colors}. [tier] scopes the availability probe to one
    memory tier — a manager placing only fast-tier frames; the source it
    is given should then grant frames of that tier. *)

val manager_id : t -> Epcm_manager.id

val n_colors : t -> int
(** The color count the policy is running with (see {!create}). *)

val create_segment : t -> name:string -> pages:int -> Epcm_segment.id
(** Anonymous segment whose faults are served color-matched. *)

val color_of_frame : t -> frame:int -> int

val audit : t -> seg:Epcm_segment.id -> int * int
(** (correctly colored resident pages, total resident pages). With a
    cooperative SPCM the first equals the second. *)

val color_misses : t -> int
(** Faults the manager could not serve with the preferred color (SPCM had
    no frame of it) and served with an arbitrary frame instead. *)
