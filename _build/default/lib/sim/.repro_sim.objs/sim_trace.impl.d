lib/sim/sim_trace.ml: Buffer Format List Queue
