(** Free-page segment: the frame pool every segment manager keeps
    (paper §2.2).

    The segment is kept {e compact}: slots [0, available) hold frames,
    slots above are empty. Allocation takes frames from the top of the
    full region; reclaimed frames are put back there. Compactness means a
    multi-page allocation is a single contiguous [MigratePages] call, which
    is how the default manager's 16 KB append allocation stays one kernel
    operation. *)

type t

val create : Epcm_kernel.t -> name:string -> capacity:int -> t
(** Creates the underlying segment (initially empty — frames arrive from
    the system page cache manager or from reclamation). *)

val segment : t -> Epcm_segment.id
val capacity : t -> int
val available : t -> int
(** Frames ready to hand out. *)

val room : t -> int
(** Empty slots (capacity - available). *)

val grant_slot : t -> int option
(** Where the SPCM should migrate the next incoming frame: the first empty
    slot, or [None] when full. After an external party migrates a frame in
    at this slot, call {!note_granted}. *)

val note_granted : t -> int -> unit
(** Record that [n] frames were migrated into the segment at the grant
    position. *)

val take_to :
  t ->
  dst:Epcm_segment.id ->
  dst_page:int ->
  count:int ->
  ?tier:int ->
  ?set_flags:Epcm_flags.t ->
  ?clear_flags:Epcm_flags.t ->
  unit ->
  int
(** Migrate up to [count] frames (one kernel call) from the pool to
    [dst_page ..] of [dst]; returns how many moved (0 when empty).
    [tier] forwards to {!Epcm_kernel.migrate_pages}: a tier-pure pool
    (as {!Mgr_tiered} keeps) asserts every handed-out frame really is of
    its tier. *)

val put_from : t -> src:Epcm_segment.id -> src_page:int -> unit
(** Reclaim: migrate the frame at ([src], [src_page]) into the pool.
    Raises {!Epcm_kernel.Error} if the pool is full or the page empty. *)

val set_next_data : t -> Hw_page_data.t -> unit
(** Set the contents of the frame that the next single-page {!take_to}
    will hand out (the manager "copies the data into the previously
    allocated page frame", Figure 2). Raises if the pool is empty. *)

val peek_slot_data : t -> slot:int -> Hw_page_data.t
(** Contents of the frame at a full slot (for writeback after reclaim). *)

val release_to_initial : t -> count:int -> int
(** Give up to [count] pooled frames back to the kernel's initial segment
    (used when the SPCM claws memory back); returns how many. *)
