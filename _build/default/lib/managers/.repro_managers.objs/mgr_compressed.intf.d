lib/managers/mgr_compressed.mli: Epcm_kernel Epcm_manager Epcm_segment Hw_disk Mgr_generic
