module K = Epcm_kernel
module Seg = Epcm_segment
module Phys = Hw_phys_mem

type constraint_ =
  | Unconstrained
  | Color of int
  | Phys_range of { lo_addr : int; hi_addr : int }
  | Tier of int

type decision = Granted of int | Deferred | Refused

type client_id = int

type client_stats = {
  cs_requests : int;
  cs_granted_frames : int;
  cs_deferred : int;
  cs_refused : int;
  cs_holding : int;
}

type client = {
  cl_id : client_id;
  cl_name : string;
  cl_account : Spcm_market.account_id;
  cl_priority : float;
  mutable cl_manager : Epcm_manager.id option;
  mutable cl_requests : int;
  mutable cl_granted : int;
  mutable cl_deferred : int;
  mutable cl_refused : int;
  mutable cl_holding : int;
}

(* A blocked [acquire]: the waiter's process sleeps on [w_gate] until the
   pump has granted its full remainder (or refused it). The admission key
   under which it was queued is kept so a partially served head entry can
   be re-queued at its original position. *)
type waiter = {
  w_client : client_id;
  w_dst : Seg.id;
  mutable w_dst_page : int;
  mutable w_remaining : int;
  w_constraint : constraint_;
  w_gate : Sim_sync.Semaphore.t;
  mutable w_granted : int;
  w_priority : float;
  w_balance : float;
  mutable w_seq : int;
}

type t = {
  kern : K.t;
  market : Spcm_market.t;
  horizon : float;
  clients : (client_id, client) Hashtbl.t;
  mutable next_client : int;
  mutable demand : bool;
  admit : waiter Spcm_admit.t;
  mutable defers : int;
  (* The SPCM is a single-threaded server process: requests from
     concurrent clients are serialised, which also keeps multi-step grant
     scans atomic with respect to the simulation clock. *)
  serving : Sim_sync.Semaphore.t;
}

let create kern ?market ?(affordability_horizon = 10.0) () =
  let page_size = Hw_machine.page_size (K.machine kern) in
  {
    kern;
    market = Spcm_market.create ?config:market ~page_size ();
    horizon = affordability_horizon;
    clients = Hashtbl.create 16;
    next_client = 1;
    demand = false;
    admit = Spcm_admit.create ();
    defers = 0;
    serving = Sim_sync.Semaphore.create 1;
  }

let kernel t = t.kern
let market t = t.market
let now_us t = Hw_machine.now (K.machine t.kern)

let register_client ?income ?(priority = 0.0) ?manager t ~name () =
  let id = t.next_client in
  t.next_client <- t.next_client + 1;
  let account = Spcm_market.open_account ?income t.market ~name ~now_us:(now_us t) in
  Hashtbl.replace t.clients id
    {
      cl_id = id;
      cl_name = name;
      cl_account = account;
      cl_priority = priority;
      cl_manager = manager;
      cl_requests = 0;
      cl_granted = 0;
      cl_deferred = 0;
      cl_refused = 0;
      cl_holding = 0;
    };
  id

let client t id =
  match Hashtbl.find_opt t.clients id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Spcm.client: no client %d" id)

let set_client_manager t id mid = (client t id).cl_manager <- Some mid

let account_of t id = Spcm_market.account t.market (client t id).cl_account

let settle t = Spcm_market.settle t.market ~now_us:(now_us t)

let pending_demand t = t.demand
let pending_acquires t = Spcm_admit.size t.admit
let defer_events t = t.defers

(* The SPCM is a server process: each request costs an IPC round trip. *)
let charge_rpc t =
  let c = (K.machine t.kern).Hw_machine.cost in
  Hw_machine.charge ~label:"spcm/rpc" (K.machine t.kern)
    (c.Hw_cost.ipc_send +. c.Hw_cost.context_switch +. c.Hw_cost.manager_server_dispatch
   +. c.Hw_cost.ipc_reply +. c.Hw_cost.context_switch)

(* Free frames live in the kernel's initial segment. *)
let free_slots t ~constraint_ ~limit =
  let init = K.segment t.kern (K.initial_segment t.kern) in
  let mem = (K.machine t.kern).Hw_machine.mem in
  let matches frame_idx =
    match constraint_ with
    | Unconstrained -> true
    | Color c -> (Phys.frame mem frame_idx).Phys.color = c
    | Phys_range { lo_addr; hi_addr } ->
        let addr = (Phys.frame mem frame_idx).Phys.addr in
        addr >= lo_addr && addr < hi_addr
    | Tier k -> Phys.tier_of_frame mem frame_idx = k
  in
  let acc = ref [] and found = ref 0 in
  let n = Seg.length init in
  let slot = ref 0 in
  while !found < limit && !slot < n do
    (match (Seg.page init !slot).Seg.frame with
    | Some f when matches f ->
        acc := !slot :: !acc;
        incr found
    | Some _ | None -> ());
    incr slot
  done;
  List.rev !acc

let free_frames t =
  Seg.resident_pages (K.segment t.kern (K.initial_segment t.kern))

let grant_slots t cl ~dst ~dst_page slots =
  let init = K.initial_segment t.kern in
  (* Contiguous runs of free slots collapse into one MigratePages call
     each, amortising the syscall + migrate base cost — at thousands of
     grants per second the per-call overhead would otherwise dominate the
     SPCM server's occupancy. *)
  let rec go slots di =
    match slots with
    | [] -> ()
    | s0 :: rest ->
        let len = ref 1 and rest = ref rest and prev = ref s0 in
        let continue_ = ref true in
        while !continue_ do
          match !rest with
          | s :: tl when s = !prev + 1 ->
              prev := s;
              incr len;
              rest := tl
          | _ -> continue_ := false
        done;
        K.migrate_pages t.kern ~src:init ~dst ~src_page:s0 ~dst_page:di ~count:!len ();
        go !rest (di + !len)
  in
  go slots dst_page;
  let n = List.length slots in
  cl.cl_granted <- cl.cl_granted + n;
  cl.cl_holding <- cl.cl_holding + n;
  Spcm_market.note_holding_change t.market cl.cl_account ~delta_pages:n ~now_us:(now_us t);
  n

let reclaim_from_clients t ~need ~exempt =
  let recovered = ref 0 in
  let victims =
    Hashtbl.fold (fun _ c acc -> c :: acc) t.clients []
    |> List.filter (fun c -> Some c.cl_id <> exempt && c.cl_manager <> None && c.cl_holding > 0)
    (* Take from the largest holders first. *)
    |> List.sort (fun a b -> compare b.cl_holding a.cl_holding)
  in
  List.iter
    (fun c ->
      if !recovered < need then
        match c.cl_manager with
        | None -> ()
        | Some mid ->
            let m = K.manager t.kern mid in
            let ask = min (need - !recovered) c.cl_holding in
            let returned = m.Epcm_manager.on_pressure ~pages:ask in
            let returned = max 0 (min returned ask) in
            c.cl_holding <- c.cl_holding - returned;
            Spcm_market.note_holding_change t.market c.cl_account ~delta_pages:(-returned)
              ~now_us:(now_us t);
            recovered := !recovered + returned)
    victims;
  !recovered

let force_bankrupt_returns t =
  let recovered = ref 0 in
  Hashtbl.iter
    (fun _ c ->
      if c.cl_holding > 0 && Spcm_market.bankrupt t.market c.cl_account then
        match c.cl_manager with
        | None -> ()
        | Some mid ->
            let m = K.manager t.kern mid in
            let returned = m.Epcm_manager.on_pressure ~pages:c.cl_holding in
            let returned = max 0 (min returned c.cl_holding) in
            c.cl_holding <- c.cl_holding - returned;
            Spcm_market.note_holding_change t.market c.cl_account ~delta_pages:(-returned)
              ~now_us:(now_us t);
            recovered := !recovered + returned)
    t.clients;
  !recovered

let serialised t f =
  Sim_sync.Semaphore.acquire t.serving;
  Fun.protect ~finally:(fun () -> Sim_sync.Semaphore.release t.serving) f

let set_market_demand t d = Spcm_market.set_demand t.market d ~now_us:(now_us t)

(* Serve queued waiters in admission order while the pool can cover the
   head's full remainder (all-or-nothing, so a blocked waiter never parks
   on a partial grant). A constrained head whose slot scan comes short
   keeps its place and stops the pump. Runs inside [serialised]. *)
let rec pump t =
  match Spcm_admit.peek t.admit with
  | None -> ()
  | Some (_, _, _, w) when free_frames t >= w.w_remaining -> (
      ignore (Spcm_admit.pop t.admit);
      let cl = client t w.w_client in
      Spcm_market.settle_lazy t.market cl.cl_account ~now_us:(now_us t);
      if
        not
          (Spcm_market.can_afford t.market cl.cl_account ~pages:w.w_remaining
             ~seconds:t.horizon)
      then begin
        (* The balance drained while queued: refuse rather than grant
           memory the account cannot carry. *)
        cl.cl_refused <- cl.cl_refused + 1;
        w.w_remaining <- 0;
        Sim_sync.Semaphore.release w.w_gate;
        pump t
      end
      else
        let slots = free_slots t ~constraint_:w.w_constraint ~limit:w.w_remaining in
        let n = grant_slots t cl ~dst:w.w_dst ~dst_page:w.w_dst_page slots in
        w.w_granted <- w.w_granted + n;
        w.w_dst_page <- w.w_dst_page + n;
        w.w_remaining <- w.w_remaining - n;
        if w.w_remaining = 0 then begin
          Sim_sync.Semaphore.release w.w_gate;
          pump t
        end
        else
          (* Only a constraint can leave a shortfall here; keep the
             waiter's position and wait for matching frames. *)
          Spcm_admit.push_seq t.admit ~priority:w.w_priority ~balance:w.w_balance ~seq:w.w_seq w)
  | Some _ -> ()

let note_free_frames t =
  if free_frames t > 0 && Spcm_admit.is_empty t.admit then begin
    t.demand <- false;
    set_market_demand t false
  end

let request t ~client:cid ~dst ~dst_page ~count ?(constraint_ = Unconstrained) () =
  if count <= 0 then invalid_arg "Spcm.request: count must be positive";
  serialised t @@ fun () ->
  let cl = client t cid in
  cl.cl_requests <- cl.cl_requests + 1;
  charge_rpc t;
  t.demand <- true;
  set_market_demand t true;
  Spcm_market.settle_lazy t.market cl.cl_account ~now_us:(now_us t);
  let affordable =
    Spcm_market.can_afford t.market cl.cl_account ~pages:count ~seconds:t.horizon
  in
  if not affordable then begin
    cl.cl_refused <- cl.cl_refused + 1;
    Refused
  end
  else begin
    let slots = free_slots t ~constraint_ ~limit:count in
    let slots =
      if List.length slots >= count then slots
      else begin
        (* Short: claw back from other clients, then rescan. The paper has
           the SPCM "force the return of memory" when needed. *)
        let missing = count - List.length slots in
        ignore (reclaim_from_clients t ~need:missing ~exempt:(Some cid));
        free_slots t ~constraint_ ~limit:count
      end
    in
    match slots with
    | [] ->
        cl.cl_deferred <- cl.cl_deferred + 1;
        t.defers <- t.defers + 1;
        Deferred
    | _ ->
        let n = grant_slots t cl ~dst ~dst_page slots in
        Granted n
  end

let enqueue t cl ~dst ~dst_page ~remaining ~constraint_ ~granted =
  cl.cl_deferred <- cl.cl_deferred + 1;
  t.defers <- t.defers + 1;
  let balance = (Spcm_market.account t.market cl.cl_account).Spcm_market.balance in
  let w =
    {
      w_client = cl.cl_id;
      w_dst = dst;
      w_dst_page = dst_page;
      w_remaining = remaining;
      w_constraint = constraint_;
      w_gate = Sim_sync.Semaphore.create 0;
      w_granted = granted;
      w_priority = cl.cl_priority;
      w_balance = balance;
      w_seq = 0;
    }
  in
  w.w_seq <- Spcm_admit.push t.admit ~priority:w.w_priority ~balance:w.w_balance w;
  w

let acquire t ~client:cid ~dst ~dst_page ~count ?(constraint_ = Unconstrained) () =
  if count <= 0 then invalid_arg "Spcm.acquire: count must be positive";
  let outcome =
    serialised t @@ fun () ->
    let cl = client t cid in
    cl.cl_requests <- cl.cl_requests + 1;
    charge_rpc t;
    t.demand <- true;
    set_market_demand t true;
    Spcm_market.settle_lazy t.market cl.cl_account ~now_us:(now_us t);
    if not (Spcm_market.can_afford t.market cl.cl_account ~pages:count ~seconds:t.horizon)
    then begin
      cl.cl_refused <- cl.cl_refused + 1;
      `Done 0
    end
    else if free_frames t >= count then begin
      let slots = free_slots t ~constraint_ ~limit:count in
      if List.length slots = count then `Done (grant_slots t cl ~dst ~dst_page slots)
      else
        (* Enough frames but not of the right color/range: take the
           matching ones now and queue for the rest. *)
        let n = grant_slots t cl ~dst ~dst_page slots in
        `Wait (enqueue t cl ~dst ~dst_page:(dst_page + n) ~remaining:(count - n) ~constraint_
                 ~granted:n)
    end
    else `Wait (enqueue t cl ~dst ~dst_page ~remaining:count ~constraint_ ~granted:0)
  in
  match outcome with
  | `Done n -> n
  | `Wait w ->
      Sim_sync.Semaphore.acquire w.w_gate;
      w.w_granted

let refuse_pending t =
  serialised t @@ fun () ->
  let n = ref 0 in
  let rec drain () =
    match Spcm_admit.pop t.admit with
    | None -> ()
    | Some (_, _, _, w) ->
        let cl = client t w.w_client in
        cl.cl_refused <- cl.cl_refused + 1;
        w.w_remaining <- 0;
        incr n;
        Sim_sync.Semaphore.release w.w_gate;
        drain ()
  in
  drain ();
  note_free_frames t;
  !n

let sweep t =
  serialised t @@ fun () ->
  let recovered = ref (force_bankrupt_returns t) in
  (match Spcm_admit.peek t.admit with
  | Some (_, _, _, w) when free_frames t < w.w_remaining ->
      recovered :=
        !recovered
        + reclaim_from_clients t ~need:(w.w_remaining - free_frames t) ~exempt:(Some w.w_client)
  | Some _ | None -> ());
  pump t;
  note_free_frames t;
  !recovered

let return_pages t ~client:cid ~seg ~page ~count =
  serialised t @@ fun () ->
  let cl = client t cid in
  let before = free_frames t in
  K.release_frames t.kern ~seg ~page ~count;
  let returned = free_frames t - before in
  let returned = min returned cl.cl_holding in
  cl.cl_holding <- cl.cl_holding - returned;
  Spcm_market.note_holding_change t.market cl.cl_account ~delta_pages:(-returned)
    ~now_us:(now_us t);
  pump t;
  note_free_frames t

let note_returned t ~client:cid ~count =
  serialised t @@ fun () ->
  let cl = client t cid in
  let returned = min count cl.cl_holding in
  cl.cl_holding <- cl.cl_holding - returned;
  Spcm_market.note_holding_change t.market cl.cl_account ~delta_pages:(-returned)
    ~now_us:(now_us t);
  pump t;
  note_free_frames t

let source_for t cid ~dst ~dst_page ~count =
  match request t ~client:cid ~dst ~dst_page ~count () with
  | Granted n -> n
  | Deferred | Refused -> 0

let client_stats t cid =
  let c = client t cid in
  {
    cs_requests = c.cl_requests;
    cs_granted_frames = c.cl_granted;
    cs_deferred = c.cl_deferred;
    cs_refused = c.cl_refused;
    cs_holding = c.cl_holding;
  }
