(* Out-of-core scan with application-directed read-ahead (paper §1's
   MP3D-style example).

   A computation sweeps a dataset larger than memory, spending a fixed
   amount of CPU per page. Obliviously, every page costs a demand fault to
   disk on top of the compute. With external page-cache management the
   application prefetches ahead of the sweep and discards consumed pages
   (dead intermediate data: no writeback), overlapping disk latency with
   computation.

   Run with: dune exec examples/prefetch_scan.exe *)

module K = Epcm_kernel
module Seg = Epcm_segment
module Engine = Sim_engine

let dataset_pages = 512 (* 2 MB *)
let compute_per_page_us = 12_000.0 (* ~disk access time: good overlap potential *)
let prefetch_depth = 8

let build () =
  let machine = Hw_machine.create ~memory_bytes:(8 * 1024 * 1024) () in
  let kernel = K.create machine in
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let source ~dst ~dst_page ~count =
    let granted = ref 0 in
    let init_seg = K.segment kernel init in
    while !granted < count && !next < Seg.length init_seg do
      (if (Seg.page init_seg !next).Seg.frame <> None then begin
         K.migrate_pages kernel ~src:init ~dst ~src_page:!next ~dst_page:(dst_page + !granted)
           ~count:1 ();
         incr granted
       end);
      incr next
    done;
    !granted
  in
  let mgr = Mgr_prefetch.create kernel ~source ~pool_capacity:256 () in
  let seg = Mgr_prefetch.create_file_segment mgr ~name:"dataset" ~file_id:1 ~pages:dataset_pages in
  (machine, kernel, mgr, seg)

let scan ~use_prefetch () =
  let machine, kernel, mgr, seg = build () in
  let elapsed = ref 0.0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      let t0 = Engine.time () in
      for page = 0 to dataset_pages - 1 do
        if use_prefetch then
          Mgr_prefetch.prefetch mgr ~seg ~page:(page + 1)
            ~count:(min prefetch_depth (dataset_pages - page - 1));
        (* Demand-touch the current page (faults if the prefetcher has not
           got there yet), then compute on it. *)
        K.touch kernel ~space:seg ~page ~access:Epcm_manager.Read;
        Engine.delay compute_per_page_us;
        (* The consumed page is dead intermediate data: discard, saving
           both memory and writeback bandwidth. *)
        if use_prefetch && page > 4 then Mgr_prefetch.discard mgr ~seg ~page:(page - 4) ~count:1
      done;
      elapsed := Engine.time () -. t0);
  Engine.run machine.Hw_machine.engine;
  (!elapsed /. 1_000_000.0, mgr, machine)

let () =
  let oblivious_s, mgr_o, machine_o = scan ~use_prefetch:false () in
  let prefetch_s, mgr_p, _machine_p = scan ~use_prefetch:true () in
  Printf.printf "Scanning %d pages (%.0f us CPU per page) through a %d-page window:\n\n"
    dataset_pages compute_per_page_us 256;
  Printf.printf "  demand paging   : %6.2f s  (%d inline disk fills, %d writes)\n" oblivious_s
    (Mgr_prefetch.demand_fills mgr_o)
    (Hw_disk.writes machine_o.Hw_machine.disk);
  Printf.printf "  with prefetch   : %6.2f s  (%d prefetches, %d faults absorbed in flight, %d inline fills, %d discards)\n"
    prefetch_s
    (Mgr_prefetch.prefetches_started mgr_p)
    (Mgr_prefetch.absorbed_faults mgr_p)
    (Mgr_prefetch.demand_fills mgr_p)
    (Mgr_prefetch.discards mgr_p);
  Printf.printf "  speedup         : %.2fx (disk latency overlapped with compute)\n"
    (oblivious_s /. prefetch_s)
