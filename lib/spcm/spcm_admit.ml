type 'a entry = { prio : float; bal : float; seq : int; payload : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int; mutable next_seq : int }

let create () = { arr = [||]; len = 0; next_seq = 0 }
let is_empty t = t.len = 0
let size t = t.len

(* Max-order on (prio, bal), FIFO (min seq) on full ties. *)
let before a b =
  a.prio > b.prio
  || (a.prio = b.prio && (a.bal > b.bal || (a.bal = b.bal && a.seq < b.seq)))

let swap t i j =
  let tmp = t.arr.(i) in
  t.arr.(i) <- t.arr.(j);
  t.arr.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.arr.(i) t.arr.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let first = ref i in
  if l < t.len && before t.arr.(l) t.arr.(!first) then first := l;
  if r < t.len && before t.arr.(r) t.arr.(!first) then first := r;
  if !first <> i then begin
    swap t i !first;
    sift_down t !first
  end

let insert t e =
  if t.len = Array.length t.arr then begin
    let cap = if t.len = 0 then 16 else 2 * t.len in
    let bigger = Array.make cap e in
    Array.blit t.arr 0 bigger 0 t.len;
    t.arr <- bigger
  end;
  t.arr.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let push t ~priority ~balance payload =
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  insert t { prio = priority; bal = balance; seq; payload };
  seq

let push_seq t ~priority ~balance ~seq payload =
  if seq >= t.next_seq then t.next_seq <- seq + 1;
  insert t { prio = priority; bal = balance; seq; payload }

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.arr.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.arr.(0) <- t.arr.(t.len);
      sift_down t 0
    end;
    Some (top.prio, top.bal, top.seq, top.payload)
  end

let peek t =
  if t.len = 0 then None
  else
    let top = t.arr.(0) in
    Some (top.prio, top.bal, top.seq, top.payload)

let clear t =
  t.arr <- [||];
  t.len <- 0
