lib/experiments/exp_figures.ml: Epcm_kernel Epcm_manager Epcm_segment Exp_report Hw_machine Mgr_backing Mgr_generic Sim_trace String
