type indexing = No_index | Index_in_memory | Index_with_paging | Index_regeneration

type t = {
  label : string;
  indexing : indexing;
  seed : int64;
  duration_s : float;
  warmup_s : float;
  tps : float;
  join_fraction : float;
  n_cpus : int;
  dc_service_ms : float;
  join_index_ms : float;
  join_scan_ms : float;
  regen_ms : float;
  n_indices : int;
  index_pages : int;
  accounts_pages : int;
  summary_pages : int;
  dc_touch_pages : int;
  p_evicted_index_needed : float;
}

let base =
  {
    label = "base";
    indexing = Index_in_memory;
    seed = 424242L;
    duration_s = 300.0;
    warmup_s = 20.0;
    tps = 40.0;
    join_fraction = 0.05;
    n_cpus = 6;
    dc_service_ms = 18.0;
    join_index_ms = 450.0;
    join_scan_ms = 2400.0;
    regen_ms = 350.0;
    n_indices = 12;
    index_pages = 256;
    accounts_pages = 4096;
    summary_pages = 64;
    dc_touch_pages = 4;
    p_evicted_index_needed = 0.002;
  }

let no_index = { base with label = "No index"; indexing = No_index }
let index_in_memory = { base with label = "Index in memory"; indexing = Index_in_memory }
let index_with_paging = { base with label = "Index with paging"; indexing = Index_with_paging }

let index_regeneration =
  { base with label = "Index regeneration"; indexing = Index_regeneration }

let all_paper_configs = [ no_index; index_in_memory; index_with_paging; index_regeneration ]

let indexing_label = function
  | No_index -> "No index"
  | Index_in_memory -> "Index in memory"
  | Index_with_paging -> "Index with paging"
  | Index_regeneration -> "Index regeneration"
