lib/sim/sim_sync.mli: Sim_engine
