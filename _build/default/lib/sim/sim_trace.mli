(** Structured event tracing.

    Used by the Figure 2 reproduction to record the exact fault-handling
    protocol steps, and by tests to assert on kernel/manager interaction
    sequences. Disabled traces cost one branch per emit. *)

type t

type event = { time : float; tag : string; detail : string }

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** [capacity] bounds retained events (oldest dropped first);
    default 65536. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val emit : t -> time:float -> tag:string -> string -> unit

val events : t -> event list
(** Oldest first. *)

val tags : t -> string list
(** Just the tag sequence, oldest first — convenient for protocol
    assertions. *)

val clear : t -> unit
val dropped : t -> int

val pp_event : Format.formatter -> event -> unit
val dump : t -> string
