lib/workloads/wl_run.mli: Wl_trace
