(** Ablations of the design choices DESIGN.md calls out.

    Each ablation varies one mechanism the paper fixes and shows why the
    paper's choice is where it is:

    1. {b Append allocation batch} — the UCDS allocates file appends in
       16 KB units; sweeping the batch size shows the manager-call count
       and VM overhead falling with batch size, with diminishing returns
       past 4 pages.
    2. {b Fault delivery mode} — the same workload under an in-process
       manager vs a separate-process server: the 107-vs-379 µs gap at
       application scale, i.e. why a DBMS runs its manager in-process
       while oblivious programs can afford the default server.
    3. {b Clock-sampling reprotect batch} — batched re-enabling of
       protected pages amortises sampling faults; batch 1 is the naive
       mprotect-per-page cost.
    4. {b Regeneration/paging crossover} — sweeping the index
       regeneration compute time against a fixed ~3.6 s page-in shows
       where discard-and-regenerate stops beating paging: the space-time
       tradeoff the paper says applications must be allowed to make.
    5. {b Eviction destination} — reclaim-to-disk vs
       reclaim-to-compressed-pool vs discard-and-recompute for an
       over-committed working set. *)

type row = { cells : string list }

type ablation = {
  a_name : string;
  a_question : string;
  header : string list;
  rows : row list;
  finding : string;
  holds : bool;  (** Did the expected direction hold in this run? *)
}

val append_batch : unit -> ablation
val delivery_mode : unit -> ablation
val reprotect_batch : unit -> ablation
val regeneration_crossover : unit -> ablation
val eviction_destination : unit -> ablation

val run_all : unit -> ablation list
val render : ablation -> string
