(* Semantics and timing tests for the epcm kernel: segments, bindings,
   MigratePages / ModifyPageFlags / GetPageAttributes, fault delivery,
   copy-on-write and the UIO block interface. *)

module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags
module Machine = Hw_machine
module Engine = Sim_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

let small_machine ?(frames = 64) ?(trace = false) () =
  Machine.create ~memory_bytes:(frames * 4096) ~trace ()

let kernel ?frames ?trace () = K.create (small_machine ?frames ?trace ())

(* A trivial in-process manager that serves every missing/cow fault from a
   stash of initial-segment frames and records the faults it saw. *)
let spy_manager ?(mode = `In_process) k =
  let seen = ref [] in
  let kern = k in
  let init = K.initial_segment kern in
  let next_init = ref 0 in
  let mid =
    K.register_manager kern ~name:"spy" ~mode
      ~on_fault:(fun f ->
        seen := f :: !seen;
        match f.Mgr.f_kind with
        | Mgr.Missing | Mgr.Cow_write ->
            (* Take the next resident initial-segment slot. *)
            let rec find i =
              if i >= Seg.length (K.segment kern init) then Alcotest.fail "out of frames"
              else if (Seg.page (K.segment kern init) i).Seg.frame <> None then i
              else find (i + 1)
            in
            let slot = find !next_init in
            next_init := slot + 1;
            K.migrate_pages kern ~src:init ~dst:f.Mgr.f_seg ~src_page:slot
              ~dst_page:f.Mgr.f_page ~count:1 ()
        | Mgr.Protection ->
            K.modify_page_flags kern ~seg:f.Mgr.f_seg ~page:f.Mgr.f_page ~count:1
              ~clear_flags:(Flags.of_list [ Flags.no_access; Flags.read_only ])
              ())
      ()
  in
  (mid, seen)

(* ------------------------------------------------------------------ *)
(* Boot state and frame accounting                                     *)
(* ------------------------------------------------------------------ *)

let test_initial_segment () =
  let k = kernel ~frames:32 () in
  let init = K.segment k (K.initial_segment k) in
  check_int "initial segment holds every frame" 32 (Seg.resident_pages init);
  (* Frames are in physical-address order. *)
  let attrs = K.get_page_attributes k ~seg:(K.initial_segment k) ~page:0 ~count:32 in
  Array.iteri
    (fun i a ->
      check_int (Printf.sprintf "frame %d identity" i) i (Option.get a.K.pa_frame);
      check_int "phys addr" (i * 4096) (Option.get a.K.pa_phys_addr))
    attrs

let total_resident k =
  K.frame_owner_total k

let test_frame_conservation_after_migrates () =
  let k = kernel ~frames:32 () in
  let s = K.create_segment k ~name:"app" ~pages:10 () in
  K.migrate_pages k ~src:(K.initial_segment k) ~dst:s ~src_page:0 ~dst_page:0 ~count:5 ();
  check_int "conserved" 32 (total_resident k);
  check_int "segment got 5" 5 (Seg.resident_pages (K.segment k s));
  K.release_frames k ~seg:s ~page:0 ~count:5;
  check_int "conserved after release" 32 (total_resident k);
  check_int "initial whole again" 32 (Seg.resident_pages (K.segment k (K.initial_segment k)))

(* ------------------------------------------------------------------ *)
(* MigratePages semantics                                              *)
(* ------------------------------------------------------------------ *)

let test_migrate_moves_data_and_flags () =
  let k = kernel () in
  let a = K.create_segment k ~name:"a" ~pages:4 () in
  let b = K.create_segment k ~name:"b" ~pages:4 () in
  K.migrate_pages k ~src:(K.initial_segment k) ~dst:a ~src_page:0 ~dst_page:2 ~count:1 ();
  (* Put data in and dirty the page. *)
  K.uio_write k ~seg:a ~page:2 (Hw_page_data.of_string "payload");
  let before = K.get_page_attributes k ~seg:a ~page:2 ~count:1 in
  check_bool "dirty after write" true (Flags.mem before.(0).K.pa_flags Flags.dirty);
  K.migrate_pages k ~src:a ~dst:b ~src_page:2 ~dst_page:0 ~count:1 ();
  let a_attr = K.get_page_attributes k ~seg:a ~page:2 ~count:1 in
  let b_attr = K.get_page_attributes k ~seg:b ~page:0 ~count:1 in
  check_bool "source slot empty" true (a_attr.(0).K.pa_frame = None);
  check_bool "dirty travelled with the frame" true (Flags.mem b_attr.(0).K.pa_flags Flags.dirty);
  let data = K.uio_read k ~seg:b ~page:0 in
  check_bool "data travelled" true (Hw_page_data.equal data (Hw_page_data.of_string "payload"))

let test_migrate_set_clear_flags () =
  let k = kernel () in
  let a = K.create_segment k ~name:"a" ~pages:2 () in
  K.migrate_pages k ~src:(K.initial_segment k) ~dst:a ~src_page:0 ~dst_page:0 ~count:1
    ~set_flags:(Flags.of_list [ Flags.pinned ])
    ();
  let attr = K.get_page_attributes k ~seg:a ~page:0 ~count:1 in
  check_bool "pinned set by migrate" true (Flags.mem attr.(0).K.pa_flags Flags.pinned)

let test_migrate_errors () =
  let k = kernel () in
  let a = K.create_segment k ~name:"a" ~pages:4 () in
  let b = K.create_segment k ~name:"b" ~pages:4 () in
  K.migrate_pages k ~src:(K.initial_segment k) ~dst:a ~src_page:0 ~dst_page:0 ~count:1 ();
  K.migrate_pages k ~src:(K.initial_segment k) ~dst:b ~src_page:1 ~dst_page:0 ~count:1 ();
  (let f () = K.migrate_pages k ~src:a ~dst:b ~src_page:0 ~dst_page:0 ~count:1 () in
   match f () with
   | () -> Alcotest.fail "expected Frame_present"
   | exception K.Error (K.Frame_present { seg; page }) ->
       check_int "seg" b seg;
       check_int "page" 0 page);
  (let f () = K.migrate_pages k ~src:a ~dst:b ~src_page:3 ~dst_page:1 ~count:1 () in
   match f () with
   | () -> Alcotest.fail "expected No_frame"
   | exception K.Error (K.No_frame _) -> ());
  match K.migrate_pages k ~src:a ~dst:b ~src_page:0 ~dst_page:3 ~count:2 () with
  | () -> Alcotest.fail "expected Page_out_of_range"
  | exception K.Error (K.Page_out_of_range _) -> ()

let test_migrate_counts () =
  let k = kernel () in
  let a = K.create_segment k ~name:"a" ~pages:8 () in
  K.migrate_pages k ~src:(K.initial_segment k) ~dst:a ~src_page:0 ~dst_page:0 ~count:4 ();
  check_int "one call" 1 (K.stats k).K.migrate_calls;
  check_int "four pages" 4 (K.stats k).K.migrated_pages

(* ------------------------------------------------------------------ *)
(* ModifyPageFlags / GetPageAttributes                                 *)
(* ------------------------------------------------------------------ *)

let test_modify_flags_dirty_control () =
  (* The paper's point: managers can clear even the dirty flag, which
     mprotect-style interfaces cannot. *)
  let k = kernel () in
  let a = K.create_segment k ~name:"a" ~pages:1 () in
  K.migrate_pages k ~src:(K.initial_segment k) ~dst:a ~src_page:0 ~dst_page:0 ~count:1 ();
  K.uio_write k ~seg:a ~page:0 (Hw_page_data.of_string "x");
  check_bool "dirty" true
    (Flags.mem (K.get_page_attributes k ~seg:a ~page:0 ~count:1).(0).K.pa_flags Flags.dirty);
  K.modify_page_flags k ~seg:a ~page:0 ~count:1 ~clear_flags:Flags.dirty ();
  check_bool "dirty cleared without writeback" false
    (Flags.mem (K.get_page_attributes k ~seg:a ~page:0 ~count:1).(0).K.pa_flags Flags.dirty)

let test_get_attributes_range () =
  let k = kernel () in
  let a = K.create_segment k ~name:"a" ~pages:6 () in
  K.migrate_pages k ~src:(K.initial_segment k) ~dst:a ~src_page:0 ~dst_page:1 ~count:2 ();
  let attrs = K.get_page_attributes k ~seg:a ~page:0 ~count:6 in
  check_int "six entries" 6 (Array.length attrs);
  check_bool "page 0 empty" true (attrs.(0).K.pa_frame = None);
  check_bool "page 1 mapped" true (attrs.(1).K.pa_frame <> None);
  check_bool "page 3 empty" true (attrs.(3).K.pa_frame = None)

(* ------------------------------------------------------------------ *)
(* Fault delivery                                                      *)
(* ------------------------------------------------------------------ *)

let test_fault_no_manager () =
  let k = kernel () in
  let a = K.create_segment k ~name:"a" ~pages:1 () in
  match K.touch k ~space:a ~page:0 ~access:Mgr.Read with
  | () -> Alcotest.fail "expected No_manager"
  | exception K.Error (K.No_manager seg) -> check_int "segment" a seg

let test_fault_resolved_by_manager () =
  let k = kernel () in
  let mid, seen = spy_manager k in
  let a = K.create_segment k ~name:"a" ~pages:4 () in
  K.set_segment_manager k a mid;
  K.touch k ~space:a ~page:2 ~access:Mgr.Write;
  check_int "one fault" 1 (List.length !seen);
  let f = List.hd !seen in
  check_bool "missing kind" true (f.Mgr.f_kind = Mgr.Missing);
  check_int "page" 2 f.Mgr.f_page;
  check_int "manager calls counted" 1 (K.manager_calls_of k mid);
  (* Second touch: no fault. *)
  K.touch k ~space:a ~page:2 ~access:Mgr.Read;
  check_int "still one fault" 1 (List.length !seen);
  (* Write set dirty and referenced. *)
  let attr = K.get_page_attributes k ~seg:a ~page:2 ~count:1 in
  check_bool "dirty" true (Flags.mem attr.(0).K.pa_flags Flags.dirty);
  check_bool "referenced" true (Flags.mem attr.(0).K.pa_flags Flags.referenced)

let test_unresolved_fault () =
  let k = kernel () in
  let mid =
    K.register_manager k ~name:"lazy" ~mode:`In_process ~on_fault:(fun _ -> ()) ()
  in
  let a = K.create_segment k ~name:"a" ~pages:1 () in
  K.set_segment_manager k a mid;
  match K.touch k ~space:a ~page:0 ~access:Mgr.Read with
  | () -> Alcotest.fail "expected Unresolved_fault"
  | exception K.Error (K.Unresolved_fault _) -> ()

let test_protection_fault_cycle () =
  let k = kernel () in
  let mid, seen = spy_manager k in
  let a = K.create_segment k ~name:"a" ~pages:1 () in
  K.set_segment_manager k a mid;
  K.touch k ~space:a ~page:0 ~access:Mgr.Read;
  (* Protect, then touch: protection fault, manager clears, reference
     succeeds. *)
  K.modify_page_flags k ~seg:a ~page:0 ~count:1 ~set_flags:Flags.no_access ();
  K.touch k ~space:a ~page:0 ~access:Mgr.Read;
  let kinds = List.map (fun f -> f.Mgr.f_kind) !seen in
  check_bool "protection fault delivered" true (List.mem Mgr.Protection kinds);
  check_int "protection faults counted" 1 (K.stats k).K.faults_protection

let test_read_only_write_fault () =
  let k = kernel () in
  let mid, seen = spy_manager k in
  let a = K.create_segment k ~name:"a" ~pages:1 () in
  K.set_segment_manager k a mid;
  K.touch k ~space:a ~page:0 ~access:Mgr.Read;
  K.modify_page_flags k ~seg:a ~page:0 ~count:1 ~set_flags:Flags.read_only ();
  (* Reads are fine. *)
  K.touch k ~space:a ~page:0 ~access:Mgr.Read;
  let before = List.length !seen in
  K.touch k ~space:a ~page:0 ~access:Mgr.Write;
  check_int "write faulted" (before + 1) (List.length !seen)

let test_fault_recursion_guard () =
  let k = kernel () in
  let a = ref (-1) in
  let mid =
    K.register_manager k ~name:"recursive" ~mode:`In_process
      ~on_fault:(fun f ->
        (* Handle the fault by faulting on the same page again. *)
        ignore f;
        K.touch k ~space:!a ~page:0 ~access:Mgr.Read)
      ()
  in
  a := K.create_segment k ~name:"a" ~pages:1 ();
  K.set_segment_manager k !a mid;
  match K.touch k ~space:!a ~page:0 ~access:Mgr.Read with
  | () -> Alcotest.fail "expected Fault_recursion"
  | exception K.Error (K.Fault_recursion _) -> ()

(* ------------------------------------------------------------------ *)
(* Bindings, address spaces, copy-on-write                             *)
(* ------------------------------------------------------------------ *)

let test_binding_resolution () =
  let k = kernel () in
  let mid, _ = spy_manager k in
  let code = K.create_segment k ~name:"code" ~pages:4 () in
  let space = K.create_segment k ~name:"space" ~pages:16 () in
  K.set_segment_manager k code mid;
  K.set_segment_manager k space mid;
  K.bind_region k ~space ~at:4 ~len:4 ~target:code ~target_page:0 ~cow:false;
  (* Touch through the space: frame must land in the code segment. *)
  K.touch k ~space ~page:5 ~access:Mgr.Read;
  check_int "code got the frame" 1 (Seg.resident_pages (K.segment k code));
  check_int "space has no private page" 0 (Seg.resident_pages (K.segment k space));
  check_bool "resolve_slot sees through" true
    (K.resolve_slot k ~space ~page:5 = Some (code, 1))

let test_binding_overlap_rejected () =
  let k = kernel () in
  let a = K.create_segment k ~name:"a" ~pages:8 () in
  let b = K.create_segment k ~name:"b" ~pages:8 () in
  K.bind_region k ~space:a ~at:0 ~len:4 ~target:b ~target_page:0 ~cow:false;
  match K.bind_region k ~space:a ~at:2 ~len:2 ~target:b ~target_page:4 ~cow:false with
  | () -> Alcotest.fail "expected Binding_overlap"
  | exception K.Error (K.Binding_overlap _) -> ()

let test_binding_range_checked () =
  let k = kernel () in
  let a = K.create_segment k ~name:"a" ~pages:4 () in
  let b = K.create_segment k ~name:"b" ~pages:4 () in
  match K.bind_region k ~space:a ~at:2 ~len:4 ~target:b ~target_page:0 ~cow:false with
  | () -> Alcotest.fail "expected Binding_out_of_range"
  | exception K.Error (K.Binding_out_of_range _) -> ()

(* The bound-region array is kept sorted so binding_covering and
   bindings_overlap are binary searches (they run on every fault-path
   segment walk). Build a layout in shuffled insertion order and pin both
   against the linear scans they replaced, over every page and a grid of
   candidate regions — boundaries included. *)
let test_binding_search_matches_linear () =
  let seg = Seg.make ~sid:99 ~name:"search" ~page_size:4096 ~pages:64 () in
  let regions = [ (40, 5); (0, 3); (20, 1); (8, 4); (58, 6); (30, 6) ] in
  List.iter
    (fun (at, len) ->
      Seg.add_binding seg { Seg.at; len; target = 1; target_page = at; cow = false })
    regions;
  let sorted = Seg.bindings_list seg in
  let ats = List.map (fun b -> b.Seg.at) sorted in
  Alcotest.(check (list int)) "insertion kept the array sorted" (List.sort compare ats) ats;
  let naive_covering page =
    List.find_opt (fun b -> b.Seg.at <= page && page < b.Seg.at + b.Seg.len) sorted
  in
  for page = 0 to Seg.length seg - 1 do
    check_bool
      (Printf.sprintf "covering(%d) matches the linear scan" page)
      true
      (Seg.binding_covering seg page = naive_covering page)
  done;
  let naive_overlap ~at ~len =
    List.exists (fun b -> at < b.Seg.at + b.Seg.len && b.Seg.at < at + len) sorted
  in
  for at = 0 to Seg.length seg - 1 do
    List.iter
      (fun len ->
        check_bool
          (Printf.sprintf "overlap(%d,%d) matches the linear scan" at len)
          true
          (Seg.bindings_overlap seg ~at ~len = naive_overlap ~at ~len))
      [ 1; 2; 5; 11 ]
  done;
  (* An empty segment for the degenerate cases. *)
  let bare = Seg.make ~sid:100 ~name:"bare" ~page_size:4096 ~pages:8 () in
  check_bool "no bindings: covering none" true (Seg.binding_covering bare 3 = None);
  check_bool "no bindings: no overlap" false (Seg.bindings_overlap bare ~at:0 ~len:8)

(* The per-segment resident counter (and the O(segments) owner audit built
   on it) must track the page-array scan through every mutation class:
   migrate in/out, release, destroy. *)
let test_resident_counter_matches_scan () =
  let k = kernel ~frames:32 () in
  let audits_agree what =
    Alcotest.(check (list (pair int int)))
      (what ^ ": incremental audit = scan audit")
      (K.frame_owner_audit_scan k) (K.frame_owner_audit k);
    List.iter
      (fun (sid, _) ->
        let seg = K.segment k sid in
        check_int
          (Printf.sprintf "%s: segment %d counter = scan" what sid)
          (Seg.resident_pages_scan seg) (Seg.resident_pages seg))
      (K.frame_owner_audit k)
  in
  audits_agree "boot";
  let a = K.create_segment k ~name:"a" ~pages:12 () in
  let b = K.create_segment k ~name:"b" ~pages:12 () in
  K.migrate_pages k ~src:(K.initial_segment k) ~dst:a ~src_page:0 ~dst_page:0 ~count:8 ();
  audits_agree "after migrate in";
  K.migrate_pages k ~src:a ~dst:b ~src_page:2 ~dst_page:0 ~count:4 ();
  audits_agree "after migrate across";
  K.release_frames k ~seg:b ~page:0 ~count:2;
  audits_agree "after release";
  K.destroy_segment k a;
  audits_agree "after destroy";
  check_int "still conserved" 32 (K.frame_owner_total k)

let test_cow_write_creates_private_copy () =
  let k = kernel () in
  let mid, seen = spy_manager k in
  let src = K.create_segment k ~name:"template" ~pages:2 () in
  let space = K.create_segment k ~name:"space" ~pages:2 () in
  K.set_segment_manager k src mid;
  K.set_segment_manager k space mid;
  (* Fill the template with known data. *)
  K.touch k ~space:src ~page:0 ~access:Mgr.Write;
  K.uio_write k ~seg:src ~page:0 (Hw_page_data.of_string "original");
  K.bind_region k ~space ~at:0 ~len:2 ~target:src ~target_page:0 ~cow:true;
  (* Reads go through to the template — no copy. *)
  K.touch k ~space ~page:0 ~access:Mgr.Read;
  check_int "no private page on read" 0 (Seg.resident_pages (K.segment k space));
  (* A write takes a cow fault and gets a private copy. *)
  K.touch k ~space ~page:0 ~access:Mgr.Write;
  check_int "private page exists" 1 (Seg.resident_pages (K.segment k space));
  check_bool "cow fault seen" true
    (List.exists (fun f -> f.Mgr.f_kind = Mgr.Cow_write) !seen);
  check_int "cow fault counted" 1 (K.stats k).K.faults_cow;
  (* The private copy carries the template data; writing through UIO to the
     space leaves the template untouched. *)
  let private_data = K.uio_read k ~seg:space ~page:0 in
  check_bool "copied data" true
    (Hw_page_data.equal private_data (Hw_page_data.of_string "original"));
  K.uio_write k ~seg:space ~page:0 (Hw_page_data.of_string "modified");
  let template = K.uio_read k ~seg:src ~page:0 in
  check_bool "template unchanged" true
    (Hw_page_data.equal template (Hw_page_data.of_string "original"))

let test_render_address_space () =
  let k = kernel () in
  let code = K.create_segment k ~name:"code" ~pages:4 () in
  let data = K.create_segment k ~name:"data" ~pages:4 () in
  let space = K.create_segment k ~name:"space" ~pages:32 () in
  K.bind_region k ~space ~at:0 ~len:4 ~target:code ~target_page:0 ~cow:false;
  K.bind_region k ~space ~at:8 ~len:4 ~target:data ~target_page:0 ~cow:true;
  let figure = K.render_address_space k space in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
    scan 0
  in
  check_bool "mentions code segment" true (contains figure "code");
  check_bool "mentions data segment" true (contains figure "data");
  check_bool "cow binding rendered" true (contains figure "--cow-->");
  check_bool "plain binding rendered" true (contains figure "--bind-->")

(* ------------------------------------------------------------------ *)
(* Multiple page sizes (2.1: Alpha-style hardware)                     *)
(* ------------------------------------------------------------------ *)

let test_multiple_page_sizes () =
  (* "A parameter to the segment creation call optionally specifies the
     page size to support machines such as those using the Alpha
     microprocessor that support multiple page sizes." Segments of
     different page sizes coexist; migrating between mismatched sizes is
     rejected. *)
  let k = kernel () in
  let small = K.create_segment k ~name:"small" ~pages:4 () in
  let big = K.create_segment k ~page_size:8192 ~name:"big" ~pages:4 () in
  check_int "default page size" 4096 (K.segment k small).Seg.seg_page_size;
  check_int "alpha page size" 8192 (K.segment k big).Seg.seg_page_size;
  K.migrate_pages k ~src:(K.initial_segment k) ~dst:small ~src_page:0 ~dst_page:0 ~count:1 ();
  match K.migrate_pages k ~src:small ~dst:big ~src_page:0 ~dst_page:0 ~count:1 () with
  | () -> Alcotest.fail "expected Page_size_mismatch"
  | exception K.Error (K.Page_size_mismatch _) -> ()

let test_page_size_mismatch_binding () =
  let k = kernel () in
  let a = K.create_segment k ~name:"a" ~pages:4 () in
  let b = K.create_segment k ~page_size:8192 ~name:"b" ~pages:4 () in
  match K.bind_region k ~space:a ~at:0 ~len:2 ~target:b ~target_page:0 ~cow:false with
  | () -> Alcotest.fail "expected Page_size_mismatch"
  | exception K.Error (K.Page_size_mismatch _) -> ()

let test_fault_on_8kb_segment () =
  (* End-to-end fault handling on an Alpha-style 8KB-page segment: the
     spy manager cannot serve it (its frames are 4KB), but a same-size
     donor segment can. *)
  let k = kernel () in
  let donor = K.create_segment k ~page_size:8192 ~name:"donor" ~pages:4 () in
  (* Hand-build a donor frame: 8KB segments cannot take 4KB initial
     frames, so the donor starts empty and we check the error paths meet
     expectations. *)
  check_int "8kb segment empty" 0 (Seg.resident_pages (K.segment k donor));
  let big = K.create_segment k ~page_size:8192 ~name:"big" ~pages:4 () in
  let mid =
    K.register_manager k ~name:"8kb-mgr" ~mode:`In_process
      ~on_fault:(fun f ->
        (* No 8KB frames exist on this 4KB machine: the manager cannot
           resolve, which must surface as Unresolved_fault, not silent
           corruption. *)
        ignore f)
      ()
  in
  K.set_segment_manager k big mid;
  match K.touch k ~space:big ~page:0 ~access:Mgr.Read with
  | () -> Alcotest.fail "expected Unresolved_fault"
  | exception K.Error (K.Unresolved_fault _) -> ()

let test_grow_segment () =
  let k = kernel () in
  let mid, _ = spy_manager k in
  let a = K.create_segment k ~name:"a" ~pages:2 () in
  K.set_segment_manager k a mid;
  K.touch k ~space:a ~page:1 ~access:Mgr.Write;
  K.grow_segment k a ~pages:3;
  check_int "grown" 5 (Seg.length (K.segment k a));
  check_int "old content kept" 1 (Seg.resident_pages (K.segment k a));
  (* New range is faultable. *)
  K.touch k ~space:a ~page:4 ~access:Mgr.Write;
  check_int "new page resident" 2 (Seg.resident_pages (K.segment k a))

(* ------------------------------------------------------------------ *)
(* Random-operation properties                                         *)
(* ------------------------------------------------------------------ *)

(* A random sequence of migrate/release/destroy operations must conserve
   frames: every frame owned by exactly one live segment. *)
let prop_random_ops_conserve_frames =
  QCheck.Test.make ~name:"random migrate/release/destroy conserves frames" ~count:60
    QCheck.(list (pair (int_bound 3) (int_bound 15)))
    (fun ops ->
      let k = kernel ~frames:64 () in
      let mid, _ = spy_manager k in
      let segs =
        Array.init 4 (fun i ->
            let s = K.create_segment k ~name:(Printf.sprintf "s%d" i) ~pages:16 () in
            K.set_segment_manager k s mid;
            s)
      in
      let alive = Array.make 4 true in
      List.iter
        (fun (which, page) ->
          let seg = segs.(which) in
          if alive.(which) then
            match page mod 3 with
            | 0 -> ( try K.touch k ~space:seg ~page ~access:Mgr.Write with K.Error _ -> ())
            | 1 -> ( try K.release_frames k ~seg ~page:0 ~count:8 with K.Error _ -> ())
            | _ ->
                if page = 2 then begin
                  (try K.destroy_segment k seg with K.Error _ -> ());
                  alive.(which) <- false
                end
                else try K.touch k ~space:seg ~page ~access:Mgr.Read with K.Error _ -> ())
        ops;
      let total = K.frame_owner_total k in
      total = 64)

(* Flags algebra. *)
let flag_gen =
  QCheck.oneofl
    [ Flags.dirty; Flags.referenced; Flags.no_access; Flags.read_only; Flags.pinned;
      Flags.io_busy ]

let prop_flags_union_mem =
  QCheck.Test.make ~name:"flags: mem holds for every member of a union" ~count:200
    QCheck.(pair (list flag_gen) flag_gen)
    (fun (fs, f) ->
      let set = Flags.of_list (f :: fs) in
      Flags.mem set f)

let prop_flags_diff_removes =
  QCheck.Test.make ~name:"flags: diff removes exactly the subtracted flags" ~count:200
    QCheck.(pair (list flag_gen) flag_gen)
    (fun (fs, f) ->
      let set = Flags.of_list fs in
      let removed = Flags.diff set f in
      (not (Flags.mem removed f)) || Flags.equal f Flags.empty)

(* Migrating a page back and forth preserves its data. *)
let prop_migrate_roundtrip_data =
  QCheck.Test.make ~name:"migrate roundtrip preserves page data" ~count:100
    QCheck.string_small
    (fun text ->
      let k = kernel () in
      let a = K.create_segment k ~name:"a" ~pages:2 () in
      let b = K.create_segment k ~name:"b" ~pages:2 () in
      K.migrate_pages k ~src:(K.initial_segment k) ~dst:a ~src_page:0 ~dst_page:0 ~count:1 ();
      K.uio_write k ~seg:a ~page:0 (Hw_page_data.of_string text);
      K.migrate_pages k ~src:a ~dst:b ~src_page:0 ~dst_page:1 ~count:1 ();
      K.migrate_pages k ~src:b ~dst:a ~src_page:1 ~dst_page:0 ~count:1 ();
      Hw_page_data.equal (K.uio_read k ~seg:a ~page:0) (Hw_page_data.of_string text))

(* ------------------------------------------------------------------ *)
(* UIO                                                                 *)
(* ------------------------------------------------------------------ *)

let test_uio_faults_page_in () =
  let k = kernel () in
  let mid, seen = spy_manager k in
  let f = K.create_segment k ~name:"file" ~pages:4 () in
  K.set_segment_manager k f mid;
  let _ = K.uio_read k ~seg:f ~page:1 in
  check_int "read faulted once" 1 (List.length !seen);
  check_int "uio reads counted" 1 (K.stats k).K.uio_reads;
  K.uio_write k ~seg:f ~page:1 (Hw_page_data.of_string "blk");
  check_int "write hit cache" 1 (List.length !seen)

(* ------------------------------------------------------------------ *)
(* Destroy and release                                                 *)
(* ------------------------------------------------------------------ *)

let test_destroy_returns_frames_and_notifies () =
  let k = kernel ~frames:16 () in
  let closed = ref [] in
  let mid =
    K.register_manager k ~name:"m" ~mode:`In_process
      ~on_fault:(fun _ -> ())
      ~on_close:(fun s -> closed := s :: !closed)
      ()
  in
  let a = K.create_segment k ~name:"a" ~pages:4 () in
  K.set_segment_manager k a mid;
  K.migrate_pages k ~src:(K.initial_segment k) ~dst:a ~src_page:0 ~dst_page:0 ~count:3 ();
  K.destroy_segment k a;
  check_bool "close notified" true (!closed = [ a ]);
  check_bool "segment gone" false (K.segment_exists k a);
  check_int "frames conserved in initial" 16
    (Seg.resident_pages (K.segment k (K.initial_segment k)))

let test_initial_segment_protected () =
  let k = kernel () in
  (match K.destroy_segment k (K.initial_segment k) with
  | () -> Alcotest.fail "expected Initial_segment_operation"
  | exception K.Error K.Initial_segment_operation -> ());
  let a = K.create_segment k ~name:"a" ~pages:4 () in
  match K.bind_region k ~space:a ~at:0 ~len:1 ~target:(K.initial_segment k) ~target_page:0 ~cow:false with
  | () -> Alcotest.fail "expected Initial_segment_operation"
  | exception K.Error K.Initial_segment_operation -> ()

let test_zero_pages () =
  let k = kernel () in
  let a = K.create_segment k ~name:"a" ~pages:1 () in
  K.migrate_pages k ~src:(K.initial_segment k) ~dst:a ~src_page:0 ~dst_page:0 ~count:1 ();
  K.uio_write k ~seg:a ~page:0 (Hw_page_data.of_string "junk");
  K.zero_pages k ~seg:a ~page:0 ~count:1;
  let data = K.uio_read k ~seg:a ~page:0 in
  check_bool "zeroed" true (Hw_page_data.equal data Hw_page_data.Zero)

(* ------------------------------------------------------------------ *)
(* Translation coherence                                               *)
(* ------------------------------------------------------------------ *)

let test_stale_translation_after_migrate () =
  (* A cached translation must die with the migration: touching the old
     page after its frame moved away must fault again, not silently hit a
     stale TLB/hash entry. *)
  let k = kernel () in
  let mid, seen = spy_manager k in
  let a = K.create_segment k ~name:"a" ~pages:4 () in
  let b = K.create_segment k ~name:"b" ~pages:4 () in
  K.set_segment_manager k a mid;
  K.set_segment_manager k b mid;
  K.touch k ~space:a ~page:0 ~access:Mgr.Read;
  K.touch k ~space:a ~page:0 ~access:Mgr.Read;
  (* cached *)
  check_int "one fault so far" 1 (List.length !seen);
  K.migrate_pages k ~src:a ~dst:b ~src_page:0 ~dst_page:0 ~count:1 ();
  K.touch k ~space:a ~page:0 ~access:Mgr.Read;
  check_int "stale mapping invalidated: second fault" 2 (List.length !seen)

let test_stale_translation_after_protection_change () =
  let k = kernel () in
  let mid, seen = spy_manager k in
  let a = K.create_segment k ~name:"a" ~pages:1 () in
  K.set_segment_manager k a mid;
  K.touch k ~space:a ~page:0 ~access:Mgr.Write;
  K.touch k ~space:a ~page:0 ~access:Mgr.Write;
  let before = List.length !seen in
  K.modify_page_flags k ~seg:a ~page:0 ~count:1 ~set_flags:Flags.no_access ();
  K.touch k ~space:a ~page:0 ~access:Mgr.Write;
  check_int "protection change invalidated the cached mapping" (before + 1)
    (List.length !seen)

let test_stale_translation_through_binding () =
  (* The reverse index must also catch translations cached through a
     binding: space -> target slot. *)
  let k = kernel () in
  let mid, seen = spy_manager k in
  let target = K.create_segment k ~name:"target" ~pages:4 () in
  let space = K.create_segment k ~name:"space" ~pages:4 () in
  let pool = K.create_segment k ~name:"pool" ~pages:4 () in
  K.set_segment_manager k target mid;
  K.set_segment_manager k space mid;
  K.set_segment_manager k pool mid;
  K.bind_region k ~space ~at:0 ~len:4 ~target ~target_page:0 ~cow:false;
  K.touch k ~space ~page:1 ~access:Mgr.Read;
  K.touch k ~space ~page:1 ~access:Mgr.Read;
  let before = List.length !seen in
  (* Move the backing frame out from under the binding. *)
  K.migrate_pages k ~src:target ~dst:pool ~src_page:1 ~dst_page:0 ~count:1 ();
  K.touch k ~space ~page:1 ~access:Mgr.Read;
  check_int "binding-path translation invalidated" (before + 1) (List.length !seen)

let test_touch_dead_binding_target () =
  let k = kernel () in
  let mid, _ = spy_manager k in
  let target = K.create_segment k ~name:"target" ~pages:4 () in
  let space = K.create_segment k ~name:"space" ~pages:4 () in
  K.set_segment_manager k space mid;
  K.bind_region k ~space ~at:0 ~len:4 ~target ~target_page:0 ~cow:false;
  K.destroy_segment k target;
  match K.touch k ~space ~page:0 ~access:Mgr.Read with
  | () -> Alcotest.fail "expected Dead_segment"
  | exception K.Error (K.Dead_segment _) -> ()

(* ------------------------------------------------------------------ *)
(* Timing: the Table 1 code paths                                      *)
(* ------------------------------------------------------------------ *)

(* Run a thunk inside a simulation process and return elapsed sim-time. *)
let timed machine f =
  let result = ref 0.0 in
  Engine.spawn machine.Machine.engine (fun () ->
      let t0 = Engine.time () in
      f ();
      result := Engine.time () -. t0);
  Engine.run machine.Machine.engine;
  !result

let minimal_manager_setup ~mode () =
  let machine = small_machine ~frames:256 () in
  let k = K.create machine in
  let backing = Mgr_backing.memory () in
  let init = K.initial_segment k in
  let source ~dst ~dst_page ~count =
    (* Grant frames straight from the initial segment. *)
    let granted = ref 0 in
    let init_seg = K.segment k init in
    (try
       for slot = 0 to Seg.length init_seg - 1 do
         if !granted < count && (Seg.page init_seg slot).Seg.frame <> None then begin
           K.migrate_pages k ~src:init ~dst ~src_page:slot ~dst_page:(dst_page + !granted)
             ~count:1 ();
           incr granted
         end
       done
     with K.Error _ -> ());
    !granted
  in
  let g = Mgr_generic.create k ~name:"minimal" ~mode ~backing ~source ~pool_capacity:64 () in
  let seg = Mgr_generic.create_segment g ~name:"heap" ~pages:64 ~kind:Mgr_generic.Anon () in
  (machine, k, g, seg)

let test_timing_minimal_fault_in_process () =
  let machine, k, g, seg = minimal_manager_setup ~mode:`In_process () in
  Mgr_generic.ensure_pool g ~count:8;
  let elapsed = timed machine (fun () -> K.touch k ~space:seg ~page:0 ~access:Mgr.Write) in
  check_float "paper: 107 us" (Hw_cost.vpp_minimal_fault_in_process machine.Machine.cost) elapsed;
  check_float "numerically 107" 107.0 elapsed

let test_timing_minimal_fault_via_manager () =
  let machine, k, g, seg = minimal_manager_setup ~mode:`Separate_process () in
  Mgr_generic.ensure_pool g ~count:8;
  let elapsed = timed machine (fun () -> K.touch k ~space:seg ~page:0 ~access:Mgr.Write) in
  check_float "paper: 379 us" (Hw_cost.vpp_minimal_fault_via_manager machine.Machine.cost) elapsed;
  check_float "numerically 379" 379.0 elapsed

let test_timing_uio_cached () =
  let machine, k, g, seg = minimal_manager_setup ~mode:`In_process () in
  Mgr_generic.ensure_pool g ~count:8;
  (* Fault the page in outside the measurement. *)
  K.touch k ~space:seg ~page:0 ~access:Mgr.Write;
  ignore g;
  let read = timed machine (fun () -> ignore (K.uio_read k ~seg ~page:0)) in
  check_float "read 4KB = 222" 222.0 read;
  let write =
    timed machine (fun () -> K.uio_write k ~seg ~page:0 (Hw_page_data.of_string "x"))
  in
  check_float "write 4KB = 203" 203.0 write

let test_timing_second_touch_free () =
  let machine, k, g, seg = minimal_manager_setup ~mode:`In_process () in
  Mgr_generic.ensure_pool g ~count:8;
  K.touch k ~space:seg ~page:0 ~access:Mgr.Write;
  ignore g;
  (* Warm: mapping cached; cost at most a TLB refill. *)
  let elapsed = timed machine (fun () -> K.touch k ~space:seg ~page:0 ~access:Mgr.Read) in
  check_bool "warm touch under 1us" true (elapsed <= 1.0)

(* Table 1 pin: the emergent fault/IO sums must not move when the fault
   injection machinery is present but disabled — no plan, the inert
   [Sim_chaos.none] plan, and an enabled all-zero-probability plan must
   all be observationally free. *)
let test_table1_rows_with_injection_disabled () =
  let plans =
    [
      ("no plan", None);
      ("inert plan", Some (Sim_chaos.none ()));
      ("zero-probability plan", Some (Sim_chaos.create ~seed:1L Sim_chaos.default_spec));
    ]
  in
  List.iter
    (fun (what, plan) ->
      let machine, k, g, seg = minimal_manager_setup ~mode:`In_process () in
      Hw_disk.set_chaos machine.Machine.disk plan;
      Mgr_generic.ensure_pool g ~count:8;
      let fault = timed machine (fun () -> K.touch k ~space:seg ~page:0 ~access:Mgr.Write) in
      check_float (what ^ ": in-process fault = 107") 107.0 fault;
      let read = timed machine (fun () -> ignore (K.uio_read k ~seg ~page:0)) in
      check_float (what ^ ": cached read = 222") 222.0 read;
      let write =
        timed machine (fun () -> K.uio_write k ~seg ~page:0 (Hw_page_data.of_string "x"))
      in
      check_float (what ^ ": cached write = 203") 203.0 write)
    plans;
  let machine, k, g, seg = minimal_manager_setup ~mode:`Separate_process () in
  Hw_disk.set_chaos machine.Machine.disk (Some (Sim_chaos.none ()));
  Mgr_generic.ensure_pool g ~count:8;
  let fault = timed machine (fun () -> K.touch k ~space:seg ~page:0 ~access:Mgr.Write) in
  check_float "inert plan: via-manager fault = 379" 379.0 fault;
  (* All eight Table 1 rows, as the cost-table identities they sum to. *)
  let c = Hw_cost.decstation_5000_200 in
  List.iter
    (fun (name, expect, got) -> check_float name expect got)
    [
      ("V++ fault in-process = 107", 107.0, Hw_cost.vpp_minimal_fault_in_process c);
      ("V++ fault via manager = 379", 379.0, Hw_cost.vpp_minimal_fault_via_manager c);
      ("Ultrix fault = 175", 175.0, Hw_cost.ultrix_minimal_fault c);
      ("Ultrix reprotect = 152", 152.0, Hw_cost.ultrix_user_reprotect_fault c);
      ("V++ read 4KB = 222", 222.0, Hw_cost.vpp_read_4kb c);
      ("V++ write 4KB = 203", 203.0, Hw_cost.vpp_write_4kb c);
      ("Ultrix read 4KB = 211", 211.0, Hw_cost.ultrix_read_4kb c);
      ("Ultrix write 4KB = 311", 311.0, Hw_cost.ultrix_write_4kb c);
    ]

(* ------------------------------------------------------------------ *)
(* Cost-model calibration identities                                   *)
(* ------------------------------------------------------------------ *)

let test_cost_calibration () =
  let c = Hw_cost.decstation_5000_200 in
  check_float "vpp in-process fault" 107.0 (Hw_cost.vpp_minimal_fault_in_process c);
  check_float "vpp via-manager fault" 379.0 (Hw_cost.vpp_minimal_fault_via_manager c);
  check_float "ultrix fault" 175.0 (Hw_cost.ultrix_minimal_fault c);
  check_float "ultrix reprotect" 152.0 (Hw_cost.ultrix_user_reprotect_fault c);
  check_float "vpp read" 222.0 (Hw_cost.vpp_read_4kb c);
  check_float "vpp write" 203.0 (Hw_cost.vpp_write_4kb c);
  check_float "ultrix read" 211.0 (Hw_cost.ultrix_read_4kb c);
  check_float "ultrix write" 311.0 (Hw_cost.ultrix_write_4kb c);
  (* The zeroing story: most of the Ultrix-vs-V++ difference is zero_page. *)
  check_float "zeroing is 75us" 75.0 c.Hw_cost.zero_page

(* ------------------------------------------------------------------ *)
(* Figure 2 protocol trace                                             *)
(* ------------------------------------------------------------------ *)

let test_figure2_protocol_trace () =
  let machine = small_machine ~frames:256 ~trace:true () in
  let k = K.create machine in
  let backing = Mgr_backing.memory () in
  let init = K.initial_segment k in
  let source ~dst ~dst_page ~count =
    let granted = ref 0 in
    let init_seg = K.segment k init in
    for slot = 0 to Seg.length init_seg - 1 do
      if !granted < count && (Seg.page init_seg slot).Seg.frame <> None then begin
        K.migrate_pages k ~src:init ~dst ~src_page:slot ~dst_page:(dst_page + !granted)
          ~count:1 ();
        incr granted
      end
    done;
    !granted
  in
  let g = Mgr_generic.create k ~name:"filemgr" ~mode:`In_process ~backing ~source () in
  let file =
    Mgr_generic.create_segment g ~name:"file" ~pages:8 ~kind:(Mgr_generic.File { file_id = 7 })
      ~high_water:8 ()
  in
  Mgr_generic.ensure_pool g ~count:4;
  Sim_trace.clear machine.Machine.trace;
  K.touch k ~space:file ~page:3 ~access:Mgr.Read;
  let tags = Sim_trace.tags machine.Machine.trace in
  (* The five steps of Figure 2, in order. *)
  let expected =
    [
      "step1.fault_to_manager"; "step2.request_data"; "step3.data_reply"; "step4.migrate";
      "step5.resume";
    ]
  in
  Alcotest.(check (list string)) "figure 2 sequence" expected tags

(* ------------------------------------------------------------------ *)
(* Golden span decompositions of the Table 1 identities                *)
(* ------------------------------------------------------------------ *)

(* The emergent Table 1 sums, broken into their span-attributed charges
   by the observability layer (Exp_profile re-runs each path with the
   metrics sink enabled). These lists are golden: a new charge on any of
   these code paths, or a moved constant, shows up here as an exact
   diff — rebalance per the hw_cost.mli identities before updating. *)
let check_string = Alcotest.(check string)

let table1_golden =
  [
    ( "vpp_minimal_fault_in_process",
      107.0,
      [
        ("fault/missing/kernel/migrate", 1, 46.0);
        ("fault/missing/kernel/resume", 1, 16.0);
        ("fault/missing/kernel/trap", 1, 10.0);
        ("fault/missing/kernel/upcall", 1, 10.0);
        ("fault/missing/mgr/fault_logic", 1, 12.0);
        ("kernel/pte_update", 1, 4.0);
        ("kernel/segment_walk", 1, 9.0);
      ] );
    ( "vpp_minimal_fault_via_manager",
      379.0,
      [
        ("fault/missing/kernel/ipc_call", 1, 148.0);
        ("fault/missing/kernel/ipc_return", 1, 150.0);
        ("fault/missing/kernel/migrate", 1, 46.0);
        ("fault/missing/kernel/trap", 1, 10.0);
        ("fault/missing/mgr/fault_logic", 1, 12.0);
        ("kernel/pte_update", 1, 4.0);
        ("kernel/segment_walk", 1, 9.0);
      ] );
    ( "ultrix_minimal_fault",
      175.0,
      [
        ("fault/ultrix/fault_service", 1, 80.0);
        ("fault/ultrix/pte_update", 1, 11.0);
        ("fault/ultrix/zero_fill", 1, 75.0);
        ("ultrix/segment_walk", 1, 9.0);
      ] );
    ( "ultrix_user_reprotect_fault",
      152.0,
      [
        ("fault/ultrix/mprotect", 1, 51.0);
        ("fault/ultrix/signal_deliver", 1, 55.0);
        ("fault/ultrix/sigreturn", 1, 46.0);
      ] );
    ( "vpp_read_4kb",
      222.0,
      [ ("kernel/copy_page", 1, 150.0); ("kernel/uio_read", 1, 72.0) ] );
    ( "vpp_write_4kb",
      203.0,
      [ ("kernel/copy_page", 1, 150.0); ("kernel/uio_write", 1, 53.0) ] );
    ( "ultrix_read_4kb",
      211.0,
      [ ("ultrix/copy_page", 1, 150.0); ("ultrix/read_syscall", 1, 61.0) ] );
    ( "ultrix_write_4kb",
      311.0,
      [ ("ultrix/copy_page", 1, 150.0); ("ultrix/write_syscall", 1, 161.0) ] );
  ]

let test_table1_span_decomposition () =
  let rows = (Exp_profile.run ()).Exp_profile.rows in
  check_int "eight rows profiled" (List.length table1_golden) (List.length rows);
  List.iter2
    (fun (name, pinned, golden) row ->
      check_string (name ^ ": row label") name row.Exp_profile.p_label;
      check_float (name ^ ": pinned total") pinned row.Exp_profile.p_pinned_us;
      check_float (name ^ ": measured = pinned") pinned row.Exp_profile.p_measured_us;
      let spans = row.Exp_profile.p_spans in
      let span_sum = List.fold_left (fun acc (_, _, us) -> acc +. us) 0.0 spans in
      check_float (name ^ ": spans sum to the identity") pinned span_sum;
      check_int (name ^ ": span count") (List.length golden) (List.length spans);
      List.iter2
        (fun (gp, gn, gus) (p, n, us) ->
          check_string (name ^ ": path " ^ gp) gp p;
          check_int (name ^ ": count of " ^ gp) gn n;
          check_float (name ^ ": cost of " ^ gp) gus us)
        golden spans)
    table1_golden rows

let test_table1_decomposition_matches_cost_constants () =
  (* Cross-check the attribution against hw_cost.ml directly: the charged
     parts are the documented constants, not merely numbers that happen
     to sum right. *)
  let c = Hw_cost.decstation_5000_200 in
  let rows = (Exp_profile.run ()).Exp_profile.rows in
  let span row path =
    match
      List.find_opt (fun (p, _, _) -> p = path) row.Exp_profile.p_spans
    with
    | Some (_, _, us) -> us
    | None -> Alcotest.fail (row.Exp_profile.p_label ^ ": missing span " ^ path)
  in
  let row name = List.find (fun r -> r.Exp_profile.p_label = name) rows in
  let inproc = row "vpp_minimal_fault_in_process" in
  check_float "migrate is the 1-page MigratePages cost"
    (c.Hw_cost.syscall_base +. c.Hw_cost.migrate_base +. c.Hw_cost.migrate_per_page)
    (span inproc "fault/missing/kernel/migrate");
  check_float "trap is entry + decode"
    (c.Hw_cost.trap_entry +. c.Hw_cost.fault_decode)
    (span inproc "fault/missing/kernel/trap");
  check_float "upcall constant" c.Hw_cost.upcall_deliver
    (span inproc "fault/missing/kernel/upcall");
  check_float "resume constant" c.Hw_cost.resume_direct
    (span inproc "fault/missing/kernel/resume");
  check_float "manager logic constant" c.Hw_cost.manager_fault_logic
    (span inproc "fault/missing/mgr/fault_logic");
  let via = row "vpp_minimal_fault_via_manager" in
  check_float "ipc call leg"
    (c.Hw_cost.ipc_send +. c.Hw_cost.context_switch +. c.Hw_cost.manager_server_dispatch)
    (span via "fault/missing/kernel/ipc_call");
  check_float "ipc return leg"
    (c.Hw_cost.ipc_reply +. c.Hw_cost.context_switch +. c.Hw_cost.resume_via_kernel
   +. c.Hw_cost.trap_exit)
    (span via "fault/missing/kernel/ipc_return");
  let ultrix = row "ultrix_minimal_fault" in
  check_float "zero-fill is the zero_page constant" c.Hw_cost.zero_page
    (span ultrix "fault/ultrix/zero_fill");
  check_float "copy is the copy_page constant" c.Hw_cost.copy_page
    (span (row "vpp_read_4kb") "kernel/copy_page")

let () =
  Alcotest.run "kernel"
    [
      ( "boot",
        [
          Alcotest.test_case "initial segment" `Quick test_initial_segment;
          Alcotest.test_case "frame conservation" `Quick test_frame_conservation_after_migrates;
          Alcotest.test_case "resident counter vs scan" `Quick test_resident_counter_matches_scan;
        ] );
      ( "migrate",
        [
          Alcotest.test_case "moves data and flags" `Quick test_migrate_moves_data_and_flags;
          Alcotest.test_case "set/clear flags" `Quick test_migrate_set_clear_flags;
          Alcotest.test_case "errors" `Quick test_migrate_errors;
          Alcotest.test_case "stats counts" `Quick test_migrate_counts;
        ] );
      ( "flags",
        [
          Alcotest.test_case "dirty control" `Quick test_modify_flags_dirty_control;
          Alcotest.test_case "attribute ranges" `Quick test_get_attributes_range;
        ] );
      ( "faults",
        [
          Alcotest.test_case "no manager" `Quick test_fault_no_manager;
          Alcotest.test_case "resolved by manager" `Quick test_fault_resolved_by_manager;
          Alcotest.test_case "unresolved" `Quick test_unresolved_fault;
          Alcotest.test_case "protection cycle" `Quick test_protection_fault_cycle;
          Alcotest.test_case "read-only write" `Quick test_read_only_write_fault;
          Alcotest.test_case "recursion guard" `Quick test_fault_recursion_guard;
        ] );
      ( "bindings",
        [
          Alcotest.test_case "resolution" `Quick test_binding_resolution;
          Alcotest.test_case "overlap rejected" `Quick test_binding_overlap_rejected;
          Alcotest.test_case "range checked" `Quick test_binding_range_checked;
          Alcotest.test_case "binary search vs linear scan" `Quick
            test_binding_search_matches_linear;
          Alcotest.test_case "cow private copy" `Quick test_cow_write_creates_private_copy;
          Alcotest.test_case "figure 1 render" `Quick test_render_address_space;
        ] );
      ("uio", [ Alcotest.test_case "faults page in" `Quick test_uio_faults_page_in ]);
      ( "page-sizes",
        [
          Alcotest.test_case "multiple page sizes" `Quick test_multiple_page_sizes;
          Alcotest.test_case "binding size mismatch" `Quick test_page_size_mismatch_binding;
          Alcotest.test_case "8KB fault path" `Quick test_fault_on_8kb_segment;
          Alcotest.test_case "grow segment" `Quick test_grow_segment;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_ops_conserve_frames;
            prop_flags_union_mem;
            prop_flags_diff_removes;
            prop_migrate_roundtrip_data;
          ] );
      ( "lifecycle",
        [
          Alcotest.test_case "destroy returns frames" `Quick test_destroy_returns_frames_and_notifies;
          Alcotest.test_case "initial protected" `Quick test_initial_segment_protected;
          Alcotest.test_case "zero pages" `Quick test_zero_pages;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "stale after migrate" `Quick test_stale_translation_after_migrate;
          Alcotest.test_case "stale after protection change" `Quick
            test_stale_translation_after_protection_change;
          Alcotest.test_case "stale through binding" `Quick test_stale_translation_through_binding;
          Alcotest.test_case "dead binding target" `Quick test_touch_dead_binding_target;
        ] );
      ( "timing",
        [
          Alcotest.test_case "in-process fault = 107us" `Quick test_timing_minimal_fault_in_process;
          Alcotest.test_case "via-manager fault = 379us" `Quick test_timing_minimal_fault_via_manager;
          Alcotest.test_case "Table 1 rows with injection disabled" `Quick
            test_table1_rows_with_injection_disabled;
          Alcotest.test_case "uio cached read/write" `Quick test_timing_uio_cached;
          Alcotest.test_case "warm touch ~free" `Quick test_timing_second_touch_free;
          Alcotest.test_case "calibration identities" `Quick test_cost_calibration;
        ] );
      ( "figure2",
        [ Alcotest.test_case "protocol trace" `Quick test_figure2_protocol_trace ] );
      ( "attribution",
        [
          Alcotest.test_case "golden Table 1 span decompositions" `Quick
            test_table1_span_decomposition;
          Alcotest.test_case "decomposition matches the cost constants" `Quick
            test_table1_decomposition_matches_cost_constants;
        ] );
    ]
