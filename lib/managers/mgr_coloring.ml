module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags
module Phys = Hw_phys_mem

type colored_source =
  color:int option -> dst:Epcm_segment.id -> dst_page:int -> count:int -> int

type t = {
  kern : K.t;
  mutable mid : Mgr.id;
  n_colors : int;
  tier : int option;
  pool_seg : Seg.id;
  pool_capacity : int;
  (* free pool slots holding a frame, keyed by frame color *)
  slots_by_color : int list array;
  mutable free_slots : int list;  (* pool slots with no frame *)
  source : colored_source;
  mutable color_misses : int;
}

let manager_id t = t.mid

(* A frame's placement color. Against an attached cache this is the live
   geometry — the set group the frame's physical address actually maps to
   in the cache of its tier ([Hw_cache.color_of]) — so the policy stays
   faithful if the cache's color count ever diverges from the [n_colors]
   the physical memory was built with. Without a cache it falls back to
   the static [Hw_phys_mem] color tag, as before. *)
let frame_color t frame =
  let machine = K.machine t.kern in
  let fr = Phys.frame machine.Hw_machine.mem frame in
  let c =
    if Array.length machine.Hw_machine.caches = 0 then fr.Phys.color
    else
      Hw_cache.color_of
        machine.Hw_machine.caches.(fr.Phys.tier)
        ~phys_addr:fr.Phys.addr
        ~page_bytes:(Hw_machine.page_size machine)
  in
  c mod t.n_colors

let color_of_frame t ~frame = frame_color t frame

(* Placement probe: does the system still hold a free (initial-segment)
   frame of [color], within this manager's tier when it is tier-scoped?
   Served from the physical memory's per-color index
   ([Phys.frames_of_color ?tier]) plus the owner tags, so a futile
   refill round-trip to the source is skipped when the answer is no.
   Only exact when the manager's color space matches the one the frame
   index is keyed by; otherwise we conservatively answer yes. *)
let color_available t ~color =
  let machine = K.machine t.kern in
  let mem = machine.Hw_machine.mem in
  if t.n_colors <> Phys.n_colors mem then true
  else
    let init = K.initial_segment t.kern in
    List.exists
      (fun f -> Phys.owner mem f = init)
      (Phys.frames_of_color ?tier:t.tier mem color)

(* Pull [count] frames (preferring [color]) from the SPCM into free pool
   slots and index them by their actual color. *)
let refill t ~color ~count =
  let got = ref 0 in
  let continue_ = ref true in
  while !got < count && !continue_ do
    match t.free_slots with
    | [] -> continue_ := false
    | slot :: rest ->
        let granted = t.source ~color ~dst:t.pool_seg ~dst_page:slot ~count:1 in
        if granted = 0 then continue_ := false
        else begin
          t.free_slots <- rest;
          let frame =
            match (Seg.page (K.segment t.kern t.pool_seg) slot).Seg.frame with
            | Some f -> f
            | None -> assert false
          in
          let c = frame_color t frame in
          t.slots_by_color.(c) <- slot :: t.slots_by_color.(c);
          incr got
        end
  done;
  !got

let take_colored t ~color ~dst ~dst_page =
  let try_color c =
    match t.slots_by_color.(c) with
    | [] -> None
    | slot :: rest ->
        t.slots_by_color.(c) <- rest;
        t.free_slots <- slot :: t.free_slots;
        K.migrate_pages t.kern ~src:t.pool_seg ~dst ~src_page:slot ~dst_page ~count:1 ();
        Some ()
  in
  let rec any_color c =
    if c >= t.n_colors then None
    else match try_color c with Some () -> Some () | None -> any_color (c + 1)
  in
  match try_color color with
  | Some () -> true
  | None ->
      if
        color_available t ~color
        && refill t ~color:(Some color) ~count:1 > 0
        && try_color color <> None
      then true
      else begin
        (* No frame of the right color anywhere: the SPCM treats this like
           an oversized request and we take what we can get (paper §2.4). *)
        t.color_misses <- t.color_misses + 1;
        (match any_color 0 with
        | Some () -> ()
        | None ->
            if refill t ~color:None ~count:1 = 0 then
              raise (Mgr_generic.Out_of_frames "Mgr_coloring: no frames at all");
            ignore (any_color 0));
        false
      end

let on_fault t (fault : Mgr.fault) =
  let machine = K.machine t.kern in
  Hw_machine.charge ~label:"mgr/fault_logic" machine machine.Hw_machine.cost.Hw_cost.manager_fault_logic;
  match fault.Mgr.f_kind with
  | Mgr.Missing | Mgr.Cow_write ->
      let wanted = fault.Mgr.f_page mod t.n_colors in
      ignore (take_colored t ~color:wanted ~dst:fault.Mgr.f_seg ~dst_page:fault.Mgr.f_page)
  | Mgr.Protection ->
      K.modify_page_flags t.kern ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~count:1
        ~clear_flags:(Flags.of_list [ Flags.no_access; Flags.read_only ])
        ()

let create kern ?n_colors ?tier ~source ~pool_capacity () =
  let machine = K.machine kern in
  (* Default the color count from the live cache geometry when a cache is
     attached, else from the physical memory's static color pattern. *)
  let n_colors =
    match n_colors with
    | Some n -> n
    | None -> (
        match Hw_machine.cache_colors machine with
        | Some n -> n
        | None -> Phys.n_colors machine.Hw_machine.mem)
  in
  if n_colors <= 0 then invalid_arg "Mgr_coloring.create: n_colors must be positive";
  (match tier with
  | Some k when k < 0 || k >= Phys.n_tiers machine.Hw_machine.mem ->
      invalid_arg "Mgr_coloring.create: tier out of range"
  | _ -> ());
  let pool_seg = K.create_segment kern ~name:"coloring.free-pages" ~pages:pool_capacity () in
  let t =
    {
      kern;
      mid = -1;
      n_colors;
      tier;
      pool_seg;
      pool_capacity;
      slots_by_color = Array.make n_colors [];
      free_slots = List.init pool_capacity Fun.id;
      source;
      color_misses = 0;
    }
  in
  t.mid <-
    K.register_manager kern ~name:"coloring-manager" ~mode:`In_process
      ~on_fault:(fun f -> on_fault t f)
      ();
  t

let n_colors t = t.n_colors

let create_segment t ~name ~pages =
  let seg = K.create_segment t.kern ~name ~pages () in
  K.set_segment_manager t.kern seg t.mid;
  seg

let audit t ~seg =
  let s = K.segment t.kern seg in
  let good = ref 0 and total = ref 0 in
  Array.iteri
    (fun page slot ->
      match slot.Seg.frame with
      | None -> ()
      | Some frame ->
          incr total;
          if frame_color t frame = page mod t.n_colors then incr good)
    s.Seg.pages;
  (!good, !total)

let color_misses t = t.color_misses
