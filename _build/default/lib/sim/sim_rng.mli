(** Deterministic pseudo-random number generation for simulations.

    SplitMix64: fast, high-quality, and trivially reproducible from a seed.
    Every experiment in this repository takes an explicit seed so that
    [dune runtest] and the benchmark harness produce identical output on
    every run. *)

type t

val create : int64 -> t
(** [create seed] returns an independent generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing [t].
    Used to give each simulated process its own stream so that adding a
    process does not perturb the draws of the others. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** Uniform in [0, 1). 53-bit resolution. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean (for Poisson
    inter-arrival times). *)

val uniform : t -> lo:float -> hi:float -> float

val choice : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
