(** Physical memory: a fixed array of page frames.

    Frames carry their physical address, cache color and current contents.
    Who {e owns} a frame (which segment it is migrated into) is the
    kernel's business, not the hardware's; the kernel records an opaque
    integer owner tag here purely so invariant checks ("every frame is in
    exactly one segment") can audit the whole machine. *)

type frame = {
  index : int;  (** Frame number, [0 .. n_frames-1]. *)
  addr : int;  (** Physical byte address of the frame. *)
  color : int;  (** [addr / page_size mod n_colors] — cache color. *)
  mutable data : Hw_page_data.t;
  mutable owner : int;  (** Opaque tag maintained by the kernel; -1 = none. *)
}

type t

val create : ?n_colors:int -> page_size:int -> total_bytes:int -> unit -> t
(** [n_colors] defaults to 16. [total_bytes] is rounded down to a whole
    number of pages; at least one page is required. *)

val page_size : t -> int
val n_frames : t -> int
val n_colors : t -> int

val frame : t -> int -> frame
(** Raises [Invalid_argument] for an out-of-range index. *)

val frames_of_color : t -> int -> int list
(** Frame indices with the given color, ascending. Served from a per-color
    index precomputed at {!create}: O(result), no frame-array scan. *)

val frames_in_range : t -> lo_addr:int -> hi_addr:int -> int list
(** Frame indices whose physical address lies in [lo_addr, hi_addr).
    Frames are contiguous, so the interval maps to index arithmetic:
    O(result), no frame-array scan. *)

val zero_frame : t -> int -> unit
val copy_frame : t -> src:int -> dst:int -> unit

val owners_histogram : t -> (int * int) list
(** (owner tag, frame count) pairs, for whole-machine accounting checks. *)
