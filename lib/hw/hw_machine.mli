(** A complete simulated machine: engine + memory + translation hardware +
    disk + cost table, bundled for the kernels to run on. *)

type preset = Decstation_5000_200 | Sgi_4d_380

type t = {
  engine : Sim_engine.t;
  mem : Hw_phys_mem.t;
  page_table : Hw_page_table.t;
  tlb : Hw_tlb.t;
  disk : Hw_disk.t;
  cost : Hw_cost.t;
  trace : Sim_trace.t;
  metrics : Sim_metrics.t;
  super_pages : int;
}

val create :
  ?preset:preset ->
  ?memory_bytes:int ->
  ?page_size:int ->
  ?n_colors:int ->
  ?tiers:Hw_phys_mem.tier_spec list ->
  ?super_pages:int ->
  ?trace:bool ->
  ?disk_params:Hw_disk.params ->
  unit ->
  t
(** Defaults: DECstation preset, 16 MB memory (large enough for the unit
    tests; experiments pass their own size), 4 KB pages, 16 colors, trace
    off. The paper's machines: DECstation 5000/200 with 128 MB (Tables
    1–3); SGI 4D/380 for Table 4. [tiers] builds a multi-tier memory
    ({!Hw_phys_mem.create_tiered}) and supersedes [memory_bytes]; without
    it, memory is one zero-surcharge DRAM tier and the machine behaves
    byte-identically to the pre-tier model. [super_pages] is the number
    of base pages per superpage (default 512, i.e. 2 MB of 4 KB pages),
    sizing the page table's and TLB's superpage areas; machines that
    never promote a superpage behave byte-identically regardless of its
    value. *)

val page_size : t -> int
val n_frames : t -> int

val super_pages : t -> int
(** Base pages per superpage mapping ([super_pages] at {!create}). *)

val charge : ?label:string -> t -> float -> unit
(** Advance the calling process by a cost-model amount (clamped at 0).
    Outside a simulation process this is a no-op, so semantics-only unit
    tests can drive the kernels without an engine. When profiling is on
    (see {!set_profiling}) the amount is also attributed to [label] under
    the open {!with_span} path; without profiling the label costs
    nothing. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Open a cost-attribution span around a thunk (see
    {!Sim_metrics.with_span}); identity when profiling is off. *)

val observe : t -> kind:string -> float -> unit
(** Feed a latency sample into the machine's metrics sink; no-op when
    profiling is off. *)

val metrics : t -> Sim_metrics.t
(** The machine's metrics sink (shared with its disk). *)

val set_profiling : t -> bool -> unit
(** Toggle the metrics sink. Off (the default) preserves byte-identical
    behaviour of all instrumented paths. *)

val now : t -> float

val trace_emit : t -> tag:string -> (unit -> string) -> unit
(** Append a protocol-trace event. The detail thunk is forced only when
    the trace is enabled, so emit sites on kernel hot paths cost one
    branch and one closure — not a formatted string — when tracing is
    off (the default). *)
