type row = {
  program : string;
  tlb_hit_rate : float;
  pt_hits : int;
  pt_misses : int;
  pt_collisions : int;
  pt_resident : int;
}

type result = { rows : row list; checks : Exp_report.check list }

let run () =
  let rows =
    List.map
      (fun trace ->
        let v = Wl_run.run_vpp trace in
        {
          program = trace.Wl_trace.name;
          tlb_hit_rate = v.Wl_run.v_tlb_hit_rate;
          pt_hits = v.Wl_run.v_pt_hits;
          pt_misses = v.Wl_run.v_pt_misses;
          pt_collisions = v.Wl_run.v_pt_collisions;
          pt_resident = v.Wl_run.v_pt_resident;
        })
      Wl_apps.all
  in
  let checks =
    List.concat_map
      (fun r ->
        [
          Exp_report.check
            ~what:(Printf.sprintf "%s: mapping hash nearly collision-free at 64K slots" r.program)
            ~pass:(r.pt_collisions * 100 < r.pt_hits + r.pt_misses + 1)
            ~detail:(Printf.sprintf "%d collisions" r.pt_collisions);
          Exp_report.check
            ~what:(Printf.sprintf "%s: every resident page has a cached translation" r.program)
            ~pass:(r.pt_resident > 0)
            ~detail:(Printf.sprintf "%d resident entries" r.pt_resident);
        ])
      rows
  in
  { rows; checks }

let render r =
  let table =
    Exp_report.fmt_table
      ~header:[ "Program"; "TLB hit rate"; "hash hits"; "hash misses"; "collisions"; "resident" ]
      ~rows:
        (List.map
           (fun row ->
             [
               row.program;
               Printf.sprintf "%.1f%%" (100.0 *. row.tlb_hit_rate);
               string_of_int row.pt_hits;
               string_of_int row.pt_misses;
               string_of_int row.pt_collisions;
               string_of_int row.pt_resident;
             ])
           r.rows)
  in
  "Substrate: the 64K mapping hash and TLB during the Table 2 runs\n" ^ table
  ^ "\nShape checks:\n" ^ Exp_report.render_checks r.checks
