lib/spcm/spcm_market.mli:
