test/test_spcm.mli:
