test/test_sim.ml: Alcotest Array Buffer Fun Int64 List Printf QCheck QCheck_alcotest Sim_engine Sim_heap Sim_rng Sim_stats Sim_sync Sim_trace String
