type prot = { readable : bool; writable : bool }

type size = Base | Super

type entry = { space : int; vpn : int; frame : int; prot : prot; size : size }

type t = {
  slots : entry option array;
  overflow : entry option array;
  mutable overflow_next : int;  (* round-robin victim pointer *)
  (* Superpage area: direct-mapped, keyed by (space, svpn) where
     svpn = vpn / super_pages. [super_live] guards every probe so a
     machine that never installs a superpage takes the exact same
     branches — and accumulates the exact same statistics — as the
     pre-superpage table. *)
  super : entry option array;
  super_pages : int;
  mutable super_live : int;
  mutable super_hits : int;
  mutable super_collisions : int;
  mutable hits : int;
  mutable misses : int;
  mutable collisions : int;
}

let create ?(slots = 65536) ?(overflow = 32) ?(super_slots = 1024) ?(super_pages = 512) () =
  if slots <= 0 || overflow < 0 then invalid_arg "Hw_page_table.create";
  if super_slots <= 0 || super_pages <= 0 then invalid_arg "Hw_page_table.create";
  {
    slots = Array.make slots None;
    overflow = Array.make overflow None;
    overflow_next = 0;
    super = Array.make super_slots None;
    super_pages;
    super_live = 0;
    super_hits = 0;
    super_collisions = 0;
    hits = 0;
    misses = 0;
    collisions = 0;
  }

let slot_of t ~space ~vpn =
  let h = (space * 0x9E3779B1) lxor (vpn * 0x85EBCA77) in
  abs h mod Array.length t.slots

let super_slot_of t ~space ~svpn =
  let h = (space * 0x9E3779B1) lxor (svpn * 0xC2B2AE35) in
  abs h mod Array.length t.super

let matches e ~space ~vpn = e.space = space && e.vpn = vpn

(* The overflow array is scanned with plain loops: these run inside every
   insert/remove on the kernel fault path, so they must not allocate
   (closures included). *)

let overflow_insert t e =
  let n = Array.length t.overflow in
  if n > 0 then begin
    (* Prefer an empty slot; otherwise evict round-robin. *)
    let empty = ref (-1) in
    for i = 0 to n - 1 do
      if t.overflow.(i) = None && !empty < 0 then empty := i
    done;
    let i = if !empty >= 0 then !empty else t.overflow_next in
    if !empty < 0 then t.overflow_next <- (t.overflow_next + 1) mod n;
    t.overflow.(i) <- Some e
  end

let overflow_drop t ~space ~vpn =
  for j = 0 to Array.length t.overflow - 1 do
    match t.overflow.(j) with
    | Some oe when matches oe ~space ~vpn -> t.overflow.(j) <- None
    | Some _ | None -> ()
  done

let insert t ~space ~vpn ~frame ~prot =
  let i = slot_of t ~space ~vpn in
  let e = { space; vpn; frame; prot; size = Base } in
  (match t.slots.(i) with
  | Some old when not (matches old ~space ~vpn) ->
      t.collisions <- t.collisions + 1;
      overflow_insert t old
  | Some _ | None -> ());
  (* Remove any stale overflow copy of this key. *)
  overflow_drop t ~space ~vpn;
  t.slots.(i) <- Some e

let super_pages t = t.super_pages

let insert_super t ~space ~svpn ~frame ~prot =
  let i = super_slot_of t ~space ~svpn in
  (match t.super.(i) with
  | Some old when not (matches old ~space ~vpn:svpn) ->
      (* Colliding superpage entry is simply displaced (rebuilt from the
         kernel's region table on demand, like a dropped overflow entry). *)
      t.super_collisions <- t.super_collisions + 1;
      t.super_live <- t.super_live - 1
  | Some _ -> t.super_live <- t.super_live - 1
  | None -> ());
  t.super.(i) <- Some { space; vpn = svpn; frame; prot; size = Super };
  t.super_live <- t.super_live + 1

let remove_super t ~space ~svpn =
  let i = super_slot_of t ~space ~svpn in
  match t.super.(i) with
  | Some e when matches e ~space ~vpn:svpn ->
      t.super.(i) <- None;
      t.super_live <- t.super_live - 1
  | Some _ | None -> ()

let lookup_sized t ~space ~vpn =
  (* Superpage probe first — but only when a superpage is live anywhere,
     so flat machines keep byte-identical statistics. *)
  let super_hit =
    if t.super_live > 0 then begin
      let svpn = vpn / t.super_pages in
      match t.super.(super_slot_of t ~space ~svpn) with
      | Some e when matches e ~space ~vpn:svpn ->
          t.hits <- t.hits + 1;
          t.super_hits <- t.super_hits + 1;
          Some (e.frame + (vpn - (svpn * t.super_pages)), e.prot, Super)
      | Some _ | None -> None
    end
    else None
  in
  match super_hit with
  | Some _ as r -> r
  | None -> (
      let i = slot_of t ~space ~vpn in
      match t.slots.(i) with
      | Some e when matches e ~space ~vpn ->
          t.hits <- t.hits + 1;
          Some (e.frame, e.prot, Base)
      | _ ->
          let n = Array.length t.overflow in
          let j = ref 0 and found = ref None in
          while !found = None && !j < n do
            (match t.overflow.(!j) with
            | Some e when matches e ~space ~vpn -> found := Some (e.frame, e.prot, Base)
            | Some _ | None -> ());
            incr j
          done;
          (match !found with
          | Some _ -> t.hits <- t.hits + 1
          | None -> t.misses <- t.misses + 1);
          !found)

let lookup t ~space ~vpn =
  match lookup_sized t ~space ~vpn with
  | Some (frame, prot, _) -> Some (frame, prot)
  | None -> None

let remove t ~space ~vpn =
  let i = slot_of t ~space ~vpn in
  (match t.slots.(i) with
  | Some e when matches e ~space ~vpn -> t.slots.(i) <- None
  | Some _ | None -> ());
  overflow_drop t ~space ~vpn

let remove_space t ~space =
  Array.iteri
    (fun i o -> match o with Some e when e.space = space -> t.slots.(i) <- None | _ -> ())
    t.slots;
  Array.iteri
    (fun i o -> match o with Some e when e.space = space -> t.overflow.(i) <- None | _ -> ())
    t.overflow;
  if t.super_live > 0 then
    Array.iteri
      (fun i o ->
        match o with
        | Some e when e.space = space ->
            t.super.(i) <- None;
            t.super_live <- t.super_live - 1
        | _ -> ())
      t.super

let capacity t = Array.length t.slots
let hits t = t.hits
let misses t = t.misses
let collisions t = t.collisions
let super_hits t = t.super_hits
let super_collisions t = t.super_collisions
let super_resident t = t.super_live

let resident t =
  let count arr = Array.fold_left (fun acc o -> if o = None then acc else acc + 1) 0 arr in
  count t.slots + count t.overflow
