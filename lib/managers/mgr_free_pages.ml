module K = Epcm_kernel
module Seg = Epcm_segment

type t = {
  kernel : K.t;
  seg : Seg.id;
  capacity : int;
  mutable full : int;  (* slots [0, full) hold frames *)
}

let create kernel ~name ~capacity =
  if capacity <= 0 then invalid_arg "Mgr_free_pages.create: capacity must be positive";
  let seg = K.create_segment kernel ~name ~pages:capacity () in
  { kernel; seg; capacity; full = 0 }

let segment t = t.seg
let capacity t = t.capacity
let available t = t.full
let room t = t.capacity - t.full
let grant_slot t = if t.full >= t.capacity then None else Some t.full
let note_granted t n =
  if n < 0 || t.full + n > t.capacity then invalid_arg "Mgr_free_pages.note_granted";
  t.full <- t.full + n

let take_to t ~dst ~dst_page ~count ?tier ?(set_flags = Epcm_flags.empty)
    ?(clear_flags = Epcm_flags.empty) () =
  let n = min count t.full in
  if n > 0 then begin
    K.migrate_pages t.kernel ~src:t.seg ~dst ~src_page:(t.full - n) ~dst_page ~count:n
      ?tier ~set_flags ~clear_flags ();
    t.full <- t.full - n
  end;
  n

let put_from t ~src ~src_page =
  if t.full >= t.capacity then
    raise (K.Error (K.Frame_present { seg = t.seg; page = t.full }));
  K.migrate_pages t.kernel ~src ~dst:t.seg ~src_page ~dst_page:t.full ~count:1
    ~clear_flags:(Epcm_flags.of_list [ Epcm_flags.referenced; Epcm_flags.no_access ])
    ();
  t.full <- t.full + 1

let frame_at t slot =
  let seg = K.segment t.kernel t.seg in
  match (Seg.page seg slot).Seg.frame with
  | Some f -> Hw_phys_mem.frame (K.machine t.kernel).Hw_machine.mem f
  | None -> raise (K.Error (K.No_frame { seg = t.seg; page = slot }))

let set_next_data t data =
  if t.full = 0 then raise (K.Error (K.No_frame { seg = t.seg; page = 0 }));
  (frame_at t (t.full - 1)).Hw_phys_mem.data <- data

let peek_slot_data t ~slot = (frame_at t slot).Hw_phys_mem.data

let release_to_initial t ~count =
  let n = min count t.full in
  if n > 0 then begin
    K.release_frames t.kernel ~seg:t.seg ~page:(t.full - n) ~count:n;
    t.full <- t.full - n
  end;
  n
