(** The [vpp-market/1] record: the multi-tenant memory-market workload
    ({!Wl_market}) at one or two scales, with per-class SLO tables,
    market-conservation audits and machine-checked shape checks.

    Follows the [vpp-perf/1] pattern: [run] produces a result whose JSON
    rendering carries a [schema] tag and a [checks] array; [validate_json]
    re-checks a written record (schema presence, conservation flags, SLO
    quantile ordering, all checks passing) so CI can gate on the file
    itself. Wall-clock seconds come from [Unix.gettimeofday] — the same
    deliberate exception to the no-wall-clock rule as [Exp_scale]; every
    other field is deterministic from the workload seeds. *)

val schema_version : string

type leg = {
  l_result : Wl_market.result;
  l_wall_s : float;
}

type result = {
  mode : string;  (** "quick" (small leg only) or "full". *)
  jobs : int;
  legs : leg list;
  checks : Exp_report.check list;
}

val run : ?quick:bool -> ?jobs:int -> unit -> result
(** [quick] runs only the [small] leg; the full run adds [production]
    (~5,000 tenants). [jobs] fans the legs over domains ({!Exp_par.map});
    results are deterministic either way. *)

val render : result -> string
val to_json : result -> Sim_json.t
val render_json : result -> string

val validate_json : Sim_json.t -> (unit, string) Result.t
