type prot = { readable : bool; writable : bool }

type entry = { space : int; vpn : int; frame : int; prot : prot }

type t = {
  slots : entry option array;
  overflow : entry option array;
  mutable overflow_next : int;  (* round-robin victim pointer *)
  mutable hits : int;
  mutable misses : int;
  mutable collisions : int;
}

let create ?(slots = 65536) ?(overflow = 32) () =
  if slots <= 0 || overflow < 0 then invalid_arg "Hw_page_table.create";
  {
    slots = Array.make slots None;
    overflow = Array.make overflow None;
    overflow_next = 0;
    hits = 0;
    misses = 0;
    collisions = 0;
  }

let slot_of t ~space ~vpn =
  let h = (space * 0x9E3779B1) lxor (vpn * 0x85EBCA77) in
  abs h mod Array.length t.slots

let matches e ~space ~vpn = e.space = space && e.vpn = vpn

(* The overflow array is scanned with plain loops: these run inside every
   insert/remove on the kernel fault path, so they must not allocate
   (closures included). *)

let overflow_insert t e =
  let n = Array.length t.overflow in
  if n > 0 then begin
    (* Prefer an empty slot; otherwise evict round-robin. *)
    let empty = ref (-1) in
    for i = 0 to n - 1 do
      if t.overflow.(i) = None && !empty < 0 then empty := i
    done;
    let i = if !empty >= 0 then !empty else t.overflow_next in
    if !empty < 0 then t.overflow_next <- (t.overflow_next + 1) mod n;
    t.overflow.(i) <- Some e
  end

let overflow_drop t ~space ~vpn =
  for j = 0 to Array.length t.overflow - 1 do
    match t.overflow.(j) with
    | Some oe when matches oe ~space ~vpn -> t.overflow.(j) <- None
    | Some _ | None -> ()
  done

let insert t ~space ~vpn ~frame ~prot =
  let i = slot_of t ~space ~vpn in
  let e = { space; vpn; frame; prot } in
  (match t.slots.(i) with
  | Some old when not (matches old ~space ~vpn) ->
      t.collisions <- t.collisions + 1;
      overflow_insert t old
  | Some _ | None -> ());
  (* Remove any stale overflow copy of this key. *)
  overflow_drop t ~space ~vpn;
  t.slots.(i) <- Some e

let lookup t ~space ~vpn =
  let i = slot_of t ~space ~vpn in
  match t.slots.(i) with
  | Some e when matches e ~space ~vpn ->
      t.hits <- t.hits + 1;
      Some (e.frame, e.prot)
  | _ ->
      let n = Array.length t.overflow in
      let j = ref 0 and found = ref None in
      while !found = None && !j < n do
        (match t.overflow.(!j) with
        | Some e when matches e ~space ~vpn -> found := Some (e.frame, e.prot)
        | Some _ | None -> ());
        incr j
      done;
      (match !found with
      | Some _ -> t.hits <- t.hits + 1
      | None -> t.misses <- t.misses + 1);
      !found

let remove t ~space ~vpn =
  let i = slot_of t ~space ~vpn in
  (match t.slots.(i) with
  | Some e when matches e ~space ~vpn -> t.slots.(i) <- None
  | Some _ | None -> ());
  overflow_drop t ~space ~vpn

let remove_space t ~space =
  Array.iteri
    (fun i o -> match o with Some e when e.space = space -> t.slots.(i) <- None | _ -> ())
    t.slots;
  Array.iteri
    (fun i o -> match o with Some e when e.space = space -> t.overflow.(i) <- None | _ -> ())
    t.overflow

let capacity t = Array.length t.slots
let hits t = t.hits
let misses t = t.misses
let collisions t = t.collisions

let resident t =
  let count arr = Array.fold_left (fun acc o -> if o = None then acc else acc + 1) 0 arr in
  count t.slots + count t.overflow
