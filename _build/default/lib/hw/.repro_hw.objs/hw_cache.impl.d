lib/hw/hw_cache.ml: Array
