lib/hw/hw_phys_mem.ml: Array Hashtbl Hw_page_data List Printf
