(** Table 2 — Application Elapsed Time in Seconds (diff, uncompress,
    latex under V++ and ULTRIX 4.1, files pre-cached). *)

type row = {
  program : string;
  vpp_s : float;
  ultrix_s : float;
  paper_vpp : float;
  paper_ultrix : float;
  vpp_vm_s : float;  (** V++ simulated time without the library delta. *)
}

type result = { rows : row list; checks : Exp_report.check list }

val run : unit -> result
val render : result -> string
