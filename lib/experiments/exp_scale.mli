(** Throughput record (`vpp_repro perf`, [BENCH_perf.json]).

    Runs the {!Wl_scale} workload at increasing machine sizes and measures
    {e host} wall-clock throughput (simulation events, faults and migrated
    pages per second), then times the domain-parallel experiment driver
    ({!Exp_par}) against its sequential equivalent on a fixed task list and
    checks the joined outputs are byte-identical. Emits a versioned,
    schema-stable JSON record so perf regressions across PRs are a
    machine-readable diff, like the [vpp-profile/1] record next to it.

    The simulated side of every run is deterministic; only the [wall_s]
    and derived per-second fields vary between hosts. Diff two records by
    comparing the deterministic count fields exactly and the throughput
    fields as ratios. *)

val schema_version : string
(** ["vpp-perf/2"]. Bump when the record layout changes. v2 added the
    [stream] leg: the same sequential stream at the largest machine size
    run twice, with 4 KB fills and with superpage (2 MB) run grants. *)

val schema_version_v1 : string
(** ["vpp-perf/1"] — the pre-superpage layout, still accepted by
    [vpp_repro validate] for old [BENCH_perf.json] files. *)

type scale_row = {
  s_result : Wl_scale.result;
  s_wall_s : float;  (** Host seconds for the whole run. *)
}

type stream_row = {
  t_result : Wl_scale.stream_result;
  t_wall_s : float;
}

type driver = {
  d_jobs : int;  (** Domains the parallel leg used. *)
  d_sequential_s : float;
  d_parallel_s : float;
  d_identical : bool;
      (** The parallel driver's joined output was byte-identical to the
          sequential one. *)
}

type result = {
  mode : string;  (** ["full"] or ["quick"]. *)
  scales : scale_row list;
  stream : stream_row list;
      (** The 4 KB and superpage legs of {!Wl_scale.run_stream} at the
          largest size in [scales] (4 GB full, 512 MB quick). *)
  driver : driver;
  checks : Exp_report.check list;
}

val run : ?quick:bool -> ?jobs:int -> unit -> result
(** [quick] drops the largest machine size (CI smoke); [jobs] (default
    [Exp_par.default_jobs ()]) fans the scale and stream legs themselves
    over that many domains — each leg times itself, and the in-order
    join keeps every deterministic field identical to a sequential run —
    and sets the parallel driver leg's domain count. *)

val render : result -> string

val to_json : result -> Sim_json.t

val render_json : result -> string
(** [to_json] printed stably (two-space indent, trailing newline). *)

val validate_json : Sim_json.t -> (unit, string) Stdlib.result
(** Structural schema check used by the perf-smoke rule: version string,
    at least two scales with positive deterministic counts and frame
    conservation, exactly two stream legs issuing identical references
    with the superpage leg at least 100x fewer faults, a driver leg whose
    parallel output matched, and all embedded shape checks passing. *)

val validate_json_v1 : Sim_json.t -> (unit, string) Stdlib.result
(** The legacy [vpp-perf/1] check (no stream legs), kept so old records
    still validate. *)
