(** Segment-manager registration (paper §2.1–2.2).

    A manager is a process-level module responsible for the pages of the
    segments assigned to it with [SetSegmentManager]. The kernel forwards
    page-fault events to it and notifies it of segment closure; the System
    Page Cache Manager uses the pressure callback to demand frames back.

    [mode] selects the two fault-delivery paths the paper measures:
    [`In_process] executes the handler on the faulting process (upcall,
    no context switch — the 107 µs path); [`Separate_process] models a
    manager server reached by IPC with two context switches (the 379 µs
    path of the default manager). *)

type id = int

type fault_kind =
  | Missing  (** No frame mapped at the referenced page. *)
  | Protection  (** Flags forbid the access ([no_access] / [read_only]). *)
  | Cow_write  (** Write to a page reached through a copy-on-write binding. *)

type access = Read | Write

type fault = {
  f_seg : Epcm_segment.id;  (** Segment owning the faulting page slot. *)
  f_page : int;
  f_access : access;
  f_kind : fault_kind;
  f_space : Epcm_segment.id;
      (** Segment the reference was issued against (before binding
          resolution); equals [f_seg] for direct references. *)
}

type mode = [ `In_process | `Separate_process ]

type t = {
  mid : id;
  mname : string;
  mmode : mode;
  on_fault : fault -> unit;
      (** Must leave a frame mapped with compatible protection at
          ([f_seg], [f_page]) — normally by calling [MigratePages] — or
          raise. For [Cow_write] the kernel performs the data copy after
          the handler returns. *)
  on_close : Epcm_segment.id -> unit;
  on_pressure : pages:int -> int;
      (** The SPCM demands frames; returns how many the manager agreed to
          give back (it chooses which — paper §4). *)
}

val pp_fault : Format.formatter -> fault -> unit
val access_to_string : access -> string
val kind_to_string : fault_kind -> string
