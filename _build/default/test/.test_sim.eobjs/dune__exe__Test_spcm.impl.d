test/test_spcm.ml: Alcotest Array Epcm_kernel Epcm_segment Hw_machine Hw_phys_mem List Option Spcm Spcm_market
