lib/core/epcm_manager.mli: Epcm_segment Format
