(* Throughput record: Wl_scale at several machine sizes plus a timed
   sequential-vs-parallel run of the experiment driver.

   Wall-clock here is host time (Unix.gettimeofday), the one deliberate
   exception to the no-wall-clock rule: the whole point of this record is
   how fast the simulator executes deterministic work, so the simulated
   side of every number below is reproducible and only [wall_s] varies
   between hosts. *)

module J = Sim_json

let schema_version = "vpp-perf/2"
let schema_version_v1 = "vpp-perf/1"

type scale_row = {
  s_result : Wl_scale.result;
  s_wall_s : float;
}

type stream_row = {
  t_result : Wl_scale.stream_result;
  t_wall_s : float;
}

type driver = {
  d_jobs : int;
  d_sequential_s : float;
  d_parallel_s : float;
  d_identical : bool;
}

type result = {
  mode : string;
  scales : scale_row list;
  stream : stream_row list;
  driver : driver;
  checks : Exp_report.check list;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let per_sec count wall = if wall > 0.0 then float_of_int count /. wall else 0.0

(* The driver leg races the same fixed, deterministic renders the [all]
   command composes; byte-identity of the joined output is the point, the
   timings are informative (on a single-core host the parallel leg just
   pays the domain overhead). *)
let driver_tasks () =
  [
    (fun () -> Exp_table1.render (Exp_table1.run ()));
    (fun () -> Exp_table3.render (Exp_table3.run ()));
    (fun () -> Exp_figures.render (Exp_figures.run ()));
  ]

let run ?(quick = false) ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> Exp_par.default_jobs () in
  let sizes =
    if quick then [ Wl_scale.size_8mb; Wl_scale.size_512mb ] else Wl_scale.standard_sizes
  in
  (* Superpage comparison: the same sequential stream at the largest size,
     once with 4 KB fills and once with whole-run grants + promotion. *)
  let stream_cfg = List.nth sizes (List.length sizes - 1) in
  (* The scale and stream legs are independent simulations, so they fan
     out over domains together; each task times itself, and the in-order
     join keeps every deterministic field identical to a sequential run
     (only the wall_s figures feel the sharing of the host's cores). *)
  let scale_tasks =
    List.map
      (fun cfg () ->
        let r, wall = timed (fun () -> Wl_scale.run cfg) in
        `Scale { s_result = r; s_wall_s = wall })
      sizes
  and stream_tasks =
    List.map
      (fun superpages () ->
        let r, wall = timed (fun () -> Wl_scale.run_stream ~superpages stream_cfg) in
        `Stream { t_result = r; t_wall_s = wall })
      [ false; true ]
  in
  let legs = Exp_par.map ~jobs (scale_tasks @ stream_tasks) in
  let scales = List.filter_map (function `Scale s -> Some s | `Stream _ -> None) legs in
  let stream = List.filter_map (function `Stream s -> Some s | `Scale _ -> None) legs in
  let seq_out, seq_s =
    timed (fun () -> String.concat "\n" (List.map (fun f -> f ()) (driver_tasks ())))
  in
  let par_out, par_s = timed (fun () -> Exp_par.concat ~jobs ~sep:"\n" (driver_tasks ())) in
  let driver =
    { d_jobs = jobs; d_sequential_s = seq_s; d_parallel_s = par_s; d_identical = seq_out = par_out }
  in
  let checks =
    List.concat_map
      (fun s ->
        let r = s.s_result in
        [
          Exp_report.check
            ~what:(Printf.sprintf "%s: frame conservation held" r.Wl_scale.r_name)
            ~pass:r.Wl_scale.r_conserved
            ~detail:(Printf.sprintf "%d frames" r.Wl_scale.r_frames);
          Exp_report.check
            ~what:(Printf.sprintf "%s: workload exercised every axis" r.Wl_scale.r_name)
            ~pass:
              (r.Wl_scale.r_faults > 0 && r.Wl_scale.r_migrated_pages > 0
             && r.Wl_scale.r_events > 0)
            ~detail:
              (Printf.sprintf "%d faults, %d migrated, %d events" r.Wl_scale.r_faults
                 r.Wl_scale.r_migrated_pages r.Wl_scale.r_events);
        ])
      scales
    @ [
        Exp_report.check ~what:"event count grows with machine size"
          ~pass:
            (let evs = List.map (fun s -> s.s_result.Wl_scale.r_events) scales in
             List.sort compare evs = evs && List.length (List.sort_uniq compare evs) = List.length evs)
          ~detail:
            (String.concat ", "
               (List.map (fun s -> string_of_int s.s_result.Wl_scale.r_events) scales));
        Exp_report.check ~what:"parallel driver output byte-identical to sequential"
          ~pass:driver.d_identical
          ~detail:(Printf.sprintf "%d job(s)" driver.d_jobs);
      ]
    @
    let plain = (List.nth stream 0).t_result and sp = (List.nth stream 1).t_result in
    [
      Exp_report.check ~what:"stream: frame conservation held on both legs"
        ~pass:(plain.Wl_scale.s_conserved && sp.Wl_scale.s_conserved)
        ~detail:(Printf.sprintf "%d frames" plain.Wl_scale.s_frames);
      Exp_report.check ~what:"stream: legs issued identical references"
        ~pass:
          (plain.Wl_scale.s_touches = sp.Wl_scale.s_touches
          && plain.Wl_scale.s_stream_pages = sp.Wl_scale.s_stream_pages)
        ~detail:
          (Printf.sprintf "%d touches over %d pages" plain.Wl_scale.s_touches
             plain.Wl_scale.s_stream_pages);
      Exp_report.check ~what:"stream: superpage leg takes >= 100x fewer faults"
        ~pass:(sp.Wl_scale.s_faults > 0 && plain.Wl_scale.s_faults >= 100 * sp.Wl_scale.s_faults)
        ~detail:
          (Printf.sprintf "%d vs %d faults (%.0fx)" plain.Wl_scale.s_faults sp.Wl_scale.s_faults
             (float_of_int plain.Wl_scale.s_faults /. float_of_int (max 1 sp.Wl_scale.s_faults)));
      Exp_report.check ~what:"stream: superpage leg promoted and split regions"
        ~pass:
          (sp.Wl_scale.s_sp_promotions > 0 && sp.Wl_scale.s_sp_demotions > 0
          && plain.Wl_scale.s_sp_promotions = 0)
        ~detail:
          (Printf.sprintf "%d promotions, %d demotions" sp.Wl_scale.s_sp_promotions
             sp.Wl_scale.s_sp_demotions);
    ]
  in
  { mode = (if quick then "quick" else "full"); scales; stream; driver; checks }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let mb bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "Perf: simulator throughput at scale (%s record, %s mode)\n" schema_version
       r.mode);
  Buffer.add_string buf
    (Exp_report.fmt_table
       ~header:
         [ "machine"; "frames"; "faults"; "migrated"; "events"; "wall (s)"; "events/s"; "faults/s" ]
       ~rows:
         (List.map
            (fun s ->
              let w = s.s_result in
              [
                Printf.sprintf "%s (%.0f MB)" w.Wl_scale.r_name (mb w.Wl_scale.r_memory_bytes);
                string_of_int w.Wl_scale.r_frames;
                string_of_int w.Wl_scale.r_faults;
                string_of_int w.Wl_scale.r_migrated_pages;
                string_of_int w.Wl_scale.r_events;
                Printf.sprintf "%.2f" s.s_wall_s;
                Printf.sprintf "%.0f" (per_sec w.Wl_scale.r_events s.s_wall_s);
                Printf.sprintf "%.0f" (per_sec w.Wl_scale.r_faults s.s_wall_s);
              ])
            r.scales));
  Buffer.add_string buf
    (Printf.sprintf "\nStreaming: 4 KB fills vs superpage runs (%s, %d pages/superpage)\n"
       (match r.stream with s :: _ -> s.t_result.Wl_scale.s_name | [] -> "-")
       (match r.stream with s :: _ -> s.t_result.Wl_scale.s_run | [] -> 0));
  Buffer.add_string buf
    (Exp_report.fmt_table
       ~header:
         [ "leg"; "pages"; "faults"; "migrates"; "promoted"; "split"; "sim (ms)"; "wall (s)" ]
       ~rows:
         (List.map
            (fun s ->
              let w = s.t_result in
              [
                (if w.Wl_scale.s_superpages then "superpage" else "4kb");
                string_of_int w.Wl_scale.s_stream_pages;
                string_of_int w.Wl_scale.s_faults;
                string_of_int w.Wl_scale.s_migrate_calls;
                string_of_int w.Wl_scale.s_sp_promotions;
                string_of_int w.Wl_scale.s_sp_demotions;
                Printf.sprintf "%.1f" (w.Wl_scale.s_sim_us /. 1000.0);
                Printf.sprintf "%.2f" s.t_wall_s;
              ])
            r.stream));
  Buffer.add_string buf
    (Printf.sprintf
       "\nExperiment driver: sequential %.2fs, parallel %.2fs on %d job(s) (outputs %s)\n"
       r.driver.d_sequential_s r.driver.d_parallel_s r.driver.d_jobs
       (if r.driver.d_identical then "identical" else "DIFFER"));
  Buffer.add_string buf "\nShape checks:\n";
  Buffer.add_string buf (Exp_report.render_checks r.checks);
  Buffer.contents buf

let to_json r =
  J.Obj
    [
      ("schema", J.Str schema_version);
      ("mode", J.Str r.mode);
      ( "scales",
        J.List
          (List.map
             (fun s ->
               let w = s.s_result in
               J.Obj
                 [
                   ("name", J.Str w.Wl_scale.r_name);
                   ("memory_bytes", J.Num (float_of_int w.Wl_scale.r_memory_bytes));
                   ("frames", J.Num (float_of_int w.Wl_scale.r_frames));
                   ("touches", J.Num (float_of_int w.Wl_scale.r_touches));
                   ("faults", J.Num (float_of_int w.Wl_scale.r_faults));
                   ("migrate_calls", J.Num (float_of_int w.Wl_scale.r_migrate_calls));
                   ("migrated_pages", J.Num (float_of_int w.Wl_scale.r_migrated_pages));
                   ("events", J.Num (float_of_int w.Wl_scale.r_events));
                   ("sim_us", J.Num w.Wl_scale.r_sim_us);
                   ("conserved", J.Bool w.Wl_scale.r_conserved);
                   ("wall_s", J.Num s.s_wall_s);
                   ("events_per_s", J.Num (per_sec w.Wl_scale.r_events s.s_wall_s));
                   ("faults_per_s", J.Num (per_sec w.Wl_scale.r_faults s.s_wall_s));
                   ( "migrated_pages_per_s",
                     J.Num (per_sec w.Wl_scale.r_migrated_pages s.s_wall_s) );
                 ])
             r.scales) );
      ( "stream",
        J.List
          (List.map
             (fun s ->
               let w = s.t_result in
               J.Obj
                 [
                   ("name", J.Str w.Wl_scale.s_name);
                   ("superpages", J.Bool w.Wl_scale.s_superpages);
                   ("memory_bytes", J.Num (float_of_int w.Wl_scale.s_memory_bytes));
                   ("frames", J.Num (float_of_int w.Wl_scale.s_frames));
                   ("pages_per_superpage", J.Num (float_of_int w.Wl_scale.s_run));
                   ("stream_pages", J.Num (float_of_int w.Wl_scale.s_stream_pages));
                   ("touches", J.Num (float_of_int w.Wl_scale.s_touches));
                   ("faults", J.Num (float_of_int w.Wl_scale.s_faults));
                   ("migrate_calls", J.Num (float_of_int w.Wl_scale.s_migrate_calls));
                   ("migrated_pages", J.Num (float_of_int w.Wl_scale.s_migrated_pages));
                   ("sp_promotions", J.Num (float_of_int w.Wl_scale.s_sp_promotions));
                   ("sp_demotions", J.Num (float_of_int w.Wl_scale.s_sp_demotions));
                   ("events", J.Num (float_of_int w.Wl_scale.s_events));
                   ("sim_us", J.Num w.Wl_scale.s_sim_us);
                   ("conserved", J.Bool w.Wl_scale.s_conserved);
                   ("wall_s", J.Num s.t_wall_s);
                 ])
             r.stream) );
      ( "driver",
        J.Obj
          [
            ("jobs", J.Num (float_of_int r.driver.d_jobs));
            ("sequential_s", J.Num r.driver.d_sequential_s);
            ("parallel_s", J.Num r.driver.d_parallel_s);
            ( "speedup",
              J.Num
                (if r.driver.d_parallel_s > 0.0 then
                   r.driver.d_sequential_s /. r.driver.d_parallel_s
                 else 0.0) );
            ("parallel_identical", J.Bool r.driver.d_identical);
          ] );
      ( "checks",
        J.List
          (List.map
             (fun (c : Exp_report.check) ->
               J.Obj
                 [
                   ("what", J.Str c.Exp_report.what);
                   ("pass", J.Bool c.Exp_report.pass);
                   ("detail", J.Str c.Exp_report.detail);
                 ])
             r.checks) );
    ]

let render_json r = J.to_string ~indent:true (to_json r) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

let validate_common ~expect_schema ~require_stream json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let require what = function Some v -> Ok v | None -> Error ("missing or ill-typed " ^ what) in
  let* schema = require "schema" (Option.bind (J.member "schema" json) J.to_str) in
  let* () =
    if schema = expect_schema then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" schema expect_schema)
  in
  let* _mode = require "mode" (Option.bind (J.member "mode" json) J.to_str) in
  let* scales = require "scales" (Option.bind (J.member "scales" json) J.to_list) in
  let* () = if List.length scales >= 2 then Ok () else Error "expected at least two scales" in
  let* () =
    List.fold_left
      (fun acc scale ->
        let* () = acc in
        let* name = require "scale name" (Option.bind (J.member "name" scale) J.to_str) in
        let* conserved =
          require "conserved" (Option.bind (J.member "conserved" scale) J.to_bool)
        in
        let* events = require "events" (Option.bind (J.member "events" scale) J.to_float) in
        let* faults = require "faults" (Option.bind (J.member "faults" scale) J.to_float) in
        let* wall = require "wall_s" (Option.bind (J.member "wall_s" scale) J.to_float) in
        if not conserved then Error (name ^ ": frame conservation failed")
        else if events <= 0.0 || faults <= 0.0 then Error (name ^ ": empty workload")
        else if wall < 0.0 then Error (name ^ ": negative wall time")
        else Ok ())
      (Ok ()) scales
  in
  let* () =
    if not require_stream then Ok ()
    else
      let* legs = require "stream" (Option.bind (J.member "stream" json) J.to_list) in
      let* () = if List.length legs = 2 then Ok () else Error "expected exactly two stream legs" in
      let leg_field what leg get = require ("stream " ^ what) (Option.bind (J.member what leg) get) in
      let* parsed =
        List.fold_left
          (fun acc leg ->
            let* acc = acc in
            let* sp = leg_field "superpages" leg J.to_bool in
            let* conserved = leg_field "conserved" leg J.to_bool in
            let* faults = leg_field "faults" leg J.to_float in
            let* touches = leg_field "touches" leg J.to_float in
            if not conserved then Error "stream leg: frame conservation failed"
            else if faults <= 0.0 then Error "stream leg: no faults recorded"
            else Ok ((sp, faults, touches) :: acc))
          (Ok []) legs
      in
      let find want = List.find_opt (fun (sp, _, _) -> sp = want) parsed in
      let* _, plain_faults, plain_touches = require "4 KB stream leg" (find false) in
      let* _, sp_faults, sp_touches = require "superpage stream leg" (find true) in
      if plain_touches <> sp_touches then Error "stream legs issued different reference counts"
      else if plain_faults < 100.0 *. sp_faults then
        Error
          (Printf.sprintf "superpage leg only %.1fx fewer faults (need >= 100x)"
             (plain_faults /. sp_faults))
      else Ok ()
  in
  let* drv = require "driver" (J.member "driver" json) in
  let* identical =
    require "parallel_identical" (Option.bind (J.member "parallel_identical" drv) J.to_bool)
  in
  let* () = if identical then Ok () else Error "parallel driver output differed" in
  let* jobs = require "driver jobs" (Option.bind (J.member "jobs" drv) J.to_float) in
  let* () = if jobs >= 1.0 then Ok () else Error "driver jobs < 1" in
  let* checks = require "checks" (Option.bind (J.member "checks" json) J.to_list) in
  List.fold_left
    (fun acc c ->
      let* () = acc in
      let* what = require "check what" (Option.bind (J.member "what" c) J.to_str) in
      let* pass = require "check pass" (Option.bind (J.member "pass" c) J.to_bool) in
      if pass then Ok () else Error ("failed check: " ^ what))
    (Ok ()) checks

let validate_json json = validate_common ~expect_schema:schema_version ~require_stream:true json

let validate_json_v1 json =
  validate_common ~expect_schema:schema_version_v1 ~require_stream:false json
