(** Binary min-heap keyed by (time, sequence number).

    The sequence number makes event ordering total and FIFO-stable: two
    events scheduled for the same instant fire in scheduling order, which
    keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] when empty. *)

val peek_time : 'a t -> float option
(** Time of the minimum element without removing it. *)

val clear : 'a t -> unit
