type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing (stable: object fields keep their given order)            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_string ?(indent = false) t =
  let buf = Buffer.create 1024 in
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth t =
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> Buffer.add_string buf (num_to_string v)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf (if indent then "\": " else "\":");
            go (depth + 1) v)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                   in
                   (* Only BMP escapes for control chars are emitted by this
                      printer; decode ASCII, keep others as '?'. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else Buffer.add_char buf '?';
                   pos := !pos + 5
               | _ -> fail "bad escape");
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('0' .. '9' | '-') -> Num (parse_number ())
    | Some _ -> fail "unexpected character"
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list = function List items -> Some items | _ -> None
let to_float = function Num v -> Some v | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
