type row = {
  program : string;
  manager_calls : int;
  migrate_calls : int;
  overhead_ms : float;
  overhead_pct : float;
  paper_calls : int;
  paper_migrates : int;
  paper_overhead_ms : float;
}

type result = { rows : row list; checks : Exp_report.check list }

let paper = [ ("diff", (379, 372, 76.0)); ("uncompress", (197, 195, 40.0)); ("latex", (250, 238, 51.0)) ]

let run () =
  let rows =
    List.map
      (fun trace ->
        let v = Wl_run.run_vpp trace in
        let paper_calls, paper_migrates, paper_overhead_ms =
          match List.assoc_opt trace.Wl_trace.name paper with
          | Some (a, b, c) -> (a, b, c)
          | None -> (0, 0, 0.0)
        in
        {
          program = trace.Wl_trace.name;
          manager_calls = v.Wl_run.v_manager_calls;
          migrate_calls = v.Wl_run.v_migrate_calls;
          overhead_ms = v.Wl_run.v_manager_overhead_ms;
          overhead_pct = v.Wl_run.v_manager_overhead_ms /. 1000.0 /. v.Wl_run.v_elapsed_s *. 100.0;
          paper_calls;
          paper_migrates;
          paper_overhead_ms;
        })
      Wl_apps.all
  in
  let checks =
    List.concat_map
      (fun r ->
        [
          Exp_report.check
            ~what:(Printf.sprintf "%s: manager calls match the paper" r.program)
            ~pass:(r.manager_calls = r.paper_calls)
            ~detail:(Printf.sprintf "%d vs %d" r.manager_calls r.paper_calls);
          Exp_report.check
            ~what:(Printf.sprintf "%s: MigratePages calls match the paper" r.program)
            ~pass:(r.migrate_calls = r.paper_migrates)
            ~detail:(Printf.sprintf "%d vs %d" r.migrate_calls r.paper_migrates);
          Exp_report.check
            ~what:(Printf.sprintf "%s: manager overhead under 2%% of runtime" r.program)
            ~pass:(r.overhead_pct < 2.0)
            ~detail:(Printf.sprintf "%.2f%%" r.overhead_pct);
        ])
      rows
  in
  { rows; checks }

let render r =
  let table =
    Exp_report.fmt_table
      ~header:
        [ "Program"; "Mgr Calls"; "Migrate"; "Overhead"; "% time"; "paper calls";
          "paper migr"; "paper mS" ]
      ~rows:
        (List.map
           (fun row ->
             [
               row.program;
               string_of_int row.manager_calls;
               string_of_int row.migrate_calls;
               Printf.sprintf "%.0f mS" row.overhead_ms;
               Printf.sprintf "%.2f%%" row.overhead_pct;
               string_of_int row.paper_calls;
               string_of_int row.paper_migrates;
               Printf.sprintf "%.0f" row.paper_overhead_ms;
             ])
           r.rows)
  in
  "Table 3: VM System Activity and Costs\n" ^ table ^ "\nShape checks:\n"
  ^ Exp_report.render_checks r.checks
