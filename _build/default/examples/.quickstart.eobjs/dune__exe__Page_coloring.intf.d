examples/page_coloring.mli:
