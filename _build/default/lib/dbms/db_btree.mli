(** B+-tree index layout over a segment.

    The Table 4 indices are not just "256 pages of something": a join or
    DebitCredit lookup walks root → internal → leaf, so the pages a
    transaction touches (and therefore faults on, when the index was
    evicted) follow from the tree shape. This module computes a
    level-order layout for a tree of a given page budget and answers
    lookups with the page path a real traversal would touch.

    With a 4 KB page holding 128 separators, a 1 MB (256-page) index is
    three levels deep — which is why a transaction touches ~3 index pages
    (§3.3 simulation parameters). *)

type t

val create : ?fanout:int -> pages:int -> unit -> t
(** Lay out the largest complete tree fitting in [pages] pages (at least
    one leaf). Default fanout 128 separators per page. *)

val fanout : t -> int
val pages : t -> int
(** Pages actually used (≤ the budget). *)

val depth : t -> int
(** Levels, including the leaf level. *)

val keys : t -> int
(** Number of keys the leaves index. *)

val root_page : t -> int

val lookup_path : t -> key:int -> int list
(** Pages touched by a lookup, root first, leaf last. [key] is taken
    modulo {!keys}. Length = {!depth}. *)

val leaf_of_key : t -> key:int -> int
val pp : Format.formatter -> t -> unit
