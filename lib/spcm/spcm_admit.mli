(** Admission-control priority queue for the SPCM (ROADMAP item 1).

    A binary max-heap over the two-component admission key
    [(priority, balance)] with FIFO tie-breaking: of two entries with equal
    keys, the one pushed first pops first. All decisions the SPCM makes off
    this structure (who is granted next when frames return) are therefore
    deterministic for a deterministic push sequence, the same discipline as
    {!Sim_heap} on the event side.

    Every operation is O(log n) in the number of queued entries; [peek] is
    O(1). *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> balance:float -> 'a -> int
(** Insert with the next internal sequence number (monotone across the
    queue's lifetime) and return it. Higher [priority] pops first; equal
    priorities order by higher [balance]; full ties are FIFO by sequence
    number. *)

val push_seq : 'a t -> priority:float -> balance:float -> seq:int -> 'a -> unit
(** Re-insert an entry under a sequence number obtained from an earlier
    {!push} (or {!pop}), preserving its original FIFO position — used to
    put a partially served head entry back at the front of its key class. *)

val pop : 'a t -> (float * float * int * 'a) option
(** Remove and return the maximum entry as
    [(priority, balance, seq, payload)], or [None] when empty. *)

val peek : 'a t -> (float * float * int * 'a) option

val clear : 'a t -> unit
